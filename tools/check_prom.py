#!/usr/bin/env python3
"""Validates a Prometheus text-exposition document (format 0.0.4).

CI points this at the body of GET /metrics from a live crawl's
telemetry endpoint. It fails (exit 1) when the document violates the
exposition grammar or the renderer's own contracts:

  * every sample line parses as  name[{labels}] value  with a legal
    metric name, legal label names, properly quoted/escaped label
    values, and a float-parseable value;
  * every sample belongs to a family announced by a preceding # TYPE
    line, and no family is announced twice;
  * histogram families are well-formed per label set: le buckets are
    cumulative (non-decreasing), end in le="+Inf", and the +Inf count
    equals the family's _count sample;
  * with --require-metric NAME (repeatable), at least one sample of
    that family is present — CI uses this to prove the endpoint is
    serving real crawl state, not an empty document.

Usage:  check_prom.py metrics.txt --require-metric lswc_pages_crawled_total
        ... | check_prom.py - --require-metric lswc_frontier_size
"""

import argparse
import collections
import re
import sys

METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)$")
TYPE_RE = re.compile(
    r"^# TYPE (?P<name>\S+) "
    r"(?P<type>counter|gauge|histogram|summary|untyped)$")
VALID_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}


def parse_labels(raw, errors, lineno):
    """Splits  k1="v1",k2="v2"  respecting \\" escapes; returns a dict."""
    labels = {}
    i = 0
    while i < len(raw):
        eq = raw.find("=", i)
        if eq < 0:
            errors.append(f"line {lineno}: malformed label pair in {{{raw}}}")
            return labels
        name = raw[i:eq]
        if not LABEL_NAME_RE.match(name):
            errors.append(f"line {lineno}: bad label name '{name}'")
        if eq + 1 >= len(raw) or raw[eq + 1] != '"':
            errors.append(f"line {lineno}: label '{name}' value not quoted")
            return labels
        j = eq + 2
        value = []
        while j < len(raw) and raw[j] != '"':
            if raw[j] == "\\":
                if j + 1 >= len(raw) or raw[j + 1] not in '\\"n':
                    errors.append(
                        f"line {lineno}: bad escape in label '{name}'")
                value.append(raw[j:j + 2])
                j += 2
            else:
                value.append(raw[j])
                j += 1
        if j >= len(raw):
            errors.append(f"line {lineno}: unterminated label value "
                          f"for '{name}'")
            return labels
        labels[name] = "".join(value)
        i = j + 1
        if i < len(raw):
            if raw[i] != ",":
                errors.append(f"line {lineno}: expected ',' between labels")
                return labels
            i += 1
    return labels


def parse_value(raw):
    if raw in ("+Inf", "-Inf", "NaN"):
        return float(raw.replace("Inf", "inf").replace("NaN", "nan"))
    return float(raw)


def family_of(name):
    """Maps a histogram sample name back to its family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check_histogram(family, samples, errors):
    """Per label set (minus le): buckets cumulative, +Inf == _count."""
    by_labelset = collections.defaultdict(
        lambda: {"buckets": [], "count": None})
    for name, labels, value, lineno in samples:
        key = tuple(sorted(
            (k, v) for k, v in labels.items() if k != "le"))
        entry = by_labelset[key]
        if name.endswith("_bucket"):
            if "le" not in labels:
                errors.append(
                    f"line {lineno}: {family}_bucket without an le label")
                continue
            entry["buckets"].append((labels["le"], value, lineno))
        elif name.endswith("_count"):
            entry["count"] = (value, lineno)
    for key, entry in by_labelset.items():
        label_str = ",".join(f'{k}="{v}"' for k, v in key)
        buckets = entry["buckets"]
        if not buckets:
            errors.append(f"{family}{{{label_str}}}: histogram has no "
                          "_bucket samples")
            continue
        if buckets[-1][0] != "+Inf":
            errors.append(f"{family}{{{label_str}}}: last bucket is "
                          f'le="{buckets[-1][0]}", not le="+Inf"')
        prev = None
        for le, value, lineno in buckets:
            if prev is not None and value < prev:
                errors.append(
                    f"line {lineno}: {family}{{{label_str}}} bucket "
                    f'le="{le}" count {value:g} < previous {prev:g} '
                    "(buckets must be cumulative)")
            prev = value
        if entry["count"] is not None and buckets[-1][0] == "+Inf":
            count_value, count_line = entry["count"]
            if buckets[-1][1] != count_value:
                errors.append(
                    f"line {count_line}: {family}{{{label_str}}} _count "
                    f"{count_value:g} != +Inf bucket {buckets[-1][1]:g}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", help="exposition document, or - for stdin")
    parser.add_argument("--require-metric", action="append", default=[],
                        metavar="NAME",
                        help="fail unless a sample of this family exists "
                             "(repeatable)")
    args = parser.parse_args()

    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path) as f:
            text = f.read()

    errors = []
    types = {}
    families = collections.defaultdict(list)
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            if line.startswith("# TYPE "):
                m = TYPE_RE.match(line)
                if not m:
                    errors.append(f"line {lineno}: malformed # TYPE line: "
                                  f"{line!r}")
                    continue
                name = m.group("name")
                if not METRIC_NAME_RE.match(name):
                    errors.append(f"line {lineno}: bad family name '{name}'")
                if name in types:
                    errors.append(f"line {lineno}: duplicate # TYPE for "
                                  f"'{name}'")
                types[name] = m.group("type")
            # HELP and other comments are legal and uninteresting.
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name = m.group("name")
        labels = parse_labels(m.group("labels") or "", errors, lineno)
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            errors.append(f"line {lineno}: bad sample value "
                          f"{m.group('value')!r}")
            continue
        family = family_of(name)
        if family not in types and name not in types:
            errors.append(f"line {lineno}: sample '{name}' has no preceding "
                          "# TYPE line")
            continue
        # _sum/_count also belong to plain families whose name happens
        # to be registered directly (gauges never have the suffixes).
        family = family if family in types else name
        families[family].append((name, labels, value, lineno))
        samples += 1

    for family, family_type in types.items():
        if family_type == "histogram":
            check_histogram(family, families.get(family, []), errors)
        elif not families.get(family):
            errors.append(f"family '{family}' has a # TYPE line but no "
                          "samples")

    for required in args.require_metric:
        if not families.get(required):
            errors.append(f"required metric '{required}' has no samples")

    if errors:
        print(f"PROMETHEUS VALIDATION FAILED ({args.path}):")
        for error in errors:
            print(f"  - {error}")
        return 1
    print(f"{args.path}: valid exposition — {len(types)} families, "
          f"{samples} samples"
          + (f", required metrics present: "
             f"{', '.join(args.require_metric)}"
             if args.require_metric else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
