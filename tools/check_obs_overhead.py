#!/usr/bin/env python3
"""Overhead gate: instrumented vs baseline throughput.

Compares the aggregate pages/sec of BENCH_*.json reports from the SAME
binary on the SAME workload — one side instrumented (the obs registry,
or an opt-in feature like --journal-dir), one side the baseline — and
fails when the instrumented side is more than --max-overhead slower.
This is the overhead contract from docs/ARCHITECTURE.md: always-on
probes must cost < 5% of throughput (tracing is opt-in and exempt).

Both flags are repeatable. With several reports per side, the gate
compares the BEST pages/sec of each side — best-of-N is the standard
answer to scheduler noise on shared CI runners, where single-run
throughput jitters by more than the budget itself.

Also asserts every report's per-run series hashes are identical across
all reports on both sides: flipping observability must never change
what the crawler does.

Usage: check_obs_overhead.py --instrumented=BENCH.json [...]
                             --disabled=BENCH.json [...]
                             [--max-overhead=0.05]
"""

import argparse
import json
import sys


def load(paths):
    reports = []
    for path in paths:
        with open(path) as f:
            reports.append((path, json.load(f)))
    return reports


def hashes_of(report):
    return {r["name"]: r.get("series_hash") for r in report.get("runs", [])}


def best_pps(reports):
    return max(report.get("pages_per_sec", 0.0) for _, report in reports)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instrumented", required=True, action="append",
                        help="BENCH report(s) from the instrumented run "
                             "(repeatable; best throughput is used)")
    parser.add_argument("--disabled", required=True, action="append",
                        help="BENCH report(s) from the baseline run "
                             "(repeatable; best throughput is used)")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="max tolerated fractional pages/sec cost")
    args = parser.parse_args()

    instrumented = load(args.instrumented)
    disabled = load(args.disabled)

    failures = []
    ref_path, ref_report = disabled[0]
    ref_hashes = hashes_of(ref_report)
    for path, report in instrumented + disabled[1:]:
        if hashes_of(report) != ref_hashes:
            failures.append(
                f"series hashes differ: {path} vs {ref_path}: "
                f"{hashes_of(report)} vs {ref_hashes} — instrumentation "
                f"changed crawl behavior")

    on_pps = best_pps(instrumented)
    off_pps = best_pps(disabled)
    floor = off_pps * (1.0 - args.max_overhead)
    overhead = 1.0 - on_pps / off_pps if off_pps > 0 else 0.0
    best_of = (f" (best of {len(args.instrumented)}/{len(args.disabled)})"
               if len(args.instrumented) > 1 or len(args.disabled) > 1
               else "")
    print(f"pages/sec: instrumented {on_pps:.0f}, disabled {off_pps:.0f} "
          f"(overhead {overhead:+.1%}, budget {args.max_overhead:.0%})"
          f"{best_of}")
    if off_pps > 0 and on_pps < floor:
        failures.append(
            f"instrumented pages/sec {on_pps:.0f} < floor {floor:.0f} "
            f"({args.max_overhead:.0%} of disabled {off_pps:.0f})")

    if failures:
        print("OBS OVERHEAD GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("obs overhead gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
