#!/usr/bin/env python3
"""Overhead gate: instrumented vs obs-disabled throughput.

Compares the aggregate pages/sec of two BENCH_*.json reports from the
SAME binary on the SAME workload — one run normally (registry +
profiler active, no tracing), one with LSWC_OBS_DISABLED=1 — and fails
when the instrumented run is more than --max-overhead slower. This is
the overhead contract from docs/ARCHITECTURE.md: always-on probes must
cost < 5% of throughput (tracing is opt-in and exempt).

Also asserts the two runs' per-run series hashes are identical:
flipping observability must never change what the crawler does.

Usage: check_obs_overhead.py --instrumented=BENCH.json
                             --disabled=BENCH.json [--max-overhead=0.05]
"""

import argparse
import json
import sys


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--instrumented", required=True,
                        help="BENCH report from the normal (obs-on) run")
    parser.add_argument("--disabled", required=True,
                        help="BENCH report from the LSWC_OBS_DISABLED=1 run")
    parser.add_argument("--max-overhead", type=float, default=0.05,
                        help="max tolerated fractional pages/sec cost")
    args = parser.parse_args()

    with open(args.instrumented) as f:
        instrumented = json.load(f)
    with open(args.disabled) as f:
        disabled = json.load(f)

    failures = []
    on_hashes = {r["name"]: r.get("series_hash")
                 for r in instrumented.get("runs", [])}
    off_hashes = {r["name"]: r.get("series_hash")
                  for r in disabled.get("runs", [])}
    if on_hashes != off_hashes:
        failures.append(
            f"series hashes differ between obs-on and obs-off runs: "
            f"{on_hashes} vs {off_hashes} — observability changed crawl "
            f"behavior")

    on_pps = instrumented.get("pages_per_sec", 0.0)
    off_pps = disabled.get("pages_per_sec", 0.0)
    floor = off_pps * (1.0 - args.max_overhead)
    overhead = 1.0 - on_pps / off_pps if off_pps > 0 else 0.0
    print(f"pages/sec: instrumented {on_pps:.0f}, disabled {off_pps:.0f} "
          f"(overhead {overhead:+.1%}, budget {args.max_overhead:.0%})")
    if off_pps > 0 and on_pps < floor:
        failures.append(
            f"instrumented pages/sec {on_pps:.0f} < floor {floor:.0f} "
            f"({args.max_overhead:.0%} of disabled {off_pps:.0f})")

    if failures:
        print("OBS OVERHEAD GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("obs overhead gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
