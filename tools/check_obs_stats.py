#!/usr/bin/env python3
"""Validate an obs stats document (--stats-json output, or the "obs"
block of a schema-v2 BENCH_*.json when given --from-bench).

Checks:

  * the four sections exist: stages, counters, gauges, histograms;
  * the stage set is exactly the profiler's nine crawl phases, each
    with a non-negative integer call count (route/merge stay zero in
    serial runs);
  * counters are non-negative integers; gauges carry value <= max;
  * every histogram's count equals the sum of its bucket counts, and
    min <= max when non-empty;
  * each --require-counter NAME is present and positive (what CI uses
    to assert a real crawl actually recorded metrics).

Usage: check_obs_stats.py STATS_JSON [--from-bench]
                          [--require-counter NAME]...
"""

import argparse
import json
import sys

EXPECTED_STAGES = ["fetch", "classify", "extract", "strategy",
                   "frontier-push", "sample", "checkpoint", "route",
                   "merge", "rescore"]


def is_count(value):
    return isinstance(value, int) and value >= 0


def check(stats, require_counters):
    errors = []
    for section in ("stages", "counters", "gauges", "histograms"):
        if not isinstance(stats.get(section), dict):
            errors.append(f"missing section {section!r}")
    if errors:
        return errors

    stages = stats["stages"]
    if sorted(stages) != sorted(EXPECTED_STAGES):
        errors.append(f"stage set {sorted(stages)} != expected "
                      f"{sorted(EXPECTED_STAGES)}")
    for name, stage in stages.items():
        if not is_count(stage.get("calls")):
            errors.append(f"stage {name!r}: bad calls {stage.get('calls')!r}")

    for name, value in stats["counters"].items():
        if not is_count(value):
            errors.append(f"counter {name!r}: bad value {value!r}")

    for name, gauge in stats["gauges"].items():
        if not is_count(gauge.get("value")) or not is_count(gauge.get("max")):
            errors.append(f"gauge {name!r}: bad fields {gauge!r}")
        elif gauge["value"] > gauge["max"]:
            errors.append(f"gauge {name!r}: value {gauge['value']} > max "
                          f"{gauge['max']}")

    for name, hist in stats["histograms"].items():
        count = hist.get("count")
        buckets = hist.get("buckets")
        if not is_count(count) or not isinstance(buckets, list):
            errors.append(f"histogram {name!r}: bad fields")
            continue
        bucket_total = sum(b[1] for b in buckets)
        if bucket_total != count:
            errors.append(f"histogram {name!r}: bucket total {bucket_total} "
                          f"!= count {count}")
        if count > 0 and hist.get("min", 0) > hist.get("max", 0):
            errors.append(f"histogram {name!r}: min > max")

    for name in require_counters:
        if stats["counters"].get(name, 0) <= 0:
            errors.append(f"required counter {name!r} missing or zero")
    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("stats", help="stats JSON (or BENCH_*.json)")
    parser.add_argument("--from-bench", action="store_true",
                        help="read the 'obs' block of a BENCH report")
    parser.add_argument("--require-counter", action="append", default=[],
                        metavar="NAME", help="counter that must be > 0")
    args = parser.parse_args()

    try:
        with open(args.stats) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {args.stats}: {e}")
        return 1
    if args.from_bench:
        if doc.get("schema_version", 1) < 2 or "obs" not in doc:
            print(f"error: {args.stats}: no obs block "
                  f"(schema_version {doc.get('schema_version')})")
            return 1
        doc = doc["obs"]

    errors = check(doc, args.require_counter)
    if errors:
        print(f"OBS STATS CHECK FAILED: {args.stats}")
        for error in errors[:20]:
            print(f"  - {error}")
        return 1
    print(f"obs stats ok: {args.stats} "
          f"({len(doc['counters'])} counters, {len(doc['gauges'])} gauges, "
          f"{len(doc['histograms'])} histograms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
