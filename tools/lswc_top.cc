// lswc_top — attach to a running crawl's live telemetry endpoint and
// render a refreshing one-screen summary:
//
//   lswc_top unix:/tmp/crawl.sock
//   lswc_top --interval=0.5 tcp:7071
//   lswc_top --once --path=/metrics tcp:127.0.0.1:7071
//
// The endpoint is whatever the crawl was started with (--telemetry=);
// for tcp:0 the crawl prints the resolved port as a stderr "TELEMETRY"
// line. The summary itself is rendered by the *server* (/top), so every
// attached viewer — and the crawl's own --progress-every stderr line —
// shows the same document; this binary is a dumb terminal. --path
// fetches the other documents (/progress JSON, /metrics Prometheus
// text) for scripts and CI.

#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "obs/telemetry_server.h"
#include "util/string_util.h"

namespace lswc {
namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options] unix:PATH|tcp:[HOST:]PORT\n"
      "  --once             fetch and print one document, then exit\n"
      "  --interval=SECS    refresh period (default 2.0)\n"
      "  --path=/top|/progress|/metrics\n"
      "                     document to fetch (default /top)\n",
      argv0);
  return 2;
}

int Main(int argc, char** argv) {
  bool once = false;
  double interval_sec = 2.0;
  std::string path = "/top";
  std::string endpoint;
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (a == "--once") {
      once = true;
    } else if (StartsWith(a, "--interval=")) {
      const auto v = ParseDouble(a.substr(11));
      if (!v || *v <= 0.0) return Usage(argv[0]);
      interval_sec = *v;
    } else if (StartsWith(a, "--path=")) {
      path = std::string(a.substr(7));
      if (path.empty() || path[0] != '/') return Usage(argv[0]);
    } else if (!a.empty() && a[0] != '-' && endpoint.empty()) {
      endpoint = std::string(a);
    } else {
      return Usage(argv[0]);
    }
  }
  if (endpoint.empty()) return Usage(argv[0]);

  bool attached = false;
  for (;;) {
    auto body = obs::TelemetryGet(endpoint, path);
    if (!body.ok()) {
      // Losing an endpoint we once reached means the crawl exited —
      // a normal way for a watch session to end.
      std::fprintf(stderr, "%s: %s\n", endpoint.c_str(),
                   body.status().ToString().c_str());
      return attached && !once ? 0 : 1;
    }
    attached = true;
    if (!once) std::printf("\x1b[H\x1b[2J");  // Home + clear, like top(1).
    std::fputs(body->c_str(), stdout);
    std::fflush(stdout);
    if (once) return 0;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval_sec));
  }
}

}  // namespace
}  // namespace lswc

int main(int argc, char** argv) { return lswc::Main(argc, argv); }
