#!/usr/bin/env python3
"""CLI smoke tests for lswc_sim, run under ctest.

Usage: lswc_sim_cli_test.py /path/to/lswc_sim

Exercises the flag-parsing surface end to end against the real binary:
bad input must exit non-zero and print the usage text, strategy lists
must fan out into one summary per strategy, and the checkpoint/resume
trio must roundtrip (snapshot a run, resume it, see "resuming from").
Simulations are kept tiny (a few thousand pages) so the whole suite
runs in seconds.
"""

import os
import subprocess
import sys
import tempfile

PASSES = []
FAILURES = []


def run(binary, *flags):
    return subprocess.run([binary, *flags], capture_output=True, text=True,
                          timeout=300)


def check(name, condition, detail):
    if condition:
        PASSES.append(name)
    else:
        FAILURES.append(f"{name}: {detail}")


def expect_usage(name, result):
    check(name, result.returncode == 2,
          f"expected exit 2, got {result.returncode}")
    check(name + " prints usage", "usage:" in result.stderr,
          f"no usage text in stderr: {result.stderr!r}")


def main():
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} /path/to/lswc_sim")
        return 2
    binary = sys.argv[1]

    # --- Invalid input: exit 2 + usage text -------------------------------
    expect_usage("unknown flag", run(binary, "--bogus=1"))
    expect_usage("jobs zero", run(binary, "--jobs=0"))
    expect_usage("jobs not a number", run(binary, "--jobs=banana"))
    expect_usage("pages zero", run(binary, "--pages=0"))
    expect_usage("politeness missing interval", run(binary, "--politeness=16"))
    expect_usage("checkpoint-every zero",
                 run(binary, "--checkpoint-every=0", "--snapshot-dir=x"))
    expect_usage("empty snapshot dir", run(binary, "--snapshot-dir="))

    r = run(binary, "--checkpoint-every=100")
    expect_usage("checkpoint without snapshot dir", r)
    check("checkpoint without snapshot dir message",
          "--checkpoint-every requires --snapshot-dir" in r.stderr,
          f"stderr: {r.stderr!r}")

    # --- Bad semantic input past the parser: exit 1 -----------------------
    r = run(binary, "--dataset=thai", "--pages=1500", "--strategy=nosuch")
    check("unknown strategy exits 1", r.returncode == 1,
          f"exit {r.returncode}, stderr {r.stderr!r}")

    with tempfile.TemporaryDirectory() as tmp:
        r = run(binary, "--dataset=thai", "--pages=1500",
                "--strategy=bfs,soft", f"--resume={tmp}/no-such.snap")
        check("resume file with strategy list exits 1", r.returncode == 1,
              f"exit {r.returncode}")
        check("resume file with strategy list message",
              "needs a single strategy" in r.stderr,
              f"stderr: {r.stderr!r}")

        r = run(binary, "--dataset=thai", "--pages=1500", "--strategy=soft",
                f"--resume={tmp}/no-such.snap")
        check("resume from missing file fails", r.returncode != 0,
              f"exit {r.returncode}, stderr {r.stderr!r}")

    # --- Batch regime flags -----------------------------------------------
    expect_usage("frontier unknown kind", run(binary, "--frontier=stack"))

    r = run(binary, "--batch-k=64")
    expect_usage("batch-k without batch frontier", r)
    check("batch-k without batch frontier message",
          "--batch-k requires --frontier=batch" in r.stderr,
          f"stderr: {r.stderr!r}")

    r = run(binary, "--scorers=lang:1.0")
    expect_usage("scorers without batch frontier", r)
    check("scorers without batch frontier message",
          "--scorers requires --frontier=batch" in r.stderr,
          f"stderr: {r.stderr!r}")

    expect_usage("batch with politeness",
                 run(binary, "--frontier=batch", "--politeness=16,1.0"))
    expect_usage("batch with frontier capacity",
                 run(binary, "--frontier=batch", "--frontier-capacity=100"))

    r = run(binary, "--dataset=thai", "--pages=1500", "--strategy=soft",
            "--frontier=batch", "--batch-k=32", "--scorers=lang:1.0,nope")
    check("unknown scorer exits 1", r.returncode == 1,
          f"exit {r.returncode}, stderr {r.stderr!r}")
    check("unknown scorer is named", "nope" in r.stderr,
          f"stderr: {r.stderr!r}")

    r = run(binary, "--dataset=thai", "--pages=1500", "--strategy=soft",
            "--frontier=batch", "--batch-k=32",
            "--scorers=lang:1.0,indegree:0.5")
    check("batch run exits 0", r.returncode == 0,
          f"exit {r.returncode}, stderr {r.stderr!r}")
    check("batch run prints a summary", "strategy soft-focused" in r.stdout,
          f"stdout: {r.stdout!r}")

    # The batch regime is partition-invariant: sharded output equals the
    # serial output for the same configuration.
    sharded = run(binary, "--dataset=thai", "--pages=1500", "--strategy=soft",
                  "--frontier=batch", "--batch-k=32",
                  "--scorers=lang:1.0,indegree:0.5", "--shards=3")
    check("sharded batch run exits 0", sharded.returncode == 0,
          f"exit {sharded.returncode}, stderr {sharded.stderr!r}")
    serial_summary = [l for l in r.stdout.splitlines() if "crawled" in l]
    shard_summary = [l for l in sharded.stdout.splitlines() if "crawled" in l]
    check("sharded batch matches serial", serial_summary == shard_summary,
          f"serial {serial_summary!r} vs sharded {shard_summary!r}")

    # --- Comma-separated strategy lists fan out ---------------------------
    r = run(binary, "--dataset=thai", "--pages=1500",
            "--strategy=bfs,soft,plimited:2", "--jobs=2")
    check("strategy list exits 0", r.returncode == 0,
          f"exit {r.returncode}, stderr {r.stderr!r}")
    for name in ("breadth-first", "soft-focused",
                 "prioritized-limited-distance"):
        check(f"strategy list ran {name}", f"strategy {name}" in r.stdout,
              f"summary missing from stdout: {r.stdout!r}")
    check("strategy list prints dataset once",
          r.stdout.count("dataset:") == 1, f"stdout: {r.stdout!r}")

    # --- Checkpoint + resume roundtrip ------------------------------------
    # Both runs use the same --max-pages: the auto sample interval is
    # resolved from the crawl budget, and the fingerprint check (rightly)
    # rejects a resume whose sampling cadence differs from the snapshot's.
    with tempfile.TemporaryDirectory() as tmp:
        snap_dir = os.path.join(tmp, "snaps")
        common = ["--dataset=thai", "--pages=3000", "--strategy=soft",
                  "--max-pages=600"]
        # checkpoint-every=250 -> the rolling snapshot ends at page 500,
        # before the 600-page budget, so the resume has work left to do.
        r = run(binary, *common, "--checkpoint-every=250",
                f"--snapshot-dir={snap_dir}")
        check("checkpointed run exits 0", r.returncode == 0,
              f"exit {r.returncode}, stderr {r.stderr!r}")
        snap = os.path.join(snap_dir, "soft.snap")
        check("snapshot file written", os.path.exists(snap),
              f"{snap} missing; dir has {os.listdir(tmp)}")

        # Resume via directory (resume-if-exists).
        r = run(binary, *common, f"--resume={snap_dir}")
        check("resumed run exits 0", r.returncode == 0,
              f"exit {r.returncode}, stderr {r.stderr!r}")
        check("resumed run says so", "resuming from" in r.stdout,
              f"stdout: {r.stdout!r}")
        check("resumed run finished the crawl", "crawled 600" in r.stdout,
              f"stdout: {r.stdout!r}")

        # Resume via explicit file path.
        r = run(binary, *common, f"--resume={snap}")
        check("resume from explicit file exits 0", r.returncode == 0,
              f"exit {r.returncode}, stderr {r.stderr!r}")

    print(f"{len(PASSES)} checks passed")
    if FAILURES:
        print(f"{len(FAILURES)} checks FAILED:")
        for failure in FAILURES:
            print(f"  - {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
