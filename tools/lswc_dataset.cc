// lswc_dataset — produce and inspect LSWCDS1 dataset files, the
// out-of-core companion to lswc_sim:
//
//   lswc_dataset generate --dataset=thai --pages=100000000 --out=thai.ds
//   lswc_dataset info thai.ds
//   lswc_dataset verify thai.ds
//
// `generate` streams the synthetic web space straight to disk in
// bounded memory (no in-RAM graph is ever built), `info` prints the
// meta/stats sections from the trailer without touching the record
// sections, and `verify` additionally checksums every section.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/telemetry_plane.h"
#include "store/stored_web_graph.h"
#include "store/stream_generator.h"
#include "util/string_util.h"
#include "util/sysinfo.h"
#include "webgraph/generator.h"

namespace lswc {
namespace {

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s generate --out=FILE [--dataset=thai|japanese]\n"
      "          [--pages=N] [--seed=N]\n"
      "       %s info FILE\n"
      "       %s verify FILE\n"
      "  generate  stream a synthetic web space to an LSWCDS1 file in\n"
      "            bounded memory (same bytes as the in-RAM generator)\n"
      "  info      print the dataset's meta and stats sections\n"
      "  verify    info + verify every section checksum (one stderr\n"
      "            progress line per verified section)\n"
      "telemetry options (any command):\n"
      "  --telemetry=unix:PATH|tcp:[HOST:]PORT   live status endpoint\n"
      "  --watchdog-secs=N --watchdog-abort      stall watchdog\n"
      "  --flight-recorder-events=N              crash-dump ring size\n"
      "  --telemetry-dump=FILE                   dump file (default stderr)\n",
      argv0, argv0, argv0);
  return 2;
}

/// Consumes one telemetry-plane flag into `t`; false when `a` is not a
/// telemetry flag (the caller then tries its own flags). Exits through
/// Usage for a malformed value by returning false with *bad set.
bool ParseTelemetryFlag(std::string_view a, obs::TelemetryOptions* t,
                        bool* bad) {
  if (StartsWith(a, "--telemetry=")) {
    t->endpoint = std::string(a.substr(12));
    if (t->endpoint.empty()) *bad = true;
    return true;
  }
  if (StartsWith(a, "--watchdog-secs=")) {
    const auto n = ParseUint64(a.substr(16));
    if (!n || *n == 0) *bad = true;
    else t->watchdog_secs = *n;
    return true;
  }
  if (a == "--watchdog-abort") {
    t->watchdog_abort = true;
    return true;
  }
  if (StartsWith(a, "--flight-recorder-events=")) {
    const auto n = ParseUint64(a.substr(25));
    if (!n) *bad = true;
    else t->flight_recorder_events = *n;
    return true;
  }
  if (StartsWith(a, "--telemetry-dump=")) {
    t->dump_path = std::string(a.substr(17));
    if (t->dump_path.empty()) *bad = true;
    return true;
  }
  return false;
}

int Generate(int argc, char** argv) {
  std::string dataset = "thai";
  uint32_t pages = 1'000'000;
  uint64_t seed = 0;
  std::string out;
  for (int i = 2; i < argc; ++i) {
    const std::string_view a = argv[i];
    if (StartsWith(a, "--dataset=")) {
      dataset = std::string(a.substr(10));
      if (dataset != "thai" && dataset != "japanese") return Usage(argv[0]);
    } else if (StartsWith(a, "--pages=")) {
      const auto n = ParseUint64(a.substr(8));
      if (!n || *n == 0 || *n > UINT32_MAX) return Usage(argv[0]);
      pages = static_cast<uint32_t>(*n);
    } else if (StartsWith(a, "--seed=")) {
      const auto n = ParseUint64(a.substr(7));
      if (!n) return Usage(argv[0]);
      seed = *n;
    } else if (StartsWith(a, "--out=")) {
      out = std::string(a.substr(6));
    } else {
      return Usage(argv[0]);
    }
  }
  if (out.empty()) return Usage(argv[0]);

  SyntheticWebOptions options = dataset == "japanese"
                                    ? JapaneseLikeOptions(pages)
                                    : ThaiLikeOptions(pages);
  if (seed != 0) options.seed = seed;
  const Status status = store::GenerateWebGraphToFile(options, out);
  if (!status.ok()) {
    std::fprintf(stderr, "generate: %s\n", status.ToString().c_str());
    return 1;
  }
  std::printf("wrote %s (%s, %u pages, seed %llu)\n", out.c_str(),
              dataset.c_str(), pages,
              static_cast<unsigned long long>(options.seed));
  const uint64_t rss = util::PeakRssBytes();
  if (rss != 0) {
    std::printf("peak rss: %.1f MiB\n",
                static_cast<double>(rss) / (1024.0 * 1024.0));
  }
  return 0;
}

int Info(const char* argv0, const std::string& path, bool verify) {
  store::StoredWebGraph::Options options;
  options.verify_checksums = verify;
  if (verify) {
    // One stderr line per completed section, so a multi-GiB verify
    // (dominated by the targets/pages scans) is visibly alive.
    options.verify_progress = [](const char* section, uint64_t section_bytes,
                                 uint64_t done_bytes, uint64_t total_bytes) {
      std::fprintf(stderr, "verify: %-7s %9.1f MiB OK (%5.1f%% of %.1f MiB)\n",
                   section,
                   static_cast<double>(section_bytes) / (1024.0 * 1024.0),
                   100.0 * static_cast<double>(done_bytes) /
                       static_cast<double>(total_bytes),
                   static_cast<double>(total_bytes) / (1024.0 * 1024.0));
    };
  }
  auto stored = store::StoredWebGraph::Open(path, options);
  if (!stored.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 stored.status().ToString().c_str());
    return 1;
  }
  (void)argv0;
  const store::StoredWebGraph& ds = **stored;
  const WebGraph& graph = ds.graph();
  const store::DatasetStatsRecord& stats = ds.stats();
  std::printf("%s: LSWCDS1, %.1f MiB mapped%s\n", path.c_str(),
              static_cast<double>(ds.mapped_bytes()) / (1024.0 * 1024.0),
              verify ? ", all section checksums OK" : "");
  std::printf("  pages %zu | hosts %zu | links %zu | seeds %zu\n",
              graph.num_pages(), graph.num_hosts(), graph.num_links(),
              graph.seeds().size());
  std::printf("  target language %s | generator seed %llu\n",
              std::string(LanguageName(graph.target_language())).c_str(),
              static_cast<unsigned long long>(graph.generator_seed()));
  std::printf("  OK pages %llu | relevant %llu (%.1f%%) | irrelevant %llu\n",
              static_cast<unsigned long long>(stats.ok_html_pages),
              static_cast<unsigned long long>(stats.relevant_ok_pages),
              stats.ok_html_pages != 0
                  ? 100.0 * static_cast<double>(stats.relevant_ok_pages) /
                        static_cast<double>(stats.ok_html_pages)
                  : 0.0,
              static_cast<unsigned long long>(stats.irrelevant_ok_pages));
  return 0;
}

int Main(int argc, char** argv) {
  // Telemetry flags are position-independent and stripped before the
  // command parsers see the remaining args.
  obs::TelemetryOptions telemetry;
  bool bad_flag = false;
  std::vector<char*> rest;
  rest.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (ParseTelemetryFlag(argv[i], &telemetry, &bad_flag)) continue;
    rest.push_back(argv[i]);
  }
  if (bad_flag) return Usage(argv[0]);
  obs::ConfigureTelemetryPlaneFromFlags(telemetry, argv[0]);

  const int rest_argc = static_cast<int>(rest.size());
  char** rest_argv = rest.data();
  if (rest_argc < 2) return Usage(argv[0]);
  const std::string_view command = rest_argv[1];
  if (command == "generate") return Generate(rest_argc, rest_argv);
  if ((command == "info" || command == "verify") && rest_argc == 3) {
    return Info(rest_argv[0], rest_argv[2], command == "verify");
  }
  return Usage(argv[0]);
}

}  // namespace
}  // namespace lswc

int main(int argc, char** argv) { return lswc::Main(argc, argv); }
