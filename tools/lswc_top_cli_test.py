#!/usr/bin/env python3
"""End-to-end test of lswc_top against a live crawl, run under ctest.

Usage: lswc_top_cli_test.py /path/to/lswc_top /path/to/lswc_sim

Starts a crawl that freezes itself after a few fetches (--stall-after,
the watchdog fault-injection hook) with a unix-socket telemetry
endpoint, so the telemetry server stays up indefinitely with a stable
document. Then drives `lswc_top --once` at each served path and checks
the fetched documents: /top names the run, /progress is JSON with the
process header, /metrics is Prometheus text carrying the lswc_build_info
provenance gauge. Bad invocations must exit 2 with usage text.
"""

import json
import os
import signal
import subprocess
import sys
import tempfile
import time

PASSES = []
FAILURES = []


def check(name, condition, detail):
    if condition:
        PASSES.append(name)
    else:
        FAILURES.append(f"{name}: {detail}")


def top_once(top, endpoint, *flags):
    return subprocess.run([top, "--once", *flags, endpoint],
                          capture_output=True, text=True, timeout=60)


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} /path/to/lswc_top /path/to/lswc_sim")
        return 2
    top, sim = sys.argv[1], sys.argv[2]

    # --- Bad invocations fail fast, no endpoint needed. -------------------
    result = subprocess.run([top], capture_output=True, text=True, timeout=60)
    check("no endpoint exits 2", result.returncode == 2,
          f"exit {result.returncode}")
    check("no endpoint prints usage", "usage:" in result.stderr,
          repr(result.stderr))
    result = subprocess.run([top, "--once", "--path=metrics", "unix:/x"],
                           capture_output=True, text=True, timeout=60)
    check("bad path exits 2", result.returncode == 2,
          f"exit {result.returncode}")
    result = top_once(top, "unix:/nonexistent/never.sock")
    check("dead endpoint fails", result.returncode != 0, "exit 0")

    with tempfile.TemporaryDirectory() as tmp:
        sock = os.path.join(tmp, "crawl.sock")
        # The crawl freezes after 40 fetches but its telemetry thread
        # keeps serving, giving the viewer a stable live endpoint.
        crawl = subprocess.Popen(
            [sim, "--dataset=thai", "--pages=8000", "--strategy=soft",
             "--stall-after=40", "--progress-every=10",
             f"--telemetry=unix:{sock}"],
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE, text=True)
        try:
            deadline = time.monotonic() + 60
            while not os.path.exists(sock):
                if time.monotonic() > deadline:
                    check("endpoint appears", False, "socket never bound")
                    return finish()
                if crawl.poll() is not None:
                    check("crawl stays up", False,
                          f"exited {crawl.returncode}")
                    return finish()
                time.sleep(0.05)
            endpoint = f"unix:{sock}"

            # /top (the default document) names the run and the header.
            # Retry briefly: the board publishes on a cadence tick, so
            # the very first fetch can race an empty snapshot list.
            deadline = time.monotonic() + 60
            while True:
                result = top_once(top, endpoint)
                if result.returncode == 0 and "soft" in result.stdout:
                    break
                if time.monotonic() > deadline:
                    break
                time.sleep(0.2)
            check("top exits 0", result.returncode == 0,
                  f"exit {result.returncode}: {result.stderr!r}")
            check("top shows header", "lswc telemetry" in result.stdout,
                  repr(result.stdout))
            check("top names the run", "soft" in result.stdout,
                  repr(result.stdout))

            # /progress parses as JSON with the process/runs split.
            result = top_once(top, endpoint, "--path=/progress")
            check("progress exits 0", result.returncode == 0,
                  f"exit {result.returncode}: {result.stderr!r}")
            try:
                doc = json.loads(result.stdout)
                check("progress has process", "process" in doc, result.stdout)
                check("progress has runs", "runs" in doc, result.stdout)
            except json.JSONDecodeError as e:
                check("progress is JSON", False, f"{e}: {result.stdout!r}")

            # /metrics is Prometheus text with the build provenance gauge.
            result = top_once(top, endpoint, "--path=/metrics")
            check("metrics exits 0", result.returncode == 0,
                  f"exit {result.returncode}: {result.stderr!r}")
            check("metrics has build info",
                  "lswc_build_info{" in result.stdout, repr(result.stdout))
            check("metrics has crawl counter",
                  "lswc_pages_crawled_total" in result.stdout,
                  repr(result.stdout))
        finally:
            crawl.send_signal(signal.SIGKILL)
            crawl.wait(timeout=60)
    return finish()


def finish():
    for name in PASSES:
        print(f"PASS {name}")
    for failure in FAILURES:
        print(f"FAIL {failure}")
    print(f"{len(PASSES)} passed, {len(FAILURES)} failed")
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
