#!/usr/bin/env python3
"""Validate a Chrome trace-event file written by --trace-out.

Checks, failing (exit 1) on the first violation:

  * the file is well-formed JSON with a "traceEvents" array;
  * it contains at least --min-stages distinct stage-span names
    (ph == "X", cat == "stage") — the crawl phases the StageProfiler
    instruments;
  * spans on the same track (tid) are properly nested: any two spans
    either nest or are disjoint. The probes are RAII scopes on one
    thread, so a partial overlap means broken span emission;
  * instant and counter events carry the fields Perfetto needs
    (ts, pid, tid; "s" scope on instants).

Usage: check_trace.py TRACE_JSON [--min-stages=N]
"""

import argparse
import json
import sys
from collections import defaultdict


def check(trace, min_stages):
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["no traceEvents array"]
    errors = []

    stage_names = set()
    spans_by_tid = defaultdict(list)
    for i, event in enumerate(events):
        ph = event.get("ph")
        if ph not in ("X", "i", "C", "M"):
            errors.append(f"event {i}: unknown phase {ph!r}")
            continue
        if ph == "M":
            continue
        for field in ("name", "ts", "pid", "tid"):
            if field not in event:
                errors.append(f"event {i} ({ph}): missing {field!r}")
        if ph == "X":
            if "dur" not in event:
                errors.append(f"event {i}: span missing dur")
                continue
            if event.get("cat") == "stage":
                stage_names.add(event["name"])
            start = float(event["ts"])
            spans_by_tid[event["tid"]].append(
                (start, start + float(event["dur"]), event["name"]))
        elif ph == "i" and event.get("s") not in ("t", "p", "g"):
            errors.append(f"event {i}: instant missing scope 's'")

    if len(stage_names) < min_stages:
        errors.append(
            f"only {len(stage_names)} distinct stage span names "
            f"({sorted(stage_names)}), need >= {min_stages}")

    for tid, spans in sorted(spans_by_tid.items()):
        # Sort by start, longest first, and sweep with a stack: a span
        # must close before (or exactly when) every enclosing span does.
        spans.sort(key=lambda s: (s[0], -s[1]))
        stack = []
        for start, end, name in spans:
            while stack and stack[-1][1] <= start:
                stack.pop()
            if stack and end > stack[-1][1]:
                errors.append(
                    f"tid {tid}: span '{name}' [{start}, {end}) partially "
                    f"overlaps '{stack[-1][2]}' [{stack[-1][0]}, "
                    f"{stack[-1][1]}) — spans must nest")
                break
            stack.append((start, end, name))

    return errors


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("trace", help="Chrome trace-event JSON file")
    parser.add_argument("--min-stages", type=int, default=6,
                        help="distinct stage span names required")
    args = parser.parse_args()

    try:
        with open(args.trace) as f:
            trace = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {args.trace}: {e}")
        return 1

    errors = check(trace, args.min_stages)
    if errors:
        print(f"TRACE CHECK FAILED: {args.trace}")
        for error in errors[:20]:
            print(f"  - {error}")
        return 1
    events = trace["traceEvents"]
    spans = sum(1 for e in events if e.get("ph") == "X")
    print(f"trace ok: {args.trace} ({len(events)} events, {spans} spans, "
          f"nesting verified)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
