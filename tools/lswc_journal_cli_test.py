#!/usr/bin/env python3
"""End-to-end test of the lswc_journal CLI, run under ctest.

Usage: lswc_journal_cli_test.py /path/to/lswc_journal /path/to/lswc_sim

Produces real journals with lswc_sim and drives every subcommand:

- info/verify on a healthy journal (and verify's exit-1 on a bit flip)
- the serial/sharded byte-identity contract (cmp of the two files)
- diff: identical journals exit 0; two different-seed runs exit 1 and
  the report names the exact first diverging record
- why: a batch-regime URL resolves to a seed-rooted referrer chain with
  per-scorer score components
- stats runs and mentions the batch rounds
"""

import os
import subprocess
import sys
import tempfile

PASSES = []
FAILURES = []


def check(name, condition, detail):
    if condition:
        PASSES.append(name)
    else:
        FAILURES.append(f"{name}: {detail}")


def run(*argv):
    return subprocess.run(list(argv), capture_output=True, text=True,
                          timeout=300)


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} /path/to/lswc_journal /path/to/lswc_sim")
        return 2
    journal, sim = sys.argv[1], sys.argv[2]

    result = run(journal)
    check("no args exits 2", result.returncode == 2,
          f"exit {result.returncode}")
    check("no args prints usage", "usage:" in result.stderr,
          repr(result.stderr))
    result = run(journal, "info", "/nonexistent.jrnl")
    check("missing file exits 2", result.returncode == 2,
          f"exit {result.returncode}")

    with tempfile.TemporaryDirectory() as tmp:
        def crawl(path, *extra):
            result = run(sim, "--dataset=thai", "--pages=20000",
                         "--strategy=soft", "--max-pages=1500",
                         f"--journal={path}", *extra)
            check(f"crawl for {os.path.basename(path)}",
                  result.returncode == 0,
                  f"exit {result.returncode}: {result.stderr!r}")
            return path

        batch = crawl(os.path.join(tmp, "batch.jrnl"),
                      "--frontier=batch", "--batch-k=64")
        serial = crawl(os.path.join(tmp, "serial.jrnl"))
        sharded = crawl(os.path.join(tmp, "sharded.jrnl"), "--shards=4")
        seed2 = crawl(os.path.join(tmp, "seed2.jrnl"), "--seed=2")

        # --- info / verify ------------------------------------------------
        result = run(journal, "info", batch)
        check("info exits 0", result.returncode == 0, result.stderr)
        check("info shows regime", "regime batch" in result.stdout,
              repr(result.stdout))
        check("info counts fetches", "fetch" in result.stdout,
              repr(result.stdout))

        result = run(journal, "verify", batch)
        check("verify exits 0", result.returncode == 0, result.stderr)
        check("verify reports OK", "OK" in result.stdout,
              repr(result.stdout))

        # A flipped bit inside the record section must fail verify.
        corrupt = os.path.join(tmp, "corrupt.jrnl")
        with open(serial, "rb") as f:
            data = bytearray(f.read())
        data[5000] ^= 0x10
        with open(corrupt, "wb") as f:
            f.write(data)
        result = run(journal, "verify", corrupt)
        check("verify catches bit flip", result.returncode == 1,
              f"exit {result.returncode}: {result.stdout!r}")

        # --- serial vs sharded byte identity ------------------------------
        with open(serial, "rb") as f:
            serial_bytes = f.read()
        with open(sharded, "rb") as f:
            sharded_bytes = f.read()
        check("serial == sharded bytes", serial_bytes == sharded_bytes,
              "journals differ across shard counts")

        # --- diff ---------------------------------------------------------
        result = run(journal, "diff", serial, sharded)
        check("diff identical exits 0", result.returncode == 0,
              f"exit {result.returncode}: {result.stdout!r}")
        check("diff identical says so", "identical" in result.stdout,
              repr(result.stdout))

        result = run(journal, "diff", serial, seed2)
        check("diff divergent exits 1", result.returncode == 1,
              f"exit {result.returncode}: {result.stdout!r}")
        check("diff names generator seed",
              "generator_seed" in result.stdout, repr(result.stdout))
        check("diff names first divergence",
              "first divergence at record" in result.stdout
              or "strict prefix" in result.stdout, repr(result.stdout))

        # --- why on the batch journal -------------------------------------
        # Find a fetched non-seed URL via stats-free parsing: ask why for
        # increasing ids until one resolves with a chain longer than one
        # hop. Journal ids are dataset page ids, so scanning is cheap.
        chain_out = None
        for url in range(0, 20000, 37):
            result = run(journal, "why", batch, str(url))
            if result.returncode == 0 and "via " in result.stdout \
                    and "fetched" in result.stdout:
                chain_out = result.stdout
                break
        check("why finds a chained url", chain_out is not None,
              "no url produced a multi-hop chain")
        if chain_out is not None:
            check("why shows score components",
                  "score-component" in chain_out, repr(chain_out))
            check("why shows the selection", "batch-select" in chain_out,
                  repr(chain_out))
            check("why roots at a seed", "seed" in chain_out,
                  repr(chain_out))

        result = run(journal, "why", batch, "99999999")
        check("why unknown url exits 1", result.returncode == 1,
              f"exit {result.returncode}")

        # --- stats --------------------------------------------------------
        result = run(journal, "stats", batch)
        check("stats exits 0", result.returncode == 0, result.stderr)
        check("stats shows batch rounds", "batch:" in result.stdout,
              repr(result.stdout))
        check("stats shows scorers", "scorer" in result.stdout,
              repr(result.stdout))
        check("stats shows depths", "fetches by depth" in result.stdout,
              repr(result.stdout))

    for name in PASSES:
        print(f"PASS {name}")
    for failure in FAILURES:
        print(f"FAIL {failure}")
    print(f"{len(PASSES)} passed, {len(FAILURES)} failed")
    return 1 if FAILURES else 0


if __name__ == "__main__":
    sys.exit(main())
