#!/usr/bin/env python3
"""Assert two BENCH_*.json reports describe bit-identical simulations.

Used by the crash-recovery CI job: a run that was SIGKILLed mid-crawl and
resumed from its latest snapshot must reproduce the exact per-run and
per-series content hashes of an uninterrupted run. Wall-clock numbers
(pages/sec, wall_time) are ignored — only determinism-bearing fields are
compared:

  * the set of run names, and each run's series_hash, pages_crawled,
    relevant_crawled, max_queue_size;
  * the set of series files, and each one's row count and content hash.

Exit 0 when everything matches, 1 with a per-field diff otherwise.
"""

import argparse
import json
import sys

RUN_FIELDS = ("series_hash", "pages_crawled", "relevant_crawled",
              "max_queue_size")


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("expected", help="BENCH json of the straight run")
    parser.add_argument("actual", help="BENCH json of the resumed run")
    args = parser.parse_args()

    expected = load(args.expected)
    actual = load(args.actual)
    failures = []

    exp_runs = {r["name"]: r for r in expected.get("runs", [])}
    act_runs = {r["name"]: r for r in actual.get("runs", [])}
    if sorted(exp_runs) != sorted(act_runs):
        failures.append(
            f"run sets differ: {sorted(exp_runs)} vs {sorted(act_runs)}")
    for name in sorted(set(exp_runs) & set(act_runs)):
        for field in RUN_FIELDS:
            exp_value = exp_runs[name].get(field)
            act_value = act_runs[name].get(field)
            if exp_value != act_value:
                failures.append(
                    f"run '{name}': {field} {exp_value} != {act_value}")

    exp_series = {s["file"]: s for s in expected.get("series", [])}
    act_series = {s["file"]: s for s in actual.get("series", [])}
    if sorted(exp_series) != sorted(act_series):
        failures.append(
            f"series sets differ: {sorted(exp_series)} vs "
            f"{sorted(act_series)}")
    for file_name in sorted(set(exp_series) & set(act_series)):
        for field in ("rows", "hash"):
            exp_value = exp_series[file_name].get(field)
            act_value = act_series[file_name].get(field)
            if exp_value != act_value:
                failures.append(
                    f"series '{file_name}': {field} {exp_value} != "
                    f"{act_value}")

    if failures:
        print(f"HASH MISMATCH between {args.expected} and {args.actual}:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(f"{args.actual} matches {args.expected}: "
          f"{len(exp_runs)} run(s), {len(exp_series)} series")
    return 0


if __name__ == "__main__":
    sys.exit(main())
