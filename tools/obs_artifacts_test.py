#!/usr/bin/env python3
"""ctest driver for the observability surface of a bench harness.

Runs the given harness binary (fig3 in ctest) twice over a small
workload:

  1. with --trace-out + --stats-json, then validates the trace with
     check_trace.py (well-formed, >= 6 distinct stage spans, nesting),
     the stats with check_obs_stats.py, and the BENCH report's
     schema-v2 obs block;
  2. with LSWC_OBS_DISABLED=1, then asserts the BENCH report degrades
     to schema v1 with no obs block and — the determinism half of the
     overhead contract — per-run series hashes identical to run 1's.

Usage: obs_artifacts_test.py HARNESS_BINARY TOOLS_DIR
"""

import json
import os
import pathlib
import subprocess
import sys
import tempfile


def run(cmd, env=None):
    print("+", " ".join(str(c) for c in cmd))
    merged = dict(os.environ)
    if env:
        merged.update(env)
    result = subprocess.run(cmd, env=merged, stdout=subprocess.PIPE,
                            stderr=subprocess.STDOUT, text=True)
    if result.returncode != 0:
        print(result.stdout[-4000:])
        raise SystemExit(f"command failed ({result.returncode}): {cmd[0]}")
    return result.stdout


def load_bench(out_dir):
    reports = list(pathlib.Path(out_dir).glob("BENCH_*.json"))
    if len(reports) != 1:
        raise SystemExit(f"expected one BENCH report in {out_dir}, "
                         f"found {reports}")
    with open(reports[0]) as f:
        return json.load(f)


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__)
    harness, tools_dir = sys.argv[1], pathlib.Path(sys.argv[2])
    workload = ["--pages=15000", "--jobs=2"]

    with tempfile.TemporaryDirectory(prefix="lswc_obs_artifacts_") as tmp:
        on_dir = os.path.join(tmp, "on")
        trace = os.path.join(tmp, "trace.json")
        stats = os.path.join(tmp, "stats.json")
        run([harness, *workload, f"--out-dir={on_dir}",
             f"--trace-out={trace}", f"--stats-json={stats}"])
        run([sys.executable, tools_dir / "check_trace.py", trace,
             "--min-stages=6"])
        run([sys.executable, tools_dir / "check_obs_stats.py", stats,
             "--require-counter", "crawl.pushes"])
        bench_on = load_bench(on_dir)
        if bench_on.get("schema_version") != 2 or "obs" not in bench_on:
            raise SystemExit("obs-on BENCH report is not schema v2 with an "
                             "obs block")

        off_dir = os.path.join(tmp, "off")
        run([harness, *workload, f"--out-dir={off_dir}"],
            env={"LSWC_OBS_DISABLED": "1"})
        bench_off = load_bench(off_dir)
        if bench_off.get("schema_version") != 1 or "obs" in bench_off:
            raise SystemExit("LSWC_OBS_DISABLED BENCH report must stay "
                             "schema v1 without an obs block")

        on_hashes = {r["name"]: r["series_hash"] for r in bench_on["runs"]}
        off_hashes = {r["name"]: r["series_hash"] for r in bench_off["runs"]}
        if on_hashes != off_hashes:
            raise SystemExit(f"series hashes changed when obs was disabled: "
                             f"{on_hashes} vs {off_hashes}")

    print("obs artifacts test passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
