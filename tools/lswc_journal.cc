// lswc_journal — inspect LSWCJRNL crawl decision journals (written by
// lswc_sim --journal=FILE / bench --journal-dir=DIR):
//
//   lswc_journal info run.jrnl            header + run identity + kind counts
//   lswc_journal verify run.jrnl          full CRC + seq-invariant check
//   lswc_journal why run.jrnl 4711        referrer chain 4711 -> seed, with
//                                         fetch verdicts and, in the batch
//                                         regime, per-scorer score breakdowns
//   lswc_journal stats run.jrnl           per-depth / per-host / per-scorer
//                                         aggregates
//   lswc_journal diff a.jrnl b.jrnl       first diverging decision + context
//
// diff is the forensics half of the determinism gates: when two runs
// that should be bit-identical are not, it names the exact first
// decision where they split and shows the field-level delta, instead of
// leaving you with two differing series hashes. Exit codes: 0 success
// (diff: identical), 1 check failed (verify: corrupt; diff: divergent),
// 2 usage/IO error.

#include <algorithm>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "obs/journal.h"
#include "obs/journal_reader.h"
#include "util/string_util.h"

namespace lswc {
namespace {

using obs::JournalIndex;
using obs::JournalKind;
using obs::JournalMeta;
using obs::JournalReader;
using obs::JournalRecord;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <command> ...\n"
      "  info FILE        journal header, run identity, record kind counts\n"
      "  verify FILE      recompute every CRC and check the seq invariant\n"
      "  why FILE URL     explain URL: referrer chain back to a seed, with\n"
      "                   fetch verdicts and batch score breakdowns\n"
      "  stats FILE       per-depth, per-host and per-scorer aggregates\n"
      "  diff A B         first diverging decision between two journals\n",
      argv0);
  return 2;
}

double BitsToDouble(uint64_t bits) {
  double d;
  std::memcpy(&d, &bits, sizeof(d));
  return d;
}

std::string FlagNames(uint8_t flags) {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += ",";
    out += name;
  };
  if (flags & obs::kJournalFlagOk) add("ok");
  if (flags & obs::kJournalFlagTrulyRelevant) add("truly-relevant");
  if (flags & obs::kJournalFlagJudgedRelevant) add("judged-relevant");
  if (flags & obs::kJournalFlagCrossHost) add("cross-host");
  if (flags & obs::kJournalFlagParentRelevant) add("parent-relevant");
  if (flags & obs::kJournalFlagFinalSample) add("final");
  return out.empty() ? "-" : out;
}

const char* DropReasonName(uint16_t reason) {
  switch (reason) {
    case obs::kJournalDropAlreadyCrawled: return "already-crawled";
    case obs::kJournalDropStrategyDiscard: return "strategy-discard";
    case obs::kJournalDropNotBetter: return "not-better";
    default: return "unknown";
  }
}

std::string IdOrDash(uint32_t id) {
  return id == obs::kJournalNoLink ? std::string("-")
                                   : StringPrintf("%u", id);
}

/// One record as a human-readable line, with kind-aware labels for the
/// overloaded a/b fields and the scorer string table applied.
std::string FormatRecord(const JournalRecord& r, const JournalMeta& meta) {
  std::string line = StringPrintf("[%8llu] %-15s",
                                  static_cast<unsigned long long>(r.seq),
                                  obs::JournalKindName(r.kind));
  switch (static_cast<JournalKind>(r.kind)) {
    case JournalKind::kSeed:
      line += StringPrintf(" url=%u host=%s priority=%d", r.url,
                           IdOrDash(r.host).c_str(), r.priority);
      break;
    case JournalKind::kFetch:
      line += StringPrintf(
          " url=%u referrer=%s host=%s depth=%u priority=%d flags=%s "
          "frontier=%llu crawled=%llu",
          r.url, IdOrDash(r.link).c_str(), IdOrDash(r.host).c_str(), r.depth,
          r.priority, FlagNames(r.flags).c_str(),
          static_cast<unsigned long long>(r.a),
          static_cast<unsigned long long>(r.b));
      break;
    case JournalKind::kEnqueue:
    case JournalKind::kRePush:
      line += StringPrintf(
          " url=%u parent=%s host=%s depth=%u priority=%d annotation=%u "
          "parent-host=%llu flags=%s",
          r.url, IdOrDash(r.link).c_str(), IdOrDash(r.host).c_str(), r.depth,
          r.priority, r.extra, static_cast<unsigned long long>(r.a),
          FlagNames(r.flags).c_str());
      break;
    case JournalKind::kDrop:
      line += StringPrintf(
          " url=%u parent=%s host=%s depth=%u reason=%s flags=%s", r.url,
          IdOrDash(r.link).c_str(), IdOrDash(r.host).c_str(), r.depth,
          DropReasonName(r.extra), FlagNames(r.flags).c_str());
      break;
    case JournalKind::kBatchRound:
      line += StringPrintf(" round=%llu pending=%u selected=%llu",
                           static_cast<unsigned long long>(r.a), r.depth,
                           static_cast<unsigned long long>(r.b));
      break;
    case JournalKind::kBatchSelect:
      line += StringPrintf(
          " url=%u referrer=%s host=%s depth=%u rank=%d score=%.6f "
          "entry-seq=%llu components=%u",
          r.url, IdOrDash(r.link).c_str(), IdOrDash(r.host).c_str(), r.depth,
          r.priority, BitsToDouble(r.a),
          static_cast<unsigned long long>(r.b), r.extra);
      break;
    case JournalKind::kScoreComponent: {
      const std::string name = r.link < meta.scorer_names.size()
                                   ? meta.scorer_names[r.link]
                                   : StringPrintf("scorer#%u", r.link);
      line += StringPrintf(" url=%u scorer=%s weighted=%.6f raw=%.6f", r.url,
                           name.c_str(), BitsToDouble(r.a),
                           BitsToDouble(r.b));
      break;
    }
    case JournalKind::kSample:
      line += StringPrintf(" frontier=%llu crawled=%llu flags=%s",
                           static_cast<unsigned long long>(r.a),
                           static_cast<unsigned long long>(r.b),
                           FlagNames(r.flags).c_str());
      break;
    default:
      line += StringPrintf(
          " url=%s link=%s host=%s priority=%d depth=%u extra=%u "
          "a=%llu b=%llu flags=%s",
          IdOrDash(r.url).c_str(), IdOrDash(r.link).c_str(),
          IdOrDash(r.host).c_str(), r.priority, r.depth, r.extra,
          static_cast<unsigned long long>(r.a),
          static_cast<unsigned long long>(r.b), FlagNames(r.flags).c_str());
  }
  return line;
}

void PrintMeta(const JournalMeta& meta) {
  std::printf("dataset: %llu pages, %llu hosts, %llu links, seed %llu (%s)\n",
              static_cast<unsigned long long>(meta.num_pages),
              static_cast<unsigned long long>(meta.num_hosts),
              static_cast<unsigned long long>(meta.num_links),
              static_cast<unsigned long long>(meta.generator_seed),
              meta.target_language.c_str());
  std::printf("run: strategy %s | classifier %s | regime %s\n",
              meta.strategy.c_str(), meta.classifier.c_str(),
              meta.regime.c_str());
  if (meta.regime == "batch") {
    std::printf("batch: k=%u scorers=%s\n", meta.batch_k,
                meta.scorer_spec.c_str());
  }
  if (!meta.scorer_names.empty()) {
    std::string names;
    for (size_t i = 0; i < meta.scorer_names.size(); ++i) {
      if (i > 0) names += ", ";
      names += StringPrintf("%zu=%s", i, meta.scorer_names[i].c_str());
    }
    std::printf("scorer table: %s\n", names.c_str());
  }
}

int CmdInfo(const std::string& path) {
  auto reader = JournalReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 reader.status().ToString().c_str());
    return 2;
  }
  const JournalReader& j = **reader;
  std::printf("%s: %llu records (version %u, %u bytes each)\n", path.c_str(),
              static_cast<unsigned long long>(j.record_count()),
              obs::kJournalVersion, obs::kJournalRecordSize);
  PrintMeta(j.meta());
  uint64_t by_kind[16] = {};
  for (uint64_t i = 0; i < j.record_count(); ++i) {
    const uint8_t kind = j.record(i).kind;
    ++by_kind[kind < 16 ? kind : 0];
  }
  std::printf("records:\n");
  for (int k = 1; k < 16; ++k) {
    if (by_kind[k] == 0) continue;
    std::printf("  %-15s %llu\n",
                obs::JournalKindName(static_cast<uint8_t>(k)),
                static_cast<unsigned long long>(by_kind[k]));
  }
  return 0;
}

int CmdVerify(const std::string& path) {
  auto reader = JournalReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 reader.status().ToString().c_str());
    return 1;
  }
  const Status status = (*reader)->Verify();
  if (!status.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 status.ToString().c_str());
    return 1;
  }
  std::printf("%s: OK — %llu records, all CRCs valid, seq contiguous\n",
              path.c_str(),
              static_cast<unsigned long long>((*reader)->record_count()));
  return 0;
}

int CmdWhy(const std::string& path, const std::string& url_arg) {
  const auto url = ParseUint64(url_arg);
  if (!url.has_value() || *url >= obs::kJournalNoLink) {
    std::fprintf(stderr, "bad URL id: %s\n", url_arg.c_str());
    return 2;
  }
  auto reader = JournalReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 reader.status().ToString().c_str());
    return 2;
  }
  const JournalReader& j = **reader;
  const JournalIndex index(&j);
  auto chain = index.ReferrerChain(static_cast<uint32_t>(*url));
  if (!chain.ok()) {
    std::fprintf(stderr, "url %llu: %s\n",
                 static_cast<unsigned long long>(*url),
                 chain.status().ToString().c_str());
    return 1;
  }
  // First hop is the URL itself; each subsequent hop is the referrer
  // that explains the one above it, ending at a seed.
  for (size_t hop = 0; hop < chain->size(); ++hop) {
    const JournalIndex::Hop& h = (*chain)[hop];
    const char* role = hop == 0 ? "url" : "via";
    std::printf("%s %u:\n", role, h.url);
    if (h.refs->entered != obs::kJournalNoRecord) {
      std::printf("  entered  %s\n",
                  FormatRecord(j.record(h.refs->entered), j.meta()).c_str());
    }
    if (h.refs->select != obs::kJournalNoRecord) {
      std::printf("  selected %s\n",
                  FormatRecord(j.record(h.refs->select), j.meta()).c_str());
      for (uint64_t c : h.refs->components) {
        std::printf("           %s\n",
                    FormatRecord(j.record(c), j.meta()).c_str());
      }
    }
    if (h.refs->fetch != obs::kJournalNoRecord) {
      std::printf("  fetched  %s\n",
                  FormatRecord(j.record(h.refs->fetch), j.meta()).c_str());
    } else {
      std::printf("  (never fetched)\n");
    }
  }
  return 0;
}

int CmdStats(const std::string& path) {
  auto reader = JournalReader::Open(path);
  if (!reader.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 reader.status().ToString().c_str());
    return 2;
  }
  const JournalReader& j = **reader;
  PrintMeta(j.meta());

  uint64_t fetches = 0, fetch_ok = 0, fetch_truly = 0, fetch_judged = 0;
  uint64_t enqueues = 0, repushes = 0, cross_host = 0;
  uint64_t rounds = 0, selected = 0;
  std::map<uint16_t, uint64_t> drops;                  // reason -> count
  std::map<uint32_t, uint64_t> depth_fetches;          // depth -> fetches
  std::map<uint32_t, uint64_t> depth_relevant;         // depth -> truly rel.
  std::map<uint32_t, uint64_t> host_fetches;           // host -> fetches
  struct ScorerAgg {
    uint64_t count = 0;
    double weighted_sum = 0.0;
  };
  std::map<uint32_t, ScorerAgg> scorers;               // table id -> agg

  for (uint64_t i = 0; i < j.record_count(); ++i) {
    const JournalRecord r = j.record(i);
    switch (static_cast<JournalKind>(r.kind)) {
      case JournalKind::kFetch:
        ++fetches;
        ++depth_fetches[r.depth];
        if (r.host != obs::kJournalNoLink) ++host_fetches[r.host];
        if (r.flags & obs::kJournalFlagOk) ++fetch_ok;
        if (r.flags & obs::kJournalFlagTrulyRelevant) {
          ++fetch_truly;
          ++depth_relevant[r.depth];
        }
        if (r.flags & obs::kJournalFlagJudgedRelevant) ++fetch_judged;
        break;
      case JournalKind::kEnqueue:
        ++enqueues;
        if (r.flags & obs::kJournalFlagCrossHost) ++cross_host;
        break;
      case JournalKind::kRePush:
        ++repushes;
        break;
      case JournalKind::kDrop:
        ++drops[r.extra];
        break;
      case JournalKind::kBatchRound:
        ++rounds;
        selected += r.b;
        break;
      case JournalKind::kScoreComponent: {
        ScorerAgg& agg = scorers[r.link];
        ++agg.count;
        agg.weighted_sum += BitsToDouble(r.a);
        break;
      }
      default:
        break;
    }
  }

  std::printf("\nfetches: %llu (%llu ok, %llu truly relevant, %llu judged "
              "relevant)\n",
              static_cast<unsigned long long>(fetches),
              static_cast<unsigned long long>(fetch_ok),
              static_cast<unsigned long long>(fetch_truly),
              static_cast<unsigned long long>(fetch_judged));
  std::printf("links: %llu enqueued (%llu cross-host), %llu re-pushed\n",
              static_cast<unsigned long long>(enqueues),
              static_cast<unsigned long long>(cross_host),
              static_cast<unsigned long long>(repushes));
  for (const auto& [reason, count] : drops) {
    std::printf("drops[%s]: %llu\n", DropReasonName(reason),
                static_cast<unsigned long long>(count));
  }
  if (rounds != 0) {
    std::printf("batch: %llu rounds, %llu selections\n",
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(selected));
  }
  for (const auto& [id, agg] : scorers) {
    const std::string name = id < j.meta().scorer_names.size()
                                 ? j.meta().scorer_names[id]
                                 : StringPrintf("scorer#%u", id);
    std::printf("scorer %-12s %llu contributions, mean weighted %.6f\n",
                name.c_str(), static_cast<unsigned long long>(agg.count),
                agg.count != 0 ? agg.weighted_sum / agg.count : 0.0);
  }

  std::printf("\nfetches by depth:\n");
  for (const auto& [depth, count] : depth_fetches) {
    const uint64_t relevant = depth_relevant.count(depth)
                                  ? depth_relevant.at(depth)
                                  : 0;
    std::printf("  depth %-3u %9llu fetches, %6.1f%% truly relevant\n",
                depth, static_cast<unsigned long long>(count),
                count != 0 ? 100.0 * relevant / count : 0.0);
  }

  // Top hosts by fetch volume — the locality fingerprint of the crawl.
  std::vector<std::pair<uint64_t, uint32_t>> top;
  top.reserve(host_fetches.size());
  for (const auto& [host, count] : host_fetches) top.emplace_back(count, host);
  std::sort(top.rbegin(), top.rend());
  const size_t show = std::min<size_t>(top.size(), 10);
  std::printf("\ntop %zu of %zu hosts by fetches:\n", show, top.size());
  for (size_t i = 0; i < show; ++i) {
    std::printf("  host %-8u %llu\n", top[i].second,
                static_cast<unsigned long long>(top[i].first));
  }
  return 0;
}

/// Prints one side's records [first, last] as diff context.
void PrintContext(const char* label, const JournalReader& j, uint64_t diverge,
                  uint64_t context) {
  const uint64_t first = diverge > context ? diverge - context : 0;
  const uint64_t last =
      std::min(j.record_count(), diverge + 2);  // Divergent row + one after.
  std::printf("%s:\n", label);
  for (uint64_t i = first; i < last; ++i) {
    std::printf("  %s %s\n", i == diverge ? ">" : " ",
                FormatRecord(j.record(i), j.meta()).c_str());
  }
}

void DiffMetaField(const char* name, const std::string& a,
                   const std::string& b) {
  if (a != b) {
    std::printf("meta %s: \"%s\" vs \"%s\"\n", name, a.c_str(), b.c_str());
  }
}

void DiffMetaField(const char* name, uint64_t a, uint64_t b) {
  if (a != b) {
    std::printf("meta %s: %llu vs %llu\n", name,
                static_cast<unsigned long long>(a),
                static_cast<unsigned long long>(b));
  }
}

int CmdDiff(const std::string& path_a, const std::string& path_b) {
  auto a = JournalReader::Open(path_a);
  auto b = JournalReader::Open(path_b);
  if (!a.ok() || !b.ok()) {
    if (!a.ok()) {
      std::fprintf(stderr, "%s: %s\n", path_a.c_str(),
                   a.status().ToString().c_str());
    }
    if (!b.ok()) {
      std::fprintf(stderr, "%s: %s\n", path_b.c_str(),
                   b.status().ToString().c_str());
    }
    return 2;
  }
  const JournalReader& ja = **a;
  const JournalReader& jb = **b;

  // Run identity first: a meta mismatch usually *explains* the record
  // divergence (different seed, strategy, batch size ...).
  const JournalMeta& ma = ja.meta();
  const JournalMeta& mb = jb.meta();
  DiffMetaField("num_pages", ma.num_pages, mb.num_pages);
  DiffMetaField("num_hosts", ma.num_hosts, mb.num_hosts);
  DiffMetaField("num_links", ma.num_links, mb.num_links);
  DiffMetaField("generator_seed", ma.generator_seed, mb.generator_seed);
  DiffMetaField("target_language", ma.target_language, mb.target_language);
  DiffMetaField("strategy", ma.strategy, mb.strategy);
  DiffMetaField("classifier", ma.classifier, mb.classifier);
  DiffMetaField("regime", ma.regime, mb.regime);
  DiffMetaField("batch_k", ma.batch_k, mb.batch_k);
  DiffMetaField("scorer_spec", ma.scorer_spec, mb.scorer_spec);

  const std::string_view ra = ja.records_bytes();
  const std::string_view rb = jb.records_bytes();
  const size_t common = std::min(ra.size(), rb.size());

  // memcmp-then-refine: one pass finds whether a divergence exists, a
  // second narrows it to the byte, and /48 names the decision.
  size_t byte = common;
  if (std::memcmp(ra.data(), rb.data(), common) != 0) {
    size_t lo = 0, hi = common;
    // Binary search over prefixes: the first diverging byte is the
    // smallest `hi` whose prefix comparison fails.
    while (lo < hi) {
      const size_t mid = lo + (hi - lo) / 2 + 1;
      if (std::memcmp(ra.data(), rb.data(), mid) == 0) {
        lo = mid;
      } else {
        hi = mid - 1;
      }
    }
    byte = lo;
  }

  if (byte == common && ra.size() == rb.size()) {
    std::printf("identical: %llu records\n",
                static_cast<unsigned long long>(ja.record_count()));
    return 0;
  }

  if (byte == common) {
    // Equal prefix, different lengths: one run kept deciding after the
    // other stopped.
    const bool a_longer = ra.size() > rb.size();
    const JournalReader& longer = a_longer ? ja : jb;
    const uint64_t index = common / obs::kJournalRecordSize;
    std::printf("%s is a strict prefix of %s: first extra record at "
                "index %llu of %s\n",
                (a_longer ? path_b : path_a).c_str(),
                (a_longer ? path_a : path_b).c_str(),
                static_cast<unsigned long long>(index),
                (a_longer ? path_a : path_b).c_str());
    std::printf("  > %s\n",
                FormatRecord(longer.record(index), longer.meta()).c_str());
    return 1;
  }

  const uint64_t index = byte / obs::kJournalRecordSize;
  std::printf("first divergence at record %llu (byte %llu)\n",
              static_cast<unsigned long long>(index),
              static_cast<unsigned long long>(byte));

  // Field-level delta of the diverging decision.
  const JournalRecord da = ja.record(index);
  const JournalRecord db = jb.record(index);
  if (da.kind != db.kind) {
    std::printf("  kind: %s vs %s\n", obs::JournalKindName(da.kind),
                obs::JournalKindName(db.kind));
  }
  if (da.flags != db.flags) {
    std::printf("  flags: %s vs %s\n", FlagNames(da.flags).c_str(),
                FlagNames(db.flags).c_str());
  }
  if (da.extra != db.extra) {
    std::printf("  extra: %u vs %u\n", da.extra, db.extra);
  }
  if (da.url != db.url) {
    std::printf("  url: %s vs %s\n", IdOrDash(da.url).c_str(),
                IdOrDash(db.url).c_str());
  }
  if (da.link != db.link) {
    std::printf("  link: %s vs %s\n", IdOrDash(da.link).c_str(),
                IdOrDash(db.link).c_str());
  }
  if (da.host != db.host) {
    std::printf("  host: %s vs %s\n", IdOrDash(da.host).c_str(),
                IdOrDash(db.host).c_str());
  }
  if (da.priority != db.priority) {
    std::printf("  priority: %d vs %d\n", da.priority, db.priority);
  }
  if (da.depth != db.depth) {
    std::printf("  depth: %u vs %u\n", da.depth, db.depth);
  }
  if (da.a != db.a) {
    std::printf("  a: %llu vs %llu\n", static_cast<unsigned long long>(da.a),
                static_cast<unsigned long long>(db.a));
  }
  if (da.b != db.b) {
    std::printf("  b: %llu vs %llu\n", static_cast<unsigned long long>(da.b),
                static_cast<unsigned long long>(db.b));
  }

  PrintContext(path_a.c_str(), ja, index, 3);
  PrintContext(path_b.c_str(), jb, index, 3);
  return 1;
}

int Main(int argc, char** argv) {
  if (argc < 2) return Usage(argv[0]);
  const std::string_view command = argv[1];
  if (command == "info" && argc == 3) return CmdInfo(argv[2]);
  if (command == "verify" && argc == 3) return CmdVerify(argv[2]);
  if (command == "why" && argc == 4) return CmdWhy(argv[2], argv[3]);
  if (command == "stats" && argc == 3) return CmdStats(argv[2]);
  if (command == "diff" && argc == 4) return CmdDiff(argv[2], argv[3]);
  return Usage(argv[0]);
}

}  // namespace
}  // namespace lswc

int main(int argc, char** argv) { return lswc::Main(argc, argv); }
