#!/usr/bin/env python3
"""CI perf-regression gate over BENCH_*.json reports.

Compares every BENCH_<name>.json present in --baseline against the same
file in --current and fails (exit 1) when either:

  * aggregate pages/sec regressed by more than --max-regression
    (fractional, default 0.30 = 30%), or
  * any per-run or per-series content hash differs — the simulation is
    deterministic, so a hash mismatch is a correctness change, not noise,
    and is never tolerated, or
  * a BENCH report exists in --current with no baseline counterpart — a
    new benchmark must land together with its baseline, otherwise it runs
    ungated forever.

Peak RSS (schema field `peak_rss_bytes`, 0 on platforms without VmHWM)
is additionally compared and WARNS — never fails — when it grew by more
than --max-rss-growth (default 0.30): memory regressions are worth
eyeballs but are too machine-dependent to gate merges on.

Baseline files live in bench_out/baseline/ in the repository; refresh
them with the procedure in EXPERIMENTS.md ("Refreshing the perf
baseline") whenever an intentional behavior or performance change lands.
"""

import argparse
import json
import pathlib
import sys


def load_reports(directory):
    reports = {}
    for path in sorted(pathlib.Path(directory).glob("BENCH_*.json")):
        with open(path) as f:
            reports[path.name] = json.load(f)
    return reports


def stage_growth(base, cur):
    """Attributes a throughput regression to crawl stages using the
    schema-v2 obs block: per-stage share of total crawl time, baseline
    vs current, sorted by growth. Returns [] when either report has no
    usable obs block (schema-v1 baselines stay supported)."""
    def shares(report):
        stages = report.get("obs", {}).get("stages", {})
        totals = {name: stage.get("total_ns", 0)
                  for name, stage in stages.items()}
        overall = sum(totals.values())
        if overall <= 0:
            return None
        return {name: ns / overall for name, ns in totals.items()}

    base_shares = shares(base)
    cur_shares = shares(cur)
    if base_shares is None or cur_shares is None:
        return []
    growth = [(cur_shares.get(name, 0.0) - base_shares.get(name, 0.0), name)
              for name in set(base_shares) | set(cur_shares)]
    growth.sort(reverse=True)
    return [f"stage '{name}' share {base_shares.get(name, 0.0):.1%} -> "
            f"{cur_shares.get(name, 0.0):.1%} ({delta:+.1%})"
            for delta, name in growth[:3] if delta > 0]


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="directory of checked-in BENCH_*.json files")
    parser.add_argument("--current", required=True,
                        help="directory of freshly generated BENCH_*.json")
    parser.add_argument("--max-regression", type=float, default=0.30,
                        help="max tolerated fractional pages/sec drop")
    parser.add_argument("--max-rss-growth", type=float, default=0.30,
                        help="fractional peak-RSS growth that triggers a "
                             "warning (never a failure)")
    args = parser.parse_args()

    baseline = load_reports(args.baseline)
    current = load_reports(args.current)
    if not baseline:
        print(f"error: no BENCH_*.json under {args.baseline}")
        return 1

    failures = []
    warnings = []
    for name, base in sorted(baseline.items()):
        if name not in current:
            failures.append(f"{name}: missing from {args.current}")
            continue
        cur = current[name]

        base_pps = base.get("pages_per_sec", 0.0)
        cur_pps = cur.get("pages_per_sec", 0.0)
        floor = base_pps * (1.0 - args.max_regression)
        verdict = "ok"
        if base_pps > 0 and cur_pps < floor:
            verdict = "REGRESSED"
            failures.append(
                f"{name}: pages/sec {cur_pps:.0f} < floor {floor:.0f} "
                f"(baseline {base_pps:.0f}, max regression "
                f"{args.max_regression:.0%})")
            # Point at the stage whose time share grew most (needs obs
            # blocks on both sides; silently absent for v1 reports).
            for line in stage_growth(base, cur):
                failures.append(f"{name}:   {line}")
        print(f"{name}: pages/sec baseline {base_pps:.0f} -> current "
              f"{cur_pps:.0f} [{verdict}]")

        # Memory trajectory: warn-only (old baselines lack the field,
        # and RSS varies with allocator and kernel far more than the
        # deterministic series do).
        base_rss = base.get("peak_rss_bytes", 0)
        cur_rss = cur.get("peak_rss_bytes", 0)
        if base_rss > 0 and cur_rss > base_rss * (1.0 + args.max_rss_growth):
            growth = cur_rss / base_rss - 1.0
            warnings.append(
                f"{name}: peak RSS grew {growth:+.0%} — baseline "
                f"{base_rss / 2**20:.1f} MiB -> current "
                f"{cur_rss / 2**20:.1f} MiB "
                f"(+{(cur_rss - base_rss) / 2**20:.1f} MiB, threshold "
                f"{args.max_rss_growth:.0%})")

        base_runs = {r["name"]: r for r in base.get("runs", [])}
        cur_runs = {r["name"]: r for r in cur.get("runs", [])}
        for run_name, base_run in base_runs.items():
            cur_run = cur_runs.get(run_name)
            if cur_run is None:
                failures.append(f"{name}: run '{run_name}' missing")
                continue
            if base_run.get("series_hash") != cur_run.get("series_hash"):
                failures.append(
                    f"{name}: run '{run_name}' series hash changed "
                    f"{base_run.get('series_hash')} -> "
                    f"{cur_run.get('series_hash')} (determinism break)")

        base_series = {s["file"]: s for s in base.get("series", [])}
        cur_series = {s["file"]: s for s in cur.get("series", [])}
        for file_name, base_entry in base_series.items():
            cur_entry = cur_series.get(file_name)
            if cur_entry is None:
                failures.append(f"{name}: series '{file_name}' missing")
                continue
            if base_entry.get("hash") != cur_entry.get("hash"):
                failures.append(
                    f"{name}: series '{file_name}' hash changed "
                    f"{base_entry.get('hash')} -> {cur_entry.get('hash')}")

    for name in sorted(current):
        if name not in baseline:
            failures.append(
                f"{name}: present in {args.current} but has no baseline in "
                f"{args.baseline}; check in a baseline for new benchmarks")

    if warnings:
        print("\nWARNINGS (non-fatal):")
        for warning in warnings:
            print(f"  ! {warning}")

    if failures:
        print("\nPERF GATE FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print("\nperf gate passed "
          f"({len(baseline)} report(s), max regression "
          f"{args.max_regression:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
