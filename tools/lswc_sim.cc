// lswc_sim — the command-line front end to the whole library: pick a
// dataset (preset generator or a crawl-log file), a classifier, one or
// more strategies and a fidelity mode, run the simulation(s), and get
// the summary plus a gnuplot-ready series.
//
//   lswc_sim --dataset=thai --pages=1000000 --strategy=plimited:2
//   lswc_sim --log=crawl.log --classifier=detector --render=head
//            --strategy=soft --out=run.dat
//   lswc_sim --dataset=thai --strategy=bfs,hard,soft --jobs=3
//   lswc_sim --dataset=thai --strategy=soft --politeness=16,1.0
//
// Strategies: bfs | hard | soft | limited:N | plimited:N | context:L |
//             hub:K (pilot crawl + HITS + boosted crawl). A
//             comma-separated list runs each strategy as an independent
//             simulation, fanned across --jobs workers; summaries print
//             in list order and --out writes per-strategy suffixed
//             files.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/batch_frontier.h"
#include "core/checkpoint.h"
#include "core/context_graph.h"
#include "core/crawl_observer.h"
#include "core/distiller.h"
#include "core/experiment_runner.h"
#include "core/politeness.h"
#include "core/simulator.h"
#include "obs/journal.h"
#include "obs/run_obs.h"
#include "obs/telemetry_plane.h"
#include "obs/trace_sink.h"
#include "store/memory_budget.h"
#include "store/mmap_link_db.h"
#include "store/stored_web_graph.h"
#include "util/string_util.h"
#include "webgraph/crawl_log.h"
#include "webgraph/generator.h"
#include "webgraph/link_db.h"
#include "webgraph/text_log.h"

namespace lswc {
namespace {

struct Args {
  std::string dataset = "thai";
  std::string log_path;
  uint32_t pages = 200'000;
  uint64_t seed = 0;
  /// Replay an LSWCDS1 dataset file (stream one with lswc_dataset)
  /// instead of generating; --dataset/--pages/--seed are then ignored.
  std::string dataset_file;
  /// Backend for --dataset-file: "mmap" (graph + link DB from one
  /// shared mapping, default), "ram" (copy everything to heap), or
  /// "disk" (graph in RAM, links through DiskLinkDb's LRU block cache —
  /// the cache is sized from --memory-budget-mb when given).
  std::string store = "mmap";
  /// Global memory budget in MiB (0 = unbudgeted): makes the spilling
  /// frontier the default and sizes it — plus the --store=disk link
  /// cache — from one store::PlanMemoryBudget pool.
  uint64_t memory_budget_mb = 0;
  std::string classifier = "meta";
  std::string strategy = "soft";
  std::string render = "auto";
  bool parse_html = false;
  uint64_t max_pages = 0;
  size_t frontier_capacity = 0;
  /// Frontier regime: "pop" (the paper's priority queues, default) or
  /// "batch" (rescore-and-select-top-K per iteration).
  std::string frontier = "pop";
  uint32_t batch_k = 0;       // URLs per batch iteration (0 = default).
  std::string scorers;        // Composite scorer spec (empty = default).
  /// Host-partitioned worker shards (0 = the serial engine). Output is
  /// bit-identical for every value; N > 1 parallelizes the visit work.
  uint32_t shards = 0;
  uint32_t shard_batch = 0;  // Visits planned per round (0 = default).
  std::string out_path;
  /// Decision journal output (empty = no journaling). Strategy lists
  /// suffix the path per strategy, like --out.
  std::string journal;
  bool politeness = false;
  int connections = 16;
  double interval_sec = 1.0;
  unsigned jobs = 0;  // 0 = all hardware threads.
  uint64_t checkpoint_every = 0;  // Pages between snapshots (0 = never).
  std::string snapshot_dir;
  /// Snapshot file to resume from, or a directory holding per-strategy
  /// <strategy>.snap files (resume-if-exists).
  std::string resume;
  /// Write the merged obs stats (stages + registry) as JSON.
  std::string stats_json;
  /// Write a Chrome trace-event file (one track per strategy).
  std::string trace_out;
  /// Print a progress line to stderr every N crawled pages.
  uint64_t progress_every = 0;
  /// Live telemetry plane (see docs/ARCHITECTURE.md "Telemetry
  /// plane"): status endpoint, stall watchdog, per-run flight recorder.
  std::string telemetry;
  uint64_t watchdog_secs = 0;
  bool watchdog_abort = false;
  uint64_t flight_recorder_events = 1024;
  std::string telemetry_dump;
  /// Fault injection for the watchdog CI drill: freeze the crawl thread
  /// forever once N pages have been fetched (0 = never). The process
  /// stays alive, so the stall watchdog's deadline elapses and its dump
  /// path fires — SIGSTOP would suspend the watchdog thread too.
  uint64_t stall_after = 0;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --dataset=thai|japanese      preset synthetic dataset (default thai)\n"
      "  --pages=N                    dataset size (default 200000)\n"
      "  --seed=N                     generator seed (default preset)\n"
      "  --log=FILE                   replay a crawl log (binary or text)\n"
      "  --dataset-file=FILE          replay an LSWCDS1 dataset file\n"
      "                               (stream one with lswc_dataset)\n"
      "  --store=mmap|ram|disk        dataset backend: shared mapping\n"
      "                               (default), heap copy, or DiskLinkDb\n"
      "                               block cache for the links\n"
      "  --memory-budget-mb=N         global budget: sizes the spilling\n"
      "                               frontier and the disk link cache\n"
      "  --classifier=meta|detector|composite|oracle\n"
      "  --strategy=bfs|hard|soft|limited:N|plimited:N|context:L|hub:K\n"
      "                               (comma-separated list fans out runs)\n"
      "  --render=auto|none|head|full page-byte fidelity\n"
      "  --parse-html                 extract links from rendered HTML\n"
      "  --max-pages=N                crawl budget (default: exhaust)\n"
      "  --frontier-capacity=N        bounded URL queue (default: unlimited)\n"
      "  --frontier=pop|batch         pop-order queues (default) or the\n"
      "                               batch-selection regime: rescore all\n"
      "                               pending URLs, crawl the top K, repeat\n"
      "  --batch-k=N                  batch size per selection iteration\n"
      "                               (default 256; needs --frontier=batch)\n"
      "  --scorers=SPEC               weighted scorer spec for --frontier=\n"
      "                               batch, e.g. lang:1.0,indegree:0.5\n"
      "                               (scorers: lang parent indegree depth\n"
      "                               random; default lang:1.0,parent:0.5)\n"
      "  --shards=N                   run the host-sharded engine with N\n"
      "                               worker shards (0 = serial engine;\n"
      "                               output is bit-identical either way)\n"
      "  --shard-batch=N              speculative visits per sharded round\n"
      "  --politeness=CONNS,INTERVAL  timed simulation (e.g. 16,1.0)\n"
      "  --jobs=N                     worker threads for strategy lists\n"
      "  --out=FILE                   write the metric series as .dat\n"
      "  --journal=FILE               record every crawl decision (seeds,\n"
      "                               fetches, link verdicts, batch\n"
      "                               selections) to a binary journal;\n"
      "                               inspect with lswc_journal\n"
      "  --checkpoint-every=N         snapshot the run state every N pages\n"
      "                               (requires --snapshot-dir)\n"
      "  --snapshot-dir=DIR           rolling per-strategy DIR/<name>.snap\n"
      "  --resume=PATH                resume from a snapshot file, or from\n"
      "                               DIR/<strategy>.snap when PATH is a\n"
      "                               directory (strategies without a\n"
      "                               snapshot start fresh)\n"
      "  --stats-json=FILE            write merged obs stats (stage timings\n"
      "                               + counters/histograms) as JSON\n"
      "  --trace-out=FILE             write a Chrome trace-event file (load\n"
      "                               in Perfetto / chrome://tracing)\n"
      "  --progress-every=N           progress line to stderr every N pages\n"
      "  --telemetry=ENDPOINT         serve live status on unix:PATH or\n"
      "                               tcp:[HOST:]PORT (/metrics Prometheus\n"
      "                               text, /progress JSON; tcp:0 picks an\n"
      "                               ephemeral port, printed as a stderr\n"
      "                               TELEMETRY line)\n"
      "  --watchdog-secs=N            dump the flight recorder + per-run\n"
      "                               attribution when no fetch completes\n"
      "                               for N seconds\n"
      "  --watchdog-abort             abort() when the watchdog fires\n"
      "  --flight-recorder-events=N   per-run crash/stall event ring size\n"
      "                               (default 1024; 0 disables)\n"
      "  --telemetry-dump=FILE        watchdog/crash dump file (default\n"
      "                               stderr)\n"
      "  --stall-after=N              fault injection: freeze the crawl\n"
      "                               thread forever after N fetches (the\n"
      "                               watchdog CI drill)\n",
      argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    auto value = [&](std::string_view prefix) -> std::optional<std::string_view> {
      if (!StartsWith(a, prefix)) return std::nullopt;
      return a.substr(prefix.size());
    };
    if (auto v = value("--dataset=")) {
      args->dataset = std::string(*v);
    } else if (auto v = value("--pages=")) {
      const auto n = ParseUint64(*v);
      if (!n || *n == 0 || *n > UINT32_MAX) return false;
      args->pages = static_cast<uint32_t>(*n);
    } else if (auto v = value("--seed=")) {
      const auto n = ParseUint64(*v);
      if (!n) return false;
      args->seed = *n;
    } else if (auto v = value("--log=")) {
      args->log_path = std::string(*v);
    } else if (auto v = value("--dataset-file=")) {
      if (v->empty()) return false;
      args->dataset_file = std::string(*v);
    } else if (auto v = value("--store=")) {
      if (*v != "mmap" && *v != "ram" && *v != "disk") {
        std::fprintf(stderr, "--store must be mmap, ram, or disk\n");
        return false;
      }
      args->store = std::string(*v);
    } else if (auto v = value("--memory-budget-mb=")) {
      const auto n = ParseUint64(*v);
      if (!n || *n == 0) return false;
      args->memory_budget_mb = *n;
    } else if (auto v = value("--classifier=")) {
      args->classifier = std::string(*v);
    } else if (auto v = value("--strategy=")) {
      args->strategy = std::string(*v);
    } else if (auto v = value("--render=")) {
      args->render = std::string(*v);
    } else if (a == "--parse-html") {
      args->parse_html = true;
    } else if (auto v = value("--max-pages=")) {
      const auto n = ParseUint64(*v);
      if (!n) return false;
      args->max_pages = *n;
    } else if (auto v = value("--frontier-capacity=")) {
      const auto n = ParseUint64(*v);
      if (!n) return false;
      args->frontier_capacity = *n;
    } else if (auto v = value("--frontier=")) {
      if (*v != "pop" && *v != "batch") {
        std::fprintf(stderr, "--frontier must be pop or batch\n");
        return false;
      }
      args->frontier = std::string(*v);
    } else if (auto v = value("--batch-k=")) {
      const auto n = ParseUint64(*v);
      if (!n || *n == 0 || *n > UINT32_MAX) return false;
      args->batch_k = static_cast<uint32_t>(*n);
    } else if (auto v = value("--scorers=")) {
      if (v->empty()) return false;
      args->scorers = std::string(*v);
    } else if (auto v = value("--shards=")) {
      const auto n = ParseUint64(*v);
      if (!n || *n > 256) return false;
      args->shards = static_cast<uint32_t>(*n);
    } else if (auto v = value("--shard-batch=")) {
      const auto n = ParseUint64(*v);
      if (!n || *n == 0) return false;
      args->shard_batch = static_cast<uint32_t>(*n);
    } else if (auto v = value("--politeness=")) {
      args->politeness = true;
      const auto parts = Split(*v, ',');
      if (parts.size() != 2) return false;
      const auto conns = ParseUint64(parts[0]);
      const auto interval = ParseDouble(parts[1]);
      if (!conns || !interval || *conns == 0) return false;
      args->connections = static_cast<int>(*conns);
      args->interval_sec = *interval;
    } else if (auto v = value("--jobs=")) {
      const auto n = ParseUint64(*v);
      if (!n || *n == 0 || *n > 1024) return false;
      args->jobs = static_cast<unsigned>(*n);
    } else if (auto v = value("--out=")) {
      args->out_path = std::string(*v);
    } else if (auto v = value("--journal=")) {
      if (v->empty()) return false;
      args->journal = std::string(*v);
    } else if (auto v = value("--checkpoint-every=")) {
      const auto n = ParseUint64(*v);
      if (!n || *n == 0) return false;
      args->checkpoint_every = *n;
    } else if (auto v = value("--snapshot-dir=")) {
      if (v->empty()) return false;
      args->snapshot_dir = std::string(*v);
    } else if (auto v = value("--resume=")) {
      if (v->empty()) return false;
      args->resume = std::string(*v);
    } else if (auto v = value("--stats-json=")) {
      if (v->empty()) return false;
      args->stats_json = std::string(*v);
    } else if (auto v = value("--trace-out=")) {
      if (v->empty()) return false;
      args->trace_out = std::string(*v);
    } else if (auto v = value("--progress-every=")) {
      const auto n = ParseUint64(*v);
      if (!n || *n == 0) return false;
      args->progress_every = *n;
    } else if (auto v = value("--telemetry=")) {
      if (v->empty()) return false;
      args->telemetry = std::string(*v);
    } else if (auto v = value("--watchdog-secs=")) {
      const auto n = ParseUint64(*v);
      if (!n || *n == 0) return false;
      args->watchdog_secs = *n;
    } else if (a == "--watchdog-abort") {
      args->watchdog_abort = true;
    } else if (auto v = value("--flight-recorder-events=")) {
      const auto n = ParseUint64(*v);
      if (!n) return false;
      args->flight_recorder_events = *n;
    } else if (auto v = value("--telemetry-dump=")) {
      if (v->empty()) return false;
      args->telemetry_dump = std::string(*v);
    } else if (auto v = value("--stall-after=")) {
      const auto n = ParseUint64(*v);
      if (!n || *n == 0) return false;
      args->stall_after = *n;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return false;
    }
  }
  if (args->checkpoint_every != 0 && args->snapshot_dir.empty()) {
    std::fprintf(stderr, "--checkpoint-every requires --snapshot-dir\n");
    return false;
  }
  if (!args->journal.empty() && !args->resume.empty()) {
    std::fprintf(stderr,
                 "--journal and --resume are exclusive: a journal must "
                 "cover the run from its first seed, and a resumed crawl's "
                 "earlier decisions are gone\n");
    return false;
  }
  if (!args->dataset_file.empty() && !args->log_path.empty()) {
    std::fprintf(stderr, "--dataset-file and --log are exclusive\n");
    return false;
  }
  if (args->shards != 0 && args->politeness) {
    std::fprintf(stderr,
                 "--shards applies to the timeless simulator only; the "
                 "politeness simulator has its own per-host scheduler\n");
    return false;
  }
  if (args->frontier != "batch") {
    if (args->batch_k != 0) {
      std::fprintf(stderr, "--batch-k requires --frontier=batch\n");
      return false;
    }
    if (!args->scorers.empty()) {
      std::fprintf(stderr, "--scorers requires --frontier=batch\n");
      return false;
    }
  } else {
    if (args->politeness) {
      std::fprintf(stderr,
                   "--frontier=batch applies to the timeless simulator "
                   "only; --politeness pops from a per-host event queue\n");
      return false;
    }
    if (args->frontier_capacity != 0) {
      std::fprintf(stderr,
                   "--frontier=batch is incompatible with "
                   "--frontier-capacity: batch selection rescores the "
                   "complete pending set and never sheds URLs\n");
      return false;
    }
  }
  return true;
}

/// --stall-after fault injection: after N fetches the observer sleeps
/// forever on the crawl thread, so no further fetch completes, the
/// telemetry heartbeat stops, and the stall watchdog fires — the CI
/// drill for the watchdog + flight-recorder dump. (SIGSTOP can't stage
/// this: it would suspend the watchdog thread along with the crawl.)
class StallInjector final : public CrawlObserver {
 public:
  explicit StallInjector(uint64_t after) : after_(after) {}

  void OnFetch(const FetchEvent& event) override {
    if (after_ == 0 || ++fetches_ < after_) return;
    std::fprintf(stderr, "STALL-INJECT frozen after %llu fetches\n",
                 static_cast<unsigned long long>(event.pages_crawled));
    for (;;) std::this_thread::sleep_for(std::chrono::hours(1));
  }

 private:
  const uint64_t after_;
  uint64_t fetches_ = 0;
};

/// The graph plus, for --store=mmap replays, the StoredWebGraph that
/// owns the mapping every per-strategy MmapLinkDb shares.
struct LoadedDataset {
  WebGraph graph;
  std::unique_ptr<store::StoredWebGraph> stored;
};

StatusOr<LoadedDataset> LoadGraph(const Args& args) {
  if (!args.dataset_file.empty()) {
    if (args.store == "mmap") {
      auto stored = store::StoredWebGraph::Open(args.dataset_file);
      LSWC_RETURN_IF_ERROR(stored.status());
      WebGraph graph = (*stored)->NewView();
      return LoadedDataset{std::move(graph), std::move(stored).value()};
    }
    // "ram" and "disk" both hold the graph on the heap; disk differs
    // only in serving links through DiskLinkDb (per strategy, below).
    auto graph = store::StoredWebGraph::ReadInRam(args.dataset_file);
    LSWC_RETURN_IF_ERROR(graph.status());
    return LoadedDataset{std::move(graph).value(), nullptr};
  }
  if (!args.log_path.empty()) {
    auto binary = ReadCrawlLog(args.log_path);
    if (binary.ok()) return LoadedDataset{std::move(binary).value(), nullptr};
    auto text = ReadTextLogFile(args.log_path);
    LSWC_RETURN_IF_ERROR(text.status());
    return LoadedDataset{std::move(text).value(), nullptr};
  }
  SyntheticWebOptions options = args.dataset == "japanese"
                                    ? JapaneseLikeOptions(args.pages)
                                    : ThaiLikeOptions(args.pages);
  if (args.dataset != "japanese" && args.dataset != "thai") {
    return Status::InvalidArgument("unknown dataset " + args.dataset);
  }
  if (args.seed != 0) options.seed = args.seed;
  auto generated = GenerateWebGraph(options);
  LSWC_RETURN_IF_ERROR(generated.status());
  return LoadedDataset{std::move(generated).value(), nullptr};
}

StatusOr<std::unique_ptr<Classifier>> MakeClassifier(const Args& args,
                                                     Language target) {
  if (args.classifier == "meta") {
    return std::unique_ptr<Classifier>(new MetaTagClassifier(target));
  }
  if (args.classifier == "detector") {
    return std::unique_ptr<Classifier>(new DetectorClassifier(target));
  }
  if (args.classifier == "composite") {
    return std::unique_ptr<Classifier>(new CompositeClassifier(target));
  }
  if (args.classifier == "oracle") {
    return std::unique_ptr<Classifier>(new OracleClassifier(target));
  }
  return Status::InvalidArgument("unknown classifier " + args.classifier);
}

StatusOr<std::unique_ptr<CrawlStrategy>> MakeStrategy(
    const std::string& s, const WebGraph& graph, Classifier* classifier) {
  if (s == "bfs") return std::unique_ptr<CrawlStrategy>(new BreadthFirstStrategy());
  if (s == "hard") return std::unique_ptr<CrawlStrategy>(new HardFocusedStrategy());
  if (s == "soft") return std::unique_ptr<CrawlStrategy>(new SoftFocusedStrategy());
  const size_t colon = s.find(':');
  const std::string kind = s.substr(0, colon);
  std::optional<uint64_t> param;
  if (colon != std::string::npos) {
    param = ParseUint64(std::string_view(s).substr(colon + 1));
  }
  if (kind == "limited" || kind == "plimited") {
    if (!param || *param > 254) {
      return Status::InvalidArgument("strategy needs :N in [0,254]");
    }
    return std::unique_ptr<CrawlStrategy>(new LimitedDistanceStrategy(
        static_cast<int>(*param), kind == "plimited"));
  }
  if (kind == "context") {
    if (!param || *param == 0 || *param > 64) {
      return Status::InvalidArgument("context needs :L in [1,64]");
    }
    return std::unique_ptr<CrawlStrategy>(new ContextGraphStrategy(
        ComputeContextLayers(graph), static_cast<int>(*param)));
  }
  if (kind == "hub") {
    if (!param || *param == 0) {
      return Status::InvalidArgument("hub needs :K > 0");
    }
    // Pilot crawl to collect the relevant set, then distill.
    const SoftFocusedStrategy pilot;
    auto pilot_run = RunSimulation(graph, classifier, pilot);
    if (!pilot_run.ok()) return pilot_run.status();
    std::vector<PageId> relevant;
    for (PageId p = 0; p < graph.num_pages(); ++p) {
      if (graph.IsRelevant(p)) relevant.push_back(p);
    }
    auto scores = ComputeHits(graph, relevant);
    if (!scores.ok()) return scores.status();
    return std::unique_ptr<CrawlStrategy>(new HubBoostStrategy(
        graph.num_pages(), TopHubs(*scores, *param)));
  }
  return Status::InvalidArgument("unknown strategy " + s);
}

StatusOr<RenderMode> ResolveRender(const Args& args) {
  if (args.render == "auto") {
    RenderMode render =
        (args.classifier == "detector" || args.classifier == "composite")
            ? RenderMode::kHead
            : RenderMode::kNone;
    if (args.parse_html) render = RenderMode::kFull;
    return render;
  }
  if (args.render == "none") return RenderMode::kNone;
  if (args.render == "head") return RenderMode::kHead;
  if (args.render == "full") return RenderMode::kFull;
  return Status::InvalidArgument("unknown render mode " + args.render);
}

/// The series path for strategy `index` of `count`: --out verbatim for
/// a single strategy, "run.dat" -> "run.plimited-2.dat" for lists.
std::string OutPathFor(const Args& args, const std::string& strategy,
                       size_t count) {
  if (args.out_path.empty() || count == 1) return args.out_path;
  std::string tag = strategy;
  for (char& c : tag) {
    if (c == ':' || c == '/') c = '-';
  }
  const size_t dot = args.out_path.rfind('.');
  const size_t slash = args.out_path.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return args.out_path + "." + tag;
  }
  return args.out_path.substr(0, dot) + "." + tag +
         args.out_path.substr(dot);
}

/// The journal path for one strategy: same per-strategy suffixing as
/// OutPathFor so `--journal=run.jrnl --strategy=a,b` writes
/// run.a.jrnl and run.b.jrnl.
std::string JournalPathFor(const Args& args, const std::string& strategy,
                           size_t count) {
  if (args.journal.empty() || count == 1) return args.journal;
  std::string tag = strategy;
  for (char& c : tag) {
    if (c == ':' || c == '/') c = '-';
  }
  const size_t dot = args.journal.rfind('.');
  const size_t slash = args.journal.rfind('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return args.journal + "." + tag;
  }
  return args.journal.substr(0, dot) + "." + tag +
         args.journal.substr(dot);
}

/// Runs one strategy spec end to end (own classifier, strategy, web
/// view) and appends the human-readable summary to `*output`. Safe to
/// call concurrently for different specs.
Status RunOneStrategy(const Args& args, const WebGraph& graph,
                      const store::StoredWebGraph* stored,
                      const std::string& strategy_spec,
                      const std::string& out_path,
                      const std::string& journal_path, obs::RunObs* obs,
                      std::string* output) {
  auto classifier = MakeClassifier(args, graph.target_language());
  LSWC_RETURN_IF_ERROR(classifier.status());
  auto strategy = MakeStrategy(strategy_spec, graph, classifier->get());
  LSWC_RETURN_IF_ERROR(strategy.status());
  auto render = ResolveRender(args);
  LSWC_RETURN_IF_ERROR(render.status());

  // Open the decision journal before anything runs so a setup failure
  // (bad path, full disk) aborts the run instead of losing the record.
  std::unique_ptr<obs::JournalWriter> journal;
  if (!journal_path.empty()) {
    const bool batch = args.frontier == "batch";
    obs::JournalMeta meta;
    meta.num_pages = graph.num_pages();
    meta.num_hosts = graph.num_hosts();
    meta.num_links = graph.num_links();
    meta.generator_seed = graph.generator_seed();
    meta.target_language =
        std::string(LanguageName(graph.target_language()));
    meta.strategy = strategy_spec;
    meta.classifier = (*classifier)->name();
    meta.regime = args.politeness ? "politeness" : (batch ? "batch" : "pop");
    // Record the *resolved* batch identity, not the flag values, so
    // two journals compare equal iff the crawls were configured equal.
    meta.batch_k =
        batch ? (args.batch_k == 0 ? kDefaultBatchK : args.batch_k) : 0;
    meta.scorer_spec =
        batch ? (args.scorers.empty() ? kDefaultScorerSpec : args.scorers)
              : "";
    auto writer = obs::JournalWriter::Open(journal_path, std::move(meta));
    LSWC_RETURN_IF_ERROR(writer.status());
    journal = std::move(writer).value();
    journal->set_host_lookup(
        [&graph](uint32_t url) { return graph.page(url).host; });
  }

  // Link DB per backend: mmap serves straight from the shared dataset
  // mapping, disk streams target blocks through an LRU cache (sized
  // from the budget plan when one is set), everything else replays from
  // the in-memory graph.
  std::unique_ptr<LinkDb> link_db;
  if (stored != nullptr) {
    link_db = std::make_unique<store::MmapLinkDb>(*stored);
  } else if (!args.dataset_file.empty() && args.store == "disk") {
    DiskLinkDb::Options cache;
    if (args.memory_budget_mb != 0) {
      const store::MemoryBudgetPlan plan =
          store::PlanMemoryBudget(args.memory_budget_mb);
      cache.block_words = plan.link_cache_block_words;
      cache.max_cached_blocks = plan.linkdb_cache_blocks;
    }
    auto disk = DiskLinkDb::Open(args.dataset_file, cache);
    LSWC_RETURN_IF_ERROR(disk.status());
    link_db = std::move(disk).value();
  } else {
    link_db = std::make_unique<InMemoryLinkDb>(&graph);
  }
  if (obs != nullptr && obs->enabled) {
    link_db->AttachObs(&obs->registry);
    if (stored != nullptr) stored->AttachObs(&obs->registry);
  }
  VirtualWebSpace web(&graph, link_db.get(), *render);

  // Checkpoint/resume plumbing shared by both simulator kinds: each
  // strategy snapshots to (and resumes from) its own sanitized label.
  const std::string label = SanitizeSnapshotLabel(strategy_spec);
  std::string resume_path;
  if (!args.resume.empty()) {
    if (std::filesystem::is_directory(args.resume)) {
      const std::string candidate = args.resume + "/" + label + ".snap";
      if (std::filesystem::exists(candidate)) {
        resume_path = candidate;
        *output += StringPrintf("resuming from %s\n", candidate.c_str());
      }
    } else {
      resume_path = args.resume;
    }
  }

  // Each strategy run gets its own telemetry board when the plane is
  // configured (the custom RunSpec path bypasses ExperimentRunner's
  // auto-wiring, so the slot is filled here).
  obs::TelemetryContext* telemetry = nullptr;
  if (obs::TelemetryPlane::Instance().configured()) {
    telemetry = obs::TelemetryPlane::Instance().CreateContext(strategy_spec);
  }
  StallInjector stall_injector(args.stall_after);

  if (args.politeness) {
    PolitenessOptions options;
    options.num_connections = args.connections;
    options.min_access_interval_sec = args.interval_sec;
    options.max_pages = args.max_pages;
    options.checkpoint_every_pages = args.checkpoint_every;
    options.snapshot_dir = args.snapshot_dir;
    options.snapshot_label = label;
    options.resume_path = resume_path;
    options.obs = obs;
    options.progress_every = args.progress_every;
    options.telemetry = telemetry;
    options.run_label = strategy_spec;
    options.journal = journal.get();
    if (args.stall_after != 0) options.observers.push_back(&stall_injector);
    PolitenessSimulator sim(&web, classifier->get(), strategy->get(),
                            options);
    auto r = sim.Run();
    LSWC_RETURN_IF_ERROR(r.status());
    if (journal != nullptr) {
      LSWC_RETURN_IF_ERROR(journal->Finalize());
      *output += StringPrintf("journal -> %s\n", journal_path.c_str());
    }
    const PolitenessSummary& s = r->summary;
    *output += StringPrintf(
        "strategy %s: crawled %llu in %.0fs sim time "
        "(%.1f pages/s, stall %.1f%%)\n",
        (*strategy)->name().c_str(),
        static_cast<unsigned long long>(s.pages_crawled), s.sim_time_sec,
        s.pages_per_sec, 100.0 * s.politeness_stall_fraction);
    *output += StringPrintf(
        "harvest %.1f%% | coverage %.1f%% | max queue %zu\n",
        s.final_harvest_pct, s.final_coverage_pct, s.max_queue_size);
    if (!out_path.empty()) {
      LSWC_RETURN_IF_ERROR(r->series.WriteDatFile(out_path));
      *output += StringPrintf("series -> %s\n", out_path.c_str());
    }
    return Status::OK();
  }

  SimulationOptions options;
  options.max_pages = args.max_pages;
  options.parse_html = args.parse_html;
  options.frontier_capacity = args.frontier_capacity;
  options.frontier_kind = args.frontier == "pop" ? "" : args.frontier;
  options.batch_k = args.batch_k;
  options.scorers = args.scorers;
  options.shards = args.shards;
  options.shard_batch = args.shard_batch;
  options.dataset_file = args.dataset_file;
  options.memory_budget_mb = args.memory_budget_mb;
  options.checkpoint_every_pages = args.checkpoint_every;
  options.snapshot_dir = args.snapshot_dir;
  options.snapshot_label = label;
  options.resume_path = resume_path;
  options.obs = obs;
  options.progress_every = args.progress_every;
  options.telemetry = telemetry;
  options.run_label = strategy_spec;
  options.journal = journal.get();
  if (args.stall_after != 0) options.observers.push_back(&stall_injector);
  Simulator sim(&web, classifier->get(), strategy->get(), options);
  auto r = sim.Run();
  LSWC_RETURN_IF_ERROR(r.status());
  if (journal != nullptr) {
    LSWC_RETURN_IF_ERROR(journal->Finalize());
    *output += StringPrintf("journal -> %s\n", journal_path.c_str());
  }
  const SimulationSummary& s = r->summary;
  *output += StringPrintf("strategy %s with %s classifier:\n",
                          (*strategy)->name().c_str(),
                          (*classifier)->name().c_str());
  *output += StringPrintf(
      "crawled %llu | harvest %.1f%% | coverage %.1f%% | max queue %zu%s\n",
      static_cast<unsigned long long>(s.pages_crawled), s.final_harvest_pct,
      s.final_coverage_pct, s.max_queue_size,
      s.urls_dropped != 0
          ? StringPrintf(" | dropped %llu", static_cast<unsigned long long>(
                                                s.urls_dropped))
                .c_str()
          : "");
  if (s.classifier_confusion.total() > 0 && args.classifier != "oracle") {
    *output += StringPrintf("classifier precision %.3f recall %.3f\n",
                            s.classifier_confusion.precision(),
                            s.classifier_confusion.recall());
  }
  if (!out_path.empty()) {
    LSWC_RETURN_IF_ERROR(r->series.WriteDatFile(out_path));
    *output += StringPrintf("series -> %s\n", out_path.c_str());
  }
  return Status::OK();
}

int Run(const Args& args) {
  auto loaded_or = LoadGraph(args);
  if (!loaded_or.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 loaded_or.status().ToString().c_str());
    return 1;
  }
  const WebGraph& graph = loaded_or->graph;
  const store::StoredWebGraph* stored = loaded_or->stored.get();
  // Mapped replays read the precomputed stats section instead of
  // scanning 100M page records (which would page the whole section in).
  DatasetStats stats;
  if (stored != nullptr) {
    const store::DatasetStatsRecord& record = stored->stats();
    stats.total_urls = record.total_urls;
    stats.ok_html_pages = record.ok_html_pages;
    stats.relevant_ok_pages = record.relevant_ok_pages;
    stats.irrelevant_ok_pages = record.irrelevant_ok_pages;
  } else {
    stats = graph.ComputeStats();
  }
  std::printf("dataset: %zu URLs, %zu hosts, %zu links; %.1f%% of %llu OK "
              "pages relevant (%s)\n",
              graph.num_pages(), graph.num_hosts(), graph.num_links(),
              100.0 * stats.relevance_ratio(),
              static_cast<unsigned long long>(stats.ok_html_pages),
              std::string(LanguageName(graph.target_language())).c_str());

  std::vector<std::string> strategy_list;
  for (const auto& part : Split(args.strategy, ',')) {
    if (!part.empty()) strategy_list.emplace_back(part);
  }
  if (strategy_list.empty()) {
    std::fprintf(stderr, "no strategy given\n");
    return 1;
  }
  if (strategy_list.size() > 1 && !args.resume.empty() &&
      !std::filesystem::is_directory(args.resume)) {
    std::fprintf(stderr,
                 "--resume=FILE needs a single strategy; pass a snapshot "
                 "directory to resume a strategy list\n");
    return 1;
  }
  if (!args.snapshot_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(args.snapshot_dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create snapshot dir %s\n",
                   args.snapshot_dir.c_str());
      return 1;
    }
  }

  ExperimentRunner::Options runner_options;
  runner_options.jobs = args.jobs;
  runner_options.trace = !args.trace_out.empty();
  ExperimentRunner runner(runner_options);
  const int dataset = runner.AddDataset(&graph);
  std::vector<std::string> outputs(strategy_list.size());
  std::vector<RunSpec> specs;
  for (size_t i = 0; i < strategy_list.size(); ++i) {
    RunSpec spec;
    spec.name = strategy_list[i];
    spec.dataset = dataset;
    const std::string out_path =
        OutPathFor(args, strategy_list[i], strategy_list.size());
    const std::string journal_path =
        JournalPathFor(args, strategy_list[i], strategy_list.size());
    spec.custom = [&args, &strategy_list, &outputs, out_path, journal_path,
                   stored, i](const RunContext& context) {
      return RunOneStrategy(args, *context.graph, stored, strategy_list[i],
                            out_path, journal_path, context.obs,
                            &outputs[i]);
    };
    specs.push_back(std::move(spec));
  }
  const std::vector<RunResult> results = runner.Run(specs);

  int exit_code = 0;
  for (size_t i = 0; i < results.size(); ++i) {
    if (i > 0) std::printf("\n");
    std::fputs(outputs[i].c_str(), stdout);
    if (!results[i].status.ok()) {
      std::fprintf(stderr, "%s\n",
                   results[i].status.ToString().c_str());
      exit_code = 1;
    }
  }

  if (!args.stats_json.empty()) {
    obs::RunObs merged;
    MergeRunObs(results, &merged);
    if (merged.enabled) {
      const auto parent = std::filesystem::path(args.stats_json).parent_path();
      if (!parent.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(parent, ec);
      }
      std::ofstream f(args.stats_json);
      if (f.is_open()) {
        f << merged.StatsJson(/*include_times=*/true);
        std::printf("obs stats -> %s\n", args.stats_json.c_str());
      } else {
        std::fprintf(stderr, "cannot open %s\n", args.stats_json.c_str());
        exit_code = 1;
      }
    } else {
      std::fprintf(stderr, "--stats-json ignored (obs disabled)\n");
    }
  }
  if (!args.trace_out.empty()) {
    std::vector<const obs::TraceSink*> sinks;
    for (const RunResult& r : results) {
      if (r.obs != nullptr) r.obs->CollectTraceSinks(&sinks);
    }
    if (sinks.empty()) {
      std::fprintf(stderr, "--trace-out ignored (obs disabled)\n");
    } else {
      const Status status = obs::TraceSink::WriteFile(args.trace_out, sinks);
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        exit_code = 1;
      } else {
        std::printf("trace -> %s\n", args.trace_out.c_str());
      }
    }
  }
  return exit_code;
}

}  // namespace
}  // namespace lswc

namespace lswc {
namespace {
int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);
  obs::TelemetryOptions telemetry;
  telemetry.endpoint = args.telemetry;
  telemetry.watchdog_secs = args.watchdog_secs;
  telemetry.watchdog_abort = args.watchdog_abort;
  telemetry.flight_recorder_events = args.flight_recorder_events;
  telemetry.dump_path = args.telemetry_dump;
  obs::ConfigureTelemetryPlaneFromFlags(telemetry, argv[0]);
  return Run(args);
}
}  // namespace
}  // namespace lswc

int main(int argc, char** argv) { return lswc::Main(argc, argv); }
