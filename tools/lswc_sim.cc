// lswc_sim — the command-line front end to the whole library: pick a
// dataset (preset generator or a crawl-log file), a classifier, a
// strategy and a fidelity mode, run one simulation, and get the summary
// plus a gnuplot-ready series.
//
//   lswc_sim --dataset=thai --pages=1000000 --strategy=plimited:2
//   lswc_sim --log=crawl.log --classifier=detector --render=head
//            --strategy=soft --out=run.dat
//   lswc_sim --dataset=thai --strategy=soft --politeness=16,1.0
//
// Strategies: bfs | hard | soft | limited:N | plimited:N | context:L |
//             hub:K (pilot crawl + HITS + boosted crawl).

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/context_graph.h"
#include "core/distiller.h"
#include "core/politeness.h"
#include "core/simulator.h"
#include "util/string_util.h"
#include "webgraph/crawl_log.h"
#include "webgraph/generator.h"
#include "webgraph/text_log.h"

namespace lswc {
namespace {

struct Args {
  std::string dataset = "thai";
  std::string log_path;
  uint32_t pages = 200'000;
  uint64_t seed = 0;
  std::string classifier = "meta";
  std::string strategy = "soft";
  std::string render = "auto";
  bool parse_html = false;
  uint64_t max_pages = 0;
  size_t frontier_capacity = 0;
  std::string out_path;
  bool politeness = false;
  int connections = 16;
  double interval_sec = 1.0;
};

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "  --dataset=thai|japanese      preset synthetic dataset (default thai)\n"
      "  --pages=N                    dataset size (default 200000)\n"
      "  --seed=N                     generator seed (default preset)\n"
      "  --log=FILE                   replay a crawl log (binary or text)\n"
      "  --classifier=meta|detector|composite|oracle\n"
      "  --strategy=bfs|hard|soft|limited:N|plimited:N|context:L|hub:K\n"
      "  --render=auto|none|head|full page-byte fidelity\n"
      "  --parse-html                 extract links from rendered HTML\n"
      "  --max-pages=N                crawl budget (default: exhaust)\n"
      "  --frontier-capacity=N        bounded URL queue (default: unlimited)\n"
      "  --politeness=CONNS,INTERVAL  timed simulation (e.g. 16,1.0)\n"
      "  --out=FILE                   write the metric series as .dat\n",
      argv0);
  return 2;
}

bool ParseArgs(int argc, char** argv, Args* args) {
  for (int i = 1; i < argc; ++i) {
    const std::string_view a = argv[i];
    auto value = [&](std::string_view prefix) -> std::optional<std::string_view> {
      if (!StartsWith(a, prefix)) return std::nullopt;
      return a.substr(prefix.size());
    };
    if (auto v = value("--dataset=")) {
      args->dataset = std::string(*v);
    } else if (auto v = value("--pages=")) {
      const auto n = ParseUint64(*v);
      if (!n || *n == 0 || *n > UINT32_MAX) return false;
      args->pages = static_cast<uint32_t>(*n);
    } else if (auto v = value("--seed=")) {
      const auto n = ParseUint64(*v);
      if (!n) return false;
      args->seed = *n;
    } else if (auto v = value("--log=")) {
      args->log_path = std::string(*v);
    } else if (auto v = value("--classifier=")) {
      args->classifier = std::string(*v);
    } else if (auto v = value("--strategy=")) {
      args->strategy = std::string(*v);
    } else if (auto v = value("--render=")) {
      args->render = std::string(*v);
    } else if (a == "--parse-html") {
      args->parse_html = true;
    } else if (auto v = value("--max-pages=")) {
      const auto n = ParseUint64(*v);
      if (!n) return false;
      args->max_pages = *n;
    } else if (auto v = value("--frontier-capacity=")) {
      const auto n = ParseUint64(*v);
      if (!n) return false;
      args->frontier_capacity = *n;
    } else if (auto v = value("--politeness=")) {
      args->politeness = true;
      const auto parts = Split(*v, ',');
      if (parts.size() != 2) return false;
      const auto conns = ParseUint64(parts[0]);
      const auto interval = ParseDouble(parts[1]);
      if (!conns || !interval || *conns == 0) return false;
      args->connections = static_cast<int>(*conns);
      args->interval_sec = *interval;
    } else if (auto v = value("--out=")) {
      args->out_path = std::string(*v);
    } else {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return false;
    }
  }
  return true;
}

StatusOr<WebGraph> LoadGraph(const Args& args) {
  if (!args.log_path.empty()) {
    auto binary = ReadCrawlLog(args.log_path);
    if (binary.ok()) return binary;
    return ReadTextLogFile(args.log_path);
  }
  SyntheticWebOptions options = args.dataset == "japanese"
                                    ? JapaneseLikeOptions(args.pages)
                                    : ThaiLikeOptions(args.pages);
  if (args.dataset != "japanese" && args.dataset != "thai") {
    return Status::InvalidArgument("unknown dataset " + args.dataset);
  }
  if (args.seed != 0) options.seed = args.seed;
  return GenerateWebGraph(options);
}

StatusOr<std::unique_ptr<Classifier>> MakeClassifier(const Args& args,
                                                     Language target) {
  if (args.classifier == "meta") {
    return std::unique_ptr<Classifier>(new MetaTagClassifier(target));
  }
  if (args.classifier == "detector") {
    return std::unique_ptr<Classifier>(new DetectorClassifier(target));
  }
  if (args.classifier == "composite") {
    return std::unique_ptr<Classifier>(new CompositeClassifier(target));
  }
  if (args.classifier == "oracle") {
    return std::unique_ptr<Classifier>(new OracleClassifier(target));
  }
  return Status::InvalidArgument("unknown classifier " + args.classifier);
}

StatusOr<std::unique_ptr<CrawlStrategy>> MakeStrategy(
    const Args& args, const WebGraph& graph, Classifier* classifier) {
  const std::string& s = args.strategy;
  if (s == "bfs") return std::unique_ptr<CrawlStrategy>(new BreadthFirstStrategy());
  if (s == "hard") return std::unique_ptr<CrawlStrategy>(new HardFocusedStrategy());
  if (s == "soft") return std::unique_ptr<CrawlStrategy>(new SoftFocusedStrategy());
  const size_t colon = s.find(':');
  const std::string kind = s.substr(0, colon);
  std::optional<uint64_t> param;
  if (colon != std::string::npos) {
    param = ParseUint64(std::string_view(s).substr(colon + 1));
  }
  if (kind == "limited" || kind == "plimited") {
    if (!param || *param > 254) {
      return Status::InvalidArgument("strategy needs :N in [0,254]");
    }
    return std::unique_ptr<CrawlStrategy>(new LimitedDistanceStrategy(
        static_cast<int>(*param), kind == "plimited"));
  }
  if (kind == "context") {
    if (!param || *param == 0 || *param > 64) {
      return Status::InvalidArgument("context needs :L in [1,64]");
    }
    return std::unique_ptr<CrawlStrategy>(new ContextGraphStrategy(
        ComputeContextLayers(graph), static_cast<int>(*param)));
  }
  if (kind == "hub") {
    if (!param || *param == 0) {
      return Status::InvalidArgument("hub needs :K > 0");
    }
    // Pilot crawl to collect the relevant set, then distill.
    const SoftFocusedStrategy pilot;
    auto pilot_run = RunSimulation(graph, classifier, pilot);
    if (!pilot_run.ok()) return pilot_run.status();
    std::vector<PageId> relevant;
    for (PageId p = 0; p < graph.num_pages(); ++p) {
      if (graph.IsRelevant(p)) relevant.push_back(p);
    }
    auto scores = ComputeHits(graph, relevant);
    if (!scores.ok()) return scores.status();
    return std::unique_ptr<CrawlStrategy>(new HubBoostStrategy(
        graph.num_pages(), TopHubs(*scores, *param)));
  }
  return Status::InvalidArgument("unknown strategy " + s);
}

int Run(const Args& args) {
  auto graph_or = LoadGraph(args);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "dataset: %s\n",
                 graph_or.status().ToString().c_str());
    return 1;
  }
  const WebGraph& graph = *graph_or;
  const DatasetStats stats = graph.ComputeStats();
  std::printf("dataset: %zu URLs, %zu hosts, %zu links; %.1f%% of %llu OK "
              "pages relevant (%s)\n",
              graph.num_pages(), graph.num_hosts(), graph.num_links(),
              100.0 * stats.relevance_ratio(),
              static_cast<unsigned long long>(stats.ok_html_pages),
              std::string(LanguageName(graph.target_language())).c_str());

  auto classifier = MakeClassifier(args, graph.target_language());
  if (!classifier.ok()) {
    std::fprintf(stderr, "%s\n", classifier.status().ToString().c_str());
    return 1;
  }
  auto strategy = MakeStrategy(args, graph, classifier->get());
  if (!strategy.ok()) {
    std::fprintf(stderr, "%s\n", strategy.status().ToString().c_str());
    return 1;
  }

  RenderMode render = RenderMode::kNone;
  if (args.render == "auto") {
    render = (args.classifier == "detector" || args.classifier == "composite")
                 ? RenderMode::kHead
                 : RenderMode::kNone;
    if (args.parse_html) render = RenderMode::kFull;
  } else if (args.render == "none") {
    render = RenderMode::kNone;
  } else if (args.render == "head") {
    render = RenderMode::kHead;
  } else if (args.render == "full") {
    render = RenderMode::kFull;
  } else {
    std::fprintf(stderr, "unknown render mode %s\n", args.render.c_str());
    return 1;
  }

  InMemoryLinkDb link_db(&graph);
  VirtualWebSpace web(&graph, &link_db, render);

  if (args.politeness) {
    PolitenessOptions options;
    options.num_connections = args.connections;
    options.min_access_interval_sec = args.interval_sec;
    options.max_pages = args.max_pages;
    PolitenessSimulator sim(&web, classifier->get(), strategy->get(),
                            options);
    auto r = sim.Run();
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
    const PolitenessSummary& s = r->summary;
    std::printf("strategy %s: crawled %llu in %.0fs sim time "
                "(%.1f pages/s, stall %.1f%%)\n",
                (*strategy)->name().c_str(),
                static_cast<unsigned long long>(s.pages_crawled),
                s.sim_time_sec, s.pages_per_sec,
                100.0 * s.politeness_stall_fraction);
    std::printf("harvest %.1f%% | coverage %.1f%% | max queue %zu\n",
                s.final_harvest_pct, s.final_coverage_pct,
                s.max_queue_size);
    if (!args.out_path.empty()) {
      if (Status st = r->series.WriteDatFile(args.out_path); !st.ok()) {
        std::fprintf(stderr, "%s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("series -> %s\n", args.out_path.c_str());
    }
    return 0;
  }

  SimulationOptions options;
  options.max_pages = args.max_pages;
  options.parse_html = args.parse_html;
  options.frontier_capacity = args.frontier_capacity;
  Simulator sim(&web, classifier->get(), strategy->get(), options);
  auto r = sim.Run();
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  const SimulationSummary& s = r->summary;
  std::printf("strategy %s with %s classifier:\n",
              (*strategy)->name().c_str(), (*classifier)->name().c_str());
  std::printf("crawled %llu | harvest %.1f%% | coverage %.1f%% | max queue "
              "%zu%s\n",
              static_cast<unsigned long long>(s.pages_crawled),
              s.final_harvest_pct, s.final_coverage_pct, s.max_queue_size,
              s.urls_dropped != 0
                  ? StringPrintf(" | dropped %llu",
                                 static_cast<unsigned long long>(
                                     s.urls_dropped))
                        .c_str()
                  : "");
  if (s.classifier_confusion.total() > 0 && args.classifier != "oracle") {
    std::printf("classifier precision %.3f recall %.3f\n",
                s.classifier_confusion.precision(),
                s.classifier_confusion.recall());
  }
  if (!args.out_path.empty()) {
    if (Status st = r->series.WriteDatFile(args.out_path); !st.ok()) {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
      return 1;
    }
    std::printf("series -> %s\n", args.out_path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace lswc

namespace lswc {
namespace {
int Main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) return Usage(argv[0]);
  return Run(args);
}
}  // namespace
}  // namespace lswc

int main(int argc, char** argv) { return lswc::Main(argc, argv); }
