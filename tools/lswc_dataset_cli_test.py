#!/usr/bin/env python3
"""End-to-end out-of-core roundtrip, run under ctest.

Usage: lswc_dataset_cli_test.py /path/to/lswc_dataset /path/to/lswc_sim

The determinism contract under test: a stream-generated LSWCDS1 file,
replayed through any store backend (mmap, ram, disk) and any engine
(serial or sharded), must produce byte-identical series to a same-seed
run that generated the graph in RAM. Plus the CLI surface: info/verify
output, flag validation, and corruption rejection.
"""

import os
import subprocess
import sys
import tempfile

PASSES = []
FAILURES = []


def run(*cmd):
    return subprocess.run(list(cmd), capture_output=True, text=True,
                          timeout=300)


def check(name, condition, detail):
    if condition:
        PASSES.append(name)
    else:
        FAILURES.append(f"{name}: {detail}")


def main():
    if len(sys.argv) != 3:
        print(f"usage: {sys.argv[0]} /path/to/lswc_dataset /path/to/lswc_sim")
        return 2
    dataset_bin, sim_bin = sys.argv[1], sys.argv[2]

    with tempfile.TemporaryDirectory() as tmp:
        ds = os.path.join(tmp, "thai.ds")

        # --- generate + info + verify ---------------------------------
        r = run(dataset_bin, "generate", "--dataset=thai", "--pages=3000",
                f"--out={ds}")
        check("generate exits 0", r.returncode == 0,
              f"exit {r.returncode}, stderr {r.stderr!r}")
        check("dataset file written", os.path.exists(ds), f"{ds} missing")
        check("no temp files left",
              not any(f.endswith(".tmp") for f in os.listdir(tmp)),
              f"dir has {os.listdir(tmp)}")

        r = run(dataset_bin, "info", ds)
        check("info exits 0", r.returncode == 0,
              f"exit {r.returncode}, stderr {r.stderr!r}")
        check("info prints page count", "pages 3000" in r.stdout,
              f"stdout: {r.stdout!r}")
        check("info prints language", "target language" in r.stdout,
              f"stdout: {r.stdout!r}")

        r = run(dataset_bin, "verify", ds)
        check("verify exits 0", r.returncode == 0,
              f"exit {r.returncode}, stderr {r.stderr!r}")
        check("verify reports checksums", "checksums OK" in r.stdout,
              f"stdout: {r.stdout!r}")

        # --- bad CLI input --------------------------------------------
        check("generate without --out fails",
              run(dataset_bin, "generate").returncode == 2, "expected exit 2")
        check("unknown command fails",
              run(dataset_bin, "frobnicate", ds).returncode == 2,
              "expected exit 2")
        check("info on missing file fails",
              run(dataset_bin, "info", ds + ".nope").returncode == 1,
              "expected exit 1")

        # --- replay identity across backends and engines --------------
        # The preset seed governs both paths; --pages on the replay side
        # is ignored in favor of the file's own size.
        def sim(out, *flags):
            path = os.path.join(tmp, out)
            r = run(sim_bin, "--strategy=soft", f"--out={path}", *flags)
            check(f"sim {out} exits 0", r.returncode == 0,
                  f"exit {r.returncode}, stderr {r.stderr!r}")
            with open(path, "rb") as f:
                return f.read()

        generated = sim("gen.dat", "--dataset=thai", "--pages=3000")
        mmap = sim("mmap.dat", f"--dataset-file={ds}", "--store=mmap")
        ram = sim("ram.dat", f"--dataset-file={ds}", "--store=ram")
        disk = sim("disk.dat", f"--dataset-file={ds}", "--store=disk",
                   "--memory-budget-mb=64")
        sharded = sim("shard.dat", f"--dataset-file={ds}", "--store=mmap",
                      "--shards=4")
        budgeted = sim("budget.dat", f"--dataset-file={ds}", "--store=mmap",
                       "--memory-budget-mb=64")

        check("mmap replay == generated", mmap == generated,
              "series bytes differ")
        check("ram replay == generated", ram == generated,
              "series bytes differ")
        check("disk replay == generated", disk == generated,
              "series bytes differ")
        check("sharded mmap replay == generated", sharded == generated,
              "series bytes differ")
        check("budgeted mmap replay == generated", budgeted == generated,
              "series bytes differ")

        # --- replay flag validation -----------------------------------
        r = run(sim_bin, f"--dataset-file={ds}", "--store=floppy")
        check("bad store rejected", r.returncode == 2,
              f"exit {r.returncode}")
        r = run(sim_bin, f"--dataset-file={ds}", "--log=x.log")
        check("dataset-file + log rejected", r.returncode == 2,
              f"exit {r.returncode}")

        # --- corruption rejection -------------------------------------
        with open(ds, "rb") as f:
            blob = f.read()
        corrupt = os.path.join(tmp, "corrupt.ds")
        with open(corrupt, "wb") as f:
            f.write(blob[: len(blob) // 2])
        check("truncated file rejected by verify",
              run(dataset_bin, "verify", corrupt).returncode == 1,
              "expected exit 1")
        r = run(sim_bin, f"--dataset-file={corrupt}", "--strategy=soft")
        check("truncated file rejected by sim", r.returncode == 1,
              f"exit {r.returncode}, stderr {r.stderr!r}")

        flipped = os.path.join(tmp, "flipped.ds")
        body = bytearray(blob)
        body[len(body) // 3] ^= 0xFF  # Somewhere inside a section payload.
        with open(flipped, "wb") as f:
            f.write(body)
        check("bit flip rejected by verify",
              run(dataset_bin, "verify", flipped).returncode == 1,
              "expected exit 1")

    print(f"{len(PASSES)} checks passed")
    if FAILURES:
        print(f"{len(FAILURES)} checks FAILED:")
        for failure in FAILURES:
            print(f"  - {failure}")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
