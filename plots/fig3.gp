# gnuplot script regenerating the paper's Figure 3 from the bench output.
# Usage: build/bench/fig3_simple_thai --out-dir=bench_out && gnuplot plots/fig3.gp
set terminal pngcairo size 900,600
set key bottom right
set xlabel "pages crawled"

set output "bench_out/fig3a_harvest.png"
set ylabel "Harvest Rate [%]"
set yrange [0:100]
set title "Simple Strategies [Thai-like dataset] - harvest rate"
plot "bench_out/fig3a_harvest.dat" using 1:2 with lines lw 2 title "breadth-first", \
     "" using 1:3 with lines lw 2 title "hard-focused", \
     "" using 1:4 with lines lw 2 title "soft-focused"

set output "bench_out/fig3b_coverage.png"
set ylabel "Coverage [%]"
set title "Simple Strategies [Thai-like dataset] - coverage"
plot "bench_out/fig3b_coverage.dat" using 1:2 with lines lw 2 title "breadth-first", \
     "" using 1:3 with lines lw 2 title "hard-focused", \
     "" using 1:4 with lines lw 2 title "soft-focused"
