# Figure 4: simple strategies on the Japanese-like dataset.
set terminal pngcairo size 900,600
set xlabel "pages crawled"
set key bottom right

set output "bench_out/fig4a_harvest.png"
set ylabel "Harvest Rate [%]"
set yrange [0:100]
set title "Simple Strategies [Japanese-like dataset] - harvest rate"
plot "bench_out/fig4a_harvest.dat" using 1:2 with lines lw 2 title "breadth-first", \
     "" using 1:3 with lines lw 2 title "hard-focused", \
     "" using 1:4 with lines lw 2 title "soft-focused"

set output "bench_out/fig4b_coverage.png"
set ylabel "Coverage [%]"
set title "Simple Strategies [Japanese-like dataset] - coverage"
plot "bench_out/fig4b_coverage.dat" using 1:2 with lines lw 2 title "breadth-first", \
     "" using 1:3 with lines lw 2 title "hard-focused", \
     "" using 1:4 with lines lw 2 title "soft-focused"
