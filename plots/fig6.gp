# Figure 6: non-prioritized limited distance, N = 1..4.
set terminal pngcairo size 900,600
set xlabel "pages crawled"
set key bottom right

set output "bench_out/fig6a_queue.png"
set ylabel "URL Queue Size [URLs]"
set title "Non-Prioritized Limited Distance - queue size"
plot for [i=2:5] "bench_out/fig6a_queue.dat" using 1:i with lines lw 2 title sprintf("N=%d", i-1)

set output "bench_out/fig6b_harvest.png"
set ylabel "Harvest Rate [%]"
set yrange [0:100]
set title "Non-Prioritized Limited Distance - harvest rate"
plot for [i=2:5] "bench_out/fig6b_harvest.dat" using 1:i with lines lw 2 title sprintf("N=%d", i-1)

set output "bench_out/fig6c_coverage.png"
set ylabel "Coverage [%]"
set title "Non-Prioritized Limited Distance - coverage"
plot for [i=2:5] "bench_out/fig6c_coverage.dat" using 1:i with lines lw 2 title sprintf("N=%d", i-1)
