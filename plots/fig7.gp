# Figure 7: prioritized limited distance, N = 1..4.
set terminal pngcairo size 900,600
set xlabel "pages crawled"
set key bottom right

set output "bench_out/fig7a_queue.png"
set ylabel "URL Queue Size [URLs]"
set title "Prioritized Limited Distance - queue size"
plot for [i=2:5] "bench_out/fig7a_queue.dat" using 1:i with lines lw 2 title sprintf("PRIOR N=%d", i-1)

set output "bench_out/fig7b_harvest.png"
set ylabel "Harvest Rate [%]"
set yrange [0:100]
set title "Prioritized Limited Distance - harvest rate (curves coincide)"
plot for [i=2:5] "bench_out/fig7b_harvest.dat" using 1:i with lines lw 2 title sprintf("PRIOR N=%d", i-1)

set output "bench_out/fig7c_coverage.png"
set ylabel "Coverage [%]"
set title "Prioritized Limited Distance - coverage"
plot for [i=2:5] "bench_out/fig7c_coverage.dat" using 1:i with lines lw 2 title sprintf("PRIOR N=%d", i-1)
