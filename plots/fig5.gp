# Figure 5: URL queue size, simple strategies on the Thai-like dataset.
set terminal pngcairo size 900,600
set output "bench_out/fig5_queue.png"
set key top right
set xlabel "pages crawled"
set ylabel "URL Queue Size [URLs]"
set title "Size of URL Queue - Simple Strategy"
plot "bench_out/fig5_queue.dat" using 1:2 with lines lw 2 title "hard-focused", \
     "" using 1:3 with lines lw 2 title "soft-focused"
