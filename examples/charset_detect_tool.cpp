// A standalone charset-detection CLI over the lswc composite detector —
// the counterpart of the Mozilla charset detector the paper applies.
//
//   charset_detect_tool FILE...        detect each file
//   charset_detect_tool -              detect stdin
//   charset_detect_tool --demo         synthesize one sample per encoding
//                                      and detect it (self-check)

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "charset/codec.h"
#include "charset/detector.h"
#include "charset/text_gen.h"
#include "util/random.h"

namespace {

void Report(const std::string& name, std::string_view bytes) {
  const lswc::DetectionResult r = lswc::DetectEncoding(bytes);
  std::printf("%-32s %10zu bytes  %-12s confidence %.2f  language %s\n",
              name.c_str(), bytes.size(),
              std::string(lswc::EncodingName(r.encoding)).c_str(),
              r.confidence,
              std::string(
                  lswc::LanguageName(lswc::LanguageOfEncoding(r.encoding)))
                  .c_str());
}

int Demo() {
  using namespace lswc;
  Rng rng(2005);
  struct Sample {
    Language lang;
    Encoding encoding;
  };
  const Sample samples[] = {
      {Language::kJapanese, Encoding::kEucJp},
      {Language::kJapanese, Encoding::kShiftJis},
      {Language::kJapanese, Encoding::kIso2022Jp},
      {Language::kJapanese, Encoding::kUtf8},
      {Language::kThai, Encoding::kTis620},
      {Language::kThai, Encoding::kWindows874},
      {Language::kOther, Encoding::kAscii},
      {Language::kOther, Encoding::kLatin1},
  };
  for (const Sample& s : samples) {
    std::u32string text = GenerateText(s.lang, 240, &rng);
    if (s.encoding == Encoding::kWindows874) text = U'“' + text + U'”';
    auto bytes = EncodeText(s.encoding, text);
    if (!bytes.ok()) {
      std::fprintf(stderr, "encode failed: %s\n",
                   bytes.status().ToString().c_str());
      return 1;
    }
    Report("sample(" + std::string(EncodingName(s.encoding)) + ")", *bytes);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s FILE... | - | --demo\n", argv[0]);
    return 2;
  }
  if (std::strcmp(argv[1], "--demo") == 0) return Demo();
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-") == 0) {
      std::ostringstream buffer;
      buffer << std::cin.rdbuf();
      Report("<stdin>", buffer.str());
      continue;
    }
    std::ifstream file(argv[i], std::ios::binary);
    if (!file.is_open()) {
      std::fprintf(stderr, "%s: cannot open\n", argv[i]);
      return 1;
    }
    std::ostringstream buffer;
    buffer << file.rdbuf();
    Report(argv[i], buffer.str());
  }
  return 0;
}
