// Quickstart: build a small Thai-like synthetic web space, run the four
// §3.3 strategies over it, and print harvest/coverage/queue summaries.
//
// This walks the whole public API surface in ~60 lines of user code:
// generator -> graph -> classifier -> strategy -> simulator -> metrics.

#include <cstdio>
#include <memory>

#include "core/classifier.h"
#include "core/simulator.h"
#include "core/strategy.h"
#include "webgraph/generator.h"

int main() {
  using namespace lswc;

  // 1. A 50k-page Thai-like web space (≈35% of OK pages are Thai).
  SyntheticWebOptions options = ThaiLikeOptions(/*num_pages=*/50'000);
  auto graph_or = GenerateWebGraph(options);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "generator: %s\n",
                 graph_or.status().ToString().c_str());
    return 1;
  }
  const WebGraph& graph = *graph_or;
  const DatasetStats stats = graph.ComputeStats();
  std::printf("dataset: %zu pages on %zu hosts, %zu links\n",
              graph.num_pages(), graph.num_hosts(), graph.num_links());
  std::printf("         %llu OK pages, %.1f%% relevant (Thai)\n\n",
              static_cast<unsigned long long>(stats.ok_html_pages),
              100.0 * stats.relevance_ratio());

  // 2. The paper's Thai setup: relevance judged from the META charset.
  MetaTagClassifier classifier(Language::kThai);

  // 3. Run each strategy on the same virtual web space.
  const BreadthFirstStrategy bfs;
  const HardFocusedStrategy hard;
  const SoftFocusedStrategy soft;
  const LimitedDistanceStrategy limited(/*max_distance=*/2,
                                        /*prioritized=*/true);
  const CrawlStrategy* strategies[] = {&bfs, &hard, &soft, &limited};

  std::printf("%-32s %10s %10s %10s %12s\n", "strategy", "crawled",
              "harvest%", "coverage%", "max queue");
  for (const CrawlStrategy* strategy : strategies) {
    auto result = RunSimulation(graph, &classifier, *strategy);
    if (!result.ok()) {
      std::fprintf(stderr, "simulation: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    const SimulationSummary& s = result->summary;
    std::printf("%-32s %10llu %10.1f %10.1f %12zu\n",
                strategy->name().c_str(),
                static_cast<unsigned long long>(s.pages_crawled),
                s.final_harvest_pct, s.final_coverage_pct, s.max_queue_size);
  }
  return 0;
}
