// The paper's stated future work, implemented: a crawl simulation with
// transfer delays and per-host access intervals. The example contrasts
// the timeless trace replay with the politeness-aware run and shows how
// host concentration throttles a focused crawl in wall-clock terms.
//
// Run:  politeness_simulation [pages]

#include <cstdio>
#include <cstdlib>

#include "core/classifier.h"
#include "core/politeness.h"
#include "core/simulator.h"
#include "core/strategy.h"
#include "webgraph/generator.h"

int main(int argc, char** argv) {
  using namespace lswc;
  const uint32_t pages =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 100'000;

  auto graph_or = GenerateWebGraph(ThaiLikeOptions(pages));
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const WebGraph& graph = *graph_or;
  MetaTagClassifier classifier(Language::kThai);
  InMemoryLinkDb link_db(&graph);
  VirtualWebSpace web(&graph, &link_db, RenderMode::kNone);

  const SoftFocusedStrategy soft;
  const HardFocusedStrategy hard;

  std::printf("%-16s %6s %10s %12s %11s %9s %9s\n", "strategy", "conns",
              "interval", "sim time", "pages/sec", "stall", "coverage%");
  for (const CrawlStrategy* strategy :
       {static_cast<const CrawlStrategy*>(&hard),
        static_cast<const CrawlStrategy*>(&soft)}) {
    for (int connections : {4, 16, 64}) {
      PolitenessOptions options;
      options.num_connections = connections;
      options.min_access_interval_sec = 1.0;
      PolitenessSimulator sim(&web, &classifier, strategy, options);
      auto result = sim.Run();
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      const PolitenessSummary& s = result->summary;
      std::printf("%-16s %6d %9.1fs %11.0fs %11.1f %8.1f%% %9.1f\n",
                  strategy->name().c_str(), connections,
                  options.min_access_interval_sec, s.sim_time_sec,
                  s.pages_per_sec, 100.0 * s.politeness_stall_fraction,
                  s.final_coverage_pct);
    }
  }
  std::printf("\nreading: extra connections stop helping once every busy "
              "host is pinned at its access interval — the focused crawl "
              "concentrates on few hosts, so it is politeness-bound "
              "earlier than breadth-first would be.\n");
  return 0;
}
