// Extending the library with a custom priority-assignment strategy and
// a custom crawl observer.
//
// CrawlStrategy is the paper's "observer" extension point: implement
// OnLink and the simulator does the rest. The GradedFocusStrategy below
// generalizes soft-focused the same way prioritized-limited-distance
// generalizes hard-focused: it never discards a URL, but grades priority
// by the distance from the last relevant referrer — an unbounded,
// memory-hungry cousin of the paper's N-bounded strategy. Comparing the
// three shows exactly what the cutoff N buys (queue control) and costs
// (coverage of deep pockets).
//
// CrawlObserver is the engine-side extension point: attach one through
// SimulationOptions::observers to watch the crawl without touching the
// loop. The RePushMeter below counts how often the better-referrer rule
// re-pushes a pending URL — the hidden work behind each strategy's
// priority discipline.
//
// Run:  custom_strategy [pages]

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "core/classifier.h"
#include "core/crawl_observer.h"
#include "core/simulator.h"
#include "core/strategy.h"
#include "webgraph/generator.h"

namespace {

/// Soft-focused with graded levels: priority = max(0, L-1 - run), where
/// run is the consecutive-irrelevant count from the last relevant
/// referrer. Never discards; beyond L-1 everything pools in the lowest
/// level (compare LimitedDistanceStrategy, which cuts the path instead).
class GradedFocusStrategy final : public lswc::CrawlStrategy {
 public:
  explicit GradedFocusStrategy(int levels) : levels_(levels) {}

  lswc::LinkDecision OnLink(const lswc::ParentInfo& parent,
                            lswc::PageId child) const override {
    (void)child;
    const int run = parent.relevant ? 0 : parent.annotation + 1;
    lswc::LinkDecision d;
    d.enqueue = true;  // Soft family: never discard.
    d.annotation = static_cast<uint8_t>(std::min(run, 254));
    d.priority = std::max(0, levels_ - 1 - run);
    return d;
  }
  int seed_priority() const override { return levels_ - 1; }
  int num_priority_levels() const override { return levels_; }
  std::string name() const override {
    return "graded-focus(levels=" + std::to_string(levels_) + ")";
  }

 private:
  int levels_;
};

/// Counts better-referrer re-pushes. Opting into link events is what
/// makes the engine forward the per-link callbacks to this observer.
class RePushMeter final : public lswc::CrawlObserver {
 public:
  bool wants_link_events() const override { return true; }
  void OnRePush(lswc::PageId, const lswc::LinkDecision&) override {
    ++repushes_;
  }
  uint64_t repushes() const { return repushes_; }

 private:
  uint64_t repushes_ = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace lswc;
  const uint32_t pages =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 150'000;
  auto graph = GenerateWebGraph(ThaiLikeOptions(pages));
  if (!graph.ok()) {
    std::fprintf(stderr, "%s\n", graph.status().ToString().c_str());
    return 1;
  }
  MetaTagClassifier classifier(Language::kThai);

  const SoftFocusedStrategy soft;
  const LimitedDistanceStrategy limited(3, /*prioritized=*/true);
  const GradedFocusStrategy graded(4);

  std::printf("%-38s %9s %9s %9s %10s %10s\n", "strategy", "crawled",
              "harvest%", "coverage%", "max queue", "re-pushes");
  for (const CrawlStrategy* strategy :
       {static_cast<const CrawlStrategy*>(&soft),
        static_cast<const CrawlStrategy*>(&limited),
        static_cast<const CrawlStrategy*>(&graded)}) {
    RePushMeter meter;
    SimulationOptions options;
    options.observers.push_back(&meter);
    auto result = RunSimulation(*graph, &classifier, *strategy,
                                RenderMode::kNone, options);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const SimulationSummary& s = result->summary;
    std::printf("%-38s %9llu %9.1f %9.1f %10zu %10llu\n",
                strategy->name().c_str(),
                static_cast<unsigned long long>(s.pages_crawled),
                s.final_harvest_pct, s.final_coverage_pct, s.max_queue_size,
                static_cast<unsigned long long>(meter.repushes()));
  }
  std::printf("\ngraded-focus keeps soft-focused coverage (it never "
              "discards) while front-loading near-relevant URLs; the "
              "paper's limited-distance trades the deep tail away for a "
              "bounded queue.\n");
  return 0;
}
