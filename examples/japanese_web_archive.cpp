// The paper's Japanese configuration: relevance judged by the composite
// charset detector over real page bytes (the Mozilla-detector setup of
// §3.2), not by the author's META declaration. The example also reports
// the detector's crawl-time confusion matrix against ground truth and
// shows what the detector actually sees for a few pages.
//
// Run:  japanese_web_archive [pages]

#include <cstdio>
#include <cstdlib>

#include "charset/detector.h"
#include "core/classifier.h"
#include "core/simulator.h"
#include "core/strategy.h"
#include "webgraph/content_gen.h"
#include "webgraph/generator.h"

int main(int argc, char** argv) {
  using namespace lswc;
  const uint32_t pages =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 200'000;

  auto graph_or = GenerateWebGraph(JapaneseLikeOptions(pages));
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const WebGraph& graph = *graph_or;
  const DatasetStats stats = graph.ComputeStats();
  std::printf("Japanese-like web space: %zu URLs, %.1f%% of OK pages "
              "Japanese\n\n",
              graph.num_pages(), 100.0 * stats.relevance_ratio());

  // Peek at the byte-level pipeline for the first few OK pages.
  std::printf("detector warm-up peek:\n");
  int shown = 0;
  for (PageId p = 0; p < graph.num_pages() && shown < 5; ++p) {
    if (!graph.page(p).ok()) continue;
    ++shown;
    auto head = RenderPageHead(graph, p);
    const DetectionResult d = DetectEncoding(head.value());
    std::printf("  %-42s true=%-11s detected=%-11s conf=%.2f\n",
                graph.UrlOf(p).c_str(),
                std::string(EncodingName(graph.page(p).true_encoding)).c_str(),
                std::string(EncodingName(d.encoding)).c_str(), d.confidence);
  }

  DetectorClassifier classifier(Language::kJapanese);
  const BreadthFirstStrategy bfs;
  const HardFocusedStrategy hard;
  const SoftFocusedStrategy soft;
  const CrawlStrategy* strategies[] = {&bfs, &hard, &soft};

  std::printf("\n%-20s %9s %9s %9s %10s %10s\n", "strategy", "crawled",
              "harvest%", "coverage%", "precision", "recall");
  for (const CrawlStrategy* strategy : strategies) {
    auto result =
        RunSimulation(graph, &classifier, *strategy, RenderMode::kHead);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const SimulationSummary& s = result->summary;
    std::printf("%-20s %9llu %9.1f %9.1f %10.3f %10.3f\n",
                strategy->name().c_str(),
                static_cast<unsigned long long>(s.pages_crawled),
                s.final_harvest_pct, s.final_coverage_pct,
                s.classifier_confusion.precision(),
                s.classifier_confusion.recall());
  }
  std::printf("\nnote: even breadth-first harvests >%d%% here — the "
              "dataset's language specificity is high, which is why the "
              "paper runs its remaining experiments on the Thai dataset.\n",
              60);
  return 0;
}
