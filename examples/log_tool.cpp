// Crawl-log utility: inspect, convert and generate logs in both formats
// (binary "LSWCLOG1" and the hand-editable text format).
//
//   log_tool stats   <log>                  dataset statistics (Table 3)
//   log_tool to-text <in.log>  <out.txt>    binary -> text
//   log_tool to-bin  <in.txt>  <out.log>    text   -> binary
//   log_tool gen     thai|japanese <pages> <out.log>   synthesize
//   log_tool sample  <in.log> <pages> <out.log>         BFS downscale

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "webgraph/crawl_log.h"
#include "webgraph/generator.h"
#include "webgraph/sample.h"
#include "webgraph/text_log.h"

namespace {

using lswc::ReadCrawlLog;
using lswc::ReadTextLogFile;
using lswc::StatusOr;
using lswc::WebGraph;

// Reads either format, sniffing by the binary magic.
StatusOr<WebGraph> ReadAnyLog(const std::string& path) {
  auto binary = ReadCrawlLog(path);
  if (binary.ok()) return binary;
  return ReadTextLogFile(path);
}

int Stats(const std::string& path) {
  auto g = ReadAnyLog(path);
  if (!g.ok()) {
    std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
    return 1;
  }
  const lswc::DatasetStats s = g->ComputeStats();
  std::printf("target language : %s\n",
              std::string(LanguageName(g->target_language())).c_str());
  std::printf("URLs            : %llu\n",
              static_cast<unsigned long long>(s.total_urls));
  std::printf("OK HTML pages   : %llu\n",
              static_cast<unsigned long long>(s.ok_html_pages));
  std::printf("relevant        : %llu (%.1f%%)\n",
              static_cast<unsigned long long>(s.relevant_ok_pages),
              100.0 * s.relevance_ratio());
  std::printf("irrelevant      : %llu\n",
              static_cast<unsigned long long>(s.irrelevant_ok_pages));
  std::printf("hosts           : %zu\n", g->num_hosts());
  std::printf("links           : %zu\n", g->num_links());
  std::printf("seeds           : %zu\n", g->seeds().size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace lswc;
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s stats <log>\n"
                 "       %s to-text <in.log> <out.txt>\n"
                 "       %s to-bin <in.txt> <out.log>\n"
                 "       %s gen thai|japanese <pages> <out.log>\n"
                 "       %s sample <in.log> <pages> <out.log>\n",
                 argv[0], argv[0], argv[0], argv[0], argv[0]);
    return 2;
  }
  const std::string cmd = argv[1];
  if (cmd == "stats") return Stats(argv[2]);

  if (cmd == "to-text" || cmd == "to-bin") {
    if (argc != 4) {
      std::fprintf(stderr, "%s needs <in> <out>\n", cmd.c_str());
      return 2;
    }
    auto g = ReadAnyLog(argv[2]);
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }
    const Status s = cmd == "to-text" ? WriteTextLogFile(*g, argv[3])
                                      : WriteCrawlLog(*g, argv[3]);
    if (!s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu pages)\n", argv[3], g->num_pages());
    return 0;
  }

  if (cmd == "gen") {
    if (argc != 5) {
      std::fprintf(stderr, "gen needs thai|japanese <pages> <out.log>\n");
      return 2;
    }
    const uint32_t pages = static_cast<uint32_t>(std::atoi(argv[3]));
    auto options = std::strcmp(argv[2], "japanese") == 0
                       ? JapaneseLikeOptions(pages)
                       : ThaiLikeOptions(pages);
    auto g = GenerateWebGraph(options);
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }
    if (Status s = WriteCrawlLog(*g, argv[4]); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu pages, %.1f%% relevant)\n", argv[4],
                g->num_pages(), 100.0 * g->ComputeStats().relevance_ratio());
    return 0;
  }
  if (cmd == "sample") {
    if (argc != 5) {
      std::fprintf(stderr, "sample needs <in.log> <pages> <out.log>\n");
      return 2;
    }
    auto g = ReadAnyLog(argv[2]);
    if (!g.ok()) {
      std::fprintf(stderr, "%s\n", g.status().ToString().c_str());
      return 1;
    }
    SampleOptions options;
    options.max_pages = static_cast<uint32_t>(std::atoi(argv[3]));
    auto sampled = SampleBfsSubgraph(*g, options);
    if (!sampled.ok()) {
      std::fprintf(stderr, "%s\n", sampled.status().ToString().c_str());
      return 1;
    }
    if (Status s = WriteCrawlLog(*sampled, argv[4]); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("wrote %s (%zu of %zu pages, %.1f%% relevant)\n", argv[4],
                sampled->num_pages(), g->num_pages(),
                100.0 * sampled->ComputeStats().relevance_ratio());
    return 0;
  }
  std::fprintf(stderr, "unknown command '%s'\n", cmd.c_str());
  return 2;
}
