// The paper's Thai web-archiving experiment, end to end:
//   1. build a Thai-like web space and persist it as a crawl log
//      (the artifact a real crawl would have produced),
//   2. reload the log the way the trace-driven simulator does,
//   3. evaluate every §3.3 strategy on it — breadth-first, simple
//      hard/soft, limited-distance N=1..4 in both modes,
//   4. print the comparison table and write gnuplot-ready series.
//
// Run:  thai_web_archive [pages] [out.log]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/classifier.h"
#include "core/simulator.h"
#include "core/strategy.h"
#include "webgraph/crawl_log.h"
#include "webgraph/generator.h"

int main(int argc, char** argv) {
  using namespace lswc;
  const uint32_t pages =
      argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 200'000;
  const std::string log_path = argc > 2 ? argv[2] : "thai_archive.log";

  // 1. The "real crawl": synthesize the web space and write its log.
  auto generated = GenerateWebGraph(ThaiLikeOptions(pages));
  if (!generated.ok()) {
    std::fprintf(stderr, "%s\n", generated.status().ToString().c_str());
    return 1;
  }
  if (Status s = WriteCrawlLog(*generated, log_path); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("crawl log written to %s\n", log_path.c_str());

  // 2. Trace-driven replay: everything below only touches the log image.
  auto graph_or = ReadCrawlLog(log_path);
  if (!graph_or.ok()) {
    std::fprintf(stderr, "%s\n", graph_or.status().ToString().c_str());
    return 1;
  }
  const WebGraph& graph = *graph_or;
  const DatasetStats stats = graph.ComputeStats();
  std::printf("replaying %zu URLs (%llu OK pages, %.1f%% Thai)\n\n",
              graph.num_pages(),
              static_cast<unsigned long long>(stats.ok_html_pages),
              100.0 * stats.relevance_ratio());

  // 3. Evaluate the strategy zoo with the paper's Thai classifier.
  MetaTagClassifier classifier(Language::kThai);
  std::vector<std::unique_ptr<CrawlStrategy>> strategies;
  strategies.push_back(std::make_unique<BreadthFirstStrategy>());
  strategies.push_back(std::make_unique<HardFocusedStrategy>());
  strategies.push_back(std::make_unique<SoftFocusedStrategy>());
  for (int n = 1; n <= 4; ++n) {
    strategies.push_back(std::make_unique<LimitedDistanceStrategy>(n, false));
  }
  for (int n = 1; n <= 4; ++n) {
    strategies.push_back(std::make_unique<LimitedDistanceStrategy>(n, true));
  }

  std::printf("%-38s %9s %9s %9s %10s\n", "strategy", "crawled", "harvest%",
              "coverage%", "max queue");
  for (const auto& strategy : strategies) {
    auto result = RunSimulation(graph, &classifier, *strategy);
    if (!result.ok()) {
      std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
      return 1;
    }
    const SimulationSummary& s = result->summary;
    std::printf("%-38s %9llu %9.1f %9.1f %10zu\n", strategy->name().c_str(),
                static_cast<unsigned long long>(s.pages_crawled),
                s.final_harvest_pct, s.final_coverage_pct, s.max_queue_size);
    // 4. Per-strategy series for plotting.
    const std::string dat =
        "thai_archive_" + strategy->name() + ".dat";
    if (Status st = result->series.WriteDatFile(dat); !st.ok()) {
      std::fprintf(stderr, "warning: %s\n", st.ToString().c_str());
    }
  }
  std::printf("\nper-strategy series written as thai_archive_<name>.dat "
              "(columns: pages harvest coverage queue)\n");
  return 0;
}
