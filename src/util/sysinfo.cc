#include "util/sysinfo.h"

#include <cstdio>
#include <cstring>

namespace lswc::util {

uint64_t PeakRssBytes() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  uint64_t kib = 0;
  char line[256];
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    // "VmHWM:     123456 kB" — the high-water mark of VmRSS.
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      unsigned long long value = 0;
      if (std::sscanf(line + 6, "%llu", &value) == 1) kib = value;
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
#else
  return 0;
#endif
}

}  // namespace lswc::util
