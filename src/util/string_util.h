#ifndef LSWC_UTIL_STRING_UTIL_H_
#define LSWC_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lswc {

/// ASCII-only tolower/toupper; locale-independent (HTML and charset names
/// are ASCII-cased by spec).
char AsciiToLower(char c);
char AsciiToUpper(char c);
std::string AsciiStrToLower(std::string_view s);
std::string AsciiStrToUpper(std::string_view s);

bool IsAsciiSpace(char c);
bool IsAsciiDigit(char c);
bool IsAsciiAlpha(char c);
bool IsAsciiAlnum(char c);
bool IsAsciiHexDigit(char c);
/// Value of a hex digit, or -1.
int HexDigitValue(char c);

/// Case-insensitive ASCII equality.
bool EqualsIgnoreCase(std::string_view a, std::string_view b);
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);
bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix);

/// Strips leading and trailing ASCII whitespace.
std::string_view StripAsciiWhitespace(std::string_view s);

/// Splits on a delimiter character; empty tokens are kept.
std::vector<std::string_view> Split(std::string_view s, char delim);

/// Parses a non-negative decimal integer; rejects empty input, non-digits,
/// and overflow.
std::optional<uint64_t> ParseUint64(std::string_view s);
/// Parses a double via strtod over the full token.
std::optional<double> ParseDouble(std::string_view s);

/// Joins tokens with a separator.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace lswc

#endif  // LSWC_UTIL_STRING_UTIL_H_
