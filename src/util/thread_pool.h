#ifndef LSWC_UTIL_THREAD_POOL_H_
#define LSWC_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lswc {

/// Fixed-size thread pool over one FIFO task queue. No work stealing:
/// experiment grids are coarse-grained (whole simulation runs), so a
/// single shared queue sees negligible contention and keeps the
/// execution model easy to reason about — tasks start in submission
/// order, exactly one thread runs each task.
///
/// Shutdown semantics (what ExperimentRunner relies on): the destructor
/// *drains* the queue — every task submitted before destruction runs to
/// completion before the workers join. Submitted work is never dropped.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(unsigned num_threads);

  /// Runs all queued tasks to completion, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task. Fallible work should report through captured
  /// Status slots; if a task does throw, the first exception is captured
  /// and rethrown from the next Wait() call instead of terminating the
  /// worker thread.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished. If any task
  /// threw since the last Wait(), rethrows the first captured exception
  /// (later ones are dropped); the pool stays usable afterwards. Safe to
  /// call repeatedly; new tasks may be submitted afterwards.
  void Wait();

  unsigned num_threads() const {
    return static_cast<unsigned>(threads_.size());
  }

  /// std::thread::hardware_concurrency(), clamped to at least 1 (the
  /// standard allows it to return 0 when undeterminable).
  static unsigned DefaultThreadCount();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // Signals workers: task or shutdown.
  std::condition_variable idle_cv_;  // Signals Wait(): pending_ hit zero.
  std::deque<std::function<void()>> queue_;
  std::exception_ptr first_exception_;  // First task throw since last Wait().
  uint64_t pending_ = 0;  // Queued + currently running tasks.
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace lswc

#endif  // LSWC_UTIL_THREAD_POOL_H_
