#ifndef LSWC_UTIL_STATS_H_
#define LSWC_UTIL_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lswc {

/// Streaming mean/variance/min/max accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  uint64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ > 0 ? min_ : 0.0; }
  double max() const { return count_ > 0 ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Fixed-bucket histogram over [lo, hi) with out-of-range clamping into the
/// first/last bucket; used for degree distributions and delay models.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t buckets);

  void Add(double x);
  /// Count in bucket i.
  uint64_t bucket_count(size_t i) const { return counts_[i]; }
  size_t num_buckets() const { return counts_.size(); }
  uint64_t total() const { return total_; }
  /// Lower edge of bucket i.
  double bucket_lo(size_t i) const;

  /// Approximate quantile in [0,1] using linear interpolation inside the
  /// containing bucket. Returns lo() for an empty histogram.
  double Quantile(double q) const;

  /// Multi-line "lo..hi count bar" rendering for logs and reports.
  std::string ToString() const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<uint64_t> counts_;
  uint64_t total_ = 0;
};

}  // namespace lswc

#endif  // LSWC_UTIL_STATS_H_
