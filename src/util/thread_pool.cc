#include "util/thread_pool.h"

#include <algorithm>
#include <utility>

namespace lswc {

ThreadPool::ThreadPool(unsigned num_threads) {
  const unsigned n = std::max(1u, num_threads);
  threads_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  // Workers keep popping until the queue is empty, so everything
  // submitted before this point still runs.
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
    ++pending_;
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
  if (first_exception_) {
    std::exception_ptr e = std::exchange(first_exception_, nullptr);
    std::rethrow_exception(e);
  }
}

unsigned ThreadPool::DefaultThreadCount() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutdown_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutdown_ set and fully drained.
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr thrown;
    try {
      task();
    } catch (...) {
      thrown = std::current_exception();
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (thrown && !first_exception_) first_exception_ = thrown;
      if (--pending_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace lswc
