#include "util/bench_report.h"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "util/build_info.h"
#include "util/string_util.h"
#include "util/sysinfo.h"

namespace lswc {

namespace {
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += StringPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string HexHash(uint64_t h) {
  return StringPrintf("%016llx", static_cast<unsigned long long>(h));
}
}  // namespace

BenchReport::BenchReport(std::string name)
    : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

std::string BenchReport::ToJson(double wall_time_sec) const {
  uint64_t total_crawled = 0;
  uint64_t peak_frontier = 0;
  for (const BenchRunEntry& run : runs_) {
    total_crawled += run.pages_crawled;
    peak_frontier = std::max(peak_frontier, run.max_queue_size);
  }
  const double pages_per_sec =
      wall_time_sec > 0.0 ? static_cast<double>(total_crawled) / wall_time_sec
                          : 0.0;

  std::string json = "{\n";
  // Version 2 = version 1 plus the additive "obs" block; readers that
  // only know version 1 fields still parse everything they expect.
  json += obs_json_.empty() ? "  \"schema_version\": 1,\n"
                            : "  \"schema_version\": 2,\n";
  json += StringPrintf("  \"name\": \"%s\",\n", JsonEscape(name_).c_str());
  // Which binary produced this report — mirrors the live endpoint's
  // lswc_build_info gauge. Additive: the perf gate compares only the
  // result fields, so reports stay comparable across shas.
  const util::BuildInfo& build = util::GetBuildInfo();
  json += StringPrintf(
      "  \"build_info\": {\"version\": \"%s\", \"git_sha\": \"%s\", "
      "\"build_type\": \"%s\"},\n",
      JsonEscape(build.version).c_str(), JsonEscape(build.git_sha).c_str(),
      JsonEscape(build.build_type).c_str());
  json += StringPrintf("  \"jobs\": %u,\n", jobs_);
  if (shards_ != 0) json += StringPrintf("  \"shards\": %u,\n", shards_);
  json += StringPrintf("  \"pages\": %llu,\n",
                       static_cast<unsigned long long>(pages_));
  json += StringPrintf("  \"seed\": %llu,\n",
                       static_cast<unsigned long long>(seed_));
  json += StringPrintf("  \"wall_time_sec\": %.6f,\n", wall_time_sec);
  json += StringPrintf("  \"pages_crawled\": %llu,\n",
                       static_cast<unsigned long long>(total_crawled));
  json += StringPrintf("  \"pages_per_sec\": %.3f,\n", pages_per_sec);
  // Process-wide high-water mark at serialization time (0 where the
  // platform has no VmHWM). The out-of-core acceptance number: a
  // budgeted replay must keep this flat as the dataset file grows.
  json += StringPrintf("  \"peak_rss_bytes\": %llu,\n",
                       static_cast<unsigned long long>(util::PeakRssBytes()));
  json += StringPrintf("  \"peak_frontier_size\": %llu,\n",
                       static_cast<unsigned long long>(peak_frontier));
  json += "  \"runs\": [";
  for (size_t i = 0; i < runs_.size(); ++i) {
    const BenchRunEntry& r = runs_[i];
    json += i == 0 ? "\n" : ",\n";
    json += "    {";
    json += StringPrintf("\"name\": \"%s\", ", JsonEscape(r.name).c_str());
    json += StringPrintf("\"wall_time_sec\": %.6f, ", r.wall_time_sec);
    json += StringPrintf("\"pages_crawled\": %llu, ",
                         static_cast<unsigned long long>(r.pages_crawled));
    json += StringPrintf("\"relevant_crawled\": %llu, ",
                         static_cast<unsigned long long>(r.relevant_crawled));
    json += StringPrintf("\"harvest_pct\": %.6f, ", r.harvest_pct);
    json += StringPrintf("\"coverage_pct\": %.6f, ", r.coverage_pct);
    json += StringPrintf("\"max_queue_size\": %llu, ",
                         static_cast<unsigned long long>(r.max_queue_size));
    json += StringPrintf("\"repushed\": %llu, ",
                         static_cast<unsigned long long>(r.repushed));
    json += StringPrintf("\"dropped\": %llu, ",
                         static_cast<unsigned long long>(r.dropped));
    json += StringPrintf("\"series_rows\": %llu, ",
                         static_cast<unsigned long long>(r.series_rows));
    json += StringPrintf("\"series_hash\": \"%s\"}",
                         HexHash(r.series_hash).c_str());
  }
  json += runs_.empty() ? "],\n" : "\n  ],\n";
  json += "  \"series\": [";
  for (size_t i = 0; i < series_.size(); ++i) {
    const BenchSeriesEntry& s = series_[i];
    json += i == 0 ? "\n" : ",\n";
    json += StringPrintf(
        "    {\"file\": \"%s\", \"rows\": %llu, \"hash\": \"%s\"}",
        JsonEscape(s.file).c_str(), static_cast<unsigned long long>(s.rows),
        HexHash(s.hash).c_str());
  }
  if (obs_json_.empty()) {
    json += series_.empty() ? "]\n" : "\n  ]\n";
  } else {
    json += series_.empty() ? "],\n" : "\n  ],\n";
    // Re-indent the pre-rendered obs document to sit one level deep.
    std::string obs = obs_json_;
    size_t pos = 0;
    while ((pos = obs.find('\n', pos)) != std::string::npos) {
      obs.insert(pos + 1, "  ");
      pos += 3;
    }
    json += "  \"obs\": " + obs + "\n";
  }
  json += "}\n";
  return json;
}

Status BenchReport::WriteFile(const std::string& dir) const {
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
          .count();
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  const std::string path = dir + "/BENCH_" + name_ + ".json";
  std::ofstream f(path);
  if (!f.is_open()) return Status::IoError("cannot open " + path);
  f << ToJson(wall);
  if (!f.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

}  // namespace lswc
