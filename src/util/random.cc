#include "util/random.h"

#include <cassert>
#include <cmath>

namespace lswc {

uint64_t Mix64(uint64_t key) {
  uint64_t z = key + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t threshold = -bound % bound;
    while (l < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo < hi);
  return lo + static_cast<int64_t>(
                  UniformUint64(static_cast<uint64_t>(hi - lo)));
}

double Rng::UniformDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

uint64_t Rng::Geometric(double p) {
  assert(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 0;
  const double u = UniformDouble();
  // floor(log(1-u)/log(1-p)) with 1-u in (0,1].
  return static_cast<uint64_t>(std::log1p(-u) / std::log1p(-p));
}

ZipfDistribution::ZipfDistribution(double s, uint64_t n) : s_(s), n_(n) {
  assert(s > 0.0);
  assert(n >= 1);
  h_x1_ = H(1.5) - 1.0;
  h_n_ = H(static_cast<double>(n) + 0.5);
  t_ = 2.0 - HInverse(H(2.5) - std::pow(2.0, -s_));
}

// H(x) = integral of x^-s; antiderivative used by rejection inversion.
double ZipfDistribution::H(double x) const {
  if (s_ == 1.0) return std::log(x);
  return (std::pow(x, 1.0 - s_) - 1.0) / (1.0 - s_);
}

double ZipfDistribution::HInverse(double x) const {
  if (s_ == 1.0) return std::exp(x);
  return std::pow(1.0 + x * (1.0 - s_), 1.0 / (1.0 - s_));
}

uint64_t ZipfDistribution::Sample(Rng* rng) const {
  if (n_ == 1) return 0;
  while (true) {
    const double u = h_n_ + rng->UniformDouble() * (h_x1_ - h_n_);
    const double x = HInverse(u);
    double k = std::floor(x + 0.5);
    if (k < 1.0) k = 1.0;
    if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
    if (k - x <= t_ || u >= H(k + 0.5) - std::pow(k, -s_)) {
      return static_cast<uint64_t>(k) - 1;  // 0-based rank.
    }
  }
}

}  // namespace lswc
