#include "util/build_info.h"

#ifndef LSWC_VERSION
#define LSWC_VERSION "0.0.0"
#endif
#ifndef LSWC_GIT_SHA
#define LSWC_GIT_SHA "unknown"
#endif
#ifndef LSWC_BUILD_TYPE
#define LSWC_BUILD_TYPE ""
#endif

namespace lswc::util {

const BuildInfo& GetBuildInfo() {
  static const BuildInfo info{LSWC_VERSION, LSWC_GIT_SHA, LSWC_BUILD_TYPE};
  return info;
}

}  // namespace lswc::util
