#ifndef LSWC_UTIL_BENCH_REPORT_H_
#define LSWC_UTIL_BENCH_REPORT_H_

// Machine-readable benchmark reporting: every bench harness writes a
// BENCH_<name>.json next to its .dat output. The files seed the repo's
// performance trajectory (wall time, pages/sec) and pin determinism
// (per-run series hashes), and CI's perf-smoke job gates on them
// against the checked-in bench_out/baseline/. The schema is documented
// field by field in EXPERIMENTS.md ("BENCH_*.json schema").

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace lswc {

/// One simulation run inside a report (one grid cell).
struct BenchRunEntry {
  std::string name;             // Grid label, e.g. "soft-focused".
  double wall_time_sec = 0.0;   // This run alone, on its worker thread.
  uint64_t pages_crawled = 0;
  uint64_t relevant_crawled = 0;
  double harvest_pct = 0.0;
  double coverage_pct = 0.0;
  uint64_t max_queue_size = 0;  // Peak frontier size of this run.
  uint64_t repushed = 0;        // Better-referrer re-pushes (link bus).
  uint64_t dropped = 0;         // Links not enqueued (link bus).
  uint64_t series_rows = 0;
  uint64_t series_hash = 0;     // Fnv1aHash over the run's full series.
};

/// One emitted .dat artifact (a merged figure series).
struct BenchSeriesEntry {
  std::string file;   // File name under --out-dir, e.g. "fig3a_harvest.dat".
  uint64_t rows = 0;
  uint64_t hash = 0;  // Fnv1aHash over the merged series.
};

/// Collects one bench binary's results and serializes them as JSON.
/// Wall time runs from construction to WriteFile (so dataset generation
/// counts — it is part of what the binary costs).
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  void set_jobs(unsigned jobs) { jobs_ = jobs; }
  void set_pages(uint64_t pages) { pages_ = pages; }
  void set_seed(uint64_t seed) { seed_ = seed; }
  /// Worker shards each simulation ran with (0 = serial engine). The
  /// field is emitted only when nonzero, so baseline reports are
  /// byte-unchanged.
  void set_shards(unsigned shards) { shards_ = shards; }

  void AddRun(const BenchRunEntry& run) { runs_.push_back(run); }
  void AddSeries(const BenchSeriesEntry& series) {
    series_.push_back(series);
  }

  /// Embeds a pre-rendered observability document (the RunObs StatsJson
  /// object: stages/counters/gauges/histograms). A report with an obs
  /// block serializes as schema_version 2; readers of version 1 reports
  /// must keep working (the block is additive — see EXPERIMENTS.md).
  void set_obs_json(std::string obs_json) { obs_json_ = std::move(obs_json); }

  const std::string& name() const { return name_; }
  const std::vector<BenchRunEntry>& runs() const { return runs_; }

  /// Serializes the report; `wall_time_sec` is the binary-level elapsed
  /// time the aggregate pages/sec is computed over.
  std::string ToJson(double wall_time_sec) const;

  /// Writes <dir>/BENCH_<name>.json (creating `dir`), with wall time
  /// measured from construction until this call.
  Status WriteFile(const std::string& dir) const;

 private:
  std::string name_;
  unsigned jobs_ = 1;
  unsigned shards_ = 0;
  uint64_t pages_ = 0;
  uint64_t seed_ = 0;
  std::vector<BenchRunEntry> runs_;
  std::vector<BenchSeriesEntry> series_;
  std::string obs_json_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace lswc

#endif  // LSWC_UTIL_BENCH_REPORT_H_
