#include "util/crc32.h"

#include <array>

namespace lswc {

namespace {

// Slicing-by-8: eight derived tables let the hot loop fold 8 input
// bytes per iteration (~8x the classic byte-at-a-time table walk).
// The polynomial and the resulting checksums are unchanged — this is
// the same CRC-32, just computed faster; the journal writer runs it
// over multi-megabyte record buffers on the crawl's critical path.
struct Tables {
  std::array<std::array<uint32_t, 256>, 8> t{};
};

constexpr Tables MakeTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables.t[0][i] = c;
  }
  for (size_t j = 1; j < 8; ++j) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables.t[j - 1][i];
      tables.t[j][i] = tables.t[0][prev & 0xFFu] ^ (prev >> 8);
    }
  }
  return tables;
}

constexpr Tables kTables = MakeTables();

}  // namespace

uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  const auto& t = kTables.t;
  uint32_t c = crc ^ 0xFFFFFFFFu;
  // Byte-composed little-endian loads keep the result independent of
  // host endianness; compilers reduce them to single loads on LE.
  while (size >= 8) {
    const uint32_t lo =
        c ^ (static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
             (static_cast<uint32_t>(p[2]) << 16) |
             (static_cast<uint32_t>(p[3]) << 24));
    const uint32_t hi =
        static_cast<uint32_t>(p[4]) | (static_cast<uint32_t>(p[5]) << 8) |
        (static_cast<uint32_t>(p[6]) << 16) |
        (static_cast<uint32_t>(p[7]) << 24);
    c = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
        t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^ t[3][hi & 0xFFu] ^
        t[2][(hi >> 8) & 0xFFu] ^ t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    p += 8;
    size -= 8;
  }
  for (; size != 0; --size, ++p) {
    c = t[0][(c ^ *p) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

uint32_t Crc32(const void* data, size_t size) {
  return Crc32Update(0, data, size);
}

}  // namespace lswc
