#ifndef LSWC_UTIL_BUILD_INFO_H_
#define LSWC_UTIL_BUILD_INFO_H_

// Build provenance, stamped at configure time (src/util/CMakeLists.txt
// passes LSWC_VERSION / LSWC_GIT_SHA / LSWC_BUILD_TYPE to build_info.cc
// only). Exposed as the `lswc_build_info` gauge on the live /metrics
// endpoint and as the `build_info` object in BENCH JSON, so a scraped
// dashboard or an archived bench report always says which binary
// produced it. All strings are static literals.

namespace lswc::util {

struct BuildInfo {
  const char* version;     // Project version ("0.0.0" if unset).
  const char* git_sha;     // Short commit sha, "unknown" outside git.
  const char* build_type;  // CMAKE_BUILD_TYPE ("" for multi-config).
};

const BuildInfo& GetBuildInfo();

}  // namespace lswc::util

#endif  // LSWC_UTIL_BUILD_INFO_H_
