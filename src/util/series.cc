#include "util/series.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

namespace lswc {

Series::Series(std::string x_name, std::vector<std::string> y_names)
    : x_name_(std::move(x_name)) {
  ys_.reserve(y_names.size());
  for (auto& n : y_names) ys_.push_back(SeriesColumn{std::move(n), {}});
}

void Series::AddRow(double x, const std::vector<double>& ys) {
  assert(ys.size() == ys_.size());
  x_.push_back(x);
  for (size_t i = 0; i < ys_.size(); ++i) ys_[i].values.push_back(ys[i]);
}

double Series::LastY(size_t col) const {
  const auto& v = ys_[col].values;
  return v.empty() ? 0.0 : v.back();
}

double Series::MaxY(size_t col) const {
  const auto& v = ys_[col].values;
  if (v.empty()) return 0.0;
  return *std::max_element(v.begin(), v.end());
}

void Series::WriteDat(std::ostream& os) const {
  os << "# " << x_name_;
  for (const auto& c : ys_) os << ' ' << c.name;
  os << '\n';
  char buf[64];
  for (size_t r = 0; r < x_.size(); ++r) {
    std::snprintf(buf, sizeof(buf), "%.6g", x_[r]);
    os << buf;
    for (const auto& c : ys_) {
      std::snprintf(buf, sizeof(buf), " %.6g", c.values[r]);
      os << buf;
    }
    os << '\n';
  }
}

Status Series::WriteDatFile(const std::string& path) const {
  std::ofstream f(path);
  if (!f.is_open()) return Status::IoError("cannot open " + path);
  WriteDat(f);
  if (!f.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

std::string Series::ToTable(size_t stride) const {
  if (stride == 0) stride = 1;
  std::string out;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%16s", x_name_.c_str());
  out += buf;
  for (const auto& c : ys_) {
    std::snprintf(buf, sizeof(buf), " %16s", c.name.c_str());
    out += buf;
  }
  out += '\n';
  for (size_t r = 0; r < x_.size(); ++r) {
    if (r % stride != 0 && r + 1 != x_.size()) continue;  // Always keep last.
    std::snprintf(buf, sizeof(buf), "%16.6g", x_[r]);
    out += buf;
    for (const auto& c : ys_) {
      std::snprintf(buf, sizeof(buf), " %16.6g", c.values[r]);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

uint64_t Fnv1aHash(const Series& series) {
  uint64_t h = 1469598103934665603ull;
  auto mix = [&h](double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    for (int i = 0; i < 8; ++i) {
      h ^= (bits >> (8 * i)) & 0xff;
      h *= 1099511628211ull;
    }
  };
  for (size_t r = 0; r < series.num_rows(); ++r) {
    mix(series.x(r));
    for (size_t c = 0; c < series.num_columns(); ++c) mix(series.y(r, c));
  }
  return h;
}

Series MergeSeriesColumns(const std::vector<SeriesInput>& inputs,
                          size_t column, const std::string& x_name,
                          int points) {
  assert(!inputs.empty());
  assert(points > 0);
  double horizon = 0;
  for (const SeriesInput& in : inputs) {
    assert(in.series != nullptr && in.series->num_rows() > 0);
    horizon = std::max(horizon, in.series->x(in.series->num_rows() - 1));
  }
  std::vector<std::string> names;
  names.reserve(inputs.size());
  for (const SeriesInput& in : inputs) names.push_back(in.name);
  Series merged(x_name, names);
  std::vector<size_t> cursor(inputs.size(), 0);
  for (int i = 1; i <= points; ++i) {
    const double x = horizon * i / points;
    std::vector<double> ys;
    ys.reserve(inputs.size());
    for (size_t r = 0; r < inputs.size(); ++r) {
      const Series& s = *inputs[r].series;
      while (cursor[r] + 1 < s.num_rows() && s.x(cursor[r] + 1) <= x) {
        ++cursor[r];
      }
      ys.push_back(s.y(cursor[r], column));
    }
    merged.AddRow(x, ys);
  }
  return merged;
}

}  // namespace lswc
