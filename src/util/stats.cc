#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace lswc {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  if (count_ == 1) {
    mean_ = x;
    m2_ = 0.0;
    min_ = max_ = x;
    return;
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::Add(double x) {
  size_t i;
  if (x < lo_) {
    i = 0;
  } else if (x >= hi_) {
    i = counts_.size() - 1;
  } else {
    i = static_cast<size_t>((x - lo_) / width_);
    if (i >= counts_.size()) i = counts_.size() - 1;
  }
  ++counts_[i];
  ++total_;
}

double Histogram::bucket_lo(size_t i) const {
  return lo_ + static_cast<double>(i) * width_;
}

double Histogram::Quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total_);
  double cum = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cum + static_cast<double>(counts_[i]);
    if (next >= target && counts_[i] > 0) {
      const double frac = (target - cum) / static_cast<double>(counts_[i]);
      return bucket_lo(i) + frac * width_;
    }
    cum = next;
  }
  return hi_;
}

std::string Histogram::ToString() const {
  std::string out;
  uint64_t peak = 1;
  for (uint64_t c : counts_) peak = std::max(peak, c);
  char line[160];
  for (size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const int bar = static_cast<int>(40.0 * static_cast<double>(counts_[i]) /
                                     static_cast<double>(peak));
    std::snprintf(line, sizeof(line), "[%12.3f, %12.3f) %10llu %.*s\n",
                  bucket_lo(i), bucket_lo(i) + width_,
                  static_cast<unsigned long long>(counts_[i]), bar,
                  "****************************************");
    out += line;
  }
  return out;
}

}  // namespace lswc
