#ifndef LSWC_UTIL_SERIES_H_
#define LSWC_UTIL_SERIES_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "util/status.h"

namespace lswc {

/// One named column of a result series (e.g. "coverage_pct").
struct SeriesColumn {
  std::string name;
  std::vector<double> values;
};

/// A sampled time/progress series, as plotted in the paper's figures:
/// an x column ("pages crawled") plus one or more y columns (one per
/// strategy / parameter setting). Rows are appended in x order.
///
/// The bench harnesses print these both as aligned text tables (stdout,
/// the "same rows the paper reports") and as gnuplot-compatible .dat files.
class Series {
 public:
  Series(std::string x_name, std::vector<std::string> y_names);

  /// Appends a row; `ys` must match the number of y columns.
  void AddRow(double x, const std::vector<double>& ys);

  size_t num_rows() const { return x_.size(); }
  size_t num_columns() const { return ys_.size(); }
  const std::string& x_name() const { return x_name_; }
  double x(size_t row) const { return x_[row]; }
  const SeriesColumn& y_column(size_t col) const { return ys_[col]; }
  double y(size_t row, size_t col) const { return ys_[col].values[row]; }

  /// Last value of column `col`; 0 if empty.
  double LastY(size_t col) const;
  /// Maximum over column `col`; 0 if empty.
  double MaxY(size_t col) const;

  /// Writes "# x y1 y2 ..." header plus whitespace-separated rows.
  void WriteDat(std::ostream& os) const;
  /// Writes the series as a .dat file at `path`.
  Status WriteDatFile(const std::string& path) const;
  /// Aligned, human-readable table with every `stride`-th row.
  std::string ToTable(size_t stride = 1) const;

 private:
  std::string x_name_;
  std::vector<double> x_;
  std::vector<SeriesColumn> ys_;
};

/// FNV-1a over the bit patterns of every stored double, row-major
/// (x, then each y column). This is the series fingerprint pinned by the
/// crawl-engine characterization tests and emitted in BENCH_*.json
/// reports: two runs produced the same series iff the hashes match.
uint64_t Fnv1aHash(const Series& series);

/// One input to MergeSeriesColumns: a name (the output column label) and
/// the series it comes from.
struct SeriesInput {
  std::string name;
  const Series* series = nullptr;
};

/// Merges one column (by index) of several series onto a common x grid:
/// the union horizon split into `points` samples; each input contributes
/// its value at the largest sample <= x, and inputs that ended early hold
/// their final value (the flat tails seen in the paper's plots).
/// Inputs must be non-empty and share the column index.
Series MergeSeriesColumns(const std::vector<SeriesInput>& inputs,
                          size_t column, const std::string& x_name,
                          int points = 200);

}  // namespace lswc

#endif  // LSWC_UTIL_SERIES_H_
