#ifndef LSWC_UTIL_SYSINFO_H_
#define LSWC_UTIL_SYSINFO_H_

#include <cstdint>

namespace lswc::util {

/// The process's peak resident set size in bytes (VmHWM from
/// /proc/self/status), or 0 where the platform does not expose it.
/// This is the number the out-of-core work is judged by: a 100M-page
/// run must keep it bounded no matter how big the dataset file is.
uint64_t PeakRssBytes();

}  // namespace lswc::util

#endif  // LSWC_UTIL_SYSINFO_H_
