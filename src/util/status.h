#ifndef LSWC_UTIL_STATUS_H_
#define LSWC_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace lswc {

/// Canonical error codes, modeled after the usual database-engine set.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kCorruption,
  kUnimplemented,
  kInternal,
};

/// Returns a human-readable name for a status code ("InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result. Library code never throws; all
/// fallible operations return Status or StatusOr<T>.
///
/// The OK status carries no allocation; error statuses carry a code and a
/// message describing what failed.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// Either a value of T or an error Status. Accessing the value of an
/// errored StatusOr is a programming error (checked by assert in debug).
template <typename T>
class StatusOr {
 public:
  /// Implicit from value: `return some_t;` in a StatusOr-returning function.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from error status.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "StatusOr must not be built from an OK Status");
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace lswc

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define LSWC_RETURN_IF_ERROR(expr)            \
  do {                                        \
    ::lswc::Status lswc_status_tmp_ = (expr); \
    if (!lswc_status_tmp_.ok()) return lswc_status_tmp_; \
  } while (false)

#endif  // LSWC_UTIL_STATUS_H_
