#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace lswc {

char AsciiToLower(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

char AsciiToUpper(char c) {
  return (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
}

std::string AsciiStrToLower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = AsciiToLower(c);
  return out;
}

std::string AsciiStrToUpper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = AsciiToUpper(c);
  return out;
}

bool IsAsciiSpace(char c) {
  return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == '\f' ||
         c == '\v';
}

bool IsAsciiDigit(char c) { return c >= '0' && c <= '9'; }

bool IsAsciiAlpha(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}

bool IsAsciiAlnum(char c) { return IsAsciiAlpha(c) || IsAsciiDigit(c); }

bool IsAsciiHexDigit(char c) {
  return IsAsciiDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F');
}

int HexDigitValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (AsciiToLower(a[i]) != AsciiToLower(b[i])) return false;
  }
  return true;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool StartsWithIgnoreCase(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         EqualsIgnoreCase(s.substr(0, prefix.size()), prefix);
}

std::string_view StripAsciiWhitespace(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && IsAsciiSpace(s[b])) ++b;
  while (e > b && IsAsciiSpace(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::optional<uint64_t> ParseUint64(std::string_view s) {
  if (s.empty()) return std::nullopt;
  uint64_t v = 0;
  for (char c : s) {
    if (!IsAsciiDigit(c)) return std::nullopt;
    const uint64_t d = static_cast<uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return std::nullopt;  // Overflow.
    v = v * 10 + d;
  }
  return v;
}

std::optional<double> ParseDouble(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  char* end = nullptr;
  const double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out += parts[i];
  }
  return out;
}

std::string StringPrintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace lswc
