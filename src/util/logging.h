#ifndef LSWC_UTIL_LOGGING_H_
#define LSWC_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace lswc {

/// Log severities, ordered. kFatal aborts the process after logging.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Sets the minimum severity that is emitted; defaults to kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

const char* LogLevelName(LogLevel level);

namespace internal_logging {

/// Accumulates one log line and emits it (with timestamp, level, and
/// source location) to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// Swallows a streamed expression when the log level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging
}  // namespace lswc

#define LSWC_LOG(level)                                                  \
  (static_cast<int>(::lswc::LogLevel::k##level) <                        \
   static_cast<int>(::lswc::GetLogLevel()))                              \
      ? (void)0                                                          \
      : (void)::lswc::internal_logging::LogMessage(                      \
            ::lswc::LogLevel::k##level, __FILE__, __LINE__)              \
            .stream()

// LSWC_LOG is statement-shaped via the ternary above but cannot be streamed
// into; LSWC_LOG_STREAM yields the stream for `LSWC_LOG_STREAM(Info) << x;`.
#define LSWC_LOG_STREAM(level)                                           \
  ::lswc::internal_logging::LogMessage(::lswc::LogLevel::k##level,       \
                                       __FILE__, __LINE__)               \
      .stream()

/// CHECK-style invariant enforcement: active in all build modes, aborts with
/// the failed condition and location.
#define LSWC_CHECK(cond)                                                     \
  while (!(cond))                                                            \
  ::lswc::internal_logging::LogMessage(::lswc::LogLevel::kFatal, __FILE__,   \
                                       __LINE__)                             \
          .stream()                                                         \
      << "Check failed: " #cond " "

#define LSWC_CHECK_EQ(a, b) LSWC_CHECK((a) == (b))
#define LSWC_CHECK_NE(a, b) LSWC_CHECK((a) != (b))
#define LSWC_CHECK_LT(a, b) LSWC_CHECK((a) < (b))
#define LSWC_CHECK_LE(a, b) LSWC_CHECK((a) <= (b))
#define LSWC_CHECK_GT(a, b) LSWC_CHECK((a) > (b))
#define LSWC_CHECK_GE(a, b) LSWC_CHECK((a) >= (b))

#endif  // LSWC_UTIL_LOGGING_H_
