#ifndef LSWC_UTIL_CRC32_H_
#define LSWC_UTIL_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace lswc {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG variant).
/// Used as the per-section integrity checksum of the snapshot format:
/// cheap enough to run over multi-megabyte frontier dumps and strong
/// enough to catch every single-bit flip and truncation a torn write or
/// bad disk can produce.
uint32_t Crc32(const void* data, size_t size);

/// Incremental form: feed `crc` from a previous call (start with 0).
uint32_t Crc32Update(uint32_t crc, const void* data, size_t size);

}  // namespace lswc

#endif  // LSWC_UTIL_CRC32_H_
