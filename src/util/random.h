#ifndef LSWC_UTIL_RANDOM_H_
#define LSWC_UTIL_RANDOM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace lswc {

/// SplitMix64: used to seed other generators and for cheap per-key hashing
/// (e.g., deterministic per-page content seeds).
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Stateless mix of a 64-bit key; deterministic "hash" used to derive
/// per-entity randomness (page content seeds, host labels) without storage.
uint64_t Mix64(uint64_t key);

/// Xoshiro256**: the repo-wide PRNG. Fast, high quality, and deterministic
/// across platforms so that every experiment is exactly reproducible from
/// its seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL);

  /// Uniform in [0, 2^64).
  uint64_t NextUint64();

  /// Uniform in [0, bound). bound must be > 0. Uses Lemire's method
  /// (unbiased rejection on the multiply-shift reduction).
  uint64_t UniformUint64(uint64_t bound);

  /// Uniform in [lo, hi). Requires lo < hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// True with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Geometric: number of failures before the first success, success
  /// probability p in (0, 1].
  uint64_t Geometric(double p);

  /// Samples a permutation index via Fisher-Yates on the caller's vector.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// The raw xoshiro256** state, for checkpointing a stream mid-run.
  /// Restoring a captured state resumes the stream at exactly the next
  /// draw — the snapshot subsystem round-trips it bit-for-bit.
  std::array<uint64_t, 4> state() const { return {s_[0], s_[1], s_[2], s_[3]}; }
  void set_state(const std::array<uint64_t, 4>& state) {
    for (size_t i = 0; i < 4; ++i) s_[i] = state[i];
  }

 private:
  uint64_t s_[4];
};

/// Zipf(s, n) sampler over {0, 1, ..., n-1}, rank 0 most popular.
///
/// Uses the rejection-inversion method of Hörmann & Derflinger, which is
/// O(1) per sample after O(1) setup, suitable for the web generator's
/// host-size and out-degree draws over millions of samples.
class ZipfDistribution {
 public:
  /// exponent s > 0 (s=1 is the classic web-like distribution), n >= 1.
  ZipfDistribution(double s, uint64_t n);

  /// Draws one rank in [0, n).
  uint64_t Sample(Rng* rng) const;

  double exponent() const { return s_; }
  uint64_t n() const { return n_; }

 private:
  double H(double x) const;
  double HInverse(double x) const;

  double s_;
  uint64_t n_;
  double h_x1_;
  double h_n_;
  double t_;  // Threshold used by the rejection step.
};

}  // namespace lswc

#endif  // LSWC_UTIL_RANDOM_H_
