#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <ctime>

namespace lswc {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}
}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(level); }
LogLevel GetLogLevel() { return g_log_level.load(); }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}

namespace internal_logging {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t tt = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm_buf;
  localtime_r(&tt, &tm_buf);
  char ts[32];
  std::snprintf(ts, sizeof(ts), "%02d:%02d:%02d.%03d", tm_buf.tm_hour,
                tm_buf.tm_min, tm_buf.tm_sec, static_cast<int>(ms));
  std::fprintf(stderr, "[%s %-5s %s:%d] %s\n", ts, LogLevelName(level_),
               Basename(file_), line_, stream_.str().c_str());
  if (level_ == LogLevel::kFatal) {
    std::fflush(stderr);
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace lswc
