#ifndef LSWC_STORE_MMAP_LINK_DB_H_
#define LSWC_STORE_MMAP_LINK_DB_H_

#include <memory>
#include <span>
#include <string>

#include "obs/metrics_registry.h"
#include "store/stored_web_graph.h"
#include "util/status.h"
#include "webgraph/link_db.h"

namespace lswc::store {

/// LinkDb sibling of DiskLinkDb serving CSR spans straight from an
/// LSWCDS1 mapping: no resident offsets array, no block cache of its
/// own — the OS page cache is the cache, so a 10^9-link database costs
/// only the pages the crawl actually touches. Several of these (one per
/// shard) can share one mapping for free.
class MmapLinkDb final : public LinkDb {
 public:
  /// Shares `stored`'s mapping; the keep-alive handle means the link DB
  /// stays valid even if `stored` is destroyed first.
  explicit MmapLinkDb(const StoredWebGraph& stored)
      : mapping_(stored.mapping()),
        offsets_(stored.offsets()),
        targets_(stored.targets()) {}

  /// Opens a mapping of its own (standalone use, e.g. tools).
  static StatusOr<std::unique_ptr<MmapLinkDb>> Open(
      const std::string& path, StoredWebGraph::Options options = {});

  Status GetOutlinks(PageId id, std::vector<PageId>* out) override;
  size_t num_pages() const override { return offsets_.size() - 1; }

  void AttachObs(obs::MetricsRegistry* registry) override;

  uint64_t outlink_reads() const { return outlink_reads_; }

 private:
  std::shared_ptr<const void> mapping_;
  std::span<const uint32_t> offsets_;
  std::span<const PageId> targets_;
  uint64_t outlink_reads_ = 0;
  obs::Counter* obs_reads_ = nullptr;
  obs::Counter* obs_links_served_ = nullptr;
};

}  // namespace lswc::store

#endif  // LSWC_STORE_MMAP_LINK_DB_H_
