#ifndef LSWC_STORE_DATASET_WRITER_H_
#define LSWC_STORE_DATASET_WRITER_H_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "store/format.h"
#include "util/status.h"
#include "webgraph/graph.h"

namespace lswc::store {

/// Appends an LSWCDS1 file section by section. Purely forward-writing:
/// payload bytes are streamed straight to disk (CRC folded in as they
/// pass), the directory and trailer land at the end, so writing a
/// 100M-page dataset needs no more memory than one directory row per
/// section.
///
/// The writer targets `<path>.tmp` and renames into place in Finish();
/// a crash mid-write leaves at most a dead temp file, never a partial
/// dataset under the final name — which is what makes long generations
/// safely restartable.
class DatasetWriter {
 public:
  static StatusOr<std::unique_ptr<DatasetWriter>> Create(
      const std::string& path);

  /// Abandons (closes and unlinks the temp file) unless Finish()
  /// completed.
  ~DatasetWriter();

  DatasetWriter(const DatasetWriter&) = delete;
  DatasetWriter& operator=(const DatasetWriter&) = delete;

  /// Sections must not nest; each id may be written once.
  Status BeginSection(uint32_t id);
  Status Append(const void* data, size_t size);
  template <typename T>
  Status AppendPod(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    return Append(&value, sizeof(T));
  }
  Status EndSection();

  /// Writes the directory and trailer, flushes, fsyncs, and renames the
  /// temp file onto `path`. The writer is unusable afterwards.
  Status Finish();

  uint64_t bytes_written() const { return file_offset_; }

 private:
  DatasetWriter() = default;

  Status WriteRaw(const void* data, size_t size);
  Status PadTo(uint64_t alignment);

  std::string path_;
  std::string tmp_path_;
  std::FILE* file_ = nullptr;
  uint64_t file_offset_ = 0;
  bool in_section_ = false;
  bool finished_ = false;
  SectionEntry current_;
  std::vector<SectionEntry> directory_;
};

/// Writes a complete dataset file for an already materialized graph
/// (tests, importing crawl logs, `lswc_dataset convert`). The streamed
/// generator writes the same byte-identical format without ever holding
/// the graph — see GenerateWebGraphToFile.
Status WriteDatasetFile(const WebGraph& graph, const std::string& path);

}  // namespace lswc::store

#endif  // LSWC_STORE_DATASET_WRITER_H_
