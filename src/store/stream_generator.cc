#include "store/stream_generator.h"

#include <cstdio>
#include <vector>

#include "store/dataset_writer.h"
#include "store/format.h"

namespace lswc::store {

namespace {

/// WebGraphSink that forwards emission into a DatasetWriter, section by
/// section. Sections open lazily at phase transitions (hosts -> pages
/// -> targets); CSR offsets cannot go to the main file while targets
/// stream, so they spool to a side file and are copied in as their own
/// section at the end.
class DatasetStreamSink final : public WebGraphSink {
 public:
  DatasetStreamSink(DatasetWriter* writer, std::string spool_path)
      : writer_(writer), spool_path_(std::move(spool_path)) {}

  ~DatasetStreamSink() override {
    if (spool_ != nullptr) std::fclose(spool_);
    std::remove(spool_path_.c_str());
  }

  Status Begin(Language target_language, uint64_t generator_seed,
               uint32_t num_pages, uint32_t num_hosts) override {
    meta_.page_record_bytes = sizeof(PageRecord);
    meta_.host_record_bytes = sizeof(HostRecord);
    meta_.generator_seed = generator_seed;
    meta_.num_pages = num_pages;
    meta_.num_hosts = num_hosts;
    meta_.target_language = static_cast<uint8_t>(target_language);
    // "wb+": written while targets stream, read back into the offsets
    // section at End().
    spool_ = std::fopen(spool_path_.c_str(), "wb+");
    if (spool_ == nullptr) {
      return Status::IoError("cannot create offsets spool " + spool_path_);
    }
    return writer_->BeginSection(kHostsSection);
  }

  Status AddHost(Language language, uint32_t num_pages_in_host) override {
    if (phase_ != Phase::kHosts) {
      return Status::FailedPrecondition("AddHost after pages began");
    }
    HostRecord host;
    host.language = language;
    host.first_page = next_first_page_;
    host.num_pages = num_pages_in_host;
    next_first_page_ += num_pages_in_host;
    return writer_->AppendPod(host);
  }

  Status AddPage(uint32_t host, const PageRecord& record) override {
    if (phase_ == Phase::kHosts) {
      LSWC_RETURN_IF_ERROR(writer_->EndSection());
      LSWC_RETURN_IF_ERROR(writer_->BeginSection(kPagesSection));
      phase_ = Phase::kPages;
    }
    if (phase_ != Phase::kPages) {
      return Status::FailedPrecondition("AddPage after links began");
    }
    if (host >= meta_.num_hosts || pages_emitted_ >= meta_.num_pages) {
      return Status::InvalidArgument("page emission out of bounds");
    }
    PageRecord rec = record;
    rec.host = host;
    ++pages_emitted_;
    ++stats_.total_urls;
    if (rec.ok()) {
      ++stats_.ok_html_pages;
      if (static_cast<uint8_t>(rec.language) == meta_.target_language) {
        ++stats_.relevant_ok_pages;
      } else {
        ++stats_.irrelevant_ok_pages;
      }
    }
    return writer_->AppendPod(rec);
  }

  Status AddLink(PageId from, PageId to) override {
    LSWC_RETURN_IF_ERROR(EnsureLinksPhase());
    if (from >= pages_emitted_ || to >= pages_emitted_) {
      return Status::InvalidArgument("link endpoint out of range");
    }
    if (from < last_link_from_) {
      return Status::InvalidArgument("links not in CSR order");
    }
    last_link_from_ = from;
    // Close CSR rows for every page up to and including `from` that has
    // not started yet (same row-closing rule as WebGraphBuilder).
    LSWC_RETURN_IF_ERROR(CloseOffsetRowsThrough(from));
    if (links_emitted_ == UINT32_MAX) {
      return Status::InvalidArgument("dataset exceeds 32-bit link count");
    }
    ++links_emitted_;
    return writer_->AppendPod(to);
  }

  Status AddSeed(PageId seed) override {
    if (seed >= pages_emitted_) {
      return Status::InvalidArgument("seed out of range");
    }
    seeds_.push_back(seed);
    return Status::OK();
  }

  Status End() override {
    if (pages_emitted_ != meta_.num_pages) {
      return Status::InvalidArgument("generator emitted wrong page count");
    }
    // A pathological config may produce no links at all; the sections
    // must exist regardless.
    LSWC_RETURN_IF_ERROR(EnsureLinksPhase());
    LSWC_RETURN_IF_ERROR(CloseOffsetRowsThrough(meta_.num_pages));
    LSWC_RETURN_IF_ERROR(writer_->EndSection());  // targets
    meta_.num_links = links_emitted_;
    LSWC_RETURN_IF_ERROR(CopySpoolIntoOffsetsSection());

    LSWC_RETURN_IF_ERROR(writer_->BeginSection(kSeedsSection));
    for (PageId s : seeds_) LSWC_RETURN_IF_ERROR(writer_->AppendPod(s));
    LSWC_RETURN_IF_ERROR(writer_->EndSection());
    meta_.num_seeds = seeds_.size();

    LSWC_RETURN_IF_ERROR(writer_->BeginSection(kStatsSection));
    LSWC_RETURN_IF_ERROR(writer_->AppendPod(stats_));
    LSWC_RETURN_IF_ERROR(writer_->EndSection());

    LSWC_RETURN_IF_ERROR(writer_->BeginSection(kMetaSection));
    LSWC_RETURN_IF_ERROR(writer_->AppendPod(meta_));
    return writer_->EndSection();
  }

 private:
  enum class Phase { kHosts, kPages, kLinks };

  Status EnsureLinksPhase() {
    if (phase_ == Phase::kHosts) {
      // No pages is a generator bug; fail loudly rather than emit an
      // empty dataset.
      return Status::FailedPrecondition("links before pages");
    }
    if (phase_ == Phase::kPages) {
      LSWC_RETURN_IF_ERROR(writer_->EndSection());
      LSWC_RETURN_IF_ERROR(writer_->BeginSection(kTargetsSection));
      phase_ = Phase::kLinks;
    }
    return Status::OK();
  }

  /// Appends `links so far` to the spool for every unclosed row with
  /// index <= `page`. Row i holds the link count before page i's links
  /// begin; num_pages + 1 rows in total.
  Status CloseOffsetRowsThrough(uint64_t page) {
    while (offset_rows_written_ <= page) {
      if (std::fwrite(&links_emitted_, sizeof(links_emitted_), 1, spool_) !=
          1) {
        return Status::IoError("offsets spool write failed");
      }
      ++offset_rows_written_;
    }
    return Status::OK();
  }

  Status CopySpoolIntoOffsetsSection() {
    if (std::fflush(spool_) != 0 || std::fseek(spool_, 0, SEEK_SET) != 0) {
      return Status::IoError("offsets spool flush failed");
    }
    LSWC_RETURN_IF_ERROR(writer_->BeginSection(kOffsetsSection));
    std::vector<char> buf(1 << 20);
    uint64_t copied = 0;
    const uint64_t expect =
        (meta_.num_pages + 1) * sizeof(uint32_t);
    for (;;) {
      const size_t n = std::fread(buf.data(), 1, buf.size(), spool_);
      if (n == 0) break;
      LSWC_RETURN_IF_ERROR(writer_->Append(buf.data(), n));
      copied += n;
    }
    if (std::ferror(spool_) != 0) {
      return Status::IoError("offsets spool read failed");
    }
    if (copied != expect) {
      return Status::Internal("offsets spool size mismatch");
    }
    return writer_->EndSection();
  }

  DatasetWriter* writer_;
  std::string spool_path_;
  std::FILE* spool_ = nullptr;
  Phase phase_ = Phase::kHosts;
  DatasetMeta meta_;
  DatasetStatsRecord stats_;
  std::vector<PageId> seeds_;
  uint32_t next_first_page_ = 0;
  uint64_t pages_emitted_ = 0;
  uint32_t links_emitted_ = 0;
  uint64_t offset_rows_written_ = 0;
  PageId last_link_from_ = 0;
};

}  // namespace

Status GenerateWebGraphToFile(const SyntheticWebOptions& options,
                              const std::string& path) {
  auto writer_or = DatasetWriter::Create(path);
  if (!writer_or.ok()) return writer_or.status();
  DatasetStreamSink sink(writer_or->get(), path + ".offsets.tmp");
  LSWC_RETURN_IF_ERROR(GenerateInto(options, &sink));
  return (*writer_or)->Finish();
}

}  // namespace lswc::store
