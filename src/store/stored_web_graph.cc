#include "store/stored_web_graph.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <vector>

#include "util/crc32.h"

namespace lswc::store {

namespace {

/// The sections of a verified dataset file, as spans into the mapping.
/// The directory entries ride along so the (optional) checksum pass can
/// re-read each section from the file without consulting the mapping.
struct ParsedDataset {
  DatasetMeta meta;
  DatasetStatsRecord stats;
  std::span<const PageRecord> pages;
  std::span<const HostRecord> hosts;
  std::span<const uint32_t> offsets;
  std::span<const PageId> targets;
  std::span<const PageId> seeds;
  SectionEntry meta_entry, hosts_entry, pages_entry, offsets_entry,
      targets_entry, seeds_entry, stats_entry;
};

StatusOr<SectionEntry> FindSection(const std::span<const SectionEntry> dir,
                                   uint32_t id, uint64_t payload_end) {
  for (const SectionEntry& e : dir) {
    if (e.id != id) continue;
    if (e.offset % 4 != 0 || e.offset > payload_end ||
        e.size > payload_end - e.offset) {
      return Status::Corruption("section out of bounds");
    }
    return e;
  }
  return Status::Corruption("missing dataset section");
}

/// Structural validation of the file through the mapping: magic,
/// trailer, directory checksum, section bounds/sizes, meta sanity, CSR
/// endpoints, and seed ranges. Deliberately touches only a few KiB of
/// the mapping (header, trailer, directory, meta, stats, seeds, the
/// first and last offset page) so opening a multi-GiB dataset leaves it
/// non-resident. The expensive whole-file checks — section CRCs, offset
/// monotonicity, target and page->host ranges — live in
/// VerifyDatasetStreaming below, which reads the file through a bounded
/// buffer instead of the mapping.
StatusOr<ParsedDataset> ParseDataset(const MappedFile& file) {
  const std::byte* base = file.data();
  const uint64_t size = file.size();
  if (size < 16 + sizeof(Trailer)) {
    return Status::Corruption("dataset file too small");
  }
  if (std::memcmp(base, kDatasetMagic, sizeof(kDatasetMagic)) != 0) {
    return Status::Corruption("bad dataset magic");
  }
  uint32_t version;
  std::memcpy(&version, base + 8, sizeof(version));
  if (version != kFormatVersion) {
    return Status::Corruption("unsupported dataset version");
  }
  Trailer trailer;
  std::memcpy(&trailer, base + size - sizeof(Trailer), sizeof(Trailer));
  if (std::memcmp(trailer.magic, kDatasetMagic, sizeof(trailer.magic)) != 0) {
    return Status::Corruption("bad trailer magic");
  }
  if (trailer.file_size != size) {
    return Status::Corruption("dataset file truncated or grown");
  }
  const uint64_t payload_end = size - sizeof(Trailer);
  const uint64_t dir_bytes =
      static_cast<uint64_t>(trailer.section_count) * sizeof(SectionEntry);
  if (trailer.directory_offset % alignof(SectionEntry) != 0 ||
      trailer.directory_offset > payload_end ||
      dir_bytes != payload_end - trailer.directory_offset) {
    return Status::Corruption("directory out of bounds");
  }
  const std::byte* dir_base = base + trailer.directory_offset;
  if (Crc32(dir_base, dir_bytes) != trailer.directory_crc32) {
    return Status::Corruption("directory checksum mismatch");
  }
  const std::span<const SectionEntry> dir(
      reinterpret_cast<const SectionEntry*>(dir_base), trailer.section_count);

  ParsedDataset out;
  struct Want {
    uint32_t id;
    SectionEntry* entry;
  } wants[] = {
      {kMetaSection, &out.meta_entry},
      {kHostsSection, &out.hosts_entry},
      {kPagesSection, &out.pages_entry},
      {kOffsetsSection, &out.offsets_entry},
      {kTargetsSection, &out.targets_entry},
      {kSeedsSection, &out.seeds_entry},
      {kStatsSection, &out.stats_entry},
  };
  for (const Want& want : wants) {
    auto entry = FindSection(dir, want.id, trailer.directory_offset);
    if (!entry.ok()) return entry.status();
    *want.entry = entry.value();
  }
  const SectionEntry& meta_entry = out.meta_entry;
  const SectionEntry& hosts_entry = out.hosts_entry;
  const SectionEntry& pages_entry = out.pages_entry;
  const SectionEntry& offsets_entry = out.offsets_entry;
  const SectionEntry& targets_entry = out.targets_entry;
  const SectionEntry& seeds_entry = out.seeds_entry;
  const SectionEntry& stats_entry = out.stats_entry;

  if (meta_entry.size != sizeof(DatasetMeta)) {
    return Status::Corruption("bad meta section size");
  }
  std::memcpy(&out.meta, base + meta_entry.offset, sizeof(DatasetMeta));
  const DatasetMeta& meta = out.meta;
  if (meta.page_record_bytes != sizeof(PageRecord) ||
      meta.host_record_bytes != sizeof(HostRecord)) {
    return Status::Corruption("incompatible record layout");
  }
  if (meta.num_pages == 0) return Status::Corruption("dataset has no pages");
  if (meta.num_pages > UINT32_MAX - 1 || meta.num_links > UINT32_MAX) {
    return Status::Corruption("dataset exceeds 32-bit page/link ids");
  }
  if (meta.target_language > static_cast<uint8_t>(Language::kOther)) {
    return Status::Corruption("bad target language");
  }
  if (stats_entry.size != sizeof(DatasetStatsRecord)) {
    return Status::Corruption("bad stats section size");
  }
  std::memcpy(&out.stats, base + stats_entry.offset,
              sizeof(DatasetStatsRecord));

  if (hosts_entry.size != meta.num_hosts * sizeof(HostRecord) ||
      pages_entry.size != meta.num_pages * sizeof(PageRecord) ||
      offsets_entry.size != (meta.num_pages + 1) * sizeof(uint32_t) ||
      targets_entry.size != meta.num_links * sizeof(PageId) ||
      seeds_entry.size != meta.num_seeds * sizeof(PageId)) {
    return Status::Corruption("section size disagrees with meta counts");
  }
  out.hosts = {reinterpret_cast<const HostRecord*>(base + hosts_entry.offset),
               static_cast<size_t>(meta.num_hosts)};
  out.pages = {reinterpret_cast<const PageRecord*>(base + pages_entry.offset),
               static_cast<size_t>(meta.num_pages)};
  out.offsets = {
      reinterpret_cast<const uint32_t*>(base + offsets_entry.offset),
      static_cast<size_t>(meta.num_pages) + 1};
  out.targets = {reinterpret_cast<const PageId*>(base + targets_entry.offset),
                 static_cast<size_t>(meta.num_links)};
  out.seeds = {reinterpret_cast<const PageId*>(base + seeds_entry.offset),
               static_cast<size_t>(meta.num_seeds)};

  // CSR endpoints are non-negotiable; the full monotonicity, target and
  // page->host scans ride with verify_checksums in
  // VerifyDatasetStreaming (they are cheaper than the CRC pass they
  // accompany).
  if (out.offsets.front() != 0 ||
      out.offsets.back() != static_cast<uint32_t>(meta.num_links)) {
    return Status::Corruption("CSR offset endpoints wrong");
  }
  for (PageId s : out.seeds) {
    if (s >= meta.num_pages) return Status::Corruption("seed out of range");
  }
  return out;
}

/// Streams one section's payload from `f` in bounded chunks (a multiple
/// of `stride`, so fixed-size records never straddle a chunk boundary),
/// accumulating the CRC and handing each chunk to `visit` for semantic
/// checks. Reading through stdio instead of the mapping keeps verified
/// bytes in the shared page cache, not in this process's RSS.
template <typename Visit>
Status ScanSection(std::FILE* f, const SectionEntry& entry, size_t stride,
                   Visit visit) {
  constexpr size_t kChunkBytes = size_t{1} << 20;
  const size_t chunk = std::max(stride, kChunkBytes / stride * stride);
  std::vector<std::byte> buf(chunk);
  if (std::fseek(f, static_cast<long>(entry.offset), SEEK_SET) != 0) {
    return Status::IoError("dataset seek failed during verification");
  }
  uint64_t remaining = entry.size;
  uint32_t crc = 0;
  while (remaining > 0) {
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(remaining, static_cast<uint64_t>(chunk)));
    if (std::fread(buf.data(), 1, n, f) != n) {
      return Status::IoError("dataset read failed during verification");
    }
    crc = Crc32Update(crc, buf.data(), n);
    LSWC_RETURN_IF_ERROR(visit(buf.data(), n));
    remaining -= n;
  }
  if (crc != entry.crc32) {
    return Status::Corruption("section checksum mismatch");
  }
  return Status::OK();
}

/// The expensive open-time checks, via bounded buffered reads: every
/// section's CRC32, CSR offset monotonicity, link targets < num_pages,
/// and page->host < num_hosts. A single ~1 MiB buffer is the only
/// allocation, so verifying a 100M-page dataset costs the same RSS as
/// verifying a toy one.
Status VerifyDatasetStreaming(const std::string& path, const ParsedDataset& p,
                              const DatasetOpenOptions& options) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot reopen dataset for verification");
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{f};

  // Per-section completion callback plumbing: the scan order below is
  // the file's section order, so done_bytes is also "file bytes read".
  const uint64_t total_bytes = p.meta_entry.size + p.stats_entry.size +
                               p.hosts_entry.size + p.seeds_entry.size +
                               p.offsets_entry.size + p.targets_entry.size +
                               p.pages_entry.size;
  uint64_t done_bytes = 0;
  auto section_done = [&](const char* name, const SectionEntry& entry) {
    done_bytes += entry.size;
    if (options.verify_progress) {
      options.verify_progress(name, entry.size, done_bytes, total_bytes);
    }
  };

  auto crc_only = [](const std::byte*, size_t) { return Status::OK(); };
  LSWC_RETURN_IF_ERROR(ScanSection(f, p.meta_entry, 1, crc_only));
  section_done("meta", p.meta_entry);
  LSWC_RETURN_IF_ERROR(ScanSection(f, p.stats_entry, 1, crc_only));
  section_done("stats", p.stats_entry);
  LSWC_RETURN_IF_ERROR(ScanSection(f, p.hosts_entry, 1, crc_only));
  section_done("hosts", p.hosts_entry);
  LSWC_RETURN_IF_ERROR(ScanSection(f, p.seeds_entry, 1, crc_only));
  section_done("seeds", p.seeds_entry);

  const uint64_t num_pages = p.meta.num_pages;
  const uint64_t num_hosts = p.meta.num_hosts;
  uint32_t prev_offset = 0;
  LSWC_RETURN_IF_ERROR(ScanSection(
      f, p.offsets_entry, sizeof(uint32_t),
      [&prev_offset](const std::byte* data, size_t n) {
        const uint32_t* v = reinterpret_cast<const uint32_t*>(data);
        for (size_t i = 0; i < n / sizeof(uint32_t); ++i) {
          if (v[i] < prev_offset) {
            return Status::Corruption("CSR offsets not monotonic");
          }
          prev_offset = v[i];
        }
        return Status::OK();
      }));
  section_done("offsets", p.offsets_entry);
  LSWC_RETURN_IF_ERROR(ScanSection(
      f, p.targets_entry, sizeof(PageId),
      [num_pages](const std::byte* data, size_t n) {
        const PageId* t = reinterpret_cast<const PageId*>(data);
        for (size_t i = 0; i < n / sizeof(PageId); ++i) {
          if (t[i] >= num_pages) {
            return Status::Corruption("link target out of range");
          }
        }
        return Status::OK();
      }));
  section_done("targets", p.targets_entry);
  LSWC_RETURN_IF_ERROR(ScanSection(
      f, p.pages_entry, sizeof(PageRecord),
      [num_hosts](const std::byte* data, size_t n) {
        const PageRecord* pages = reinterpret_cast<const PageRecord*>(data);
        for (size_t i = 0; i < n / sizeof(PageRecord); ++i) {
          if (pages[i].host >= num_hosts) {
            return Status::Corruption("page host out of range");
          }
        }
        return Status::OK();
      }));
  section_done("pages", p.pages_entry);
  return Status::OK();
}

}  // namespace

StatusOr<std::unique_ptr<StoredWebGraph>> StoredWebGraph::Open(
    const std::string& path, Options options) {
  auto file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  auto mapping =
      std::make_shared<const MappedFile>(std::move(file).value());
  auto parsed = ParseDataset(*mapping);
  if (!parsed.ok()) return parsed.status();
  const ParsedDataset& p = parsed.value();
  if (options.verify_checksums) {
    LSWC_RETURN_IF_ERROR(VerifyDatasetStreaming(path, p, options));
  }

  auto stored = std::unique_ptr<StoredWebGraph>(new StoredWebGraph());
  stored->path_ = path;
  stored->mapping_ = mapping;
  stored->offsets_ = p.offsets;
  stored->targets_ = p.targets;
  stored->stats_ = p.stats;
  stored->mapped_bytes_ = mapping->size();
  stored->graph_ = WebGraph::View(
      p.pages, p.hosts, p.offsets, p.targets, p.seeds,
      static_cast<Language>(p.meta.target_language), p.meta.generator_seed,
      mapping);
  return stored;
}

namespace {
/// Heap home of a ReadInRam graph; referenced by the graph's storage
/// pointer.
struct RamDatasetStorage {
  std::vector<PageRecord> pages;
  std::vector<HostRecord> hosts;
  std::vector<uint32_t> offsets;
  std::vector<PageId> targets;
  std::vector<PageId> seeds;
};
}  // namespace

StatusOr<WebGraph> StoredWebGraph::ReadInRam(const std::string& path,
                                             Options options) {
  auto file = MappedFile::Open(path);
  if (!file.ok()) return file.status();
  auto parsed = ParseDataset(file.value());
  if (!parsed.ok()) return parsed.status();
  const ParsedDataset& p = parsed.value();
  if (options.verify_checksums) {
    LSWC_RETURN_IF_ERROR(VerifyDatasetStreaming(path, p, options));
  }
  auto storage = std::make_shared<RamDatasetStorage>();
  storage->pages.assign(p.pages.begin(), p.pages.end());
  storage->hosts.assign(p.hosts.begin(), p.hosts.end());
  storage->offsets.assign(p.offsets.begin(), p.offsets.end());
  storage->targets.assign(p.targets.begin(), p.targets.end());
  storage->seeds.assign(p.seeds.begin(), p.seeds.end());
  return WebGraph::View(storage->pages, storage->hosts, storage->offsets,
                        storage->targets, storage->seeds,
                        static_cast<Language>(p.meta.target_language),
                        p.meta.generator_seed, storage);
}

WebGraph StoredWebGraph::NewView() const {
  return WebGraph::View(graph_.pages_, graph_.hosts_, graph_.offsets_,
                        graph_.targets_, graph_.seeds_,
                        graph_.target_language(), graph_.generator_seed(),
                        mapping_);
}

void StoredWebGraph::AttachObs(obs::MetricsRegistry* registry) const {
  if (registry == nullptr) return;
  registry->gauge("store.bytes_mapped")->Set(mapped_bytes_);
}

}  // namespace lswc::store
