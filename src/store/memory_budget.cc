#include "store/memory_budget.h"

#include <algorithm>

namespace lswc::store {

MemoryBudgetPlan PlanMemoryBudget(uint64_t budget_mb) {
  MemoryBudgetPlan plan;
  if (budget_mb == 0) return plan;
  plan.budget_bytes = budget_mb * (uint64_t{1} << 20);

  // Frontier half. A resident frontier URL costs ~8 bytes (the PageId
  // plus deque/bookkeeping overhead); at least one spill chunk's worth
  // so tiny budgets still make progress.
  const uint64_t frontier_bytes = plan.budget_bytes / 2;
  plan.frontier_urls =
      std::max<size_t>(static_cast<size_t>(frontier_bytes / 8), 8192);

  // Link-cache quarter, in DiskLinkDb's default 64 KiB blocks.
  plan.link_cache_block_words = 16384;  // 64 KiB of u32 targets.
  const uint64_t cache_bytes = plan.budget_bytes / 4;
  plan.linkdb_cache_blocks = std::max<size_t>(
      static_cast<size_t>(
          cache_bytes / (plan.link_cache_block_words * sizeof(uint32_t))),
      4);
  return plan;
}

}  // namespace lswc::store
