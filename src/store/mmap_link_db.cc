#include "store/mmap_link_db.h"

namespace lswc::store {

StatusOr<std::unique_ptr<MmapLinkDb>> MmapLinkDb::Open(
    const std::string& path, StoredWebGraph::Options options) {
  auto stored = StoredWebGraph::Open(path, options);
  if (!stored.ok()) return stored.status();
  return std::make_unique<MmapLinkDb>(**stored);
}

Status MmapLinkDb::GetOutlinks(PageId id, std::vector<PageId>* out) {
  out->clear();
  if (static_cast<size_t>(id) >= num_pages()) {
    return Status::NotFound("page id range");
  }
  ++outlink_reads_;
  const uint32_t begin = offsets_[id];
  const uint32_t end = offsets_[id + 1];
  out->assign(targets_.begin() + begin, targets_.begin() + end);
  if (obs_reads_ != nullptr) {
    obs_reads_->Increment();
    obs_links_served_->Add(end - begin);
  }
  return Status::OK();
}

void MmapLinkDb::AttachObs(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  obs_reads_ = registry->counter("store.outlink_reads");
  obs_links_served_ = registry->counter("store.links_served");
}

}  // namespace lswc::store
