#ifndef LSWC_STORE_MEMORY_BUDGET_H_
#define LSWC_STORE_MEMORY_BUDGET_H_

#include <cstddef>
#include <cstdint>

namespace lswc::store {

/// How one `--memory-budget-mb=` pool is carved up among the parts of a
/// run that would otherwise grow without bound. The split is fixed and
/// documented (ARCHITECTURE.md "Dataset store"):
///
///   50%  frontier     — in-memory URL window of the spilling frontier;
///                       everything beyond it goes to the spill files.
///   25%  link cache   — DiskLinkDb block-cache blocks.
///   25%  headroom     — crawl state (seen bitmap, metrics, samples)
///                       and allocator slack; not handed to anyone.
///
/// mmap-backed graph sections are deliberately outside the pool: the
/// kernel already evicts those pages under pressure, so budgeting them
/// would double-count.
struct MemoryBudgetPlan {
  /// 0 everywhere = unbudgeted (the pre-knob behavior).
  uint64_t budget_bytes = 0;
  /// SpillingFrontierOptions::memory_budget (URLs resident in RAM).
  size_t frontier_urls = 0;
  /// DiskLinkDbOptions::max_cached_blocks for `link_cache_block_words`
  /// sized blocks.
  size_t linkdb_cache_blocks = 0;
  size_t link_cache_block_words = 0;
};

/// Plans a budget of `budget_mb` MiB. `budget_mb == 0` returns the
/// unbudgeted plan. Every field is derived deterministically from the
/// arguments, so the plan can sit in a snapshot fingerprint.
MemoryBudgetPlan PlanMemoryBudget(uint64_t budget_mb);

}  // namespace lswc::store

#endif  // LSWC_STORE_MEMORY_BUDGET_H_
