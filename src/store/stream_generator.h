#ifndef LSWC_STORE_STREAM_GENERATOR_H_
#define LSWC_STORE_STREAM_GENERATOR_H_

#include <string>

#include "util/status.h"
#include "webgraph/generator.h"

namespace lswc::store {

/// Streams a synthetic web space straight into an LSWCDS1 dataset file
/// without ever materializing the graph: peak memory is the generator's
/// two bits per page plus O(num_hosts) arrays, so a 100M-page dataset
/// generates comfortably on a laptop.
///
/// Bit-identity contract: for the same options this produces the exact
/// bytes of WriteDatasetFile(GenerateWebGraph(options)) — the generator
/// consumes its RNG identically for every sink, and the two writers
/// emit sections in the same physical order.
///
/// Writes to `<path>.tmp` (plus a `<path>.offsets.tmp` CSR spool) and
/// renames atomically on success, so an interrupted generation leaves
/// no partial dataset under the final name and can simply be rerun.
Status GenerateWebGraphToFile(const SyntheticWebOptions& options,
                              const std::string& path);

}  // namespace lswc::store

#endif  // LSWC_STORE_STREAM_GENERATOR_H_
