#include "store/mmap_file.h"

#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#define LSWC_STORE_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#include <fstream>
#endif

namespace lswc::store {

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(std::exchange(other.data_, nullptr)),
      size_(std::exchange(other.size_, 0)),
      mapped_(std::exchange(other.mapped_, false)),
      fallback_(std::move(other.fallback_)) {}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    this->~MappedFile();
    new (this) MappedFile(std::move(other));
  }
  return *this;
}

MappedFile::~MappedFile() {
#if LSWC_STORE_HAVE_MMAP
  if (mapped_ && data_ != nullptr) {
    ::munmap(const_cast<std::byte*>(data_), size_);
  }
#endif
  data_ = nullptr;
  size_ = 0;
  mapped_ = false;
}

StatusOr<MappedFile> MappedFile::Open(const std::string& path) {
#if LSWC_STORE_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return Status::IoError("cannot open " + path);
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IoError("cannot stat " + path);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::Corruption("empty file: " + path);
  }
  void* addr = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is
  // only needed to create it.
  ::close(fd);
  if (addr == MAP_FAILED) return Status::IoError("mmap failed: " + path);
  MappedFile f;
  f.data_ = static_cast<const std::byte*>(addr);
  f.size_ = size;
  f.mapped_ = true;
  return f;
#else
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  const std::streamoff size = in.tellg();
  if (size <= 0) return Status::Corruption("empty file: " + path);
  MappedFile f;
  f.fallback_.resize(static_cast<size_t>(size));
  in.seekg(0);
  in.read(reinterpret_cast<char*>(f.fallback_.data()), size);
  if (!in.good()) return Status::IoError("read failed: " + path);
  f.data_ = f.fallback_.data();
  f.size_ = f.fallback_.size();
  f.mapped_ = false;
  return f;
#endif
}

}  // namespace lswc::store
