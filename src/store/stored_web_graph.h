#ifndef LSWC_STORE_STORED_WEB_GRAPH_H_
#define LSWC_STORE_STORED_WEB_GRAPH_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "obs/metrics_registry.h"
#include "store/format.h"
#include "store/mmap_file.h"
#include "util/status.h"
#include "webgraph/graph.h"

namespace lswc::store {

/// An LSWCDS1 dataset served in place: Open() maps the file, verifies
/// the directory (and, by default, every section checksum), and builds
/// a WebGraph whose spans point straight into the mapping — zero parse
/// cost, zero copies, and the OS page cache as the only resident state.
///
/// Ownership contract: graph() is a *view*, but a self-sufficient one.
/// The mapping is held by a shared_ptr that the WebGraph's storage
/// pointer also references, so the graph — and anything built on it
/// (VirtualWebSpace, MmapLinkDb, per-shard link DBs) — stays valid even
/// if the StoredWebGraph object itself is destroyed first.
/// Open-time validation knobs (the DiskLinkDbOptions pattern: defined
/// outside the class so `= {}` default arguments can use it).
struct DatasetOpenOptions {
  /// Verify every section's CRC32 (plus CSR monotonicity and id-range
  /// scans) on open. One sequential buffered read of the file through a
  /// ~1 MiB scratch buffer — never through the mapping, so even a
  /// multi-GiB dataset stays non-resident. Disable when open latency
  /// matters more than early corruption detection (the directory,
  /// trailer, and structural bounds are always verified).
  bool verify_checksums = true;
  /// Called once per section as the streamed checksum pass completes
  /// it, with the section name, its payload size, and the cumulative /
  /// total byte counts of the whole pass — `lswc_dataset verify` turns
  /// these into stderr progress lines so a multi-GiB verify is visibly
  /// alive. Invoked from the opening thread; ignored when
  /// verify_checksums is false.
  std::function<void(const char* section, uint64_t section_bytes,
                     uint64_t done_bytes, uint64_t total_bytes)>
      verify_progress;
};

class StoredWebGraph {
 public:
  using Options = DatasetOpenOptions;

  static StatusOr<std::unique_ptr<StoredWebGraph>> Open(
      const std::string& path, Options options = {});

  /// The --store=ram path: reads the same file but copies every section
  /// into heap-owned storage, for baselines and for machines where
  /// touching the mapping mid-crawl is slower than paying all I/O up
  /// front.
  static StatusOr<WebGraph> ReadInRam(const std::string& path,
                                      Options options = {});

  const WebGraph& graph() const { return graph_; }
  /// A fresh self-sufficient view of the same dataset: same spans, own
  /// keep-alive handle on the mapping. WebGraph is move-only, so callers
  /// that want to *own* a graph by value (drivers returning WebGraph)
  /// take a view from here instead of copying graph().
  WebGraph NewView() const;
  const std::string& path() const { return path_; }
  uint64_t mapped_bytes() const { return mapped_bytes_; }
  const DatasetStatsRecord& stats() const { return stats_; }

  /// CSR spans for link serving (MmapLinkDb); backed by the mapping.
  std::span<const uint32_t> offsets() const { return offsets_; }
  std::span<const PageId> targets() const { return targets_; }
  /// Keep-alive handle for objects that outlive this StoredWebGraph.
  std::shared_ptr<const MappedFile> mapping() const { return mapping_; }

  /// Reports `store.bytes_mapped` (gauge); merged across runs it keeps
  /// the high-water mark.
  void AttachObs(obs::MetricsRegistry* registry) const;

 private:
  StoredWebGraph() = default;

  std::string path_;
  std::shared_ptr<const MappedFile> mapping_;
  WebGraph graph_;
  std::span<const uint32_t> offsets_;
  std::span<const PageId> targets_;
  DatasetStatsRecord stats_;
  uint64_t mapped_bytes_ = 0;
};

}  // namespace lswc::store

#endif  // LSWC_STORE_STORED_WEB_GRAPH_H_
