#ifndef LSWC_STORE_MMAP_FILE_H_
#define LSWC_STORE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace lswc::store {

/// A read-only view of a whole file. On POSIX this is a real
/// PROT_READ mapping — opening a 5 GB dataset costs no I/O until pages
/// are touched, and untouched sections never enter RSS. Elsewhere it
/// degrades to reading the file into a heap buffer so the rest of the
/// store keeps working (is_mapped() tells the two apart).
class MappedFile {
 public:
  static StatusOr<MappedFile> Open(const std::string& path);

  MappedFile() = default;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  ~MappedFile();

  const std::byte* data() const { return data_; }
  size_t size() const { return size_; }
  bool is_mapped() const { return mapped_; }

 private:
  const std::byte* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_ = false;
  std::vector<std::byte> fallback_;  // Owns the bytes when !mapped_.
};

}  // namespace lswc::store

#endif  // LSWC_STORE_MMAP_FILE_H_
