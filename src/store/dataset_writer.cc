#include "store/dataset_writer.h"

#include <algorithm>
#include <cstring>

#include "util/crc32.h"

namespace lswc::store {

StatusOr<std::unique_ptr<DatasetWriter>> DatasetWriter::Create(
    const std::string& path) {
  auto w = std::unique_ptr<DatasetWriter>(new DatasetWriter());
  w->path_ = path;
  w->tmp_path_ = path + ".tmp";
  w->file_ = std::fopen(w->tmp_path_.c_str(), "wb");
  if (w->file_ == nullptr) {
    return Status::IoError("cannot create " + w->tmp_path_);
  }
  LSWC_RETURN_IF_ERROR(w->WriteRaw(kDatasetMagic, sizeof(kDatasetMagic)));
  const uint32_t version = kFormatVersion;
  const uint32_t flags = 0;
  LSWC_RETURN_IF_ERROR(w->WriteRaw(&version, sizeof(version)));
  LSWC_RETURN_IF_ERROR(w->WriteRaw(&flags, sizeof(flags)));
  return w;
}

DatasetWriter::~DatasetWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
    if (!finished_) std::remove(tmp_path_.c_str());
  }
}

Status DatasetWriter::WriteRaw(const void* data, size_t size) {
  if (file_ == nullptr) return Status::FailedPrecondition("writer closed");
  if (std::fwrite(data, 1, size, file_) != size) {
    return Status::IoError("write failed: " + tmp_path_);
  }
  file_offset_ += size;
  return Status::OK();
}

Status DatasetWriter::PadTo(uint64_t alignment) {
  static constexpr char kZeros[64] = {};
  while (file_offset_ % alignment != 0) {
    const size_t n = static_cast<size_t>(
        std::min<uint64_t>(alignment - file_offset_ % alignment,
                           sizeof(kZeros)));
    LSWC_RETURN_IF_ERROR(WriteRaw(kZeros, n));
  }
  return Status::OK();
}

Status DatasetWriter::BeginSection(uint32_t id) {
  if (finished_) return Status::FailedPrecondition("writer finished");
  if (in_section_) return Status::FailedPrecondition("section still open");
  for (const SectionEntry& e : directory_) {
    if (e.id == id) return Status::InvalidArgument("duplicate section id");
  }
  LSWC_RETURN_IF_ERROR(PadTo(kSectionAlignment));
  current_ = SectionEntry{};
  current_.id = id;
  current_.offset = file_offset_;
  in_section_ = true;
  return Status::OK();
}

Status DatasetWriter::Append(const void* data, size_t size) {
  if (!in_section_) return Status::FailedPrecondition("no open section");
  LSWC_RETURN_IF_ERROR(WriteRaw(data, size));
  current_.crc32 = Crc32Update(current_.crc32, data, size);
  current_.size += size;
  return Status::OK();
}

Status DatasetWriter::EndSection() {
  if (!in_section_) return Status::FailedPrecondition("no open section");
  in_section_ = false;
  directory_.push_back(current_);
  return Status::OK();
}

Status DatasetWriter::Finish() {
  if (finished_) return Status::FailedPrecondition("Finish called twice");
  if (in_section_) return Status::FailedPrecondition("section still open");
  LSWC_RETURN_IF_ERROR(PadTo(alignof(SectionEntry)));
  Trailer trailer;
  trailer.directory_offset = file_offset_;
  trailer.section_count = static_cast<uint32_t>(directory_.size());
  trailer.directory_crc32 =
      Crc32(directory_.data(), directory_.size() * sizeof(SectionEntry));
  LSWC_RETURN_IF_ERROR(
      WriteRaw(directory_.data(), directory_.size() * sizeof(SectionEntry)));
  trailer.file_size = file_offset_ + sizeof(Trailer);
  std::memcpy(trailer.magic, kDatasetMagic, sizeof(trailer.magic));
  LSWC_RETURN_IF_ERROR(WriteRaw(&trailer, sizeof(trailer)));
  if (std::fflush(file_) != 0) {
    return Status::IoError("flush failed: " + tmp_path_);
  }
  if (std::fclose(file_) != 0) {
    file_ = nullptr;
    return Status::IoError("close failed: " + tmp_path_);
  }
  file_ = nullptr;
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    return Status::IoError("rename failed: " + path_);
  }
  finished_ = true;
  return Status::OK();
}

Status WriteDatasetFile(const WebGraph& graph, const std::string& path) {
  auto writer_or = DatasetWriter::Create(path);
  if (!writer_or.ok()) return writer_or.status();
  DatasetWriter& w = **writer_or;

  // Physical section order matches the streamed generator exactly
  // (hosts and pages as soon as they exist, targets while offsets are
  // still accumulating, bookkeeping at the end), so a dataset written
  // from a materialized graph is byte-identical to one streamed by
  // GenerateWebGraphToFile with the same seed.
  LSWC_RETURN_IF_ERROR(w.BeginSection(kHostsSection));
  for (size_t h = 0; h < graph.num_hosts(); ++h) {
    LSWC_RETURN_IF_ERROR(w.AppendPod(graph.host(static_cast<uint32_t>(h))));
  }
  LSWC_RETURN_IF_ERROR(w.EndSection());

  LSWC_RETURN_IF_ERROR(w.BeginSection(kPagesSection));
  for (PageId p = 0; p < graph.num_pages(); ++p) {
    LSWC_RETURN_IF_ERROR(w.AppendPod(graph.page(p)));
  }
  LSWC_RETURN_IF_ERROR(w.EndSection());

  LSWC_RETURN_IF_ERROR(w.BeginSection(kTargetsSection));
  for (PageId p = 0; p < graph.num_pages(); ++p) {
    const auto links = graph.outlinks(p);
    LSWC_RETURN_IF_ERROR(
        w.Append(links.data(), links.size() * sizeof(PageId)));
  }
  LSWC_RETURN_IF_ERROR(w.EndSection());

  LSWC_RETURN_IF_ERROR(w.BeginSection(kOffsetsSection));
  uint32_t offset = 0;
  LSWC_RETURN_IF_ERROR(w.AppendPod(offset));
  for (PageId p = 0; p < graph.num_pages(); ++p) {
    offset += static_cast<uint32_t>(graph.outlinks(p).size());
    LSWC_RETURN_IF_ERROR(w.AppendPod(offset));
  }
  LSWC_RETURN_IF_ERROR(w.EndSection());

  LSWC_RETURN_IF_ERROR(w.BeginSection(kSeedsSection));
  for (PageId s : graph.seeds()) {
    LSWC_RETURN_IF_ERROR(w.AppendPod(s));
  }
  LSWC_RETURN_IF_ERROR(w.EndSection());

  const DatasetStats stats = graph.ComputeStats();
  DatasetStatsRecord stats_record;
  stats_record.total_urls = stats.total_urls;
  stats_record.ok_html_pages = stats.ok_html_pages;
  stats_record.relevant_ok_pages = stats.relevant_ok_pages;
  stats_record.irrelevant_ok_pages = stats.irrelevant_ok_pages;
  LSWC_RETURN_IF_ERROR(w.BeginSection(kStatsSection));
  LSWC_RETURN_IF_ERROR(w.AppendPod(stats_record));
  LSWC_RETURN_IF_ERROR(w.EndSection());

  DatasetMeta meta;
  meta.page_record_bytes = sizeof(PageRecord);
  meta.host_record_bytes = sizeof(HostRecord);
  meta.generator_seed = graph.generator_seed();
  meta.num_pages = graph.num_pages();
  meta.num_hosts = graph.num_hosts();
  meta.num_links = graph.num_links();
  meta.num_seeds = graph.seeds().size();
  meta.target_language = static_cast<uint8_t>(graph.target_language());
  LSWC_RETURN_IF_ERROR(w.BeginSection(kMetaSection));
  LSWC_RETURN_IF_ERROR(w.AppendPod(meta));
  LSWC_RETURN_IF_ERROR(w.EndSection());

  return w.Finish();
}

}  // namespace lswc::store
