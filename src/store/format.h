#ifndef LSWC_STORE_FORMAT_H_
#define LSWC_STORE_FORMAT_H_

#include <cstddef>
#include <cstdint>

#include "charset/encoding.h"

namespace lswc::store {

/// The LSWCDS1 dataset file: one self-describing, section-checksummed
/// container holding a whole web space — the `WriteLinkFile` idea
/// generalized from links to the full dataset, so a 100M-page graph can
/// be generated once, streamed to disk, and served by mmap forever
/// after.
///
///   [0, 8)    magic "LSWCDS1\0"
///   [8, 12)   u32 format version (1)
///   [12, 16)  u32 flags (0, reserved)
///   ...       sections, each starting on a 64-byte boundary
///   ...       directory: count x SectionEntry
///   [EOF-32)  Trailer (locates and checksums the directory)
///
/// Sections may appear in any physical order; the directory at the end
/// is what names them. The writer streams sections front to back and
/// only learns sizes as it goes — exactly what bounded-memory
/// generation needs — while readers start from the fixed-size trailer.
/// All integers are little-endian; the record sections are verbatim
/// arrays of the in-memory structs (PageRecord/HostRecord are
/// padding-free by static_assert), which is what makes the mmap read
/// path zero-parse.
inline constexpr char kDatasetMagic[8] = {'L', 'S', 'W', 'C',
                                          'D', 'S', '1', '\0'};
inline constexpr uint32_t kFormatVersion = 1;

/// Section payloads start on this boundary so mapped record arrays are
/// comfortably aligned for any element type we store.
inline constexpr uint64_t kSectionAlignment = 64;

/// Section ids. A reader must reject files missing any of the required
/// sections; unknown ids are skipped (forward compatibility).
enum SectionId : uint32_t {
  kMetaSection = 1,     // DatasetMeta (fixed size).
  kHostsSection = 2,    // HostRecord x num_hosts.
  kPagesSection = 3,    // PageRecord x num_pages.
  kOffsetsSection = 4,  // u32 x (num_pages + 1), CSR row starts.
  kTargetsSection = 5,  // u32 x num_links, CSR link targets.
  kSeedsSection = 6,    // u32 x num_seeds.
  kStatsSection = 7,    // DatasetStatsRecord (fixed size).
};

/// One directory row; the directory is `section_count` of these packed
/// back to back at `directory_offset`.
struct SectionEntry {
  uint32_t id = 0;
  uint32_t reserved = 0;
  uint64_t offset = 0;  // Absolute file offset of the payload.
  uint64_t size = 0;    // Payload bytes (before alignment padding).
  uint32_t crc32 = 0;   // CRC-32 (zlib) of the payload bytes.
  uint32_t reserved2 = 0;
};
static_assert(sizeof(SectionEntry) == 32, "on-disk layout");

/// Fixed-size tail of the file. Readers seek to EOF-32, verify both
/// magics, then verify the directory against its CRC before trusting
/// any section entry.
struct Trailer {
  uint64_t directory_offset = 0;
  uint32_t section_count = 0;
  uint32_t directory_crc32 = 0;
  uint64_t file_size = 0;  // Total bytes incl. trailer; truncation check.
  char magic[8] = {};
};
static_assert(sizeof(Trailer) == 32, "on-disk layout");

/// Payload of kMetaSection. Record sizes are stored so a reader can
/// reject a file written by an incompatible struct layout instead of
/// misinterpreting it.
struct DatasetMeta {
  uint32_t page_record_bytes = 0;
  uint32_t host_record_bytes = 0;
  uint64_t generator_seed = 0;
  uint64_t num_pages = 0;
  uint64_t num_hosts = 0;
  uint64_t num_links = 0;
  uint64_t num_seeds = 0;
  uint8_t target_language = 0;  // lswc::Language
  uint8_t reserved[15] = {};
};
static_assert(sizeof(DatasetMeta) == 64, "on-disk layout");

/// Payload of kStatsSection; mirrors lswc::DatasetStats so `info` and
/// benches never need a full pass over a 100M-page file.
struct DatasetStatsRecord {
  uint64_t total_urls = 0;
  uint64_t ok_html_pages = 0;
  uint64_t relevant_ok_pages = 0;
  uint64_t irrelevant_ok_pages = 0;
};
static_assert(sizeof(DatasetStatsRecord) == 32, "on-disk layout");

/// How a run serves a dataset file.
enum class StoreBackend {
  kRam,   // Materialize into heap vectors up front (the classic path).
  kMmap,  // Serve records straight from the mapping; OS paging is the
          // cache, resident cost is what the crawl actually touches.
};

}  // namespace lswc::store

#endif  // LSWC_STORE_FORMAT_H_
