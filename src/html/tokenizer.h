#ifndef LSWC_HTML_TOKENIZER_H_
#define LSWC_HTML_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace lswc {

/// One attribute on a start tag. `name` is lowercased; `value` is the raw
/// attribute text with quotes removed but entities NOT decoded (decode at
/// the point of use — URLs and charset names want different handling).
struct HtmlAttribute {
  std::string name;
  std::string value;
  bool has_value = false;
};

/// Kinds of tokens produced by HtmlTokenizer.
enum class HtmlTokenType {
  kStartTag,   // <a href=...> ; self-closing tags also produce kStartTag.
  kEndTag,     // </a>
  kText,       // character data between tags
  kComment,    // <!-- ... -->
  kDoctype,    // <!DOCTYPE ...>
  kEndOfFile,
};

/// A token. Views into tag/attr storage are owned by the tokenizer and
/// valid until the next call to Next().
struct HtmlToken {
  HtmlTokenType type = HtmlTokenType::kEndOfFile;
  /// Lowercased tag name for kStartTag/kEndTag.
  std::string name;
  /// Raw text for kText/kComment/kDoctype.
  std::string_view text;
  std::vector<HtmlAttribute> attributes;
  bool self_closing = false;

  /// First value of attribute `attr_name` (lowercase), or nullptr.
  const std::string* FindAttribute(std::string_view attr_name) const;
};

/// A forgiving, allocation-light HTML tokenizer sufficient for crawling:
/// handles comments, doctypes, quoted/unquoted attributes, self-closing
/// tags, and raw-text elements (script/style/textarea/title) whose content
/// is emitted as text and never parsed for tags. Invalid markup never
/// fails; it degrades to text, which is exactly what a crawler wants.
class HtmlTokenizer {
 public:
  explicit HtmlTokenizer(std::string_view html);

  /// Scans and returns the next token. After kEndOfFile, keeps returning
  /// kEndOfFile.
  const HtmlToken& Next();

  /// Byte offset of the scanner (diagnostics).
  size_t position() const { return pos_; }

 private:
  void ScanText();
  void ScanMarkup();
  bool ScanComment();
  bool ScanDoctype();
  void ScanTag();
  void ScanAttributes();
  void ScanRawText(std::string_view end_tag);

  std::string_view html_;
  size_t pos_ = 0;
  HtmlToken token_;
  std::string pending_raw_end_;  // Non-empty while inside a raw-text element.
};

}  // namespace lswc

#endif  // LSWC_HTML_TOKENIZER_H_
