#include "html/tokenizer.h"

#include "util/string_util.h"

namespace lswc {

namespace {
bool IsRawTextElement(std::string_view name) {
  return name == "script" || name == "style" || name == "textarea" ||
         name == "title";
}
}  // namespace

const std::string* HtmlToken::FindAttribute(std::string_view attr_name) const {
  for (const auto& a : attributes) {
    if (a.name == attr_name) return &a.value;
  }
  return nullptr;
}

HtmlTokenizer::HtmlTokenizer(std::string_view html) : html_(html) {}

const HtmlToken& HtmlTokenizer::Next() {
  token_.type = HtmlTokenType::kEndOfFile;
  token_.name.clear();
  token_.text = {};
  token_.attributes.clear();
  token_.self_closing = false;

  if (!pending_raw_end_.empty()) {
    const std::string end_tag = pending_raw_end_;
    pending_raw_end_.clear();
    ScanRawText(end_tag);
    if (token_.type != HtmlTokenType::kEndOfFile) return token_;
  }

  if (pos_ >= html_.size()) return token_;

  if (html_[pos_] == '<') {
    ScanMarkup();
  } else {
    ScanText();
  }
  return token_;
}

void HtmlTokenizer::ScanText() {
  const size_t start = pos_;
  const size_t lt = html_.find('<', pos_);
  pos_ = (lt == std::string_view::npos) ? html_.size() : lt;
  token_.type = HtmlTokenType::kText;
  token_.text = html_.substr(start, pos_ - start);
}

void HtmlTokenizer::ScanMarkup() {
  // pos_ points at '<'.
  if (pos_ + 1 >= html_.size()) {
    // Trailing lone '<': emit as text.
    token_.type = HtmlTokenType::kText;
    token_.text = html_.substr(pos_);
    pos_ = html_.size();
    return;
  }
  const char c = html_[pos_ + 1];
  if (c == '!') {
    if (ScanComment()) return;
    if (ScanDoctype()) return;
    // "<!" followed by junk: skip to '>' as a bogus comment.
    const size_t gt = html_.find('>', pos_);
    const size_t start = pos_;
    pos_ = (gt == std::string_view::npos) ? html_.size() : gt + 1;
    token_.type = HtmlTokenType::kComment;
    token_.text = html_.substr(start, pos_ - start);
    return;
  }
  if (c == '/' || IsAsciiAlpha(c)) {
    ScanTag();
    return;
  }
  // "<" followed by a non-tag character is text ("a < b").
  const size_t start = pos_;
  ++pos_;
  const size_t lt = html_.find('<', pos_);
  pos_ = (lt == std::string_view::npos) ? html_.size() : lt;
  token_.type = HtmlTokenType::kText;
  token_.text = html_.substr(start, pos_ - start);
}

bool HtmlTokenizer::ScanComment() {
  if (!StartsWith(html_.substr(pos_), "<!--")) return false;
  const size_t body = pos_ + 4;
  const size_t end = html_.find("-->", body);
  token_.type = HtmlTokenType::kComment;
  if (end == std::string_view::npos) {
    token_.text = html_.substr(body);
    pos_ = html_.size();
  } else {
    token_.text = html_.substr(body, end - body);
    pos_ = end + 3;
  }
  return true;
}

bool HtmlTokenizer::ScanDoctype() {
  if (!StartsWithIgnoreCase(html_.substr(pos_), "<!doctype")) return false;
  const size_t gt = html_.find('>', pos_);
  const size_t start = pos_ + 2;
  const size_t end = (gt == std::string_view::npos) ? html_.size() : gt;
  token_.type = HtmlTokenType::kDoctype;
  token_.text = html_.substr(start, end - start);
  pos_ = (gt == std::string_view::npos) ? html_.size() : gt + 1;
  return true;
}

void HtmlTokenizer::ScanTag() {
  const bool end_tag = html_[pos_ + 1] == '/';
  size_t i = pos_ + (end_tag ? 2 : 1);
  const size_t name_start = i;
  while (i < html_.size() &&
         (IsAsciiAlnum(html_[i]) || html_[i] == '-' || html_[i] == ':' ||
          html_[i] == '_')) {
    ++i;
  }
  token_.name = AsciiStrToLower(html_.substr(name_start, i - name_start));
  token_.type = end_tag ? HtmlTokenType::kEndTag : HtmlTokenType::kStartTag;
  pos_ = i;
  if (!end_tag) {
    ScanAttributes();
  } else {
    const size_t gt = html_.find('>', pos_);
    pos_ = (gt == std::string_view::npos) ? html_.size() : gt + 1;
  }
  if (token_.type == HtmlTokenType::kStartTag && !token_.self_closing &&
      IsRawTextElement(token_.name)) {
    pending_raw_end_ = token_.name;
  }
}

void HtmlTokenizer::ScanAttributes() {
  while (pos_ < html_.size()) {
    while (pos_ < html_.size() && IsAsciiSpace(html_[pos_])) ++pos_;
    if (pos_ >= html_.size()) return;
    if (html_[pos_] == '>') {
      ++pos_;
      return;
    }
    if (html_[pos_] == '/') {
      ++pos_;
      if (pos_ < html_.size() && html_[pos_] == '>') {
        token_.self_closing = true;
        ++pos_;
        return;
      }
      continue;  // Stray '/': ignore.
    }
    // Attribute name.
    const size_t name_start = pos_;
    while (pos_ < html_.size() && html_[pos_] != '=' && html_[pos_] != '>' &&
           html_[pos_] != '/' && !IsAsciiSpace(html_[pos_])) {
      ++pos_;
    }
    HtmlAttribute attr;
    attr.name = AsciiStrToLower(html_.substr(name_start, pos_ - name_start));
    while (pos_ < html_.size() && IsAsciiSpace(html_[pos_])) ++pos_;
    if (pos_ < html_.size() && html_[pos_] == '=') {
      ++pos_;
      while (pos_ < html_.size() && IsAsciiSpace(html_[pos_])) ++pos_;
      attr.has_value = true;
      if (pos_ < html_.size() && (html_[pos_] == '"' || html_[pos_] == '\'')) {
        const char quote = html_[pos_++];
        const size_t vstart = pos_;
        const size_t vend = html_.find(quote, pos_);
        if (vend == std::string_view::npos) {
          attr.value = std::string(html_.substr(vstart));
          pos_ = html_.size();
        } else {
          attr.value = std::string(html_.substr(vstart, vend - vstart));
          pos_ = vend + 1;
        }
      } else {
        const size_t vstart = pos_;
        while (pos_ < html_.size() && html_[pos_] != '>' &&
               !IsAsciiSpace(html_[pos_])) {
          ++pos_;
        }
        attr.value = std::string(html_.substr(vstart, pos_ - vstart));
      }
    }
    if (!attr.name.empty()) token_.attributes.push_back(std::move(attr));
  }
}

void HtmlTokenizer::ScanRawText(std::string_view end_tag) {
  // Look for "</end_tag" case-insensitively.
  const size_t start = pos_;
  size_t i = pos_;
  while (i < html_.size()) {
    const size_t lt = html_.find('<', i);
    if (lt == std::string_view::npos) break;
    if (lt + 1 < html_.size() && html_[lt + 1] == '/' &&
        StartsWithIgnoreCase(html_.substr(lt + 2), end_tag)) {
      const size_t after = lt + 2 + end_tag.size();
      if (after >= html_.size() || html_[after] == '>' ||
          IsAsciiSpace(html_[after])) {
        if (lt > start) {
          token_.type = HtmlTokenType::kText;
          token_.text = html_.substr(start, lt - start);
          pos_ = lt;
          return;
        }
        // No raw content: fall through to tokenize the end tag normally.
        pos_ = lt;
        ScanMarkup();
        return;
      }
    }
    i = lt + 1;
  }
  // Unterminated raw text: everything to EOF is text.
  if (start < html_.size()) {
    token_.type = HtmlTokenType::kText;
    token_.text = html_.substr(start);
  }
  pos_ = html_.size();
}

}  // namespace lswc
