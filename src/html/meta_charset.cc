#include "html/meta_charset.h"

#include "html/tokenizer.h"
#include "util/string_util.h"

namespace lswc {

std::optional<std::string> CharsetFromContentType(std::string_view value) {
  // Scan parameters separated by ';' for charset=<token>.
  size_t pos = 0;
  while (pos < value.size()) {
    size_t semi = value.find(';', pos);
    if (semi == std::string_view::npos) semi = value.size();
    std::string_view part = StripAsciiWhitespace(value.substr(pos, semi - pos));
    if (StartsWithIgnoreCase(part, "charset")) {
      std::string_view rest = StripAsciiWhitespace(part.substr(7));
      if (!rest.empty() && rest.front() == '=') {
        rest = StripAsciiWhitespace(rest.substr(1));
        // Strip optional quotes.
        if (rest.size() >= 2 && (rest.front() == '"' || rest.front() == '\'') &&
            rest.back() == rest.front()) {
          rest = rest.substr(1, rest.size() - 2);
        }
        if (!rest.empty()) return std::string(rest);
      }
    }
    pos = semi + 1;
  }
  return std::nullopt;
}

std::optional<std::string> ExtractMetaCharset(std::string_view html) {
  HtmlTokenizer tok(html);
  while (true) {
    const HtmlToken& t = tok.Next();
    if (t.type == HtmlTokenType::kEndOfFile) break;
    if (t.type != HtmlTokenType::kStartTag) continue;
    // Stop scanning at the end of <head>-ish content: charset declarations
    // after <body> starts are ignored by real browsers' prescan as well.
    if (t.name == "body") break;
    if (t.name != "meta") continue;

    if (const std::string* charset = t.FindAttribute("charset")) {
      std::string_view v = StripAsciiWhitespace(*charset);
      if (!v.empty()) return std::string(v);
      continue;
    }
    const std::string* http_equiv = t.FindAttribute("http-equiv");
    const std::string* content = t.FindAttribute("content");
    if (http_equiv != nullptr && content != nullptr &&
        EqualsIgnoreCase(*http_equiv, "content-type")) {
      auto cs = CharsetFromContentType(*content);
      if (cs.has_value()) return cs;
    }
  }
  return std::nullopt;
}

}  // namespace lswc
