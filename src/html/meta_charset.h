#ifndef LSWC_HTML_META_CHARSET_H_
#define LSWC_HTML_META_CHARSET_H_

#include <optional>
#include <string>
#include <string_view>

namespace lswc {

/// Extracts the author-declared character set of an HTML document, the
/// paper's first relevance-judgment method (§3.2):
///
///   <META http-equiv="Content-Type" content="text/html; charset=EUC-JP">
///
/// Both the HTML 4 META http-equiv form and the HTML5
/// <meta charset="..."> form are recognized; the first declaration wins.
/// Returns the charset token (trimmed, original case) or nullopt when the
/// document declares none — the paper's datasets contain such pages and
/// the classifiers must treat them as unknown.
std::optional<std::string> ExtractMetaCharset(std::string_view html);

/// Parses the charset parameter out of a Content-Type value, e.g.
/// "text/html; charset=tis-620" -> "tis-620". Returns nullopt if absent.
std::optional<std::string> CharsetFromContentType(std::string_view value);

}  // namespace lswc

#endif  // LSWC_HTML_META_CHARSET_H_
