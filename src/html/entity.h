#ifndef LSWC_HTML_ENTITY_H_
#define LSWC_HTML_ENTITY_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace lswc {

/// Appends the UTF-8 encoding of `codepoint` to `out`. Invalid codepoints
/// (surrogates, > U+10FFFF) are replaced with U+FFFD.
void AppendUtf8(uint32_t codepoint, std::string* out);

/// Decodes HTML character references in `text`:
///  - named references from a core set (amp, lt, gt, quot, apos, nbsp, ...),
///  - decimal (&#nnn;) and hexadecimal (&#xhh;) numeric references.
/// Unknown or malformed references are passed through verbatim, which is
/// what link extraction wants for crawl robustness.
std::string DecodeHtmlEntities(std::string_view text);

}  // namespace lswc

#endif  // LSWC_HTML_ENTITY_H_
