#include "html/entity.h"

#include <array>

#include "util/string_util.h"

namespace lswc {

void AppendUtf8(uint32_t cp, std::string* out) {
  if (cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF)) cp = 0xFFFD;
  if (cp < 0x80) {
    out->push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else if (cp < 0x10000) {
    out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

namespace {

struct NamedEntity {
  std::string_view name;
  uint32_t codepoint;
};

// Core HTML 4 named entities relevant to URL text and page prose; names
// are matched case-sensitively as in the spec.
constexpr std::array<NamedEntity, 20> kNamedEntities{{
    {"amp", '&'},    {"lt", '<'},      {"gt", '>'},     {"quot", '"'},
    {"apos", '\''},  {"nbsp", 0xA0},   {"copy", 0xA9},  {"reg", 0xAE},
    {"trade", 0x2122}, {"hellip", 0x2026}, {"mdash", 0x2014},
    {"ndash", 0x2013}, {"lsquo", 0x2018}, {"rsquo", 0x2019},
    {"ldquo", 0x201C}, {"rdquo", 0x201D}, {"middot", 0xB7},
    {"laquo", 0xAB}, {"raquo", 0xBB}, {"deg", 0xB0},
}};

// Decodes one reference starting at text[i] == '&'. On success appends the
// decoded character and returns the index just past the reference;
// otherwise returns i (caller copies '&' verbatim).
size_t DecodeOne(std::string_view text, size_t i, std::string* out) {
  const size_t n = text.size();
  size_t j = i + 1;
  if (j >= n) return i;
  if (text[j] == '#') {
    ++j;
    uint32_t cp = 0;
    size_t digits = 0;
    if (j < n && (text[j] == 'x' || text[j] == 'X')) {
      ++j;
      while (j < n && IsAsciiHexDigit(text[j]) && digits < 8) {
        cp = cp * 16 + static_cast<uint32_t>(HexDigitValue(text[j]));
        ++j;
        ++digits;
      }
    } else {
      while (j < n && IsAsciiDigit(text[j]) && digits < 8) {
        cp = cp * 10 + static_cast<uint32_t>(text[j] - '0');
        ++j;
        ++digits;
      }
    }
    if (digits == 0) return i;
    if (j < n && text[j] == ';') ++j;  // Semicolon optional in the wild.
    AppendUtf8(cp, out);
    return j;
  }
  // Named reference: longest run of alnum up to 10 chars, then ';'.
  size_t k = j;
  while (k < n && IsAsciiAlnum(text[k]) && k - j < 10) ++k;
  if (k == j || k >= n || text[k] != ';') return i;
  const std::string_view name = text.substr(j, k - j);
  for (const auto& e : kNamedEntities) {
    if (e.name == name) {
      AppendUtf8(e.codepoint, out);
      return k + 1;
    }
  }
  return i;
}

}  // namespace

std::string DecodeHtmlEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    if (text[i] == '&') {
      const size_t next = DecodeOne(text, i, &out);
      if (next != i) {
        i = next;
        continue;
      }
    }
    out.push_back(text[i]);
    ++i;
  }
  return out;
}

}  // namespace lswc
