#ifndef LSWC_HTML_LINK_EXTRACTOR_H_
#define LSWC_HTML_LINK_EXTRACTOR_H_

#include <string>
#include <string_view>
#include <vector>

namespace lswc {

/// Where a link was found; the crawler follows all of these (as the
/// paper's crawler does: "downloading, URL extraction").
enum class LinkSource {
  kAnchor,     // <a href>
  kFrame,      // <frame src> / <iframe src>
  kArea,       // <area href>
  kLink,       // <link href> (only rel=alternate-ish navigational links)
  kMetaRefresh // <meta http-equiv=refresh content="0;url=...">
};

/// One extracted link: the canonical absolute URL after resolving against
/// the page's base URL (base href respected) and normalizing.
struct ExtractedLink {
  std::string url;
  LinkSource source;
  /// Anchor text (entity-decoded, whitespace-collapsed) for kAnchor.
  std::string anchor_text;
};

/// Options controlling extraction.
struct LinkExtractorOptions {
  /// Skip javascript:, mailto:, tel:, data: and other non-fetchable schemes.
  bool skip_non_http = true;
  /// Upper bound on links returned (0 = unlimited).
  size_t max_links = 0;
  /// Collect anchor text (costs a little; benches turn it off).
  bool collect_anchor_text = true;
};

/// Extracts links from `html`, resolving each against `page_url` (or the
/// page's <base href> when present). Malformed individual URLs are skipped;
/// extraction itself never fails.
std::vector<ExtractedLink> ExtractLinks(std::string_view page_url,
                                        std::string_view html,
                                        const LinkExtractorOptions& options = {});

}  // namespace lswc

#endif  // LSWC_HTML_LINK_EXTRACTOR_H_
