#include "html/link_extractor.h"

#include "html/entity.h"
#include "html/tokenizer.h"
#include "url/url.h"
#include "util/string_util.h"

namespace lswc {

namespace {

bool IsFetchableScheme(std::string_view url) {
  // Relative references are fetchable (they resolve against an http base).
  const size_t colon = url.find(':');
  if (colon == std::string_view::npos) return true;
  const size_t slash = url.find('/');
  if (slash != std::string_view::npos && slash < colon) return true;
  const std::string scheme = AsciiStrToLower(url.substr(0, colon));
  return scheme == "http" || scheme == "https";
}

// Collapses runs of whitespace to single spaces and trims.
std::string CollapseWhitespace(std::string_view s) {
  std::string out;
  bool in_space = true;  // Leading spaces dropped.
  for (char c : s) {
    if (IsAsciiSpace(c)) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

// Parses the URL out of a meta-refresh content value: "5; url=/next.html".
std::string_view MetaRefreshUrl(std::string_view content) {
  const size_t semi = content.find(';');
  if (semi == std::string_view::npos) return {};
  std::string_view rest = StripAsciiWhitespace(content.substr(semi + 1));
  if (!StartsWithIgnoreCase(rest, "url")) return {};
  rest = StripAsciiWhitespace(rest.substr(3));
  if (rest.empty() || rest.front() != '=') return {};
  rest = StripAsciiWhitespace(rest.substr(1));
  // Strip optional quotes.
  if (rest.size() >= 2 && (rest.front() == '"' || rest.front() == '\'') &&
      rest.back() == rest.front()) {
    rest = rest.substr(1, rest.size() - 2);
  }
  return rest;
}

}  // namespace

std::vector<ExtractedLink> ExtractLinks(std::string_view page_url,
                                        std::string_view html,
                                        const LinkExtractorOptions& options) {
  std::vector<ExtractedLink> links;
  auto base_or = ParseUrl(page_url);
  if (!base_or.ok() || !base_or->IsAbsolute()) return links;
  ParsedUrl base = *base_or;

  HtmlTokenizer tok(html);
  bool collecting_anchor = false;
  std::string anchor_text;
  size_t open_anchor_index = 0;

  auto emit = [&](std::string_view raw, LinkSource source) {
    if (options.max_links != 0 && links.size() >= options.max_links) return;
    const std::string decoded = DecodeHtmlEntities(raw);
    std::string_view trimmed = StripAsciiWhitespace(decoded);
    if (trimmed.empty()) return;
    if (options.skip_non_http && !IsFetchableScheme(trimmed)) return;
    auto resolved = ResolveUrl(base, trimmed);
    if (!resolved.ok()) return;
    if (options.skip_non_http && resolved->scheme != "http" &&
        resolved->scheme != "https") {
      return;
    }
    NormalizeUrl(&resolved.value());
    links.push_back(ExtractedLink{resolved->ToString(), source, {}});
  };

  while (true) {
    const HtmlToken& t = tok.Next();
    if (t.type == HtmlTokenType::kEndOfFile) break;
    switch (t.type) {
      case HtmlTokenType::kStartTag: {
        if (t.name == "base") {
          if (const std::string* href = t.FindAttribute("href")) {
            // The first base href wins and rebases subsequent links.
            auto b = ResolveUrl(base, DecodeHtmlEntities(*href));
            if (b.ok() && b->IsAbsolute()) base = *b;
          }
        } else if (t.name == "a") {
          if (const std::string* href = t.FindAttribute("href")) {
            emit(*href, LinkSource::kAnchor);
            if (options.collect_anchor_text && !links.empty() &&
                links.back().source == LinkSource::kAnchor) {
              collecting_anchor = true;
              anchor_text.clear();
              open_anchor_index = links.size() - 1;
            }
          }
        } else if (t.name == "frame" || t.name == "iframe") {
          if (const std::string* src = t.FindAttribute("src")) {
            emit(*src, LinkSource::kFrame);
          }
        } else if (t.name == "area") {
          if (const std::string* href = t.FindAttribute("href")) {
            emit(*href, LinkSource::kArea);
          }
        } else if (t.name == "link") {
          const std::string* rel = t.FindAttribute("rel");
          const std::string* href = t.FindAttribute("href");
          if (rel != nullptr && href != nullptr &&
              (EqualsIgnoreCase(*rel, "alternate") ||
               EqualsIgnoreCase(*rel, "next") ||
               EqualsIgnoreCase(*rel, "prev"))) {
            emit(*href, LinkSource::kLink);
          }
        } else if (t.name == "meta") {
          const std::string* he = t.FindAttribute("http-equiv");
          const std::string* content = t.FindAttribute("content");
          if (he != nullptr && content != nullptr &&
              EqualsIgnoreCase(*he, "refresh")) {
            const std::string_view url = MetaRefreshUrl(*content);
            if (!url.empty()) emit(url, LinkSource::kMetaRefresh);
          }
        }
        break;
      }
      case HtmlTokenType::kEndTag:
        if (t.name == "a" && collecting_anchor) {
          links[open_anchor_index].anchor_text =
              CollapseWhitespace(DecodeHtmlEntities(anchor_text));
          collecting_anchor = false;
        }
        break;
      case HtmlTokenType::kText:
        if (collecting_anchor) anchor_text.append(t.text);
        break;
      default:
        break;
    }
  }
  if (collecting_anchor) {
    links[open_anchor_index].anchor_text =
        CollapseWhitespace(DecodeHtmlEntities(anchor_text));
  }
  return links;
}

}  // namespace lswc
