#include "charset/text_gen.h"

#include <array>

namespace lswc {

namespace {

// Frequent hiragana, weighted toward the particles/syllables that dominate
// Japanese prose (の, に, は, を, た, と, て, で, か, し, ...).
constexpr std::array<char32_t, 24> kCommonHiragana{
    U'の', U'に', U'は', U'を', U'た', U'と', U'て', U'で',
    U'か', U'し', U'い', U'う', U'ん', U'す', U'る', U'な',
    U'こ', U'れ', U'が', U'ら', U'も', U'き', U'ま', U'つ',
};

constexpr std::array<char32_t, 12> kCommonKatakana{
    U'ア', U'イ', U'ウ', U'ク', U'ス', U'ト',
    U'ラ', U'リ', U'ル', U'レ', U'ロ', U'ン',
};

// Drawn from the codec's curated kanji repertoire (codec.cc kKanji).
constexpr std::array<char32_t, 20> kCommonKanji{
    U'日', U'本', U'語', U'人', U'大', U'学', U'生', U'会', U'社', U'時',
    U'間', U'年', U'月', U'国', U'中', U'行', U'見', U'電', U'車', U'山',
};

// Thai consonants weighted toward the frequent ones.
constexpr std::array<char32_t, 20> kThaiConsonants{
    U'ก', U'ข', U'ค', U'ง', U'จ', U'ช', U'ด', U'ต', U'ท', U'น',
    U'บ', U'ป', U'พ', U'ม', U'ย', U'ร', U'ล', U'ว', U'ส', U'ห',
};

constexpr std::array<char32_t, 13> kThaiVowels{
    U'ะ', U'ั', U'า', U'ิ', U'ี', U'ึ', U'ื', U'ุ', U'ู',
    U'เ', U'แ', U'โ', U'ไ',
};

constexpr std::array<char32_t, 3> kThaiTones{U'่', U'้', U'็'};

constexpr std::array<const char32_t*, 16> kEnglishWords{
    U"the",  U"web",   U"page",  U"with",  U"link", U"from",
    U"data", U"about", U"index", U"home",  U"news", U"more",
    U"site", U"this",  U"that",  U"other",
};

template <typename Array>
char32_t Pick(const Array& a, Rng* rng) {
  return a[rng->UniformUint64(a.size())];
}

void AppendJapanese(size_t approx_chars, Rng* rng, std::u32string* out) {
  size_t n = 0;
  while (n < approx_chars) {
    const double r = rng->UniformDouble();
    if (r < 0.58) {
      out->push_back(Pick(kCommonHiragana, rng));
      ++n;
    } else if (r < 0.70) {
      // Katakana loanword run.
      const size_t len = 2 + rng->UniformUint64(4);
      for (size_t i = 0; i < len; ++i) {
        out->push_back(Pick(kCommonKatakana, rng));
      }
      n += len;
    } else if (r < 0.88) {
      out->push_back(Pick(kCommonKanji, rng));
      ++n;
    } else if (r < 0.95) {
      out->push_back(rng->Bernoulli(0.7) ? U'。' : U'、');
      ++n;
    } else {
      // Occasional ASCII (numbers, acronyms).
      const size_t len = 1 + rng->UniformUint64(3);
      for (size_t i = 0; i < len; ++i) {
        out->push_back(U'0' + static_cast<char32_t>(rng->UniformUint64(10)));
      }
      n += len;
    }
  }
}

void AppendThai(size_t approx_chars, Rng* rng, std::u32string* out) {
  size_t n = 0;
  size_t since_space = 0;
  while (n < approx_chars) {
    // One syllable: [leading vowel] consonant [vowel] [tone].
    if (rng->Bernoulli(0.25)) {
      out->push_back(Pick(kThaiVowels, rng));
      ++n;
    }
    out->push_back(Pick(kThaiConsonants, rng));
    ++n;
    if (rng->Bernoulli(0.7)) {
      out->push_back(Pick(kThaiVowels, rng));
      ++n;
    }
    if (rng->Bernoulli(0.3)) {
      out->push_back(Pick(kThaiTones, rng));
      ++n;
    }
    since_space += 3;
    // Thai separates phrases, not words: long runs between spaces.
    if (since_space > 24 && rng->Bernoulli(0.3)) {
      out->push_back(U' ');
      since_space = 0;
      ++n;
    }
  }
}

void AppendEnglish(size_t approx_chars, Rng* rng, std::u32string* out) {
  size_t n = 0;
  while (n < approx_chars) {
    const char32_t* w = kEnglishWords[rng->UniformUint64(kEnglishWords.size())];
    for (const char32_t* p = w; *p != 0; ++p) {
      out->push_back(*p);
      ++n;
    }
    out->push_back(rng->Bernoulli(0.1) ? U'.' : U' ');
    ++n;
  }
}

}  // namespace

std::u32string GenerateText(Language lang, size_t approx_chars, Rng* rng) {
  std::u32string out;
  out.reserve(approx_chars + 8);
  switch (lang) {
    case Language::kJapanese:
      AppendJapanese(approx_chars, rng, &out);
      break;
    case Language::kThai:
      AppendThai(approx_chars, rng, &out);
      break;
    case Language::kOther:
    case Language::kUnknown:
      AppendEnglish(approx_chars, rng, &out);
      break;
  }
  return out;
}

std::u32string GenerateTitle(Language lang, Rng* rng) {
  return GenerateText(lang, 8 + rng->UniformUint64(12), rng);
}

}  // namespace lswc
