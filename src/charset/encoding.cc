#include "charset/encoding.h"

#include <array>

#include "util/string_util.h"

namespace lswc {

std::string_view EncodingName(Encoding e) {
  switch (e) {
    case Encoding::kUnknown:
      return "unknown";
    case Encoding::kAscii:
      return "US-ASCII";
    case Encoding::kUtf8:
      return "UTF-8";
    case Encoding::kLatin1:
      return "ISO-8859-1";
    case Encoding::kEucJp:
      return "EUC-JP";
    case Encoding::kShiftJis:
      return "Shift_JIS";
    case Encoding::kIso2022Jp:
      return "ISO-2022-JP";
    case Encoding::kTis620:
      return "TIS-620";
    case Encoding::kWindows874:
      return "windows-874";
    case Encoding::kNumEncodings:
      break;
  }
  return "unknown";
}

namespace {
struct Alias {
  std::string_view name;
  Encoding encoding;
};

// Aliases are matched after lowercasing and stripping '-', '_', and ' ',
// so "Shift_JIS", "shift-jis", and "shiftjis" all normalize to "shiftjis".
constexpr std::array<Alias, 26> kAliases{{
    {"usascii", Encoding::kAscii},
    {"ascii", Encoding::kAscii},
    {"ansix341968", Encoding::kAscii},
    {"utf8", Encoding::kUtf8},
    {"iso88591", Encoding::kLatin1},
    {"latin1", Encoding::kLatin1},
    {"windows1252", Encoding::kLatin1},
    {"cp1252", Encoding::kLatin1},
    {"eucjp", Encoding::kEucJp},
    {"xeucjp", Encoding::kEucJp},
    {"extendedunixcodepackedformatforjapanese", Encoding::kEucJp},
    {"shiftjis", Encoding::kShiftJis},
    {"xsjis", Encoding::kShiftJis},
    {"sjis", Encoding::kShiftJis},
    {"mskanji", Encoding::kShiftJis},
    {"cp932", Encoding::kShiftJis},
    {"windows31j", Encoding::kShiftJis},
    {"iso2022jp", Encoding::kIso2022Jp},
    {"csiso2022jp", Encoding::kIso2022Jp},
    {"tis620", Encoding::kTis620},
    {"tis6202533", Encoding::kTis620},
    {"iso885911", Encoding::kTis620},
    {"thai", Encoding::kTis620},
    {"windows874", Encoding::kWindows874},
    {"cp874", Encoding::kWindows874},
    {"xwindows874", Encoding::kWindows874},
}};
}  // namespace

Encoding EncodingFromName(std::string_view name) {
  std::string key;
  key.reserve(name.size());
  for (char c : name) {
    if (c == '-' || c == '_' || c == ' ' || c == '.') continue;
    key.push_back(AsciiToLower(c));
  }
  for (const auto& a : kAliases) {
    if (a.name == key) return a.encoding;
  }
  return Encoding::kUnknown;
}

Language LanguageOfEncoding(Encoding e) {
  switch (e) {
    case Encoding::kEucJp:
    case Encoding::kShiftJis:
    case Encoding::kIso2022Jp:
      return Language::kJapanese;
    case Encoding::kTis620:
    case Encoding::kWindows874:
      return Language::kThai;
    case Encoding::kAscii:
    case Encoding::kUtf8:
    case Encoding::kLatin1:
      return Language::kOther;
    case Encoding::kUnknown:
    case Encoding::kNumEncodings:
      break;
  }
  return Language::kUnknown;
}

std::string_view LanguageName(Language lang) {
  switch (lang) {
    case Language::kUnknown:
      return "unknown";
    case Language::kJapanese:
      return "Japanese";
    case Language::kThai:
      return "Thai";
    case Language::kOther:
      return "other";
  }
  return "unknown";
}

}  // namespace lswc
