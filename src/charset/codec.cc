#include "charset/codec.h"

#include <array>

#include "html/entity.h"

namespace lswc {

namespace {

// -- JIS X 0208 repertoire ---------------------------------------------
//
// Hiragana (row 4) and katakana (row 5) map algorithmically. Row 1 holds
// punctuation. Kanji come from a curated subset of level-1 kanji: enough
// for realistic synthetic Japanese text; the encoder/decoder/probers all
// share this table so the pipeline is self-consistent end to end.

struct JisPair {
  uint16_t kuten;  // row * 100 + cell.
  char32_t cp;
};

// Row-1 punctuation subset.
constexpr std::array<JisPair, 12> kRow1{{
    {101, U'　'},  // ideographic space
    {102, U'、'},  // 、
    {103, U'。'},  // 。
    {104, U'，'},  // ，
    {105, U'．'},  // ．
    {106, U'・'},  // ・
    {107, U'：'},  // ：
    {108, U'；'},  // ；
    {109, U'？'},  // ？
    {110, U'！'},  // ！
    {128, U'ー'},  // ー (prolonged sound mark)
    {129, U'―'},  // ―
}};

// Curated common kanji (row/cell within JIS X 0208 level 1, rows 16-47).
// The exact standard ku-ten values for 日(38-92) and 本(43-60) are real;
// the remainder are assigned stable codes inside level-1 rows.
constexpr std::array<JisPair, 60> kKanji{{
    {3892, U'日'},  // 日
    {4360, U'本'},  // 本
    {2448, U'語'},  // 語
    {1601, U'亜'},  // 亜
    {1605, U'娃'},  // 娃
    {1701, U'人'},  // 人
    {1702, U'大'},  // 大
    {1703, U'学'},  // 学
    {1704, U'生'},  // 生
    {1705, U'先'},  // 先
    {1706, U'会'},  // 会
    {1707, U'社'},  // 社
    {1708, U'時'},  // 時
    {1709, U'間'},  // 間
    {1710, U'年'},  // 年
    {1711, U'月'},  // 月
    {1712, U'火'},  // 火
    {1713, U'水'},  // 水
    {1714, U'木'},  // 木
    {1715, U'金'},  // 金
    {1716, U'土'},  // 土
    {1717, U'国'},  // 国
    {1718, U'中'},  // 中
    {1719, U'外'},  // 外
    {1720, U'前'},  // 前
    {1721, U'後'},  // 後
    {1722, U'上'},  // 上
    {1723, U'下'},  // 下
    {1724, U'左'},  // 左
    {1725, U'右'},  // 右
    {1726, U'手'},  // 手
    {1727, U'足'},  // 足
    {1728, U'目'},  // 目
    {1729, U'口'},  // 口
    {1730, U'耳'},  // 耳
    {1731, U'心'},  // 心
    {1732, U'思'},  // 思
    {1733, U'言'},  // 言
    {1734, U'読'},  // 読
    {1735, U'書'},  // 書
    {1736, U'見'},  // 見
    {1737, U'聞'},  // 聞
    {1738, U'食'},  // 食
    {1739, U'飲'},  // 飲
    {1740, U'行'},  // 行
    {1741, U'来'},  // 来
    {1742, U'帰'},  // 帰
    {1743, U'住'},  // 住
    {1744, U'駅'},  // 駅
    {1745, U'道'},  // 道
    {1746, U'町'},  // 町
    {1747, U'村'},  // 村
    {1748, U'島'},  // 島
    {1749, U'川'},  // 川
    {1750, U'山'},  // 山
    {1751, U'海'},  // 海
    {1752, U'空'},  // 空
    {1753, U'電'},  // 電
    {1754, U'車'},  // 車
    {1755, U'験'},  // 験
}};

constexpr char32_t kHiraganaFirst = U'ぁ';
constexpr char32_t kHiraganaLast = U'ん';
constexpr char32_t kKatakanaFirst = U'ァ';
constexpr char32_t kKatakanaLast = U'ヶ';

// Thai block handled by TIS-620: two contiguous runs.
constexpr char32_t kThaiRun1First = U'ก';
constexpr char32_t kThaiRun1Last = U'ฺ';
constexpr char32_t kThaiRun2First = U'฿';
constexpr char32_t kThaiRun2Last = U'๛';

// windows-874 extras in the C1 range.
struct Win874Extra {
  unsigned char byte;
  char32_t cp;
};
constexpr std::array<Win874Extra, 8> kWin874Extras{{
    {0x80, U'€'},
    {0x85, U'…'},
    {0x91, U'‘'},
    {0x92, U'’'},
    {0x93, U'“'},
    {0x94, U'”'},
    {0x95, U'•'},
    {0x96, U'–'},
}};

bool Tis620FromUnicode(char32_t cp, unsigned char* out) {
  if (cp >= kThaiRun1First && cp <= kThaiRun1Last) {
    *out = static_cast<unsigned char>(0xA1 + (cp - kThaiRun1First));
    return true;
  }
  if (cp >= kThaiRun2First && cp <= kThaiRun2Last) {
    *out = static_cast<unsigned char>(0xDF + (cp - kThaiRun2First));
    return true;
  }
  return false;
}

bool Tis620ToUnicode(unsigned char b, char32_t* out) {
  if (b >= 0xA1 && b <= 0xDA) {
    *out = kThaiRun1First + (b - 0xA1);
    return true;
  }
  if (b >= 0xDF && b <= 0xFB) {
    *out = kThaiRun2First + (b - 0xDF);
    return true;
  }
  return false;
}

}  // namespace

bool UnicodeToJis(char32_t cp, JisCode* out) {
  if (cp >= kHiraganaFirst && cp <= kHiraganaLast) {
    out->row = 4;
    out->cell = static_cast<int>(cp - kHiraganaFirst) + 1;
    return true;
  }
  if (cp >= kKatakanaFirst && cp <= kKatakanaLast) {
    out->row = 5;
    out->cell = static_cast<int>(cp - kKatakanaFirst) + 1;
    return true;
  }
  for (const auto& p : kRow1) {
    if (p.cp == cp) {
      out->row = p.kuten / 100;
      out->cell = p.kuten % 100;
      return true;
    }
  }
  for (const auto& p : kKanji) {
    if (p.cp == cp) {
      out->row = p.kuten / 100;
      out->cell = p.kuten % 100;
      return true;
    }
  }
  return false;
}

bool JisToUnicode(JisCode code, char32_t* out) {
  if (code.row < 1 || code.row > 94 || code.cell < 1 || code.cell > 94) {
    return false;
  }
  if (code.row == 4 && code.cell <= 83) {
    *out = kHiraganaFirst + static_cast<char32_t>(code.cell - 1);
    return true;
  }
  if (code.row == 5 && code.cell <= 86) {
    *out = kKatakanaFirst + static_cast<char32_t>(code.cell - 1);
    return true;
  }
  const uint16_t kuten = static_cast<uint16_t>(code.row * 100 + code.cell);
  for (const auto& p : kRow1) {
    if (p.kuten == kuten) {
      *out = p.cp;
      return true;
    }
  }
  for (const auto& p : kKanji) {
    if (p.kuten == kuten) {
      *out = p.cp;
      return true;
    }
  }
  return false;
}

bool CanEncode(Encoding e, char32_t cp) {
  switch (e) {
    case Encoding::kAscii:
      return cp < 0x80;
    case Encoding::kUtf8:
      return cp <= 0x10FFFF && !(cp >= 0xD800 && cp <= 0xDFFF);
    case Encoding::kLatin1:
      return cp <= 0xFF;
    case Encoding::kEucJp:
    case Encoding::kShiftJis:
    case Encoding::kIso2022Jp: {
      if (cp < 0x80) return true;
      JisCode jis;
      return UnicodeToJis(cp, &jis);
    }
    case Encoding::kTis620: {
      unsigned char b;
      return cp < 0x80 || Tis620FromUnicode(cp, &b);
    }
    case Encoding::kWindows874: {
      unsigned char b;
      if (cp < 0x80 || Tis620FromUnicode(cp, &b)) return true;
      for (const auto& x : kWin874Extras) {
        if (x.cp == cp) return true;
      }
      return false;
    }
    case Encoding::kUnknown:
    case Encoding::kNumEncodings:
      return false;
  }
  return false;
}

std::string EncodeUtf8(const std::u32string& text) {
  std::string out;
  out.reserve(text.size() * 2);
  for (char32_t cp : text) AppendUtf8(cp, &out);
  return out;
}

StatusOr<std::u32string> DecodeUtf8(std::string_view bytes) {
  std::u32string out;
  out.reserve(bytes.size());
  size_t i = 0;
  while (i < bytes.size()) {
    const unsigned char b0 = static_cast<unsigned char>(bytes[i]);
    uint32_t cp;
    size_t len;
    if (b0 < 0x80) {
      cp = b0;
      len = 1;
    } else if ((b0 & 0xE0) == 0xC0) {
      cp = b0 & 0x1F;
      len = 2;
    } else if ((b0 & 0xF0) == 0xE0) {
      cp = b0 & 0x0F;
      len = 3;
    } else if ((b0 & 0xF8) == 0xF0) {
      cp = b0 & 0x07;
      len = 4;
    } else {
      return Status::Corruption("invalid UTF-8 lead byte");
    }
    if (i + len > bytes.size()) return Status::Corruption("truncated UTF-8");
    for (size_t k = 1; k < len; ++k) {
      const unsigned char b = static_cast<unsigned char>(bytes[i + k]);
      if ((b & 0xC0) != 0x80) return Status::Corruption("bad continuation");
      cp = (cp << 6) | (b & 0x3F);
    }
    // Reject overlong forms and surrogates.
    static constexpr uint32_t kMin[5] = {0, 0, 0x80, 0x800, 0x10000};
    if (cp < kMin[len] || cp > 0x10FFFF ||
        (cp >= 0xD800 && cp <= 0xDFFF)) {
      return Status::Corruption("non-canonical UTF-8 sequence");
    }
    out.push_back(static_cast<char32_t>(cp));
    i += len;
  }
  return out;
}

namespace {

Status EncodeEucJp(const std::u32string& text, std::string* out) {
  for (char32_t cp : text) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
      continue;
    }
    JisCode jis;
    if (!UnicodeToJis(cp, &jis)) {
      return Status::InvalidArgument("codepoint not in EUC-JP repertoire");
    }
    out->push_back(static_cast<char>(0xA0 + jis.row));
    out->push_back(static_cast<char>(0xA0 + jis.cell));
  }
  return Status::OK();
}

Status DecodeEucJp(std::string_view bytes, std::u32string* out) {
  size_t i = 0;
  while (i < bytes.size()) {
    const unsigned char b0 = static_cast<unsigned char>(bytes[i]);
    if (b0 < 0x80) {
      out->push_back(b0);
      ++i;
      continue;
    }
    if (b0 == 0x8E) {  // SS2: half-width katakana.
      if (i + 1 >= bytes.size()) return Status::Corruption("truncated SS2");
      const unsigned char b1 = static_cast<unsigned char>(bytes[i + 1]);
      if (b1 < 0xA1 || b1 > 0xDF) return Status::Corruption("bad SS2 byte");
      out->push_back(0xFF61 + (b1 - 0xA1));
      i += 2;
      continue;
    }
    if (b0 < 0xA1 || b0 > 0xFE) return Status::Corruption("bad EUC-JP lead");
    if (i + 1 >= bytes.size()) return Status::Corruption("truncated EUC-JP");
    const unsigned char b1 = static_cast<unsigned char>(bytes[i + 1]);
    if (b1 < 0xA1 || b1 > 0xFE) return Status::Corruption("bad EUC-JP trail");
    char32_t cp;
    if (!JisToUnicode(JisCode{b0 - 0xA0, b1 - 0xA0}, &cp)) {
      return Status::Corruption("JIS code outside supported repertoire");
    }
    out->push_back(cp);
    i += 2;
  }
  return Status::OK();
}

// JIS row/cell <-> Shift_JIS bytes (standard algorithmic transform):
// rows pair up under one lead byte; leads run 0x81-0x9F (rows 1-62) and
// 0xE0-0xEF (rows 63-94); odd rows use trails 0x40-0x9E (skipping 0x7F),
// even rows 0x9F-0xFC.
void JisToSjis(JisCode jis, unsigned char* lead, unsigned char* trail) {
  const int row = jis.row;
  const int cell = jis.cell;
  const int pair = (row - 1) / 2;
  *lead = static_cast<unsigned char>(pair + (row <= 62 ? 0x81 : 0xC1));
  if (row % 2 == 1) {
    *trail = static_cast<unsigned char>(cell + 0x3F + (cell >= 64 ? 1 : 0));
  } else {
    *trail = static_cast<unsigned char>(cell + 0x9E);
  }
}

bool SjisToJis(unsigned char lead, unsigned char trail, JisCode* jis) {
  int pair;
  if (lead >= 0x81 && lead <= 0x9F) {
    pair = lead - 0x81;
  } else if (lead >= 0xE0 && lead <= 0xEF) {
    pair = lead - 0xC1;
  } else {
    return false;
  }
  if (trail >= 0x40 && trail <= 0x9E && trail != 0x7F) {
    jis->row = pair * 2 + 1;
    jis->cell = trail - 0x3F - (trail > 0x7F ? 1 : 0);
  } else if (trail >= 0x9F && trail <= 0xFC) {
    jis->row = pair * 2 + 2;
    jis->cell = trail - 0x9E;
  } else {
    return false;
  }
  return jis->cell >= 1 && jis->cell <= 94;
}

Status EncodeShiftJis(const std::u32string& text, std::string* out) {
  for (char32_t cp : text) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
      continue;
    }
    JisCode jis;
    if (!UnicodeToJis(cp, &jis)) {
      return Status::InvalidArgument("codepoint not in Shift_JIS repertoire");
    }
    unsigned char lead, trail;
    JisToSjis(jis, &lead, &trail);
    out->push_back(static_cast<char>(lead));
    out->push_back(static_cast<char>(trail));
  }
  return Status::OK();
}

Status DecodeShiftJis(std::string_view bytes, std::u32string* out) {
  size_t i = 0;
  while (i < bytes.size()) {
    const unsigned char b0 = static_cast<unsigned char>(bytes[i]);
    if (b0 < 0x80) {
      out->push_back(b0);
      ++i;
      continue;
    }
    if (b0 >= 0xA1 && b0 <= 0xDF) {  // Half-width katakana.
      out->push_back(0xFF61 + (b0 - 0xA1));
      ++i;
      continue;
    }
    if (i + 1 >= bytes.size()) return Status::Corruption("truncated SJIS");
    const unsigned char b1 = static_cast<unsigned char>(bytes[i + 1]);
    JisCode jis;
    if (!SjisToJis(b0, b1, &jis)) {
      return Status::Corruption("bad Shift_JIS sequence");
    }
    char32_t cp;
    if (!JisToUnicode(jis, &cp)) {
      return Status::Corruption("JIS code outside supported repertoire");
    }
    out->push_back(cp);
    i += 2;
  }
  return Status::OK();
}

Status EncodeIso2022Jp(const std::u32string& text, std::string* out) {
  bool in_jis = false;
  for (char32_t cp : text) {
    if (cp < 0x80) {
      if (in_jis) {
        out->append("\x1b(B");
        in_jis = false;
      }
      out->push_back(static_cast<char>(cp));
      continue;
    }
    JisCode jis;
    if (!UnicodeToJis(cp, &jis)) {
      return Status::InvalidArgument(
          "codepoint not in ISO-2022-JP repertoire");
    }
    if (!in_jis) {
      out->append("\x1b$B");
      in_jis = true;
    }
    out->push_back(static_cast<char>(0x20 + jis.row));
    out->push_back(static_cast<char>(0x20 + jis.cell));
  }
  if (in_jis) out->append("\x1b(B");
  return Status::OK();
}

Status DecodeIso2022Jp(std::string_view bytes, std::u32string* out) {
  bool in_jis = false;
  size_t i = 0;
  while (i < bytes.size()) {
    const unsigned char b0 = static_cast<unsigned char>(bytes[i]);
    if (b0 == 0x1B) {
      if (i + 2 >= bytes.size()) return Status::Corruption("truncated escape");
      const char c1 = bytes[i + 1];
      const char c2 = bytes[i + 2];
      if (c1 == '$' && (c2 == 'B' || c2 == '@')) {
        in_jis = true;
      } else if (c1 == '(' && (c2 == 'B' || c2 == 'J')) {
        in_jis = false;
      } else {
        return Status::Corruption("unsupported ISO-2022 escape");
      }
      i += 3;
      continue;
    }
    if (b0 >= 0x80) return Status::Corruption("8-bit byte in ISO-2022-JP");
    if (!in_jis) {
      out->push_back(b0);
      ++i;
      continue;
    }
    if (i + 1 >= bytes.size()) return Status::Corruption("truncated JIS pair");
    const unsigned char b1 = static_cast<unsigned char>(bytes[i + 1]);
    if (b0 < 0x21 || b0 > 0x7E || b1 < 0x21 || b1 > 0x7E) {
      return Status::Corruption("bad JIS pair");
    }
    char32_t cp;
    if (!JisToUnicode(JisCode{b0 - 0x20, b1 - 0x20}, &cp)) {
      return Status::Corruption("JIS code outside supported repertoire");
    }
    out->push_back(cp);
    i += 2;
  }
  return Status::OK();
}

Status EncodeTis620Like(Encoding e, const std::u32string& text,
                        std::string* out) {
  for (char32_t cp : text) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
      continue;
    }
    unsigned char b;
    if (Tis620FromUnicode(cp, &b)) {
      out->push_back(static_cast<char>(b));
      continue;
    }
    if (e == Encoding::kWindows874) {
      bool found = false;
      for (const auto& x : kWin874Extras) {
        if (x.cp == cp) {
          out->push_back(static_cast<char>(x.byte));
          found = true;
          break;
        }
      }
      if (found) continue;
    }
    return Status::InvalidArgument("codepoint not in TIS-620 repertoire");
  }
  return Status::OK();
}

Status DecodeTis620Like(Encoding e, std::string_view bytes,
                        std::u32string* out) {
  for (char c : bytes) {
    const unsigned char b = static_cast<unsigned char>(c);
    if (b < 0x80) {
      out->push_back(b);
      continue;
    }
    char32_t cp;
    if (Tis620ToUnicode(b, &cp)) {
      out->push_back(cp);
      continue;
    }
    if (e == Encoding::kWindows874) {
      bool found = false;
      for (const auto& x : kWin874Extras) {
        if (x.byte == b) {
          out->push_back(x.cp);
          found = true;
          break;
        }
      }
      if (found) continue;
    }
    return Status::Corruption("byte outside TIS-620 repertoire");
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::string> EncodeText(Encoding e, const std::u32string& text) {
  std::string out;
  out.reserve(text.size() * 2);
  Status s = Status::OK();
  switch (e) {
    case Encoding::kAscii:
      for (char32_t cp : text) {
        if (cp >= 0x80) return Status::InvalidArgument("non-ASCII codepoint");
        out.push_back(static_cast<char>(cp));
      }
      break;
    case Encoding::kUtf8:
      return EncodeUtf8(text);
    case Encoding::kLatin1:
      for (char32_t cp : text) {
        if (cp > 0xFF) return Status::InvalidArgument("non-Latin-1 codepoint");
        out.push_back(static_cast<char>(cp));
      }
      break;
    case Encoding::kEucJp:
      s = EncodeEucJp(text, &out);
      break;
    case Encoding::kShiftJis:
      s = EncodeShiftJis(text, &out);
      break;
    case Encoding::kIso2022Jp:
      s = EncodeIso2022Jp(text, &out);
      break;
    case Encoding::kTis620:
    case Encoding::kWindows874:
      s = EncodeTis620Like(e, text, &out);
      break;
    case Encoding::kUnknown:
    case Encoding::kNumEncodings:
      return Status::InvalidArgument("cannot encode to unknown encoding");
  }
  if (!s.ok()) return s;
  return out;
}

StatusOr<std::u32string> DecodeText(Encoding e, std::string_view bytes) {
  std::u32string out;
  out.reserve(bytes.size());
  Status s = Status::OK();
  switch (e) {
    case Encoding::kAscii:
      for (char c : bytes) {
        if (static_cast<unsigned char>(c) >= 0x80) {
          return Status::Corruption("8-bit byte in ASCII stream");
        }
        out.push_back(static_cast<char32_t>(c));
      }
      break;
    case Encoding::kUtf8:
      return DecodeUtf8(bytes);
    case Encoding::kLatin1:
      for (char c : bytes) {
        out.push_back(static_cast<unsigned char>(c));
      }
      break;
    case Encoding::kEucJp:
      s = DecodeEucJp(bytes, &out);
      break;
    case Encoding::kShiftJis:
      s = DecodeShiftJis(bytes, &out);
      break;
    case Encoding::kIso2022Jp:
      s = DecodeIso2022Jp(bytes, &out);
      break;
    case Encoding::kTis620:
    case Encoding::kWindows874:
      s = DecodeTis620Like(e, bytes, &out);
      break;
    case Encoding::kUnknown:
    case Encoding::kNumEncodings:
      return Status::InvalidArgument("cannot decode unknown encoding");
  }
  if (!s.ok()) return s;
  return out;
}

}  // namespace lswc
