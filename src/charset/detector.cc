#include "charset/detector.h"

#include "charset/escape_prober.h"
#include "charset/mbcs_prober.h"
#include "charset/thai_prober.h"
#include "charset/utf8_prober.h"

namespace lswc {

CharsetDetector::CharsetDetector(DetectorOptions options)
    : options_(options) {
  probers_.push_back(std::make_unique<EscapeProber>());
  probers_.push_back(std::make_unique<Utf8Prober>());
  probers_.push_back(std::make_unique<EucJpProber>());
  probers_.push_back(std::make_unique<ShiftJisProber>());
  if (options_.enable_thai) {
    probers_.push_back(std::make_unique<ThaiProber>());
  }
}

CharsetDetector::~CharsetDetector() = default;

void CharsetDetector::Reset() {
  for (auto& p : probers_) p->Reset();
  bytes_seen_ = 0;
  saw_8bit_ = false;
  saw_escape_ = false;
}

void CharsetDetector::Feed(std::string_view bytes) {
  if (options_.max_bytes != 0) {
    if (bytes_seen_ >= options_.max_bytes) return;
    const size_t room = options_.max_bytes - bytes_seen_;
    if (bytes.size() > room) bytes = bytes.substr(0, room);
  }
  bytes_seen_ += bytes.size();
  for (unsigned char b : bytes) {
    if (b >= 0x80) {
      saw_8bit_ = true;
      break;
    }
  }
  if (!saw_escape_ &&
      bytes.find('\x1b') != std::string_view::npos) {
    saw_escape_ = true;
  }
  for (auto& p : probers_) {
    if (p->state() == ProbeState::kDetecting) p->Feed(bytes);
  }
}

DetectionResult CharsetDetector::Result() const {
  // An escape-based hit is conclusive regardless of other probers.
  for (const auto& p : probers_) {
    if (p->state() == ProbeState::kFoundIt) {
      return DetectionResult{p->encoding(), p->Confidence()};
    }
  }
  if (!saw_8bit_) {
    // Pure 7-bit and no JIS shift-in: plain ASCII.
    return DetectionResult{Encoding::kAscii, saw_escape_ ? 0.5 : 0.99};
  }
  DetectionResult best;
  for (const auto& p : probers_) {
    if (p->state() == ProbeState::kNotMe) continue;
    const double c = p->Confidence();
    if (c > best.confidence) {
      best.confidence = c;
      best.encoding = p->encoding();
    }
  }
  if (best.confidence < options_.min_confidence) {
    // 8-bit bytes that no prober claims: Latin-1 floor guess.
    return DetectionResult{Encoding::kLatin1, 0.10};
  }
  return best;
}

DetectionResult CharsetDetector::Detect(std::string_view bytes) {
  Reset();
  Feed(bytes);
  return Result();
}

DetectionResult DetectEncoding(std::string_view bytes) {
  CharsetDetector detector;
  return detector.Detect(bytes);
}

}  // namespace lswc
