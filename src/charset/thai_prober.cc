#include "charset/thai_prober.h"

#include <algorithm>
#include <array>

namespace lswc {

namespace {

// The most frequent Thai letters by TIS-620 byte value: frequent
// consonants (ก ง จ ด ต ท น บ ป ม ย ร ล ว ส ห อ ค ช พ ข), the common
// vowels (ะ ั า ำ ิ ี ึ ื ุ ู เ แ โ ใ ไ), tone/diacritic marks
// (่ ้ ็ ์) and the repetition mark ๆ.
constexpr std::array<unsigned char, 40> kCommonThai{
    0xA1, 0xA2, 0xA4, 0xA7, 0xA8, 0xAA, 0xB4, 0xB5, 0xB7, 0xB9,
    0xBA, 0xBB, 0xBE, 0xC1, 0xC2, 0xC3, 0xC5, 0xC7, 0xCA, 0xCB,
    0xCD, 0xD0, 0xD1, 0xD2, 0xD3, 0xD4, 0xD5, 0xD6, 0xD7, 0xD8,
    0xD9, 0xE0, 0xE1, 0xE2, 0xE3, 0xE4, 0xE6, 0xE7, 0xE8, 0xE9,
};

constexpr std::array<unsigned char, 8> kWin874Extras{
    0x80, 0x85, 0x91, 0x92, 0x93, 0x94, 0x95, 0x96,
};

bool IsThaiLetterByte(unsigned char b) {
  return (b >= 0xA1 && b <= 0xDA) || (b >= 0xDF && b <= 0xFB);
}

bool IsWin874Extra(unsigned char b) {
  return std::find(kWin874Extras.begin(), kWin874Extras.end(), b) !=
         kWin874Extras.end();
}

bool IsCommonThai(unsigned char b) {
  return std::find(kCommonThai.begin(), kCommonThai.end(), b) !=
         kCommonThai.end();
}

}  // namespace

ThaiProber::ThaiProber() = default;

ProbeState ThaiProber::Feed(std::string_view bytes) {
  if (state_ == ProbeState::kNotMe) return state_;
  for (unsigned char b : bytes) {
    if (b < 0x80) {
      if (current_run_ > 0) {
        run_total_ += current_run_;
        ++run_count_;
        current_run_ = 0;
      }
      continue;
    }
    if (IsThaiLetterByte(b)) {
      ++thai_bytes_;
      ++current_run_;
      if (IsCommonThai(b)) ++common_hits_;
      continue;
    }
    if (IsWin874Extra(b)) {
      variant_ = Encoding::kWindows874;
      continue;
    }
    state_ = ProbeState::kNotMe;
    return state_;
  }
  return state_;
}

double ThaiProber::Confidence() const {
  if (state_ == ProbeState::kNotMe) return 0.0;
  if (thai_bytes_ == 0) return 0.0;
  const double hit_ratio =
      static_cast<double>(common_hits_) / static_cast<double>(thai_bytes_);
  const double evidence = static_cast<double>(
      std::min<uint64_t>(thai_bytes_, 32));
  // Average run of consecutive Thai bytes; Thai prose runs long (no
  // inter-word ASCII), Western accents sit isolated between ASCII.
  const uint64_t runs = run_count_ + (current_run_ > 0 ? 1 : 0);
  const double avg_run = static_cast<double>(run_total_ + current_run_) /
                         static_cast<double>(runs == 0 ? 1 : runs);
  if (avg_run < 2.0) return 0.0;  // Isolated high bytes: not Thai script.
  const double run_factor = std::min(1.0, avg_run / 6.0);
  return std::min(0.99,
                  hit_ratio * run_factor * (0.5 + 0.5 * (evidence / 32.0)));
}

void ThaiProber::Reset() {
  state_ = ProbeState::kDetecting;
  variant_ = Encoding::kTis620;
  thai_bytes_ = 0;
  common_hits_ = 0;
  current_run_ = 0;
  run_count_ = 0;
  run_total_ = 0;
}

}  // namespace lswc
