#ifndef LSWC_CHARSET_ENCODING_H_
#define LSWC_CHARSET_ENCODING_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace lswc {

/// Character encoding schemes handled by the codec and detector layers.
/// The set covers the paper's Table 1 (Japanese: EUC-JP, Shift_JIS,
/// ISO-2022-JP; Thai: TIS-620, windows-874, ISO-8859-11) plus the
/// Web-generic encodings needed for irrelevant pages.
enum class Encoding : uint8_t {
  kUnknown = 0,
  kAscii,
  kUtf8,
  kLatin1,      // ISO-8859-1 / windows-1252 (treated as one family here).
  kEucJp,
  kShiftJis,
  kIso2022Jp,
  kTis620,      // Also covers ISO-8859-11 (identical Thai repertoire).
  kWindows874,  // TIS-620 superset with C1-range punctuation.
  kNumEncodings,
};

/// Page language classes used by the crawler. kOther covers every
/// non-target language (the paper only distinguishes target/non-target).
enum class Language : uint8_t {
  kUnknown = 0,
  kJapanese,
  kThai,
  kOther,
};

/// Canonical IANA-style name, e.g. "EUC-JP", "TIS-620".
std::string_view EncodingName(Encoding e);

/// Resolves a charset label (case-insensitive, with common aliases such as
/// "x-sjis", "shift-jis", "iso8859-11", "utf8") to an Encoding.
/// Returns kUnknown for unrecognized labels.
Encoding EncodingFromName(std::string_view name);

/// Table 1 of the paper: the language implied by a character encoding
/// scheme. ASCII/UTF-8/Latin-1 imply no specific language -> kOther
/// (UTF-8 content *could* be any language; the paper's method treats the
/// charset as the language signal, so UTF-8 maps to no target language).
Language LanguageOfEncoding(Encoding e);

std::string_view LanguageName(Language lang);

}  // namespace lswc

#endif  // LSWC_CHARSET_ENCODING_H_
