#ifndef LSWC_CHARSET_ESCAPE_PROBER_H_
#define LSWC_CHARSET_ESCAPE_PROBER_H_

#include "charset/prober.h"

namespace lswc {

/// Detects 7-bit escape-based encodings — here ISO-2022-JP. The encoding
/// is unambiguous once a "ESC $ B" / "ESC $ @" shift-in is seen, and ruled
/// out by any 8-bit byte or an unknown escape sequence.
class EscapeProber : public CharsetProber {
 public:
  ProbeState Feed(std::string_view bytes) override;
  double Confidence() const override;
  Encoding encoding() const override { return Encoding::kIso2022Jp; }
  ProbeState state() const override { return state_; }
  void Reset() override;

 private:
  ProbeState state_ = ProbeState::kDetecting;
  int pending_ = 0;      // Bytes of an escape sequence still expected.
  char esc_first_ = 0;   // First byte after ESC when pending_ == 1.
};

}  // namespace lswc

#endif  // LSWC_CHARSET_ESCAPE_PROBER_H_
