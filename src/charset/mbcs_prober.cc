#include "charset/mbcs_prober.h"

#include <algorithm>

namespace lswc {

namespace {
// Saturating evidence ramp: 0 chars -> 0, >= `cap` chars -> 1.
double Ramp(uint64_t n, uint64_t cap) {
  return static_cast<double>(std::min(n, cap)) / static_cast<double>(cap);
}
}  // namespace

// ---------------------------------------------------------------- EUC-JP

ProbeState EucJpProber::Feed(std::string_view bytes) {
  if (state_ == ProbeState::kNotMe) return state_;
  for (unsigned char b : bytes) {
    switch (pending_) {
      case 0:
        if (b < 0x80) continue;
        if (b == 0x8E) {  // SS2: next byte is half-width katakana.
          pending_ = 2;
          continue;
        }
        if (b >= 0xA1 && b <= 0xFE) {
          lead_ = b;
          pending_ = 1;
          continue;
        }
        state_ = ProbeState::kNotMe;  // 0x80-0x8D, 0x8F-0xA0, 0xFF.
        return state_;
      case 1:
        if (b < 0xA1 || b > 0xFE) {
          state_ = ProbeState::kNotMe;
          return state_;
        }
        ++mb_chars_;
        if (lead_ == 0xA4 || lead_ == 0xA5) {
          ++kana_chars_;
        } else if (lead_ >= 0xB0 && lead_ <= 0xF4) {
          ++kanji_chars_;
        }
        pending_ = 0;
        continue;
      case 2:
        if (b < 0xA1 || b > 0xDF) {
          state_ = ProbeState::kNotMe;
          return state_;
        }
        ++mb_chars_;
        pending_ = 0;
        continue;
    }
  }
  return state_;
}

double EucJpProber::Confidence() const {
  if (state_ == ProbeState::kNotMe) return 0.0;
  if (pending_ != 0) return 0.0;  // Ends mid-character.
  if (mb_chars_ == 0) return 0.0;
  // Japanese prose: kana dominate; kanji support. Thai-as-EUC pairs land
  // mostly outside the kana leads, keeping this ratio small.
  const double kana_ratio =
      static_cast<double>(kana_chars_) / static_cast<double>(mb_chars_);
  const double kanji_ratio =
      static_cast<double>(kanji_chars_) / static_cast<double>(mb_chars_);
  const double classy = kana_ratio + 0.5 * kanji_ratio;
  return std::min(0.99, classy * (0.5 + 0.5 * Ramp(mb_chars_, 32)));
}

void EucJpProber::Reset() {
  state_ = ProbeState::kDetecting;
  pending_ = 0;
  lead_ = 0;
  mb_chars_ = kana_chars_ = kanji_chars_ = 0;
}

// -------------------------------------------------------------- Shift_JIS

ProbeState ShiftJisProber::Feed(std::string_view bytes) {
  if (state_ == ProbeState::kNotMe) return state_;
  for (unsigned char b : bytes) {
    if (pending_ == 1) {
      const bool ok = (b >= 0x40 && b <= 0xFC && b != 0x7F);
      if (!ok) {
        state_ = ProbeState::kNotMe;
        return state_;
      }
      ++mb_chars_;
      if (lead_ == 0x82 || lead_ == 0x83) {
        ++kana_chars_;
      } else {
        ++kanji_chars_;
      }
      pending_ = 0;
      continue;
    }
    if (b < 0x80) continue;
    if (b >= 0xA1 && b <= 0xDF) {  // Half-width katakana.
      ++mb_chars_;
      ++halfwidth_chars_;
      continue;
    }
    if ((b >= 0x81 && b <= 0x9F) || (b >= 0xE0 && b <= 0xEF)) {
      lead_ = b;
      pending_ = 1;
      continue;
    }
    state_ = ProbeState::kNotMe;  // 0x80, 0xA0, 0xF0-0xFF lead.
    return state_;
  }
  return state_;
}

double ShiftJisProber::Confidence() const {
  if (state_ == ProbeState::kNotMe) return 0.0;
  if (pending_ != 0) return 0.0;
  if (mb_chars_ == 0) return 0.0;
  const double kana_ratio =
      static_cast<double>(kana_chars_) / static_cast<double>(mb_chars_);
  const double kanji_ratio =
      static_cast<double>(kanji_chars_) / static_cast<double>(mb_chars_);
  const double half_ratio =
      static_cast<double>(halfwidth_chars_) / static_cast<double>(mb_chars_);
  // Mostly half-width katakana is the signature of a misread, not of real
  // SJIS prose; subtract it from the evidence.
  const double classy = kana_ratio + 0.3 * kanji_ratio - 0.8 * half_ratio;
  return std::clamp(classy, 0.0, 0.99) * (0.5 + 0.5 * Ramp(mb_chars_, 32));
}

void ShiftJisProber::Reset() {
  state_ = ProbeState::kDetecting;
  pending_ = 0;
  lead_ = 0;
  mb_chars_ = kana_chars_ = kanji_chars_ = halfwidth_chars_ = 0;
}

}  // namespace lswc
