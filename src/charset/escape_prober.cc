#include "charset/escape_prober.h"

namespace lswc {

ProbeState EscapeProber::Feed(std::string_view bytes) {
  if (state_ != ProbeState::kDetecting) return state_;
  for (unsigned char b : bytes) {
    if (b >= 0x80) {
      state_ = ProbeState::kNotMe;
      return state_;
    }
    if (pending_ == 2) {  // Byte right after ESC.
      esc_first_ = static_cast<char>(b);
      pending_ = 1;
      continue;
    }
    if (pending_ == 1) {  // Second byte after ESC.
      const char c = static_cast<char>(b);
      pending_ = 0;
      if (esc_first_ == '$' && (c == 'B' || c == '@')) {
        state_ = ProbeState::kFoundIt;  // Shift into JIS X 0208.
        return state_;
      }
      if (esc_first_ == '(' && (c == 'B' || c == 'J')) {
        continue;  // Shift to ASCII/Roman: consistent, keep looking.
      }
      state_ = ProbeState::kNotMe;  // Unknown escape.
      return state_;
    }
    if (b == 0x1B) pending_ = 2;
  }
  return state_;
}

double EscapeProber::Confidence() const {
  return state_ == ProbeState::kFoundIt ? 0.99 : 0.0;
}

void EscapeProber::Reset() {
  state_ = ProbeState::kDetecting;
  pending_ = 0;
  esc_first_ = 0;
}

}  // namespace lswc
