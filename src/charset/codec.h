#ifndef LSWC_CHARSET_CODEC_H_
#define LSWC_CHARSET_CODEC_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "charset/encoding.h"
#include "util/status.h"

namespace lswc {

/// True when `cp` is representable in encoding `e` by this codec.
///
/// Japanese repertoire: ASCII, JIS X 0208 row-1 punctuation subset,
/// full hiragana & katakana rows, and a curated common-kanji subset
/// (see codec.cc); the synthetic-content generator draws only from this
/// repertoire, so encode of generated text never fails.
bool CanEncode(Encoding e, char32_t cp);

/// Encodes UTF-32 text into the byte stream of encoding `e`. Fails with
/// InvalidArgument on the first unrepresentable codepoint.
StatusOr<std::string> EncodeText(Encoding e, const std::u32string& text);

/// Decodes a byte stream in encoding `e` back to UTF-32. Fails with
/// Corruption on invalid sequences (no silent replacement: the probers,
/// not the codec, are in charge of guessing).
StatusOr<std::u32string> DecodeText(Encoding e, std::string_view bytes);

/// UTF-8 specific helpers (also used by the UTF-8 prober and tests).
StatusOr<std::u32string> DecodeUtf8(std::string_view bytes);
std::string EncodeUtf8(const std::u32string& text);

/// A JIS X 0208 code point (row/cell a.k.a. ku-ten, both 1-based).
struct JisCode {
  int row = 0;
  int cell = 0;
};

/// Maps a Unicode codepoint into JIS X 0208 row/cell for the supported
/// repertoire; returns false if unmapped.
bool UnicodeToJis(char32_t cp, JisCode* out);
/// Inverse of UnicodeToJis; returns false for rows/cells outside the
/// supported repertoire.
bool JisToUnicode(JisCode code, char32_t* out);

}  // namespace lswc

#endif  // LSWC_CHARSET_CODEC_H_
