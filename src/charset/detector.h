#ifndef LSWC_CHARSET_DETECTOR_H_
#define LSWC_CHARSET_DETECTOR_H_

#include <memory>
#include <string_view>
#include <vector>

#include "charset/encoding.h"
#include "charset/prober.h"

namespace lswc {

/// Outcome of charset detection.
struct DetectionResult {
  Encoding encoding = Encoding::kUnknown;
  double confidence = 0.0;  // [0, 1]; 0 when undetected.
};

/// Options for the composite detector.
struct DetectorOptions {
  /// Examine at most this many bytes of the document (0 = all). Real
  /// detectors prescan a prefix; 8 KiB matches typical crawler practice.
  size_t max_bytes = 8192;
  /// Minimum confidence required to report a result; below it the
  /// detector answers kUnknown, which the crawler treats as irrelevant.
  double min_confidence = 0.20;
  /// When false the Thai single-byte prober is disabled, reproducing the
  /// era-accurate Mozilla detector the paper used ("some languages, such
  /// as Thai, are not supported by these tools").
  bool enable_thai = true;
};

/// The composite charset detector (the "composite approach" of Li &
/// Momoi 2001 / the Mozilla charset detector the paper applies):
///  1. pure 7-bit input -> ISO-2022-JP if a JIS shift-in escape appears,
///     otherwise US-ASCII;
///  2. otherwise every prober (UTF-8, EUC-JP, Shift_JIS, Thai) is fed the
///     prefix and the highest-confidence survivor wins;
///  3. 8-bit input that defeats every prober falls back to Latin-1 with
///     floor confidence.
class CharsetDetector {
 public:
  explicit CharsetDetector(DetectorOptions options = {});
  ~CharsetDetector();

  CharsetDetector(const CharsetDetector&) = delete;
  CharsetDetector& operator=(const CharsetDetector&) = delete;

  /// One-shot detection of a whole document.
  DetectionResult Detect(std::string_view bytes);

  /// Streaming interface: Reset, Feed chunks, then Result.
  void Reset();
  void Feed(std::string_view bytes);
  DetectionResult Result() const;

 private:
  DetectorOptions options_;
  std::vector<std::unique_ptr<CharsetProber>> probers_;
  size_t bytes_seen_ = 0;
  bool saw_8bit_ = false;
  bool saw_escape_ = false;
};

/// Convenience wrapper: detect with default options.
DetectionResult DetectEncoding(std::string_view bytes);

}  // namespace lswc

#endif  // LSWC_CHARSET_DETECTOR_H_
