#ifndef LSWC_CHARSET_PROBER_H_
#define LSWC_CHARSET_PROBER_H_

#include <string_view>

#include "charset/encoding.h"

namespace lswc {

/// Tri-state result of feeding bytes to a prober, after Mozilla's
/// universalchardet: still undecided, positively identified, or ruled out.
enum class ProbeState {
  kDetecting,
  kFoundIt,
  kNotMe,
};

/// One per-encoding detector. Probers are fed the document bytes once and
/// asked for a confidence in [0, 1]; the composite detector arbitrates.
class CharsetProber {
 public:
  virtual ~CharsetProber() = default;

  /// Consumes bytes (may be called repeatedly for streamed input).
  virtual ProbeState Feed(std::string_view bytes) = 0;

  /// Confidence that the stream is in encoding(); meaningful after Feed.
  virtual double Confidence() const = 0;

  /// The encoding this prober argues for. Probers that distinguish
  /// sub-variants (TIS-620 vs windows-874) may refine this as they see
  /// variant-specific bytes.
  virtual Encoding encoding() const = 0;

  virtual ProbeState state() const = 0;

  /// Returns the prober to its initial state.
  virtual void Reset() = 0;
};

}  // namespace lswc

#endif  // LSWC_CHARSET_PROBER_H_
