#ifndef LSWC_CHARSET_MBCS_PROBER_H_
#define LSWC_CHARSET_MBCS_PROBER_H_

#include <cstdint>

#include "charset/prober.h"

namespace lswc {

/// EUC-JP prober: a structural state machine (lead 0xA1-0xFE + trail
/// 0xA1-0xFE, SS2 half-width katakana) combined with character-class
/// frequency analysis. Japanese prose is dominated by hiragana (lead
/// 0xA4) and katakana (lead 0xA5); the hit ratio of those classes among
/// multibyte characters drives the confidence, which is what separates
/// EUC-JP from byte-wise-plausible Thai text.
class EucJpProber : public CharsetProber {
 public:
  ProbeState Feed(std::string_view bytes) override;
  double Confidence() const override;
  Encoding encoding() const override { return Encoding::kEucJp; }
  ProbeState state() const override { return state_; }
  void Reset() override;

 private:
  ProbeState state_ = ProbeState::kDetecting;
  int pending_ = 0;           // 0 = ground, 1 = expect trail, 2 = expect SS2 byte.
  unsigned char lead_ = 0;
  uint64_t mb_chars_ = 0;
  uint64_t kana_chars_ = 0;   // Hiragana + katakana.
  uint64_t kanji_chars_ = 0;  // Leads within the kanji rows.
};

/// Shift_JIS prober. Structure: lead 0x81-0x9F/0xE0-0xEF with trail
/// 0x40-0xFC (minus 0x7F), single bytes 0xA1-0xDF as half-width katakana.
/// Frequency: hiragana/katakana live under leads 0x82/0x83; text that is
/// mostly half-width katakana is heavily penalized (that pattern is the
/// classic EUC-JP-misread-as-SJIS signature).
class ShiftJisProber : public CharsetProber {
 public:
  ProbeState Feed(std::string_view bytes) override;
  double Confidence() const override;
  Encoding encoding() const override { return Encoding::kShiftJis; }
  ProbeState state() const override { return state_; }
  void Reset() override;

 private:
  ProbeState state_ = ProbeState::kDetecting;
  int pending_ = 0;
  unsigned char lead_ = 0;
  uint64_t mb_chars_ = 0;
  uint64_t kana_chars_ = 0;     // Leads 0x82/0x83.
  uint64_t kanji_chars_ = 0;    // Other valid double-byte chars.
  uint64_t halfwidth_chars_ = 0;
};

}  // namespace lswc

#endif  // LSWC_CHARSET_MBCS_PROBER_H_
