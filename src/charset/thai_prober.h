#ifndef LSWC_CHARSET_THAI_PROBER_H_
#define LSWC_CHARSET_THAI_PROBER_H_

#include <cstdint>

#include "charset/prober.h"

namespace lswc {

/// Single-byte distribution prober for the Thai encodings (TIS-620 and its
/// windows-874 superset). This is the capability the paper notes the
/// Mozilla detector *lacked* for Thai; we provide it as an extension and
/// for the classifier ablation.
///
/// Structure: high bytes must be Thai letters (0xA1-0xDA, 0xDF-0xFB);
/// windows-874 additionally allows a small C1 punctuation set, and seeing
/// one switches the claimed variant to windows-874. Any other high byte
/// rules the family out.
///
/// Distribution: confidence is driven by the hit ratio of the ~30 most
/// frequent Thai letters (frequent consonants + vowels + tone marks),
/// which real Thai text concentrates on but random or foreign byte soup
/// does not.
class ThaiProber : public CharsetProber {
 public:
  ThaiProber();

  ProbeState Feed(std::string_view bytes) override;
  double Confidence() const override;
  Encoding encoding() const override { return variant_; }
  ProbeState state() const override { return state_; }
  void Reset() override;

 private:
  ProbeState state_ = ProbeState::kDetecting;
  Encoding variant_ = Encoding::kTis620;
  uint64_t thai_bytes_ = 0;
  uint64_t common_hits_ = 0;
  // Run-length statistics of consecutive Thai bytes. Thai script has no
  // ASCII between letters, so real Thai prose forms long high-byte runs;
  // Western accented text (Latin-1) produces isolated high bytes that
  // would otherwise pass the membership test.
  uint64_t current_run_ = 0;
  uint64_t run_count_ = 0;
  uint64_t run_total_ = 0;
};

}  // namespace lswc

#endif  // LSWC_CHARSET_THAI_PROBER_H_
