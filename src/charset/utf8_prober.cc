#include "charset/utf8_prober.h"

#include <algorithm>

namespace lswc {

ProbeState Utf8Prober::Feed(std::string_view bytes) {
  if (state_ == ProbeState::kNotMe) return state_;
  total_bytes_ += bytes.size();
  for (unsigned char b : bytes) {
    if (remaining_ == 0) {
      if (b < 0x80) continue;
      if ((b & 0xE0) == 0xC0) {
        remaining_ = 1;
        codepoint_ = b & 0x1F;
        min_allowed_ = 0x80;
      } else if ((b & 0xF0) == 0xE0) {
        remaining_ = 2;
        codepoint_ = b & 0x0F;
        min_allowed_ = 0x800;
      } else if ((b & 0xF8) == 0xF0) {
        remaining_ = 3;
        codepoint_ = b & 0x07;
        min_allowed_ = 0x10000;
      } else {
        state_ = ProbeState::kNotMe;
        return state_;
      }
    } else {
      if ((b & 0xC0) != 0x80) {
        state_ = ProbeState::kNotMe;
        return state_;
      }
      codepoint_ = (codepoint_ << 6) | (b & 0x3F);
      if (--remaining_ == 0) {
        if (codepoint_ < min_allowed_ || codepoint_ > 0x10FFFF ||
            (codepoint_ >= 0xD800 && codepoint_ <= 0xDFFF)) {
          state_ = ProbeState::kNotMe;
          return state_;
        }
        ++multibyte_chars_;
      }
    }
  }
  return state_;
}

double Utf8Prober::Confidence() const {
  if (state_ == ProbeState::kNotMe) return 0.0;
  if (remaining_ != 0) return 0.0;  // Truncated final sequence.
  if (multibyte_chars_ == 0) return 0.05;  // Pure ASCII: no evidence.
  // Confidence saturates quickly: a handful of valid multibyte sequences
  // is near-conclusive because legacy encodings rarely emit them.
  const double x = static_cast<double>(
      std::min<uint64_t>(multibyte_chars_, 64));
  return 0.5 + 0.49 * (x / 64.0);
}

void Utf8Prober::Reset() {
  state_ = ProbeState::kDetecting;
  remaining_ = 0;
  codepoint_ = 0;
  min_allowed_ = 0;
  multibyte_chars_ = 0;
  total_bytes_ = 0;
}

}  // namespace lswc
