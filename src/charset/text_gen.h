#ifndef LSWC_CHARSET_TEXT_GEN_H_
#define LSWC_CHARSET_TEXT_GEN_H_

#include <string>

#include "charset/encoding.h"
#include "util/random.h"

namespace lswc {

/// Generates synthetic prose in a language, as UTF-32 codepoints drawn
/// from frequency models that mimic the language's character-class
/// distribution:
///  - Japanese: hiragana-dominant prose with katakana runs, common kanji,
///    ideographic punctuation and occasional ASCII,
///  - Thai: consonant/vowel/tone syllables with phrase spaces (Thai does
///    not put spaces between words),
///  - Other: English-like ASCII word salad.
///
/// Every generated codepoint is encodable in the corresponding Table 1
/// encodings (see CanEncode), so page rendering never fails.
std::u32string GenerateText(Language lang, size_t approx_chars, Rng* rng);

/// Generates a short title (a few words) in the language.
std::u32string GenerateTitle(Language lang, Rng* rng);

}  // namespace lswc

#endif  // LSWC_CHARSET_TEXT_GEN_H_
