#ifndef LSWC_CHARSET_UTF8_PROBER_H_
#define LSWC_CHARSET_UTF8_PROBER_H_

#include "charset/prober.h"

namespace lswc {

/// Validates the stream against the UTF-8 grammar (including overlong-form
/// and surrogate rejection). Confidence grows with the number of valid
/// multibyte sequences seen: pure ASCII is *consistent* with UTF-8 but not
/// *evidence* for it.
class Utf8Prober : public CharsetProber {
 public:
  ProbeState Feed(std::string_view bytes) override;
  double Confidence() const override;
  Encoding encoding() const override { return Encoding::kUtf8; }
  ProbeState state() const override { return state_; }
  void Reset() override;

 private:
  ProbeState state_ = ProbeState::kDetecting;
  // Decoder state across Feed calls.
  int remaining_ = 0;        // Continuation bytes still expected.
  uint32_t codepoint_ = 0;   // Partial codepoint.
  uint32_t min_allowed_ = 0; // Overlong-form floor for current sequence.
  uint64_t multibyte_chars_ = 0;
  uint64_t total_bytes_ = 0;
};

}  // namespace lswc

#endif  // LSWC_CHARSET_UTF8_PROBER_H_
