#ifndef LSWC_SNAPSHOT_FINGERPRINT_H_
#define LSWC_SNAPSHOT_FINGERPRINT_H_

// Identity of the run configuration a snapshot was taken under. A
// snapshot only makes sense against the exact dataset / strategy /
// classifier / cadence it was captured with — resuming a Thai crawl's
// frontier against a Japanese graph would silently produce garbage
// series. The fingerprint is saved as the first section and checked
// before any state is restored; a mismatch is a FailedPrecondition
// naming the first field that differs.

#include <cstdint>
#include <string>

#include "snapshot/section.h"
#include "util/status.h"

namespace lswc::snapshot {

struct CrawlFingerprint {
  // Dataset identity.
  uint64_t num_pages = 0;
  uint64_t num_hosts = 0;
  uint64_t num_links = 0;
  uint64_t generator_seed = 0;
  uint8_t target_language = 0;

  // Strategy / classifier identity.
  std::string strategy_name;
  uint64_t num_priority_levels = 0;
  uint64_t seed_priority = 0;
  std::string classifier_name;

  // Engine configuration that changes the observable series.
  uint64_t sample_interval = 0;
  bool parse_html = false;

  // Which scheduler kind produced the kFrontier section ("fifo",
  // "bucket", "bounded", "spilling", "politeness", ...; the sharded
  // engine prefixes its base kind, e.g. "sharded-bucket").
  std::string scheduler_kind;

  // Batch-selection regime identity: URLs selected per rescore
  // iteration and the scorer spec (0 / empty outside the batch regime).
  // A batch frontier's pending scores are a function of both, so a
  // snapshot resumed under different values would select different
  // batches.
  uint64_t batch_k = 0;
  std::string scorer_spec;

  // Shard count the per-shard sections were partitioned under. 0 = the
  // serial engine's single-frontier layout. Resuming under a different
  // shard count is rejected (frontier/state sections are per shard and
  // silent re-partitioning would change nothing observable only by
  // accident — see docs/ARCHITECTURE.md "Sharded crawl pipeline").
  uint64_t num_shards = 0;

  // Out-of-core identity: the LSWCDS1 dataset file the run replays
  // (empty = generated / in-RAM graph) and the global memory budget in
  // MiB (0 = unbudgeted). The budget changes the frontier's spill
  // schedule and the link cache geometry, so a snapshot resumed under a
  // different budget would not replay the same scheduler state.
  std::string dataset_file;
  uint64_t memory_budget_mb = 0;

  void Save(SectionWriter* w) const;
  static StatusOr<CrawlFingerprint> Load(SectionReader* r);

  /// OK iff `other` (from a snapshot) matches this run's configuration;
  /// otherwise FailedPrecondition naming the mismatched field.
  Status Match(const CrawlFingerprint& other) const;
};

}  // namespace lswc::snapshot

#endif  // LSWC_SNAPSHOT_FINGERPRINT_H_
