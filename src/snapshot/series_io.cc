#include "snapshot/series_io.h"

#include <utility>
#include <vector>

namespace lswc::snapshot {

void SaveSeries(const Series& series, SectionWriter* w) {
  w->Str(series.x_name());
  w->U64(series.num_columns());
  for (size_t c = 0; c < series.num_columns(); ++c) {
    w->Str(series.y_column(c).name);
  }
  std::vector<double> x(series.num_rows());
  for (size_t r = 0; r < series.num_rows(); ++r) x[r] = series.x(r);
  w->F64Vec(x);
  for (size_t c = 0; c < series.num_columns(); ++c) {
    w->F64Vec(series.y_column(c).values);
  }
}

StatusOr<Series> LoadSeries(SectionReader* r) {
  const std::string x_name = r->Str();
  const uint64_t num_columns = r->U64();
  LSWC_RETURN_IF_ERROR(r->status());
  // Column count is bounded by the remaining payload (each column is at
  // least an empty Str + empty F64Vec = 16 bytes), so a corrupt count
  // cannot drive an unbounded loop; the sticky reader fails first.
  std::vector<std::string> y_names;
  for (uint64_t c = 0; c < num_columns && r->status().ok(); ++c) {
    y_names.push_back(r->Str());
  }
  LSWC_RETURN_IF_ERROR(r->status());
  Series series(x_name, y_names);
  const std::vector<double> x = r->F64Vec();
  std::vector<std::vector<double>> ys;
  for (uint64_t c = 0; c < num_columns && r->status().ok(); ++c) {
    ys.push_back(r->F64Vec());
  }
  LSWC_RETURN_IF_ERROR(r->status());
  for (const auto& col : ys) {
    if (col.size() != x.size()) {
      return Status::Corruption("series column length mismatch in snapshot");
    }
  }
  std::vector<double> row(y_names.size());
  for (size_t i = 0; i < x.size(); ++i) {
    for (size_t c = 0; c < ys.size(); ++c) row[c] = ys[c][i];
    series.AddRow(x[i], row);
  }
  return series;
}

Status LoadSeriesInto(SectionReader* r, Series* out) {
  StatusOr<Series> loaded = LoadSeries(r);
  LSWC_RETURN_IF_ERROR(loaded.status());
  if (loaded->x_name() != out->x_name()) {
    return Status::FailedPrecondition(
        "snapshot series x column is '" + loaded->x_name() +
        "' but this run records '" + out->x_name() + "'");
  }
  if (loaded->num_columns() != out->num_columns()) {
    return Status::FailedPrecondition(
        "snapshot series has " + std::to_string(loaded->num_columns()) +
        " y columns but this run records " +
        std::to_string(out->num_columns()));
  }
  for (size_t c = 0; c < out->num_columns(); ++c) {
    if (loaded->y_column(c).name != out->y_column(c).name) {
      return Status::FailedPrecondition(
          "snapshot series column " + std::to_string(c) + " is '" +
          loaded->y_column(c).name + "' but this run records '" +
          out->y_column(c).name + "'");
    }
  }
  *out = *std::move(loaded);
  return Status::OK();
}

}  // namespace lswc::snapshot
