#include "snapshot/fingerprint.h"

namespace lswc::snapshot {

void CrawlFingerprint::Save(SectionWriter* w) const {
  w->U64(num_pages);
  w->U64(num_hosts);
  w->U64(num_links);
  w->U64(generator_seed);
  w->U8(target_language);
  w->Str(strategy_name);
  w->U64(num_priority_levels);
  w->U64(seed_priority);
  w->Str(classifier_name);
  w->U64(sample_interval);
  w->U8(parse_html ? 1 : 0);
  w->Str(scheduler_kind);
  w->U64(batch_k);
  w->Str(scorer_spec);
  w->U64(num_shards);
  w->Str(dataset_file);
  w->U64(memory_budget_mb);
}

StatusOr<CrawlFingerprint> CrawlFingerprint::Load(SectionReader* r) {
  CrawlFingerprint fp;
  fp.num_pages = r->U64();
  fp.num_hosts = r->U64();
  fp.num_links = r->U64();
  fp.generator_seed = r->U64();
  fp.target_language = r->U8();
  fp.strategy_name = r->Str();
  fp.num_priority_levels = r->U64();
  fp.seed_priority = r->U64();
  fp.classifier_name = r->Str();
  fp.sample_interval = r->U64();
  fp.parse_html = r->U8() != 0;
  fp.scheduler_kind = r->Str();
  fp.batch_k = r->U64();
  fp.scorer_spec = r->Str();
  fp.num_shards = r->U64();
  fp.dataset_file = r->Str();
  fp.memory_budget_mb = r->U64();
  LSWC_RETURN_IF_ERROR(r->status());
  return fp;
}

namespace {
Status Mismatch(const std::string& field, const std::string& snapshot_value,
                const std::string& run_value) {
  return Status::FailedPrecondition(
      "snapshot fingerprint mismatch: " + field + " is " + snapshot_value +
      " in the snapshot but " + run_value + " in this run");
}
}  // namespace

Status CrawlFingerprint::Match(const CrawlFingerprint& other) const {
  const auto u = [](uint64_t v) { return std::to_string(v); };
  if (num_pages != other.num_pages) {
    return Mismatch("dataset num_pages", u(other.num_pages), u(num_pages));
  }
  if (num_hosts != other.num_hosts) {
    return Mismatch("dataset num_hosts", u(other.num_hosts), u(num_hosts));
  }
  if (num_links != other.num_links) {
    return Mismatch("dataset num_links", u(other.num_links), u(num_links));
  }
  if (generator_seed != other.generator_seed) {
    return Mismatch("dataset generator_seed", u(other.generator_seed),
                    u(generator_seed));
  }
  if (target_language != other.target_language) {
    return Mismatch("target_language", u(other.target_language),
                    u(target_language));
  }
  if (strategy_name != other.strategy_name) {
    return Mismatch("strategy", other.strategy_name, strategy_name);
  }
  if (num_priority_levels != other.num_priority_levels) {
    return Mismatch("strategy num_priority_levels",
                    u(other.num_priority_levels), u(num_priority_levels));
  }
  if (seed_priority != other.seed_priority) {
    return Mismatch("strategy seed_priority", u(other.seed_priority),
                    u(seed_priority));
  }
  if (classifier_name != other.classifier_name) {
    return Mismatch("classifier", other.classifier_name, classifier_name);
  }
  if (sample_interval != other.sample_interval) {
    return Mismatch("sample_interval", u(other.sample_interval),
                    u(sample_interval));
  }
  if (parse_html != other.parse_html) {
    return Mismatch("parse_html", other.parse_html ? "true" : "false",
                    parse_html ? "true" : "false");
  }
  if (scheduler_kind != other.scheduler_kind) {
    return Mismatch("scheduler kind", other.scheduler_kind, scheduler_kind);
  }
  if (batch_k != other.batch_k) {
    return Mismatch("batch_k", u(other.batch_k), u(batch_k));
  }
  if (scorer_spec != other.scorer_spec) {
    return Mismatch("scorers", "'" + other.scorer_spec + "'",
                    "'" + scorer_spec + "'");
  }
  if (num_shards != other.num_shards) {
    return Mismatch("num_shards", u(other.num_shards), u(num_shards));
  }
  if (dataset_file != other.dataset_file) {
    return Mismatch("dataset_file", "'" + other.dataset_file + "'",
                    "'" + dataset_file + "'");
  }
  if (memory_budget_mb != other.memory_budget_mb) {
    return Mismatch("memory_budget_mb", u(other.memory_budget_mb),
                    u(memory_budget_mb));
  }
  return Status::OK();
}

}  // namespace lswc::snapshot
