#ifndef LSWC_SNAPSHOT_SERIES_IO_H_
#define LSWC_SNAPSHOT_SERIES_IO_H_

// Self-describing Series serialization for snapshots: column names are
// stored with the data so a restore can verify the snapshot's series
// shape matches the run it is being loaded into.

#include "snapshot/section.h"
#include "util/series.h"
#include "util/status.h"

namespace lswc::snapshot {

/// Appends `series` (x name, y names, all values) to `w`.
void SaveSeries(const Series& series, SectionWriter* w);

/// Reads a series saved by SaveSeries. Fails with Corruption on malformed
/// data (column length mismatch, reader underrun).
StatusOr<Series> LoadSeries(SectionReader* r);

/// Reads a series and replaces `*out` with it, requiring the stored x/y
/// column names to match `out`'s — FailedPrecondition otherwise. Used to
/// restore a live recorder's series in place.
Status LoadSeriesInto(SectionReader* r, Series* out);

}  // namespace lswc::snapshot

#endif  // LSWC_SNAPSHOT_SERIES_IO_H_
