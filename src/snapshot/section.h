#ifndef LSWC_SNAPSHOT_SECTION_H_
#define LSWC_SNAPSHOT_SECTION_H_

// Typed byte-stream encoding for snapshot sections. A SectionWriter is
// an append-only buffer with fixed little-endian primitive encodings; a
// SectionReader is a bounds-checked cursor over a section's payload.
//
// The reader uses a *sticky* error: the first malformed read (underrun,
// oversized length prefix) records a Corruption status and every later
// read returns a zero value without touching memory. Restore code can
// therefore decode a whole section linearly and check `status()` once
// at the end — no per-field error plumbing, and no way for corrupt
// length fields to drive allocations past the section's real size.
// (In practice the per-section CRC catches corruption first; the sticky
// bounds checks are the defense in depth that keeps even a CRC collision
// from turning into undefined behavior.)

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lswc::snapshot {

class SectionWriter {
 public:
  void U8(uint8_t v) { buffer_.push_back(static_cast<char>(v)); }
  void U32(uint32_t v) {
    for (int i = 0; i < 4; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void U64(uint64_t v) {
    for (int i = 0; i < 8; ++i) U8(static_cast<uint8_t>(v >> (8 * i)));
  }
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  void F64(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    U64(bits);
  }
  void Str(std::string_view s) {
    U64(s.size());
    buffer_.append(s.data(), s.size());
  }

  /// Vectors: a U64 element count followed by the elements.
  void U32Vec(const std::vector<uint32_t>& v) {
    U64(v.size());
    for (uint32_t e : v) U32(e);
  }
  void U64Vec(const std::vector<uint64_t>& v) {
    U64(v.size());
    for (uint64_t e : v) U64(e);
  }
  void F64Vec(const std::vector<double>& v) {
    U64(v.size());
    for (double e : v) F64(e);
  }
  void U8Vec(const std::vector<uint8_t>& v) {
    U64(v.size());
    for (uint8_t e : v) U8(e);
  }
  void I16Vec(const std::vector<int16_t>& v) {
    U64(v.size());
    for (int16_t e : v) {
      const auto u = static_cast<uint16_t>(e);
      U8(static_cast<uint8_t>(u));
      U8(static_cast<uint8_t>(u >> 8));
    }
  }
  /// std::vector<bool>, packed 8 flags per byte.
  void BoolVec(const std::vector<bool>& v) {
    U64(v.size());
    uint8_t byte = 0;
    for (size_t i = 0; i < v.size(); ++i) {
      if (v[i]) byte |= static_cast<uint8_t>(1u << (i % 8));
      if (i % 8 == 7) {
        U8(byte);
        byte = 0;
      }
    }
    if (v.size() % 8 != 0) U8(byte);
  }

  const std::string& data() const { return buffer_; }
  size_t size() const { return buffer_.size(); }

 private:
  std::string buffer_;
};

class SectionReader {
 public:
  SectionReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}

  uint8_t U8() {
    if (!Need(1)) return 0;
    return data_[pos_++];
  }
  uint32_t U32() {
    if (!Need(4)) return 0;
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  uint64_t U64() {
    if (!Need(8)) return 0;
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_++]) << (8 * i);
    return v;
  }
  int64_t I64() { return static_cast<int64_t>(U64()); }
  double F64() {
    const uint64_t bits = U64();
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint64_t n = Len(1);
    std::string s;
    if (!status_.ok()) return s;
    s.assign(reinterpret_cast<const char*>(data_ + pos_),
             static_cast<size_t>(n));
    pos_ += static_cast<size_t>(n);
    return s;
  }

  std::vector<uint32_t> U32Vec() { return Vec<uint32_t>(4, [this] { return U32(); }); }
  std::vector<uint64_t> U64Vec() { return Vec<uint64_t>(8, [this] { return U64(); }); }
  std::vector<double> F64Vec() { return Vec<double>(8, [this] { return F64(); }); }
  std::vector<uint8_t> U8Vec() { return Vec<uint8_t>(1, [this] { return U8(); }); }
  std::vector<int16_t> I16Vec() {
    return Vec<int16_t>(2, [this] {
      const uint16_t lo = U8();
      const uint16_t hi = U8();
      return static_cast<int16_t>(static_cast<uint16_t>(lo | (hi << 8)));
    });
  }
  std::vector<bool> BoolVec() {
    const uint64_t n = U64();
    std::vector<bool> v;
    if (!status_.ok() || !Need((n + 7) / 8)) return v;
    v.resize(static_cast<size_t>(n));
    uint8_t byte = 0;
    for (size_t i = 0; i < v.size(); ++i) {
      if (i % 8 == 0) byte = data_[pos_++];
      v[i] = (byte >> (i % 8)) & 1;
    }
    return v;
  }

  const Status& status() const { return status_; }
  bool AtEnd() const { return pos_ == size_; }

  /// OK iff every read succeeded and the payload was fully consumed.
  Status Finish() const {
    if (!status_.ok()) return status_;
    if (!AtEnd()) {
      return Status::Corruption("section has trailing bytes");
    }
    return Status::OK();
  }

 private:
  /// Validates that `n` more bytes exist; sets the sticky error if not.
  bool Need(uint64_t n) {
    if (!status_.ok()) return false;
    if (n > size_ - pos_) {
      status_ = Status::Corruption("section underrun at byte " +
                                   std::to_string(pos_));
      return false;
    }
    return true;
  }
  /// Reads a length prefix and validates it against the remaining bytes
  /// at `elem_size` bytes per element, so corrupt lengths cannot drive
  /// allocations beyond the section's actual size.
  uint64_t Len(size_t elem_size) {
    const uint64_t n = U64();
    if (!status_.ok()) return 0;
    if (!Need(n * static_cast<uint64_t>(elem_size))) return 0;
    return n;
  }
  template <typename T, typename Fn>
  std::vector<T> Vec(size_t elem_size, Fn read_one) {
    const uint64_t n = Len(elem_size);
    std::vector<T> v;
    if (!status_.ok()) return v;
    v.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) v.push_back(read_one());
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  Status status_;
};

}  // namespace lswc::snapshot

#endif  // LSWC_SNAPSHOT_SECTION_H_
