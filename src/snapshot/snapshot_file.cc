#include "snapshot/snapshot_file.h"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>
#include <vector>

#include "util/crc32.h"

namespace lswc::snapshot {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t ReadU32(const uint8_t* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(p[i]) << (8 * i);
  return v;
}

uint64_t ReadU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

void SnapshotWriter::AddSection(SectionId id, const SectionWriter& payload) {
  sections_[static_cast<uint32_t>(id)] = payload.data();
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  return WriteFile(path, nullptr);
}

Status SnapshotWriter::WriteFile(const std::string& path,
                                 uint64_t* bytes_written) const {
  std::string blob;
  blob.append(kSnapshotMagic, sizeof(kSnapshotMagic));
  AppendU32(&blob, kFormatVersion);
  AppendU32(&blob, static_cast<uint32_t>(sections_.size()));
  for (const auto& [id, payload] : sections_) {
    std::string header;
    AppendU32(&header, id);
    AppendU64(&header, payload.size());
    // The CRC covers the section header too, so a bit flip that turns
    // one valid section id (or size) into another is caught right here
    // instead of surfacing later as a confusing missing-section error.
    uint32_t crc = Crc32Update(0, header.data(), header.size());
    crc = Crc32Update(crc, payload.data(), payload.size());
    blob.append(header);
    AppendU32(&blob, crc);
    blob.append(payload);
  }

  // Write to a temp file in the destination directory, then rename. The
  // rename is atomic within a filesystem, so `path` only ever names a
  // complete snapshot.
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("cannot open snapshot temp file: " + tmp);
  }
  const size_t written = std::fwrite(blob.data(), 1, blob.size(), f);
  const bool flushed = std::fflush(f) == 0;
  std::fclose(f);
  if (written != blob.size() || !flushed) {
    std::remove(tmp.c_str());
    return Status::IoError("short write to snapshot temp file: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename snapshot into place: " + path +
                           ": " + ec.message());
  }
  if (bytes_written != nullptr) *bytes_written = blob.size();
  return Status::OK();
}

StatusOr<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::IoError("cannot open snapshot file: " + path);
  }
  std::string blob;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    blob.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::IoError("error reading snapshot file: " + path);
  }

  const auto* p = reinterpret_cast<const uint8_t*>(blob.data());
  size_t remaining = blob.size();
  if (remaining < sizeof(kSnapshotMagic) + 8) {
    return Status::Corruption("snapshot file too short: " + path);
  }
  if (std::memcmp(p, kSnapshotMagic, sizeof(kSnapshotMagic)) != 0) {
    return Status::Corruption("bad snapshot magic: " + path);
  }
  p += sizeof(kSnapshotMagic);
  remaining -= sizeof(kSnapshotMagic);

  SnapshotReader reader;
  reader.format_version_ = ReadU32(p);
  const uint32_t section_count = ReadU32(p + 4);
  p += 8;
  remaining -= 8;
  if (reader.format_version_ != kFormatVersion) {
    return Status::Corruption(
        "snapshot format version " + std::to_string(reader.format_version_) +
        " not supported (this build reads version " +
        std::to_string(kFormatVersion) + ")");
  }

  for (uint32_t i = 0; i < section_count; ++i) {
    if (remaining < 16) {
      return Status::Corruption("truncated section header in " + path);
    }
    const uint32_t id = ReadU32(p);
    const uint64_t payload_size = ReadU64(p + 4);
    const uint32_t expected_crc = ReadU32(p + 12);
    p += 16;
    remaining -= 16;
    if (payload_size > remaining) {
      return Status::Corruption("truncated section payload in " + path);
    }
    bool known = false;
    for (SectionId sid : {SectionId::kFingerprint, SectionId::kEngine,
                          SectionId::kCrawlState, SectionId::kFrontier,
                          SectionId::kMetrics, SectionId::kRng,
                          SectionId::kShardMeta}) {
      known |= static_cast<uint32_t>(sid) == id;
    }
    // Per-shard sections live in reserved ranges (see snapshot_file.h).
    known |= id >= kShardFrontierBase && id < kShardRngBase + kMaxShards;
    if (!known) {
      return Status::Corruption("unknown section id " + std::to_string(id) +
                                " in " + path);
    }
    if (reader.sections_.count(id) != 0) {
      return Status::Corruption("duplicate section id " + std::to_string(id) +
                                " in " + path);
    }
    uint32_t actual_crc = Crc32Update(0, p - 16, 12);  // id + payload size.
    actual_crc = Crc32Update(actual_crc, p, static_cast<size_t>(payload_size));
    if (actual_crc != expected_crc) {
      return Status::Corruption("CRC mismatch in section " +
                                std::to_string(id) + " of " + path);
    }
    reader.sections_[id].assign(reinterpret_cast<const char*>(p),
                                static_cast<size_t>(payload_size));
    p += payload_size;
    remaining -= static_cast<size_t>(payload_size);
  }
  if (remaining != 0) {
    return Status::Corruption("trailing bytes after last section in " + path);
  }
  return reader;
}

bool SnapshotReader::HasSection(SectionId id) const {
  return sections_.count(static_cast<uint32_t>(id)) != 0;
}

StatusOr<SectionReader> SnapshotReader::Section(SectionId id) const {
  const auto it = sections_.find(static_cast<uint32_t>(id));
  if (it == sections_.end()) {
    return Status::Corruption("snapshot is missing section " +
                              std::to_string(static_cast<uint32_t>(id)));
  }
  return SectionReader(it->second.data(), it->second.size());
}

}  // namespace lswc::snapshot
