#ifndef LSWC_SNAPSHOT_SNAPSHOT_FILE_H_
#define LSWC_SNAPSHOT_SNAPSHOT_FILE_H_

// The on-disk snapshot container. A snapshot is a single binary file:
//
//   +----------------------------------------------------------+
//   | magic "LSWCSNAP" (8 bytes)                                |
//   | format version   (u32 LE)                                 |
//   | section count    (u32 LE)                                 |
//   +----------------------------------------------------------+
//   | per section:                                              |
//   |   section id     (u32 LE)                                 |
//   |   payload size   (u64 LE)                                 |
//   |   section CRC-32 (u32 LE, over id + size + payload)       |
//   |   payload bytes                                           |
//   +----------------------------------------------------------+
//
// All integers are little-endian regardless of host. Every section
// carries its own CRC, computed over the section id and payload size as
// well as the payload, so a truncated, bit-rotted, or relabeled section
// is rejected with Status::Corruption before any payload is decoded.
// (Covering the header matters: a lone payload CRC would accept a bit
// flip that turns one valid section id into another.) Writes go
// through a temp file in the destination directory followed by an
// atomic rename, so a crash mid-checkpoint can never leave a torn
// snapshot under the final name — readers see either the previous
// complete snapshot or the new one.

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "snapshot/section.h"
#include "util/status.h"

namespace lswc::snapshot {

inline constexpr char kSnapshotMagic[8] = {'L', 'S', 'W', 'C',
                                           'S', 'N', 'A', 'P'};
inline constexpr uint32_t kFormatVersion = 1;

/// Well-known section ids. Unknown ids are a Corruption error on read:
/// within one format version the section set is closed, so an
/// unrecognized id means the file does not match this build.
enum class SectionId : uint32_t {
  kFingerprint = 1,  // Dataset/strategy/classifier identity (checked first).
  kEngine = 2,       // CrawlEngine counters.
  kCrawlState = 3,   // Per-page bitmaps, annotations, priorities.
  kFrontier = 4,     // Scheduler + frontier contents.
  kMetrics = 5,      // MetricsRecorder counters and series rows so far.
  kRng = 6,          // xoshiro256** stream state (optional).
  kShardMeta = 7,    // Sharded engine: shard count + push-sequence state.
};

/// Per-shard sections of the sharded engine occupy reserved id ranges:
/// shard i's frontier is kShardFrontierBase + i, its crawl-state slice
/// kShardStateBase + i, its RNG stream kShardRngBase + i. Each range
/// holds up to kMaxShards shards.
inline constexpr uint32_t kShardFrontierBase = 1000;
inline constexpr uint32_t kShardStateBase = 2000;
inline constexpr uint32_t kShardRngBase = 3000;
inline constexpr uint32_t kMaxShards = 1000;

/// SectionId for shard `i`'s section in the range starting at `base`.
inline SectionId ShardSectionId(uint32_t base, uint32_t shard) {
  return static_cast<SectionId>(base + shard);
}

class SnapshotWriter {
 public:
  /// Registers a section payload. Each id may be added at most once.
  void AddSection(SectionId id, const SectionWriter& payload);

  /// Serializes all sections and atomically replaces `path` (temp file in
  /// the same directory + rename). The parent directory must exist.
  /// `bytes_written` (optional) receives the file's total size — the
  /// number obs reports as checkpoint bytes.
  Status WriteFile(const std::string& path) const;
  Status WriteFile(const std::string& path, uint64_t* bytes_written) const;

 private:
  std::map<uint32_t, std::string> sections_;
};

class SnapshotReader {
 public:
  /// Reads and validates the whole file: magic, version, section table,
  /// and every section CRC. Returns Corruption/IoError on any defect.
  static StatusOr<SnapshotReader> Open(const std::string& path);

  /// True if the snapshot contains the section.
  bool HasSection(SectionId id) const;

  /// A reader positioned at the start of the section's payload. The
  /// payload bytes live as long as this SnapshotReader.
  StatusOr<SectionReader> Section(SectionId id) const;

  uint32_t format_version() const { return format_version_; }

 private:
  SnapshotReader() = default;

  uint32_t format_version_ = 0;
  std::map<uint32_t, std::string> sections_;
};

}  // namespace lswc::snapshot

#endif  // LSWC_SNAPSHOT_SNAPSHOT_FILE_H_
