#ifndef LSWC_CORE_VIRTUAL_WEB_H_
#define LSWC_CORE_VIRTUAL_WEB_H_

#include <string>
#include <vector>

#include "util/status.h"
#include "webgraph/graph.h"
#include "webgraph/link_db.h"

namespace lswc {

/// How much of a page the virtual web space materializes per fetch.
/// The trace fast path (kNone) serves only log properties, the way the
/// paper's simulator replays its crawl logs; kHead/kFull additionally
/// render real HTML bytes so byte-level classifiers and parsers run.
enum class RenderMode {
  kNone,  // Log properties + outlinks only.
  kHead,  // Bytes of the <head> prefix (charset prescan window).
  kFull,  // The whole document.
};

/// What a fetch through the virtual web space returns: the observable
/// response (status, declared charset, bytes, links) plus the log's
/// ground truth, which only oracle components and the metrics layer may
/// consult — crawling strategies never see it.
struct FetchResponse {
  PageId page = 0;
  uint16_t http_status = 0;
  /// Charset declared by the page author (kUnknown when undeclared).
  Encoding meta_charset = Encoding::kUnknown;
  /// Rendered bytes per RenderMode (empty under kNone and for non-OK).
  std::string body;
  /// Outlinks served by the link database (empty for non-OK pages).
  std::vector<PageId> outlinks;

  // --- Ground truth (metrics / oracle only). ---
  Language true_language = Language::kUnknown;
  Encoding true_encoding = Encoding::kUnknown;

  bool ok() const { return http_status == 200; }
};

/// The virtual web space of the paper's Fig 2: resolves page requests
/// against the crawl-log image (WebGraph + LinkDb), optionally rendering
/// page bytes on demand.
class VirtualWebSpace {
 public:
  /// Neither pointer is owned; both must outlive the web space.
  VirtualWebSpace(const WebGraph* graph, LinkDb* link_db,
                  RenderMode render_mode = RenderMode::kNone);

  /// Serves one request. Fails with NotFound for ids outside the log
  /// (a URL the original crawl never resolved).
  Status Fetch(PageId id, FetchResponse* out);

  const WebGraph& graph() const { return *graph_; }
  RenderMode render_mode() const { return render_mode_; }

  /// Total fetches served (diagnostics).
  uint64_t fetch_count() const { return fetch_count_; }

 private:
  const WebGraph* graph_;
  LinkDb* link_db_;
  RenderMode render_mode_;
  uint64_t fetch_count_ = 0;
};

}  // namespace lswc

#endif  // LSWC_CORE_VIRTUAL_WEB_H_
