#ifndef LSWC_CORE_SPILLING_FRONTIER_H_
#define LSWC_CORE_SPILLING_FRONTIER_H_

#include <cstdio>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/frontier.h"
#include "util/status.h"

namespace lswc {

/// Disk-spilling bucket frontier: the lossless answer to the paper's
/// queue-memory problem (soft-focused needed ~8M pending URLs). Pending
/// URLs beyond the in-memory budget overflow to one append-only spill
/// file per priority level — the design production crawlers (Heritrix
/// and friends) use — and stream back in FIFO order as the level drains.
/// Ordering is identical to BucketFrontier: strict priority across
/// levels, FIFO within a level.
///
/// Layout per level: `head` (oldest, pop side, refilled in chunks) ->
/// spill file (middle) -> `tail` (newest, push side). A push lands in
/// `tail`; when the in-memory total exceeds the budget, the fullest
/// low-priority tail is appended to its file.
class SpillingFrontier final : public Frontier {
 public:
  struct Options {
    /// Max URLs held in memory across all levels (>= 2 * chunk).
    size_t memory_budget = 1 << 20;
    /// URLs moved per file read/write burst.
    size_t chunk = 4096;
    /// Directory for spill files (created if missing). Empty = a unique
    /// per-instance subdirectory under $TMPDIR (or /tmp), removed when
    /// the frontier is destroyed — concurrent runs never collide.
    std::string spill_dir;
  };

  /// Creates the frontier; fails if the spill directory is unusable.
  static StatusOr<std::unique_ptr<SpillingFrontier>> Create(
      int num_levels, const Options& options);

  ~SpillingFrontier() override;

  SpillingFrontier(const SpillingFrontier&) = delete;
  SpillingFrontier& operator=(const SpillingFrontier&) = delete;

  void Push(PageId url, int priority) override;
  std::optional<PageId> Pop() override;
  size_t size() const override { return size_; }
  size_t max_size_seen() const override { return max_size_; }

  /// URLs currently resident in memory (<= budget + chunk slack).
  size_t in_memory() const;
  /// Total URLs ever written to spill files (diagnostics).
  uint64_t spilled_urls() const { return spilled_urls_; }
  /// The resolved spill directory (the generated unique one when
  /// Options::spill_dir was empty).
  const std::string& spill_dir() const { return options_.spill_dir; }

  std::string kind_name() const override { return "spilling"; }
  /// Exports spill activity: counters `spill.bytes_written`,
  /// `spill.urls`, `spill.refills`, plus a "spill" trace instant per
  /// tail eviction when a sink is attached.
  void AttachObs(obs::MetricsRegistry* registry,
                 obs::TraceSink* trace) override;
  /// Captures the complete pending set, including the segment of each
  /// level that currently lives in its on-disk spill file — a snapshot
  /// is self-contained, never a reference to spill files that a crash
  /// or restart would have destroyed.
  Status Save(snapshot::SectionWriter* w) const override;
  Status Restore(snapshot::SectionReader* r) override;

 private:
  struct Level {
    std::deque<PageId> head;   // Oldest; pop side.
    std::deque<PageId> tail;   // Newest; push side.
    std::FILE* file = nullptr; // Lazily created spill file.
    uint64_t file_read = 0;    // URLs already read back.
    uint64_t file_written = 0; // URLs appended.
    std::string path;

    uint64_t on_disk() const { return file_written - file_read; }
    size_t total() const {
      return head.size() + tail.size() + static_cast<size_t>(on_disk());
    }
  };

  explicit SpillingFrontier(Options options) : options_(options) {}

  /// Appends `level`'s tail to its spill file.
  void SpillTail(Level* level);
  /// Moves up to chunk URLs from file (or tail) into head.
  void RefillHead(Level* level);
  /// Evicts from the lowest levels until under budget.
  void EnforceBudget();

  Options options_;
  /// True when the frontier created its own unique spill directory (an
  /// empty Options::spill_dir) and must remove it on destruction.
  bool owns_spill_dir_ = false;
  std::vector<Level> levels_;
  size_t size_ = 0;
  size_t max_size_ = 0;
  uint64_t spilled_urls_ = 0;
  int highest_nonempty_ = -1;
  obs::Counter* obs_spill_bytes_ = nullptr;
  obs::Counter* obs_spill_urls_ = nullptr;
  obs::Counter* obs_refills_ = nullptr;
  obs::TraceSink* obs_trace_ = nullptr;
};

}  // namespace lswc

#endif  // LSWC_CORE_SPILLING_FRONTIER_H_
