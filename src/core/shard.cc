#include "core/shard.h"

#include <algorithm>

namespace lswc {

uint32_t ShardOfHostName(const std::string& host_name, uint32_t num_shards) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis.
  for (const char c : host_name) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ull;
  }
  return static_cast<uint32_t>(h % num_shards);
}

ShardRouter::ShardRouter(const WebGraph& graph, uint32_t num_shards)
    : graph_(&graph), num_shards_(std::max(1u, num_shards)) {
  host_shard_.reserve(graph.num_hosts());
  for (uint32_t h = 0; h < graph.num_hosts(); ++h) {
    host_shard_.push_back(ShardOfHostName(graph.HostName(h), num_shards_));
  }
}

ShardFrontier::ShardFrontier(int num_levels)
    : levels_(static_cast<size_t>(std::max(1, num_levels))) {}

void ShardFrontier::Push(PageId url, int priority, uint64_t seq) {
  const int level = std::clamp(priority, 0, num_levels() - 1);
  levels_[level].push_back(Entry{seq, url});
  ++size_;
  highest_nonempty_ = std::max(highest_nonempty_, level);
}

std::optional<ShardFrontier::Head> ShardFrontier::PeekHead() const {
  if (size_ == 0) return std::nullopt;
  int level = highest_nonempty_;
  while (levels_[level].empty()) --level;
  const Entry& e = levels_[level].front();
  return Head{level, e.seq, e.url};
}

void ShardFrontier::PopHead() {
  while (levels_[highest_nonempty_].empty()) --highest_nonempty_;
  levels_[highest_nonempty_].pop_front();
  --size_;
  if (size_ == 0) highest_nonempty_ = -1;
}

void ShardFrontier::Save(snapshot::SectionWriter* w) const {
  w->U64(static_cast<uint64_t>(num_levels()));
  for (int level = num_levels() - 1; level >= 0; --level) {
    w->U64(levels_[level].size());
    for (const Entry& e : levels_[level]) {
      w->U64(e.seq);
      w->U32(e.url);
    }
  }
}

Status ShardFrontier::Restore(snapshot::SectionReader* r) {
  const uint64_t saved_levels = r->U64();
  if (r->status().ok() &&
      saved_levels != static_cast<uint64_t>(num_levels())) {
    return Status::FailedPrecondition(
        "shard frontier has " + std::to_string(saved_levels) +
        " levels in the snapshot but " + std::to_string(num_levels()) +
        " in this run");
  }
  for (auto& level : levels_) level.clear();
  size_ = 0;
  highest_nonempty_ = -1;
  for (int level = num_levels() - 1; level >= 0; --level) {
    const uint64_t count = r->U64();
    if (!r->status().ok()) break;
    for (uint64_t i = 0; i < count; ++i) {
      const uint64_t seq = r->U64();
      const PageId url = r->U32();
      if (!r->status().ok()) break;
      levels_[level].push_back(Entry{seq, url});
      ++size_;
      highest_nonempty_ = std::max(highest_nonempty_, level);
    }
  }
  return r->status();
}

}  // namespace lswc
