#include "core/scorer.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/random.h"
#include "util/string_util.h"

namespace lswc {

namespace {

// All scorers map into [0, 1] using integer bit ops and plain
// arithmetic only, so scores are bit-identical on every platform (libm
// log/exp are not guaranteed to round identically across libcs, and a
// one-ulp difference would flip a top-K selection and break the pinned
// series hashes).

/// Integer log2 scaling: 0 -> 0, otherwise bit_width in (0, 64].
double BitScale(uint64_t value, uint64_t max_value) {
  if (max_value == 0) return 0.0;
  return static_cast<double>(std::bit_width(value)) /
         static_cast<double>(std::bit_width(max_value));
}

class LangScorer final : public Scorer {
 public:
  double Score(PageId /*url*/, const ScoreInputs& inputs) const override {
    return inputs.parent_relevant ? inputs.parent_confidence : 0.0;
  }
  std::string name() const override { return "lang"; }
};

class ParentScorer final : public Scorer {
 public:
  double Score(PageId /*url*/, const ScoreInputs& inputs) const override {
    if (inputs.parent_relevant) return 1.0;
    return 1.0 / (2.0 + static_cast<double>(inputs.annotation));
  }
  std::string name() const override { return "parent"; }
};

class IndegreeScorer final : public Scorer {
 public:
  explicit IndegreeScorer(const WebGraph& graph)
      : indegree_(graph.num_pages(), 0) {
    for (PageId p = 0; p < graph.num_pages(); ++p) {
      for (PageId target : graph.outlinks(p)) ++indegree_[target];
    }
    for (uint32_t d : indegree_) max_indegree_ = std::max<uint64_t>(max_indegree_, d);
  }

  double Score(PageId url, const ScoreInputs& /*inputs*/) const override {
    return BitScale(indegree_[url], max_indegree_);
  }
  std::string name() const override { return "indegree"; }

 private:
  std::vector<uint32_t> indegree_;
  uint64_t max_indegree_ = 0;
};

/// Synthetic web spaces have flat URLs ("/", "/p<k>.html"), so the
/// page's index within its host is the depth proxy: the host root
/// scores 1, later pages decay with the bit-width of their index.
class DepthScorer final : public Scorer {
 public:
  explicit DepthScorer(const WebGraph* graph) : graph_(graph) {}

  double Score(PageId url, const ScoreInputs& /*inputs*/) const override {
    const uint32_t index = graph_->PageIndexInHost(url);
    return 1.0 / (1.0 + static_cast<double>(std::bit_width(index)));
  }
  std::string name() const override { return "depth"; }

 private:
  const WebGraph* graph_;
};

class RandomScorer final : public Scorer {
 public:
  explicit RandomScorer(uint64_t seed) : seed_(seed) {}

  double Score(PageId url, const ScoreInputs& /*inputs*/) const override {
    const uint64_t mixed = Mix64(seed_ ^ (uint64_t{url} + 1));
    return static_cast<double>(mixed >> 11) * 0x1.0p-53;
  }
  std::string name() const override { return "random"; }

 private:
  uint64_t seed_;
};

class CompositeScorer final : public Scorer {
 public:
  CompositeScorer(std::string spec,
                  std::vector<std::pair<std::unique_ptr<Scorer>, double>>
                      parts)
      : spec_(std::move(spec)), parts_(std::move(parts)) {}

  double Score(PageId url, const ScoreInputs& inputs) const override {
    double total = 0.0;
    for (const auto& [scorer, weight] : parts_) {
      total += weight * scorer->Score(url, inputs);
    }
    return total;
  }
  std::string name() const override { return spec_; }

  void ScoreComponents(PageId url, const ScoreInputs& inputs,
                       std::vector<ScoreComponent>* out) const override {
    for (const auto& [scorer, weight] : parts_) {
      const double raw = scorer->Score(url, inputs);
      out->push_back(ScoreComponent{scorer->name(), weight * raw, raw});
    }
  }

 private:
  std::string spec_;
  std::vector<std::pair<std::unique_ptr<Scorer>, double>> parts_;
};

std::string JoinNames(const std::vector<std::string>& names) {
  std::string joined;
  for (const std::string& name : names) {
    if (!joined.empty()) joined += ", ";
    joined += name;
  }
  return joined;
}

}  // namespace

ScorerRegistry::ScorerRegistry() {
  Register("lang", [](const ScorerEnv&) -> StatusOr<std::unique_ptr<Scorer>> {
    return std::unique_ptr<Scorer>(new LangScorer());
  });
  Register("parent",
           [](const ScorerEnv&) -> StatusOr<std::unique_ptr<Scorer>> {
             return std::unique_ptr<Scorer>(new ParentScorer());
           });
  Register("indegree",
           [](const ScorerEnv& env) -> StatusOr<std::unique_ptr<Scorer>> {
             if (env.graph == nullptr) {
               return Status::InvalidArgument(
                   "scorer 'indegree' needs a web graph in its environment");
             }
             return std::unique_ptr<Scorer>(new IndegreeScorer(*env.graph));
           });
  Register("depth",
           [](const ScorerEnv& env) -> StatusOr<std::unique_ptr<Scorer>> {
             if (env.graph == nullptr) {
               return Status::InvalidArgument(
                   "scorer 'depth' needs a web graph in its environment");
             }
             return std::unique_ptr<Scorer>(new DepthScorer(env.graph));
           });
  Register("random",
           [](const ScorerEnv& env) -> StatusOr<std::unique_ptr<Scorer>> {
             return std::unique_ptr<Scorer>(new RandomScorer(env.seed));
           });
}

ScorerRegistry& ScorerRegistry::Global() {
  static ScorerRegistry* registry = new ScorerRegistry();
  return *registry;
}

void ScorerRegistry::Register(const std::string& name,
                              ScorerFactory factory) {
  for (auto& [existing, existing_factory] : factories_) {
    if (existing == name) {
      existing_factory = std::move(factory);
      return;
    }
  }
  factories_.emplace_back(name, std::move(factory));
}

StatusOr<std::unique_ptr<Scorer>> ScorerRegistry::Make(
    const std::string& name, const ScorerEnv& env) const {
  for (const auto& [registered, factory] : factories_) {
    if (registered == name) return factory(env);
  }
  return Status::InvalidArgument("unknown scorer '" + name +
                                 "'; registered scorers: " +
                                 JoinNames(names()));
}

std::vector<std::string> ScorerRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) out.push_back(name);
  std::sort(out.begin(), out.end());
  return out;
}

StatusOr<std::unique_ptr<Scorer>> MakeCompositeScorer(const std::string& spec,
                                                      const ScorerEnv& env) {
  if (spec.empty()) {
    return Status::InvalidArgument(
        "scorer spec is empty; expected \"name[:weight],...\" over: " +
        JoinNames(ScorerRegistry::Global().names()));
  }
  std::vector<std::pair<std::unique_ptr<Scorer>, double>> parts;
  for (const std::string_view token : Split(spec, ',')) {
    if (token.empty()) {
      return Status::InvalidArgument("scorer spec '" + spec +
                                     "' has an empty entry");
    }
    const size_t colon = token.find(':');
    const std::string name(token.substr(0, colon));
    double weight = 1.0;
    if (colon != std::string_view::npos) {
      const std::string_view weight_str = token.substr(colon + 1);
      const auto parsed = ParseDouble(weight_str);
      if (!parsed) {
        return Status::InvalidArgument(
            "scorer '" + name + "' has an unparsable weight '" +
            std::string(weight_str) + "' in spec '" + spec + "'");
      }
      weight = *parsed;
    }
    auto scorer = ScorerRegistry::Global().Make(name, env);
    if (!scorer.ok()) return scorer.status();
    parts.emplace_back(std::move(scorer).value(), weight);
  }
  return std::unique_ptr<Scorer>(
      new CompositeScorer(spec, std::move(parts)));
}

}  // namespace lswc
