#include "core/virtual_web.h"

#include "webgraph/content_gen.h"

namespace lswc {

VirtualWebSpace::VirtualWebSpace(const WebGraph* graph, LinkDb* link_db,
                                 RenderMode render_mode)
    : graph_(graph), link_db_(link_db), render_mode_(render_mode) {}

Status VirtualWebSpace::Fetch(PageId id, FetchResponse* out) {
  if (id >= graph_->num_pages()) {
    return Status::NotFound("URL not in the crawl log");
  }
  ++fetch_count_;
  const PageRecord& rec = graph_->page(id);
  out->page = id;
  out->http_status = rec.http_status;
  out->meta_charset = rec.meta_charset;
  out->true_language = rec.language;
  out->true_encoding = rec.true_encoding;
  out->body.clear();
  out->outlinks.clear();
  if (!rec.ok()) return Status::OK();

  LSWC_RETURN_IF_ERROR(link_db_->GetOutlinks(id, &out->outlinks));
  switch (render_mode_) {
    case RenderMode::kNone:
      break;
    case RenderMode::kHead: {
      auto head = RenderPageHead(*graph_, id);
      if (!head.ok()) return head.status();
      out->body = std::move(head).value();
      break;
    }
    case RenderMode::kFull: {
      auto body = RenderPageBody(*graph_, id);
      if (!body.ok()) return body.status();
      out->body = std::move(body).value();
      break;
    }
  }
  return Status::OK();
}

}  // namespace lswc
