#include "core/visitor.h"

#include "charset/codec.h"
#include "html/link_extractor.h"
#include "obs/stage_profiler.h"

namespace lswc {

Visitor::Visitor(VirtualWebSpace* web, Classifier* classifier,
                 bool parse_html)
    : web_(web), classifier_(classifier), parse_html_(parse_html) {}

Status Visitor::Visit(PageId id, VisitResult* out) {
  ++visit_count_;
  out->links.clear();
  {
    obs::ScopedStage stage(profiler_, obs::Stage::kFetch);
    LSWC_RETURN_IF_ERROR(web_->Fetch(id, &out->response));
  }
  {
    obs::ScopedStage stage(profiler_, obs::Stage::kClassify);
    out->judgment = classifier_->Judge(out->response);
  }
  if (!out->response.ok()) return Status::OK();

  obs::ScopedStage stage(profiler_, obs::Stage::kExtract);
  if (parse_html_) {
    if (web_->render_mode() != RenderMode::kFull) {
      return Status::FailedPrecondition(
          "parse_html requires RenderMode::kFull");
    }
    return ExtractFromHtml(*out, &out->links);
  }
  out->links = out->response.outlinks;
  return Status::OK();
}

Status Visitor::ExtractFromHtml(const VisitResult& result,
                                std::vector<PageId>* links) {
  // Decode using the encoding the crawler *believes* the page uses (the
  // classifier's verdict, falling back to the declared charset), then
  // re-encode to UTF-8 for parsing. Undecodable bytes fall back to raw
  // parsing — markup is ASCII-compatible in every supported encoding
  // except ISO-2022-JP, and for those the detector is reliable.
  const FetchResponse& response = result.response;
  std::string utf8;
  Encoding believed = result.judgment.encoding;
  if (believed == Encoding::kUnknown) believed = response.meta_charset;
  bool decoded = false;
  if (believed != Encoding::kUnknown) {
    auto text = DecodeText(believed, response.body);
    if (text.ok()) {
      utf8 = EncodeUtf8(*text);
      decoded = true;
    }
  }
  const std::string_view html = decoded ? utf8 : response.body;

  const std::string page_url = web_->graph().UrlOf(response.page);
  LinkExtractorOptions options;
  options.collect_anchor_text = false;
  for (const ExtractedLink& link : ExtractLinks(page_url, html, options)) {
    PageId child;
    if (web_->graph().ResolveUrl(link.url, &child)) {
      links->push_back(child);
    } else {
      ++unresolved_links_;
    }
  }
  return Status::OK();
}

}  // namespace lswc
