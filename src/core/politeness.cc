#include "core/politeness.h"
#include <algorithm>

#include <queue>
#include <vector>

#include "core/host_frontier.h"
#include "core/metrics.h"
#include "core/visitor.h"

namespace lswc {

uint64_t EstimateTransferBytes(const PageRecord& record) {
  if (!record.ok()) return 512;  // Error page + headers.
  double bytes_per_char = 1.0;
  switch (record.true_encoding) {
    case Encoding::kEucJp:
    case Encoding::kShiftJis:
      bytes_per_char = 2.0;
      break;
    case Encoding::kIso2022Jp:
      bytes_per_char = 2.2;  // Pairs plus escape overhead.
      break;
    case Encoding::kUtf8:
      bytes_per_char = 2.4;  // CJK/Thai text is 3 bytes/char, ASCII 1.
      break;
    default:
      bytes_per_char = 1.0;
      break;
  }
  // Markup skeleton + anchors dominate small pages.
  return 600 + static_cast<uint64_t>(record.content_chars * bytes_per_char);
}

PolitenessSimulator::PolitenessSimulator(VirtualWebSpace* web,
                                         Classifier* classifier,
                                         const CrawlStrategy* strategy,
                                         PolitenessOptions options)
    : web_(web),
      classifier_(classifier),
      strategy_(strategy),
      options_(options) {}

StatusOr<PolitenessResult> PolitenessSimulator::Run() {
  const WebGraph& graph = web_->graph();
  const size_t num_pages = graph.num_pages();
  if (graph.seeds().empty()) {
    return Status::FailedPrecondition("graph has no seed URLs");
  }
  if (options_.num_connections <= 0 || options_.bandwidth_bytes_per_sec <= 0) {
    return Status::InvalidArgument("bad politeness options");
  }

  // Per-server queues (the component the paper's first simulator
  // omitted): URLs wait in their host's queue, hosts become eligible as
  // their access interval elapses, and the scheduler always serves the
  // earliest-ready host. Strategy priorities order URLs within a host.
  HostFrontier frontier(static_cast<uint32_t>(graph.num_hosts()),
                        strategy_->num_priority_levels());
  Visitor visitor(web_, classifier_, /*parse_html=*/false);

  uint64_t sample_interval = options_.sample_interval;
  if (sample_interval == 0) {
    const uint64_t horizon =
        options_.max_pages != 0 ? options_.max_pages : num_pages;
    sample_interval = std::max<uint64_t>(1, horizon / 400);
  }
  const DatasetStats stats = graph.ComputeStats();
  MetricsRecorder metrics(stats.relevant_ok_pages, sample_interval);
  Series series("pages_crawled",
                {"sim_time_sec", "harvest_pct", "coverage_pct", "queue_size"});

  // Same lazy-decrease-key state as Simulator::Run (see simulator.cc).
  std::vector<bool> crawled(num_pages, false);
  std::vector<bool> enqueued(num_pages, false);
  std::vector<uint8_t> annotation(num_pages, 0);
  std::vector<int8_t> priority(num_pages, 0);

  for (PageId seed : graph.seeds()) {
    if (enqueued[seed]) continue;
    enqueued[seed] = true;
    priority[seed] = static_cast<int8_t>(strategy_->seed_priority());
    frontier.Push(seed, graph.page(seed).host, strategy_->seed_priority());
  }

  using Event = std::pair<double, PageId>;  // (finish time, url), min-heap.
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> active;

  double now = 0.0;
  double idle_slot_seconds = 0.0;
  const size_t slots = static_cast<size_t>(options_.num_connections);

  // Advances the clock, charging idle slot-time against the politeness
  // stall account.
  auto advance_to = [&](double t) {
    if (t <= now) return;
    idle_slot_seconds +=
        (t - now) * static_cast<double>(slots - active.size());
    now = t;
  };

  VisitResult visit;
  while (true) {
    if (options_.max_pages != 0 &&
        metrics.pages_crawled() >= options_.max_pages) {
      break;
    }
    if (options_.max_sim_time_sec > 0 && now >= options_.max_sim_time_sec) {
      break;
    }

    // Fill idle slots with URLs whose hosts are ready now.
    while (active.size() < slots) {
      const auto next = frontier.PopReady(now);
      if (!next.has_value()) break;
      const PageId url = *next;
      if (crawled[url]) continue;  // Stale duplicate from a re-push.
      const uint32_t host = graph.page(url).host;
      frontier.SetHostNextFree(host,
                               now + options_.min_access_interval_sec);
      const double transfer =
          options_.base_latency_sec +
          static_cast<double>(EstimateTransferBytes(graph.page(url))) /
              options_.bandwidth_bytes_per_sec;
      active.emplace(now + transfer, url);
    }

    if (active.empty()) {
      const auto next_ready = frontier.NextReadyTime();
      if (!next_ready.has_value()) break;  // Truly done.
      advance_to(*next_ready);
      continue;
    }

    // Complete the earliest in-flight fetch.
    const auto [finish, url] = active.top();
    active.pop();
    advance_to(finish);
    if (crawled[url]) continue;
    crawled[url] = true;

    LSWC_RETURN_IF_ERROR(visitor.Visit(url, &visit));
    const bool ok = visit.response.ok();
    if (ok) {
      const ParentInfo parent{url, visit.judgment.relevant, annotation[url]};
      for (PageId child : visit.links) {
        if (crawled[child]) continue;
        const LinkDecision d = strategy_->OnLink(parent, child);
        if (!d.enqueue) continue;
        const bool better = !enqueued[child] ||
                            d.annotation < annotation[child] ||
                            d.priority > priority[child];
        if (!better) continue;
        enqueued[child] = true;
        annotation[child] = d.annotation;
        priority[child] = static_cast<int8_t>(d.priority);
        frontier.Push(child, graph.page(child).host, d.priority);
      }
    }
    metrics.OnPageCrawled(ok, graph.IsRelevant(url), visit.judgment.relevant,
                          frontier.size());
    if (metrics.pages_crawled() % sample_interval == 0) {
      series.AddRow(static_cast<double>(metrics.pages_crawled()),
                    {now, metrics.harvest_pct(), metrics.coverage_pct(),
                     static_cast<double>(frontier.size())});
    }
  }
  metrics.Finish(frontier.size());
  series.AddRow(static_cast<double>(metrics.pages_crawled()),
                {now, metrics.harvest_pct(), metrics.coverage_pct(),
                 static_cast<double>(frontier.size())});

  PolitenessResult result{PolitenessSummary{}, series};
  result.summary.pages_crawled = metrics.pages_crawled();
  result.summary.relevant_crawled = metrics.relevant_crawled();
  result.summary.sim_time_sec = now;
  result.summary.pages_per_sec =
      now > 0 ? static_cast<double>(metrics.pages_crawled()) / now : 0.0;
  result.summary.politeness_stall_fraction =
      now > 0 ? idle_slot_seconds / (now * static_cast<double>(slots)) : 0.0;
  result.summary.max_queue_size = frontier.max_size_seen();
  result.summary.final_harvest_pct = metrics.harvest_pct();
  result.summary.final_coverage_pct = metrics.coverage_pct();
  return result;
}

}  // namespace lswc
