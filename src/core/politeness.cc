#include "core/politeness.h"

#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include <cmath>

#include "core/checkpoint.h"
#include "core/crawl_engine.h"
#include "core/host_frontier.h"
#include "core/metrics.h"
#include "core/obs_observers.h"
#include "core/telemetry_publisher.h"
#include "obs/run_obs.h"
#include "snapshot/series_io.h"

namespace lswc {

uint64_t EstimateTransferBytes(const PageRecord& record) {
  if (!record.ok()) return 512;  // Error page + headers.
  double bytes_per_char = 1.0;
  switch (record.true_encoding) {
    case Encoding::kEucJp:
    case Encoding::kShiftJis:
      bytes_per_char = 2.0;
      break;
    case Encoding::kIso2022Jp:
      bytes_per_char = 2.2;  // Pairs plus escape overhead.
      break;
    case Encoding::kUtf8:
      bytes_per_char = 2.4;  // CJK/Thai text is 3 bytes/char, ASCII 1.
      break;
    default:
      bytes_per_char = 1.0;
      break;
  }
  // Markup skeleton + anchors dominate small pages.
  return 600 + static_cast<uint64_t>(record.content_chars * bytes_per_char);
}

namespace {

/// The event-driven half of the politeness simulator behind the engine's
/// scheduler port: per-server queues (the component the paper's first
/// simulator omitted — URLs wait in their host's queue, hosts become
/// eligible as their access interval elapses, the scheduler always
/// serves the earliest-ready host), `num_connections` in-flight fetch
/// slots, and the simulated clock. Strategy priorities order URLs within
/// a host; the crawl loop itself lives in CrawlEngine.
class PolitenessScheduler final : public FrontierScheduler {
 public:
  PolitenessScheduler(const WebGraph* graph, int num_levels,
                      const PolitenessOptions& options)
      : graph_(graph),
        options_(options),
        frontier_(static_cast<uint32_t>(graph->num_hosts()), num_levels),
        slots_(static_cast<size_t>(options.num_connections)) {}

  /// Exports the host frontier's scheduling metrics and the simulated
  /// per-fetch latency histogram into `registry` (may be null).
  void AttachObs(obs::MetricsRegistry* registry) {
    if (registry == nullptr) return;
    frontier_.AttachObs(registry);
    obs_fetch_latency_us_ = registry->histogram("politeness.fetch_latency_us");
  }

  void Push(PageId url, int priority) override {
    frontier_.Push(url, graph_->page(url).host, priority);
  }

  std::optional<PageId> Next(const CrawlState& state) override {
    while (true) {
      // Fill idle slots with URLs whose hosts are ready now.
      while (active_.size() < slots_) {
        const auto next = frontier_.PopReady(now_);
        if (!next.has_value()) break;
        const PageId url = *next;
        if (state.crawled(url)) continue;  // Stale duplicate from a re-push.
        const uint32_t host = graph_->page(url).host;
        frontier_.SetHostNextFree(host,
                                  now_ + options_.min_access_interval_sec);
        const double transfer =
            options_.base_latency_sec +
            static_cast<double>(EstimateTransferBytes(graph_->page(url))) /
                options_.bandwidth_bytes_per_sec;
        if (obs_fetch_latency_us_ != nullptr) {
          // Simulated ticks (µs of simulated time), not wall time —
          // deterministic like everything else in the registry.
          obs_fetch_latency_us_->Record(
              static_cast<uint64_t>(std::llround(transfer * 1e6)));
        }
        active_.emplace(now_ + transfer, url);
      }

      if (active_.empty()) {
        const auto next_ready = frontier_.NextReadyTime();
        if (!next_ready.has_value()) return std::nullopt;  // Truly done.
        AdvanceTo(*next_ready);
        continue;
      }

      // Complete the earliest in-flight fetch; the engine skips the URL
      // if a duplicate of it already finished.
      const auto [finish, url] = active_.top();
      active_.pop();
      AdvanceTo(finish);
      return url;
    }
  }

  size_t size() const override { return frontier_.size(); }

  bool StopRequested() const override {
    return options_.max_sim_time_sec > 0 && now_ >= options_.max_sim_time_sec;
  }

  double now() const { return now_; }
  double idle_slot_seconds() const { return idle_slot_seconds_; }
  size_t max_size_seen() const { return frontier_.max_size_seen(); }
  size_t slots() const { return slots_; }

  /// Includes the driver's timed series in this scheduler's snapshot
  /// payload (the series lives in the driver, but its rows are part of
  /// the politeness run state).
  void RegisterTimedSeries(Series* series) { timed_series_ = series; }

  std::string SnapshotKind() const override { return "politeness"; }

  Status SaveState(snapshot::SectionWriter* w) const override {
    // Timing parameters: a resume under different politeness timing
    // would silently produce a different schedule.
    w->U64(slots_);
    w->F64(options_.base_latency_sec);
    w->F64(options_.bandwidth_bytes_per_sec);
    w->F64(options_.min_access_interval_sec);
    w->F64(now_);
    w->F64(idle_slot_seconds_);
    // In-flight fetches, earliest finish first (copy-and-drain: the
    // priority queue has no iteration order of its own).
    auto active = active_;
    w->U64(active.size());
    while (!active.empty()) {
      w->F64(active.top().first);
      w->U32(active.top().second);
      active.pop();
    }
    LSWC_RETURN_IF_ERROR(frontier_.Save(w));
    w->U8(timed_series_ != nullptr ? 1 : 0);
    if (timed_series_ != nullptr) {
      snapshot::SaveSeries(*timed_series_, w);
    }
    return Status::OK();
  }

  Status RestoreState(snapshot::SectionReader* r) override {
    const uint64_t saved_slots = r->U64();
    const double base_latency = r->F64();
    const double bandwidth = r->F64();
    const double min_interval = r->F64();
    const double now = r->F64();
    const double idle_slot_seconds = r->F64();
    LSWC_RETURN_IF_ERROR(r->status());
    if (saved_slots != slots_ || base_latency != options_.base_latency_sec ||
        bandwidth != options_.bandwidth_bytes_per_sec ||
        min_interval != options_.min_access_interval_sec) {
      return Status::FailedPrecondition(
          "snapshot politeness timing parameters do not match this run");
    }
    const uint64_t active_count = r->U64();
    LSWC_RETURN_IF_ERROR(r->status());
    if (active_count > slots_) {
      return Status::Corruption("snapshot has more in-flight fetches than "
                                "connection slots");
    }
    std::vector<Event> events;
    events.reserve(static_cast<size_t>(active_count));
    for (uint64_t i = 0; i < active_count; ++i) {
      const double finish = r->F64();
      const PageId url = r->U32();
      events.emplace_back(finish, url);
    }
    LSWC_RETURN_IF_ERROR(r->status());
    LSWC_RETURN_IF_ERROR(frontier_.Restore(r));
    const bool has_series = r->U8() != 0;
    LSWC_RETURN_IF_ERROR(r->status());
    if (has_series) {
      if (timed_series_ == nullptr) {
        return Status::FailedPrecondition(
            "snapshot carries a timed series but none is registered");
      }
      LSWC_RETURN_IF_ERROR(snapshot::LoadSeriesInto(r, timed_series_));
    }
    active_ = {};
    for (const Event& e : events) active_.push(e);
    now_ = now;
    idle_slot_seconds_ = idle_slot_seconds;
    return Status::OK();
  }

 private:
  using Event = std::pair<double, PageId>;  // (finish time, url), min-heap.

  /// Advances the clock, charging idle slot-time against the politeness
  /// stall account.
  void AdvanceTo(double t) {
    if (t <= now_) return;
    idle_slot_seconds_ +=
        (t - now_) * static_cast<double>(slots_ - active_.size());
    now_ = t;
  }

  const WebGraph* graph_;
  const PolitenessOptions& options_;
  HostFrontier frontier_;
  const size_t slots_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> active_;
  double now_ = 0.0;
  double idle_slot_seconds_ = 0.0;
  Series* timed_series_ = nullptr;
  obs::Histogram* obs_fetch_latency_us_ = nullptr;
};

/// Observer that extends the engine's metric samples with the simulated
/// clock: one row per sampling point in the politeness result series.
class TimedSeriesObserver final : public CrawlObserver {
 public:
  TimedSeriesObserver(Series* series, const PolitenessScheduler* scheduler,
                      const MetricsRecorder* metrics)
      : series_(series), scheduler_(scheduler), metrics_(metrics) {}

  void OnSample(const SampleEvent& event) override {
    // The driver appends the final row unconditionally; skip the tail
    // sample to avoid doubling it.
    if (event.is_final) return;
    series_->AddRow(static_cast<double>(event.pages_crawled),
                    {scheduler_->now(), metrics_->harvest_pct(),
                     metrics_->coverage_pct(),
                     static_cast<double>(event.frontier_size)});
  }

 private:
  Series* series_;
  const PolitenessScheduler* scheduler_;
  const MetricsRecorder* metrics_;
};

}  // namespace

PolitenessSimulator::PolitenessSimulator(VirtualWebSpace* web,
                                         Classifier* classifier,
                                         const CrawlStrategy* strategy,
                                         PolitenessOptions options)
    : web_(web),
      classifier_(classifier),
      strategy_(strategy),
      options_(options) {}

StatusOr<PolitenessResult> PolitenessSimulator::Run() {
  if (options_.num_connections <= 0 || options_.bandwidth_bytes_per_sec <= 0) {
    return Status::InvalidArgument("bad politeness options");
  }
  PolitenessScheduler scheduler(&web_->graph(),
                                strategy_->num_priority_levels(), options_);

  obs::RunObs* obs =
      options_.obs != nullptr && options_.obs->enabled ? options_.obs
                                                       : nullptr;
  if (obs != nullptr) scheduler.AttachObs(&obs->registry);
  CrawlEngineOptions engine_options;
  engine_options.max_pages = options_.max_pages;
  engine_options.sample_interval = options_.sample_interval;
  engine_options.obs = obs;
  engine_options.journal = options_.journal;
  CrawlEngine engine(web_, classifier_, strategy_, &scheduler,
                     engine_options);
  Series series("pages_crawled",
                {"sim_time_sec", "harvest_pct", "coverage_pct", "queue_size"});
  scheduler.RegisterTimedSeries(&series);
  TimedSeriesObserver series_observer(&series, &scheduler, &engine.metrics());
  engine.AddObserver(&series_observer);
  std::unique_ptr<TraceEventObserver> trace_events;
  if (obs != nullptr && obs->trace != nullptr) {
    trace_events = std::make_unique<TraceEventObserver>(obs->trace.get());
    engine.AddObserver(trace_events.get());
  }
  std::unique_ptr<TelemetryPublisher> publisher;
  if (options_.telemetry != nullptr ||
      (obs != nullptr && options_.progress_every != 0)) {
    TelemetryPublisher::Options pub;
    pub.telemetry = options_.telemetry;
    pub.run_label = !options_.run_label.empty() ? options_.run_label
                    : options_.snapshot_label.empty() ? "crawl"
                                                      : options_.snapshot_label;
    pub.phase = "politeness";
    pub.metrics = &engine.metrics();
    pub.obs = obs;
    pub.progress_every = obs != nullptr ? options_.progress_every : 0;
    publisher = std::make_unique<TelemetryPublisher>(std::move(pub));
    engine.AddObserver(publisher.get());
  }
  for (CrawlObserver* observer : options_.observers) {
    engine.AddObserver(observer);
  }
  std::unique_ptr<CheckpointObserver> checkpoint;
  if (options_.checkpoint_every_pages != 0) {
    if (options_.snapshot_dir.empty()) {
      return Status::InvalidArgument(
          "checkpoint_every_pages requires snapshot_dir");
    }
    const std::string label = SanitizeSnapshotLabel(
        options_.snapshot_label.empty() ? "crawl" : options_.snapshot_label);
    checkpoint = std::make_unique<CheckpointObserver>(
        &engine, options_.checkpoint_every_pages,
        options_.snapshot_dir + "/" + label + ".snap");
    checkpoint->AttachObs(obs);
    engine.AddObserver(checkpoint.get());
  }
  if (!options_.resume_path.empty()) {
    LSWC_RETURN_IF_ERROR(engine.ResumeFromSnapshot(options_.resume_path));
  }
  LSWC_RETURN_IF_ERROR(engine.Run());
  if (publisher != nullptr) publisher->PublishFinal();
  if (checkpoint != nullptr) {
    LSWC_RETURN_IF_ERROR(checkpoint->status());
  }

  const MetricsRecorder& metrics = engine.metrics();
  const double now = scheduler.now();
  series.AddRow(static_cast<double>(metrics.pages_crawled()),
                {now, metrics.harvest_pct(), metrics.coverage_pct(),
                 static_cast<double>(scheduler.size())});

  PolitenessResult result{PolitenessSummary{}, std::move(series)};
  result.summary.pages_crawled = metrics.pages_crawled();
  result.summary.relevant_crawled = metrics.relevant_crawled();
  result.summary.sim_time_sec = now;
  result.summary.pages_per_sec =
      now > 0 ? static_cast<double>(metrics.pages_crawled()) / now : 0.0;
  result.summary.politeness_stall_fraction =
      now > 0 ? scheduler.idle_slot_seconds() /
                    (now * static_cast<double>(scheduler.slots()))
              : 0.0;
  result.summary.max_queue_size = scheduler.max_size_seen();
  result.summary.final_harvest_pct = metrics.harvest_pct();
  result.summary.final_coverage_pct = metrics.coverage_pct();
  return result;
}

}  // namespace lswc
