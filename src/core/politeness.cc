#include "core/politeness.h"

#include <queue>
#include <utility>
#include <vector>

#include "core/crawl_engine.h"
#include "core/host_frontier.h"
#include "core/metrics.h"

namespace lswc {

uint64_t EstimateTransferBytes(const PageRecord& record) {
  if (!record.ok()) return 512;  // Error page + headers.
  double bytes_per_char = 1.0;
  switch (record.true_encoding) {
    case Encoding::kEucJp:
    case Encoding::kShiftJis:
      bytes_per_char = 2.0;
      break;
    case Encoding::kIso2022Jp:
      bytes_per_char = 2.2;  // Pairs plus escape overhead.
      break;
    case Encoding::kUtf8:
      bytes_per_char = 2.4;  // CJK/Thai text is 3 bytes/char, ASCII 1.
      break;
    default:
      bytes_per_char = 1.0;
      break;
  }
  // Markup skeleton + anchors dominate small pages.
  return 600 + static_cast<uint64_t>(record.content_chars * bytes_per_char);
}

namespace {

/// The event-driven half of the politeness simulator behind the engine's
/// scheduler port: per-server queues (the component the paper's first
/// simulator omitted — URLs wait in their host's queue, hosts become
/// eligible as their access interval elapses, the scheduler always
/// serves the earliest-ready host), `num_connections` in-flight fetch
/// slots, and the simulated clock. Strategy priorities order URLs within
/// a host; the crawl loop itself lives in CrawlEngine.
class PolitenessScheduler final : public FrontierScheduler {
 public:
  PolitenessScheduler(const WebGraph* graph, int num_levels,
                      const PolitenessOptions& options)
      : graph_(graph),
        options_(options),
        frontier_(static_cast<uint32_t>(graph->num_hosts()), num_levels),
        slots_(static_cast<size_t>(options.num_connections)) {}

  void Push(PageId url, int priority) override {
    frontier_.Push(url, graph_->page(url).host, priority);
  }

  std::optional<PageId> Next(const CrawlState& state) override {
    while (true) {
      // Fill idle slots with URLs whose hosts are ready now.
      while (active_.size() < slots_) {
        const auto next = frontier_.PopReady(now_);
        if (!next.has_value()) break;
        const PageId url = *next;
        if (state.crawled(url)) continue;  // Stale duplicate from a re-push.
        const uint32_t host = graph_->page(url).host;
        frontier_.SetHostNextFree(host,
                                  now_ + options_.min_access_interval_sec);
        const double transfer =
            options_.base_latency_sec +
            static_cast<double>(EstimateTransferBytes(graph_->page(url))) /
                options_.bandwidth_bytes_per_sec;
        active_.emplace(now_ + transfer, url);
      }

      if (active_.empty()) {
        const auto next_ready = frontier_.NextReadyTime();
        if (!next_ready.has_value()) return std::nullopt;  // Truly done.
        AdvanceTo(*next_ready);
        continue;
      }

      // Complete the earliest in-flight fetch; the engine skips the URL
      // if a duplicate of it already finished.
      const auto [finish, url] = active_.top();
      active_.pop();
      AdvanceTo(finish);
      return url;
    }
  }

  size_t size() const override { return frontier_.size(); }

  bool StopRequested() const override {
    return options_.max_sim_time_sec > 0 && now_ >= options_.max_sim_time_sec;
  }

  double now() const { return now_; }
  double idle_slot_seconds() const { return idle_slot_seconds_; }
  size_t max_size_seen() const { return frontier_.max_size_seen(); }
  size_t slots() const { return slots_; }

 private:
  using Event = std::pair<double, PageId>;  // (finish time, url), min-heap.

  /// Advances the clock, charging idle slot-time against the politeness
  /// stall account.
  void AdvanceTo(double t) {
    if (t <= now_) return;
    idle_slot_seconds_ +=
        (t - now_) * static_cast<double>(slots_ - active_.size());
    now_ = t;
  }

  const WebGraph* graph_;
  const PolitenessOptions& options_;
  HostFrontier frontier_;
  const size_t slots_;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> active_;
  double now_ = 0.0;
  double idle_slot_seconds_ = 0.0;
};

/// Observer that extends the engine's metric samples with the simulated
/// clock: one row per sampling point in the politeness result series.
class TimedSeriesObserver final : public CrawlObserver {
 public:
  TimedSeriesObserver(Series* series, const PolitenessScheduler* scheduler,
                      const MetricsRecorder* metrics)
      : series_(series), scheduler_(scheduler), metrics_(metrics) {}

  void OnSample(const SampleEvent& event) override {
    // The driver appends the final row unconditionally; skip the tail
    // sample to avoid doubling it.
    if (event.is_final) return;
    series_->AddRow(static_cast<double>(event.pages_crawled),
                    {scheduler_->now(), metrics_->harvest_pct(),
                     metrics_->coverage_pct(),
                     static_cast<double>(event.frontier_size)});
  }

 private:
  Series* series_;
  const PolitenessScheduler* scheduler_;
  const MetricsRecorder* metrics_;
};

}  // namespace

PolitenessSimulator::PolitenessSimulator(VirtualWebSpace* web,
                                         Classifier* classifier,
                                         const CrawlStrategy* strategy,
                                         PolitenessOptions options)
    : web_(web),
      classifier_(classifier),
      strategy_(strategy),
      options_(options) {}

StatusOr<PolitenessResult> PolitenessSimulator::Run() {
  if (options_.num_connections <= 0 || options_.bandwidth_bytes_per_sec <= 0) {
    return Status::InvalidArgument("bad politeness options");
  }
  PolitenessScheduler scheduler(&web_->graph(),
                                strategy_->num_priority_levels(), options_);

  CrawlEngineOptions engine_options;
  engine_options.max_pages = options_.max_pages;
  engine_options.sample_interval = options_.sample_interval;
  CrawlEngine engine(web_, classifier_, strategy_, &scheduler,
                     engine_options);
  Series series("pages_crawled",
                {"sim_time_sec", "harvest_pct", "coverage_pct", "queue_size"});
  TimedSeriesObserver series_observer(&series, &scheduler, &engine.metrics());
  engine.AddObserver(&series_observer);
  for (CrawlObserver* observer : options_.observers) {
    engine.AddObserver(observer);
  }
  LSWC_RETURN_IF_ERROR(engine.Run());

  const MetricsRecorder& metrics = engine.metrics();
  const double now = scheduler.now();
  series.AddRow(static_cast<double>(metrics.pages_crawled()),
                {now, metrics.harvest_pct(), metrics.coverage_pct(),
                 static_cast<double>(scheduler.size())});

  PolitenessResult result{PolitenessSummary{}, std::move(series)};
  result.summary.pages_crawled = metrics.pages_crawled();
  result.summary.relevant_crawled = metrics.relevant_crawled();
  result.summary.sim_time_sec = now;
  result.summary.pages_per_sec =
      now > 0 ? static_cast<double>(metrics.pages_crawled()) / now : 0.0;
  result.summary.politeness_stall_fraction =
      now > 0 ? scheduler.idle_slot_seconds() /
                    (now * static_cast<double>(scheduler.slots()))
              : 0.0;
  result.summary.max_queue_size = scheduler.max_size_seen();
  result.summary.final_harvest_pct = metrics.harvest_pct();
  result.summary.final_coverage_pct = metrics.coverage_pct();
  return result;
}

}  // namespace lswc
