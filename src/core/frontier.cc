#include "core/frontier.h"

#include <algorithm>

#include "util/logging.h"

namespace lswc {

namespace {

// Shared level-list encoding for the bucket-style frontiers: a U32Vec
// per level, highest level first (the pop order, which makes snapshots
// easy to eyeball in a hex dump).
void SaveLevels(const std::vector<std::deque<PageId>>& levels,
                snapshot::SectionWriter* w) {
  w->U64(levels.size());
  for (auto it = levels.rbegin(); it != levels.rend(); ++it) {
    std::vector<uint32_t> ids(it->begin(), it->end());
    w->U32Vec(ids);
  }
}

Status RestoreLevels(snapshot::SectionReader* r, const std::string& kind,
                     std::vector<std::deque<PageId>>* levels, size_t* size,
                     int* highest_nonempty) {
  const uint64_t num_levels = r->U64();
  LSWC_RETURN_IF_ERROR(r->status());
  if (num_levels != levels->size()) {
    return Status::FailedPrecondition(
        "snapshot " + kind + " frontier has " + std::to_string(num_levels) +
        " levels but this run uses " + std::to_string(levels->size()));
  }
  std::vector<std::vector<uint32_t>> loaded(levels->size());
  for (size_t i = 0; i < levels->size(); ++i) {
    loaded[levels->size() - 1 - i] = r->U32Vec();
  }
  LSWC_RETURN_IF_ERROR(r->status());
  *size = 0;
  *highest_nonempty = -1;
  for (size_t level = 0; level < levels->size(); ++level) {
    (*levels)[level].assign(loaded[level].begin(), loaded[level].end());
    *size += loaded[level].size();
    if (!loaded[level].empty()) {
      *highest_nonempty = static_cast<int>(level);
    }
  }
  return Status::OK();
}

}  // namespace

void FifoFrontier::Push(PageId url, int priority) {
  (void)priority;  // Single level.
  queue_.push_back(url);
  max_size_ = std::max(max_size_, queue_.size());
}

std::optional<PageId> FifoFrontier::Pop() {
  if (queue_.empty()) return std::nullopt;
  const PageId url = queue_.front();
  queue_.pop_front();
  return url;
}

Status FifoFrontier::Save(snapshot::SectionWriter* w) const {
  w->U64(max_size_);
  std::vector<uint32_t> ids(queue_.begin(), queue_.end());
  w->U32Vec(ids);
  return Status::OK();
}

Status FifoFrontier::Restore(snapshot::SectionReader* r) {
  const uint64_t max_size = r->U64();
  const std::vector<uint32_t> ids = r->U32Vec();
  LSWC_RETURN_IF_ERROR(r->status());
  max_size_ = static_cast<size_t>(max_size);
  queue_.assign(ids.begin(), ids.end());
  return Status::OK();
}

BucketFrontier::BucketFrontier(int num_levels) {
  LSWC_CHECK_GT(num_levels, 0);
  levels_.resize(static_cast<size_t>(num_levels));
}

void BucketFrontier::Push(PageId url, int priority) {
  const int level = std::clamp(priority, 0, num_levels() - 1);
  levels_[level].push_back(url);
  ++size_;
  max_size_ = std::max(max_size_, size_);
  highest_nonempty_ = std::max(highest_nonempty_, level);
}

std::optional<PageId> BucketFrontier::Pop() {
  if (size_ == 0) return std::nullopt;
  while (highest_nonempty_ >= 0 && levels_[highest_nonempty_].empty()) {
    --highest_nonempty_;
  }
  LSWC_CHECK_GE(highest_nonempty_, 0);
  auto& level = levels_[highest_nonempty_];
  const PageId url = level.front();
  level.pop_front();
  --size_;
  return url;
}

Status BucketFrontier::Save(snapshot::SectionWriter* w) const {
  w->U64(max_size_);
  SaveLevels(levels_, w);
  return Status::OK();
}

Status BucketFrontier::Restore(snapshot::SectionReader* r) {
  const uint64_t max_size = r->U64();
  LSWC_RETURN_IF_ERROR(r->status());
  LSWC_RETURN_IF_ERROR(
      RestoreLevels(r, kind_name(), &levels_, &size_, &highest_nonempty_));
  max_size_ = static_cast<size_t>(max_size);
  return Status::OK();
}

BoundedFrontier::BoundedFrontier(int num_levels, size_t capacity)
    : capacity_(capacity) {
  LSWC_CHECK_GT(num_levels, 0);
  LSWC_CHECK_GT(capacity, 0u);
  levels_.resize(static_cast<size_t>(num_levels));
}

void BoundedFrontier::Push(PageId url, int priority) {
  const int level = std::clamp(priority, 0, num_levels() - 1);
  if (size_ >= capacity_) {
    // Shed the least promising URL: the newest entry of the lowest
    // non-empty level — unless the incoming URL itself is no better.
    int lowest = 0;
    while (lowest < num_levels() && levels_[lowest].empty()) ++lowest;
    ++dropped_;
    if (lowest >= num_levels() || level <= lowest) {
      return;  // Incoming URL is the victim.
    }
    levels_[lowest].pop_back();
    --size_;
  }
  levels_[level].push_back(url);
  ++size_;
  max_size_ = std::max(max_size_, size_);
  highest_nonempty_ = std::max(highest_nonempty_, level);
}

std::optional<PageId> BoundedFrontier::Pop() {
  if (size_ == 0) return std::nullopt;
  while (highest_nonempty_ >= 0 && levels_[highest_nonempty_].empty()) {
    --highest_nonempty_;
  }
  LSWC_CHECK_GE(highest_nonempty_, 0);
  auto& level = levels_[highest_nonempty_];
  const PageId url = level.front();
  level.pop_front();
  --size_;
  return url;
}

Status BoundedFrontier::Save(snapshot::SectionWriter* w) const {
  w->U64(capacity_);
  w->U64(max_size_);
  w->U64(dropped_);
  SaveLevels(levels_, w);
  return Status::OK();
}

Status BoundedFrontier::Restore(snapshot::SectionReader* r) {
  const uint64_t capacity = r->U64();
  const uint64_t max_size = r->U64();
  const uint64_t dropped = r->U64();
  LSWC_RETURN_IF_ERROR(r->status());
  if (capacity != capacity_) {
    return Status::FailedPrecondition(
        "snapshot bounded frontier capacity " + std::to_string(capacity) +
        " does not match this run's " + std::to_string(capacity_));
  }
  LSWC_RETURN_IF_ERROR(
      RestoreLevels(r, kind_name(), &levels_, &size_, &highest_nonempty_));
  max_size_ = static_cast<size_t>(max_size);
  dropped_ = dropped;
  return Status::OK();
}

}  // namespace lswc
