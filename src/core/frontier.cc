#include "core/frontier.h"

#include <algorithm>

#include "util/logging.h"

namespace lswc {

void FifoFrontier::Push(PageId url, int priority) {
  (void)priority;  // Single level.
  queue_.push_back(url);
  max_size_ = std::max(max_size_, queue_.size());
}

std::optional<PageId> FifoFrontier::Pop() {
  if (queue_.empty()) return std::nullopt;
  const PageId url = queue_.front();
  queue_.pop_front();
  return url;
}

BucketFrontier::BucketFrontier(int num_levels) {
  LSWC_CHECK_GT(num_levels, 0);
  levels_.resize(static_cast<size_t>(num_levels));
}

void BucketFrontier::Push(PageId url, int priority) {
  const int level = std::clamp(priority, 0, num_levels() - 1);
  levels_[level].push_back(url);
  ++size_;
  max_size_ = std::max(max_size_, size_);
  highest_nonempty_ = std::max(highest_nonempty_, level);
}

std::optional<PageId> BucketFrontier::Pop() {
  if (size_ == 0) return std::nullopt;
  while (highest_nonempty_ >= 0 && levels_[highest_nonempty_].empty()) {
    --highest_nonempty_;
  }
  LSWC_CHECK_GE(highest_nonempty_, 0);
  auto& level = levels_[highest_nonempty_];
  const PageId url = level.front();
  level.pop_front();
  --size_;
  return url;
}

BoundedFrontier::BoundedFrontier(int num_levels, size_t capacity)
    : capacity_(capacity) {
  LSWC_CHECK_GT(num_levels, 0);
  LSWC_CHECK_GT(capacity, 0u);
  levels_.resize(static_cast<size_t>(num_levels));
}

void BoundedFrontier::Push(PageId url, int priority) {
  const int level = std::clamp(priority, 0, num_levels() - 1);
  if (size_ >= capacity_) {
    // Shed the least promising URL: the newest entry of the lowest
    // non-empty level — unless the incoming URL itself is no better.
    int lowest = 0;
    while (lowest < num_levels() && levels_[lowest].empty()) ++lowest;
    ++dropped_;
    if (lowest >= num_levels() || level <= lowest) {
      return;  // Incoming URL is the victim.
    }
    levels_[lowest].pop_back();
    --size_;
  }
  levels_[level].push_back(url);
  ++size_;
  max_size_ = std::max(max_size_, size_);
  highest_nonempty_ = std::max(highest_nonempty_, level);
}

std::optional<PageId> BoundedFrontier::Pop() {
  if (size_ == 0) return std::nullopt;
  while (highest_nonempty_ >= 0 && levels_[highest_nonempty_].empty()) {
    --highest_nonempty_;
  }
  LSWC_CHECK_GE(highest_nonempty_, 0);
  auto& level = levels_[highest_nonempty_];
  const PageId url = level.front();
  level.pop_front();
  --size_;
  return url;
}

}  // namespace lswc
