#ifndef LSWC_CORE_DISTILLER_H_
#define LSWC_CORE_DISTILLER_H_

#include <vector>

#include "core/strategy.h"
#include "util/status.h"
#include "webgraph/graph.h"

namespace lswc {

/// Hub/authority scores of a page set (Kleinberg's HITS), the algorithm
/// behind the focused crawler's *distiller* component (§2.1 of the
/// paper: "the distiller employs a modified version of Kleinberg's
/// algorithm to find topical hubs ... priority values of URLs identified
/// as hubs and their immediate neighbors are raised").
struct HitsScores {
  /// Indexed by PageId; pages outside the analyzed set score 0.
  std::vector<double> hub;
  std::vector<double> authority;
  int iterations_run = 0;
};

struct HitsOptions {
  int max_iterations = 30;
  /// Stop when the L1 change of the hub vector falls below this.
  double tolerance = 1e-9;
};

/// Runs HITS over the subgraph induced by `pages` (e.g. the crawled
/// relevant set, as the distiller would see mid-crawl). Links leaving
/// the set are ignored. Scores are L2-normalized per iteration.
/// Fails on an empty page set.
StatusOr<HitsScores> ComputeHits(const WebGraph& graph,
                                 const std::vector<PageId>& pages,
                                 HitsOptions options = {});

/// Returns the `count` pages with the highest hub score, descending
/// (ties by PageId for determinism).
std::vector<PageId> TopHubs(const HitsScores& scores, size_t count);

/// The distiller applied as a crawl strategy: soft-focused priorities
/// plus a top level for links discovered on distilled hub pages —
/// "priority values of URLs identified as hubs and their immediate
/// neighbors are raised". Hub pages come from a pilot analysis
/// (ComputeHits + TopHubs), standing in for the paper's "executed
/// intermittently and/or concurrently" schedule, which a trace-driven
/// rerun makes equivalent.
class HubBoostStrategy final : public CrawlStrategy {
 public:
  /// `num_pages` sizes the hub bitmap; `hubs` are the distilled pages.
  HubBoostStrategy(size_t num_pages, const std::vector<PageId>& hubs);

  LinkDecision OnLink(const ParentInfo& parent,
                      PageId child) const override;
  int seed_priority() const override { return 2; }
  int num_priority_levels() const override { return 3; }
  std::string name() const override;

  bool is_hub(PageId page) const { return hub_bitmap_[page]; }

 private:
  std::vector<bool> hub_bitmap_;
};

}  // namespace lswc

#endif  // LSWC_CORE_DISTILLER_H_
