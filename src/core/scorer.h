#ifndef LSWC_CORE_SCORER_H_
#define LSWC_CORE_SCORER_H_

// The pluggable scorer framework of the batch-selection crawl regime
// (Crawl4LLM-style `rating_methods`). A Scorer rates one pending URL
// from its link context and static graph features; the BatchFrontier
// rescores its whole pending set with one (usually composite) scorer
// and selects the top `batch_k` URLs per iteration.
//
// Determinism contract: Score() must be a pure function of (url,
// inputs, construction-time state) using only arithmetic that is
// bit-reproducible across runs — no libm transcendentals, no global
// state, no NaN results. The batch regime's bit-identical-across-shards
// guarantee rests on this.

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"
#include "webgraph/graph.h"
#include "webgraph/page.h"

namespace lswc {

/// Link-context features of one pending URL, captured at its last
/// (best-referrer) push. Static per-page features (indegree, depth,
/// hashed randomness) are the scorer's own business.
struct ScoreInputs {
  /// Strategy priority the URL was last enqueued with.
  int16_t priority = 0;
  /// Strategy annotation (the limited-distance strategies' consecutive
  /// irrelevant-run length).
  uint8_t annotation = 0;
  /// Whether the referrer that enqueued this URL was judged relevant.
  bool parent_relevant = true;
  /// The classifier's confidence in that referrer judgment.
  double parent_confidence = 1.0;
};

/// Construction-time environment for scorers: the graph static features
/// are read from, and the seed deterministic pseudo-random scorers
/// derive their stream from.
struct ScorerEnv {
  const WebGraph* graph = nullptr;
  uint64_t seed = 0;
};

/// One named term of a score, for the decision journal's forensics:
/// `weighted` is the term's contribution to the total (weight × raw),
/// `raw` the scorer's unweighted output.
struct ScoreComponent {
  std::string name;
  double weighted = 0.0;
  double raw = 0.0;
};

/// Rates one pending URL; higher is fetched sooner. Score() is const
/// and must be thread-safe (shards rescore their pending slices in
/// parallel through one shared scorer).
class Scorer {
 public:
  virtual ~Scorer() = default;

  virtual double Score(PageId url, const ScoreInputs& inputs) const = 0;

  /// Stable identifier ("lang", "indegree", or a composite spec);
  /// recorded in batch snapshots and validated on restore.
  virtual std::string name() const = 0;

  /// Appends this scorer's per-term breakdown of Score(url, inputs) to
  /// `out`. The default reports one component equal to the total; a
  /// composite reports one per part in spec order. The sum of the
  /// appended `weighted` fields always equals Score() exactly (same
  /// arithmetic, same order), so the journal's breakdowns reproduce the
  /// selection scores bit-for-bit.
  virtual void ScoreComponents(PageId url, const ScoreInputs& inputs,
                               std::vector<ScoreComponent>* out) const {
    const double score = Score(url, inputs);
    out->push_back(ScoreComponent{name(), score, score});
  }
};

using ScorerFactory =
    std::function<StatusOr<std::unique_ptr<Scorer>>(const ScorerEnv&)>;

/// Name -> factory registry. Global() holds the builtins:
///
///   lang      classifier confidence of the referrer, 0 for irrelevant
///             referrers (the language-confidence signal),
///   parent    relevance of the link context: 1 for a relevant
///             referrer, decaying in the irrelevant-run annotation,
///   indegree  bit-scaled static indegree from the link structure
///             (popular pages first),
///   depth     shallow URLs first (index of the page within its host),
///   random    deterministic per-URL hash in [0, 1) (the baseline
///             Crawl4LLM compares rating methods against).
class ScorerRegistry {
 public:
  /// The process-wide registry, builtins pre-registered.
  static ScorerRegistry& Global();

  /// Registers (or replaces) a factory under `name`.
  void Register(const std::string& name, ScorerFactory factory);

  /// Instantiates one scorer; InvalidArgument (naming the known
  /// scorers) when `name` is not registered.
  StatusOr<std::unique_ptr<Scorer>> Make(const std::string& name,
                                         const ScorerEnv& env) const;

  /// Registered names, sorted (for error messages and --help).
  std::vector<std::string> names() const;

 private:
  ScorerRegistry();

  std::vector<std::pair<std::string, ScorerFactory>> factories_;
};

/// Builds a weighted-sum scorer from a spec like
/// "lang:1.0,indegree:0.5" (weight omitted = 1.0), resolving names
/// through ScorerRegistry::Global(). The composite's score is the
/// weighted sum in spec order; its name() is the spec verbatim.
/// InvalidArgument on an empty spec, an unknown scorer name, or an
/// unparsable weight — each error names the offending token.
StatusOr<std::unique_ptr<Scorer>> MakeCompositeScorer(const std::string& spec,
                                                      const ScorerEnv& env);

}  // namespace lswc

#endif  // LSWC_CORE_SCORER_H_
