#ifndef LSWC_CORE_SHARD_H_
#define LSWC_CORE_SHARD_H_

// Building blocks of the sharded crawl engine (sharded_engine.h):
//
//  - ShardRouter: the stable host -> shard partitioning rule. A URL is
//    owned by the shard of its host (FNV-1a over the host *name*, mod
//    the shard count), so the assignment survives dataset regeneration
//    with different host counts and never depends on page ids.
//  - ShardFrontier: one shard's slice of the global frontier. Entries
//    carry the global push sequence number assigned by the serial
//    commit loop; the engine recovers the exact serial pop order by
//    merging shard heads on (priority level desc, sequence asc). Within
//    a level a shard's deque is sequence-sorted by construction (all
//    pushes happen in sequence order), so the head of each level is the
//    shard's best candidate at that level.
//
// See docs/ARCHITECTURE.md "Sharded crawl pipeline" for the full merge
// contract and why this reproduces the serial engine bit-for-bit.

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "snapshot/section.h"
#include "util/status.h"
#include "webgraph/graph.h"
#include "webgraph/page.h"

namespace lswc {

/// Stable shard assignment: FNV-1a over the host name, mod `num_shards`.
uint32_t ShardOfHostName(const std::string& host_name, uint32_t num_shards);

/// Precomputed host -> shard map for one graph. Cheap value type.
class ShardRouter {
 public:
  ShardRouter(const WebGraph& graph, uint32_t num_shards);

  uint32_t num_shards() const { return num_shards_; }
  uint32_t shard_of_host(uint32_t host_id) const {
    return host_shard_[host_id];
  }
  /// The shard that owns `url` (== the shard of its host).
  uint32_t owner(PageId url) const {
    return host_shard_[graph_->page(url).host];
  }

 private:
  const WebGraph* graph_;
  uint32_t num_shards_;
  std::vector<uint32_t> host_shard_;
};

/// One shard's frontier slice: per-priority-level deques of
/// (sequence, url) entries, mirroring BucketFrontier's level semantics
/// (priorities clamped to [0, num_levels), pops from the highest
/// non-empty level). `seq` is the global push sequence; deques stay
/// sequence-sorted because every push happens in the serial commit loop.
class ShardFrontier {
 public:
  struct Entry {
    uint64_t seq;
    PageId url;
  };
  /// The shard's best candidate: front of its highest non-empty level.
  struct Head {
    int level;
    uint64_t seq;
    PageId url;
  };

  explicit ShardFrontier(int num_levels);

  int num_levels() const { return static_cast<int>(levels_.size()); }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Appends at the clamped priority level, exactly like
  /// BucketFrontier::Push. `seq` must be strictly increasing across all
  /// pushes into all shards of one crawl.
  void Push(PageId url, int priority, uint64_t seq);

  /// Best candidate, or nullopt when empty.
  std::optional<Head> PeekHead() const;

  /// Removes the entry PeekHead() returned. Precondition: non-empty.
  void PopHead();

  /// Entries at `level`, front = oldest (lowest sequence). Used by the
  /// engine's plan cursors to walk the virtual global order.
  const std::deque<Entry>& level_entries(int level) const {
    return levels_[level];
  }

  /// Snapshot payload: level count, then each level highest-first as a
  /// (seq, url) pair list.
  void Save(snapshot::SectionWriter* w) const;
  /// Restores a Save() payload; FailedPrecondition when the level count
  /// does not match this frontier's construction.
  Status Restore(snapshot::SectionReader* r);

 private:
  std::vector<std::deque<Entry>> levels_;
  size_t size_ = 0;
  int highest_nonempty_ = -1;
};

}  // namespace lswc

#endif  // LSWC_CORE_SHARD_H_
