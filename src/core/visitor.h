#ifndef LSWC_CORE_VISITOR_H_
#define LSWC_CORE_VISITOR_H_

#include <vector>

#include "core/classifier.h"
#include "core/virtual_web.h"
#include "obs/obs_fwd.h"

namespace lswc {

/// Everything one crawl step learns about a page.
struct VisitResult {
  FetchResponse response;
  RelevanceJudgment judgment;
  /// Child URLs to consider (resolved to PageIds).
  std::vector<PageId> links;
};

/// The Visitor of the paper's Fig 2: performs the crawler-side mechanics
/// of one step — "downloading" through the virtual web space, relevance
/// judgment through the classifier, and URL extraction.
///
/// Link extraction has two fidelities:
///  - trace mode (default): links come from the link database, the way
///    the paper's simulator replays them;
///  - parse mode (`parse_html`, requires RenderMode::kFull): the rendered
///    bytes are decoded using the classifier-visible encoding, anchors
///    are extracted from the markup, canonicalized, and resolved back to
///    log entries — the full production pipeline, used by integration
///    tests and the quickstart example to prove the two paths agree.
class Visitor {
 public:
  /// Pointers are not owned and must outlive the visitor.
  Visitor(VirtualWebSpace* web, Classifier* classifier,
          bool parse_html = false);

  Status Visit(PageId id, VisitResult* out);

  /// Registers the stage profiler (may be null / not owned). When set,
  /// Visit meters its fetch / classify / extract phases.
  void set_profiler(obs::StageProfiler* profiler) { profiler_ = profiler; }

  /// Pages visited so far.
  uint64_t visit_count() const { return visit_count_; }
  /// Parse-mode diagnostics: links that did not resolve to log entries.
  uint64_t unresolved_links() const { return unresolved_links_; }

 private:
  Status ExtractFromHtml(const VisitResult& result,
                         std::vector<PageId>* links);

  VirtualWebSpace* web_;
  Classifier* classifier_;
  bool parse_html_;
  obs::StageProfiler* profiler_ = nullptr;
  uint64_t visit_count_ = 0;
  uint64_t unresolved_links_ = 0;
};

}  // namespace lswc

#endif  // LSWC_CORE_VISITOR_H_
