#include "core/host_frontier.h"

#include <algorithm>

#include "util/logging.h"

namespace lswc {

HostFrontier::HostFrontier(uint32_t num_hosts, int num_levels)
    : num_levels_(std::max(1, num_levels)), hosts_(num_hosts) {}

void HostFrontier::PushHeap(uint32_t host) {
  HostState& state = hosts_[host];
  LSWC_CHECK_GE(state.best_level, 0);
  state.heap_stamp = ++stamp_counter_;
  heap_.push(HeapEntry{
      state.ready, state.best_level,
      state.levels[static_cast<size_t>(state.best_level)].front().seq, host,
      state.heap_stamp});
}

void HostFrontier::Push(PageId url, uint32_t host, int priority) {
  LSWC_CHECK_LT(host, hosts_.size());
  HostState& state = hosts_[host];
  if (state.levels.empty()) {
    state.levels.resize(static_cast<size_t>(num_levels_));
  }
  const int level = std::clamp(priority, 0, num_levels_ - 1);
  state.levels[static_cast<size_t>(level)].push_back(
      Entry{url, ++seq_counter_});
  if (state.pending == 0) ++pending_hosts_;
  ++state.pending;
  state.best_level = std::max(state.best_level, level);
  // Re-key unconditionally: a push can raise the host's best level, so
  // the published (ready, best_level, front_seq) entry may be stale.
  PushHeap(host);
  ++size_;
  max_size_ = std::max(max_size_, size_);
}

std::optional<double> HostFrontier::NextReadyTime() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.top();
    const HostState& state = hosts_[top.host];
    if (state.pending == 0 || state.heap_stamp != top.stamp) {
      heap_.pop();  // Stale.
      continue;
    }
    return top.ready;
  }
  return std::nullopt;
}

PageId HostFrontier::PopFromHost(HostState* state) {
  LSWC_CHECK_GE(state->best_level, 0);
  std::deque<Entry>& level =
      state->levels[static_cast<size_t>(state->best_level)];
  const PageId url = level.front().url;
  level.pop_front();
  while (state->best_level >= 0 &&
         state->levels[static_cast<size_t>(state->best_level)].empty()) {
    --state->best_level;
  }
  --state->pending;
  --size_;
  if (state->pending == 0) --pending_hosts_;
  return url;
}

std::optional<PageId> HostFrontier::PopReady(double now) {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    HostState& state = hosts_[top.host];
    if (state.pending == 0 || state.heap_stamp != top.stamp) {
      heap_.pop();  // Stale.
      continue;
    }
    if (top.ready > now) return std::nullopt;  // Nothing eligible yet.
    heap_.pop();
    const PageId url = PopFromHost(&state);
    if (state.pending > 0) PushHeap(top.host);
    return url;
  }
  return std::nullopt;
}

void HostFrontier::SetHostNextFree(uint32_t host, double next_free) {
  LSWC_CHECK_LT(host, hosts_.size());
  HostState& state = hosts_[host];
  state.ready = std::max(state.ready, next_free);
  if (state.pending > 0) PushHeap(host);
}

}  // namespace lswc
