#include "core/host_frontier.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics_registry.h"
#include "util/logging.h"

namespace lswc {

HostFrontier::HostFrontier(uint32_t num_hosts, int num_levels)
    : num_levels_(std::max(1, num_levels)), hosts_(num_hosts) {}

void HostFrontier::AttachObs(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  obs_pushes_ = registry->counter("host_frontier.pushes");
  obs_pops_ = registry->counter("host_frontier.pops");
  obs_wait_us_ = registry->histogram("host_frontier.wait_us");
  obs_pending_hosts_ = registry->gauge("host_frontier.pending_hosts");
}

void HostFrontier::PushHeap(uint32_t host) {
  HostState& state = hosts_[host];
  LSWC_CHECK_GE(state.best_level, 0);
  state.heap_stamp = ++stamp_counter_;
  heap_.push(HeapEntry{
      state.ready, state.best_level,
      state.levels[static_cast<size_t>(state.best_level)].front().seq, host,
      state.heap_stamp});
}

void HostFrontier::Push(PageId url, uint32_t host, int priority) {
  LSWC_CHECK_LT(host, hosts_.size());
  HostState& state = hosts_[host];
  if (state.levels.empty()) {
    state.levels.resize(static_cast<size_t>(num_levels_));
  }
  const int level = std::clamp(priority, 0, num_levels_ - 1);
  state.levels[static_cast<size_t>(level)].push_back(
      Entry{url, ++seq_counter_});
  if (state.pending == 0) ++pending_hosts_;
  ++state.pending;
  state.best_level = std::max(state.best_level, level);
  // Re-key unconditionally: a push can raise the host's best level, so
  // the published (ready, best_level, front_seq) entry may be stale.
  PushHeap(host);
  ++size_;
  max_size_ = std::max(max_size_, size_);
  if (obs_pushes_ != nullptr) {
    obs_pushes_->Increment();
    obs_pending_hosts_->Set(pending_hosts_);
  }
}

std::optional<double> HostFrontier::NextReadyTime() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.top();
    const HostState& state = hosts_[top.host];
    if (state.pending == 0 || state.heap_stamp != top.stamp) {
      heap_.pop();  // Stale.
      continue;
    }
    return top.ready;
  }
  return std::nullopt;
}

PageId HostFrontier::PopFromHost(HostState* state) {
  LSWC_CHECK_GE(state->best_level, 0);
  std::deque<Entry>& level =
      state->levels[static_cast<size_t>(state->best_level)];
  const PageId url = level.front().url;
  level.pop_front();
  while (state->best_level >= 0 &&
         state->levels[static_cast<size_t>(state->best_level)].empty()) {
    --state->best_level;
  }
  --state->pending;
  --size_;
  if (state->pending == 0) --pending_hosts_;
  return url;
}

std::optional<PageId> HostFrontier::PopReady(double now) {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    HostState& state = hosts_[top.host];
    if (state.pending == 0 || state.heap_stamp != top.stamp) {
      heap_.pop();  // Stale.
      continue;
    }
    if (top.ready > now) return std::nullopt;  // Nothing eligible yet.
    heap_.pop();
    const PageId url = PopFromHost(&state);
    if (obs_pops_ != nullptr) {
      obs_pops_->Increment();
      // Simulated time the host sat ready before being served; both
      // clocks are simulated seconds, so this is deterministic.
      obs_wait_us_->Record(
          static_cast<uint64_t>(std::llround((now - top.ready) * 1e6)));
      obs_pending_hosts_->Set(pending_hosts_);
    }
    if (state.pending > 0) PushHeap(top.host);
    return url;
  }
  return std::nullopt;
}

void HostFrontier::SetHostNextFree(uint32_t host, double next_free) {
  LSWC_CHECK_LT(host, hosts_.size());
  HostState& state = hosts_[host];
  state.ready = std::max(state.ready, next_free);
  if (state.pending > 0) PushHeap(host);
}

Status HostFrontier::Save(snapshot::SectionWriter* w) const {
  w->U64(static_cast<uint64_t>(num_levels_));
  w->U64(hosts_.size());
  w->U64(max_size_);
  w->U64(seq_counter_);
  // Only hosts with observable state: pending URLs or a politeness
  // ready time that has not yet passed into irrelevance (ready times
  // only ever matter relative to the saved clock, which the scheduler
  // stores alongside this payload).
  uint64_t saved_hosts = 0;
  for (const HostState& state : hosts_) {
    if (state.pending > 0 || state.ready != 0.0) ++saved_hosts;
  }
  w->U64(saved_hosts);
  for (uint32_t host = 0; host < hosts_.size(); ++host) {
    const HostState& state = hosts_[host];
    if (state.pending == 0 && state.ready == 0.0) continue;
    w->U32(host);
    w->F64(state.ready);
    w->U64(state.levels.size());
    for (const std::deque<Entry>& level : state.levels) {
      std::vector<uint32_t> urls;
      std::vector<uint64_t> seqs;
      urls.reserve(level.size());
      seqs.reserve(level.size());
      for (const Entry& e : level) {
        urls.push_back(e.url);
        seqs.push_back(e.seq);
      }
      w->U32Vec(urls);
      w->U64Vec(seqs);
    }
  }
  return Status::OK();
}

Status HostFrontier::Restore(snapshot::SectionReader* r) {
  const uint64_t num_levels = r->U64();
  const uint64_t num_hosts = r->U64();
  const uint64_t max_size = r->U64();
  const uint64_t seq_counter = r->U64();
  const uint64_t saved_hosts = r->U64();
  LSWC_RETURN_IF_ERROR(r->status());
  if (num_levels != static_cast<uint64_t>(num_levels_) ||
      num_hosts != hosts_.size()) {
    return Status::FailedPrecondition(
        "snapshot host frontier shape (" + std::to_string(num_hosts) +
        " hosts x " + std::to_string(num_levels) +
        " levels) does not match this run (" + std::to_string(hosts_.size()) +
        " x " + std::to_string(num_levels_) + ")");
  }
  // Decode fully before mutating, so corrupt payloads leave state intact.
  struct LoadedHost {
    uint32_t host;
    double ready;
    std::vector<std::vector<Entry>> levels;
  };
  std::vector<LoadedHost> loaded;
  loaded.reserve(static_cast<size_t>(saved_hosts));
  for (uint64_t i = 0; i < saved_hosts && r->status().ok(); ++i) {
    LoadedHost lh;
    lh.host = r->U32();
    lh.ready = r->F64();
    const uint64_t level_count = r->U64();
    if (!r->status().ok()) break;
    if (lh.host >= hosts_.size() ||
        (level_count != 0 && level_count != static_cast<uint64_t>(num_levels_))) {
      return Status::Corruption("host frontier snapshot has invalid host " +
                                std::to_string(lh.host));
    }
    for (uint64_t level = 0; level < level_count && r->status().ok(); ++level) {
      const std::vector<uint32_t> urls = r->U32Vec();
      const std::vector<uint64_t> seqs = r->U64Vec();
      if (urls.size() != seqs.size()) {
        return Status::Corruption(
            "host frontier snapshot url/seq length mismatch");
      }
      std::vector<Entry> entries(urls.size());
      for (size_t j = 0; j < urls.size(); ++j) {
        entries[j] = Entry{urls[j], seqs[j]};
      }
      lh.levels.push_back(std::move(entries));
    }
    loaded.push_back(std::move(lh));
  }
  LSWC_RETURN_IF_ERROR(r->status());

  hosts_.assign(hosts_.size(), HostState{});
  heap_ = {};
  size_ = 0;
  pending_hosts_ = 0;
  stamp_counter_ = 0;
  for (const LoadedHost& lh : loaded) {
    HostState& state = hosts_[lh.host];
    state.ready = lh.ready;
    if (lh.levels.empty()) continue;
    state.levels.resize(static_cast<size_t>(num_levels_));
    for (size_t level = 0; level < lh.levels.size(); ++level) {
      state.levels[level].assign(lh.levels[level].begin(),
                                 lh.levels[level].end());
      state.pending += lh.levels[level].size();
      if (!lh.levels[level].empty()) {
        state.best_level = static_cast<int>(level);
      }
    }
    size_ += state.pending;
    if (state.pending > 0) {
      ++pending_hosts_;
      PushHeap(lh.host);
    }
  }
  max_size_ = static_cast<size_t>(max_size);
  seq_counter_ = seq_counter;
  return Status::OK();
}

}  // namespace lswc
