#include "core/host_frontier.h"

#include <algorithm>

#include "util/logging.h"

namespace lswc {

HostFrontier::HostFrontier(uint32_t num_hosts, int num_levels)
    : num_levels_(std::max(1, num_levels)), hosts_(num_hosts) {}

void HostFrontier::PushHeap(uint32_t host) {
  HostState& state = hosts_[host];
  state.heap_stamp = ++stamp_counter_;
  heap_.push(HeapEntry{state.ready, host, state.heap_stamp});
}

void HostFrontier::Push(PageId url, uint32_t host, int priority) {
  LSWC_CHECK_LT(host, hosts_.size());
  HostState& state = hosts_[host];
  if (state.levels.empty()) {
    state.levels.resize(static_cast<size_t>(num_levels_));
  }
  const int level = std::clamp(priority, 0, num_levels_ - 1);
  state.levels[static_cast<size_t>(level)].push_back(url);
  if (state.pending == 0) {
    ++pending_hosts_;
    PushHeap(host);
  }
  ++state.pending;
  ++size_;
  max_size_ = std::max(max_size_, size_);
}

std::optional<double> HostFrontier::NextReadyTime() {
  while (!heap_.empty()) {
    const HeapEntry& top = heap_.top();
    const HostState& state = hosts_[top.host];
    if (state.pending == 0 || state.heap_stamp != top.stamp) {
      heap_.pop();  // Stale.
      continue;
    }
    return top.ready;
  }
  return std::nullopt;
}

PageId HostFrontier::PopFromHost(HostState* state) {
  for (auto it = state->levels.rbegin(); it != state->levels.rend(); ++it) {
    if (!it->empty()) {
      const PageId url = it->front();
      it->pop_front();
      --state->pending;
      --size_;
      if (state->pending == 0) --pending_hosts_;
      return url;
    }
  }
  LSWC_CHECK(false) << "host marked pending but all levels empty";
  return 0;
}

std::optional<PageId> HostFrontier::PopReady(double now) {
  while (!heap_.empty()) {
    const HeapEntry top = heap_.top();
    HostState& state = hosts_[top.host];
    if (state.pending == 0 || state.heap_stamp != top.stamp) {
      heap_.pop();  // Stale.
      continue;
    }
    if (top.ready > now) return std::nullopt;  // Nothing eligible yet.
    heap_.pop();
    const PageId url = PopFromHost(&state);
    if (state.pending > 0) PushHeap(top.host);
    return url;
  }
  return std::nullopt;
}

void HostFrontier::SetHostNextFree(uint32_t host, double next_free) {
  LSWC_CHECK_LT(host, hosts_.size());
  HostState& state = hosts_[host];
  state.ready = std::max(state.ready, next_free);
  if (state.pending > 0) PushHeap(host);
}

}  // namespace lswc
