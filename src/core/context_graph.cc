#include "core/context_graph.h"

#include <algorithm>
#include <deque>

#include "util/logging.h"
#include "util/string_util.h"

namespace lswc {

std::vector<uint16_t> ComputeContextLayers(const WebGraph& graph,
                                           int max_layer) {
  const size_t n = graph.num_pages();
  // Reverse adjacency via counting sort over targets (CSR transpose).
  std::vector<uint32_t> in_degree(n, 0);
  for (PageId p = 0; p < n; ++p) {
    if (!graph.page(p).ok()) continue;
    for (PageId t : graph.outlinks(p)) ++in_degree[t];
  }
  std::vector<uint64_t> offsets(n + 1, 0);
  for (size_t i = 0; i < n; ++i) offsets[i + 1] = offsets[i] + in_degree[i];
  std::vector<PageId> sources(offsets[n]);
  {
    std::vector<uint64_t> fill = offsets;
    for (PageId p = 0; p < n; ++p) {
      if (!graph.page(p).ok()) continue;
      for (PageId t : graph.outlinks(p)) sources[fill[t]++] = p;
    }
  }

  std::vector<uint16_t> layers(n, kUnreachableLayer);
  std::deque<PageId> queue;
  for (PageId p = 0; p < n; ++p) {
    if (graph.IsRelevant(p)) {
      layers[p] = 0;
      queue.push_back(p);
    }
  }
  while (!queue.empty()) {
    const PageId p = queue.front();
    queue.pop_front();
    const uint16_t next = static_cast<uint16_t>(layers[p] + 1);
    if (max_layer > 0 && next > max_layer) continue;
    for (uint64_t i = offsets[p]; i < offsets[p + 1]; ++i) {
      const PageId src = sources[i];
      if (layers[src] != kUnreachableLayer) continue;
      // Only fetchable pages can be *traversed*, but a non-OK page can
      // still carry a layer (it just has no in-edges recorded above).
      layers[src] = next;
      queue.push_back(src);
    }
  }
  return layers;
}

ContextGraphStrategy::ContextGraphStrategy(std::vector<uint16_t> layers,
                                           int max_layer)
    : layers_(std::move(layers)), max_layer_(max_layer) {
  LSWC_CHECK_GE(max_layer, 0);
}

LinkDecision ContextGraphStrategy::OnLink(const ParentInfo& parent,
                                          PageId child) const {
  (void)parent;  // Pure layer-driven best-first search.
  const uint16_t layer = layers_[child];
  if (layer == kUnreachableLayer || layer > max_layer_) {
    return LinkDecision{};  // No known path toward a target: discard.
  }
  LinkDecision d;
  d.enqueue = true;
  d.priority = max_layer_ - static_cast<int>(layer);
  d.annotation = static_cast<uint8_t>(std::min<uint16_t>(layer, 254));
  return d;
}

std::string ContextGraphStrategy::name() const {
  return StringPrintf("context-graph(L=%d)", max_layer_);
}

}  // namespace lswc
