#include "core/checkpoint.h"

#include <utility>

#include "obs/run_obs.h"

namespace lswc {

std::string SanitizeSnapshotLabel(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    if (c == ':' || c == '/' || c == '\\') c = '-';
  }
  return out;
}

CheckpointObserver::CheckpointObserver(Checkpointable* engine,
                                       uint64_t every_n_pages,
                                       std::string path)
    : engine_(engine),
      every_n_pages_(every_n_pages == 0 ? 1 : every_n_pages),
      path_(std::move(path)) {}

void CheckpointObserver::AttachObs(obs::RunObs* obs) {
  if (obs == nullptr || !obs->enabled) return;
  obs_written_ = obs->registry.counter("checkpoint.written");
  obs_bytes_ = obs->registry.histogram("checkpoint.bytes");
  obs_write_us_ = obs->registry.histogram("checkpoint.write_us");
  obs_last_pages_ = obs->registry.gauge("checkpoint.last_pages_crawled");
  obs_trace_ = obs->trace.get();
}

void CheckpointObserver::OnFetch(const FetchEvent& event) {
  if (event.pages_crawled % every_n_pages_ != 0) return;
  if (event.pages_crawled % engine_->sample_interval() == 0) {
    // This fetch is also a sampling point: the metrics row for it has
    // not been appended yet (OnSample fires after OnFetch). Defer so
    // the snapshot includes the row.
    pending_ = true;
    return;
  }
  SaveNow();
}

void CheckpointObserver::OnSample(const SampleEvent& event) {
  (void)event;
  if (!pending_) return;
  pending_ = false;
  SaveNow();
}

void CheckpointObserver::SaveNow() {
  uint64_t bytes = 0;
  const uint64_t start_ns = obs::MonotonicNowNs();
  const Status s = engine_->SaveSnapshot(path_, &bytes);
  if (s.ok()) {
    ++snapshots_written_;
    if (obs_written_ != nullptr) {
      obs_written_->Increment();
      obs_bytes_->Record(bytes);
      // Wall time — outside the determinism contract, like stage
      // total_ns.
      obs_write_us_->Record((obs::MonotonicNowNs() - start_ns) / 1000);
      obs_last_pages_->Set(engine_->pages_crawled());
    }
    if (obs_trace_ != nullptr) obs_trace_->Instant("checkpoint");
  } else if (status_.ok()) {
    status_ = s;
  }
}

}  // namespace lswc
