#include "core/checkpoint.h"

#include <utility>

namespace lswc {

std::string SanitizeSnapshotLabel(const std::string& label) {
  std::string out = label;
  for (char& c : out) {
    if (c == ':' || c == '/' || c == '\\') c = '-';
  }
  return out;
}

CheckpointObserver::CheckpointObserver(CrawlEngine* engine,
                                       uint64_t every_n_pages,
                                       std::string path)
    : engine_(engine),
      every_n_pages_(every_n_pages == 0 ? 1 : every_n_pages),
      path_(std::move(path)) {}

void CheckpointObserver::OnFetch(const FetchEvent& event) {
  if (event.pages_crawled % every_n_pages_ != 0) return;
  if (event.pages_crawled % engine_->sample_interval() == 0) {
    // This fetch is also a sampling point: the metrics row for it has
    // not been appended yet (OnSample fires after OnFetch). Defer so
    // the snapshot includes the row.
    pending_ = true;
    return;
  }
  SaveNow();
}

void CheckpointObserver::OnSample(const SampleEvent& event) {
  (void)event;
  if (!pending_) return;
  pending_ = false;
  SaveNow();
}

void CheckpointObserver::SaveNow() {
  const Status s = engine_->SaveSnapshot(path_);
  if (s.ok()) {
    ++snapshots_written_;
  } else if (status_.ok()) {
    status_ = s;
  }
}

}  // namespace lswc
