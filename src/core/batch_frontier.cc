#include "core/batch_frontier.h"

#include <algorithm>
#include <cassert>

#include "obs/journal.h"
#include "obs/metrics_registry.h"
#include "obs/stage_profiler.h"

namespace lswc {

namespace {
int16_t ClampPriority(int priority) {
  if (priority > INT16_MAX) return INT16_MAX;
  if (priority < INT16_MIN) return INT16_MIN;
  return static_cast<int16_t>(priority);
}
}  // namespace

BatchFrontier::BatchFrontier(uint32_t select_k,
                             std::shared_ptr<const Scorer> scorer)
    : select_k_(select_k == 0 ? kDefaultBatchK : select_k),
      scorer_(std::move(scorer)) {
  assert(scorer_ != nullptr);
}

void BatchFrontier::PushScored(PageId url, int priority,
                               const PushContext& context) {
  if (PushWithSeq(url, priority, context, next_seq_)) ++next_seq_;
}

bool BatchFrontier::PushWithSeq(PageId url, int priority,
                                const PushContext& context, uint64_t seq) {
  // A batched URL is committed to this iteration; the better referrer's
  // context is already recorded in CrawlState and would only be
  // rescored after the URL was crawled anyway.
  if (in_batch_.count(url) != 0) return false;
  const auto [it, inserted] = pending_.try_emplace(url);
  Entry& entry = it->second;
  if (inserted) entry.seq = seq;
  entry.inputs.priority = ClampPriority(priority);
  entry.inputs.annotation = context.annotation;
  entry.inputs.parent_relevant = context.parent_relevant;
  entry.inputs.parent_confidence = context.parent_confidence;
  max_size_ = std::max(max_size_, size());
  return inserted;
}

std::optional<PageId> BatchFrontier::Pop() {
  if (batch_.empty()) Refill();
  if (batch_.empty()) return std::nullopt;
  const PageId url = batch_.front();
  batch_.pop_front();
  in_batch_.erase(url);
  return url;
}

std::vector<BatchFrontier::Candidate> BatchFrontier::TopCandidates(
    size_t k) const {
  std::vector<Candidate> candidates;
  candidates.reserve(pending_.size());
  for (const auto& [url, entry] : pending_) {
    candidates.push_back(
        Candidate{url, scorer_->Score(url, entry.inputs), entry.seq});
  }
  if (scored_urls_ != nullptr) scored_urls_->Add(candidates.size());
  k = std::min(k, candidates.size());
  std::partial_sort(candidates.begin(), candidates.begin() + k,
                    candidates.end());
  candidates.resize(k);
  return candidates;
}

void BatchFrontier::Refill() {
  obs::ScopedStage stage(profiler_, obs::Stage::kRescore);
  if (rescore_rounds_ != nullptr) rescore_rounds_->Increment();
  const size_t pending_before = pending_.size();
  const std::vector<Candidate> selected = TopCandidates(select_k_);
  if (journal_ != nullptr) {
    journal_->BatchRound(pending_before, selected.size());
  }
  std::vector<ScoreComponent> components;
  uint32_t rank = 0;
  for (const Candidate& candidate : selected) {
    if (journal_ != nullptr) {
      components.clear();
      scorer_->ScoreComponents(candidate.url,
                               pending_.at(candidate.url).inputs, &components);
      journal_->BatchSelect(candidate.url, rank, candidate.score,
                            candidate.seq,
                            static_cast<uint32_t>(components.size()));
      for (uint32_t i = 0; i < components.size(); ++i) {
        journal_->ScoreComponent(candidate.url, i, components[i].name,
                                 components[i].weighted, components[i].raw);
      }
    }
    ++rank;
    pending_.erase(candidate.url);
    batch_.push_back(candidate.url);
    in_batch_.insert(candidate.url);
  }
  if (selected_urls_ != nullptr) selected_urls_->Add(selected.size());
}

void BatchFrontier::AttachObs(obs::MetricsRegistry* registry,
                              obs::TraceSink* trace) {
  (void)trace;
  if (registry == nullptr) return;
  rescore_rounds_ = registry->counter("frontier.rescore_rounds");
  scored_urls_ = registry->counter("frontier.scored_urls");
  selected_urls_ = registry->counter("frontier.selected_urls");
}

Status BatchFrontier::Save(snapshot::SectionWriter* w) const {
  w->U32(select_k_);
  w->Str(scorer_->name());
  w->U64(next_seq_);
  w->U64(max_size_);

  // Pending entries, sequence-sorted so the payload is deterministic
  // regardless of hash-map iteration order.
  std::vector<std::pair<uint64_t, PageId>> order;
  order.reserve(pending_.size());
  for (const auto& [url, entry] : pending_) order.emplace_back(entry.seq, url);
  std::sort(order.begin(), order.end());

  std::vector<uint32_t> urls;
  std::vector<uint64_t> seqs;
  std::vector<int16_t> priorities;
  std::vector<uint8_t> annotations;
  std::vector<bool> parent_relevant;
  std::vector<double> parent_confidence;
  urls.reserve(order.size());
  for (const auto& [seq, url] : order) {
    const Entry& entry = pending_.at(url);
    urls.push_back(url);
    seqs.push_back(seq);
    priorities.push_back(entry.inputs.priority);
    annotations.push_back(entry.inputs.annotation);
    parent_relevant.push_back(entry.inputs.parent_relevant);
    parent_confidence.push_back(entry.inputs.parent_confidence);
  }
  w->U32Vec(urls);
  w->U64Vec(seqs);
  w->I16Vec(priorities);
  w->U8Vec(annotations);
  w->BoolVec(parent_relevant);
  w->F64Vec(parent_confidence);

  std::vector<uint32_t> batched(batch_.begin(), batch_.end());
  w->U32Vec(batched);
  return Status::OK();
}

Status BatchFrontier::Restore(snapshot::SectionReader* r) {
  const uint32_t saved_k = r->U32();
  const std::string saved_scorer = r->Str();
  LSWC_RETURN_IF_ERROR(r->status());
  if (saved_k != select_k_) {
    return Status::FailedPrecondition(
        "batch frontier snapshot was taken with batch_k=" +
        std::to_string(saved_k) + " but this run uses batch_k=" +
        std::to_string(select_k_));
  }
  if (saved_scorer != scorer_->name()) {
    return Status::FailedPrecondition(
        "batch frontier snapshot was taken with scorers '" + saved_scorer +
        "' but this run uses '" + scorer_->name() + "'");
  }
  const uint64_t next_seq = r->U64();
  const uint64_t max_size = r->U64();
  const std::vector<uint32_t> urls = r->U32Vec();
  const std::vector<uint64_t> seqs = r->U64Vec();
  const std::vector<int16_t> priorities = r->I16Vec();
  const std::vector<uint8_t> annotations = r->U8Vec();
  const std::vector<bool> parent_relevant = r->BoolVec();
  const std::vector<double> parent_confidence = r->F64Vec();
  const std::vector<uint32_t> batched = r->U32Vec();
  LSWC_RETURN_IF_ERROR(r->status());
  const size_t n = urls.size();
  if (seqs.size() != n || priorities.size() != n || annotations.size() != n ||
      parent_relevant.size() != n || parent_confidence.size() != n) {
    return Status::Corruption("batch frontier snapshot arrays disagree");
  }

  pending_.clear();
  batch_.clear();
  in_batch_.clear();
  next_seq_ = next_seq;
  max_size_ = max_size;
  pending_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Entry entry;
    entry.seq = seqs[i];
    entry.inputs.priority = priorities[i];
    entry.inputs.annotation = annotations[i];
    entry.inputs.parent_relevant = parent_relevant[i];
    entry.inputs.parent_confidence = parent_confidence[i];
    if (!pending_.emplace(urls[i], entry).second) {
      return Status::Corruption("batch frontier snapshot repeats a URL");
    }
  }
  for (const uint32_t url : batched) {
    if (pending_.count(url) != 0 || !in_batch_.insert(url).second) {
      return Status::Corruption("batch frontier snapshot repeats a URL");
    }
    batch_.push_back(url);
  }
  return Status::OK();
}

}  // namespace lswc
