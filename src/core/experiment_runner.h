#ifndef LSWC_CORE_EXPERIMENT_RUNNER_H_
#define LSWC_CORE_EXPERIMENT_RUNNER_H_

// Parallel experiment execution. Every figure/table/ablation harness
// replays a strategy × seed × dataset grid of *independent* simulation
// runs; the ExperimentRunner fans that grid out across a fixed
// util::ThreadPool and merges results back in spec order, so the output
// of a parallel run is bit-identical to the serial one — only faster.
//
// Isolation contract (what makes parallelism safe AND deterministic):
//  - the dataset (WebGraph) is shared, const, and never mutated;
//  - each run builds its own VirtualWebSpace view + InMemoryLinkDb
//    (both carry per-run mutable state such as fetch counters);
//  - each run constructs its own Classifier through the spec's factory
//    (Judge() is non-const: detector classifiers keep scratch state);
//  - each run gets a private RNG stream seeded from its own spec —
//    never drawn from a shared generator, so permuting or parallelizing
//    specs cannot change any individual run's stream;
//  - the MetricsRecorder lives inside the run's CrawlEngine as always.
// CrawlStrategy instances are shared across runs: OnLink is const and
// the implementations are pure.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/simulator.h"
#include "core/strategy.h"
#include "obs/run_obs.h"
#include "store/format.h"
#include "store/stored_web_graph.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "webgraph/generator.h"

namespace lswc {

/// A dataset replayed from an LSWCDS1 file instead of generated:
/// kMmap serves the graph as a zero-copy view over one shared mapping
/// (and gives every run an MmapLinkDb on that mapping); kRam copies the
/// file into heap storage up front (runs keep InMemoryLinkDb). Both
/// answers are bit-identical — that equivalence is CI's out-of-core
/// determinism gate.
struct StoredDatasetSpec {
  std::string path;
  store::StoreBackend backend = store::StoreBackend::kMmap;
  bool verify_checksums = true;
};

/// Builds a fresh classifier for one run. Called once per spec, on the
/// worker thread that executes the spec.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

/// Per-run context handed to custom run functions: the resolved dataset
/// (if the spec names one) and the run's private RNG stream.
struct RunContext {
  const WebGraph* graph = nullptr;
  Rng* rng = nullptr;
  /// This run's observability bundle (null when the runner does not
  /// collect obs). Custom runs should pass it into whatever simulator
  /// they drive so their metrics land in the merged report.
  obs::RunObs* obs = nullptr;
};

/// A function run instead of the standard simulation pipeline — the
/// escape hatch for grid cells that are not one plain Simulator run
/// (politeness-timed runs, per-cell graph builds, detector sweeps). It
/// must confine its effects to caller-owned per-spec storage; it runs
/// concurrently with other specs.
using CustomRunFn = std::function<Status(const RunContext&)>;

/// One cell of an experiment grid.
struct RunSpec {
  /// Label used in reports and result matching.
  std::string name;
  /// Dataset id from ExperimentRunner::AddDataset (-1 = none; required
  /// for the standard pipeline, optional for custom runs).
  int dataset = -1;
  /// Strategy to run (not owned; shared across runs — OnLink is const).
  const CrawlStrategy* strategy = nullptr;
  /// Fresh classifier per run; required for the standard pipeline.
  ClassifierFactory classifier;
  RenderMode render_mode = RenderMode::kNone;
  /// Per-run simulation knobs. Observers listed here must be private to
  /// this spec (they are invoked from the worker thread).
  SimulationOptions options;
  /// Seed of this run's private RNG stream (standard simulation runs
  /// are deterministic and ignore it; custom runs draw via RunContext).
  uint64_t seed = 0;
  /// When set, runs instead of the standard pipeline.
  CustomRunFn custom;
};

/// Outcome of one spec, in spec order.
struct RunResult {
  Status status;               // Not OK => `result` is empty.
  std::optional<SimulationResult> result;  // Empty for custom specs.
  double wall_time_sec = 0.0;  // This run alone, on its worker.
  /// Link-traffic counters from the engine's observer bus (standard
  /// pipeline only): better-referrer re-pushes and non-enqueued links.
  uint64_t repushed = 0;
  uint64_t dropped = 0;
  /// The run's observability bundle (registry + profiler + optional
  /// trace sink), owned here so callers can merge and serialize after
  /// the grid completes. Null when obs collection is off (or disabled
  /// by environment/build).
  std::unique_ptr<obs::RunObs> obs;
};

/// Folds every run's obs bundle into `into`, in spec order. Registry
/// merge operations are commutative and associative, so the merged
/// deterministic subset is bit-identical however the runs were
/// scheduled — the jobs=N == jobs=1 contract.
void MergeRunObs(const std::vector<RunResult>& results, obs::RunObs* into);

/// Fans a grid of RunSpecs out across a thread pool and returns results
/// in spec order. `jobs = 1` executes the specs inline on the calling
/// thread in spec order — exactly the historical serial path.
class ExperimentRunner {
 public:
  struct Options {
    /// Worker count; 0 = ThreadPool::DefaultThreadCount()
    /// (hardware_concurrency).
    unsigned jobs = 0;
    /// Hand each run a private RunObs bundle, returned in its
    /// RunResult. Costs the engine's probe overhead per run; leave on —
    /// the bundles no-op themselves when obs is disabled by environment
    /// or build.
    bool collect_obs = true;
    /// Give each run's bundle a trace sink (tid = trace_tid_base +
    /// spec index, track name = spec name). Off by default: tracing
    /// buffers events in memory and is meant for --trace-out runs.
    bool trace = false;
    int trace_tid_base = 0;
  };

  ExperimentRunner();
  explicit ExperimentRunner(Options options);
  ~ExperimentRunner();

  ExperimentRunner(const ExperimentRunner&) = delete;
  ExperimentRunner& operator=(const ExperimentRunner&) = delete;

  /// Registers a caller-owned, pre-built dataset. Returns its id.
  int AddDataset(const WebGraph* graph);

  /// Registers a generated dataset, materialized at most once — lazily,
  /// on the first worker that needs it (other workers needing the same
  /// dataset block; workers on other specs proceed). Returns its id.
  int AddDataset(SyntheticWebOptions options);

  /// Registers a stored dataset file, opened at most once (same
  /// call_once discipline as generated datasets): every run of every
  /// spec shares the single mapping. Returns its id.
  int AddDataset(StoredDatasetSpec spec);

  /// Materializes (if needed) and returns dataset `id`.
  StatusOr<const WebGraph*> dataset(int id);

  /// The StoredWebGraph behind dataset `id`, or null when `id` is not a
  /// materialized mmap-backed dataset. Used by RunOne to hand runs an
  /// MmapLinkDb sharing the mapping instead of an InMemoryLinkDb.
  const store::StoredWebGraph* stored_dataset(int id) const;

  /// Runs every spec and returns results in spec order, regardless of
  /// completion order. May be called repeatedly; the pool is reused.
  std::vector<RunResult> Run(const std::vector<RunSpec>& specs);

  /// The resolved worker count (never 0).
  unsigned jobs() const { return jobs_; }

 private:
  struct Dataset {
    const WebGraph* prebuilt = nullptr;
    std::optional<SyntheticWebOptions> generate;
    std::optional<StoredDatasetSpec> stored_spec;
    std::once_flag once;
    std::optional<StatusOr<WebGraph>> built;
    /// Holds the mapping for stored kMmap datasets; `built` then carries
    /// a view whose storage handle shares it.
    std::unique_ptr<store::StoredWebGraph> stored;
  };

  RunResult RunOne(const RunSpec& spec, size_t spec_index);

  Options options_;
  unsigned jobs_;
  std::vector<std::unique_ptr<Dataset>> datasets_;
  std::unique_ptr<ThreadPool> pool_;  // Created on first parallel Run.
};

}  // namespace lswc

#endif  // LSWC_CORE_EXPERIMENT_RUNNER_H_
