#include "core/classifier.h"

#include "html/meta_charset.h"

namespace lswc {

namespace {
RelevanceJudgment JudgmentFromEncoding(Language target, Encoding e,
                                       double confidence) {
  RelevanceJudgment j;
  j.encoding = e;
  j.confidence = confidence;
  j.relevant = (LanguageOfEncoding(e) == target);
  return j;
}
}  // namespace

MetaTagClassifier::MetaTagClassifier(Language target) : target_(target) {}

RelevanceJudgment MetaTagClassifier::Judge(const FetchResponse& response) {
  if (!response.ok()) return RelevanceJudgment{};
  Encoding declared = Encoding::kUnknown;
  if (!response.body.empty()) {
    // Full-fidelity path: read the declaration out of the actual bytes.
    const auto charset = ExtractMetaCharset(response.body);
    if (charset.has_value()) declared = EncodingFromName(*charset);
  } else {
    declared = response.meta_charset;
  }
  if (declared == Encoding::kUnknown) return RelevanceJudgment{};
  return JudgmentFromEncoding(target_, declared, 1.0);
}

std::string MetaTagClassifier::name() const {
  return "meta-tag(" + std::string(LanguageName(target_)) + ")";
}

DetectorClassifier::DetectorClassifier(Language target,
                                       DetectorOptions options)
    : target_(target), options_(options), detector_(options) {}

RelevanceJudgment DetectorClassifier::Judge(const FetchResponse& response) {
  if (!response.ok() || response.body.empty()) return RelevanceJudgment{};
  const DetectionResult result = detector_.Detect(response.body);
  return JudgmentFromEncoding(target_, result.encoding, result.confidence);
}

std::string DetectorClassifier::name() const {
  return "charset-detector(" + std::string(LanguageName(target_)) + ")";
}

CompositeClassifier::CompositeClassifier(Language target,
                                         DetectorOptions options)
    : meta_(target),
      detector_(target, options),
      target_(target),
      options_(options) {}

RelevanceJudgment CompositeClassifier::Judge(const FetchResponse& response) {
  const RelevanceJudgment by_meta = meta_.Judge(response);
  if (by_meta.encoding != Encoding::kUnknown) return by_meta;
  return detector_.Judge(response);
}

std::string CompositeClassifier::name() const {
  return "meta+detector(" + std::string(LanguageName(target_)) + ")";
}

RelevanceJudgment OracleClassifier::Judge(const FetchResponse& response) {
  RelevanceJudgment j;
  if (!response.ok()) return j;
  j.encoding = response.true_encoding;
  j.confidence = 1.0;
  j.relevant = (response.true_language == target_);
  return j;
}

}  // namespace lswc
