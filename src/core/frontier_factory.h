#ifndef LSWC_CORE_FRONTIER_FACTORY_H_
#define LSWC_CORE_FRONTIER_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/frontier.h"
#include "core/shard.h"
#include "core/spilling_frontier.h"
#include "core/strategy.h"
#include "util/status.h"

namespace lswc {

/// Frontier sizing knobs, shared by every driver that builds a frontier
/// from user options (SimulationOptions carries the same fields).
struct FrontierOptions {
  /// Hard cap on pending URLs (0 = unlimited): BoundedFrontier.
  size_t capacity = 0;
  /// In-memory URL budget for a disk-spilling frontier (0 = keep all
  /// pending URLs in memory): SpillingFrontier. Mutually exclusive with
  /// `capacity`.
  size_t memory_budget = 0;
  /// Directory for spill files when `memory_budget` is set.
  std::string spill_dir = "/tmp";
};

/// A constructed frontier plus typed views onto its optional diagnostic
/// surfaces (drop counts, spill counters). Exactly one of the raw
/// pointers is non-null when the corresponding implementation was
/// chosen; both are null for the plain FIFO/bucket frontiers.
struct FrontierSelection {
  std::unique_ptr<Frontier> frontier;
  BoundedFrontier* bounded = nullptr;
  SpillingFrontier* spilling = nullptr;
};

/// Centralizes the frontier choice every crawl driver used to inline:
///
///   - `memory_budget` set  -> disk-spilling bucket queue (lossless),
///   - `capacity` set       -> capacity-bounded bucket queue (shedding),
///   - single-level strategy-> FIFO,
///   - otherwise            -> bucket queue with the strategy's levels.
///
/// Fails with InvalidArgument when both budgets are set, or with the
/// spilling frontier's error when the spill directory is unusable.
StatusOr<FrontierSelection> MakeFrontier(const CrawlStrategy& strategy,
                                         const FrontierOptions& options);

/// Per-shard construction path for the sharded engine: `num_shards`
/// sequence-tagged frontier slices with the strategy's level count.
/// Sharding keeps every pending URL (the merge contract needs the exact
/// global frontier contents), so the bounded and spilling variants are
/// not available — a set `capacity` or `memory_budget` fails with an
/// InvalidArgument naming the conflicting option.
StatusOr<std::vector<std::unique_ptr<ShardFrontier>>> MakeShardFrontiers(
    const CrawlStrategy& strategy, const FrontierOptions& options,
    uint32_t num_shards);

}  // namespace lswc

#endif  // LSWC_CORE_FRONTIER_FACTORY_H_
