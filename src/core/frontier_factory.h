#ifndef LSWC_CORE_FRONTIER_FACTORY_H_
#define LSWC_CORE_FRONTIER_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/batch_frontier.h"
#include "core/frontier.h"
#include "core/shard.h"
#include "core/spilling_frontier.h"
#include "core/strategy.h"
#include "util/status.h"

namespace lswc {

/// Frontier sizing knobs, shared by every driver that builds a frontier
/// from user options (SimulationOptions carries the same fields).
struct FrontierOptions {
  /// Frontier regime: "" or "pop" = the paper's pop-order frontiers
  /// (FIFO/bucket/bounded/spilling, chosen by the knobs below);
  /// "batch" = the batch-selection regime (BatchFrontier + scorers).
  std::string kind;
  /// Hard cap on pending URLs (0 = unlimited): BoundedFrontier.
  /// Pop-order only.
  size_t capacity = 0;
  /// In-memory URL budget for a disk-spilling frontier (0 = keep all
  /// pending URLs in memory): SpillingFrontier. Mutually exclusive with
  /// `capacity`. Pop-order only.
  size_t memory_budget = 0;
  /// Directory for spill files when `memory_budget` is set. Empty = a
  /// unique per-instance subdirectory under $TMPDIR (or /tmp), removed
  /// when the frontier is destroyed.
  std::string spill_dir;
  /// Batch regime: URLs selected per rescore iteration (0 = default
  /// kDefaultBatchK). Requires kind == "batch".
  uint32_t batch_k = 0;
  /// Batch regime: composite scorer spec ("lang:1.0,indegree:0.5";
  /// empty = kDefaultScorerSpec). Requires kind == "batch".
  std::string scorers;
  /// Batch regime: seed for deterministic pseudo-random scorers.
  uint64_t scorer_seed = 0;
  /// Batch regime: graph the static-feature scorers read from (not
  /// owned; must outlive the frontier).
  const WebGraph* graph = nullptr;
};

/// A constructed frontier plus typed views onto its optional diagnostic
/// surfaces (drop counts, spill counters, batch knobs). At most one of
/// the raw pointers is non-null, matching the implementation chosen;
/// all are null for the plain FIFO/bucket frontiers.
struct FrontierSelection {
  std::unique_ptr<Frontier> frontier;
  BoundedFrontier* bounded = nullptr;
  SpillingFrontier* spilling = nullptr;
  BatchFrontier* batch = nullptr;
};

/// Centralizes the frontier choice every crawl driver used to inline:
///
///   - kind "batch"         -> batch-selection frontier with a composite
///                             scorer built from `scorers`,
///   - `memory_budget` set  -> disk-spilling bucket queue (lossless),
///   - `capacity` set       -> capacity-bounded bucket queue (shedding),
///   - single-level strategy-> FIFO,
///   - otherwise            -> bucket queue with the strategy's levels.
///
/// Fails with InvalidArgument on incompatible combinations, each error
/// naming the exact conflicting option: both budgets set; batch knobs
/// (`batch_k`, `scorers`) without kind "batch"; kind "batch" with a
/// `capacity` or `memory_budget`; an unknown kind; a bad scorer spec.
StatusOr<FrontierSelection> MakeFrontier(const CrawlStrategy& strategy,
                                         const FrontierOptions& options);

/// Batch-regime construction path for the sharded engine: `num_shards`
/// BatchFrontier pending slices sharing ONE composite scorer instance
/// (scorers are pure and thread-safe; sharing keeps e.g. the indegree
/// precomputation single). Same option validation as MakeFrontier with
/// kind "batch".
StatusOr<std::vector<std::unique_ptr<BatchFrontier>>> MakeBatchFrontiers(
    const FrontierOptions& options, uint32_t num_shards);

/// Per-shard construction path for the sharded engine's pop-order
/// regime: `num_shards` sequence-tagged frontier slices with the
/// strategy's level count. Sharding keeps every pending URL (the merge
/// contract needs the exact global frontier contents), so the bounded
/// and spilling variants are not available — a set `capacity` or
/// `memory_budget` fails with an InvalidArgument naming the conflicting
/// option, as does kind "batch" (use MakeBatchFrontiers).
StatusOr<std::vector<std::unique_ptr<ShardFrontier>>> MakeShardFrontiers(
    const CrawlStrategy& strategy, const FrontierOptions& options,
    uint32_t num_shards);

}  // namespace lswc

#endif  // LSWC_CORE_FRONTIER_FACTORY_H_
