#include "core/experiment_runner.h"

#include <chrono>
#include <utility>

#include "core/checkpoint.h"
#include "core/crawl_observer.h"
#include "obs/telemetry_plane.h"
#include "store/mmap_link_db.h"
#include "webgraph/link_db.h"

namespace lswc {

namespace {
/// Counts link-expansion outcomes over the engine's event bus; one
/// instance per run (observers are worker-thread-local).
class LinkTrafficCounter final : public CrawlObserver {
 public:
  bool wants_link_events() const override { return true; }
  void OnRePush(PageId, const LinkDecision&) override { ++repushed_; }
  void OnDrop(PageId, LinkDropReason) override { ++dropped_; }

  uint64_t repushed() const { return repushed_; }
  uint64_t dropped() const { return dropped_; }

 private:
  uint64_t repushed_ = 0;
  uint64_t dropped_ = 0;
};

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

void MergeRunObs(const std::vector<RunResult>& results, obs::RunObs* into) {
  for (const RunResult& result : results) {
    if (result.obs != nullptr) into->MergeFrom(*result.obs);
  }
}

ExperimentRunner::ExperimentRunner() : ExperimentRunner(Options()) {}

ExperimentRunner::ExperimentRunner(Options options)
    : options_(options),
      jobs_(options.jobs != 0 ? options.jobs
                              : ThreadPool::DefaultThreadCount()) {}

ExperimentRunner::~ExperimentRunner() = default;

int ExperimentRunner::AddDataset(const WebGraph* graph) {
  auto dataset = std::make_unique<Dataset>();
  dataset->prebuilt = graph;
  datasets_.push_back(std::move(dataset));
  return static_cast<int>(datasets_.size()) - 1;
}

int ExperimentRunner::AddDataset(SyntheticWebOptions options) {
  auto dataset = std::make_unique<Dataset>();
  dataset->generate = options;
  datasets_.push_back(std::move(dataset));
  return static_cast<int>(datasets_.size()) - 1;
}

int ExperimentRunner::AddDataset(StoredDatasetSpec spec) {
  auto dataset = std::make_unique<Dataset>();
  dataset->stored_spec = std::move(spec);
  datasets_.push_back(std::move(dataset));
  return static_cast<int>(datasets_.size()) - 1;
}

StatusOr<const WebGraph*> ExperimentRunner::dataset(int id) {
  if (id < 0 || static_cast<size_t>(id) >= datasets_.size()) {
    return Status::InvalidArgument("unknown dataset id");
  }
  Dataset& dataset = *datasets_[static_cast<size_t>(id)];
  if (dataset.prebuilt != nullptr) return dataset.prebuilt;
  // Generated or stored: materialize exactly once, even when several
  // workers race here.
  std::call_once(dataset.once, [&dataset] {
    if (dataset.generate.has_value()) {
      dataset.built.emplace(GenerateWebGraph(*dataset.generate));
      return;
    }
    const StoredDatasetSpec& spec = *dataset.stored_spec;
    store::StoredWebGraph::Options open_options;
    open_options.verify_checksums = spec.verify_checksums;
    if (spec.backend == store::StoreBackend::kRam) {
      dataset.built.emplace(
          store::StoredWebGraph::ReadInRam(spec.path, open_options));
      return;
    }
    auto stored = store::StoredWebGraph::Open(spec.path, open_options);
    if (!stored.ok()) {
      dataset.built.emplace(stored.status());
      return;
    }
    dataset.stored = std::move(stored).value();
    // The view's storage handle shares the mapping, so `built` is
    // self-sufficient even though `stored` owns the StoredWebGraph.
    dataset.built.emplace(dataset.stored->NewView());
  });
  if (!dataset.built->ok()) return dataset.built->status();
  return &dataset.built->value();
}

const store::StoredWebGraph* ExperimentRunner::stored_dataset(int id) const {
  if (id < 0 || static_cast<size_t>(id) >= datasets_.size()) return nullptr;
  return datasets_[static_cast<size_t>(id)]->stored.get();
}

RunResult ExperimentRunner::RunOne(const RunSpec& spec, size_t spec_index) {
  RunResult out;
  const auto t0 = std::chrono::steady_clock::now();
  if (options_.collect_obs) {
    out.obs = std::make_unique<obs::RunObs>();
    if (options_.trace) {
      out.obs->EnableTrace(
          options_.trace_tid_base + static_cast<int>(spec_index), spec.name);
    }
  }

  const WebGraph* graph = nullptr;
  if (spec.dataset >= 0) {
    auto resolved = dataset(spec.dataset);
    if (!resolved.ok()) {
      out.status = resolved.status();
      out.wall_time_sec = SecondsSince(t0);
      return out;
    }
    graph = *resolved;
  }

  Rng rng(spec.seed != 0 ? spec.seed : 0x853c49e6748fea9bULL);
  if (spec.custom) {
    RunContext context{graph, &rng, out.obs.get()};
    out.status = spec.custom(context);
    out.wall_time_sec = SecondsSince(t0);
    return out;
  }

  if (graph == nullptr || spec.strategy == nullptr || !spec.classifier) {
    out.status = Status::InvalidArgument(
        "spec '" + spec.name +
        "' needs a dataset, a strategy, and a classifier factory");
    out.wall_time_sec = SecondsSince(t0);
    return out;
  }

  std::unique_ptr<Classifier> classifier = spec.classifier();
  // Mmap-backed datasets get a link DB sharing the mapping; everything
  // else replays links from the (possibly view-backed) graph in memory.
  const store::StoredWebGraph* stored = stored_dataset(spec.dataset);
  std::unique_ptr<LinkDb> link_db;
  if (stored != nullptr) {
    link_db = std::make_unique<store::MmapLinkDb>(*stored);
  } else {
    link_db = std::make_unique<InMemoryLinkDb>(graph);
  }
  if (out.obs != nullptr && out.obs->enabled) {
    link_db->AttachObs(&out.obs->registry);
    if (stored != nullptr) stored->AttachObs(&out.obs->registry);
  }
  VirtualWebSpace web(graph, link_db.get(), spec.render_mode);
  LinkTrafficCounter traffic;
  SimulationOptions options = spec.options;
  options.observers.push_back(&traffic);
  options.rng = &rng;
  options.obs = out.obs.get();
  // Each grid cell checkpoints under its own (sanitized) spec name, so
  // one snapshot directory serves a whole grid.
  if (!options.snapshot_dir.empty() && options.snapshot_label.empty()) {
    options.snapshot_label = SanitizeSnapshotLabel(spec.name);
  }
  // When the process has a telemetry plane, every grid cell gets its
  // own board, so an attached observer sees all in-flight runs.
  if (options.run_label.empty()) options.run_label = spec.name;
  obs::TelemetryPlane& plane = obs::TelemetryPlane::Instance();
  if (options.telemetry == nullptr && plane.configured()) {
    options.telemetry = plane.CreateContext(options.run_label);
  }
  Simulator simulator(&web, classifier.get(), spec.strategy, options);
  auto result = simulator.Run();
  if (!result.ok()) {
    out.status = result.status();
  } else {
    out.result.emplace(std::move(result).value());
  }
  out.repushed = traffic.repushed();
  out.dropped = traffic.dropped();
  out.wall_time_sec = SecondsSince(t0);
  return out;
}

std::vector<RunResult> ExperimentRunner::Run(
    const std::vector<RunSpec>& specs) {
  std::vector<RunResult> results(specs.size());
  if (jobs_ == 1) {
    for (size_t i = 0; i < specs.size(); ++i) {
      results[i] = RunOne(specs[i], i);
    }
    return results;
  }
  if (pool_ == nullptr) pool_ = std::make_unique<ThreadPool>(jobs_);
  for (size_t i = 0; i < specs.size(); ++i) {
    pool_->Submit([this, &specs, &results, i] {
      results[i] = RunOne(specs[i], i);
    });
  }
  pool_->Wait();
  return results;
}

}  // namespace lswc
