#ifndef LSWC_CORE_CONTEXT_GRAPH_H_
#define LSWC_CORE_CONTEXT_GRAPH_H_

#include <cstdint>
#include <vector>

#include "core/strategy.h"
#include "util/status.h"
#include "webgraph/graph.h"

namespace lswc {

/// Layer assignment of the context-focused crawler (Diligenti et al.,
/// VLDB 2000 — the tunneling approach the paper contrasts with its
/// limited-distance strategy in §2.2):
///
///   layer 0 = target (relevant) pages,
///   layer k = pages whose shortest link path *to* a target has length k,
///   kUnreachableLayer = pages from which no target is reachable.
///
/// The real system trains per-layer classifiers from documents gathered
/// through a search engine's reverse-link ("link:") queries; the paper
/// notes this dependency as the approach's major limitation. In the
/// trace-driven setting the crawl log *is* that search engine, so the
/// layers here are exact — this strategy is therefore an upper bound for
/// what a context-focused crawler could do, which makes it the honest
/// comparator for the limited-distance results.
inline constexpr uint16_t kUnreachableLayer = UINT16_MAX;

/// Computes layers by reverse BFS from all relevant OK pages.
/// `max_layer` caps the search depth (pages farther than it are marked
/// unreachable); 0 means no cap.
std::vector<uint16_t> ComputeContextLayers(const WebGraph& graph,
                                           int max_layer = 0);

/// The context-focused crawler as a CrawlStrategy: the frontier keeps
/// one queue per layer and always pops the lowest non-empty layer
/// ("the next URL to be visited is chosen from the nearest non-empty
/// queue"). Links in layers beyond `max_layer` — or with no path to a
/// target at all — are discarded.
class ContextGraphStrategy final : public CrawlStrategy {
 public:
  /// `layers` comes from ComputeContextLayers (or the user's own layer
  /// classifier); `max_layer` >= 0.
  ContextGraphStrategy(std::vector<uint16_t> layers, int max_layer);

  LinkDecision OnLink(const ParentInfo& parent,
                      PageId child) const override;
  int seed_priority() const override { return max_layer_; }
  int num_priority_levels() const override { return max_layer_ + 1; }
  std::string name() const override;

  uint16_t layer(PageId page) const { return layers_[page]; }

 private:
  std::vector<uint16_t> layers_;
  int max_layer_;
};

}  // namespace lswc

#endif  // LSWC_CORE_CONTEXT_GRAPH_H_
