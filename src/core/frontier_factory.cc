#include "core/frontier_factory.h"

#include <algorithm>

namespace lswc {

StatusOr<FrontierSelection> MakeFrontier(const CrawlStrategy& strategy,
                                         const FrontierOptions& options) {
  if (options.capacity > 0 && options.memory_budget > 0) {
    return Status::InvalidArgument(
        "frontier_capacity (=" + std::to_string(options.capacity) +
        ") and frontier_memory_budget (=" +
        std::to_string(options.memory_budget) +
        ") are mutually exclusive: a frontier is either capacity-bounded "
        "or disk-spilling, not both");
  }
  const int levels = std::max(1, strategy.num_priority_levels());
  FrontierSelection selection;
  if (options.memory_budget > 0) {
    SpillingFrontier::Options spill;
    spill.memory_budget = options.memory_budget;
    spill.chunk = std::min<size_t>(4096, spill.memory_budget / 2);
    spill.spill_dir = options.spill_dir;
    auto f = SpillingFrontier::Create(levels, spill);
    if (!f.ok()) return f.status();
    selection.spilling = f->get();
    selection.frontier = std::move(f).value();
  } else if (options.capacity > 0) {
    auto b = std::make_unique<BoundedFrontier>(levels, options.capacity);
    selection.bounded = b.get();
    selection.frontier = std::move(b);
  } else if (levels <= 1) {
    selection.frontier = std::make_unique<FifoFrontier>();
  } else {
    selection.frontier = std::make_unique<BucketFrontier>(levels);
  }
  return selection;
}

StatusOr<std::vector<std::unique_ptr<ShardFrontier>>> MakeShardFrontiers(
    const CrawlStrategy& strategy, const FrontierOptions& options,
    uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument(
        "MakeShardFrontiers needs at least one shard");
  }
  if (options.capacity > 0) {
    return Status::InvalidArgument(
        "frontier_capacity (=" + std::to_string(options.capacity) +
        ") is incompatible with sharded crawling: the cross-shard merge "
        "needs the exact global frontier contents, and a capacity-bounded "
        "frontier sheds URLs");
  }
  if (options.memory_budget > 0) {
    return Status::InvalidArgument(
        "frontier_memory_budget (=" + std::to_string(options.memory_budget) +
        ") is incompatible with sharded crawling: the disk-spilling "
        "frontier has no per-shard slice layout");
  }
  const int levels = std::max(1, strategy.num_priority_levels());
  std::vector<std::unique_ptr<ShardFrontier>> shards;
  shards.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    shards.push_back(std::make_unique<ShardFrontier>(levels));
  }
  return shards;
}

}  // namespace lswc
