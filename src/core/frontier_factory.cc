#include "core/frontier_factory.h"

#include <algorithm>

#include "core/scorer.h"

namespace lswc {

namespace {

bool IsBatchKind(const FrontierOptions& options) {
  return options.kind == "batch";
}

/// Cross-field validation shared by every construction path; each error
/// names the exact conflicting option.
Status ValidateOptions(const FrontierOptions& options) {
  if (!options.kind.empty() && options.kind != "pop" &&
      options.kind != "batch") {
    return Status::InvalidArgument("unknown frontier kind '" + options.kind +
                                   "'; expected 'pop' or 'batch'");
  }
  if (!IsBatchKind(options)) {
    if (options.batch_k > 0) {
      return Status::InvalidArgument(
          "batch_k (=" + std::to_string(options.batch_k) +
          ") requires the batch frontier (frontier kind 'batch'), not '" +
          (options.kind.empty() ? "pop" : options.kind) + "'");
    }
    if (!options.scorers.empty()) {
      return Status::InvalidArgument(
          "scorers ('" + options.scorers +
          "') require the batch frontier (frontier kind 'batch'), not '" +
          (options.kind.empty() ? "pop" : options.kind) + "'");
    }
    if (options.capacity > 0 && options.memory_budget > 0) {
      return Status::InvalidArgument(
          "frontier_capacity (=" + std::to_string(options.capacity) +
          ") and frontier_memory_budget (=" +
          std::to_string(options.memory_budget) +
          ") are mutually exclusive: a frontier is either capacity-bounded "
          "or disk-spilling, not both");
    }
    return Status::OK();
  }
  if (options.capacity > 0) {
    return Status::InvalidArgument(
        "frontier_capacity (=" + std::to_string(options.capacity) +
        ") is incompatible with the batch frontier: batch selection "
        "rescores the complete pending set and never sheds URLs");
  }
  if (options.memory_budget > 0) {
    return Status::InvalidArgument(
        "frontier_memory_budget (=" + std::to_string(options.memory_budget) +
        ") is incompatible with the batch frontier: the pending set must "
        "stay in memory for rescoring");
  }
  if (options.graph == nullptr) {
    return Status::InvalidArgument(
        "the batch frontier needs a web graph for its scorers");
  }
  return Status::OK();
}

/// Builds the (shared) composite scorer of a batch frontier.
StatusOr<std::shared_ptr<const Scorer>> MakeBatchScorer(
    const FrontierOptions& options) {
  ScorerEnv env;
  env.graph = options.graph;
  env.seed = options.scorer_seed;
  const std::string& spec =
      options.scorers.empty() ? kDefaultScorerSpec : options.scorers;
  auto scorer = MakeCompositeScorer(spec, env);
  if (!scorer.ok()) return scorer.status();
  return std::shared_ptr<const Scorer>(std::move(scorer).value());
}

}  // namespace

StatusOr<FrontierSelection> MakeFrontier(const CrawlStrategy& strategy,
                                         const FrontierOptions& options) {
  LSWC_RETURN_IF_ERROR(ValidateOptions(options));
  FrontierSelection selection;
  if (IsBatchKind(options)) {
    auto scorer = MakeBatchScorer(options);
    if (!scorer.ok()) return scorer.status();
    auto b = std::make_unique<BatchFrontier>(options.batch_k,
                                             std::move(scorer).value());
    selection.batch = b.get();
    selection.frontier = std::move(b);
    return selection;
  }
  const int levels = std::max(1, strategy.num_priority_levels());
  if (options.memory_budget > 0) {
    SpillingFrontier::Options spill;
    spill.memory_budget = options.memory_budget;
    spill.chunk = std::min<size_t>(4096, spill.memory_budget / 2);
    spill.spill_dir = options.spill_dir;
    auto f = SpillingFrontier::Create(levels, spill);
    if (!f.ok()) return f.status();
    selection.spilling = f->get();
    selection.frontier = std::move(f).value();
  } else if (options.capacity > 0) {
    auto b = std::make_unique<BoundedFrontier>(levels, options.capacity);
    selection.bounded = b.get();
    selection.frontier = std::move(b);
  } else if (levels <= 1) {
    selection.frontier = std::make_unique<FifoFrontier>();
  } else {
    selection.frontier = std::make_unique<BucketFrontier>(levels);
  }
  return selection;
}

StatusOr<std::vector<std::unique_ptr<BatchFrontier>>> MakeBatchFrontiers(
    const FrontierOptions& options, uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument(
        "MakeBatchFrontiers needs at least one shard");
  }
  if (!IsBatchKind(options)) {
    return Status::InvalidArgument(
        "MakeBatchFrontiers requires frontier kind 'batch', got '" +
        options.kind + "'");
  }
  LSWC_RETURN_IF_ERROR(ValidateOptions(options));
  auto scorer = MakeBatchScorer(options);
  if (!scorer.ok()) return scorer.status();
  std::vector<std::unique_ptr<BatchFrontier>> shards;
  shards.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    shards.push_back(
        std::make_unique<BatchFrontier>(options.batch_k, scorer.value()));
  }
  return shards;
}

StatusOr<std::vector<std::unique_ptr<ShardFrontier>>> MakeShardFrontiers(
    const CrawlStrategy& strategy, const FrontierOptions& options,
    uint32_t num_shards) {
  if (num_shards == 0) {
    return Status::InvalidArgument(
        "MakeShardFrontiers needs at least one shard");
  }
  if (IsBatchKind(options)) {
    return Status::InvalidArgument(
        "frontier kind 'batch' has its own per-shard construction path "
        "(MakeBatchFrontiers); MakeShardFrontiers builds pop-order slices");
  }
  LSWC_RETURN_IF_ERROR(ValidateOptions(options));
  if (options.capacity > 0) {
    return Status::InvalidArgument(
        "frontier_capacity (=" + std::to_string(options.capacity) +
        ") is incompatible with sharded crawling: the cross-shard merge "
        "needs the exact global frontier contents, and a capacity-bounded "
        "frontier sheds URLs");
  }
  if (options.memory_budget > 0) {
    return Status::InvalidArgument(
        "frontier_memory_budget (=" + std::to_string(options.memory_budget) +
        ") is incompatible with sharded crawling: the disk-spilling "
        "frontier has no per-shard slice layout");
  }
  const int levels = std::max(1, strategy.num_priority_levels());
  std::vector<std::unique_ptr<ShardFrontier>> shards;
  shards.reserve(num_shards);
  for (uint32_t i = 0; i < num_shards; ++i) {
    shards.push_back(std::make_unique<ShardFrontier>(levels));
  }
  return shards;
}

}  // namespace lswc
