#include "core/frontier_factory.h"

#include <algorithm>

namespace lswc {

StatusOr<FrontierSelection> MakeFrontier(const CrawlStrategy& strategy,
                                         const FrontierOptions& options) {
  if (options.capacity > 0 && options.memory_budget > 0) {
    return Status::InvalidArgument(
        "frontier_capacity and frontier_memory_budget are exclusive");
  }
  const int levels = std::max(1, strategy.num_priority_levels());
  FrontierSelection selection;
  if (options.memory_budget > 0) {
    SpillingFrontier::Options spill;
    spill.memory_budget = options.memory_budget;
    spill.chunk = std::min<size_t>(4096, spill.memory_budget / 2);
    spill.spill_dir = options.spill_dir;
    auto f = SpillingFrontier::Create(levels, spill);
    if (!f.ok()) return f.status();
    selection.spilling = f->get();
    selection.frontier = std::move(f).value();
  } else if (options.capacity > 0) {
    auto b = std::make_unique<BoundedFrontier>(levels, options.capacity);
    selection.bounded = b.get();
    selection.frontier = std::move(b);
  } else if (levels <= 1) {
    selection.frontier = std::make_unique<FifoFrontier>();
  } else {
    selection.frontier = std::make_unique<BucketFrontier>(levels);
  }
  return selection;
}

}  // namespace lswc
