#include "core/obs_observers.h"

#include <cstdio>
#include <utility>

#include "obs/stage_profiler.h"
#include "obs/trace_sink.h"

namespace lswc {

ProgressObserver::ProgressObserver(uint64_t every_pages, std::string label,
                                   const obs::StageProfiler* profiler)
    : every_pages_(every_pages == 0 ? 1 : every_pages),
      label_(std::move(label)),
      profiler_(profiler),
      last_ns_(obs::MonotonicNowNs()) {}

void ProgressObserver::OnFetch(const FetchEvent& event) {
  if (event.truly_relevant) ++relevant_;
  if (event.pages_crawled % every_pages_ != 0) return;
  const uint64_t now_ns = obs::MonotonicNowNs();
  const uint64_t pages = event.pages_crawled - last_pages_;
  const double secs =
      static_cast<double>(now_ns - last_ns_) / 1e9;
  const double rate = secs > 0 ? static_cast<double>(pages) / secs : 0.0;
  const double harvest =
      100.0 * static_cast<double>(relevant_) /
      static_cast<double>(event.pages_crawled);
  std::string top;
  if (profiler_ != nullptr) top = profiler_->TopStagesLine();
  std::fprintf(stderr, "[%s] %llu pages | %.0f pages/sec | harvest %.1f%% | queue %llu%s%s\n",
               label_.c_str(),
               static_cast<unsigned long long>(event.pages_crawled), rate,
               harvest,
               static_cast<unsigned long long>(event.frontier_size),
               top.empty() ? "" : " | ", top.c_str());
  last_pages_ = event.pages_crawled;
  last_ns_ = now_ns;
}

void TraceEventObserver::OnRePush(PageId url, const LinkDecision& decision) {
  (void)url;
  (void)decision;
  sink_->Instant("re-push");
}

void TraceEventObserver::OnDrop(PageId url, LinkDropReason reason) {
  (void)url;
  (void)reason;
  if ((drops_seen_++ & 63) == 0) sink_->Instant("drop");
}

void TraceEventObserver::OnSample(const SampleEvent& event) {
  sink_->CounterValue("frontier_size", event.frontier_size);
}

}  // namespace lswc
