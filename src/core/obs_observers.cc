#include "core/obs_observers.h"

#include <cstdio>
#include <utility>

#include "obs/stage_profiler.h"
#include "obs/trace_sink.h"

namespace lswc {

void TraceEventObserver::OnRePush(PageId url, const LinkDecision& decision) {
  (void)url;
  (void)decision;
  sink_->Instant("re-push");
}

void TraceEventObserver::OnDrop(PageId url, LinkDropReason reason) {
  (void)url;
  (void)reason;
  if ((drops_seen_++ & 63) == 0) sink_->Instant("drop");
}

void TraceEventObserver::OnSample(const SampleEvent& event) {
  sink_->CounterValue("frontier_size", event.frontier_size);
}

}  // namespace lswc
