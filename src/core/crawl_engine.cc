#include "core/crawl_engine.h"

#include <algorithm>
#include <array>

#include "obs/journal.h"
#include "obs/run_obs.h"
#include "snapshot/snapshot_file.h"

namespace lswc {

namespace {
uint64_t ResolveSampleInterval(uint64_t requested, uint64_t max_pages,
                               size_t num_pages) {
  if (requested != 0) return requested;
  const uint64_t horizon = max_pages != 0 ? max_pages : num_pages;
  return std::max<uint64_t>(1, horizon / 400);
}
}  // namespace

CrawlEngine::CrawlEngine(VirtualWebSpace* web, Classifier* classifier,
                         const CrawlStrategy* strategy,
                         FrontierScheduler* scheduler,
                         CrawlEngineOptions options)
    : web_(web),
      strategy_(strategy),
      scheduler_(scheduler),
      options_(options),
      visitor_(web, classifier, options.parse_html),
      state_(web->graph().num_pages()),
      sample_interval_(ResolveSampleInterval(options.sample_interval,
                                             options.max_pages,
                                             web->graph().num_pages())),
      metrics_(web->graph().ComputeStats().relevant_ok_pages,
               sample_interval_),
      classifier_name_(classifier->name()),
      journal_(options.journal) {
  AddObserver(&metrics_);
  if (options.obs != nullptr && options.obs->enabled) {
    obs::RunObs* obs = options.obs;
    profiler_ = &obs->profiler;
    visitor_.set_profiler(profiler_);
    frontier_depth_ = obs->registry.histogram("frontier.depth");
    push_level_ = obs->registry.histogram("frontier.push_level");
    pushes_ = obs->registry.counter("crawl.pushes");
    repushes_ = obs->registry.counter("crawl.repushes");
    link_drops_ = obs->registry.counter("crawl.link_drops");
  }
}

void CrawlEngine::AddObserver(CrawlObserver* observer) {
  observers_.push_back(observer);
  if (observer->wants_link_events()) link_observers_.push_back(observer);
}

Status CrawlEngine::Run() {
  const WebGraph& graph = web_->graph();
  if (graph.seeds().empty()) {
    return Status::FailedPrecondition("graph has no seed URLs");
  }
  if (!resumed_) {
    for (PageId seed : graph.seeds()) {
      if (!state_.EnqueueSeed(seed, strategy_->seed_priority())) continue;
      scheduler_->Push(seed, strategy_->seed_priority());
      if (journal_ != nullptr) {
        journal_->Seed(seed, strategy_->seed_priority());
      }
    }
  }

  VisitResult visit;
  while (true) {
    if (options_.max_pages != 0 && pages_crawled_ >= options_.max_pages) {
      break;
    }
    if (scheduler_->StopRequested()) break;
    const auto next = scheduler_->Next(state_);
    if (!next.has_value()) break;
    if (state_.crawled(*next)) continue;  // Stale duplicate from a re-push.
    LSWC_RETURN_IF_ERROR(CrawlOne(*next, &visit));
  }
  if (pages_crawled_ % sample_interval_ != 0 || pages_crawled_ == 0) {
    NotifySample(/*is_final=*/true);
  }
  return Status::OK();
}

Status CrawlEngine::CrawlOne(PageId url, VisitResult* visit) {
  state_.MarkCrawled(url);
  LSWC_RETURN_IF_ERROR(visitor_.Visit(url, visit));
  const bool ok = visit->response.ok();

  if (ok) {
    obs::ScopedStage strategy_stage(profiler_, obs::Stage::kStrategy);
    const ParentInfo parent{url, visit->judgment.relevant,
                            state_.annotation(url)};
    PushContext context;
    context.parent_relevant = visit->judgment.relevant;
    context.parent_confidence = visit->judgment.confidence;
    for (PageId child : visit->links) {
      if (state_.crawled(child)) {
        if (link_drops_ != nullptr) link_drops_->Increment();
        if (journal_ != nullptr) {
          journal_->Drop(child, url, obs::kJournalDropAlreadyCrawled,
                         visit->judgment.relevant);
        }
        for (CrawlObserver* o : link_observers_) {
          o->OnDrop(child, LinkDropReason::kAlreadyCrawled);
        }
        continue;
      }
      const LinkDecision d = strategy_->OnLink(parent, child);
      if (!d.enqueue) {
        if (link_drops_ != nullptr) link_drops_->Increment();
        if (journal_ != nullptr) {
          journal_->Drop(child, url, obs::kJournalDropStrategyDiscard,
                         visit->judgment.relevant);
        }
        for (CrawlObserver* o : link_observers_) {
          o->OnDrop(child, LinkDropReason::kStrategyDiscard);
        }
        continue;
      }
      switch (state_.OfferLink(child, d)) {
        case CrawlState::Offer::kIgnored:
          if (link_drops_ != nullptr) link_drops_->Increment();
          if (journal_ != nullptr) {
            journal_->Drop(child, url, obs::kJournalDropNotBetter,
                           visit->judgment.relevant);
          }
          for (CrawlObserver* o : link_observers_) {
            o->OnDrop(child, LinkDropReason::kNotBetter);
          }
          break;
        case CrawlState::Offer::kFirst: {
          obs::ScopedStage push_stage(profiler_, obs::Stage::kFrontierPush);
          context.annotation = d.annotation;
          scheduler_->PushScored(child, d.priority, context);
          if (pushes_ != nullptr) {
            pushes_->Increment();
            push_level_->Record(
                static_cast<uint64_t>(std::max(d.priority, 0)));
          }
          if (journal_ != nullptr) {
            journal_->Link(/*repush=*/false, child, url, d.priority,
                           d.annotation, visit->judgment.relevant);
          }
          for (CrawlObserver* o : link_observers_) o->OnEnqueue(child, d);
          break;
        }
        case CrawlState::Offer::kBetter: {
          obs::ScopedStage push_stage(profiler_, obs::Stage::kFrontierPush);
          context.annotation = d.annotation;
          scheduler_->PushScored(child, d.priority, context);
          if (repushes_ != nullptr) {
            repushes_->Increment();
            push_level_->Record(
                static_cast<uint64_t>(std::max(d.priority, 0)));
          }
          if (journal_ != nullptr) {
            journal_->Link(/*repush=*/true, child, url, d.priority,
                           d.annotation, visit->judgment.relevant);
          }
          for (CrawlObserver* o : link_observers_) o->OnRePush(child, d);
          break;
        }
      }
    }
  }

  ++pages_crawled_;
  FetchEvent event;
  event.url = url;
  event.ok = ok;
  event.truly_relevant = web_->graph().IsRelevant(url);
  event.judged_relevant = visit->judgment.relevant;
  event.frontier_size = scheduler_->size();
  event.pages_crawled = pages_crawled_;
  if (frontier_depth_ != nullptr) frontier_depth_->Record(event.frontier_size);
  if (journal_ != nullptr) {
    journal_->Fetch(url, ok, event.truly_relevant, event.judged_relevant,
                    event.frontier_size, pages_crawled_);
  }
  for (CrawlObserver* o : observers_) o->OnFetch(event);
  if (pages_crawled_ % sample_interval_ == 0) {
    NotifySample(/*is_final=*/false);
  }
  return Status::OK();
}

void CrawlEngine::NotifySample(bool is_final) {
  obs::ScopedStage stage(profiler_, obs::Stage::kSample);
  SampleEvent event;
  event.pages_crawled = pages_crawled_;
  event.frontier_size = scheduler_->size();
  event.is_final = is_final;
  if (journal_ != nullptr) {
    journal_->Sample(event.frontier_size, pages_crawled_, is_final);
  }
  for (CrawlObserver* o : observers_) o->OnSample(event);
}

snapshot::CrawlFingerprint CrawlEngine::Fingerprint() const {
  const WebGraph& graph = web_->graph();
  snapshot::CrawlFingerprint fp;
  fp.num_pages = graph.num_pages();
  fp.num_hosts = graph.num_hosts();
  fp.num_links = graph.num_links();
  fp.generator_seed = graph.generator_seed();
  fp.target_language = static_cast<uint8_t>(graph.target_language());
  fp.strategy_name = strategy_->name();
  fp.num_priority_levels =
      static_cast<uint64_t>(strategy_->num_priority_levels());
  fp.seed_priority = static_cast<uint64_t>(strategy_->seed_priority());
  fp.classifier_name = classifier_name_;
  fp.sample_interval = sample_interval_;
  fp.parse_html = options_.parse_html;
  fp.scheduler_kind = scheduler_->SnapshotKind();
  fp.batch_k = options_.batch_k;
  fp.scorer_spec = options_.scorer_spec;
  fp.dataset_file = options_.dataset_file;
  fp.memory_budget_mb = options_.memory_budget_mb;
  return fp;
}

Status CrawlEngine::SaveSnapshot(const std::string& path,
                                 uint64_t* bytes_written) const {
  obs::ScopedStage stage(profiler_, obs::Stage::kCheckpoint);
  snapshot::SnapshotWriter writer;

  snapshot::SectionWriter fingerprint;
  Fingerprint().Save(&fingerprint);
  writer.AddSection(snapshot::SectionId::kFingerprint, fingerprint);

  snapshot::SectionWriter engine;
  engine.U64(pages_crawled_);
  writer.AddSection(snapshot::SectionId::kEngine, engine);

  snapshot::SectionWriter crawl_state;
  state_.Save(&crawl_state);
  writer.AddSection(snapshot::SectionId::kCrawlState, crawl_state);

  snapshot::SectionWriter frontier;
  LSWC_RETURN_IF_ERROR(scheduler_->SaveState(&frontier));
  writer.AddSection(snapshot::SectionId::kFrontier, frontier);

  snapshot::SectionWriter metrics;
  LSWC_RETURN_IF_ERROR(metrics_.Save(&metrics));
  writer.AddSection(snapshot::SectionId::kMetrics, metrics);

  if (rng_ != nullptr) {
    snapshot::SectionWriter rng;
    for (uint64_t word : rng_->state()) rng.U64(word);
    writer.AddSection(snapshot::SectionId::kRng, rng);
  }

  return writer.WriteFile(path, bytes_written);
}

Status CrawlEngine::ResumeFromSnapshot(const std::string& path) {
  StatusOr<snapshot::SnapshotReader> file = snapshot::SnapshotReader::Open(path);
  LSWC_RETURN_IF_ERROR(file.status());

  // Fingerprint first: refuse to touch state if the snapshot came from a
  // different dataset / strategy / classifier / scheduler configuration.
  {
    StatusOr<snapshot::SectionReader> section =
        file->Section(snapshot::SectionId::kFingerprint);
    LSWC_RETURN_IF_ERROR(section.status());
    StatusOr<snapshot::CrawlFingerprint> fp =
        snapshot::CrawlFingerprint::Load(&*section);
    LSWC_RETURN_IF_ERROR(fp.status());
    LSWC_RETURN_IF_ERROR(section->Finish());
    LSWC_RETURN_IF_ERROR(Fingerprint().Match(*fp));
  }
  {
    StatusOr<snapshot::SectionReader> section =
        file->Section(snapshot::SectionId::kEngine);
    LSWC_RETURN_IF_ERROR(section.status());
    pages_crawled_ = section->U64();
    LSWC_RETURN_IF_ERROR(section->Finish());
  }
  {
    StatusOr<snapshot::SectionReader> section =
        file->Section(snapshot::SectionId::kCrawlState);
    LSWC_RETURN_IF_ERROR(section.status());
    LSWC_RETURN_IF_ERROR(state_.Restore(&*section));
    LSWC_RETURN_IF_ERROR(section->Finish());
  }
  {
    StatusOr<snapshot::SectionReader> section =
        file->Section(snapshot::SectionId::kFrontier);
    LSWC_RETURN_IF_ERROR(section.status());
    LSWC_RETURN_IF_ERROR(scheduler_->RestoreState(&*section));
    LSWC_RETURN_IF_ERROR(section->Finish());
  }
  {
    StatusOr<snapshot::SectionReader> section =
        file->Section(snapshot::SectionId::kMetrics);
    LSWC_RETURN_IF_ERROR(section.status());
    LSWC_RETURN_IF_ERROR(metrics_.Restore(&*section));
    LSWC_RETURN_IF_ERROR(section->Finish());
  }
  if (rng_ != nullptr && file->HasSection(snapshot::SectionId::kRng)) {
    StatusOr<snapshot::SectionReader> section =
        file->Section(snapshot::SectionId::kRng);
    LSWC_RETURN_IF_ERROR(section.status());
    std::array<uint64_t, 4> state;
    for (uint64_t& word : state) word = section->U64();
    LSWC_RETURN_IF_ERROR(section->Finish());
    rng_->set_state(state);
  }
  resumed_ = true;
  return Status::OK();
}

}  // namespace lswc
