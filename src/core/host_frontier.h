#ifndef LSWC_CORE_HOST_FRONTIER_H_
#define LSWC_CORE_HOST_FRONTIER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <queue>
#include <vector>

#include "obs/obs_fwd.h"
#include "snapshot/section.h"
#include "util/status.h"
#include "webgraph/page.h"

namespace lswc {

/// The per-server URL queue of a real crawler — the component the paper
/// notes its first simulator omits ("implemented with the omission of
/// details such as elapsed time and per-server queue"). Pending URLs are
/// grouped by host; each host keeps strategy-priority buckets internally
/// and carries a politeness ready-time. The scheduler always serves the
/// earliest-ready host, so no amount of pending URLs on a hot host can
/// starve the rest of the frontier.
///
/// Ties between simultaneously-ready hosts are broken by (a) the highest
/// pending strategy priority across the tied hosts, then (b) global
/// enqueue order within that priority level. This serves the most
/// promising ready host first, makes scheduling fully deterministic,
/// and — when every politeness delay is zero — collapses the pop order
/// to exactly the global bucket-queue order of the timeless simulator
/// (the property the engine-parity test pins down).
class HostFrontier {
 public:
  /// `num_hosts` sizes the host table; `num_levels` the per-host
  /// priority buckets.
  HostFrontier(uint32_t num_hosts, int num_levels);

  /// Enqueues `url` for `host` at `priority` (higher pops first within
  /// the host).
  void Push(PageId url, uint32_t host, int priority);

  /// Earliest ready time over hosts with pending URLs; nullopt if empty.
  std::optional<double> NextReadyTime();

  /// Pops the highest-priority URL of the earliest-ready host whose
  /// ready time is <= now; nullopt when nothing is eligible yet (or the
  /// frontier is empty).
  std::optional<PageId> PopReady(double now);

  /// Records that `host` was just hit and may not be hit again before
  /// `next_free`.
  void SetHostNextFree(uint32_t host, double next_free);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  size_t max_size_seen() const { return max_size_; }
  /// Hosts that currently have pending URLs.
  size_t pending_hosts() const { return pending_hosts_; }

  /// Exports scheduling activity into `registry` (may be null):
  /// counters `host_frontier.pushes` / `host_frontier.pops`, histogram
  /// `host_frontier.wait_us` (simulated µs a ready host waited before
  /// being served — deterministic, derived from the simulated clock),
  /// and gauge `host_frontier.pending_hosts`.
  void AttachObs(obs::MetricsRegistry* registry);

  /// Serializes the full scheduling state: every host with pending URLs
  /// or a future ready time, plus the global enqueue counter. The
  /// ready-heap itself is not stored — it is rebuilt on Restore, which
  /// is safe because the heap keys (ready, best_level, front_seq) are
  /// derived from the stored state and globally unique (seq numbers
  /// never repeat), so the rebuilt pop order is identical; stamps and
  /// stale entries are unobservable bookkeeping.
  Status Save(snapshot::SectionWriter* w) const;
  Status Restore(snapshot::SectionReader* r);

 private:
  /// One pending URL; `seq` is the global enqueue order used for
  /// cross-host FIFO tie-breaking.
  struct Entry {
    PageId url;
    uint64_t seq;
  };
  struct HostState {
    std::vector<std::deque<Entry>> levels;
    size_t pending = 0;
    double ready = 0.0;
    int best_level = -1;      // Highest non-empty level, -1 when empty.
    uint64_t heap_stamp = 0;  // Matches the live heap entry.
  };
  struct HeapEntry {
    double ready;
    int best_level;
    uint64_t front_seq;
    uint32_t host;
    uint64_t stamp;
    /// Min-heap order: earliest ready, then highest best level, then
    /// oldest front entry.
    bool operator>(const HeapEntry& o) const {
      if (ready != o.ready) return ready > o.ready;
      if (best_level != o.best_level) return best_level < o.best_level;
      return front_seq > o.front_seq;
    }
  };

  /// (Re-)publishes `host`'s current scheduling key; the previous heap
  /// entry becomes stale via the stamp.
  void PushHeap(uint32_t host);
  PageId PopFromHost(HostState* state);

  int num_levels_;
  std::vector<HostState> hosts_;
  std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                      std::greater<HeapEntry>>
      heap_;
  size_t size_ = 0;
  size_t max_size_ = 0;
  size_t pending_hosts_ = 0;
  uint64_t stamp_counter_ = 0;
  uint64_t seq_counter_ = 0;
  obs::Counter* obs_pushes_ = nullptr;
  obs::Counter* obs_pops_ = nullptr;
  obs::Histogram* obs_wait_us_ = nullptr;
  obs::Gauge* obs_pending_hosts_ = nullptr;
};

}  // namespace lswc

#endif  // LSWC_CORE_HOST_FRONTIER_H_
