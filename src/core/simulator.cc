#include "core/simulator.h"

#include "core/spilling_frontier.h"

#include <vector>

namespace lswc {

Simulator::Simulator(VirtualWebSpace* web, Classifier* classifier,
                     const CrawlStrategy* strategy,
                     SimulationOptions options)
    : web_(web),
      classifier_(classifier),
      strategy_(strategy),
      options_(options) {}

StatusOr<SimulationResult> Simulator::Run() {
  const WebGraph& graph = web_->graph();
  const size_t num_pages = graph.num_pages();
  if (graph.seeds().empty()) {
    return Status::FailedPrecondition("graph has no seed URLs");
  }

  // Frontier: FIFO when the strategy uses a single level; bounded or
  // disk-spilling bucket queue when the caller set a budget.
  std::unique_ptr<Frontier> frontier;
  BoundedFrontier* bounded = nullptr;
  if (options_.frontier_capacity > 0 &&
      options_.frontier_memory_budget > 0) {
    return Status::InvalidArgument(
        "frontier_capacity and frontier_memory_budget are exclusive");
  }
  if (options_.frontier_memory_budget > 0) {
    SpillingFrontier::Options spill;
    spill.memory_budget = options_.frontier_memory_budget;
    spill.chunk = std::min<size_t>(4096, spill.memory_budget / 2);
    spill.spill_dir = options_.spill_dir;
    auto f = SpillingFrontier::Create(
        std::max(1, strategy_->num_priority_levels()), spill);
    if (!f.ok()) return f.status();
    frontier = std::move(f).value();
  } else if (options_.frontier_capacity > 0) {
    auto b = std::make_unique<BoundedFrontier>(
        std::max(1, strategy_->num_priority_levels()),
        options_.frontier_capacity);
    bounded = b.get();
    frontier = std::move(b);
  } else if (strategy_->num_priority_levels() <= 1) {
    frontier = std::make_unique<FifoFrontier>();
  } else {
    frontier = std::make_unique<BucketFrontier>(
        strategy_->num_priority_levels());
  }

  Visitor visitor(web_, classifier_, options_.parse_html);

  uint64_t sample_interval = options_.sample_interval;
  if (sample_interval == 0) {
    const uint64_t horizon =
        options_.max_pages != 0 ? options_.max_pages : num_pages;
    sample_interval = std::max<uint64_t>(1, horizon / 400);
  }
  const DatasetStats stats = graph.ComputeStats();
  MetricsRecorder metrics(stats.relevant_ok_pages, sample_interval);

  // Per-URL crawl state. A URL is fetched at most once; while it waits in
  // the queue, a better referrer (higher priority or a shorter
  // irrelevant-run annotation) may re-push it — the stale entry is
  // skipped at pop time. This lazy-decrease-key is what lets the
  // *prioritized* limited-distance mode propagate minimal distances
  // (near-relevant URLs pop first, so their children inherit the best
  // annotations), while FIFO orders cannot exploit it — the mechanism
  // behind Fig 7's N-invariance.
  std::vector<bool> crawled(num_pages, false);
  std::vector<bool> enqueued(num_pages, false);
  std::vector<uint8_t> annotation(num_pages, 0);
  std::vector<int8_t> priority(num_pages, 0);

  for (PageId seed : graph.seeds()) {
    if (enqueued[seed]) continue;
    enqueued[seed] = true;
    annotation[seed] = 0;
    priority[seed] = static_cast<int8_t>(strategy_->seed_priority());
    frontier->Push(seed, strategy_->seed_priority());
  }

  VisitResult visit;
  while (true) {
    if (options_.max_pages != 0 &&
        metrics.pages_crawled() >= options_.max_pages) {
      break;
    }
    const auto next = frontier->Pop();
    if (!next.has_value()) break;
    const PageId url = *next;
    if (crawled[url]) continue;  // Stale duplicate from a re-push.
    crawled[url] = true;

    LSWC_RETURN_IF_ERROR(visitor.Visit(url, &visit));
    const bool ok = visit.response.ok();

    if (ok) {
      const ParentInfo parent{url, visit.judgment.relevant, annotation[url]};
      for (PageId child : visit.links) {
        if (crawled[child]) continue;
        const LinkDecision d = strategy_->OnLink(parent, child);
        if (!d.enqueue) continue;
        const bool better = !enqueued[child] ||
                            d.annotation < annotation[child] ||
                            d.priority > priority[child];
        if (!better) continue;
        enqueued[child] = true;
        annotation[child] = d.annotation;
        priority[child] = static_cast<int8_t>(d.priority);
        frontier->Push(child, d.priority);
      }
    }
    metrics.OnPageCrawled(ok, graph.IsRelevant(url), visit.judgment.relevant,
                          frontier->size());
  }
  metrics.Finish(frontier->size());

  SimulationResult result{
      SimulationSummary{},
      metrics.series(),
  };
  result.summary.pages_crawled = metrics.pages_crawled();
  result.summary.ok_pages_crawled = metrics.confusion().total();
  result.summary.relevant_crawled = metrics.relevant_crawled();
  result.summary.max_queue_size = frontier->max_size_seen();
  if (bounded != nullptr) {
    result.summary.urls_dropped = bounded->dropped_count();
  }
  result.summary.final_harvest_pct = metrics.harvest_pct();
  result.summary.final_coverage_pct = metrics.coverage_pct();
  result.summary.classifier_confusion = metrics.confusion();
  return result;
}

StatusOr<SimulationResult> RunSimulation(const WebGraph& graph,
                                         Classifier* classifier,
                                         const CrawlStrategy& strategy,
                                         RenderMode render_mode,
                                         SimulationOptions options) {
  InMemoryLinkDb link_db(&graph);
  VirtualWebSpace web(&graph, &link_db, render_mode);
  Simulator sim(&web, classifier, &strategy, options);
  return sim.Run();
}

}  // namespace lswc
