#include "core/simulator.h"

#include <memory>

#include "core/checkpoint.h"
#include "core/crawl_engine.h"
#include "core/frontier_factory.h"
#include "core/obs_observers.h"
#include "core/sharded_engine.h"
#include "core/telemetry_publisher.h"
#include "obs/run_obs.h"
#include "store/memory_budget.h"

namespace lswc {

namespace {

/// The display label for telemetry snapshots and the progress line.
std::string ResolveRunLabel(const SimulationOptions& options) {
  if (!options.run_label.empty()) return options.run_label;
  if (!options.snapshot_label.empty()) return options.snapshot_label;
  return "crawl";
}

/// Builds the run's TelemetryPublisher when either consumer wants it:
/// a telemetry context (live endpoint / watchdog / flight recorder) or
/// a --progress-every stderr line (which needs an enabled obs bundle,
/// matching the old ProgressObserver gate).
std::unique_ptr<TelemetryPublisher> MakePublisher(
    const SimulationOptions& options, obs::RunObs* obs,
    const MetricsRecorder* metrics,
    std::function<void(std::vector<obs::ShardState>*)> shard_pending) {
  const bool progress = obs != nullptr && options.progress_every != 0;
  if (options.telemetry == nullptr && !progress) return nullptr;
  TelemetryPublisher::Options pub;
  pub.telemetry = options.telemetry;
  pub.run_label = ResolveRunLabel(options);
  pub.metrics = metrics;
  pub.obs = obs;
  pub.progress_every = progress ? options.progress_every : 0;
  pub.shard_pending = std::move(shard_pending);
  return std::make_unique<TelemetryPublisher>(std::move(pub));
}

/// Applies a global memory budget to the frontier knobs: under a budget
/// the spilling frontier becomes the default, sized to the plan's
/// frontier share. Explicit frontier settings and the regimes that need
/// the complete pending set in memory (batch, sharded) are left alone.
void ApplyMemoryBudget(const SimulationOptions& options,
                       FrontierOptions* frontier) {
  if (options.memory_budget_mb == 0) return;
  if (options.shards != 0 || options.frontier_kind == "batch") return;
  if (options.frontier_capacity != 0 || options.frontier_memory_budget != 0) {
    return;
  }
  const store::MemoryBudgetPlan plan =
      store::PlanMemoryBudget(options.memory_budget_mb);
  frontier->memory_budget = plan.frontier_urls;
}

/// The resolved batch identity of a run: (0, "") outside the batch
/// regime, otherwise the defaults filled in. Recorded in the snapshot
/// fingerprint, so defaults must resolve to one canonical form here.
struct BatchIdentity {
  uint64_t batch_k = 0;
  std::string scorer_spec;
};

BatchIdentity ResolveBatchIdentity(const SimulationOptions& options) {
  BatchIdentity id;
  if (options.frontier_kind != "batch") return id;
  id.batch_k = options.batch_k == 0 ? kDefaultBatchK : options.batch_k;
  id.scorer_spec =
      options.scorers.empty() ? kDefaultScorerSpec : options.scorers;
  return id;
}

}  // namespace

Simulator::Simulator(VirtualWebSpace* web, Classifier* classifier,
                     const CrawlStrategy* strategy,
                     SimulationOptions options)
    : web_(web),
      classifier_(classifier),
      strategy_(strategy),
      options_(options) {}

StatusOr<SimulationResult> Simulator::Run() {
  if (options_.shards >= 1) return RunSharded();
  const BatchIdentity batch = ResolveBatchIdentity(options_);
  FrontierOptions frontier_options;
  frontier_options.kind = options_.frontier_kind;
  frontier_options.capacity = options_.frontier_capacity;
  frontier_options.memory_budget = options_.frontier_memory_budget;
  frontier_options.spill_dir = options_.spill_dir;
  frontier_options.batch_k = options_.batch_k;
  frontier_options.scorers = options_.scorers;
  frontier_options.scorer_seed = web_->graph().generator_seed();
  frontier_options.graph = &web_->graph();
  ApplyMemoryBudget(options_, &frontier_options);
  auto selection = MakeFrontier(*strategy_, frontier_options);
  if (!selection.ok()) return selection.status();
  FrontierPopScheduler scheduler(selection->frontier.get());

  obs::RunObs* obs =
      options_.obs != nullptr && options_.obs->enabled ? options_.obs
                                                       : nullptr;
  CrawlEngineOptions engine_options;
  engine_options.max_pages = options_.max_pages;
  engine_options.sample_interval = options_.sample_interval;
  engine_options.parse_html = options_.parse_html;
  engine_options.obs = obs;
  engine_options.journal = options_.journal;
  engine_options.batch_k = batch.batch_k;
  engine_options.scorer_spec = batch.scorer_spec;
  engine_options.dataset_file = options_.dataset_file;
  engine_options.memory_budget_mb = options_.memory_budget_mb;
  CrawlEngine engine(web_, classifier_, strategy_, &scheduler,
                     engine_options);
  if (options_.rng != nullptr) engine.AttachRng(options_.rng);
  if (selection->batch != nullptr && options_.journal != nullptr) {
    selection->batch->set_journal(options_.journal);
  }
  std::unique_ptr<TraceEventObserver> trace_events;
  if (obs != nullptr) {
    selection->frontier->AttachObs(&obs->registry, obs->trace.get());
    if (selection->batch != nullptr) {
      selection->batch->set_profiler(&obs->profiler);
    }
    if (obs->trace != nullptr) {
      trace_events = std::make_unique<TraceEventObserver>(obs->trace.get());
      engine.AddObserver(trace_events.get());
    }
  }
  std::unique_ptr<TelemetryPublisher> publisher =
      MakePublisher(options_, obs, &engine.metrics(), nullptr);
  if (publisher != nullptr) engine.AddObserver(publisher.get());
  for (CrawlObserver* observer : options_.observers) {
    engine.AddObserver(observer);
  }
  // Checkpointing attaches last so every other observer's contribution
  // to the run state (metrics above all) is recorded before the save.
  std::unique_ptr<CheckpointObserver> checkpoint;
  if (options_.checkpoint_every_pages != 0) {
    if (options_.snapshot_dir.empty()) {
      return Status::InvalidArgument(
          "checkpoint_every_pages requires snapshot_dir");
    }
    const std::string label = SanitizeSnapshotLabel(
        options_.snapshot_label.empty() ? "crawl" : options_.snapshot_label);
    checkpoint = std::make_unique<CheckpointObserver>(
        &engine, options_.checkpoint_every_pages,
        options_.snapshot_dir + "/" + label + ".snap");
    checkpoint->AttachObs(obs);
    engine.AddObserver(checkpoint.get());
  }
  if (!options_.resume_path.empty()) {
    LSWC_RETURN_IF_ERROR(engine.ResumeFromSnapshot(options_.resume_path));
  }
  LSWC_RETURN_IF_ERROR(engine.Run());
  if (publisher != nullptr) publisher->PublishFinal();
  if (checkpoint != nullptr) {
    // A failed save never aborts the crawl mid-run; it surfaces here.
    LSWC_RETURN_IF_ERROR(checkpoint->status());
  }

  const MetricsRecorder& metrics = engine.metrics();
  SimulationResult result{
      SimulationSummary{},
      metrics.series(),
  };
  result.summary.pages_crawled = metrics.pages_crawled();
  result.summary.ok_pages_crawled = metrics.confusion().total();
  result.summary.relevant_crawled = metrics.relevant_crawled();
  result.summary.max_queue_size = selection->frontier->max_size_seen();
  if (selection->bounded != nullptr) {
    result.summary.urls_dropped = selection->bounded->dropped_count();
  }
  result.summary.final_harvest_pct = metrics.harvest_pct();
  result.summary.final_coverage_pct = metrics.coverage_pct();
  result.summary.classifier_confusion = metrics.confusion();
  return result;
}

StatusOr<SimulationResult> Simulator::RunSharded() {
  const BatchIdentity batch = ResolveBatchIdentity(options_);
  FrontierOptions frontier_options;
  frontier_options.kind = options_.frontier_kind;
  frontier_options.capacity = options_.frontier_capacity;
  frontier_options.memory_budget = options_.frontier_memory_budget;
  frontier_options.spill_dir = options_.spill_dir;
  frontier_options.batch_k = options_.batch_k;
  frontier_options.scorers = options_.scorers;
  frontier_options.scorer_seed = web_->graph().generator_seed();
  frontier_options.graph = &web_->graph();

  obs::RunObs* obs =
      options_.obs != nullptr && options_.obs->enabled ? options_.obs
                                                       : nullptr;
  ShardedEngineOptions engine_options;
  engine_options.num_shards = options_.shards;
  engine_options.batch_size = options_.shard_batch;
  engine_options.max_pages = options_.max_pages;
  engine_options.sample_interval = options_.sample_interval;
  engine_options.parse_html = options_.parse_html;
  engine_options.obs = obs;
  engine_options.journal = options_.journal;
  engine_options.batch_k = batch.batch_k;
  engine_options.scorer_spec = batch.scorer_spec;
  engine_options.dataset_file = options_.dataset_file;
  engine_options.memory_budget_mb = options_.memory_budget_mb;
  auto created = ShardedCrawlEngine::Create(web_, classifier_, strategy_,
                                            frontier_options, engine_options);
  if (!created.ok()) return created.status();
  ShardedCrawlEngine& engine = **created;
  if (options_.rng != nullptr) engine.AttachRng(options_.rng);
  std::unique_ptr<TraceEventObserver> trace_events;
  if (obs != nullptr) {
    if (obs->trace != nullptr) {
      trace_events = std::make_unique<TraceEventObserver>(obs->trace.get());
      engine.AddObserver(trace_events.get());
    }
  }
  // The publisher's OnFetch fires from the serial commit loop, so the
  // shard-pending callback reads shard frontiers race-free.
  std::unique_ptr<TelemetryPublisher> publisher = MakePublisher(
      options_, obs, &engine.metrics(),
      [&engine](std::vector<obs::ShardState>* out) {
        engine.AppendShardStates(out);
      });
  if (publisher != nullptr) engine.AddObserver(publisher.get());
  for (CrawlObserver* observer : options_.observers) {
    engine.AddObserver(observer);
  }
  std::unique_ptr<CheckpointObserver> checkpoint;
  if (options_.checkpoint_every_pages != 0) {
    if (options_.snapshot_dir.empty()) {
      return Status::InvalidArgument(
          "checkpoint_every_pages requires snapshot_dir");
    }
    const std::string label = SanitizeSnapshotLabel(
        options_.snapshot_label.empty() ? "crawl" : options_.snapshot_label);
    checkpoint = std::make_unique<CheckpointObserver>(
        &engine, options_.checkpoint_every_pages,
        options_.snapshot_dir + "/" + label + ".snap");
    checkpoint->AttachObs(obs);
    engine.AddObserver(checkpoint.get());
  }
  if (!options_.resume_path.empty()) {
    LSWC_RETURN_IF_ERROR(engine.ResumeFromSnapshot(options_.resume_path));
  }
  LSWC_RETURN_IF_ERROR(engine.Run());
  if (publisher != nullptr) publisher->PublishFinal();
  if (checkpoint != nullptr) {
    LSWC_RETURN_IF_ERROR(checkpoint->status());
  }

  const MetricsRecorder& metrics = engine.metrics();
  SimulationResult result{
      SimulationSummary{},
      metrics.series(),
  };
  result.summary.pages_crawled = metrics.pages_crawled();
  result.summary.ok_pages_crawled = metrics.confusion().total();
  result.summary.relevant_crawled = metrics.relevant_crawled();
  result.summary.max_queue_size = engine.max_frontier_size();
  result.summary.final_harvest_pct = metrics.harvest_pct();
  result.summary.final_coverage_pct = metrics.coverage_pct();
  result.summary.classifier_confusion = metrics.confusion();
  return result;
}

StatusOr<SimulationResult> RunSimulation(const WebGraph& graph,
                                         Classifier* classifier,
                                         const CrawlStrategy& strategy,
                                         RenderMode render_mode,
                                         SimulationOptions options) {
  InMemoryLinkDb link_db(&graph);
  VirtualWebSpace web(&graph, &link_db, render_mode);
  Simulator sim(&web, classifier, &strategy, options);
  return sim.Run();
}

}  // namespace lswc
