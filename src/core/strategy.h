#ifndef LSWC_CORE_STRATEGY_H_
#define LSWC_CORE_STRATEGY_H_

#include <memory>
#include <string>

#include "webgraph/page.h"

namespace lswc {

/// What a strategy knows about the page whose links are being expanded:
/// its identity, the classifier's relevance verdict, and the strategy's
/// own per-URL annotation (assigned when the page itself was enqueued —
/// the limited-distance strategies use it as "consecutive irrelevant
/// pages on the path ending at this page").
struct ParentInfo {
  PageId page = 0;
  bool relevant = false;
  uint8_t annotation = 0;
};

/// Verdict for one extracted link.
struct LinkDecision {
  bool enqueue = false;
  /// Frontier priority level (higher pops first).
  int priority = 0;
  /// Annotation stored with the child URL and echoed back via ParentInfo
  /// when the child is later expanded.
  uint8_t annotation = 0;
};

/// A priority-assignment strategy — the "observer" component of the
/// paper's simulator (Fig 2), §3.3. The Visitor consults it once per
/// extracted link. The paper's strategies are pure functions of the
/// parent's judgment and annotation; `child` is additionally provided
/// for strategies that keep per-URL knowledge (context-graph layers,
/// distilled hub scores).
class CrawlStrategy {
 public:
  virtual ~CrawlStrategy() = default;

  virtual LinkDecision OnLink(const ParentInfo& parent,
                              PageId child) const = 0;

  /// Priority level for seed URLs.
  virtual int seed_priority() const { return 0; }

  /// Number of frontier priority levels the strategy uses.
  virtual int num_priority_levels() const { return 1; }

  virtual std::string name() const = 0;
};

/// Baseline: enqueue every link at one priority (plain BFS order).
class BreadthFirstStrategy final : public CrawlStrategy {
 public:
  LinkDecision OnLink(const ParentInfo& parent,
                      PageId child) const override;
  std::string name() const override { return "breadth-first"; }
};

/// Simple strategy, hard-focused mode (§3.3.1, Table 2): follow links
/// only out of relevant pages; links from irrelevant referrers are
/// discarded outright.
class HardFocusedStrategy final : public CrawlStrategy {
 public:
  LinkDecision OnLink(const ParentInfo& parent,
                      PageId child) const override;
  std::string name() const override { return "hard-focused"; }
};

/// Simple strategy, soft-focused mode (§3.3.1, Table 2): never discard;
/// links from relevant referrers get high priority, links from
/// irrelevant referrers get low priority.
class SoftFocusedStrategy final : public CrawlStrategy {
 public:
  LinkDecision OnLink(const ParentInfo& parent,
                      PageId child) const override;
  int seed_priority() const override { return 1; }
  int num_priority_levels() const override { return 2; }
  std::string name() const override { return "soft-focused"; }
};

/// Limited-distance strategy (§3.3.2, Fig 1): a crawl path may pass
/// through at most N consecutive irrelevant pages. The annotation tracks
/// the current run length of irrelevant pages; a link whose run would
/// exceed N is discarded.
///
/// Non-prioritized mode: all surviving links share one priority.
/// Prioritized mode: priority decreases with the distance from the last
/// relevant referrer (priority = N - run-length), so near-relevant URLs
/// pop first — the refinement that keeps harvest rate flat in N (Fig 7).
///
/// N = 0 degenerates to hard-focused; N -> infinity with two levels
/// approximates soft-focused. That spectrum is the paper's design space.
class LimitedDistanceStrategy final : public CrawlStrategy {
 public:
  LimitedDistanceStrategy(int max_distance, bool prioritized);

  LinkDecision OnLink(const ParentInfo& parent,
                      PageId child) const override;
  int seed_priority() const override { return prioritized_ ? max_distance_ : 0; }
  int num_priority_levels() const override {
    return prioritized_ ? max_distance_ + 1 : 1;
  }
  std::string name() const override;

  int max_distance() const { return max_distance_; }
  bool prioritized() const { return prioritized_; }

 private:
  int max_distance_;
  bool prioritized_;
};

}  // namespace lswc

#endif  // LSWC_CORE_STRATEGY_H_
