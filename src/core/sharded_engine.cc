#include "core/sharded_engine.h"

#include <algorithm>
#include <array>

#include "obs/journal.h"
#include "obs/run_obs.h"
#include "obs/telemetry.h"
#include "snapshot/snapshot_file.h"

namespace lswc {

namespace {

// Same auto-cadence as CrawlEngine: ~400 samples over the run horizon.
uint64_t ResolveSampleInterval(uint64_t requested, uint64_t max_pages,
                               size_t num_pages) {
  if (requested != 0) return requested;
  const uint64_t horizon = max_pages != 0 ? max_pages : num_pages;
  return std::max<uint64_t>(1, horizon / 400);
}

/// Fallback for classifiers that cannot Clone(): every shard shares the
/// single instance, serialized through one mutex. Correct (and
/// TSan-clean) but slower than per-shard clones; Judge results stay
/// deterministic because the underlying classifier is per-page
/// deterministic.
class LockedClassifier final : public Classifier {
 public:
  LockedClassifier(Classifier* base, std::mutex* mu) : base_(base), mu_(mu) {}

  RelevanceJudgment Judge(const FetchResponse& response) override {
    std::lock_guard<std::mutex> lock(*mu_);
    return base_->Judge(response);
  }
  Language target_language() const override {
    return base_->target_language();
  }
  std::string name() const override { return base_->name(); }

 private:
  Classifier* base_;
  std::mutex* mu_;
};

}  // namespace

ShardedCrawlEngine::ShardedCrawlEngine(VirtualWebSpace* web,
                                       Classifier* classifier,
                                       const CrawlStrategy* strategy,
                                       ShardedEngineOptions options)
    : web_(web),
      strategy_(strategy),
      options_(options),
      router_(web->graph(), options.num_shards),
      sample_interval_(ResolveSampleInterval(options.sample_interval,
                                             options.max_pages,
                                             web->graph().num_pages())),
      batch_size_(options.batch_size == 0 ? 256 : options.batch_size),
      metrics_(web->graph().ComputeStats().relevant_ok_pages,
               sample_interval_),
      classifier_name_(classifier->name()),
      journal_(options.journal) {
  AddObserver(&metrics_);
  if (options.obs != nullptr && options.obs->enabled) {
    obs::RunObs* obs = options.obs;
    profiler_ = &obs->profiler;
    frontier_depth_ = obs->registry.histogram("frontier.depth");
    push_level_ = obs->registry.histogram("frontier.push_level");
    pushes_ = obs->registry.counter("crawl.pushes");
    repushes_ = obs->registry.counter("crawl.repushes");
    link_drops_ = obs->registry.counter("crawl.link_drops");
  }
}

StatusOr<std::unique_ptr<ShardedCrawlEngine>> ShardedCrawlEngine::Create(
    VirtualWebSpace* web, Classifier* classifier,
    const CrawlStrategy* strategy, const FrontierOptions& frontier_options,
    ShardedEngineOptions options) {
  if (options.num_shards == 0) {
    return Status::InvalidArgument("sharded engine needs num_shards >= 1");
  }
  const bool batch = frontier_options.kind == "batch";
  std::vector<std::unique_ptr<ShardFrontier>> pop_frontiers;
  std::vector<std::unique_ptr<BatchFrontier>> batch_frontiers;
  if (batch) {
    auto f = MakeBatchFrontiers(frontier_options, options.num_shards);
    LSWC_RETURN_IF_ERROR(f.status());
    batch_frontiers = std::move(f).value();
  } else {
    auto f =
        MakeShardFrontiers(*strategy, frontier_options, options.num_shards);
    LSWC_RETURN_IF_ERROR(f.status());
    pop_frontiers = std::move(f).value();
  }

  std::unique_ptr<ShardedCrawlEngine> engine(
      new ShardedCrawlEngine(web, classifier, strategy, options));
  if (batch) {
    engine->batch_mode_ = true;
    engine->select_k_ = batch_frontiers[0]->select_k();
    // Canonical batch identity for the fingerprint: the constructed
    // frontier's resolved values, not the raw caller options.
    engine->options_.batch_k = engine->select_k_;
    engine->options_.scorer_spec = batch_frontiers[0]->scorer().name();
    if (options.obs != nullptr && options.obs->enabled) {
      engine->rescore_rounds_ =
          options.obs->registry.counter("frontier.rescore_rounds");
      engine->selected_urls_ =
          options.obs->registry.counter("frontier.selected_urls");
    }
  }
  const WebGraph& graph = web->graph();
  const uint32_t num_shards = engine->router_.num_shards();

  // Global id -> (owner, local rank within owner, ascending page order).
  std::vector<size_t> counts(num_shards, 0);
  engine->local_id_.resize(graph.num_pages());
  for (PageId p = 0; p < graph.num_pages(); ++p) {
    const uint32_t s = engine->router_.owner(p);
    engine->local_id_[p] = static_cast<uint32_t>(counts[s]++);
  }

  const bool obs_on = options.obs != nullptr && options.obs->enabled;
  for (uint32_t s = 0; s < num_shards; ++s) {
    auto shard = std::make_unique<Shard>(
        counts[s], Mix64(graph.generator_seed() ^ (uint64_t{s} + 1)));
    shard->link_db = std::make_unique<InMemoryLinkDb>(&graph);
    shard->web = std::make_unique<VirtualWebSpace>(&graph,
                                                   shard->link_db.get(),
                                                   web->render_mode());
    std::unique_ptr<Classifier> clone = classifier->Clone();
    if (clone != nullptr) {
      shard->classifier = std::move(clone);
    } else {
      if (engine->classifier_mu_ == nullptr) {
        engine->classifier_mu_ = std::make_unique<std::mutex>();
      }
      shard->classifier = std::make_unique<LockedClassifier>(
          classifier, engine->classifier_mu_.get());
    }
    shard->visitor = std::make_unique<Visitor>(
        shard->web.get(), shard->classifier.get(), options.parse_html);
    if (batch) {
      shard->batch_frontier = std::move(batch_frontiers[s]);
    } else {
      shard->frontier = std::move(pop_frontiers[s]);
    }
    if (obs_on) {
      shard->obs = std::make_unique<obs::RunObs>();
      shard->visitor->set_profiler(&shard->obs->profiler);
      if (batch) {
        // frontier.scored_urls lands on the shard registry (incremented
        // from the shard's rescore task) and is summed into the parent
        // by MergeShardObs.
        shard->batch_frontier->AttachObs(&shard->obs->registry, nullptr);
      }
    }
    engine->shards_.push_back(std::move(shard));
  }
  return engine;
}

void ShardedCrawlEngine::AddObserver(CrawlObserver* observer) {
  observers_.push_back(observer);
  if (observer->wants_link_events()) link_observers_.push_back(observer);
}

void ShardedCrawlEngine::PushFrontier(PageId url, int priority,
                                      const PushContext& context) {
  if (batch_mode_) {
    // Mirrors the serial BatchFrontier: a URL in the current batch
    // ignores pushes (and consumes no sequence number); a re-push of a
    // pending URL updates its context in place without growing the
    // frontier.
    if (in_batch_.count(url) != 0) return;
    if (shards_[owner(url)]->batch_frontier->PushWithSeq(url, priority,
                                                         context, next_seq_)) {
      ++next_seq_;
      ++global_size_;
      global_max_size_ = std::max(global_max_size_, global_size_);
    }
    return;
  }
  shards_[owner(url)]->frontier->Push(url, priority, next_seq_++);
  ++global_size_;
  global_max_size_ = std::max(global_max_size_, global_size_);
}

void ShardedCrawlEngine::PlanRound(
    uint64_t visit_budget,
    std::vector<std::vector<std::pair<PageId, CacheEntry*>>>* plans) {
  const uint32_t num_shards = router_.num_shards();
  // One virtual-pop cursor per shard: (level, offset into the level's
  // deque). Advancing a cursor never mutates the frontier.
  struct Cursor {
    int level = -1;
    size_t idx = 0;
  };
  std::vector<Cursor> cursor(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    const ShardFrontier& f = *shards_[s]->frontier;
    for (int level = f.num_levels() - 1; level >= 0; --level) {
      if (!f.level_entries(level).empty()) {
        cursor[s].level = level;
        break;
      }
    }
  }
  const auto advance = [&](uint32_t s) {
    const ShardFrontier& f = *shards_[s]->frontier;
    Cursor& c = cursor[s];
    ++c.idx;
    while (c.level >= 0 && c.idx >= f.level_entries(c.level).size()) {
      --c.level;
      c.idx = 0;
      while (c.level >= 0 && f.level_entries(c.level).empty()) --c.level;
    }
  };

  uint64_t planned = 0;
  while (planned < visit_budget) {
    // The globally next entry: highest level, then lowest sequence —
    // the same rule the commit loop's merge-pop applies.
    int best_shard = -1;
    int best_level = -1;
    uint64_t best_seq = 0;
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (cursor[s].level < 0) continue;
      const ShardFrontier::Entry& e =
          shards_[s]->frontier->level_entries(cursor[s].level)[cursor[s].idx];
      if (best_shard < 0 || cursor[s].level > best_level ||
          (cursor[s].level == best_level && e.seq < best_seq)) {
        best_shard = static_cast<int>(s);
        best_level = cursor[s].level;
        best_seq = e.seq;
      }
    }
    if (best_shard < 0) break;  // Every cursor exhausted.
    const uint32_t s = static_cast<uint32_t>(best_shard);
    const PageId url =
        shards_[s]->frontier->level_entries(cursor[s].level)[cursor[s].idx]
            .url;
    advance(s);
    if (crawled(url)) continue;          // Stale re-push entry.
    if (cache_.count(url) != 0) continue;  // Already visited or planned.
    CacheEntry* slot = &cache_[url];
    (*plans)[s].emplace_back(url, slot);
    ++planned;
  }
}

Status ShardedCrawlEngine::CommitRound(uint64_t commit_budget,
                                       bool* exhausted) {
  *exhausted = false;
  uint64_t committed = 0;
  while (committed < commit_budget) {
    if (options_.max_pages != 0 && pages_crawled_ >= options_.max_pages) {
      return Status::OK();
    }
    PageId url = 0;
    {
      obs::ScopedStage merge_stage(profiler_, obs::Stage::kMerge);
      int best_shard = -1;
      int best_level = -1;
      uint64_t best_seq = 0;
      for (uint32_t s = 0; s < router_.num_shards(); ++s) {
        const auto head = shards_[s]->frontier->PeekHead();
        if (!head.has_value()) continue;
        if (best_shard < 0 || head->level > best_level ||
            (head->level == best_level && head->seq < best_seq)) {
          best_shard = static_cast<int>(s);
          best_level = head->level;
          best_seq = head->seq;
        }
      }
      if (best_shard < 0) {
        *exhausted = true;
        return Status::OK();
      }
      ShardFrontier& f = *shards_[best_shard]->frontier;
      url = f.PeekHead()->url;
      f.PopHead();
      --global_size_;
    }
    if (crawled(url)) continue;  // Stale duplicate from a re-push.
    CacheEntry entry;
    const auto it = cache_.find(url);
    if (it != cache_.end()) {
      entry = std::move(it->second);
      cache_.erase(it);
    } else {
      // Speculation miss (a fresher push overtook the plan): visit
      // inline, serially, on the owning shard's visitor.
      entry.status = shards_[owner(url)]->visitor->Visit(url, &entry.visit);
    }
    LSWC_RETURN_IF_ERROR(CommitOne(url, std::move(entry)));
    ++committed;
  }
  return Status::OK();
}

void ShardedCrawlEngine::RescoreRound() {
  obs::ScopedStage stage(profiler_, obs::Stage::kRescore);
  if (rescore_rounds_ != nullptr) rescore_rounds_->Increment();
  const uint32_t num_shards = router_.num_shards();
  // Parallel phase: each shard scores and ranks its own pending slice
  // (pure reads of shard-local state plus shard-local obs counters).
  std::vector<std::vector<BatchFrontier::Candidate>> tops(num_shards);
  for (uint32_t s = 0; s < num_shards; ++s) {
    if (shards_[s]->batch_frontier->pending_size() == 0) continue;
    pool_->Submit([this, s, &tops] {
      tops[s] = shards_[s]->batch_frontier->TopCandidates(select_k_);
    });
  }
  pool_->Wait();
  // Serial merge on the same (score desc, seq asc) total order the
  // per-shard rankings used; sequences are globally unique, so the
  // global top-K is independent of the partitioning.
  std::vector<BatchFrontier::Candidate> merged;
  for (const auto& top : tops) {
    merged.insert(merged.end(), top.begin(), top.end());
  }
  std::sort(merged.begin(), merged.end());
  if (merged.size() > select_k_) merged.resize(select_k_);
  if (journal_ != nullptr) {
    // The global pending set is the union of the shard slices, so this
    // round record matches the serial BatchFrontier's byte-for-byte.
    size_t pending_before = 0;
    for (const auto& shard : shards_) {
      pending_before += shard->batch_frontier->pending_size();
    }
    journal_->BatchRound(pending_before, merged.size());
  }
  std::vector<ScoreComponent> components;
  uint32_t rank = 0;
  for (const BatchFrontier::Candidate& c : merged) {
    BatchFrontier* slice = shards_[owner(c.url)]->batch_frontier.get();
    if (journal_ != nullptr) {
      ScoreInputs inputs;
      uint64_t seq = 0;
      if (slice->LookupPending(c.url, &inputs, &seq)) {
        components.clear();
        slice->scorer().ScoreComponents(c.url, inputs, &components);
        journal_->BatchSelect(c.url, rank, c.score, c.seq,
                              static_cast<uint32_t>(components.size()));
        for (uint32_t i = 0; i < components.size(); ++i) {
          journal_->ScoreComponent(c.url, i, components[i].name,
                                   components[i].weighted, components[i].raw);
        }
      }
    }
    ++rank;
    slice->Remove(c.url);
    batch_queue_.push_back(c.url);
    in_batch_.insert(c.url);
  }
  if (selected_urls_ != nullptr) selected_urls_->Add(merged.size());
}

Status ShardedCrawlEngine::CommitBatchRound(uint64_t budget) {
  for (uint64_t i = 0; i < budget; ++i) {
    if (options_.max_pages != 0 && pages_crawled_ >= options_.max_pages) {
      return Status::OK();
    }
    if (batch_queue_.empty()) return Status::OK();
    const PageId url = batch_queue_.front();
    batch_queue_.pop_front();
    in_batch_.erase(url);
    --global_size_;
    CacheEntry entry;
    const auto it = cache_.find(url);
    if (it != cache_.end()) {
      entry = std::move(it->second);
      cache_.erase(it);
    } else {
      entry.status = shards_[owner(url)]->visitor->Visit(url, &entry.visit);
    }
    LSWC_RETURN_IF_ERROR(CommitOne(url, std::move(entry)));
  }
  return Status::OK();
}

Status ShardedCrawlEngine::CommitOne(PageId url, CacheEntry entry) {
  Shard& shard = *shards_[owner(url)];
  shard.state.MarkCrawled(local(url));
  LSWC_RETURN_IF_ERROR(entry.status);
  const VisitResult& visit = entry.visit;
  const bool ok = visit.response.ok();

  if (ok) {
    obs::ScopedStage strategy_stage(profiler_, obs::Stage::kStrategy);
    const ParentInfo parent{url, visit.judgment.relevant,
                            shard.state.annotation(local(url))};
    PushContext context;
    context.parent_relevant = visit.judgment.relevant;
    context.parent_confidence = visit.judgment.confidence;
    for (PageId child : visit.links) {
      if (crawled(child)) {
        if (link_drops_ != nullptr) link_drops_->Increment();
        if (journal_ != nullptr) {
          journal_->Drop(child, url, obs::kJournalDropAlreadyCrawled,
                         visit.judgment.relevant);
        }
        for (CrawlObserver* o : link_observers_) {
          o->OnDrop(child, LinkDropReason::kAlreadyCrawled);
        }
        continue;
      }
      const LinkDecision d = strategy_->OnLink(parent, child);
      if (!d.enqueue) {
        if (link_drops_ != nullptr) link_drops_->Increment();
        if (journal_ != nullptr) {
          journal_->Drop(child, url, obs::kJournalDropStrategyDiscard,
                         visit.judgment.relevant);
        }
        for (CrawlObserver* o : link_observers_) {
          o->OnDrop(child, LinkDropReason::kStrategyDiscard);
        }
        continue;
      }
      obs::ScopedStage route_stage(profiler_, obs::Stage::kRoute);
      Shard& child_shard = *shards_[owner(child)];
      switch (child_shard.state.OfferLink(local(child), d)) {
        case CrawlState::Offer::kIgnored:
          if (link_drops_ != nullptr) link_drops_->Increment();
          if (journal_ != nullptr) {
            journal_->Drop(child, url, obs::kJournalDropNotBetter,
                           visit.judgment.relevant);
          }
          for (CrawlObserver* o : link_observers_) {
            o->OnDrop(child, LinkDropReason::kNotBetter);
          }
          break;
        case CrawlState::Offer::kFirst: {
          obs::ScopedStage push_stage(profiler_, obs::Stage::kFrontierPush);
          context.annotation = d.annotation;
          PushFrontier(child, d.priority, context);
          if (pushes_ != nullptr) {
            pushes_->Increment();
            push_level_->Record(
                static_cast<uint64_t>(std::max(d.priority, 0)));
          }
          if (journal_ != nullptr) {
            journal_->Link(/*repush=*/false, child, url, d.priority,
                           d.annotation, visit.judgment.relevant);
          }
          for (CrawlObserver* o : link_observers_) o->OnEnqueue(child, d);
          break;
        }
        case CrawlState::Offer::kBetter: {
          obs::ScopedStage push_stage(profiler_, obs::Stage::kFrontierPush);
          context.annotation = d.annotation;
          PushFrontier(child, d.priority, context);
          if (repushes_ != nullptr) {
            repushes_->Increment();
            push_level_->Record(
                static_cast<uint64_t>(std::max(d.priority, 0)));
          }
          if (journal_ != nullptr) {
            journal_->Link(/*repush=*/true, child, url, d.priority,
                           d.annotation, visit.judgment.relevant);
          }
          for (CrawlObserver* o : link_observers_) o->OnRePush(child, d);
          break;
        }
      }
    }
  }

  ++pages_crawled_;
  FetchEvent event;
  event.url = url;
  event.ok = ok;
  event.truly_relevant = web_->graph().IsRelevant(url);
  event.judged_relevant = visit.judgment.relevant;
  event.frontier_size = global_size_;
  event.pages_crawled = pages_crawled_;
  event.shard = owner(url);
  if (frontier_depth_ != nullptr) frontier_depth_->Record(event.frontier_size);
  if (journal_ != nullptr) {
    journal_->Fetch(url, ok, event.truly_relevant, event.judged_relevant,
                    event.frontier_size, pages_crawled_);
  }
  for (CrawlObserver* o : observers_) o->OnFetch(event);
  if (pages_crawled_ % sample_interval_ == 0) {
    NotifySample(/*is_final=*/false);
  }
  return Status::OK();
}

void ShardedCrawlEngine::NotifySample(bool is_final) {
  obs::ScopedStage stage(profiler_, obs::Stage::kSample);
  SampleEvent event;
  event.pages_crawled = pages_crawled_;
  event.frontier_size = global_size_;
  event.is_final = is_final;
  if (journal_ != nullptr) {
    journal_->Sample(event.frontier_size, pages_crawled_, is_final);
  }
  for (CrawlObserver* o : observers_) o->OnSample(event);
}

Status ShardedCrawlEngine::Run() {
  const WebGraph& graph = web_->graph();
  if (graph.seeds().empty()) {
    MergeShardObs();
    return Status::FailedPrecondition("graph has no seed URLs");
  }
  if (!resumed_) {
    for (PageId seed : graph.seeds()) {
      Shard& shard = *shards_[owner(seed)];
      if (!shard.state.EnqueueSeed(local(seed), strategy_->seed_priority())) {
        continue;
      }
      PushFrontier(seed, strategy_->seed_priority(), PushContext{});
      if (journal_ != nullptr) {
        journal_->Seed(seed, strategy_->seed_priority());
      }
    }
  }

  // Shard traces: one deterministic trace track per shard, derived from
  // the parent track id, created lazily so drivers may EnableTrace on
  // the bundle any time before Run.
  if (options_.obs != nullptr && options_.obs->enabled &&
      options_.obs->trace != nullptr) {
    const int base = (options_.obs->trace->tid() + 1) * 1000;
    for (uint32_t s = 0; s < router_.num_shards(); ++s) {
      if (shards_[s]->obs != nullptr && shards_[s]->obs->trace == nullptr) {
        shards_[s]->obs->EnableTrace(base + static_cast<int>(s),
                                     "shard-" + std::to_string(s));
      }
    }
  }

  pool_ = std::make_unique<ThreadPool>(router_.num_shards());
  const uint32_t num_shards = router_.num_shards();
  std::vector<std::vector<std::pair<PageId, CacheEntry*>>> plans(num_shards);
  const auto submit_plans = [&] {
    uint32_t tasks_in_round = 0;
    for (const auto& plan : plans) {
      if (!plan.empty()) ++tasks_in_round;
    }
    for (uint32_t s = 0; s < num_shards; ++s) {
      if (plans[s].empty()) continue;
      const auto* plan = &plans[s];
      pool_->Submit([this, s, plan, tasks_in_round] {
        if (visit_start_hook_) visit_start_hook_(s, tasks_in_round);
        Shard& shard = *shards_[s];
        for (const auto& [url, slot] : *plan) {
          slot->status = shard.visitor->Visit(url, &slot->visit);
        }
      });
    }
    pool_->Wait();
  };
  Status status = Status::OK();
  while (!batch_mode_) {
    if (options_.max_pages != 0 && pages_crawled_ >= options_.max_pages) {
      break;
    }
    if (global_size_ == 0) break;
    uint64_t budget = batch_size_;
    if (options_.max_pages != 0) {
      budget = std::min<uint64_t>(budget,
                                  options_.max_pages - pages_crawled_);
    }
    for (auto& plan : plans) plan.clear();
    {
      obs::ScopedStage merge_stage(profiler_, obs::Stage::kMerge);
      PlanRound(budget, &plans);
    }
    submit_plans();
    bool exhausted = false;
    status = CommitRound(budget, &exhausted);
    if (!status.ok()) break;
    if (exhausted) break;
  }
  while (batch_mode_) {
    if (options_.max_pages != 0 && pages_crawled_ >= options_.max_pages) {
      break;
    }
    if (batch_queue_.empty()) RescoreRound();
    if (batch_queue_.empty()) break;  // Pending set exhausted too.
    // One round commits the whole current batch (<= select_k_ URLs),
    // capped by the remaining page budget — both are functions of
    // global state only, so the visit work is partition-invariant.
    uint64_t budget = batch_queue_.size();
    if (options_.max_pages != 0) {
      budget = std::min<uint64_t>(budget,
                                  options_.max_pages - pages_crawled_);
    }
    for (auto& plan : plans) plan.clear();
    for (uint64_t i = 0; i < budget; ++i) {
      const PageId url = batch_queue_[i];
      plans[owner(url)].emplace_back(url, &cache_[url]);
    }
    submit_plans();
    status = CommitBatchRound(budget);
    if (!status.ok()) break;
  }
  pool_.reset();
  // Leftover speculative visits are discarded: a page the crawl never
  // committed contributes nothing to any output.
  cache_.clear();
  if (status.ok() &&
      (pages_crawled_ % sample_interval_ != 0 || pages_crawled_ == 0)) {
    NotifySample(/*is_final=*/true);
  }
  MergeShardObs();
  return status;
}

void ShardedCrawlEngine::MergeShardObs() {
  if (obs_merged_) return;
  obs_merged_ = true;
  obs::RunObs* parent = options_.obs;
  if (parent == nullptr || !parent->enabled) return;
  for (auto& shard : shards_) {
    if (shard->obs == nullptr) continue;
    parent->MergeFrom(*shard->obs);
    if (shard->obs->trace != nullptr) {
      parent->shard_traces.push_back(std::move(shard->obs->trace));
    }
  }
}

void ShardedCrawlEngine::AppendShardStates(
    std::vector<obs::ShardState>* out) const {
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Shard& shard = *shards_[i];
    obs::ShardState state;
    state.shard = static_cast<uint32_t>(i);
    if (shard.frontier != nullptr) {
      state.pending = shard.frontier->size();
    } else if (shard.batch_frontier != nullptr) {
      state.pending = shard.batch_frontier->size();
    }
    out->push_back(state);
  }
}

std::string ShardedCrawlEngine::SchedulerKind() const {
  if (batch_mode_) return "sharded-batch";
  const int levels = std::max(1, strategy_->num_priority_levels());
  return levels <= 1 ? "sharded-fifo" : "sharded-bucket";
}

snapshot::CrawlFingerprint ShardedCrawlEngine::Fingerprint() const {
  const WebGraph& graph = web_->graph();
  snapshot::CrawlFingerprint fp;
  fp.num_pages = graph.num_pages();
  fp.num_hosts = graph.num_hosts();
  fp.num_links = graph.num_links();
  fp.generator_seed = graph.generator_seed();
  fp.target_language = static_cast<uint8_t>(graph.target_language());
  fp.strategy_name = strategy_->name();
  fp.num_priority_levels =
      static_cast<uint64_t>(strategy_->num_priority_levels());
  fp.seed_priority = static_cast<uint64_t>(strategy_->seed_priority());
  fp.classifier_name = classifier_name_;
  fp.sample_interval = sample_interval_;
  fp.parse_html = options_.parse_html;
  fp.scheduler_kind = SchedulerKind();
  fp.batch_k = options_.batch_k;
  fp.scorer_spec = options_.scorer_spec;
  fp.num_shards = router_.num_shards();
  fp.dataset_file = options_.dataset_file;
  fp.memory_budget_mb = options_.memory_budget_mb;
  return fp;
}

Status ShardedCrawlEngine::SaveSnapshot(const std::string& path,
                                        uint64_t* bytes_written) const {
  obs::ScopedStage stage(profiler_, obs::Stage::kCheckpoint);
  snapshot::SnapshotWriter writer;

  snapshot::SectionWriter fingerprint;
  Fingerprint().Save(&fingerprint);
  writer.AddSection(snapshot::SectionId::kFingerprint, fingerprint);

  snapshot::SectionWriter engine;
  engine.U64(pages_crawled_);
  writer.AddSection(snapshot::SectionId::kEngine, engine);

  snapshot::SectionWriter shard_meta;
  shard_meta.U64(router_.num_shards());
  shard_meta.U64(next_seq_);
  shard_meta.U64(global_size_);
  shard_meta.U64(global_max_size_);
  if (batch_mode_) {
    // The in-flight global batch, in selection order (the membership
    // set is rebuilt from it on restore).
    std::vector<uint32_t> queued(batch_queue_.begin(), batch_queue_.end());
    shard_meta.U32Vec(queued);
  }
  writer.AddSection(snapshot::SectionId::kShardMeta, shard_meta);

  for (uint32_t s = 0; s < router_.num_shards(); ++s) {
    snapshot::SectionWriter frontier;
    if (batch_mode_) {
      LSWC_RETURN_IF_ERROR(shards_[s]->batch_frontier->Save(&frontier));
    } else {
      shards_[s]->frontier->Save(&frontier);
    }
    writer.AddSection(
        snapshot::ShardSectionId(snapshot::kShardFrontierBase, s), frontier);

    snapshot::SectionWriter state;
    shards_[s]->state.Save(&state);
    writer.AddSection(snapshot::ShardSectionId(snapshot::kShardStateBase, s),
                      state);

    snapshot::SectionWriter rng;
    for (uint64_t word : shards_[s]->rng.state()) rng.U64(word);
    writer.AddSection(snapshot::ShardSectionId(snapshot::kShardRngBase, s),
                      rng);
  }

  snapshot::SectionWriter metrics;
  LSWC_RETURN_IF_ERROR(metrics_.Save(&metrics));
  writer.AddSection(snapshot::SectionId::kMetrics, metrics);

  if (rng_ != nullptr) {
    snapshot::SectionWriter rng;
    for (uint64_t word : rng_->state()) rng.U64(word);
    writer.AddSection(snapshot::SectionId::kRng, rng);
  }

  return writer.WriteFile(path, bytes_written);
}

Status ShardedCrawlEngine::ResumeFromSnapshot(const std::string& path) {
  StatusOr<snapshot::SnapshotReader> file =
      snapshot::SnapshotReader::Open(path);
  LSWC_RETURN_IF_ERROR(file.status());

  // Fingerprint first — a shard-count mismatch is rejected here, before
  // any state is touched (num_shards is part of the fingerprint).
  {
    StatusOr<snapshot::SectionReader> section =
        file->Section(snapshot::SectionId::kFingerprint);
    LSWC_RETURN_IF_ERROR(section.status());
    StatusOr<snapshot::CrawlFingerprint> fp =
        snapshot::CrawlFingerprint::Load(&*section);
    LSWC_RETURN_IF_ERROR(fp.status());
    LSWC_RETURN_IF_ERROR(section->Finish());
    LSWC_RETURN_IF_ERROR(Fingerprint().Match(*fp));
  }
  {
    StatusOr<snapshot::SectionReader> section =
        file->Section(snapshot::SectionId::kEngine);
    LSWC_RETURN_IF_ERROR(section.status());
    pages_crawled_ = section->U64();
    LSWC_RETURN_IF_ERROR(section->Finish());
  }
  {
    StatusOr<snapshot::SectionReader> section =
        file->Section(snapshot::SectionId::kShardMeta);
    LSWC_RETURN_IF_ERROR(section.status());
    const uint64_t saved_shards = section->U64();
    next_seq_ = section->U64();
    global_size_ = section->U64();
    global_max_size_ = section->U64();
    if (batch_mode_) {
      const std::vector<uint32_t> queued = section->U32Vec();
      LSWC_RETURN_IF_ERROR(section->status());
      batch_queue_.clear();
      in_batch_.clear();
      for (const uint32_t url : queued) {
        if (!in_batch_.insert(url).second) {
          return Status::Corruption(
              "sharded batch queue snapshot repeats a URL");
        }
        batch_queue_.push_back(url);
      }
    }
    LSWC_RETURN_IF_ERROR(section->Finish());
    if (saved_shards != router_.num_shards()) {
      return Status::Corruption(
          "shard meta claims " + std::to_string(saved_shards) +
          " shards but the fingerprint matched " +
          std::to_string(router_.num_shards()));
    }
  }
  uint64_t restored_pending = 0;
  for (uint32_t s = 0; s < router_.num_shards(); ++s) {
    {
      StatusOr<snapshot::SectionReader> section = file->Section(
          snapshot::ShardSectionId(snapshot::kShardFrontierBase, s));
      LSWC_RETURN_IF_ERROR(section.status());
      if (batch_mode_) {
        LSWC_RETURN_IF_ERROR(shards_[s]->batch_frontier->Restore(&*section));
        restored_pending += shards_[s]->batch_frontier->size();
      } else {
        LSWC_RETURN_IF_ERROR(shards_[s]->frontier->Restore(&*section));
        restored_pending += shards_[s]->frontier->size();
      }
      LSWC_RETURN_IF_ERROR(section->Finish());
    }
    {
      StatusOr<snapshot::SectionReader> section = file->Section(
          snapshot::ShardSectionId(snapshot::kShardStateBase, s));
      LSWC_RETURN_IF_ERROR(section.status());
      LSWC_RETURN_IF_ERROR(shards_[s]->state.Restore(&*section));
      LSWC_RETURN_IF_ERROR(section->Finish());
    }
    {
      StatusOr<snapshot::SectionReader> section = file->Section(
          snapshot::ShardSectionId(snapshot::kShardRngBase, s));
      LSWC_RETURN_IF_ERROR(section.status());
      std::array<uint64_t, 4> state;
      for (uint64_t& word : state) word = section->U64();
      LSWC_RETURN_IF_ERROR(section->Finish());
      shards_[s]->rng.set_state(state);
    }
  }
  // In batch mode the global size also covers the in-flight batch queue.
  restored_pending += batch_queue_.size();
  if (restored_pending != global_size_) {
    return Status::Corruption(
        "shard frontiers hold " + std::to_string(restored_pending) +
        " pending URLs but shard meta recorded " +
        std::to_string(global_size_));
  }
  {
    StatusOr<snapshot::SectionReader> section =
        file->Section(snapshot::SectionId::kMetrics);
    LSWC_RETURN_IF_ERROR(section.status());
    LSWC_RETURN_IF_ERROR(metrics_.Restore(&*section));
    LSWC_RETURN_IF_ERROR(section->Finish());
  }
  if (rng_ != nullptr && file->HasSection(snapshot::SectionId::kRng)) {
    StatusOr<snapshot::SectionReader> section =
        file->Section(snapshot::SectionId::kRng);
    LSWC_RETURN_IF_ERROR(section.status());
    std::array<uint64_t, 4> state;
    for (uint64_t& word : state) word = section->U64();
    LSWC_RETURN_IF_ERROR(section->Finish());
    rng_->set_state(state);
  }
  resumed_ = true;
  return Status::OK();
}

}  // namespace lswc
