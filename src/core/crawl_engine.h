#ifndef LSWC_CORE_CRAWL_ENGINE_H_
#define LSWC_CORE_CRAWL_ENGINE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/classifier.h"
#include "core/crawl_observer.h"
#include "core/crawl_state.h"
#include "core/frontier.h"
#include "core/metrics.h"
#include "core/strategy.h"
#include "core/virtual_web.h"
#include "core/visitor.h"
#include "obs/obs_fwd.h"
#include "snapshot/fingerprint.h"
#include "snapshot/section.h"
#include "util/random.h"

namespace lswc {

/// The engine's port to a frontier implementation: the engine pushes
/// seeds and expanded links through `Push` and asks `Next` for the URL
/// to fetch. A scheduler may be a plain priority queue (Simulator) or a
/// time-aware per-host event scheduler (PolitenessSimulator) — the crawl
/// loop itself does not change.
class FrontierScheduler {
 public:
  virtual ~FrontierScheduler() = default;

  /// Enqueues `url` at `priority` (higher pops first).
  virtual void Push(PageId url, int priority) = 0;

  /// Enqueues with link context for score-based frontiers. Pop-order
  /// schedulers ignore the context (the priority already encodes the
  /// strategy's verdict), so the default forwards to Push.
  virtual void PushScored(PageId url, int priority,
                          const PushContext& context) {
    (void)context;
    Push(url, priority);
  }

  /// Returns the next URL to fetch, or nullopt when the frontier is
  /// exhausted. `state` lets a time-aware scheduler skip already-crawled
  /// (stale re-push) entries without occupying fetch slots; the engine
  /// re-checks `state.crawled` on the returned URL either way.
  virtual std::optional<PageId> Next(const CrawlState& state) = 0;

  /// Pending URLs (the paper's queue-size metric).
  virtual size_t size() const = 0;

  /// Scheduler-specific stop condition checked once per loop iteration
  /// (e.g. a simulated-time budget). Default: never.
  virtual bool StopRequested() const { return false; }

  /// Snapshot port. `SnapshotKind` is the stable identifier recorded in
  /// the snapshot fingerprint; `SaveState`/`RestoreState` serialize the
  /// scheduler's complete pending state (frontier contents, clocks,
  /// in-flight work). Schedulers that do not override these cannot be
  /// checkpointed — attempting to returns Unimplemented, never crashes.
  virtual std::string SnapshotKind() const { return "unsupported"; }
  virtual Status SaveState(snapshot::SectionWriter* w) const {
    (void)w;
    return Status::Unimplemented("this scheduler does not support snapshots");
  }
  virtual Status RestoreState(snapshot::SectionReader* r) {
    (void)r;
    return Status::Unimplemented("this scheduler does not support snapshots");
  }
};

/// Adapts a plain Frontier to the scheduler port (Pop order only, no
/// timing) — what Simulator runs on.
class FrontierPopScheduler final : public FrontierScheduler {
 public:
  explicit FrontierPopScheduler(Frontier* frontier) : frontier_(frontier) {}

  void Push(PageId url, int priority) override {
    frontier_->Push(url, priority);
  }
  void PushScored(PageId url, int priority,
                  const PushContext& context) override {
    frontier_->PushScored(url, priority, context);
  }
  std::optional<PageId> Next(const CrawlState& state) override {
    (void)state;
    return frontier_->Pop();
  }
  size_t size() const override { return frontier_->size(); }

  std::string SnapshotKind() const override { return frontier_->kind_name(); }
  Status SaveState(snapshot::SectionWriter* w) const override {
    return frontier_->Save(w);
  }
  Status RestoreState(snapshot::SectionReader* r) override {
    return frontier_->Restore(r);
  }

 private:
  Frontier* frontier_;
};

/// Engine knobs — the subset of SimulationOptions the crawl loop itself
/// consumes.
struct CrawlEngineOptions {
  /// Stop after this many crawled URLs (0 = run until the frontier
  /// empties, the paper's termination condition).
  uint64_t max_pages = 0;
  /// Metric sampling step in crawled pages (0 = auto: ~400 samples over
  /// the run's horizon).
  uint64_t sample_interval = 0;
  /// Extract links by parsing rendered HTML instead of replaying the
  /// link database (requires the web space to render kFull).
  bool parse_html = false;
  /// Per-run observability bundle (not owned; may be null). A disabled
  /// bundle is treated exactly like null — no probes fire.
  obs::RunObs* obs = nullptr;
  /// Decision journal sink (not owned; null = no journaling). The
  /// engine emits every seed/fetch/link/sample decision; emission is
  /// serial-path only, and with a null journal no probe fires, keeping
  /// journal-off runs byte-identical to a build without the feature.
  obs::JournalWriter* journal = nullptr;
  /// Batch-regime identity, recorded in the snapshot fingerprint (0 /
  /// empty outside the batch regime). The engine does not act on these;
  /// the BatchFrontier does.
  uint64_t batch_k = 0;
  std::string scorer_spec;
  /// Out-of-core identity for the snapshot fingerprint: the dataset
  /// file the run replays (empty = in-RAM graph) and the global memory
  /// budget in MiB (0 = unbudgeted). The engine does not act on these;
  /// the drivers size frontiers and link caches from the budget.
  std::string dataset_file;
  uint64_t memory_budget_mb = 0;
};

/// The crawl loop of the paper's Fig 2, extracted so that every driver
/// (Simulator, PolitenessSimulator, future sharded/checkpointing
/// drivers) runs the *same* seed-push / fetch / judge / expand /
/// re-push cycle over the same CrawlState, differing only in the
/// FrontierScheduler they plug in and the CrawlObservers they attach.
///
/// The engine owns the per-URL CrawlState and a MetricsRecorder (the
/// §3.4 metrics), which is attached to the observer bus like any other
/// observer — drivers read it from `metrics()` after Run.
class CrawlEngine : public Checkpointable {
 public:
  /// Pointers are not owned and must outlive the engine. The
  /// MetricsRecorder is constructed here (coverage denominator from the
  /// graph's stats, resolved sampling interval) and auto-attached as the
  /// first observer, so observers added later may read it during their
  /// own callbacks.
  CrawlEngine(VirtualWebSpace* web, Classifier* classifier,
              const CrawlStrategy* strategy, FrontierScheduler* scheduler,
              CrawlEngineOptions options);

  /// Attaches an observer (not owned). Callbacks fire in attach order.
  void AddObserver(CrawlObserver* observer);

  /// Registers the run's RNG stream (not owned) so snapshots capture and
  /// restore it. Optional: runs whose strategies never draw randomness
  /// need no RNG in the checkpoint.
  void AttachRng(Rng* rng) { rng_ = rng; }

  /// Seeds the frontier (unless resumed from a snapshot) and runs the
  /// crawl to completion: frontier exhausted, `max_pages` reached, or the
  /// scheduler requested a stop. Emits the final tail sample before
  /// returning.
  Status Run();

  /// Writes the complete run state to `path` (atomic temp+rename): crawl
  /// bitmaps, scheduler/frontier contents, metrics series so far, RNG
  /// stream (if attached), and a fingerprint of the configuration.
  /// `bytes_written` (optional) receives the snapshot's on-disk size.
  Status SaveSnapshot(const std::string& path,
                      uint64_t* bytes_written = nullptr) const override;

  /// Restores the engine from a snapshot written by SaveSnapshot under
  /// the same configuration. Fails with FailedPrecondition (fingerprint
  /// mismatch) or Corruption (damaged file) without starting the crawl;
  /// on success the next Run() continues mid-stream instead of seeding.
  Status ResumeFromSnapshot(const std::string& path);

  const MetricsRecorder& metrics() const { return metrics_; }
  const CrawlState& state() const { return state_; }
  uint64_t pages_crawled() const override { return pages_crawled_; }
  /// The resolved sampling step (never 0).
  uint64_t sample_interval() const override { return sample_interval_; }

 private:
  /// Fetches one URL, judges it, expands its links through the strategy
  /// and the better-referrer rule, and notifies observers.
  Status CrawlOne(PageId url, VisitResult* visit);

  void NotifySample(bool is_final);

  /// This run's configuration identity, compared against the one stored
  /// in a snapshot before any state is restored.
  snapshot::CrawlFingerprint Fingerprint() const;

  VirtualWebSpace* web_;
  const CrawlStrategy* strategy_;
  FrontierScheduler* scheduler_;
  CrawlEngineOptions options_;
  Visitor visitor_;
  CrawlState state_;
  uint64_t sample_interval_;
  MetricsRecorder metrics_;
  std::string classifier_name_;
  Rng* rng_ = nullptr;
  bool resumed_ = false;
  uint64_t pages_crawled_ = 0;
  obs::JournalWriter* journal_ = nullptr;
  /// Obs handles, cached at construction; all null when the run has no
  /// (enabled) bundle, so every probe below is a null check.
  obs::StageProfiler* profiler_ = nullptr;
  obs::Histogram* frontier_depth_ = nullptr;
  obs::Histogram* push_level_ = nullptr;
  obs::Counter* pushes_ = nullptr;
  obs::Counter* repushes_ = nullptr;
  obs::Counter* link_drops_ = nullptr;
  std::vector<CrawlObserver*> observers_;
  /// Subset of observers_ that opted into per-link callbacks; kept
  /// separately so the per-link hot path costs nothing when (as in the
  /// default metrics-only setup) nobody listens.
  std::vector<CrawlObserver*> link_observers_;
};

}  // namespace lswc

#endif  // LSWC_CORE_CRAWL_ENGINE_H_
