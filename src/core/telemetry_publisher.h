#ifndef LSWC_CORE_TELEMETRY_PUBLISHER_H_
#define LSWC_CORE_TELEMETRY_PUBLISHER_H_

// The bridge between a running crawl and the telemetry plane: a
// CrawlObserver that periodically captures a TelemetrySnapshot and
// publishes it on the run's TelemetryBoard. It replaces the old
// ProgressObserver — the --progress-every stderr line is now rendered
// *from* the published snapshot (obs::FormatProgressLine), so the
// attached endpoint and the stderr line can never disagree.
//
// Determinism contract: the publisher is strictly read-only with
// respect to crawl state. It reads the metrics recorder, the stage
// profiler, and the registry (all from the crawl thread, which is their
// single writer) and copies values out; it never feeds anything back.
// That is what keeps telemetry-on runs bit-identical to telemetry-off
// runs.
//
// Overhead contract: per fetch the publisher costs one relevance
// branch, one per-shard tally increment, and one cadence mask check
// (pages & 63). Snapshot construction — the expensive part — happens at
// most once per 64 pages AND once per ~100ms, whichever is rarer, plus
// at every --progress-every boundary and once at the end of the run.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/crawl_observer.h"
#include "core/metrics.h"
#include "obs/obs_fwd.h"
#include "obs/telemetry.h"
#include "obs/telemetry_plane.h"

namespace lswc {

class TelemetryPublisher final : public CrawlObserver {
 public:
  struct Options {
    /// Board + flight recorder + heartbeat; may be null (then the
    /// publisher only renders the stderr progress line — still from a
    /// locally built snapshot).
    obs::TelemetryContext* telemetry = nullptr;
    std::string run_label = "crawl";
    std::string phase = "crawl";
    /// Metric source (required; attached first on the bus, so its
    /// counts are current when the publisher runs).
    const MetricsRecorder* metrics = nullptr;
    /// Stage times + registry metrics (may be null / disabled).
    const obs::RunObs* obs = nullptr;
    /// Print obs::FormatProgressLine to stderr every N pages (0 =
    /// never). The line is rendered from the snapshot just published.
    uint64_t progress_every = 0;
    /// Fills per-shard pending sizes; null outside the sharded engine.
    /// Called from the commit loop (the only thread touching shards).
    std::function<void(std::vector<obs::ShardState>*)> shard_pending;
  };

  explicit TelemetryPublisher(Options options);

  void OnFetch(const FetchEvent& event) override;

  /// Publishes the end-of-run snapshot (phase suffix "/done"). Called
  /// by the drivers after Run() so an attached observer sees the final
  /// totals instead of the last cadence tick.
  void PublishFinal();

  uint64_t snapshots_built() const { return seq_; }

 private:
  void Publish(uint64_t pages_crawled, uint64_t frontier_size,
               bool progress_line, bool final);

  Options options_;
  uint64_t seq_ = 0;
  uint64_t last_publish_ns_ = 0;
  uint64_t last_publish_pages_ = 0;
  uint64_t last_pages_seen_ = 0;
  uint64_t last_frontier_seen_ = 0;
  std::vector<uint64_t> shard_pages_;
};

}  // namespace lswc

#endif  // LSWC_CORE_TELEMETRY_PUBLISHER_H_
