#ifndef LSWC_CORE_SHARDED_ENGINE_H_
#define LSWC_CORE_SHARDED_ENGINE_H_

// The host-partitioned sharded crawl engine. A crawl advances in batched
// rounds of three phases:
//
//   1. Plan (serial): virtually walk the global pop order — the
//      deterministic merge over all shard frontiers on (priority level
//      desc, push sequence asc) — and pick the next `batch` not-yet-
//      visited URLs, reserving a result slot for each.
//   2. Visit (parallel): one util::ThreadPool task per shard performs
//      the expensive, state-free work — fetch, classify, extract — for
//      its planned URLs, each shard on its own web-space view,
//      classifier clone, visitor, and obs bundle.
//   3. Commit (serial): replay the *exact* serial crawl loop — merge-pop
//      the globally best entry, skip stale re-pushes, consume the
//      speculative visit (or visit inline on a miss), run the strategy's
//      per-link decisions, route each accepted link to its owning
//      shard's frontier with the next global push sequence, and fire
//      metrics / observers / sampling — until the round's budget is
//      spent.
//
// Because every state mutation happens in the serial commit loop, and
// the pop order recovered by the merge is a function of the global
// frontier contents only, the outputs (series, summary, snapshot
// payloads, obs call counts) are bit-identical for every shard count,
// and equal to the serial CrawlEngine's. The plan set is likewise a
// function of global state, so speculative work is partition-invariant
// too. See docs/ARCHITECTURE.md "Sharded crawl pipeline".
//
// Batch regime (frontier kind "batch"): each shard holds a BatchFrontier
// pending slice, and a round becomes rescore -> visit -> commit. The
// rescore phase runs each shard's TopCandidates in parallel (pure reads
// of shard-local state), then serially merges the per-shard top-K lists
// into the global top `batch_k` on (score desc, global sequence asc) —
// the same total order the serial BatchFrontier applies — removes the
// winners from their shards' pending slices, and queues them as the
// round's batch. Selection is a pure function of the global pending set,
// so the batch (and everything downstream) is bit-identical for every
// shard count and equal to the serial batch engine's.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "core/checkpoint.h"
#include "core/classifier.h"
#include "core/crawl_observer.h"
#include "core/crawl_state.h"
#include "core/frontier_factory.h"
#include "core/metrics.h"
#include "core/shard.h"
#include "core/strategy.h"
#include "core/virtual_web.h"
#include "core/visitor.h"
#include "obs/obs_fwd.h"
#include "snapshot/fingerprint.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"
#include "webgraph/link_db.h"

namespace lswc {

/// Knobs of the sharded engine (the sharded analogue of
/// CrawlEngineOptions).
struct ShardedEngineOptions {
  /// Number of shards (>= 1). One shard is the degenerate baseline every
  /// N-shard run must match bit-for-bit.
  uint32_t num_shards = 1;
  /// Speculative visits planned per round (0 = 256). Deliberately *not*
  /// derived from the shard count: the plan set must be a function of
  /// global frontier state only, so that runs with different shard
  /// counts perform identical visit work.
  uint32_t batch_size = 0;
  uint64_t max_pages = 0;
  uint64_t sample_interval = 0;
  bool parse_html = false;
  /// Per-run observability bundle (not owned; may be null). The engine
  /// creates one child bundle per shard and merges them back after Run.
  obs::RunObs* obs = nullptr;
  /// Decision journal sink (not owned; null = no journaling). Every
  /// journaled decision fires from the serial plan/commit phases, so the
  /// record stream is bit-identical for every shard count and equal to
  /// the serial engine's.
  obs::JournalWriter* journal = nullptr;
  /// Batch-regime identity for the snapshot fingerprint. Create()
  /// overwrites both with the values resolved from the frontier options
  /// when the batch regime is selected, so callers may leave them unset.
  uint64_t batch_k = 0;
  std::string scorer_spec;
  /// Out-of-core identity for the snapshot fingerprint (see
  /// CrawlEngineOptions).
  std::string dataset_file;
  uint64_t memory_budget_mb = 0;
};

class ShardedCrawlEngine final : public Checkpointable {
 public:
  /// Builds the engine: the host -> shard router, per-shard frontier
  /// slices (MakeShardFrontiers — fails for bounded/spilling frontier
  /// options), crawl-state slices, web-space views, classifier clones
  /// (or a mutex-shared classifier when Clone() returns null), and
  /// per-shard obs bundles. `web`, `classifier`, `strategy` are not
  /// owned and must outlive the engine.
  static StatusOr<std::unique_ptr<ShardedCrawlEngine>> Create(
      VirtualWebSpace* web, Classifier* classifier,
      const CrawlStrategy* strategy, const FrontierOptions& frontier_options,
      ShardedEngineOptions options);

  /// Attaches an observer (not owned). Callbacks fire in attach order,
  /// always from the serial commit loop.
  void AddObserver(CrawlObserver* observer);

  /// Registers the run's RNG stream (not owned) so snapshots capture and
  /// restore it — same contract as CrawlEngine::AttachRng.
  void AttachRng(Rng* rng) { rng_ = rng; }

  /// Seeds the shard frontiers (unless resumed) and runs the crawl in
  /// batched rounds to completion.
  Status Run();

  /// Checkpointable: writes fingerprint (with shard count), global
  /// counters, per-shard frontier / crawl-state / RNG sections, and the
  /// metrics series. Speculative visits not yet committed are *not*
  /// saved — a resumed run re-plans them, with identical output.
  Status SaveSnapshot(const std::string& path,
                      uint64_t* bytes_written = nullptr) const override;

  /// Restores a SaveSnapshot() written under the same configuration,
  /// including the same shard count: resuming under a different
  /// `num_shards` is rejected (fingerprint mismatch naming num_shards).
  Status ResumeFromSnapshot(const std::string& path);

  const MetricsRecorder& metrics() const { return metrics_; }
  uint64_t pages_crawled() const override { return pages_crawled_; }
  uint64_t sample_interval() const override { return sample_interval_; }
  /// Peak global frontier size (the paper's max queue-size metric).
  uint64_t max_frontier_size() const { return global_max_size_; }
  uint32_t num_shards() const { return router_.num_shards(); }

  /// Appends one entry per shard with its current pending-slice size,
  /// for the merged cross-shard telemetry snapshot. Reads shard
  /// frontiers without locks: call only from the serial commit loop
  /// (where the TelemetryPublisher's OnFetch fires) or after Run.
  void AppendShardStates(std::vector<obs::ShardState>* out) const;

  /// Test hook: called by each shard's worker task at the start of its
  /// visit phase, from the worker thread, with the number of tasks
  /// submitted this round. The merge-determinism stress test uses it as
  /// a barrier that releases shards in randomized order.
  void set_visit_start_hook(
      std::function<void(uint32_t shard, uint32_t tasks_in_round)> hook) {
    visit_start_hook_ = std::move(hook);
  }

 private:
  /// One shard's isolated bundle. Everything a parallel visit touches is
  /// per-shard (or immutable); all cross-shard state is serial-only.
  struct Shard {
    Shard(size_t local_pages, uint64_t rng_seed)
        : state(local_pages), rng(rng_seed) {}

    std::unique_ptr<InMemoryLinkDb> link_db;
    std::unique_ptr<VirtualWebSpace> web;
    std::unique_ptr<Classifier> classifier;  // Clone or locked wrapper.
    std::unique_ptr<Visitor> visitor;
    /// Exactly one of the two frontier slices is set, matching the
    /// regime: pop-order (`frontier`) or batch (`batch_frontier`).
    std::unique_ptr<ShardFrontier> frontier;
    std::unique_ptr<BatchFrontier> batch_frontier;
    CrawlState state;  // Slice over this shard's pages (local ids).
    Rng rng;           // Per-shard stream, snapshotted with the shard.
    std::unique_ptr<obs::RunObs> obs;  // Child bundle; null when obs off.
  };

  /// A speculative visit result, keyed by URL in `cache_`.
  struct CacheEntry {
    Status status = Status::OK();
    VisitResult visit;
  };

  ShardedCrawlEngine(VirtualWebSpace* web, Classifier* classifier,
                     const CrawlStrategy* strategy,
                     ShardedEngineOptions options);

  uint32_t owner(PageId url) const { return router_.owner(url); }
  uint32_t local(PageId url) const { return local_id_[url]; }
  bool crawled(PageId url) const {
    return shards_[owner(url)]->state.crawled(local(url));
  }

  /// Phase 1: virtually pop the global order to pick up to
  /// `visit_budget` uncrawled, uncached URLs; reserves a cache slot for
  /// each and appends it to its owning shard's plan.
  void PlanRound(uint64_t visit_budget,
                 std::vector<std::vector<std::pair<PageId, CacheEntry*>>>*
                     plans);

  /// Phase 3: the serial crawl loop, at most `commit_budget` crawled
  /// pages. Sets `*exhausted` when the global frontier ran dry.
  Status CommitRound(uint64_t commit_budget, bool* exhausted);

  /// One committed page: the sharded mirror of CrawlEngine::CrawlOne.
  Status CommitOne(PageId url, CacheEntry entry);

  /// Batch regime: rescores every shard's pending slice in parallel,
  /// merges the per-shard top-K lists into the global top `select_k_`,
  /// and moves the winners into `batch_queue_`.
  void RescoreRound();

  /// Batch regime's commit phase: pops `budget` URLs off the batch
  /// queue through CommitOne (every queued URL is uncrawled by the
  /// batch invariant, so there is no stale-skip path).
  Status CommitBatchRound(uint64_t budget);

  void PushFrontier(PageId url, int priority, const PushContext& context);
  void NotifySample(bool is_final);
  snapshot::CrawlFingerprint Fingerprint() const;
  std::string SchedulerKind() const;

  /// Folds the per-shard obs bundles (visit-side stage counts, shard
  /// trace sinks) back into the parent bundle. Called once after Run.
  void MergeShardObs();

  VirtualWebSpace* web_;
  const CrawlStrategy* strategy_;
  ShardedEngineOptions options_;
  ShardRouter router_;
  std::vector<uint32_t> local_id_;  // Global page id -> id within shard.
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Set when the classifier could not be cloned: every shard's locked
  /// wrapper serializes Judge() calls through this mutex.
  std::unique_ptr<std::mutex> classifier_mu_;
  uint64_t sample_interval_;
  uint64_t batch_size_;
  MetricsRecorder metrics_;
  std::string classifier_name_;
  Rng* rng_ = nullptr;
  bool resumed_ = false;
  bool obs_merged_ = false;
  uint64_t pages_crawled_ = 0;
  obs::JournalWriter* journal_ = nullptr;
  uint64_t next_seq_ = 0;         // Global push sequence counter.
  uint64_t global_size_ = 0;      // Pending across shards (+ batch queue).
  uint64_t global_max_size_ = 0;  // Peak of global_size_, updated on push.
  /// Batch regime state: the current globally selected batch, in
  /// selection order, plus its membership set (pushes for queued URLs
  /// are ignored, mirroring the serial BatchFrontier).
  bool batch_mode_ = false;
  uint32_t select_k_ = 0;
  std::deque<PageId> batch_queue_;
  std::unordered_set<PageId> in_batch_;
  std::unordered_map<PageId, CacheEntry> cache_;
  std::unique_ptr<ThreadPool> pool_;
  std::function<void(uint32_t, uint32_t)> visit_start_hook_;
  /// Parent-side obs handles (commit-loop stages and counters); all null
  /// when the run has no enabled bundle.
  obs::StageProfiler* profiler_ = nullptr;
  obs::Histogram* frontier_depth_ = nullptr;
  obs::Histogram* push_level_ = nullptr;
  obs::Counter* pushes_ = nullptr;
  obs::Counter* repushes_ = nullptr;
  obs::Counter* link_drops_ = nullptr;
  /// Batch-regime parent counters (the per-shard registries carry
  /// frontier.scored_urls, incremented inside TopCandidates).
  obs::Counter* rescore_rounds_ = nullptr;
  obs::Counter* selected_urls_ = nullptr;
  std::vector<CrawlObserver*> observers_;
  std::vector<CrawlObserver*> link_observers_;
};

}  // namespace lswc

#endif  // LSWC_CORE_SHARDED_ENGINE_H_
