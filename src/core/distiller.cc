#include "core/distiller.h"

#include <algorithm>
#include <cmath>

namespace lswc {

StatusOr<HitsScores> ComputeHits(const WebGraph& graph,
                                 const std::vector<PageId>& pages,
                                 HitsOptions options) {
  if (pages.empty()) {
    return Status::InvalidArgument("HITS needs a non-empty page set");
  }
  const size_t n = graph.num_pages();
  std::vector<bool> in_set(n, false);
  for (PageId p : pages) {
    if (p >= n) return Status::InvalidArgument("page id out of range");
    in_set[p] = true;
  }

  HitsScores scores;
  scores.hub.assign(n, 0.0);
  scores.authority.assign(n, 0.0);
  for (PageId p : pages) scores.hub[p] = 1.0;

  auto normalize = [](std::vector<double>* v,
                      const std::vector<PageId>& set) {
    double sum_sq = 0.0;
    for (PageId p : set) sum_sq += (*v)[p] * (*v)[p];
    if (sum_sq <= 0.0) return;
    const double inv = 1.0 / std::sqrt(sum_sq);
    for (PageId p : set) (*v)[p] *= inv;
  };

  std::vector<double> prev_hub(n, 0.0);
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    scores.iterations_run = iter + 1;
    // Authority(p) = sum of hub scores of in-set pages linking to p.
    for (PageId p : pages) scores.authority[p] = 0.0;
    for (PageId p : pages) {
      if (!graph.page(p).ok()) continue;
      for (PageId t : graph.outlinks(p)) {
        if (in_set[t]) scores.authority[t] += scores.hub[p];
      }
    }
    normalize(&scores.authority, pages);
    // Hub(p) = sum of authority scores of in-set pages p links to.
    for (PageId p : pages) {
      prev_hub[p] = scores.hub[p];
      scores.hub[p] = 0.0;
    }
    for (PageId p : pages) {
      if (!graph.page(p).ok()) continue;
      double h = 0.0;
      for (PageId t : graph.outlinks(p)) {
        if (in_set[t]) h += scores.authority[t];
      }
      scores.hub[p] = h;
    }
    normalize(&scores.hub, pages);

    double delta = 0.0;
    for (PageId p : pages) delta += std::abs(scores.hub[p] - prev_hub[p]);
    if (delta < options.tolerance) break;
  }
  return scores;
}

std::vector<PageId> TopHubs(const HitsScores& scores, size_t count) {
  std::vector<PageId> ids;
  ids.reserve(scores.hub.size());
  for (PageId p = 0; p < scores.hub.size(); ++p) {
    if (scores.hub[p] > 0.0) ids.push_back(p);
  }
  std::sort(ids.begin(), ids.end(), [&](PageId a, PageId b) {
    if (scores.hub[a] != scores.hub[b]) return scores.hub[a] > scores.hub[b];
    return a < b;
  });
  if (ids.size() > count) ids.resize(count);
  return ids;
}

HubBoostStrategy::HubBoostStrategy(size_t num_pages,
                                   const std::vector<PageId>& hubs)
    : hub_bitmap_(num_pages, false) {
  for (PageId h : hubs) {
    if (h < num_pages) hub_bitmap_[h] = true;
  }
}

LinkDecision HubBoostStrategy::OnLink(const ParentInfo& parent,
                                      PageId child) const {
  (void)child;
  LinkDecision d;
  d.enqueue = true;  // Soft family.
  if (hub_bitmap_[parent.page]) {
    d.priority = 2;  // Immediate neighbors of a distilled hub.
  } else {
    d.priority = parent.relevant ? 1 : 0;
  }
  return d;
}

std::string HubBoostStrategy::name() const {
  size_t hubs = 0;
  for (bool b : hub_bitmap_) hubs += b ? 1 : 0;
  return "hub-boost(" + std::to_string(hubs) + " hubs)";
}

}  // namespace lswc
