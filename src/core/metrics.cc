#include "core/metrics.h"

#include <string>

#include "snapshot/series_io.h"
#include "util/logging.h"

namespace lswc {

MetricsRecorder::MetricsRecorder(uint64_t total_relevant,
                                 uint64_t sample_interval)
    : total_relevant_(total_relevant),
      sample_interval_(sample_interval == 0 ? 1 : sample_interval),
      series_("pages_crawled", {"harvest_pct", "coverage_pct", "queue_size"}) {}

double MetricsRecorder::harvest_pct() const {
  return pages_crawled_ == 0
             ? 0.0
             : 100.0 * static_cast<double>(relevant_crawled_) /
                   static_cast<double>(pages_crawled_);
}

double MetricsRecorder::coverage_pct() const {
  return total_relevant_ == 0
             ? 0.0
             : 100.0 * static_cast<double>(relevant_crawled_) /
                   static_cast<double>(total_relevant_);
}

void MetricsRecorder::Sample(uint64_t queue_size) {
  series_.AddRow(static_cast<double>(pages_crawled_),
                 {harvest_pct(), coverage_pct(),
                  static_cast<double>(queue_size)});
}

void MetricsRecorder::RecordFetch(bool ok_page, bool truly_relevant,
                                  bool judged_relevant) {
  LSWC_CHECK(!finished_);
  ++pages_crawled_;
  if (truly_relevant) ++relevant_crawled_;
  if (ok_page) {
    if (truly_relevant && judged_relevant) {
      ++confusion_.true_positive;
    } else if (!truly_relevant && judged_relevant) {
      ++confusion_.false_positive;
    } else if (truly_relevant && !judged_relevant) {
      ++confusion_.false_negative;
    } else {
      ++confusion_.true_negative;
    }
  }
}

void MetricsRecorder::OnPageCrawled(bool ok_page, bool truly_relevant,
                                    bool judged_relevant,
                                    uint64_t queue_size) {
  RecordFetch(ok_page, truly_relevant, judged_relevant);
  if (pages_crawled_ % sample_interval_ == 0) Sample(queue_size);
}

void MetricsRecorder::Finish(uint64_t queue_size) {
  if (finished_) return;
  finished_ = true;
  if (pages_crawled_ % sample_interval_ != 0 || pages_crawled_ == 0) {
    Sample(queue_size);
  }
}

Status MetricsRecorder::Save(snapshot::SectionWriter* w) const {
  w->U64(total_relevant_);
  w->U64(sample_interval_);
  w->U64(pages_crawled_);
  w->U64(relevant_crawled_);
  w->U64(confusion_.true_positive);
  w->U64(confusion_.false_positive);
  w->U64(confusion_.true_negative);
  w->U64(confusion_.false_negative);
  w->U8(finished_ ? 1 : 0);
  snapshot::SaveSeries(series_, w);
  return Status::OK();
}

Status MetricsRecorder::Restore(snapshot::SectionReader* r) {
  const uint64_t total_relevant = r->U64();
  const uint64_t sample_interval = r->U64();
  LSWC_RETURN_IF_ERROR(r->status());
  if (total_relevant != total_relevant_) {
    return Status::FailedPrecondition(
        "snapshot metrics use a coverage denominator of " +
        std::to_string(total_relevant) + " relevant pages but this run has " +
        std::to_string(total_relevant_));
  }
  if (sample_interval != sample_interval_) {
    return Status::FailedPrecondition(
        "snapshot metrics sample every " + std::to_string(sample_interval) +
        " pages but this run samples every " +
        std::to_string(sample_interval_));
  }
  const uint64_t pages_crawled = r->U64();
  const uint64_t relevant_crawled = r->U64();
  ConfusionCounts confusion;
  confusion.true_positive = r->U64();
  confusion.false_positive = r->U64();
  confusion.true_negative = r->U64();
  confusion.false_negative = r->U64();
  const bool finished = r->U8() != 0;
  LSWC_RETURN_IF_ERROR(r->status());
  LSWC_RETURN_IF_ERROR(snapshot::LoadSeriesInto(r, &series_));
  pages_crawled_ = pages_crawled;
  relevant_crawled_ = relevant_crawled;
  confusion_ = confusion;
  finished_ = finished;
  return Status::OK();
}

}  // namespace lswc
