#include "core/metrics.h"

#include "util/logging.h"

namespace lswc {

MetricsRecorder::MetricsRecorder(uint64_t total_relevant,
                                 uint64_t sample_interval)
    : total_relevant_(total_relevant),
      sample_interval_(sample_interval == 0 ? 1 : sample_interval),
      series_("pages_crawled", {"harvest_pct", "coverage_pct", "queue_size"}) {}

double MetricsRecorder::harvest_pct() const {
  return pages_crawled_ == 0
             ? 0.0
             : 100.0 * static_cast<double>(relevant_crawled_) /
                   static_cast<double>(pages_crawled_);
}

double MetricsRecorder::coverage_pct() const {
  return total_relevant_ == 0
             ? 0.0
             : 100.0 * static_cast<double>(relevant_crawled_) /
                   static_cast<double>(total_relevant_);
}

void MetricsRecorder::Sample(size_t queue_size) {
  series_.AddRow(static_cast<double>(pages_crawled_),
                 {harvest_pct(), coverage_pct(),
                  static_cast<double>(queue_size)});
}

void MetricsRecorder::RecordFetch(bool ok_page, bool truly_relevant,
                                  bool judged_relevant) {
  LSWC_CHECK(!finished_);
  ++pages_crawled_;
  if (truly_relevant) ++relevant_crawled_;
  if (ok_page) {
    if (truly_relevant && judged_relevant) {
      ++confusion_.true_positive;
    } else if (!truly_relevant && judged_relevant) {
      ++confusion_.false_positive;
    } else if (truly_relevant && !judged_relevant) {
      ++confusion_.false_negative;
    } else {
      ++confusion_.true_negative;
    }
  }
}

void MetricsRecorder::OnPageCrawled(bool ok_page, bool truly_relevant,
                                    bool judged_relevant, size_t queue_size) {
  RecordFetch(ok_page, truly_relevant, judged_relevant);
  if (pages_crawled_ % sample_interval_ == 0) Sample(queue_size);
}

void MetricsRecorder::Finish(size_t queue_size) {
  if (finished_) return;
  finished_ = true;
  if (pages_crawled_ % sample_interval_ != 0 || pages_crawled_ == 0) {
    Sample(queue_size);
  }
}

}  // namespace lswc
