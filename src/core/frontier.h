#ifndef LSWC_CORE_FRONTIER_H_
#define LSWC_CORE_FRONTIER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs_fwd.h"
#include "snapshot/section.h"
#include "util/status.h"
#include "webgraph/page.h"

namespace lswc {

/// Link context captured with a push, for score-based frontiers: what
/// the crawl knew about the referrer when it enqueued the URL. The
/// defaults describe a seed URL (trusted, full confidence).
struct PushContext {
  bool parent_relevant = true;
  double parent_confidence = 1.0;
  /// Strategy annotation of the pushed URL (see LinkDecision).
  uint8_t annotation = 0;
};

/// The URL queue of the paper's Fig 2. Stores pending URLs with an
/// integer priority level; Pop returns the highest level, FIFO within a
/// level (the order the paper's strategies assume). The queue tracks its
/// own high-water mark because the queue-size curve is itself one of the
/// paper's reported results (Fig 5, Fig 6a, Fig 7a).
///
/// Deduplication is the caller's job (the Visitor keeps the seen set);
/// the frontier is a pure priority queue.
class Frontier {
 public:
  virtual ~Frontier() = default;

  /// Enqueues `url` at `priority` (higher pops first). Priorities are
  /// clamped to the frontier's level range.
  virtual void Push(PageId url, int priority) = 0;

  /// Enqueues with link context. The paper's pop-order frontiers ignore
  /// the context (priority already encodes the strategy's verdict), so
  /// the default forwards to Push; score-based frontiers override to
  /// keep the context for rescoring.
  virtual void PushScored(PageId url, int priority,
                          const PushContext& context) {
    (void)context;
    Push(url, priority);
  }

  /// Dequeues the next URL, or nullopt when empty.
  virtual std::optional<PageId> Pop() = 0;

  virtual size_t size() const = 0;
  bool empty() const { return size() == 0; }

  /// Largest size() ever observed.
  virtual size_t max_size_seen() const = 0;

  /// Stable identifier of the concrete frontier kind ("fifo", "bucket",
  /// ...). Recorded in the snapshot fingerprint so a checkpoint taken
  /// with one frontier refuses to restore into another.
  virtual std::string kind_name() const { return "unknown"; }

  /// Registers obs instrumentation (either pointer may be null). The
  /// base frontier has no internal machinery worth metering, so the
  /// default ignores the handles; kinds with hidden work (disk spill)
  /// override to export counters and trace instants.
  virtual void AttachObs(obs::MetricsRegistry* registry,
                         obs::TraceSink* trace) {
    (void)registry;
    (void)trace;
  }

  /// Serializes the full pending state (including configuration used for
  /// validation on restore) into `w`. Restore replaces this frontier's
  /// contents from a payload written by the same kind; it validates the
  /// stored configuration against this instance and fails without
  /// modifying state on mismatch or corruption.
  virtual Status Save(snapshot::SectionWriter* w) const {
    (void)w;
    return Status::Unimplemented("frontier kind '" + kind_name() +
                                 "' does not support snapshots");
  }
  virtual Status Restore(snapshot::SectionReader* r) {
    (void)r;
    return Status::Unimplemented("frontier kind '" + kind_name() +
                                 "' does not support snapshots");
  }
};

/// Single-level FIFO: breadth-first crawling and the non-prioritized
/// limited-distance mode (all URLs equal priority).
class FifoFrontier final : public Frontier {
 public:
  void Push(PageId url, int priority) override;
  std::optional<PageId> Pop() override;
  size_t size() const override { return queue_.size(); }
  size_t max_size_seen() const override { return max_size_; }

  std::string kind_name() const override { return "fifo"; }
  Status Save(snapshot::SectionWriter* w) const override;
  Status Restore(snapshot::SectionReader* r) override;

 private:
  std::deque<PageId> queue_;
  size_t max_size_ = 0;
};

/// Fixed-level bucket queue: levels [0, num_levels), FIFO per level,
/// pop from the highest non-empty level. O(1) push/pop; millions of
/// pending URLs cost 4 bytes each, which is what makes the soft-focused
/// 8M-URL peak of Fig 5 simulable at all.
class BucketFrontier final : public Frontier {
 public:
  explicit BucketFrontier(int num_levels);

  void Push(PageId url, int priority) override;
  std::optional<PageId> Pop() override;
  size_t size() const override { return size_; }
  size_t max_size_seen() const override { return max_size_; }

  int num_levels() const { return static_cast<int>(levels_.size()); }
  /// Pending URLs at one level (tests / diagnostics).
  size_t level_size(int level) const { return levels_[level].size(); }

  std::string kind_name() const override { return "bucket"; }
  Status Save(snapshot::SectionWriter* w) const override;
  Status Restore(snapshot::SectionReader* r) override;

 private:
  std::vector<std::deque<PageId>> levels_;
  size_t size_ = 0;
  size_t max_size_ = 0;
  int highest_nonempty_ = -1;
};

/// Capacity-bounded bucket queue: the production answer to the paper's
/// soft-focused memory problem ("we would end up with the exhaustion of
/// physical space for the URL queue"). When a Push would exceed the
/// capacity, the *least promising* pending URL is dropped — the newest
/// entry of the lowest non-empty level (or the incoming URL itself when
/// it is no better). Dropped URLs are simply lost, exactly as in a real
/// crawler that sheds frontier load; they may be re-discovered later
/// through other referrers.
class BoundedFrontier final : public Frontier {
 public:
  BoundedFrontier(int num_levels, size_t capacity);

  void Push(PageId url, int priority) override;
  std::optional<PageId> Pop() override;
  size_t size() const override { return size_; }
  size_t max_size_seen() const override { return max_size_; }

  int num_levels() const { return static_cast<int>(levels_.size()); }
  size_t capacity() const { return capacity_; }
  /// URLs shed because the queue was full.
  uint64_t dropped_count() const { return dropped_; }

  std::string kind_name() const override { return "bounded"; }
  Status Save(snapshot::SectionWriter* w) const override;
  Status Restore(snapshot::SectionReader* r) override;

 private:
  std::vector<std::deque<PageId>> levels_;
  size_t capacity_;
  size_t size_ = 0;
  size_t max_size_ = 0;
  uint64_t dropped_ = 0;
  int highest_nonempty_ = -1;
};

}  // namespace lswc

#endif  // LSWC_CORE_FRONTIER_H_
