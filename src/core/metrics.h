#ifndef LSWC_CORE_METRICS_H_
#define LSWC_CORE_METRICS_H_

#include <cstdint>

#include "core/crawl_observer.h"
#include "snapshot/section.h"
#include "util/series.h"
#include "util/status.h"

namespace lswc {

/// Classifier confusion counts over crawled OK pages (judgment vs the
/// log's ground truth).
struct ConfusionCounts {
  uint64_t true_positive = 0;
  uint64_t false_positive = 0;
  uint64_t true_negative = 0;
  uint64_t false_negative = 0;

  uint64_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
  double precision() const {
    const uint64_t p = true_positive + false_positive;
    return p == 0 ? 0.0 : static_cast<double>(true_positive) / p;
  }
  double recall() const {
    const uint64_t r = true_positive + false_negative;
    return r == 0 ? 0.0 : static_cast<double>(true_positive) / r;
  }
};

/// Collects the paper's evaluation metrics (§3.4) during a simulation:
///
///  - harvest rate (precision): % of crawled pages that are relevant,
///  - coverage (explicit recall): % of all relevant pages crawled —
///    computable exactly because the trace knows the total up front,
///  - URL queue size,
///
/// each sampled as a series against pages crawled, which is exactly the
/// x-axis of Figures 3-7.
///
/// The recorder is a CrawlObserver: attached to a CrawlEngine it counts
/// each fetch (OnFetch) and appends a series row at each sampling point
/// (OnSample) — the engine drives the cadence. The explicit
/// OnPageCrawled / Finish entry points remain for standalone use (the
/// same counters and cadence, self-driven).
class MetricsRecorder : public CrawlObserver {
 public:
  /// `total_relevant` is the dataset-wide relevant-page count (coverage
  /// denominator); `sample_interval` is the series sampling step in
  /// crawled pages.
  MetricsRecorder(uint64_t total_relevant, uint64_t sample_interval);

  // CrawlObserver:
  void OnFetch(const FetchEvent& event) override {
    RecordFetch(event.ok, event.truly_relevant, event.judged_relevant);
  }
  void OnSample(const SampleEvent& event) override {
    Sample(event.frontier_size);
  }

  /// Counts one crawled URL without sampling. `truly_relevant` is ground
  /// truth; `judged_relevant` is the classifier's verdict (only
  /// meaningful for OK pages).
  void RecordFetch(bool ok_page, bool truly_relevant, bool judged_relevant);

  /// Appends one series row at the current crawled count.
  void Sample(uint64_t queue_size);

  /// Standalone-use convenience: RecordFetch plus a cadence-driven
  /// Sample, `queue_size` being the frontier size after link expansion.
  void OnPageCrawled(bool ok_page, bool truly_relevant, bool judged_relevant,
                     uint64_t queue_size);

  /// Appends the final partial sample (call once, when the crawl ends).
  void Finish(uint64_t queue_size);

  uint64_t pages_crawled() const { return pages_crawled_; }
  uint64_t relevant_crawled() const { return relevant_crawled_; }
  double harvest_pct() const;
  double coverage_pct() const;
  const ConfusionCounts& confusion() const { return confusion_; }

  /// Series columns: harvest_pct, coverage_pct, queue_size.
  const Series& series() const { return series_; }

  /// Snapshot support: counters, confusion matrix, and the series rows
  /// recorded so far. Restore validates the coverage denominator and
  /// sampling cadence so a snapshot cannot resume into a recorder that
  /// would produce differently-shaped output.
  Status Save(snapshot::SectionWriter* w) const;
  Status Restore(snapshot::SectionReader* r);

 private:
  uint64_t total_relevant_;
  uint64_t sample_interval_;
  uint64_t pages_crawled_ = 0;
  uint64_t relevant_crawled_ = 0;
  ConfusionCounts confusion_;
  Series series_;
  bool finished_ = false;
};

}  // namespace lswc

#endif  // LSWC_CORE_METRICS_H_
