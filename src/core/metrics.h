#ifndef LSWC_CORE_METRICS_H_
#define LSWC_CORE_METRICS_H_

#include <cstdint>

#include "util/series.h"

namespace lswc {

/// Classifier confusion counts over crawled OK pages (judgment vs the
/// log's ground truth).
struct ConfusionCounts {
  uint64_t true_positive = 0;
  uint64_t false_positive = 0;
  uint64_t true_negative = 0;
  uint64_t false_negative = 0;

  uint64_t total() const {
    return true_positive + false_positive + true_negative + false_negative;
  }
  double precision() const {
    const uint64_t p = true_positive + false_positive;
    return p == 0 ? 0.0 : static_cast<double>(true_positive) / p;
  }
  double recall() const {
    const uint64_t r = true_positive + false_negative;
    return r == 0 ? 0.0 : static_cast<double>(true_positive) / r;
  }
};

/// Collects the paper's evaluation metrics (§3.4) during a simulation:
///
///  - harvest rate (precision): % of crawled pages that are relevant,
///  - coverage (explicit recall): % of all relevant pages crawled —
///    computable exactly because the trace knows the total up front,
///  - URL queue size,
///
/// each sampled as a series against pages crawled, which is exactly the
/// x-axis of Figures 3-7.
class MetricsRecorder {
 public:
  /// `total_relevant` is the dataset-wide relevant-page count (coverage
  /// denominator); `sample_interval` is the series sampling step in
  /// crawled pages.
  MetricsRecorder(uint64_t total_relevant, uint64_t sample_interval);

  /// Records one crawled URL. `truly_relevant` is ground truth;
  /// `judged_relevant` is the classifier's verdict (only meaningful for
  /// OK pages); `queue_size` is the frontier size after link expansion.
  void OnPageCrawled(bool ok_page, bool truly_relevant, bool judged_relevant,
                     size_t queue_size);

  /// Appends the final partial sample (call once, when the crawl ends).
  void Finish(size_t queue_size);

  uint64_t pages_crawled() const { return pages_crawled_; }
  uint64_t relevant_crawled() const { return relevant_crawled_; }
  double harvest_pct() const;
  double coverage_pct() const;
  const ConfusionCounts& confusion() const { return confusion_; }

  /// Series columns: harvest_pct, coverage_pct, queue_size.
  const Series& series() const { return series_; }

 private:
  void Sample(size_t queue_size);

  uint64_t total_relevant_;
  uint64_t sample_interval_;
  uint64_t pages_crawled_ = 0;
  uint64_t relevant_crawled_ = 0;
  ConfusionCounts confusion_;
  Series series_;
  bool finished_ = false;
};

}  // namespace lswc

#endif  // LSWC_CORE_METRICS_H_
