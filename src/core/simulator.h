#ifndef LSWC_CORE_SIMULATOR_H_
#define LSWC_CORE_SIMULATOR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/classifier.h"
#include "core/crawl_observer.h"
#include "core/frontier.h"
#include "core/metrics.h"
#include "core/strategy.h"
#include "core/virtual_web.h"
#include "core/visitor.h"
#include "obs/obs_fwd.h"
#include "util/random.h"

namespace lswc {

/// Knobs of one simulation run.
struct SimulationOptions {
  /// Stop after this many crawled URLs (0 = run until the frontier
  /// empties, the paper's termination condition).
  uint64_t max_pages = 0;
  /// Metric sampling step in crawled pages (0 = auto: ~400 samples).
  uint64_t sample_interval = 0;
  /// Extract links by parsing rendered HTML instead of replaying the
  /// link database (requires the web space to render kFull).
  bool parse_html = false;
  /// Hard cap on pending URLs (0 = unlimited). With a cap the simulator
  /// uses a BoundedFrontier that sheds the least-promising pending URL
  /// on overflow; shed URLs can come back only through a later, better
  /// referrer. This models a crawler with a fixed frontier budget — the
  /// alternative answer to the memory problem the limited-distance
  /// strategy solves by discarding at enqueue time.
  size_t frontier_capacity = 0;
  /// In-memory URL budget for a disk-spilling frontier (0 = keep all
  /// pending URLs in memory). Unlike frontier_capacity this is lossless:
  /// overflow URLs spill to files under `spill_dir` and stream back in
  /// order. Mutually exclusive with frontier_capacity.
  size_t frontier_memory_budget = 0;
  /// Spill-file directory for the spilling frontier. Empty = a unique
  /// per-instance subdirectory under $TMPDIR (or /tmp), removed when the
  /// frontier is destroyed.
  std::string spill_dir;
  /// Global memory budget in MiB (0 = unbudgeted). One pool sized by
  /// store::PlanMemoryBudget: half goes to the frontier's resident-URL
  /// budget — making the disk-spilling frontier the default under a
  /// budget — and a quarter to the link-database block cache (applied
  /// by drivers that open a DiskLinkDb). Explicitly set
  /// frontier_capacity / frontier_memory_budget win over the derived
  /// split; the batch regime and the sharded engine keep their full
  /// frontiers (their merges need the complete pending set) and take
  /// only the identity, which is recorded in the snapshot fingerprint.
  uint64_t memory_budget_mb = 0;
  /// LSWCDS1 dataset file this run replays, when it was opened from one
  /// (empty = generated / in-RAM graph). Identity only: recorded in the
  /// snapshot fingerprint so a resume cannot cross datasets silently.
  std::string dataset_file;
  /// Frontier regime: "" or "pop" = the paper's pop-order frontiers;
  /// "batch" = the batch-selection regime (rescore the pending set, pop
  /// the top `batch_k` per iteration). See FrontierOptions::kind.
  std::string frontier_kind;
  /// Batch regime: URLs selected per rescore iteration (0 = default).
  /// Requires frontier_kind == "batch".
  uint32_t batch_k = 0;
  /// Batch regime: composite scorer spec, e.g. "lang:1.0,indegree:0.5"
  /// (empty = default). Requires frontier_kind == "batch". Scorer
  /// randomness is seeded from the graph's generator seed.
  std::string scorers;
  /// Run the crawl on the sharded engine with this many host-partitioned
  /// shards (0 = the classic serial CrawlEngine). Any value >= 1 selects
  /// ShardedCrawlEngine; its output is bit-identical for every shard
  /// count, so `shards = 1` is the reference the parallel runs must
  /// match. Incompatible with frontier_capacity / frontier_memory_budget
  /// (the cross-shard merge needs the exact global frontier contents).
  uint32_t shards = 0;
  /// Speculative visits planned per round in the sharded engine
  /// (0 = default 256). Ignored when `shards` is 0.
  uint32_t shard_batch = 0;
  /// Additional crawl observers notified from the engine's event bus
  /// (not owned; must outlive the run). The MetricsRecorder is always
  /// attached first, so these may read it during their own callbacks.
  std::vector<CrawlObserver*> observers;
  /// Write a full-state snapshot every N crawled pages (0 = never).
  /// Requires `snapshot_dir`; the snapshot is one rolling file
  /// `<snapshot_dir>/<snapshot_label>.snap`, replaced atomically.
  uint64_t checkpoint_every_pages = 0;
  std::string snapshot_dir;
  /// File stem for this run's snapshot ("crawl" when empty); sanitized
  /// via SanitizeSnapshotLabel.
  std::string snapshot_label;
  /// Resume from this snapshot file instead of seeding (empty = fresh
  /// run). The snapshot's fingerprint must match the run configuration.
  std::string resume_path;
  /// The run's RNG stream (not owned; may be null). When set, snapshots
  /// capture it and a resume restores it, so strategies that draw
  /// randomness stay bit-deterministic across a resume.
  Rng* rng = nullptr;
  /// Per-run observability bundle (not owned; may be null). When
  /// enabled, the engine's stage probes and registry metrics are live,
  /// the frontier exports its internals, and — if the bundle carries a
  /// trace sink — bus events are mirrored into the trace.
  obs::RunObs* obs = nullptr;
  /// Print a progress line to stderr every N crawled pages (0 = never;
  /// needs an enabled `obs` bundle). The line is rendered from the
  /// published telemetry snapshot (obs::FormatProgressLine), so it can
  /// never disagree with the live endpoint's progress document.
  uint64_t progress_every = 0;
  /// This run's slot on the live telemetry plane (not owned; may be
  /// null). When set, a TelemetryPublisher is attached to the bus: it
  /// publishes double-buffered snapshots to the context's board, bumps
  /// the stall-watchdog heartbeat, and records flight-recorder events.
  /// Strictly read-only over crawl state — series output is
  /// bit-identical with telemetry on or off.
  obs::TelemetryContext* telemetry = nullptr;
  /// Display label for telemetry snapshots and the progress line
  /// (falls back to snapshot_label, then "crawl").
  std::string run_label;
  /// Decision journal sink (not owned; may be null). When set, the
  /// engine (serial or sharded — the record streams are bit-identical)
  /// and the batch frontier emit one compact record per crawl decision.
  /// The caller opens and finalizes the writer.
  obs::JournalWriter* journal = nullptr;
};

/// Aggregate outcome of a run.
struct SimulationSummary {
  uint64_t pages_crawled = 0;    // All fetches, OK or not (paper x-axis).
  uint64_t ok_pages_crawled = 0;
  uint64_t relevant_crawled = 0;  // Ground-truth relevant pages fetched.
  size_t max_queue_size = 0;
  /// URLs shed by a capacity-bounded frontier (0 when unbounded).
  uint64_t urls_dropped = 0;
  double final_harvest_pct = 0.0;
  double final_coverage_pct = 0.0;
  ConfusionCounts classifier_confusion;
};

struct SimulationResult {
  SimulationSummary summary;
  /// harvest_pct / coverage_pct / queue_size against pages crawled.
  Series series;
};

/// The simulation driver of the paper's Fig 2: wires the virtual web
/// space, visitor, classifier, observer (strategy) and URL queue, and
/// runs the shared CrawlEngine loop over a frontier built by
/// MakeFrontier; the §3.4 metrics arrive through the engine's
/// CrawlObserver bus.
///
/// One Simulator instance runs one crawl. The frontier implementation is
/// chosen from the strategy's priority-level count (FIFO for one level,
/// bucket queue otherwise). Deduplication: a URL enters the frontier at
/// most once; a URL discarded by the strategy may be enqueued later via
/// a different referrer (that is what lets soft-focused reach 100%
/// coverage while hard-focused starves).
class Simulator {
 public:
  /// Pointers are not owned and must outlive the simulator.
  Simulator(VirtualWebSpace* web, Classifier* classifier,
            const CrawlStrategy* strategy, SimulationOptions options = {});

  /// Runs the crawl from the graph's seeds.
  StatusOr<SimulationResult> Run();

 private:
  /// The `options_.shards >= 1` path: same wiring as Run, on the
  /// sharded engine.
  StatusOr<SimulationResult> RunSharded();

  VirtualWebSpace* web_;
  Classifier* classifier_;
  const CrawlStrategy* strategy_;
  SimulationOptions options_;
};

/// Convenience wrapper: build the standard trace-mode pipeline (in-memory
/// LinkDb, no rendering unless the classifier needs bytes) and run one
/// strategy over a graph. `render_mode` is what the classifier requires.
StatusOr<SimulationResult> RunSimulation(const WebGraph& graph,
                                         Classifier* classifier,
                                         const CrawlStrategy& strategy,
                                         RenderMode render_mode = RenderMode::kNone,
                                         SimulationOptions options = {});

}  // namespace lswc

#endif  // LSWC_CORE_SIMULATOR_H_
