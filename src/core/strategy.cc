#include "core/strategy.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace lswc {

LinkDecision BreadthFirstStrategy::OnLink(const ParentInfo& parent,
                                          PageId child) const {
  (void)parent;
  (void)child;
  return LinkDecision{/*enqueue=*/true, /*priority=*/0, /*annotation=*/0};
}

LinkDecision HardFocusedStrategy::OnLink(const ParentInfo& parent,
                                         PageId child) const {
  (void)child;
  if (!parent.relevant) return LinkDecision{};  // Discard (Table 2).
  return LinkDecision{true, 0, 0};
}

LinkDecision SoftFocusedStrategy::OnLink(const ParentInfo& parent,
                                         PageId child) const {
  (void)child;
  // Never discard; referrer relevance sets the priority (Table 2).
  return LinkDecision{true, parent.relevant ? 1 : 0, 0};
}

LimitedDistanceStrategy::LimitedDistanceStrategy(int max_distance,
                                                 bool prioritized)
    : max_distance_(max_distance), prioritized_(prioritized) {
  LSWC_CHECK_GE(max_distance, 0);
  LSWC_CHECK_LE(max_distance, 254);  // Annotation is one byte.
}

LinkDecision LimitedDistanceStrategy::OnLink(const ParentInfo& parent,
                                             PageId child) const {
  (void)child;
  // Run length of consecutive irrelevant pages ending at the child's
  // referrer chain: reset by a relevant parent, extended otherwise.
  const int run = parent.relevant ? 0 : parent.annotation + 1;
  if (run > max_distance_) return LinkDecision{};  // Path exhausted (Fig 1).
  LinkDecision d;
  d.enqueue = true;
  d.annotation = static_cast<uint8_t>(run);
  d.priority = prioritized_ ? max_distance_ - run : 0;
  return d;
}

std::string LimitedDistanceStrategy::name() const {
  return StringPrintf("%slimited-distance(N=%d)",
                      prioritized_ ? "prioritized-" : "", max_distance_);
}

}  // namespace lswc
