#ifndef LSWC_CORE_CHECKPOINT_H_
#define LSWC_CORE_CHECKPOINT_H_

#include <cstdint>
#include <string>

#include "core/crawl_observer.h"
#include "obs/obs_fwd.h"
#include "util/status.h"

namespace lswc {

/// What the checkpoint policy needs from an engine: the ability to write
/// a complete snapshot, plus the two counters that drive the cadence.
/// Both CrawlEngine and ShardedCrawlEngine implement this, so one
/// CheckpointObserver serves every driver.
class Checkpointable {
 public:
  virtual ~Checkpointable() = default;

  /// Writes the complete run state to `path` (atomic temp+rename).
  /// `bytes_written` (optional) receives the snapshot's on-disk size.
  virtual Status SaveSnapshot(const std::string& path,
                              uint64_t* bytes_written = nullptr) const = 0;

  virtual uint64_t pages_crawled() const = 0;
  /// The resolved sampling step (never 0).
  virtual uint64_t sample_interval() const = 0;
};

/// Makes a string safe to use as a snapshot file name: path separators
/// and the strategy-spec ':' become '-'. "plimited:3" -> "plimited-3".
std::string SanitizeSnapshotLabel(const std::string& label);

/// The checkpoint policy, implemented as just another CrawlObserver on
/// the engine's bus: every `every_n_pages` crawled pages, write the full
/// run state to `path` (one rolling file — the atomic temp+rename write
/// means the file always holds the latest *complete* checkpoint, so a
/// crash mid-write loses at most one checkpoint interval).
///
/// Timing subtlety: a checkpoint that falls on a sampling boundary must
/// be deferred until *after* the metrics observer appends its series row
/// (OnFetch fires before OnSample), otherwise the resumed run would be
/// missing that row and diverge from the straight run. The observer
/// therefore saves in OnFetch only off-boundary, and from OnSample when
/// the due page is also a sample point — metrics is attached first, so
/// its row is already recorded by the time this observer runs.
///
/// Save failures don't abort the crawl (the crawl itself is fine; only
/// durability is degraded) — the first error is kept and surfaced by the
/// driver after Run() via `status()`.
class CheckpointObserver final : public CrawlObserver {
 public:
  /// `engine` is not owned and must outlive the observer. Attach this
  /// observer *after* any observer whose state the snapshot captures.
  CheckpointObserver(Checkpointable* engine, uint64_t every_n_pages,
                     std::string path);

  void OnFetch(const FetchEvent& event) override;
  void OnSample(const SampleEvent& event) override;

  /// Leaves a visible record of every checkpoint landing in `obs` (may
  /// be null / disabled): counter `checkpoint.written`, histograms
  /// `checkpoint.bytes` and `checkpoint.write_us`, gauge
  /// `checkpoint.last_pages_crawled`, plus a "checkpoint" trace
  /// instant. Without this, successful checkpoints were silent — only a
  /// member counter nobody surfaced.
  void AttachObs(obs::RunObs* obs);

  /// First save error, or OK.
  const Status& status() const { return status_; }
  /// Snapshots successfully written.
  uint64_t snapshots_written() const { return snapshots_written_; }
  const std::string& path() const { return path_; }

 private:
  void SaveNow();

  Checkpointable* engine_;
  uint64_t every_n_pages_;
  std::string path_;
  bool pending_ = false;
  uint64_t snapshots_written_ = 0;
  Status status_;
  obs::Counter* obs_written_ = nullptr;
  obs::Histogram* obs_bytes_ = nullptr;
  obs::Histogram* obs_write_us_ = nullptr;
  obs::Gauge* obs_last_pages_ = nullptr;
  obs::TraceSink* obs_trace_ = nullptr;
};

}  // namespace lswc

#endif  // LSWC_CORE_CHECKPOINT_H_
