#ifndef LSWC_CORE_POLITENESS_H_
#define LSWC_CORE_POLITENESS_H_

#include <cstdint>
#include <vector>

#include "core/classifier.h"
#include "core/crawl_observer.h"
#include "core/strategy.h"
#include "core/virtual_web.h"
#include "obs/obs_fwd.h"
#include "util/series.h"
#include "util/status.h"

namespace lswc {

/// Timing model for the politeness-aware simulator — the enhancement the
/// paper names as future work ("incorporating transfer delays and access
/// intervals in the simulation").
struct PolitenessOptions {
  /// Parallel fetch slots (connections) of the simulated crawler.
  int num_connections = 16;
  /// Per-request fixed latency (DNS+connect+TTFB), seconds.
  double base_latency_sec = 0.08;
  /// Transfer bandwidth per connection, bytes/second.
  double bandwidth_bytes_per_sec = 2.0e6;
  /// Minimum spacing between two requests to the same host, seconds.
  double min_access_interval_sec = 1.0;
  /// Stop after this many crawled URLs (0 = until frontier empties).
  uint64_t max_pages = 0;
  /// Stop after this much simulated time (0 = no limit), seconds.
  double max_sim_time_sec = 0.0;
  /// Series sampling step in crawled pages (0 = auto).
  uint64_t sample_interval = 0;
  /// Additional crawl observers (not owned; must outlive the run). The
  /// engine's MetricsRecorder and the timed-series recorder are always
  /// attached first.
  std::vector<CrawlObserver*> observers;
  /// Checkpoint / resume, mirroring SimulationOptions: write a rolling
  /// full-state snapshot (`<snapshot_dir>/<snapshot_label>.snap`) every
  /// N crawled pages; resume_path restores one before the run starts.
  /// Politeness snapshots additionally capture the simulated clock, the
  /// in-flight fetch slots, and every per-host ready time.
  uint64_t checkpoint_every_pages = 0;
  std::string snapshot_dir;
  std::string snapshot_label;
  std::string resume_path;
  /// Per-run observability bundle (not owned; may be null). Adds the
  /// engine's stage probes plus politeness-specific metrics: the
  /// `politeness.fetch_latency_us` histogram (simulated transfer time
  /// per fetch) and the host frontier's push/pop/wait instrumentation.
  obs::RunObs* obs = nullptr;
  /// Print a progress line to stderr every N crawled pages (0 = never;
  /// needs an enabled `obs` bundle). Rendered from the published
  /// telemetry snapshot, like SimulationOptions::progress_every.
  uint64_t progress_every = 0;
  /// Live telemetry slot and display label, mirroring SimulationOptions.
  obs::TelemetryContext* telemetry = nullptr;
  std::string run_label;
  /// Decision journal sink (not owned; may be null), mirroring
  /// SimulationOptions::journal. The caller opens and finalizes it.
  obs::JournalWriter* journal = nullptr;
};

struct PolitenessSummary {
  uint64_t pages_crawled = 0;
  uint64_t relevant_crawled = 0;
  double sim_time_sec = 0.0;
  double pages_per_sec = 0.0;
  /// Fraction of slot-time spent waiting on access intervals rather than
  /// transferring (1.0 = fully politeness-bound).
  double politeness_stall_fraction = 0.0;
  size_t max_queue_size = 0;
  double final_harvest_pct = 0.0;
  double final_coverage_pct = 0.0;
};

struct PolitenessResult {
  PolitenessSummary summary;
  /// Columns vs pages crawled: sim_time_sec, harvest_pct, coverage_pct,
  /// queue_size.
  Series series;
};

/// Event-driven crawl simulator with simulated wall-clock time:
/// `num_connections` slots fetch in parallel; a fetch of a page costs
/// base latency plus size/bandwidth; consecutive requests to one host
/// are spaced by the access interval. URL ordering still follows the
/// given strategy, so the effect of politeness on strategy behaviour
/// (e.g. a big relevant host throttling the crawl) is measurable.
///
/// Page transfer size is estimated from the log record (markup overhead
/// plus content characters times the encoding's bytes-per-char) — the
/// same numbers the content renderer would produce, without rendering.
class PolitenessSimulator {
 public:
  PolitenessSimulator(VirtualWebSpace* web, Classifier* classifier,
                      const CrawlStrategy* strategy,
                      PolitenessOptions options = {});

  StatusOr<PolitenessResult> Run();

 private:
  VirtualWebSpace* web_;
  Classifier* classifier_;
  const CrawlStrategy* strategy_;
  PolitenessOptions options_;
};

/// The transfer-size estimate used by the simulator (exposed for tests).
uint64_t EstimateTransferBytes(const PageRecord& record);

}  // namespace lswc

#endif  // LSWC_CORE_POLITENESS_H_
