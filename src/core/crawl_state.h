#ifndef LSWC_CORE_CRAWL_STATE_H_
#define LSWC_CORE_CRAWL_STATE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/strategy.h"
#include "snapshot/section.h"
#include "util/status.h"
#include "webgraph/page.h"

namespace lswc {

/// Per-URL crawl state shared by every simulator: the crawled / enqueued
/// bitmaps plus the annotation and priority each pending URL was last
/// enqueued with. A URL is fetched at most once; while it waits in the
/// queue, a better referrer (higher priority or a shorter irrelevant-run
/// annotation) may re-push it — the stale entry is skipped at pop time.
/// This lazy-decrease-key is what lets the *prioritized* limited-distance
/// mode propagate minimal distances (near-relevant URLs pop first, so
/// their children inherit the best annotations), while FIFO orders cannot
/// exploit it — the mechanism behind Fig 7's N-invariance.
///
/// Priorities are stored as int16_t: context-graph layers and
/// limited-distance runs legally reach 254 priority levels, which
/// overflowed the original int8_t storage to negative values and made
/// the "better referrer" comparison re-push through *worse* referrers,
/// corrupting annotations (see the >127-level regression test).
class CrawlState {
 public:
  explicit CrawlState(size_t num_pages)
      : crawled_(num_pages, false),
        enqueued_(num_pages, false),
        annotation_(num_pages, 0),
        priority_(num_pages, 0) {}

  /// Outcome of offering a link decision for a child URL.
  enum class Offer {
    /// First sighting: the child must be pushed to the frontier.
    kFirst,
    /// Already pending, but this referrer is better: push again (the old
    /// frontier entry becomes stale).
    kBetter,
    /// Already pending via a referrer at least as good: do nothing.
    kIgnored,
  };

  /// Applies the better-referrer rule for one enqueue-able link and
  /// records the decision's annotation/priority when it wins. The caller
  /// must have checked `crawled(child)` already.
  Offer OfferLink(PageId child, const LinkDecision& decision) {
    const bool first = !enqueued_[child];
    if (!first && decision.annotation >= annotation_[child] &&
        decision.priority <= priority_[child]) {
      return Offer::kIgnored;
    }
    enqueued_[child] = true;
    annotation_[child] = decision.annotation;
    priority_[child] = ClampPriority(decision.priority);
    return first ? Offer::kFirst : Offer::kBetter;
  }

  /// Marks a seed URL pending. Returns false when it was already seeded
  /// (duplicate seed list entries collapse).
  bool EnqueueSeed(PageId seed, int priority) {
    if (enqueued_[seed]) return false;
    enqueued_[seed] = true;
    annotation_[seed] = 0;
    priority_[seed] = ClampPriority(priority);
    return true;
  }

  bool crawled(PageId url) const { return crawled_[url]; }
  void MarkCrawled(PageId url) { crawled_[url] = true; }

  bool enqueued(PageId url) const { return enqueued_[url]; }
  uint8_t annotation(PageId url) const { return annotation_[url]; }
  int16_t priority(PageId url) const { return priority_[url]; }
  size_t num_pages() const { return crawled_.size(); }

  /// Snapshot support: the bitmaps and per-URL annotations are the bulk
  /// of a checkpoint (a few bytes per page).
  void Save(snapshot::SectionWriter* w) const {
    w->U64(num_pages());
    w->BoolVec(crawled_);
    w->BoolVec(enqueued_);
    w->U8Vec(annotation_);
    w->I16Vec(priority_);
  }
  Status Restore(snapshot::SectionReader* r) {
    const uint64_t num_pages = r->U64();
    LSWC_RETURN_IF_ERROR(r->status());
    if (num_pages != crawled_.size()) {
      return Status::FailedPrecondition(
          "snapshot crawl state covers " + std::to_string(num_pages) +
          " pages but this run has " + std::to_string(crawled_.size()));
    }
    std::vector<bool> crawled = r->BoolVec();
    std::vector<bool> enqueued = r->BoolVec();
    std::vector<uint8_t> annotation = r->U8Vec();
    std::vector<int16_t> priority = r->I16Vec();
    LSWC_RETURN_IF_ERROR(r->status());
    if (crawled.size() != num_pages || enqueued.size() != num_pages ||
        annotation.size() != num_pages || priority.size() != num_pages) {
      return Status::Corruption("crawl state snapshot arrays truncated");
    }
    crawled_ = std::move(crawled);
    enqueued_ = std::move(enqueued);
    annotation_ = std::move(annotation);
    priority_ = std::move(priority);
    return Status::OK();
  }

 private:
  static int16_t ClampPriority(int priority) {
    if (priority > INT16_MAX) return INT16_MAX;
    if (priority < INT16_MIN) return INT16_MIN;
    return static_cast<int16_t>(priority);
  }

  std::vector<bool> crawled_;
  std::vector<bool> enqueued_;
  std::vector<uint8_t> annotation_;
  std::vector<int16_t> priority_;
};

}  // namespace lswc

#endif  // LSWC_CORE_CRAWL_STATE_H_
