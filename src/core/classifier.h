#ifndef LSWC_CORE_CLASSIFIER_H_
#define LSWC_CORE_CLASSIFIER_H_

#include <memory>
#include <string>

#include "charset/detector.h"
#include "core/virtual_web.h"

namespace lswc {

/// Relevance judgment of one fetched page (§3.2 of the paper: a page is
/// relevant iff it is written in the target language).
struct RelevanceJudgment {
  bool relevant = false;
  /// The encoding the classifier believes the page uses (diagnostics).
  Encoding encoding = Encoding::kUnknown;
  /// Detector confidence; 1.0 for rule-based judgments.
  double confidence = 0.0;
};

/// Judges the relevance of fetched pages. Implementations must only use
/// the observable parts of the response (status, declared charset, bytes)
/// — ground-truth fields are reserved for OracleClassifier and metrics.
class Classifier {
 public:
  virtual ~Classifier() = default;

  virtual RelevanceJudgment Judge(const FetchResponse& response) = 0;

  /// The language this classifier targets.
  virtual Language target_language() const = 0;

  /// Human-readable name for reports.
  virtual std::string name() const = 0;

  /// A fresh, independent copy for an additional worker thread (the
  /// sharded engine gives each shard its own classifier so parallel
  /// Judge() calls never share mutable detector state). Classifiers that
  /// cannot clone return nullptr; the caller then shares the single
  /// instance behind a mutex instead. Clones must judge identically to
  /// the original for the same response — per-page determinism is part
  /// of the engine's reproducibility contract.
  virtual std::unique_ptr<Classifier> Clone() const { return nullptr; }
};

/// Method 1 (§3.2): trust the charset declared in the HTML META tag.
/// Under RenderMode::kNone the declared charset comes from the crawl log
/// record; when bytes are present they are parsed for the actual META
/// declaration instead (full-fidelity mode), which must agree.
class MetaTagClassifier final : public Classifier {
 public:
  explicit MetaTagClassifier(Language target);

  RelevanceJudgment Judge(const FetchResponse& response) override;
  Language target_language() const override { return target_; }
  std::string name() const override;
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<MetaTagClassifier>(target_);
  }

 private:
  Language target_;
};

/// Method 2 (§3.2): run the composite charset detector on the page bytes
/// (requires RenderMode::kHead or kFull). Pages whose detected encoding
/// maps to the target language are relevant. With
/// `options.enable_thai = false` this reproduces the era-accurate Mozilla
/// detector (no Thai support), the tool the paper actually used.
class DetectorClassifier final : public Classifier {
 public:
  DetectorClassifier(Language target, DetectorOptions options = {});

  RelevanceJudgment Judge(const FetchResponse& response) override;
  Language target_language() const override { return target_; }
  std::string name() const override;
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<DetectorClassifier>(target_, options_);
  }

 private:
  Language target_;
  DetectorOptions options_;  // Kept so Clone() rebuilds the detector.
  CharsetDetector detector_;
};

/// META first, detector as fallback when no charset is declared — the
/// practical combination a production language-specific crawler ships.
class CompositeClassifier final : public Classifier {
 public:
  CompositeClassifier(Language target, DetectorOptions options = {});

  RelevanceJudgment Judge(const FetchResponse& response) override;
  Language target_language() const override { return target_; }
  std::string name() const override;
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<CompositeClassifier>(target_, options_);
  }

 private:
  MetaTagClassifier meta_;
  DetectorClassifier detector_;
  Language target_;
  DetectorOptions options_;  // Kept so Clone() rebuilds the detector.
};

/// Upper-bound classifier that reads the log's ground truth; used for
/// ablations (perfect-classifier condition) and for building oracles in
/// tests. Never use it to *drive* reported strategy results.
class OracleClassifier final : public Classifier {
 public:
  explicit OracleClassifier(Language target) : target_(target) {}

  RelevanceJudgment Judge(const FetchResponse& response) override;
  Language target_language() const override { return target_; }
  std::string name() const override { return "oracle"; }
  std::unique_ptr<Classifier> Clone() const override {
    return std::make_unique<OracleClassifier>(target_);
  }

 private:
  Language target_;
};

}  // namespace lswc

#endif  // LSWC_CORE_CLASSIFIER_H_
