#ifndef LSWC_CORE_CRAWL_OBSERVER_H_
#define LSWC_CORE_CRAWL_OBSERVER_H_

#include <cstdint>

#include "core/strategy.h"
#include "webgraph/page.h"

namespace lswc {

/// One completed fetch, reported after link expansion.
struct FetchEvent {
  PageId url = 0;
  /// HTTP-level success of the fetch.
  bool ok = false;
  /// Ground-truth relevance from the crawl log.
  bool truly_relevant = false;
  /// The classifier's verdict (meaningful only for OK pages).
  bool judged_relevant = false;
  /// Pending URLs after this page's links were expanded. uint64_t (not
  /// size_t) so event payloads, series rows, and obs gauges agree
  /// across platforms.
  uint64_t frontier_size = 0;
  /// Crawled count including this fetch.
  uint64_t pages_crawled = 0;
  /// Shard that owns this URL's host in the sharded engine; 0 in the
  /// serial engine (which is a single implicit shard).
  uint32_t shard = 0;
};

/// One periodic (or final) sampling point of the crawl.
struct SampleEvent {
  uint64_t pages_crawled = 0;
  uint64_t frontier_size = 0;
  /// True for the single tail sample emitted when the crawl ends off the
  /// sampling cadence (mirrors MetricsRecorder::Finish semantics).
  bool is_final = false;
};

/// Why an extracted link did not enter the frontier.
enum class LinkDropReason {
  /// The child was already fetched.
  kAlreadyCrawled,
  /// The strategy discarded the link (LinkDecision::enqueue == false).
  kStrategyDiscard,
  /// The child is already pending via a referrer at least as good — no
  /// re-push (the lazy-decrease-key "better" test failed).
  kNotBetter,
};

/// Event bus of the crawl loop. CrawlEngine notifies every attached
/// observer at each lifecycle point; MetricsRecorder is itself an
/// observer, as are the bench harnesses' diagnostic counters — new
/// tracing / accounting / checkpointing hooks attach the same way
/// instead of patching the loop.
///
/// Per-link callbacks (OnEnqueue / OnRePush / OnDrop) fire once per
/// extracted link and are therefore the hot path of a multi-million-page
/// run. They are only dispatched to observers that opt in via
/// `wants_link_events()`, so purely per-fetch observers cost nothing
/// per link.
class CrawlObserver {
 public:
  virtual ~CrawlObserver() = default;

  /// A page was fetched, judged, and its links expanded.
  virtual void OnFetch(const FetchEvent& event) { (void)event; }

  /// Periodic sampling point (every `sample_interval` fetches), plus at
  /// most one final tail sample with `is_final` set.
  virtual void OnSample(const SampleEvent& event) { (void)event; }

  /// Opt-in gate for the three per-link callbacks below.
  virtual bool wants_link_events() const { return false; }

  /// A URL entered the frontier for the first time.
  virtual void OnEnqueue(PageId url, const LinkDecision& decision) {
    (void)url;
    (void)decision;
  }

  /// A pending URL was re-pushed through a better referrer (higher
  /// priority or smaller annotation); the stale entry will be skipped at
  /// pop time.
  virtual void OnRePush(PageId url, const LinkDecision& decision) {
    (void)url;
    (void)decision;
  }

  /// An extracted link was not enqueued.
  virtual void OnDrop(PageId url, LinkDropReason reason) {
    (void)url;
    (void)reason;
  }
};

}  // namespace lswc

#endif  // LSWC_CORE_CRAWL_OBSERVER_H_
