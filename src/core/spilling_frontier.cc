#include "core/spilling_frontier.h"

#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdlib>
#include <filesystem>

#include <unistd.h>

#include "obs/metrics_registry.h"
#include "obs/trace_sink.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace lswc {

namespace {
/// A unique spill directory for one frontier instance: honors $TMPDIR,
/// and the pid + process-wide sequence keep concurrent runs (and
/// concurrent frontiers within a run) from ever sharing a directory —
/// the cross-process collision a fixed "/tmp" default invites.
std::string UniqueSpillDir() {
  const char* tmpdir = std::getenv("TMPDIR");
  const std::string base =
      (tmpdir != nullptr && *tmpdir != '\0') ? tmpdir : "/tmp";
  static std::atomic<uint64_t> sequence{0};
  return StringPrintf("%s/lswc-spill-%lu-%llu", base.c_str(),
                      static_cast<unsigned long>(::getpid()),
                      static_cast<unsigned long long>(
                          sequence.fetch_add(1, std::memory_order_relaxed)));
}
}  // namespace

StatusOr<std::unique_ptr<SpillingFrontier>> SpillingFrontier::Create(
    int num_levels, const Options& options) {
  if (num_levels <= 0) {
    return Status::InvalidArgument("num_levels must be > 0");
  }
  if (options.chunk == 0 || options.memory_budget < options.chunk * 2) {
    return Status::InvalidArgument("memory_budget must be >= 2 * chunk");
  }
  Options resolved = options;
  const bool owns_dir = resolved.spill_dir.empty();
  if (owns_dir) resolved.spill_dir = UniqueSpillDir();
  std::error_code ec;
  std::filesystem::create_directories(resolved.spill_dir, ec);
  if (ec) {
    return Status::IoError("cannot create spill dir " + resolved.spill_dir);
  }
  auto frontier =
      std::unique_ptr<SpillingFrontier>(new SpillingFrontier(resolved));
  frontier->owns_spill_dir_ = owns_dir;
  frontier->levels_.resize(static_cast<size_t>(num_levels));
  // Probe writability once up front so Push never has to report IO
  // errors (Frontier's interface is infallible by design).
  const std::string probe = resolved.spill_dir + "/lswc_spill_probe";
  std::FILE* f = std::fopen(probe.c_str(), "wb");
  if (f == nullptr) {
    return Status::IoError("spill dir not writable: " + resolved.spill_dir);
  }
  std::fclose(f);
  std::remove(probe.c_str());
  return frontier;
}

SpillingFrontier::~SpillingFrontier() {
  for (Level& level : levels_) {
    if (level.file != nullptr) {
      std::fclose(level.file);
      std::remove(level.path.c_str());
    }
  }
  if (owns_spill_dir_) {
    // The directory is exclusively ours; it is empty now that the level
    // files are gone, so plain remove (never remove_all) suffices.
    std::error_code ec;
    std::filesystem::remove(options_.spill_dir, ec);
  }
}

void SpillingFrontier::AttachObs(obs::MetricsRegistry* registry,
                                 obs::TraceSink* trace) {
  if (registry != nullptr) {
    obs_spill_bytes_ = registry->counter("spill.bytes_written");
    obs_spill_urls_ = registry->counter("spill.urls");
    obs_refills_ = registry->counter("spill.refills");
  }
  obs_trace_ = trace;
}

size_t SpillingFrontier::in_memory() const {
  size_t n = 0;
  for (const Level& level : levels_) {
    n += level.head.size() + level.tail.size();
  }
  return n;
}

void SpillingFrontier::SpillTail(Level* level) {
  if (level->tail.empty()) return;
  if (level->file == nullptr) {
    level->path = StringPrintf("%s/lswc_spill_%p_%zd.bin",
                               options_.spill_dir.c_str(),
                               static_cast<void*>(this),
                               level - levels_.data());
    level->file = std::fopen(level->path.c_str(), "wb+");
    LSWC_CHECK(level->file != nullptr) << "spill file open failed";
  }
  // Append the whole tail (oldest first) to keep FIFO order on disk.
  std::vector<PageId> buffer(level->tail.begin(), level->tail.end());
  LSWC_CHECK_EQ(std::fseek(level->file, 0, SEEK_END), 0);
  const size_t written = std::fwrite(buffer.data(), sizeof(PageId),
                                     buffer.size(), level->file);
  LSWC_CHECK_EQ(written, buffer.size()) << "spill write failed";
  level->file_written += buffer.size();
  spilled_urls_ += buffer.size();
  if (obs_spill_urls_ != nullptr) {
    obs_spill_urls_->Add(buffer.size());
    obs_spill_bytes_->Add(buffer.size() * sizeof(PageId));
  }
  if (obs_trace_ != nullptr) obs_trace_->Instant("spill");
  level->tail.clear();
}

void SpillingFrontier::RefillHead(Level* level) {
  if (!level->head.empty()) return;
  if (level->on_disk() > 0) {
    const size_t want = static_cast<size_t>(
        std::min<uint64_t>(options_.chunk, level->on_disk()));
    std::vector<PageId> buffer(want);
    LSWC_CHECK_EQ(
        std::fseek(level->file,
                   static_cast<long>(level->file_read * sizeof(PageId)),
                   SEEK_SET),
        0);
    const size_t got =
        std::fread(buffer.data(), sizeof(PageId), want, level->file);
    LSWC_CHECK_EQ(got, want) << "spill read failed";
    level->file_read += got;
    if (obs_refills_ != nullptr) obs_refills_->Increment();
    level->head.insert(level->head.end(), buffer.begin(), buffer.end());
    if (level->on_disk() == 0) {
      // File fully drained: truncate it for reuse.
      LSWC_CHECK(std::freopen(level->path.c_str(), "wb+", level->file) !=
                 nullptr);
      level->file_read = 0;
      level->file_written = 0;
    }
    return;
  }
  // Nothing on disk: promote the tail.
  level->head.swap(level->tail);
}

void SpillingFrontier::EnforceBudget() {
  if (in_memory() <= options_.memory_budget) return;
  // Spill the biggest tails from the lowest levels first: they are the
  // last URLs this frontier will ever pop.
  for (size_t i = 0; i < levels_.size(); ++i) {
    if (levels_[i].tail.size() >= options_.chunk) {
      SpillTail(&levels_[i]);
      if (in_memory() <= options_.memory_budget) return;
    }
  }
  // Still over (many small tails): spill everything spillable.
  for (size_t i = 0; i < levels_.size(); ++i) {
    SpillTail(&levels_[i]);
    if (in_memory() <= options_.memory_budget) return;
  }
}

void SpillingFrontier::Push(PageId url, int priority) {
  const int level_index =
      std::clamp(priority, 0, static_cast<int>(levels_.size()) - 1);
  levels_[level_index].tail.push_back(url);
  ++size_;
  max_size_ = std::max(max_size_, size_);
  highest_nonempty_ = std::max(highest_nonempty_, level_index);
  EnforceBudget();
}

Status SpillingFrontier::Save(snapshot::SectionWriter* w) const {
  w->U64(options_.memory_budget);
  w->U64(options_.chunk);
  w->U64(max_size_);
  w->U64(spilled_urls_);
  w->U64(levels_.size());
  for (const Level& level : levels_) {
    w->U32Vec(std::vector<uint32_t>(level.head.begin(), level.head.end()));
    // The on-disk middle segment, read back without consuming it. The
    // spill IO paths (SpillTail/RefillHead) always seek before acting,
    // so moving the file position here is invisible to them.
    std::vector<uint32_t> disk(static_cast<size_t>(level.on_disk()));
    if (!disk.empty()) {
      if (std::fseek(level.file,
                     static_cast<long>(level.file_read * sizeof(PageId)),
                     SEEK_SET) != 0 ||
          std::fread(disk.data(), sizeof(PageId), disk.size(), level.file) !=
              disk.size()) {
        return Status::IoError("cannot read back spill file " + level.path);
      }
    }
    w->U32Vec(disk);
    w->U32Vec(std::vector<uint32_t>(level.tail.begin(), level.tail.end()));
  }
  return Status::OK();
}

Status SpillingFrontier::Restore(snapshot::SectionReader* r) {
  const uint64_t memory_budget = r->U64();
  const uint64_t chunk = r->U64();
  const uint64_t max_size = r->U64();
  const uint64_t spilled_urls = r->U64();
  const uint64_t num_levels = r->U64();
  LSWC_RETURN_IF_ERROR(r->status());
  if (memory_budget != options_.memory_budget || chunk != options_.chunk) {
    return Status::FailedPrecondition(
        "snapshot spilling frontier used budget=" +
        std::to_string(memory_budget) + " chunk=" + std::to_string(chunk) +
        " but this run uses budget=" + std::to_string(options_.memory_budget) +
        " chunk=" + std::to_string(options_.chunk));
  }
  if (num_levels != levels_.size()) {
    return Status::FailedPrecondition(
        "snapshot spilling frontier has " + std::to_string(num_levels) +
        " levels but this run uses " + std::to_string(levels_.size()));
  }
  // Decode everything before touching live state, so a corrupt payload
  // leaves the frontier unchanged.
  struct LoadedLevel {
    std::vector<uint32_t> head, disk, tail;
  };
  std::vector<LoadedLevel> loaded(levels_.size());
  for (LoadedLevel& level : loaded) {
    level.head = r->U32Vec();
    level.disk = r->U32Vec();
    level.tail = r->U32Vec();
  }
  LSWC_RETURN_IF_ERROR(r->status());

  size_ = 0;
  highest_nonempty_ = -1;
  for (size_t i = 0; i < levels_.size(); ++i) {
    Level& level = levels_[i];
    level.head.assign(loaded[i].head.begin(), loaded[i].head.end());
    level.tail.assign(loaded[i].tail.begin(), loaded[i].tail.end());
    // Rewrite the spill file from the snapshot's embedded segment.
    if (level.file != nullptr) {
      LSWC_CHECK(std::freopen(level.path.c_str(), "wb+", level.file) !=
                 nullptr);
    }
    level.file_read = 0;
    level.file_written = 0;
    if (!loaded[i].disk.empty()) {
      if (level.file == nullptr) {
        level.path = StringPrintf("%s/lswc_spill_%p_%zd.bin",
                                  options_.spill_dir.c_str(),
                                  static_cast<void*>(this),
                                  static_cast<ssize_t>(i));
        level.file = std::fopen(level.path.c_str(), "wb+");
        if (level.file == nullptr) {
          return Status::IoError("cannot create spill file " + level.path);
        }
      }
      if (std::fwrite(loaded[i].disk.data(), sizeof(PageId),
                      loaded[i].disk.size(), level.file) !=
          loaded[i].disk.size()) {
        return Status::IoError("cannot rewrite spill file " + level.path);
      }
      level.file_written = loaded[i].disk.size();
    }
    size_ += level.total();
    if (level.total() > 0) highest_nonempty_ = static_cast<int>(i);
  }
  max_size_ = static_cast<size_t>(max_size);
  spilled_urls_ = spilled_urls;
  return Status::OK();
}

std::optional<PageId> SpillingFrontier::Pop() {
  if (size_ == 0) return std::nullopt;
  while (highest_nonempty_ >= 0 &&
         levels_[static_cast<size_t>(highest_nonempty_)].total() == 0) {
    --highest_nonempty_;
  }
  LSWC_CHECK_GE(highest_nonempty_, 0);
  Level& level = levels_[static_cast<size_t>(highest_nonempty_)];
  RefillHead(&level);
  LSWC_CHECK(!level.head.empty());
  const PageId url = level.head.front();
  level.head.pop_front();
  --size_;
  return url;
}

}  // namespace lswc
