#ifndef LSWC_CORE_OBS_OBSERVERS_H_
#define LSWC_CORE_OBS_OBSERVERS_H_

// CrawlObservers that surface a run while it happens: ProgressObserver
// prints the periodic one-line status (pages/sec, harvest, queue size,
// top stages) and TraceEventObserver mirrors bus events into a
// TraceSink as instants and counter tracks. Both are attached by the
// drivers only when the run carries an enabled obs bundle, so a
// disabled run never pays for them — not even the observer dispatch.

#include <cstdint>
#include <string>

#include "core/crawl_observer.h"
#include "obs/obs_fwd.h"

namespace lswc {

/// Prints one status line to stderr every `every_pages` fetches:
///
///   [fig3] 40000 pages | 812345 pages/sec | harvest 23.1% | queue
///   51234 | fetch 62% classify 21% strategy 9%
///
/// stderr on purpose: stdout carries the harnesses' deterministic
/// summary lines, which golden tests and CI hashes compare.
class ProgressObserver final : public CrawlObserver {
 public:
  /// `profiler` (may be null) supplies the top-stages tail of the line.
  ProgressObserver(uint64_t every_pages, std::string label,
                   const obs::StageProfiler* profiler);

  void OnFetch(const FetchEvent& event) override;

 private:
  uint64_t every_pages_;
  std::string label_;
  const obs::StageProfiler* profiler_;
  uint64_t relevant_ = 0;
  uint64_t last_pages_ = 0;
  uint64_t last_ns_ = 0;
};

/// Mirrors bus events into the run's trace: "re-push" instants, a
/// subsampled "drop" instant (1 in 64 — drops dominate a focused
/// crawl's link traffic and would swamp the trace), and a
/// "frontier_size" counter track sampled at each metrics sampling
/// point.
class TraceEventObserver final : public CrawlObserver {
 public:
  explicit TraceEventObserver(obs::TraceSink* sink) : sink_(sink) {}

  bool wants_link_events() const override { return true; }
  void OnRePush(PageId url, const LinkDecision& decision) override;
  void OnDrop(PageId url, LinkDropReason reason) override;
  void OnSample(const SampleEvent& event) override;

 private:
  obs::TraceSink* sink_;
  uint64_t drops_seen_ = 0;
};

}  // namespace lswc

#endif  // LSWC_CORE_OBS_OBSERVERS_H_
