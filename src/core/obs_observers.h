#ifndef LSWC_CORE_OBS_OBSERVERS_H_
#define LSWC_CORE_OBS_OBSERVERS_H_

// CrawlObservers that surface a run while it happens.
// TraceEventObserver mirrors bus events into a TraceSink as instants
// and counter tracks; it is attached by the drivers only when the run
// carries an enabled obs bundle, so a disabled run never pays for it —
// not even the observer dispatch. (The periodic progress line moved to
// core/telemetry_publisher.h: it is now rendered from the published
// telemetry snapshot, so the stderr line and the live endpoint share
// one source of truth.)

#include <cstdint>
#include <string>

#include "core/crawl_observer.h"
#include "obs/obs_fwd.h"

namespace lswc {

/// Mirrors bus events into the run's trace: "re-push" instants, a
/// subsampled "drop" instant (1 in 64 — drops dominate a focused
/// crawl's link traffic and would swamp the trace), and a
/// "frontier_size" counter track sampled at each metrics sampling
/// point.
class TraceEventObserver final : public CrawlObserver {
 public:
  explicit TraceEventObserver(obs::TraceSink* sink) : sink_(sink) {}

  bool wants_link_events() const override { return true; }
  void OnRePush(PageId url, const LinkDecision& decision) override;
  void OnDrop(PageId url, LinkDropReason reason) override;
  void OnSample(const SampleEvent& event) override;

 private:
  obs::TraceSink* sink_;
  uint64_t drops_seen_ = 0;
};

}  // namespace lswc

#endif  // LSWC_CORE_OBS_OBSERVERS_H_
