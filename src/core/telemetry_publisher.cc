#include "core/telemetry_publisher.h"

#include <cstdio>
#include <memory>
#include <utility>

#include "obs/run_obs.h"
#include "obs/stage_profiler.h"
#include "util/sysinfo.h"

namespace lswc {

namespace {

/// Snapshot construction cadence: at most once per 64 pages (same mask
/// as the StageProfiler's timing sample) and once per 100ms.
constexpr uint64_t kCadenceMask = 63;
constexpr uint64_t kMinPublishGapNs = 100'000'000;

}  // namespace

TelemetryPublisher::TelemetryPublisher(Options options)
    : options_(std::move(options)) {}

void TelemetryPublisher::OnFetch(const FetchEvent& event) {
  if (event.shard >= shard_pages_.size()) {
    shard_pages_.resize(event.shard + 1, 0);
  }
  ++shard_pages_[event.shard];
  last_pages_seen_ = event.pages_crawled;
  last_frontier_seen_ = event.frontier_size;
  const bool progress_due =
      options_.progress_every != 0 &&
      event.pages_crawled % options_.progress_every == 0;
  if (!progress_due && (event.pages_crawled & kCadenceMask) != 0) return;
  if (options_.telemetry != nullptr) {
    options_.telemetry->heartbeat->fetch_add(1, std::memory_order_relaxed);
  }
  // last_publish_ns_ == 0 means "never published" — the monotonic clock
  // epoch is process start, so without the guard a crawl that finishes
  // (or stalls) within the first 100ms would never publish at all.
  if (!progress_due && last_publish_ns_ != 0 &&
      obs::MonotonicNowNs() - last_publish_ns_ < kMinPublishGapNs) {
    return;
  }
  Publish(event.pages_crawled, event.frontier_size, progress_due,
          /*final=*/false);
}

void TelemetryPublisher::PublishFinal() {
  Publish(last_pages_seen_, last_frontier_seen_,
          /*progress_line=*/options_.progress_every != 0, /*final=*/true);
}

void TelemetryPublisher::Publish(uint64_t pages_crawled,
                                 uint64_t frontier_size, bool progress_line,
                                 bool final) {
  const uint64_t now = obs::MonotonicNowNs();
  auto snap = std::make_shared<obs::TelemetrySnapshot>();
  snap->run = options_.run_label;
  snap->phase = final ? options_.phase + "/done" : options_.phase;
  snap->seq = ++seq_;
  snap->now_ns = now;
  snap->pages_crawled = pages_crawled;
  snap->frontier_size = frontier_size;
  if (options_.metrics != nullptr) {
    snap->relevant_crawled = options_.metrics->relevant_crawled();
    snap->harvest_pct = options_.metrics->harvest_pct();
    snap->coverage_pct = options_.metrics->coverage_pct();
  }
  if (last_publish_ns_ != 0 && now > last_publish_ns_ &&
      pages_crawled >= last_publish_pages_) {
    snap->pages_per_sec =
        static_cast<double>(pages_crawled - last_publish_pages_) * 1e9 /
        static_cast<double>(now - last_publish_ns_);
  }
  snap->peak_rss_bytes = util::PeakRssBytes();

  const obs::RunObs* obs = options_.obs;
  if (obs != nullptr && obs->enabled) {
    for (int i = 0; i < obs::kNumStages; ++i) {
      const auto stage = static_cast<obs::Stage>(i);
      const uint64_t calls = obs->profiler.calls(stage);
      if (calls == 0) continue;
      snap->stages.push_back(obs::StageStat{
          obs::StageName(stage), calls, obs->profiler.total_ns(stage)});
    }
    obs->registry.SnapshotValues(&snap->metrics);
  }

  if (options_.shard_pending) {
    options_.shard_pending(&snap->shards);
    for (obs::ShardState& shard : snap->shards) {
      if (shard.shard < shard_pages_.size()) {
        shard.pages_crawled = shard_pages_[shard.shard];
      }
    }
  }

  last_publish_ns_ = now;
  last_publish_pages_ = pages_crawled;

  if (progress_line) {
    std::fprintf(stderr, "%s\n", obs::FormatProgressLine(*snap).c_str());
  }
  if (options_.telemetry != nullptr) {
    options_.telemetry->RecordEvent(final ? "run-done" : "publish",
                                    options_.run_label.c_str(), pages_crawled,
                                    frontier_size);
    if (final) {
      // The end-of-run document has no later tick to retry it: a
      // dropped try-lock here would freeze the board (and every
      // attached lswc_top) on the last mid-run snapshot forever.
      options_.telemetry->board.Publish(std::move(snap));
    } else {
      options_.telemetry->board.TryPublish(std::move(snap));
    }
  }
}

}  // namespace lswc
