#ifndef LSWC_CORE_BATCH_FRONTIER_H_
#define LSWC_CORE_BATCH_FRONTIER_H_

// The batch-selection crawl regime (Crawl4LLM's
// `num_selected_docs_per_iter`): instead of popping a priority queue
// one URL at a time, the frontier keeps every pending URL with the link
// context of its best referrer, and each time the current batch runs
// dry it *rescores the whole pending set* with a pluggable Scorer and
// selects the top `select_k` URLs as the next iteration's batch.
//
// Invariants the determinism contract rests on:
//
//  - The pending set is a map: a re-push through a better referrer
//    updates the existing entry's context in place and keeps its
//    original global push sequence, so every pending URL has exactly
//    one entry and selection ties (equal scores) break on
//    (sequence asc) — a total order, making top-K independent of map
//    iteration order.
//  - A URL selected into the batch is committed to: pushes for it are
//    ignored until it is popped (its priority/annotation still live in
//    CrawlState). Batched URLs are therefore crawled exactly once and
//    the engine's stale-duplicate skip never fires, which keeps the
//    queue-size series identical between the serial and sharded paths.
//
// The sharded engine reuses this class as each shard's pending slice:
// PushWithSeq threads the engine's global sequence counter through,
// TopCandidates supplies the shard's local top-K to the deterministic
// cross-shard merge, and Remove takes globally selected URLs out. See
// docs/ARCHITECTURE.md "Batch selection & scorer registry".

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/frontier.h"
#include "core/scorer.h"
#include "obs/obs_fwd.h"

namespace lswc {

/// Default URLs per selection iteration when `batch_k` is 0.
inline constexpr uint32_t kDefaultBatchK = 256;
/// Default scorer spec when `--scorers` is not given.
inline constexpr const char* kDefaultScorerSpec = "lang:1.0,parent:0.5";

class BatchFrontier final : public Frontier {
 public:
  /// One scored pending URL, as ranked by a rescore pass.
  struct Candidate {
    PageId url;
    double score;
    uint64_t seq;

    /// The selection order: score desc, then global sequence asc.
    bool operator<(const Candidate& other) const {
      if (score != other.score) return score > other.score;
      return seq < other.seq;
    }
  };

  /// `select_k` must be >= 1; the scorer is shared (the sharded engine
  /// points every shard's slice at one instance) and must be pure/
  /// thread-safe per the Scorer contract.
  BatchFrontier(uint32_t select_k, std::shared_ptr<const Scorer> scorer);

  void Push(PageId url, int priority) override {
    PushScored(url, priority, PushContext{});
  }
  void PushScored(PageId url, int priority,
                  const PushContext& context) override;
  std::optional<PageId> Pop() override;
  size_t size() const override { return pending_.size() + batch_.size(); }
  size_t max_size_seen() const override { return max_size_; }
  std::string kind_name() const override { return "batch"; }

  void AttachObs(obs::MetricsRegistry* registry,
                 obs::TraceSink* trace) override;
  /// Stage probe for rescore passes (not owned; may be null).
  void set_profiler(obs::StageProfiler* profiler) { profiler_ = profiler; }
  /// Decision journal (not owned; may be null). When set, Refill emits
  /// one batch-round record plus a selection record (with per-scorer
  /// components) for every URL selected.
  void set_journal(obs::JournalWriter* journal) { journal_ = journal; }

  Status Save(snapshot::SectionWriter* w) const override;
  Status Restore(snapshot::SectionReader* r) override;

  uint32_t select_k() const { return select_k_; }
  const Scorer& scorer() const { return *scorer_; }
  /// URLs awaiting selection (excludes the current batch).
  size_t pending_size() const { return pending_.size(); }
  /// Selected URLs not yet popped.
  size_t batch_size() const { return batch_.size(); }

  // --- Sharded-engine surface (per-shard pending slice) ---

  /// Push with an externally assigned global sequence. Returns true
  /// when `seq` was consumed (a new entry); a re-push updates the
  /// entry's context in place and returns false, as does a push for a
  /// URL currently batched.
  bool PushWithSeq(PageId url, int priority, const PushContext& context,
                   uint64_t seq);

  /// The `k` best pending URLs by (score desc, seq asc), scored fresh;
  /// does not modify the frontier. Thread-safe against other shards'
  /// concurrent TopCandidates (all state touched is this instance's).
  std::vector<Candidate> TopCandidates(size_t k) const;

  /// Removes a pending URL chosen by the cross-shard merge.
  void Remove(PageId url) { pending_.erase(url); }

  /// Copies the pending entry for `url` (its score inputs and push
  /// sequence) into `inputs`/`seq`; false when `url` is not pending.
  /// The sharded engine reads these before Remove() so its journal can
  /// break the merged selection's score into per-scorer components.
  bool LookupPending(PageId url, ScoreInputs* inputs, uint64_t* seq) const {
    const auto it = pending_.find(url);
    if (it == pending_.end()) return false;
    *inputs = it->second.inputs;
    *seq = it->second.seq;
    return true;
  }

 private:
  /// A pending URL's scoring record.
  struct Entry {
    uint64_t seq = 0;
    ScoreInputs inputs;
  };

  /// Rescores the pending set and moves the top `select_k_` URLs into
  /// the batch.
  void Refill();

  uint32_t select_k_;
  std::shared_ptr<const Scorer> scorer_;
  std::unordered_map<PageId, Entry> pending_;
  std::deque<PageId> batch_;
  std::unordered_set<PageId> in_batch_;
  uint64_t next_seq_ = 0;
  size_t max_size_ = 0;
  obs::StageProfiler* profiler_ = nullptr;
  obs::JournalWriter* journal_ = nullptr;
  /// Obs counters (null when unattached): rescore passes, URLs scored
  /// across all passes, URLs selected into batches.
  obs::Counter* rescore_rounds_ = nullptr;
  obs::Counter* scored_urls_ = nullptr;
  obs::Counter* selected_urls_ = nullptr;
};

}  // namespace lswc

#endif  // LSWC_CORE_BATCH_FRONTIER_H_
