#ifndef LSWC_WEBGRAPH_SAMPLE_H_
#define LSWC_WEBGRAPH_SAMPLE_H_

#include <cstdint>

#include "util/status.h"
#include "webgraph/graph.h"

namespace lswc {

/// Options for crawl-order subgraph sampling.
struct SampleOptions {
  /// Stop after this many pages (the sample's size). Selection is
  /// breadth-first from the original seeds — the order an unbiased crawl
  /// would discover the space in, so dataset statistics degrade
  /// gracefully with size.
  uint32_t max_pages = 100'000;
};

/// Extracts a self-contained subgraph of the first `max_pages` pages a
/// breadth-first crawl from the log's seeds would visit. Hosts and pages
/// are renumbered densely; links leaving the sample are dropped (exactly
/// what a truncated crawl log would contain); the host-contiguity
/// invariant is re-established by grouping sampled pages per host.
///
/// This is the workhorse for downscaling an imported multi-million-URL
/// log to experiment-sized replicas, the way the paper's authors might
/// have cut their 110M-URL Japanese log down for iteration.
StatusOr<WebGraph> SampleBfsSubgraph(const WebGraph& graph,
                                     const SampleOptions& options);

}  // namespace lswc

#endif  // LSWC_WEBGRAPH_SAMPLE_H_
