#include "webgraph/graph.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace lswc {

namespace {
// Hostname suffix by language; gives datasets a national-domain flavor
// and makes mixed-language hosts visible in examples.
std::string_view HostSuffix(Language lang) {
  switch (lang) {
    case Language::kJapanese:
      return "example-jp.test";
    case Language::kThai:
      return "example-th.test";
    case Language::kOther:
    case Language::kUnknown:
      return "example.test";
  }
  return "example.test";
}
}  // namespace

std::string WebGraph::HostName(uint32_t host_id) const {
  return StringPrintf("www%u.%s", host_id,
                      std::string(HostSuffix(hosts_[host_id].language)).c_str());
}

std::string WebGraph::UrlOf(PageId id) const {
  const uint32_t host_id = pages_[id].host;
  const uint32_t k = PageIndexInHost(id);
  if (k == 0) return "http://" + HostName(host_id) + "/";
  return StringPrintf("http://%s/p%u.html", HostName(host_id).c_str(), k);
}

DatasetStats WebGraph::ComputeStats() const {
  DatasetStats stats;
  stats.total_urls = pages_.size();
  for (PageId id = 0; id < pages_.size(); ++id) {
    const PageRecord& p = pages_[id];
    if (!p.ok()) continue;
    ++stats.ok_html_pages;
    if (p.language == target_language_) {
      ++stats.relevant_ok_pages;
    } else {
      ++stats.irrelevant_ok_pages;
    }
  }
  return stats;
}

bool WebGraph::ResolveUrl(std::string_view url, PageId* out) const {
  // Forms produced by UrlOf: http://www<h>.<suffix>/ and
  // http://www<h>.<suffix>/p<k>.html
  if (!StartsWith(url, "http://www")) return false;
  std::string_view rest = url.substr(10);
  const size_t dot = rest.find('.');
  if (dot == std::string_view::npos) return false;
  const auto host_id = ParseUint64(rest.substr(0, dot));
  if (!host_id.has_value() || *host_id >= hosts_.size()) return false;
  const HostRecord& host = hosts_[*host_id];
  const size_t slash = rest.find('/', dot);
  if (slash == std::string_view::npos) return false;
  // Verify the suffix matches the host's language (catches cross-suffix
  // fabrications).
  if (rest.substr(dot + 1, slash - dot - 1) != HostSuffix(host.language)) {
    return false;
  }
  std::string_view path = rest.substr(slash);
  uint32_t k = 0;
  if (path == "/") {
    k = 0;
  } else if (StartsWith(path, "/p") && EndsWith(path, ".html")) {
    const auto idx = ParseUint64(path.substr(2, path.size() - 7));
    if (!idx.has_value()) return false;
    k = static_cast<uint32_t>(*idx);
  } else {
    return false;
  }
  if (k >= host.num_pages) return false;
  *out = host.first_page + k;
  return true;
}

uint32_t WebGraphBuilder::AddHost(Language language) {
  HostRecord host;
  host.language = language;
  host.first_page = static_cast<uint32_t>(graph_.pages_.size());
  host.num_pages = 0;
  graph_.hosts_.push_back(host);
  return static_cast<uint32_t>(graph_.hosts_.size() - 1);
}

PageId WebGraphBuilder::AddPage(uint32_t host, const PageRecord& record) {
  LSWC_CHECK_LT(host, graph_.hosts_.size());
  HostRecord& h = graph_.hosts_[host];
  const PageId id = static_cast<PageId>(graph_.pages_.size());
  if (h.num_pages == 0) {
    h.first_page = id;
  } else {
    // Host contiguity invariant.
    LSWC_CHECK_EQ(h.first_page + h.num_pages, id);
  }
  ++h.num_pages;
  PageRecord r = record;
  r.host = host;
  graph_.pages_.push_back(r);
  return id;
}

void WebGraphBuilder::AddLink(PageId from, PageId to) {
  LSWC_CHECK_LT(from, graph_.pages_.size());
  LSWC_CHECK_LT(to, graph_.pages_.size());
  LSWC_CHECK_GE(from, last_link_from_);
  // Close offset rows up to `from`.
  while (graph_.offsets_.size() <= from) {
    graph_.offsets_.push_back(static_cast<uint32_t>(graph_.targets_.size()));
  }
  last_link_from_ = from;
  graph_.targets_.push_back(to);
}

void WebGraphBuilder::AddSeed(PageId seed) { graph_.seeds_.push_back(seed); }

void WebGraphBuilder::SetTargetLanguage(Language lang) {
  graph_.target_language_ = lang;
}

void WebGraphBuilder::SetGeneratorSeed(uint64_t seed) {
  graph_.generator_seed_ = seed;
}

StatusOr<WebGraph> WebGraphBuilder::Finish() {
  if (finished_) return Status::FailedPrecondition("Finish called twice");
  finished_ = true;
  while (graph_.offsets_.size() <= graph_.pages_.size()) {
    graph_.offsets_.push_back(static_cast<uint32_t>(graph_.targets_.size()));
  }
  for (PageId seed : graph_.seeds_) {
    if (seed >= graph_.pages_.size()) {
      return Status::InvalidArgument("seed page out of range");
    }
  }
  if (graph_.pages_.empty()) {
    return Status::InvalidArgument("graph has no pages");
  }
  return std::move(graph_);
}

}  // namespace lswc
