#include "webgraph/graph.h"

#include "util/logging.h"
#include "util/string_util.h"

namespace lswc {

namespace {
// Hostname suffix by language; gives datasets a national-domain flavor
// and makes mixed-language hosts visible in examples.
std::string_view HostSuffix(Language lang) {
  switch (lang) {
    case Language::kJapanese:
      return "example-jp.test";
    case Language::kThai:
      return "example-th.test";
    case Language::kOther:
    case Language::kUnknown:
      return "example.test";
  }
  return "example.test";
}
}  // namespace

std::string WebGraph::HostName(uint32_t host_id) const {
  return StringPrintf("www%u.%s", host_id,
                      std::string(HostSuffix(hosts_[host_id].language)).c_str());
}

std::string WebGraph::UrlOf(PageId id) const {
  const uint32_t host_id = pages_[id].host;
  const uint32_t k = PageIndexInHost(id);
  if (k == 0) return "http://" + HostName(host_id) + "/";
  return StringPrintf("http://%s/p%u.html", HostName(host_id).c_str(), k);
}

DatasetStats WebGraph::ComputeStats() const {
  DatasetStats stats;
  stats.total_urls = pages_.size();
  for (PageId id = 0; id < pages_.size(); ++id) {
    const PageRecord& p = pages_[id];
    if (!p.ok()) continue;
    ++stats.ok_html_pages;
    if (p.language == target_language_) {
      ++stats.relevant_ok_pages;
    } else {
      ++stats.irrelevant_ok_pages;
    }
  }
  return stats;
}

bool WebGraph::ResolveUrl(std::string_view url, PageId* out) const {
  // Forms produced by UrlOf: http://www<h>.<suffix>/ and
  // http://www<h>.<suffix>/p<k>.html
  if (!StartsWith(url, "http://www")) return false;
  std::string_view rest = url.substr(10);
  const size_t dot = rest.find('.');
  if (dot == std::string_view::npos) return false;
  const auto host_id = ParseUint64(rest.substr(0, dot));
  if (!host_id.has_value() || *host_id >= hosts_.size()) return false;
  const HostRecord& host = hosts_[*host_id];
  const size_t slash = rest.find('/', dot);
  if (slash == std::string_view::npos) return false;
  // Verify the suffix matches the host's language (catches cross-suffix
  // fabrications).
  if (rest.substr(dot + 1, slash - dot - 1) != HostSuffix(host.language)) {
    return false;
  }
  std::string_view path = rest.substr(slash);
  uint32_t k = 0;
  if (path == "/") {
    k = 0;
  } else if (StartsWith(path, "/p") && EndsWith(path, ".html")) {
    const auto idx = ParseUint64(path.substr(2, path.size() - 7));
    if (!idx.has_value()) return false;
    k = static_cast<uint32_t>(*idx);
  } else {
    return false;
  }
  if (k >= host.num_pages) return false;
  *out = host.first_page + k;
  return true;
}

WebGraph WebGraph::View(std::span<const PageRecord> pages,
                        std::span<const HostRecord> hosts,
                        std::span<const uint32_t> offsets,
                        std::span<const PageId> targets,
                        std::span<const PageId> seeds,
                        Language target_language, uint64_t generator_seed,
                        std::shared_ptr<const void> storage) {
  WebGraph g;
  g.pages_ = pages;
  g.hosts_ = hosts;
  g.offsets_ = offsets;
  g.targets_ = targets;
  g.seeds_ = seeds;
  g.target_language_ = target_language;
  g.generator_seed_ = generator_seed;
  g.storage_ = std::move(storage);
  return g;
}

uint32_t WebGraphBuilder::AddHost(Language language) {
  HostRecord host;
  host.language = language;
  host.first_page = static_cast<uint32_t>(pages_.size());
  host.num_pages = 0;
  hosts_.push_back(host);
  return static_cast<uint32_t>(hosts_.size() - 1);
}

PageId WebGraphBuilder::AddPage(uint32_t host, const PageRecord& record) {
  LSWC_CHECK_LT(host, hosts_.size());
  HostRecord& h = hosts_[host];
  const PageId id = static_cast<PageId>(pages_.size());
  if (h.num_pages == 0) {
    h.first_page = id;
  } else {
    // Host contiguity invariant.
    LSWC_CHECK_EQ(h.first_page + h.num_pages, id);
  }
  ++h.num_pages;
  PageRecord r = record;
  r.host = host;
  pages_.push_back(r);
  return id;
}

void WebGraphBuilder::AddLink(PageId from, PageId to) {
  LSWC_CHECK_LT(from, pages_.size());
  LSWC_CHECK_LT(to, pages_.size());
  LSWC_CHECK_GE(from, last_link_from_);
  // Close offset rows up to `from`.
  while (offsets_.size() <= from) {
    offsets_.push_back(static_cast<uint32_t>(targets_.size()));
  }
  last_link_from_ = from;
  targets_.push_back(to);
}

void WebGraphBuilder::AddSeed(PageId seed) { seeds_.push_back(seed); }

void WebGraphBuilder::SetTargetLanguage(Language lang) {
  target_language_ = lang;
}

void WebGraphBuilder::SetGeneratorSeed(uint64_t seed) {
  generator_seed_ = seed;
}

namespace {
/// The heap block a built graph views into; kept alive by the graph's
/// storage pointer.
struct OwnedGraphStorage {
  std::vector<PageRecord> pages;
  std::vector<HostRecord> hosts;
  std::vector<uint32_t> offsets;
  std::vector<PageId> targets;
  std::vector<PageId> seeds;
};
}  // namespace

StatusOr<WebGraph> WebGraphBuilder::Finish() {
  if (finished_) return Status::FailedPrecondition("Finish called twice");
  finished_ = true;
  while (offsets_.size() <= pages_.size()) {
    offsets_.push_back(static_cast<uint32_t>(targets_.size()));
  }
  for (PageId seed : seeds_) {
    if (seed >= pages_.size()) {
      return Status::InvalidArgument("seed page out of range");
    }
  }
  if (pages_.empty()) {
    return Status::InvalidArgument("graph has no pages");
  }
  auto storage = std::make_shared<OwnedGraphStorage>();
  storage->pages = std::move(pages_);
  storage->hosts = std::move(hosts_);
  storage->offsets = std::move(offsets_);
  storage->targets = std::move(targets_);
  storage->seeds = std::move(seeds_);
  return WebGraph::View(storage->pages, storage->hosts, storage->offsets,
                        storage->targets, storage->seeds, target_language_,
                        generator_seed_, storage);
}

}  // namespace lswc
