#ifndef LSWC_WEBGRAPH_ANALYSIS_H_
#define LSWC_WEBGRAPH_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "webgraph/graph.h"

namespace lswc {

/// Link-level language locality: the evidence the paper gathers in §3
/// before adapting focused crawling ("it is necessary to ensure or at
/// least show some evidences of language locality in the Web").
struct LocalityStats {
  /// Links by (parent relevant?, child relevant?) over OK parents.
  uint64_t rel_to_rel = 0;
  uint64_t rel_to_irr = 0;
  uint64_t irr_to_rel = 0;
  uint64_t irr_to_irr = 0;

  uint64_t total() const {
    return rel_to_rel + rel_to_irr + irr_to_rel + irr_to_irr;
  }
  /// P(child relevant | parent relevant) — observation 1's quantity.
  double p_rel_given_rel() const {
    const uint64_t d = rel_to_rel + rel_to_irr;
    return d == 0 ? 0.0 : static_cast<double>(rel_to_rel) / d;
  }
  double p_rel_given_irr() const {
    const uint64_t d = irr_to_rel + irr_to_irr;
    return d == 0 ? 0.0 : static_cast<double>(irr_to_rel) / d;
  }
  /// Base rate P(link target relevant).
  double p_rel_base() const {
    const uint64_t t = total();
    return t == 0 ? 0.0
                  : static_cast<double>(rel_to_rel + irr_to_rel) / t;
  }
};

LocalityStats ComputeLocality(const WebGraph& graph);

/// In-link structure of the relevant set: how many relevant pages are
/// reachable *only* through irrelevant referrers (the paper's
/// observation 2, the case tunneling exists for), how many have no
/// in-links at all besides the seed set, etc.
struct InlinkStats {
  uint64_t relevant_pages = 0;
  /// Relevant pages with at least one relevant OK referrer.
  uint64_t with_relevant_referrer = 0;
  /// Relevant pages whose referrers are all irrelevant (observation 2).
  uint64_t only_irrelevant_referrers = 0;
  /// Relevant pages with no in-links at all (reachable only as seeds).
  uint64_t no_referrers = 0;
  /// Histogram of in-degree (clamped at the vector size - 1).
  std::vector<uint64_t> in_degree_histogram;
};

InlinkStats ComputeInlinkStats(const WebGraph& graph);

/// Charset-declaration quality over relevant pages (observation 3:
/// "some Thai pages are mislabeled as non-Thai").
struct DeclarationStats {
  uint64_t relevant_pages = 0;      // OK + target language.
  uint64_t correctly_declared = 0;  // META maps to the target language.
  uint64_t undeclared = 0;          // No META charset.
  uint64_t mislabeled = 0;          // META maps elsewhere.
  /// Relevant pages authored in UTF-8 (charset carries no language).
  uint64_t language_neutral_encoding = 0;
};

DeclarationStats ComputeDeclarationStats(const WebGraph& graph);

/// Degree-shape summary of the dataset.
struct DegreeStats {
  double mean_out_degree = 0.0;  // Over OK pages.
  uint32_t max_out_degree = 0;
  double mean_in_degree = 0.0;  // Over all pages.
  uint32_t max_in_degree = 0;
  /// Fraction of pages with in-degree exactly 1 (the periphery the
  /// focused strategies get lost in).
  double in_degree_one_fraction = 0.0;
};

DegreeStats ComputeDegreeStats(const WebGraph& graph);

}  // namespace lswc

#endif  // LSWC_WEBGRAPH_ANALYSIS_H_
