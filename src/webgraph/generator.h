#ifndef LSWC_WEBGRAPH_GENERATOR_H_
#define LSWC_WEBGRAPH_GENERATOR_H_

#include <cstdint>

#include "util/status.h"
#include "webgraph/graph.h"

namespace lswc {

/// Parameters of the synthetic web-space generator.
///
/// The generator reproduces the properties the paper's strategies are
/// sensitive to:
///  - *language locality*: pages on a host share its language with
///    probability `host_language_purity`, most links stay on-host, and
///    cross-host links prefer same-language hosts (`same_language_bias`);
///  - *relevance ratio* (Table 3): controlled by `target_host_fraction`
///    and the purity;
///  - *tunneling structure*: 1 - same_language_bias of cross-host links
///    cross the language boundary, so some relevant regions hide behind
///    irrelevant pages (the paper's observation 2 about Thai pages
///    reachable only through non-Thai pages);
///  - *classifier noise*: META charsets can be missing or mislabeled
///    (observation 3: "Thai web pages mislabeled as non-Thai");
///  - *web-like shape*: Zipf host sizes, Zipf-ish out-degrees,
///    root-page-biased link targets, and a share of non-200 responses.
struct SyntheticWebOptions {
  uint64_t seed = 1;
  uint32_t num_pages = 1'000'000;
  uint32_t num_hosts = 20'000;
  Language target_language = Language::kThai;

  /// Fraction of hosts whose primary language is the target language.
  double target_host_fraction = 0.22;
  /// P(host-root page language == host language).
  double host_language_purity = 0.97;
  /// Per tree-edge probability that a page's language flips relative to
  /// its intra-host parent, creating contiguous foreign-language
  /// sections inside hosts (bilingual sites). Deep relevant sections
  /// behind irrelevant index pages are what the limited-distance
  /// strategy exists to reach.
  double language_flip_rate = 0.03;
  /// Zipf exponent of host sizes (pages per host).
  double host_size_exponent = 0.95;

  /// Out-degree = min draw of a shifted Zipf; mean ~ this value.
  double mean_out_degree = 8.0;
  uint32_t max_out_degree = 128;
  /// Fraction of links that stay on the source host.
  double intra_host_link_fraction = 0.62;
  /// For cross-host links: P(destination host has the source *page's*
  /// language). The rest go to a uniformly random host — this is the
  /// language-boundary crossing rate.
  double same_language_bias = 0.85;

  /// Zipf exponent of the in-link popularity law: cross-host link
  /// destination hosts are drawn Zipf(s) from the language's host list, giving the
  /// web its popular head + in-degree-1 periphery.
  double in_link_zipf_exponent = 1.2;

  /// Probability a page has no META charset declaration.
  double missing_meta_rate = 0.08;
  /// Probability the declared META charset is wrong (a random encoding of
  /// the *other* language class).
  double mislabel_meta_rate = 0.02;
  /// Probability a target-language page is authored in UTF-8 (charset
  /// gives no language signal, so charset-driven classifiers miss it).
  double utf8_rate = 0.04;
  /// Probability of a non-200 response (split 70% 404 / 20% 302 / 10% 500).
  double non_ok_rate = 0.06;

  /// Number of seed pages (picked from the largest target-language hosts).
  uint32_t num_seeds = 10;

  /// Body length range (characters).
  uint16_t min_content_chars = 120;
  uint16_t max_content_chars = 1200;
};

/// Preset approximating the paper's Thai dataset: ~35% of OK pages
/// relevant, low language specificity, visible tunneling structure.
SyntheticWebOptions ThaiLikeOptions(uint32_t num_pages = 1'000'000,
                                    uint64_t seed = 247);

/// Preset approximating the paper's Japanese dataset: ~71% of OK pages
/// relevant, high language specificity (the dataset was itself collected
/// with a focused crawl, so its boundary is already language-biased).
SyntheticWebOptions JapaneseLikeOptions(uint32_t num_pages = 1'000'000,
                                        uint64_t seed = 237);

/// Receives a web space as it is generated, in a fixed emission order:
/// Begin, every host (with its final page count), every page in id
/// order, every link in CSR order, every seed, End. The generator
/// consumes its RNG identically no matter which sink listens, so a
/// graph built in RAM (WebGraphBuilder behind GenerateWebGraph) and a
/// dataset file streamed to disk (store::GenerateWebGraphToFile) are
/// bit-identical for the same options.
class WebGraphSink {
 public:
  virtual ~WebGraphSink() = default;

  /// Called once before any emission.
  virtual Status Begin(Language target_language, uint64_t generator_seed,
                       uint32_t num_pages, uint32_t num_hosts) = 0;
  /// Hosts arrive in id order, each with its final size — what lets a
  /// streaming sink write the complete host table before page one.
  virtual Status AddHost(Language language, uint32_t num_pages_in_host) = 0;
  virtual Status AddPage(uint32_t host, const PageRecord& record) = 0;
  /// Links arrive grouped by source in increasing id order (CSR).
  virtual Status AddLink(PageId from, PageId to) = 0;
  virtual Status AddSeed(PageId seed) = 0;
  /// Called once after all emission.
  virtual Status End() = 0;
};

/// Runs the generator against any sink. Deterministic in `options.seed`.
/// Working memory is bounded: two bits per page plus O(num_hosts)
/// arrays, never the graph itself — which is what lets a 100M-page
/// space stream to disk from a laptop.
Status GenerateInto(const SyntheticWebOptions& options, WebGraphSink* sink);

/// Builds the synthetic web space in RAM. Deterministic in
/// `options.seed`.
StatusOr<WebGraph> GenerateWebGraph(const SyntheticWebOptions& options);

}  // namespace lswc

#endif  // LSWC_WEBGRAPH_GENERATOR_H_
