#include "webgraph/content_gen.h"

#include "charset/codec.h"
#include "charset/text_gen.h"
#include "util/random.h"
#include "util/string_util.h"

namespace lswc {

namespace {

void AppendAscii(std::string_view ascii, std::u32string* out) {
  for (char c : ascii) out->push_back(static_cast<char32_t>(c));
}

uint64_t ContentSeed(const WebGraph& graph, PageId id) {
  return Mix64(graph.generator_seed()) ^
         (static_cast<uint64_t>(id) * 0x9e3779b97f4a7c15ULL);
}

// Builds the <head> section (through <body>) in UTF-32.
void BuildHead(const WebGraph& graph, PageId id, Rng* rng,
               std::u32string* doc) {
  const PageRecord& page = graph.page(id);
  AppendAscii("<!DOCTYPE html>\n<html>\n<head>\n", doc);
  if (page.meta_charset != Encoding::kUnknown) {
    AppendAscii("<meta http-equiv=\"Content-Type\" "
                "content=\"text/html; charset=",
                doc);
    AppendAscii(EncodingName(page.meta_charset), doc);
    AppendAscii("\">\n", doc);
  }
  AppendAscii("<title>", doc);
  // windows-874 authors are windows-874 (rather than TIS-620) precisely
  // because their tooling emits C1 smart punctuation; reflect that so
  // the detector can tell the variants apart.
  const bool smart_quotes = page.true_encoding == Encoding::kWindows874;
  if (smart_quotes) doc->push_back(U'“');
  doc->append(GenerateTitle(page.language, rng));
  if (smart_quotes) doc->push_back(U'”');
  AppendAscii("</title>\n</head>\n<body>\n", doc);
}

}  // namespace

StatusOr<std::string> RenderPageHead(const WebGraph& graph, PageId id) {
  const PageRecord& page = graph.page(id);
  Rng rng(ContentSeed(graph, id));
  std::u32string doc;
  BuildHead(graph, id, &rng, &doc);
  return EncodeText(page.true_encoding, doc);
}

StatusOr<std::string> RenderPageBody(const WebGraph& graph, PageId id) {
  const PageRecord& page = graph.page(id);
  if (!page.ok()) {
    return std::string(
        "<!DOCTYPE html>\n<html><head><title>Error</title></head>"
        "<body><h1>HTTP " +
        std::to_string(page.http_status) + "</h1></body></html>\n");
  }
  Rng rng(ContentSeed(graph, id));
  std::u32string doc;
  doc.reserve(page.content_chars + 512);
  BuildHead(graph, id, &rng, &doc);

  // Prose before the link list.
  AppendAscii("<p>", &doc);
  doc.append(GenerateText(page.language, page.content_chars / 2, &rng));
  AppendAscii("</p>\n", &doc);

  // One anchor per outlink, with anchor text in the page's language.
  const auto links = graph.outlinks(id);
  if (!links.empty()) {
    AppendAscii("<ul>\n", &doc);
    for (PageId target : links) {
      AppendAscii("<li><a href=\"", &doc);
      AppendAscii(graph.UrlOf(target), &doc);
      AppendAscii("\">", &doc);
      doc.append(GenerateTitle(page.language, &rng));
      AppendAscii("</a></li>\n", &doc);
    }
    AppendAscii("</ul>\n", &doc);
  }

  AppendAscii("<p>", &doc);
  doc.append(GenerateText(
      page.language, page.content_chars - page.content_chars / 2, &rng));
  AppendAscii("</p>\n</body>\n</html>\n", &doc);

  return EncodeText(page.true_encoding, doc);
}

}  // namespace lswc
