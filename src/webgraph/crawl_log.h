#ifndef LSWC_WEBGRAPH_CRAWL_LOG_H_
#define LSWC_WEBGRAPH_CRAWL_LOG_H_

#include <string>

#include "util/status.h"
#include "webgraph/graph.h"

namespace lswc {

/// Binary crawl-log format (the paper's "crawl logs" store that the
/// trace-driven simulator replays).
///
/// Layout (little-endian):
///   magic "LSWCLOG1" | version u32 | target_language u8 |
///   generator_seed u64 | num_hosts u32 | num_pages u32 |
///   num_links u64 | num_seeds u32 |
///   hosts[]   (language u8, first_page u32, num_pages u32)
///   pages[]   (http_status u16, language u8, true_encoding u8,
///              meta_charset u8, host u32, content_chars u16)
///   offsets[] u32 x (num_pages + 1)
///   targets[] u32 x num_links
///   seeds[]   u32 x num_seeds
///   checksum  u64 (FNV-1a of everything after the magic)
///
/// Write + read round-trips a WebGraph exactly; readers validate counts,
/// offsets monotonicity, id ranges, and the checksum, and fail with
/// Corruption on any mismatch.
Status WriteCrawlLog(const WebGraph& graph, const std::string& path);

StatusOr<WebGraph> ReadCrawlLog(const std::string& path);

}  // namespace lswc

#endif  // LSWC_WEBGRAPH_CRAWL_LOG_H_
