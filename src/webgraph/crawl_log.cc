#include "webgraph/crawl_log.h"

#include <cstdint>
#include <cstring>
#include <fstream>

namespace lswc {

namespace {

constexpr char kMagic[8] = {'L', 'S', 'W', 'C', 'L', 'O', 'G', '1'};
constexpr uint32_t kVersion = 1;

class HashingWriter {
 public:
  explicit HashingWriter(std::ofstream* out) : out_(out) {}

  void Write(const void* data, size_t n) {
    out_->write(static_cast<const char*>(data),
                static_cast<std::streamsize>(n));
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
  }

  template <typename T>
  void WritePod(T v) {
    Write(&v, sizeof(v));
  }

  uint64_t hash() const { return hash_; }

 private:
  std::ofstream* out_;
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

class HashingReader {
 public:
  explicit HashingReader(std::ifstream* in) : in_(in) {}

  bool Read(void* data, size_t n) {
    in_->read(static_cast<char*>(data), static_cast<std::streamsize>(n));
    if (!in_->good() && !(in_->eof() && in_->gcount() ==
                                            static_cast<std::streamsize>(n))) {
      return false;
    }
    const unsigned char* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      hash_ ^= p[i];
      hash_ *= 0x100000001b3ULL;
    }
    return true;
  }

  template <typename T>
  bool ReadPod(T* v) {
    return Read(v, sizeof(*v));
  }

  uint64_t hash() const { return hash_; }

 private:
  std::ifstream* in_;
  uint64_t hash_ = 0xcbf29ce484222325ULL;
};

}  // namespace

Status WriteCrawlLog(const WebGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  out.write(kMagic, sizeof(kMagic));

  HashingWriter w(&out);
  w.WritePod<uint32_t>(kVersion);
  w.WritePod<uint8_t>(static_cast<uint8_t>(graph.target_language()));
  w.WritePod<uint64_t>(graph.generator_seed());
  w.WritePod<uint32_t>(static_cast<uint32_t>(graph.num_hosts()));
  w.WritePod<uint32_t>(static_cast<uint32_t>(graph.num_pages()));
  w.WritePod<uint64_t>(graph.num_links());
  w.WritePod<uint32_t>(static_cast<uint32_t>(graph.seeds().size()));

  for (size_t h = 0; h < graph.num_hosts(); ++h) {
    const HostRecord& host = graph.host(static_cast<uint32_t>(h));
    w.WritePod<uint8_t>(static_cast<uint8_t>(host.language));
    w.WritePod<uint32_t>(host.first_page);
    w.WritePod<uint32_t>(host.num_pages);
  }
  for (PageId id = 0; id < graph.num_pages(); ++id) {
    const PageRecord& p = graph.page(id);
    w.WritePod<uint16_t>(p.http_status);
    w.WritePod<uint8_t>(static_cast<uint8_t>(p.language));
    w.WritePod<uint8_t>(static_cast<uint8_t>(p.true_encoding));
    w.WritePod<uint8_t>(static_cast<uint8_t>(p.meta_charset));
    w.WritePod<uint32_t>(p.host);
    w.WritePod<uint16_t>(p.content_chars);
  }
  uint32_t offset = 0;
  w.WritePod<uint32_t>(offset);
  for (PageId id = 0; id < graph.num_pages(); ++id) {
    offset += static_cast<uint32_t>(graph.outlinks(id).size());
    w.WritePod<uint32_t>(offset);
  }
  for (PageId id = 0; id < graph.num_pages(); ++id) {
    for (PageId t : graph.outlinks(id)) w.WritePod<uint32_t>(t);
  }
  for (PageId s : graph.seeds()) w.WritePod<uint32_t>(s);

  const uint64_t checksum = w.hash();
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<WebGraph> ReadCrawlLog(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in.good() || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("bad crawl log magic");
  }

  HashingReader r(&in);
  uint32_t version;
  uint8_t lang8;
  uint64_t gen_seed;
  uint32_t num_hosts, num_pages, num_seeds;
  uint64_t num_links;
  if (!r.ReadPod(&version) || version != kVersion) {
    return Status::Corruption("unsupported crawl log version");
  }
  if (!r.ReadPod(&lang8) || !r.ReadPod(&gen_seed) || !r.ReadPod(&num_hosts) ||
      !r.ReadPod(&num_pages) || !r.ReadPod(&num_links) ||
      !r.ReadPod(&num_seeds)) {
    return Status::Corruption("truncated crawl log header");
  }
  if (num_hosts == 0 || num_pages == 0 || num_hosts > num_pages) {
    return Status::Corruption("implausible crawl log counts");
  }

  WebGraphBuilder builder;
  builder.SetTargetLanguage(static_cast<Language>(lang8));
  builder.SetGeneratorSeed(gen_seed);

  struct HostHeader {
    uint8_t lang;
    uint32_t first;
    uint32_t count;
  };
  std::vector<HostHeader> hosts(num_hosts);
  for (auto& h : hosts) {
    if (!r.ReadPod(&h.lang) || !r.ReadPod(&h.first) || !r.ReadPod(&h.count)) {
      return Status::Corruption("truncated host table");
    }
  }
  // Validate host layout: contiguous, covering [0, num_pages).
  uint64_t expected_first = 0;
  for (const auto& h : hosts) {
    if (h.first != expected_first) {
      return Status::Corruption("host table not contiguous");
    }
    expected_first += h.count;
  }
  if (expected_first != num_pages) {
    return Status::Corruption("host table does not cover all pages");
  }

  for (const auto& h : hosts) builder.AddHost(static_cast<Language>(h.lang));

  size_t host_index = 0;
  uint32_t remaining_in_host = hosts.empty() ? 0 : hosts[0].count;
  for (PageId id = 0; id < num_pages; ++id) {
    while (remaining_in_host == 0) {
      ++host_index;
      remaining_in_host = hosts[host_index].count;
    }
    PageRecord p;
    uint8_t lang, te, mc;
    uint32_t host32;
    if (!r.ReadPod(&p.http_status) || !r.ReadPod(&lang) || !r.ReadPod(&te) ||
        !r.ReadPod(&mc) || !r.ReadPod(&host32) ||
        !r.ReadPod(&p.content_chars)) {
      return Status::Corruption("truncated page table");
    }
    if (host32 != host_index) {
      return Status::Corruption("page/host assignment mismatch");
    }
    p.language = static_cast<Language>(lang);
    p.true_encoding = static_cast<Encoding>(te);
    p.meta_charset = static_cast<Encoding>(mc);
    builder.AddPage(host32, p);
    --remaining_in_host;
  }

  std::vector<uint32_t> offsets(static_cast<size_t>(num_pages) + 1);
  for (auto& o : offsets) {
    if (!r.ReadPod(&o)) return Status::Corruption("truncated offsets");
  }
  if (offsets.front() != 0 || offsets.back() != num_links) {
    return Status::Corruption("offset table endpoints wrong");
  }
  for (size_t i = 1; i < offsets.size(); ++i) {
    if (offsets[i] < offsets[i - 1]) {
      return Status::Corruption("offsets not monotonic");
    }
  }
  for (PageId id = 0; id < num_pages; ++id) {
    for (uint32_t k = offsets[id]; k < offsets[id + 1]; ++k) {
      uint32_t target;
      if (!r.ReadPod(&target)) return Status::Corruption("truncated targets");
      if (target >= num_pages) return Status::Corruption("target id range");
      builder.AddLink(id, target);
    }
  }
  for (uint32_t i = 0; i < num_seeds; ++i) {
    uint32_t seed;
    if (!r.ReadPod(&seed)) return Status::Corruption("truncated seeds");
    if (seed >= num_pages) return Status::Corruption("seed id range");
    builder.AddSeed(seed);
  }

  const uint64_t computed = r.hash();
  uint64_t stored;
  in.read(reinterpret_cast<char*>(&stored), sizeof(stored));
  if (!in.good() && !in.eof()) return Status::Corruption("truncated checksum");
  if (in.gcount() != sizeof(stored)) {
    return Status::Corruption("truncated checksum");
  }
  if (stored != computed) return Status::Corruption("checksum mismatch");

  return builder.Finish();
}

}  // namespace lswc
