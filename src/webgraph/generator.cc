#include "webgraph/generator.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/logging.h"
#include "util/random.h"

namespace lswc {

namespace {

/// Fanout of the guaranteed intra-host link tree. Page k of a host links
/// to pages 4k+1..4k+4 of the same host, so every page is reachable from
/// the host root; internal tree nodes are forced to status 200 to keep
/// the tree sound (dead leaves are fine — they are the 404s).
constexpr uint32_t kTreeFanout = 4;

bool IsInternalTreeNode(uint32_t index_in_host, uint32_t host_size) {
  return static_cast<uint64_t>(index_in_host) * kTreeFanout + 1 < host_size;
}

Encoding PickEncoding(Language lang, double utf8_rate, Rng* rng) {
  switch (lang) {
    case Language::kThai: {
      if (rng->Bernoulli(utf8_rate)) return Encoding::kUtf8;
      const double r = rng->UniformDouble();
      return r < 0.85 ? Encoding::kTis620 : Encoding::kWindows874;
    }
    case Language::kJapanese: {
      if (rng->Bernoulli(utf8_rate)) return Encoding::kUtf8;
      const double r = rng->UniformDouble();
      if (r < 0.52) return Encoding::kEucJp;
      if (r < 0.95) return Encoding::kShiftJis;
      return Encoding::kIso2022Jp;
    }
    case Language::kOther:
    case Language::kUnknown: {
      const double r = rng->UniformDouble();
      if (r < 0.35) return Encoding::kAscii;
      if (r < 0.70) return Encoding::kLatin1;
      return Encoding::kUtf8;
    }
  }
  return Encoding::kAscii;
}

Encoding PickMislabel(Encoding true_encoding, Rng* rng) {
  static constexpr Encoding kPool[] = {
      Encoding::kLatin1,   Encoding::kAscii,  Encoding::kUtf8,
      Encoding::kShiftJis, Encoding::kEucJp,  Encoding::kTis620,
      Encoding::kWindows874,
  };
  while (true) {
    const Encoding e = kPool[rng->UniformUint64(std::size(kPool))];
    if (e != true_encoding) return e;
  }
}

uint16_t PickNonOkStatus(Rng* rng) {
  const double r = rng->UniformDouble();
  if (r < 0.70) return 404;
  if (r < 0.90) return 302;
  return 500;
}

}  // namespace

SyntheticWebOptions ThaiLikeOptions(uint32_t num_pages, uint64_t seed) {
  SyntheticWebOptions o;
  o.seed = seed;
  o.num_pages = num_pages;
  o.num_hosts = std::max<uint32_t>(64, num_pages / 50);
  o.target_language = Language::kThai;
  o.target_host_fraction = 0.315;
  o.host_language_purity = 0.96;
  o.same_language_bias = 0.85;
  o.missing_meta_rate = 0.08;
  o.mislabel_meta_rate = 0.02;
  o.utf8_rate = 0.04;
  return o;
}

SyntheticWebOptions JapaneseLikeOptions(uint32_t num_pages, uint64_t seed) {
  SyntheticWebOptions o;
  o.seed = seed;
  o.num_pages = num_pages;
  o.num_hosts = std::max<uint32_t>(64, num_pages / 50);
  o.target_language = Language::kJapanese;
  o.target_host_fraction = 0.80;
  o.host_language_purity = 0.97;
  o.same_language_bias = 0.90;
  o.missing_meta_rate = 0.06;
  o.mislabel_meta_rate = 0.01;
  o.utf8_rate = 0.10;
  return o;
}

Status GenerateInto(const SyntheticWebOptions& options, WebGraphSink* sink) {
  if (options.num_pages == 0) {
    return Status::InvalidArgument("num_pages must be > 0");
  }
  if (options.num_hosts == 0 || options.num_hosts > options.num_pages) {
    return Status::InvalidArgument("num_hosts must be in [1, num_pages]");
  }
  if (options.target_language == Language::kOther ||
      options.target_language == Language::kUnknown) {
    return Status::InvalidArgument("target language must be a real language");
  }
  if (options.mean_out_degree < 1.0) {
    return Status::InvalidArgument("mean_out_degree must be >= 1");
  }

  Rng rng(options.seed);
  LSWC_RETURN_IF_ERROR(sink->Begin(options.target_language, options.seed,
                                   options.num_pages, options.num_hosts));

  const uint32_t num_pages = options.num_pages;
  const uint32_t num_hosts = options.num_hosts;

  // ---- Phase 1: hosts (Zipf sizes + language). -------------------------
  std::vector<uint32_t> host_size(num_hosts, 1);  // Every host has a root.
  {
    ZipfDistribution host_zipf(options.host_size_exponent, num_hosts);
    for (uint32_t i = 0; i < num_pages - num_hosts; ++i) {
      ++host_size[host_zipf.Sample(&rng)];
    }
  }
  // Language assignment is *page-weighted*: target_host_fraction is the
  // fraction of pages (not hosts) living on target-language hosts, which
  // is what fixes the dataset's Table 3 relevance ratio. A greedy
  // controller walks the hosts in random order and assigns whichever
  // language keeps the running page fraction closest to the goal. Host 0
  // (the largest, the seed portal) is pinned to the target language and
  // the controller compensates with the rest.
  std::vector<Language> host_lang(num_hosts, Language::kOther);
  {
    std::vector<uint32_t> order(num_hosts - 1);
    for (uint32_t i = 0; i < num_hosts - 1; ++i) order[i] = i + 1;
    rng.Shuffle(&order);
    host_lang[0] = options.target_language;
    uint64_t target_pages = host_size[0];
    uint64_t assigned_pages = host_size[0];
    for (uint32_t h : order) {
      assigned_pages += host_size[h];
      if (static_cast<double>(target_pages + host_size[h]) <=
          options.target_host_fraction * static_cast<double>(assigned_pages)) {
        host_lang[h] = options.target_language;
        target_pages += host_size[h];
      } else if (static_cast<double>(target_pages) <
                 options.target_host_fraction *
                     static_cast<double>(assigned_pages)) {
        // Crossing the goal: take the closer side.
        const double with = static_cast<double>(target_pages + host_size[h]) /
                            static_cast<double>(assigned_pages);
        const double without = static_cast<double>(target_pages) /
                               static_cast<double>(assigned_pages);
        if (with - options.target_host_fraction <
            options.target_host_fraction - without) {
          host_lang[h] = options.target_language;
          target_pages += host_size[h];
        }
      }
    }
  }
  std::vector<PageId> host_first(num_hosts + 1, 0);
  for (uint32_t h = 0; h < num_hosts; ++h) {
    host_first[h + 1] = host_first[h] + host_size[h];
  }
  // Host sizes are final; the whole host table can be emitted before a
  // single page exists (the streaming sink writes it to disk here).
  for (uint32_t h = 0; h < num_hosts; ++h) {
    LSWC_RETURN_IF_ERROR(sink->AddHost(host_lang[h], host_size[h]));
  }

  // ---- Phase 2: pages. --------------------------------------------------
  // Per-page working state is two bits: alive and is-target-language
  // (page languages are binary — the target or kOther — by
  // construction). At 100M pages that is 25 MB; the records themselves
  // go to the sink and are never held.
  std::vector<bool> page_ok(num_pages);
  std::vector<bool> page_is_target(num_pages);

  // Only leaves of the intra-host tree may be non-OK; scale the leaf rate
  // so the dataset-wide non-OK share matches options.non_ok_rate.
  const double leaf_fraction = 1.0 - 1.0 / static_cast<double>(kTreeFanout);
  const double leaf_non_ok_rate =
      std::min(0.95, options.non_ok_rate / leaf_fraction);

  for (uint32_t h = 0; h < num_hosts; ++h) {
    for (uint32_t k = 0; k < host_size[h]; ++k) {
      PageRecord rec;
      // Language flows down the intra-host tree: the root takes the host
      // language (with a small impurity chance) and every child keeps
      // its tree-parent's language unless a subtree flip occurs. Flips
      // create contiguous foreign-language sections inside hosts — the
      // bilingual-site structure behind the paper's observation that
      // some Thai pages are reachable only through non-Thai pages.
      const Language flipped = (host_lang[h] == options.target_language)
                                   ? Language::kOther
                                   : options.target_language;
      if (k == 0) {
        rec.language = rng.Bernoulli(options.host_language_purity)
                           ? host_lang[h]
                           : flipped;
      } else {
        const PageId parent = host_first[h] + (k - 1) / kTreeFanout;
        const Language parent_lang = page_is_target[parent]
                                         ? options.target_language
                                         : Language::kOther;
        rec.language =
            rng.Bernoulli(options.language_flip_rate)
                ? (parent_lang == options.target_language ? Language::kOther
                                                          : options
                                                                .target_language)
                : parent_lang;
      }
      if (h == 0 && k == 0) {
        // The portal root anchors reachability and is always a live
        // relevant seed.
        rec.language = options.target_language;
      }
      rec.true_encoding = PickEncoding(rec.language, options.utf8_rate, &rng);
      if (rng.Bernoulli(options.missing_meta_rate)) {
        rec.meta_charset = Encoding::kUnknown;
      } else if (rng.Bernoulli(options.mislabel_meta_rate)) {
        rec.meta_charset = PickMislabel(rec.true_encoding, &rng);
      } else {
        rec.meta_charset = rec.true_encoding;
      }
      const bool internal = IsInternalTreeNode(k, host_size[h]);
      const bool force_ok = internal || k == 0;  // Roots must answer.
      rec.http_status = (!force_ok && rng.Bernoulli(leaf_non_ok_rate))
                            ? PickNonOkStatus(&rng)
                            : 200;
      rec.content_chars = static_cast<uint16_t>(
          options.min_content_chars +
          rng.UniformUint64(1 + options.max_content_chars -
                            options.min_content_chars));
      const PageId id = host_first[h] + k;
      LSWC_RETURN_IF_ERROR(sink->AddPage(h, rec));
      page_ok[id] = rec.ok();
      page_is_target[id] = rec.language == options.target_language;
    }
  }

  // ---- Phase 3: cross-host spine. ----------------------------------------
  // Every host root is linked from an earlier OK page, so the whole log is
  // reachable from the host-0 root — exactly the property of a log captured
  // by a real crawl (the paper's datasets were collected that way).
  std::vector<std::pair<PageId, PageId>> spine;
  spine.reserve(num_hosts - 1);
  for (uint32_t h = 1; h < num_hosts; ++h) {
    PageId src = 0;
    do {
      // Uniform over earlier *hosts* (then root-biased within the host):
      // the language mix of discovery edges matches the host-language
      // mix independent of host size, which is what creates relevant
      // regions reachable only through irrelevant referrers (the paper's
      // tunneling observation).
      const uint32_t src_host = static_cast<uint32_t>(rng.UniformUint64(h));
      const double u = rng.UniformDouble();
      uint32_t k = static_cast<uint32_t>(
          u * u * static_cast<double>(host_size[src_host]));
      if (k >= host_size[src_host]) k = host_size[src_host] - 1;
      src = host_first[src_host] + k;
    } while (!page_ok[src]);
    spine.emplace_back(src, host_first[h]);
  }
  std::sort(spine.begin(), spine.end());

  // ---- Phase 4: links. ----------------------------------------------------
  const double extra_mean =
      std::max(1.0, options.mean_out_degree - kTreeFanout);
  const double extra_p = 1.0 / (1.0 + extra_mean);
  size_t spine_pos = 0;

  // Cross-host destinations follow a host-level popularity law: the
  // destination host is drawn Zipf over the hosts of the wanted language
  // (host ids are size-ranked, so big hosts soak up most in-links and
  // gain many redundant entry points), and the page within the host is
  // strongly root-biased. Small hosts are left with their single
  // discovery edge — the structural reason hard-focused crawling
  // permanently loses regions (paper Fig 3b) while limited-distance
  // recovers them gradually as N grows (Fig 6c).
  std::vector<uint32_t> target_hosts;
  std::vector<uint32_t> other_hosts;
  for (uint32_t h = 0; h < num_hosts; ++h) {
    (host_lang[h] == options.target_language ? target_hosts : other_hosts)
        .push_back(h);
  }
  const ZipfDistribution target_host_zipf(
      options.in_link_zipf_exponent,
      std::max<uint64_t>(1, target_hosts.size()));
  const ZipfDistribution other_host_zipf(
      options.in_link_zipf_exponent, std::max<uint64_t>(1, other_hosts.size()));
  auto pick_cross_target = [&](Language lang) -> PageId {
    bool is_target = (lang == options.target_language);
    // Tiny graphs can have an empty class; fall back to the other pool.
    if ((is_target ? target_hosts : other_hosts).empty()) {
      is_target = !is_target;
    }
    const std::vector<uint32_t>& hosts = is_target ? target_hosts : other_hosts;
    const auto& zipf = is_target ? target_host_zipf : other_host_zipf;
    const uint32_t h = hosts[zipf.Sample(&rng)];
    // Geometric root concentration: deep links ("deep linking") exist
    // but are rare; interior pages form the in-degree-1 periphery.
    uint32_t k = static_cast<uint32_t>(rng.Geometric(0.45));
    if (k >= host_size[h]) k = 0;
    return host_first[h] + k;
  };

  for (PageId p = 0; p < num_pages; ++p) {
    // Spine links owned by this source (emitted even for pages that later
    // lost the status lottery? No: spine sources are OK by construction).
    while (spine_pos < spine.size() && spine[spine_pos].first == p) {
      LSWC_RETURN_IF_ERROR(sink->AddLink(p, spine[spine_pos].second));
      ++spine_pos;
    }
    if (!page_ok[p]) continue;  // Non-OK pages have no parsed content.

    // Guaranteed intra-host tree children.
    const uint32_t h = [&] {
      // Binary search for the host containing p.
      const auto it =
          std::upper_bound(host_first.begin(), host_first.end(), p);
      return static_cast<uint32_t>(it - host_first.begin() - 1);
    }();
    const uint32_t k = p - host_first[h];
    for (uint32_t c = k * kTreeFanout + 1;
         c <= k * kTreeFanout + kTreeFanout && c < host_size[h]; ++c) {
      LSWC_RETURN_IF_ERROR(sink->AddLink(p, host_first[h] + c));
    }

    // Random extra links: geometric out-degree with occasional hub boost.
    uint64_t extra = rng.Geometric(extra_p);
    if (rng.Bernoulli(0.02)) extra *= 5;
    extra = std::min<uint64_t>(extra, options.max_out_degree);
    for (uint64_t i = 0; i < extra; ++i) {
      if (rng.Bernoulli(options.intra_host_link_fraction) &&
          host_size[h] > 1) {
        // Intra-host extras are tree-local, the way real sites link
        // within their own sections: mostly short descendant hops
        // ("related pages"), sometimes a breadcrumb back to an ancestor.
        // Locality matters: links that jumped uniformly across the host
        // would tunnel around the language-section boundaries the
        // limited-distance strategy is designed to cross.
        if (rng.Bernoulli(0.3)) {
          // Breadcrumb: a uniformly random ancestor (often the root).
          uint32_t a = k;
          const uint32_t hops = 1 + static_cast<uint32_t>(
                                        rng.Geometric(0.4));
          for (uint32_t s = 0; s < hops && a != 0; ++s) {
            a = (a - 1) / kTreeFanout;
          }
          LSWC_RETURN_IF_ERROR(sink->AddLink(p, host_first[h] + a));
        } else {
          // Descendant hop of geometric depth.
          uint32_t t = k;
          for (;;) {
            const uint32_t child = t * kTreeFanout + 1 +
                                   static_cast<uint32_t>(
                                       rng.UniformUint64(kTreeFanout));
            if (child >= host_size[h]) break;
            t = child;
            if (rng.Bernoulli(0.5)) break;
          }
          LSWC_RETURN_IF_ERROR(sink->AddLink(p, host_first[h] + t));
        }
      } else {
        const Language want =
            rng.Bernoulli(options.same_language_bias)
                ? (page_is_target[p] ? options.target_language
                                     : Language::kOther)
                : (rng.Bernoulli(0.5) ? options.target_language
                                      : Language::kOther);
        LSWC_RETURN_IF_ERROR(sink->AddLink(p, pick_cross_target(want)));
      }
    }
  }
  LSWC_CHECK_EQ(spine_pos, spine.size());

  // ---- Phase 5: seeds. ----------------------------------------------------
  // The host-0 root plus roots of the next largest relevant hosts.
  uint32_t seeds = 0;
  for (uint32_t h = 0; h < num_hosts && seeds < options.num_seeds; ++h) {
    const PageId root = host_first[h];
    if (host_lang[h] == options.target_language && page_ok[root] &&
        page_is_target[root]) {
      LSWC_RETURN_IF_ERROR(sink->AddSeed(root));
      ++seeds;
    }
  }
  if (seeds == 0) LSWC_RETURN_IF_ERROR(sink->AddSeed(0));

  return sink->End();
}

namespace {

/// The in-RAM path: forwards emission into a WebGraphBuilder.
class BuilderSink final : public WebGraphSink {
 public:
  explicit BuilderSink(WebGraphBuilder* builder) : builder_(builder) {}

  Status Begin(Language target_language, uint64_t generator_seed,
               uint32_t /*num_pages*/, uint32_t /*num_hosts*/) override {
    builder_->SetTargetLanguage(target_language);
    builder_->SetGeneratorSeed(generator_seed);
    return Status::OK();
  }
  Status AddHost(Language language, uint32_t /*num_pages_in_host*/) override {
    builder_->AddHost(language);
    return Status::OK();
  }
  Status AddPage(uint32_t host, const PageRecord& record) override {
    builder_->AddPage(host, record);
    return Status::OK();
  }
  Status AddLink(PageId from, PageId to) override {
    builder_->AddLink(from, to);
    return Status::OK();
  }
  Status AddSeed(PageId seed) override {
    builder_->AddSeed(seed);
    return Status::OK();
  }
  Status End() override { return Status::OK(); }

 private:
  WebGraphBuilder* builder_;
};

}  // namespace

StatusOr<WebGraph> GenerateWebGraph(const SyntheticWebOptions& options) {
  WebGraphBuilder builder;
  BuilderSink sink(&builder);
  LSWC_RETURN_IF_ERROR(GenerateInto(options, &sink));
  return builder.Finish();
}

}  // namespace lswc
