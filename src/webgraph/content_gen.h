#ifndef LSWC_WEBGRAPH_CONTENT_GEN_H_
#define LSWC_WEBGRAPH_CONTENT_GEN_H_

#include <string>

#include "util/status.h"
#include "webgraph/graph.h"

namespace lswc {

/// Renders the actual HTTP response body of a page: a complete HTML
/// document — DOCTYPE, optional META charset declaration (the declared
/// charset, which may be missing or wrong per the page record), a title
/// and prose in the page's true language, and one <a href> per outlink —
/// encoded into the page's true byte encoding.
///
/// Rendering is deterministic: page `id` of a graph always produces the
/// same bytes (the content RNG is seeded from the generator seed and id),
/// so the virtual web space can synthesize bodies on demand without
/// storing them — 14M pages of body text never need to exist at once.
///
/// Non-OK pages render a short error body. Rendering fails only on
/// internal invariant violations (a page whose language cannot be written
/// in its recorded encoding, which the generator never produces).
StatusOr<std::string> RenderPageBody(const WebGraph& graph, PageId id);

/// Renders just the <head> prefix (what charset prescanning examines).
StatusOr<std::string> RenderPageHead(const WebGraph& graph, PageId id);

}  // namespace lswc

#endif  // LSWC_WEBGRAPH_CONTENT_GEN_H_
