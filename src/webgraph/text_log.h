#ifndef LSWC_WEBGRAPH_TEXT_LOG_H_
#define LSWC_WEBGRAPH_TEXT_LOG_H_

#include <iosfwd>
#include <string>

#include "util/status.h"
#include "webgraph/graph.h"

namespace lswc {

/// Human-readable crawl-log format: hand-authorable fixtures, diffable
/// exports, and the import path for logs captured by external crawlers.
///
/// Line-based; '#' starts a comment; blank lines ignored:
///
///   !lswc-text-log 1
///   target Thai
///   generator-seed 247
///   host 0 Thai                      # hosts in id order
///   page 200 Thai TIS-620 TIS-620 350
///   page 404 other - - 0             # status lang true-enc meta-enc chars
///   host 1 other
///   page 200 other US-ASCII - 120    # '-' = no META declaration
///   links 0 1 2                      # source page, then its targets,
///   links 2 0                        #   sources in ascending order
///   seed 0
///
/// Pages belong to the most recently declared host (hosts are
/// contiguous, as in the binary format). Encodings use the names/aliases
/// of EncodingFromName; languages are "Japanese", "Thai", "other".
Status WriteTextLog(const WebGraph& graph, std::ostream& out);
Status WriteTextLogFile(const WebGraph& graph, const std::string& path);

/// Parses a text log. Fails with Corruption carrying the line number on
/// any malformed input.
StatusOr<WebGraph> ParseTextLog(std::istream& in);
StatusOr<WebGraph> ReadTextLogFile(const std::string& path);

}  // namespace lswc

#endif  // LSWC_WEBGRAPH_TEXT_LOG_H_
