#ifndef LSWC_WEBGRAPH_GRAPH_H_
#define LSWC_WEBGRAPH_GRAPH_H_

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"
#include "webgraph/page.h"

namespace lswc {

namespace store {
class StoredWebGraph;
}  // namespace store

/// Dataset-level statistics, the rows of the paper's Table 3.
struct DatasetStats {
  uint64_t total_urls = 0;          // All log entries, any status.
  uint64_t ok_html_pages = 0;       // Status-200 pages.
  uint64_t relevant_ok_pages = 0;   // Status-200 pages in the target language.
  uint64_t irrelevant_ok_pages = 0;

  double relevance_ratio() const {
    return ok_html_pages == 0
               ? 0.0
               : static_cast<double>(relevant_ok_pages) /
                     static_cast<double>(ok_html_pages);
  }
};

/// An immutable snapshot of a crawled web space: page records, hosts, and
/// the link structure in CSR form. This is the in-memory image of a crawl
/// log; the virtual web space serves requests from it.
///
/// Page ids are dense [0, num_pages). Pages of one host are contiguous in
/// the host->page index (hosts_[h].first_page .. +num_pages).
///
/// A WebGraph is a *view*: the record arrays are spans over storage held
/// alive by `storage_`. WebGraphBuilder seals heap vectors behind the
/// view; the dataset store (store::StoredWebGraph) points the same spans
/// straight into a memory-mapped LSWCDS1 file, so every consumer taking
/// a `const WebGraph*` works unchanged on an out-of-core dataset.
class WebGraph {
 public:
  WebGraph() = default;

  WebGraph(const WebGraph&) = delete;
  WebGraph& operator=(const WebGraph&) = delete;
  WebGraph(WebGraph&&) = default;
  WebGraph& operator=(WebGraph&&) = default;

  size_t num_pages() const { return pages_.size(); }
  size_t num_hosts() const { return hosts_.size(); }
  size_t num_links() const { return targets_.size(); }

  const PageRecord& page(PageId id) const { return pages_[id]; }
  const HostRecord& host(uint32_t host_id) const { return hosts_[host_id]; }

  /// Outlinks of `id` (empty for non-OK pages).
  std::span<const PageId> outlinks(PageId id) const {
    return std::span<const PageId>(targets_.data() + offsets_[id],
                                   offsets_[id + 1] - offsets_[id]);
  }

  /// Hostname, derived from host id and host language, e.g.
  /// "www42.example-th.test".
  std::string HostName(uint32_t host_id) const;

  /// Canonical URL of a page: "http://<host>/" for a host's first page,
  /// otherwise "http://<host>/p<k>.html" where k is the page's index
  /// within its host.
  std::string UrlOf(PageId id) const;

  /// Seed URLs chosen when the graph was built (crawl starting points).
  std::span<const PageId> seeds() const { return seeds_; }

  /// The target language the dataset was built for (what "relevant"
  /// means in its stats).
  Language target_language() const { return target_language_; }

  /// The generator seed (recorded for reproducibility; 0 for imported
  /// logs).
  uint64_t generator_seed() const { return generator_seed_; }

  /// True when the page is status-200 and in the target language.
  bool IsRelevant(PageId id) const {
    const PageRecord& p = pages_[id];
    return p.ok() && p.language == target_language_;
  }

  /// One pass over all pages; the Table 3 numbers.
  DatasetStats ComputeStats() const;

  /// Index of `id` within its host (0 = host root page).
  uint32_t PageIndexInHost(PageId id) const {
    return id - hosts_[pages_[id].host].first_page;
  }

  /// Resolves a canonical URL string produced by UrlOf back to its
  /// PageId; returns false when the URL does not name a page of this
  /// graph. Used by the full-fidelity HTML parsing pipeline.
  bool ResolveUrl(std::string_view url, PageId* out) const;

 private:
  friend class WebGraphBuilder;
  friend class store::StoredWebGraph;

  /// Assembles a view. `storage` must keep every span's backing memory
  /// alive for the lifetime of the graph (and of any copies made of the
  /// shared_ptr) — the builder hands over its sealed vectors, the store
  /// hands over an open file mapping.
  static WebGraph View(std::span<const PageRecord> pages,
                       std::span<const HostRecord> hosts,
                       std::span<const uint32_t> offsets,
                       std::span<const PageId> targets,
                       std::span<const PageId> seeds,
                       Language target_language, uint64_t generator_seed,
                       std::shared_ptr<const void> storage);

  std::span<const PageRecord> pages_;
  std::span<const HostRecord> hosts_;
  std::span<const uint32_t> offsets_;  // size num_pages + 1.
  std::span<const PageId> targets_;
  std::span<const PageId> seeds_;
  Language target_language_ = Language::kOther;
  uint64_t generator_seed_ = 0;
  /// Owner of the bytes behind the spans: a heap block of vectors for
  /// built graphs, a file mapping for stored ones.
  std::shared_ptr<const void> storage_;
};

/// Incremental builder. Usage: declare hosts, then pages (grouped by
/// host, host-contiguous), then links; Finish() validates and seals.
class WebGraphBuilder {
 public:
  WebGraphBuilder() = default;

  /// Declares a host; returns its id. Hosts must be declared before their
  /// pages.
  uint32_t AddHost(Language language);

  /// Adds a page on `host`. Pages of one host must be added contiguously
  /// (generator order). Returns the PageId.
  PageId AddPage(uint32_t host, const PageRecord& record);

  /// Starts the link section for page `from`; links must be appended in
  /// increasing `from` order (CSR construction).
  void AddLink(PageId from, PageId to);

  void AddSeed(PageId seed);
  void SetTargetLanguage(Language lang);
  void SetGeneratorSeed(uint64_t seed);

  /// Validates invariants and returns the sealed graph.
  StatusOr<WebGraph> Finish();

 private:
  std::vector<PageRecord> pages_;
  std::vector<HostRecord> hosts_;
  std::vector<uint32_t> offsets_;  // size num_pages + 1 after Finish.
  std::vector<PageId> targets_;
  std::vector<PageId> seeds_;
  Language target_language_ = Language::kOther;
  uint64_t generator_seed_ = 0;
  PageId last_link_from_ = 0;
  bool finished_ = false;
};

}  // namespace lswc

#endif  // LSWC_WEBGRAPH_GRAPH_H_
