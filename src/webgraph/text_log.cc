#include "webgraph/text_log.h"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "util/string_util.h"

namespace lswc {

namespace {

constexpr std::string_view kHeader = "!lswc-text-log 1";

std::string_view LanguageToken(Language lang) {
  switch (lang) {
    case Language::kJapanese:
      return "Japanese";
    case Language::kThai:
      return "Thai";
    default:
      return "other";
  }
}

bool ParseLanguageToken(std::string_view token, Language* out) {
  if (EqualsIgnoreCase(token, "japanese")) {
    *out = Language::kJapanese;
  } else if (EqualsIgnoreCase(token, "thai")) {
    *out = Language::kThai;
  } else if (EqualsIgnoreCase(token, "other")) {
    *out = Language::kOther;
  } else {
    return false;
  }
  return true;
}

std::string_view EncodingToken(Encoding e) {
  return e == Encoding::kUnknown ? std::string_view("-") : EncodingName(e);
}

bool ParseEncodingToken(std::string_view token, Encoding* out) {
  if (token == "-") {
    *out = Encoding::kUnknown;
    return true;
  }
  *out = EncodingFromName(token);
  return *out != Encoding::kUnknown;
}

Status LineError(size_t line, const std::string& what) {
  return Status::Corruption(StringPrintf("line %zu: %s",
                                         line, what.c_str()));
}

// Splits on runs of spaces/tabs, dropping the trailing comment.
std::vector<std::string_view> Tokens(std::string_view line) {
  const size_t hash = line.find('#');
  if (hash != std::string_view::npos) line = line.substr(0, hash);
  std::vector<std::string_view> out;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && IsAsciiSpace(line[i])) ++i;
    const size_t start = i;
    while (i < line.size() && !IsAsciiSpace(line[i])) ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

}  // namespace

Status WriteTextLog(const WebGraph& graph, std::ostream& out) {
  out << kHeader << '\n';
  out << "target " << LanguageToken(graph.target_language()) << '\n';
  out << "generator-seed " << graph.generator_seed() << '\n';
  uint32_t current_host = UINT32_MAX;
  for (PageId p = 0; p < graph.num_pages(); ++p) {
    const PageRecord& rec = graph.page(p);
    if (rec.host != current_host) {
      current_host = rec.host;
      out << "host " << current_host << ' '
          << LanguageToken(graph.host(current_host).language) << '\n';
    }
    out << "page " << rec.http_status << ' ' << LanguageToken(rec.language)
        << ' ' << EncodingToken(rec.true_encoding) << ' '
        << EncodingToken(rec.meta_charset) << ' ' << rec.content_chars
        << '\n';
  }
  for (PageId p = 0; p < graph.num_pages(); ++p) {
    const auto links = graph.outlinks(p);
    if (links.empty()) continue;
    out << "links " << p;
    for (PageId t : links) out << ' ' << t;
    out << '\n';
  }
  for (PageId s : graph.seeds()) out << "seed " << s << '\n';
  if (!out.good()) return Status::IoError("text log write failed");
  return Status::OK();
}

Status WriteTextLogFile(const WebGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  return WriteTextLog(graph, out);
}

StatusOr<WebGraph> ParseTextLog(std::istream& in) {
  std::string line;
  size_t line_no = 0;

  // Header.
  while (std::getline(in, line)) {
    ++line_no;
    const std::string_view stripped = StripAsciiWhitespace(line);
    if (stripped.empty() || stripped.front() == '#') continue;
    if (stripped != kHeader) {
      return LineError(line_no, "expected header '!lswc-text-log 1'");
    }
    break;
  }
  if (line_no == 0) return Status::Corruption("empty text log");

  WebGraphBuilder builder;
  bool saw_target = false;
  int declared_hosts = 0;
  PageId num_pages = 0;
  PageId last_link_source = 0;
  bool in_links = false;

  while (std::getline(in, line)) {
    ++line_no;
    const auto tokens = Tokens(line);
    if (tokens.empty()) continue;
    const std::string_view verb = tokens[0];

    if (verb == "target") {
      if (tokens.size() != 2) return LineError(line_no, "target <language>");
      Language lang;
      if (!ParseLanguageToken(tokens[1], &lang) ||
          lang == Language::kOther) {
        return LineError(line_no, "target must be Japanese or Thai");
      }
      builder.SetTargetLanguage(lang);
      saw_target = true;
    } else if (verb == "generator-seed") {
      if (tokens.size() != 2) return LineError(line_no, "generator-seed <n>");
      const auto seed = ParseUint64(tokens[1]);
      if (!seed.has_value()) return LineError(line_no, "bad seed");
      builder.SetGeneratorSeed(*seed);
    } else if (verb == "host") {
      if (in_links) return LineError(line_no, "host after links section");
      if (tokens.size() != 3) return LineError(line_no, "host <id> <lang>");
      const auto id = ParseUint64(tokens[1]);
      Language lang;
      if (!id.has_value() || !ParseLanguageToken(tokens[2], &lang)) {
        return LineError(line_no, "bad host id or language");
      }
      if (*id != static_cast<uint64_t>(declared_hosts)) {
        return LineError(line_no, "host ids must be declared in order");
      }
      builder.AddHost(lang);
      ++declared_hosts;
    } else if (verb == "page") {
      if (in_links) return LineError(line_no, "page after links section");
      if (declared_hosts == 0) {
        return LineError(line_no, "page before any host");
      }
      if (tokens.size() != 6) {
        return LineError(line_no,
                         "page <status> <lang> <true-enc> <meta-enc> <chars>");
      }
      PageRecord rec;
      const auto status = ParseUint64(tokens[1]);
      const auto chars = ParseUint64(tokens[5]);
      Language lang;
      if (!status.has_value() || *status < 100 || *status > 999 ||
          !ParseLanguageToken(tokens[2], &lang) ||
          !chars.has_value() || *chars > UINT16_MAX) {
        return LineError(line_no, "bad page fields");
      }
      if (!ParseEncodingToken(tokens[3], &rec.true_encoding)) {
        return LineError(line_no, "unknown true encoding");
      }
      if (!ParseEncodingToken(tokens[4], &rec.meta_charset)) {
        return LineError(line_no, "unknown meta encoding");
      }
      rec.http_status = static_cast<uint16_t>(*status);
      rec.language = lang;
      rec.content_chars = static_cast<uint16_t>(*chars);
      builder.AddPage(static_cast<uint32_t>(declared_hosts - 1), rec);
      ++num_pages;
    } else if (verb == "links") {
      if (tokens.size() < 2) return LineError(line_no, "links <src> <t>...");
      const auto src = ParseUint64(tokens[1]);
      if (!src.has_value() || *src >= num_pages) {
        return LineError(line_no, "link source out of range");
      }
      if (in_links && *src < last_link_source) {
        return LineError(line_no, "link sources must be ascending");
      }
      in_links = true;
      last_link_source = static_cast<PageId>(*src);
      for (size_t i = 2; i < tokens.size(); ++i) {
        const auto dst = ParseUint64(tokens[i]);
        if (!dst.has_value() || *dst >= num_pages) {
          return LineError(line_no, "link target out of range");
        }
        builder.AddLink(static_cast<PageId>(*src),
                        static_cast<PageId>(*dst));
      }
    } else if (verb == "seed") {
      if (tokens.size() != 2) return LineError(line_no, "seed <page>");
      const auto seed = ParseUint64(tokens[1]);
      if (!seed.has_value() || *seed >= num_pages) {
        return LineError(line_no, "seed out of range");
      }
      builder.AddSeed(static_cast<PageId>(*seed));
    } else {
      return LineError(line_no,
                       "unknown directive '" + std::string(verb) + "'");
    }
  }
  if (!saw_target) return Status::Corruption("missing 'target' directive");
  auto graph = builder.Finish();
  if (!graph.ok()) return graph.status();
  return graph;
}

StatusOr<WebGraph> ReadTextLogFile(const std::string& path) {
  std::ifstream in(path);
  if (!in.is_open()) return Status::IoError("cannot open " + path);
  return ParseTextLog(in);
}

}  // namespace lswc
