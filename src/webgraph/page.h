#ifndef LSWC_WEBGRAPH_PAGE_H_
#define LSWC_WEBGRAPH_PAGE_H_

#include <cstdint>

#include "charset/encoding.h"

namespace lswc {

/// Dense page identifier; doubles as the UrlId of the page's canonical URL
/// inside a WebGraph.
using PageId = uint32_t;

/// Everything the virtual web space knows about one crawled URL — the
/// per-URL payload of a crawl log entry. 16 bytes; a 100M-page log fits
/// in memory the way the paper's 110M-URL Japanese dataset had to.
struct PageRecord {
  /// HTTP response status (200, 302, 404, 500...). Only status-200 HTML
  /// pages carry content and links ("pages with OK status" in Table 3).
  uint16_t http_status = 200;

  /// Ground-truth language of the page body.
  Language language = Language::kOther;

  /// Encoding the page bytes are actually written in.
  Encoding true_encoding = Encoding::kAscii;

  /// Charset declared in the HTML META tag: may be kUnknown (author
  /// declared nothing) or differ from true_encoding (mislabeled page —
  /// the paper explicitly observes such pages in the Thai dataset).
  Encoding meta_charset = Encoding::kUnknown;

  /// Which host the page lives on (index into the graph's host table).
  uint32_t host = 0;

  /// Approximate body length in characters; content rendering target.
  uint16_t content_chars = 0;

  bool ok() const { return http_status == 200; }
};

static_assert(sizeof(PageRecord) <= 20, "PageRecord must stay compact");

/// Host metadata: synthetic hosts have a language and derive their name
/// from the id ("www123.example.th").
struct HostRecord {
  Language language = Language::kOther;
  /// First page of the host in the graph's host->pages index.
  uint32_t first_page = 0;
  uint32_t num_pages = 0;
};

}  // namespace lswc

#endif  // LSWC_WEBGRAPH_PAGE_H_
