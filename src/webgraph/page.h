#ifndef LSWC_WEBGRAPH_PAGE_H_
#define LSWC_WEBGRAPH_PAGE_H_

#include <cstddef>
#include <cstdint>

#include "charset/encoding.h"

namespace lswc {

/// Dense page identifier; doubles as the UrlId of the page's canonical URL
/// inside a WebGraph.
using PageId = uint32_t;

/// Everything the virtual web space knows about one crawled URL — the
/// per-URL payload of a crawl log entry. 12 bytes with no padding, so a
/// 100M-page log fits in memory the way the paper's 110M-URL Japanese
/// dataset had to — and the dataset store can mmap page records straight
/// from disk (every byte of the object representation is a named field,
/// making file bytes deterministic and the layout a stable contract).
struct PageRecord {
  /// HTTP response status (200, 302, 404, 500...). Only status-200 HTML
  /// pages carry content and links ("pages with OK status" in Table 3).
  uint16_t http_status = 200;

  /// Ground-truth language of the page body.
  Language language = Language::kOther;

  /// Encoding the page bytes are actually written in.
  Encoding true_encoding = Encoding::kAscii;

  /// Charset declared in the HTML META tag: may be kUnknown (author
  /// declared nothing) or differ from true_encoding (mislabeled page —
  /// the paper explicitly observes such pages in the Thai dataset).
  Encoding meta_charset = Encoding::kUnknown;

  /// Reserved; keeps the struct padding-free. Always 0.
  uint8_t reserved = 0;

  /// Approximate body length in characters; content rendering target.
  uint16_t content_chars = 0;

  /// Which host the page lives on (index into the graph's host table).
  uint32_t host = 0;

  bool ok() const { return http_status == 200; }
};

static_assert(sizeof(PageRecord) == 12, "PageRecord layout is a file format");
static_assert(offsetof(PageRecord, http_status) == 0 &&
                  offsetof(PageRecord, language) == 2 &&
                  offsetof(PageRecord, true_encoding) == 3 &&
                  offsetof(PageRecord, meta_charset) == 4 &&
                  offsetof(PageRecord, reserved) == 5 &&
                  offsetof(PageRecord, content_chars) == 6 &&
                  offsetof(PageRecord, host) == 8,
              "PageRecord layout is a file format");

/// Host metadata: synthetic hosts have a language and derive their name
/// from the id ("www123.example.th"). Padding-free for the same reason
/// as PageRecord: host tables are stored and mmapped verbatim.
struct HostRecord {
  Language language = Language::kOther;
  /// Reserved; keeps the struct padding-free. Always 0.
  uint8_t reserved[3] = {0, 0, 0};
  /// First page of the host in the graph's host->pages index.
  uint32_t first_page = 0;
  uint32_t num_pages = 0;
};

static_assert(sizeof(HostRecord) == 12, "HostRecord layout is a file format");
static_assert(offsetof(HostRecord, language) == 0 &&
                  offsetof(HostRecord, first_page) == 4 &&
                  offsetof(HostRecord, num_pages) == 8,
              "HostRecord layout is a file format");

}  // namespace lswc

#endif  // LSWC_WEBGRAPH_PAGE_H_
