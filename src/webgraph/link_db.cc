#include "webgraph/link_db.h"

#include <cstring>

namespace lswc {

namespace {
constexpr char kLinkMagic[8] = {'L', 'S', 'W', 'C', 'L', 'N', 'K', '1'};
}  // namespace

Status InMemoryLinkDb::GetOutlinks(PageId id, std::vector<PageId>* out) {
  out->clear();
  if (id >= graph_->num_pages()) return Status::NotFound("page id range");
  const auto links = graph_->outlinks(id);
  out->assign(links.begin(), links.end());
  return Status::OK();
}

Status WriteLinkFile(const WebGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  out.write(kLinkMagic, sizeof(kLinkMagic));
  const uint32_t num_pages = static_cast<uint32_t>(graph.num_pages());
  const uint64_t num_links = graph.num_links();
  out.write(reinterpret_cast<const char*>(&num_pages), sizeof(num_pages));
  out.write(reinterpret_cast<const char*>(&num_links), sizeof(num_links));
  uint64_t offset = 0;
  out.write(reinterpret_cast<const char*>(&offset), sizeof(offset));
  for (PageId id = 0; id < num_pages; ++id) {
    offset += graph.outlinks(id).size();
    out.write(reinterpret_cast<const char*>(&offset), sizeof(offset));
  }
  for (PageId id = 0; id < num_pages; ++id) {
    const auto links = graph.outlinks(id);
    out.write(reinterpret_cast<const char*>(links.data()),
              static_cast<std::streamsize>(links.size() * sizeof(PageId)));
  }
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<std::unique_ptr<DiskLinkDb>> DiskLinkDb::Open(const std::string& path,
                                                       Options options) {
  if (options.block_words == 0 || options.max_cached_blocks == 0) {
    return Status::InvalidArgument("block_words/max_cached_blocks must be >0");
  }
  auto db = std::unique_ptr<DiskLinkDb>(new DiskLinkDb());
  db->options_ = options;
  db->file_.open(path, std::ios::binary);
  if (!db->file_.is_open()) return Status::IoError("cannot open " + path);

  char magic[8];
  db->file_.read(magic, sizeof(magic));
  if (!db->file_.good() || std::memcmp(magic, kLinkMagic, 8) != 0) {
    return Status::Corruption("bad link file magic");
  }
  uint32_t num_pages;
  uint64_t num_links;
  db->file_.read(reinterpret_cast<char*>(&num_pages), sizeof(num_pages));
  db->file_.read(reinterpret_cast<char*>(&num_links), sizeof(num_links));
  if (!db->file_.good()) return Status::Corruption("truncated link header");
  db->num_pages_ = num_pages;
  db->num_links_ = num_links;
  db->offsets_.resize(static_cast<size_t>(num_pages) + 1);
  db->file_.read(reinterpret_cast<char*>(db->offsets_.data()),
                 static_cast<std::streamsize>(db->offsets_.size() *
                                              sizeof(uint64_t)));
  if (!db->file_.good()) return Status::Corruption("truncated offsets");
  if (db->offsets_.front() != 0 || db->offsets_.back() != num_links) {
    return Status::Corruption("offset endpoints wrong");
  }
  for (size_t i = 1; i < db->offsets_.size(); ++i) {
    if (db->offsets_[i] < db->offsets_[i - 1]) {
      return Status::Corruption("offsets not monotonic");
    }
  }
  db->targets_base_ = static_cast<uint64_t>(db->file_.tellg());
  return db;
}

StatusOr<const std::vector<PageId>*> DiskLinkDb::GetBlock(uint64_t index) {
  auto it = cache_.find(index);
  if (it != cache_.end()) {
    ++cache_hits_;
    lru_.splice(lru_.begin(), lru_, it->second);  // Move to front.
    return &it->second->words;
  }
  ++cache_misses_;
  const uint64_t first_word = index * options_.block_words;
  if (first_word >= num_links_) return Status::OutOfRange("block index");
  const uint64_t n_words =
      std::min<uint64_t>(options_.block_words, num_links_ - first_word);
  CacheEntry entry;
  entry.index = index;
  entry.words.resize(n_words);
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(targets_base_ +
                                          first_word * sizeof(PageId)));
  file_.read(reinterpret_cast<char*>(entry.words.data()),
             static_cast<std::streamsize>(n_words * sizeof(PageId)));
  if (!file_.good() && !file_.eof()) {
    return Status::IoError("read failed");
  }
  if (static_cast<uint64_t>(file_.gcount()) != n_words * sizeof(PageId)) {
    return Status::Corruption("short read in targets section");
  }
  lru_.push_front(std::move(entry));
  cache_[index] = lru_.begin();
  if (cache_.size() > options_.max_cached_blocks) {
    cache_.erase(lru_.back().index);
    lru_.pop_back();
  }
  return &lru_.front().words;
}

Status DiskLinkDb::GetOutlinks(PageId id, std::vector<PageId>* out) {
  out->clear();
  if (id >= num_pages_) return Status::NotFound("page id range");
  uint64_t begin = offsets_[id];
  const uint64_t end = offsets_[id + 1];
  while (begin < end) {
    const uint64_t block = begin / options_.block_words;
    auto block_or = GetBlock(block);
    if (!block_or.ok()) return block_or.status();
    const std::vector<PageId>& words = **block_or;
    const uint64_t block_first = block * options_.block_words;
    const uint64_t from = begin - block_first;
    const uint64_t to = std::min<uint64_t>(end - block_first, words.size());
    out->insert(out->end(), words.begin() + static_cast<ptrdiff_t>(from),
                words.begin() + static_cast<ptrdiff_t>(to));
    begin = block_first + to;
  }
  return Status::OK();
}

}  // namespace lswc
