#include "webgraph/link_db.h"

#include <cstring>

#include "obs/metrics_registry.h"
// Include-only upward reference: the LSWCDS1 container layout lives with
// the dataset store; DiskLinkDb learns just enough of it to locate the
// CSR sections inside a dataset file and serve them through its block
// cache. No link-time dependency on lswc_store.
#include "store/format.h"
#include "util/crc32.h"

namespace lswc {

namespace {
constexpr char kLinkMagic[8] = {'L', 'S', 'W', 'C', 'L', 'N', 'K', '1'};
}  // namespace

Status InMemoryLinkDb::GetOutlinks(PageId id, std::vector<PageId>* out) {
  out->clear();
  if (id >= graph_->num_pages()) return Status::NotFound("page id range");
  const auto links = graph_->outlinks(id);
  out->assign(links.begin(), links.end());
  return Status::OK();
}

Status WriteLinkFile(const WebGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot open " + path);
  out.write(kLinkMagic, sizeof(kLinkMagic));
  const uint32_t num_pages = static_cast<uint32_t>(graph.num_pages());
  const uint64_t num_links = graph.num_links();
  out.write(reinterpret_cast<const char*>(&num_pages), sizeof(num_pages));
  out.write(reinterpret_cast<const char*>(&num_links), sizeof(num_links));
  uint64_t offset = 0;
  out.write(reinterpret_cast<const char*>(&offset), sizeof(offset));
  for (PageId id = 0; id < num_pages; ++id) {
    offset += graph.outlinks(id).size();
    out.write(reinterpret_cast<const char*>(&offset), sizeof(offset));
  }
  for (PageId id = 0; id < num_pages; ++id) {
    const auto links = graph.outlinks(id);
    out.write(reinterpret_cast<const char*>(links.data()),
              static_cast<std::streamsize>(links.size() * sizeof(PageId)));
  }
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::OK();
}

StatusOr<std::unique_ptr<DiskLinkDb>> DiskLinkDb::Open(const std::string& path,
                                                       Options options) {
  if (options.block_words == 0 || options.max_cached_blocks == 0) {
    return Status::InvalidArgument("block_words/max_cached_blocks must be >0");
  }
  auto db = std::unique_ptr<DiskLinkDb>(new DiskLinkDb());
  db->options_ = options;
  db->file_.open(path, std::ios::binary);
  if (!db->file_.is_open()) return Status::IoError("cannot open " + path);

  char magic[8];
  db->file_.read(magic, sizeof(magic));
  if (!db->file_.good()) return Status::Corruption("bad link file magic");
  if (std::memcmp(magic, kLinkMagic, 8) == 0) {
    LSWC_RETURN_IF_ERROR(db->OpenLinkFileHeader());
  } else if (std::memcmp(magic, store::kDatasetMagic, 8) == 0) {
    LSWC_RETURN_IF_ERROR(db->OpenDatasetHeader(path));
  } else {
    return Status::Corruption("bad link file magic");
  }
  if (db->offsets_.front() != 0 || db->offsets_.back() != db->num_links_) {
    return Status::Corruption("offset endpoints wrong");
  }
  for (size_t i = 1; i < db->offsets_.size(); ++i) {
    if (db->offsets_[i] < db->offsets_[i - 1]) {
      return Status::Corruption("offsets not monotonic");
    }
  }
  return db;
}

Status DiskLinkDb::OpenLinkFileHeader() {
  uint32_t num_pages;
  uint64_t num_links;
  file_.read(reinterpret_cast<char*>(&num_pages), sizeof(num_pages));
  file_.read(reinterpret_cast<char*>(&num_links), sizeof(num_links));
  if (!file_.good()) return Status::Corruption("truncated link header");
  num_pages_ = num_pages;
  num_links_ = num_links;
  offsets_.resize(static_cast<size_t>(num_pages) + 1);
  file_.read(reinterpret_cast<char*>(offsets_.data()),
             static_cast<std::streamsize>(offsets_.size() *
                                          sizeof(uint64_t)));
  if (!file_.good()) return Status::Corruption("truncated offsets");
  targets_base_ = static_cast<uint64_t>(file_.tellg());
  return Status::OK();
}

Status DiskLinkDb::OpenDatasetHeader(const std::string& path) {
  // Dataset files put a section directory at the tail; find the CSR
  // offsets/targets sections and the meta counts, widening the stored
  // u32 offsets to the resident u64 array the block reader indexes by.
  file_.seekg(0, std::ios::end);
  const uint64_t file_size = static_cast<uint64_t>(file_.tellg());
  if (file_size < sizeof(store::Trailer) + 16) {
    return Status::Corruption("dataset file too small: " + path);
  }
  store::Trailer trailer;
  file_.seekg(static_cast<std::streamoff>(file_size - sizeof(trailer)));
  file_.read(reinterpret_cast<char*>(&trailer), sizeof(trailer));
  if (!file_.good() ||
      std::memcmp(trailer.magic, store::kDatasetMagic, 8) != 0 ||
      trailer.file_size != file_size) {
    return Status::Corruption("bad dataset trailer: " + path);
  }
  const uint64_t dir_bytes =
      static_cast<uint64_t>(trailer.section_count) *
      sizeof(store::SectionEntry);
  if (trailer.directory_offset > file_size - sizeof(trailer) ||
      dir_bytes != file_size - sizeof(trailer) - trailer.directory_offset) {
    return Status::Corruption("bad dataset directory: " + path);
  }
  std::vector<store::SectionEntry> directory(trailer.section_count);
  file_.seekg(static_cast<std::streamoff>(trailer.directory_offset));
  file_.read(reinterpret_cast<char*>(directory.data()),
             static_cast<std::streamsize>(dir_bytes));
  if (!file_.good() ||
      Crc32(directory.data(), dir_bytes) != trailer.directory_crc32) {
    return Status::Corruption("dataset directory checksum mismatch");
  }
  const store::SectionEntry* meta_entry = nullptr;
  const store::SectionEntry* offsets_entry = nullptr;
  const store::SectionEntry* targets_entry = nullptr;
  for (const store::SectionEntry& e : directory) {
    if (e.id == store::kMetaSection) meta_entry = &e;
    if (e.id == store::kOffsetsSection) offsets_entry = &e;
    if (e.id == store::kTargetsSection) targets_entry = &e;
  }
  if (meta_entry == nullptr || offsets_entry == nullptr ||
      targets_entry == nullptr ||
      meta_entry->size != sizeof(store::DatasetMeta)) {
    return Status::Corruption("dataset missing CSR sections");
  }
  store::DatasetMeta meta;
  file_.seekg(static_cast<std::streamoff>(meta_entry->offset));
  file_.read(reinterpret_cast<char*>(&meta), sizeof(meta));
  if (!file_.good()) return Status::Corruption("truncated dataset meta");
  if (offsets_entry->size != (meta.num_pages + 1) * sizeof(uint32_t) ||
      targets_entry->size != meta.num_links * sizeof(PageId)) {
    return Status::Corruption("dataset CSR sections disagree with meta");
  }
  num_pages_ = static_cast<size_t>(meta.num_pages);
  num_links_ = meta.num_links;
  std::vector<uint32_t> narrow(num_pages_ + 1);
  file_.seekg(static_cast<std::streamoff>(offsets_entry->offset));
  file_.read(reinterpret_cast<char*>(narrow.data()),
             static_cast<std::streamsize>(narrow.size() * sizeof(uint32_t)));
  if (!file_.good()) return Status::Corruption("truncated dataset offsets");
  offsets_.assign(narrow.begin(), narrow.end());
  targets_base_ = targets_entry->offset;
  return Status::OK();
}

void DiskLinkDb::AttachObs(obs::MetricsRegistry* registry) {
  if (registry == nullptr) return;
  obs_hits_ = registry->counter("linkdb.cache_hits");
  obs_misses_ = registry->counter("linkdb.cache_misses");
  obs_evictions_ = registry->counter("linkdb.cache_evictions");
}

StatusOr<const std::vector<PageId>*> DiskLinkDb::GetBlock(uint64_t index) {
  auto it = cache_.find(index);
  if (it != cache_.end()) {
    ++cache_hits_;
    if (obs_hits_ != nullptr) obs_hits_->Increment();
    lru_.splice(lru_.begin(), lru_, it->second);  // Move to front.
    return &it->second->words;
  }
  ++cache_misses_;
  if (obs_misses_ != nullptr) obs_misses_->Increment();
  const uint64_t first_word = index * options_.block_words;
  if (first_word >= num_links_) return Status::OutOfRange("block index");
  const uint64_t n_words =
      std::min<uint64_t>(options_.block_words, num_links_ - first_word);
  CacheEntry entry;
  entry.index = index;
  entry.words.resize(n_words);
  file_.clear();
  file_.seekg(static_cast<std::streamoff>(targets_base_ +
                                          first_word * sizeof(PageId)));
  file_.read(reinterpret_cast<char*>(entry.words.data()),
             static_cast<std::streamsize>(n_words * sizeof(PageId)));
  if (!file_.good() && !file_.eof()) {
    return Status::IoError("read failed");
  }
  if (static_cast<uint64_t>(file_.gcount()) != n_words * sizeof(PageId)) {
    return Status::Corruption("short read in targets section");
  }
  lru_.push_front(std::move(entry));
  cache_[index] = lru_.begin();
  if (cache_.size() > options_.max_cached_blocks) {
    cache_.erase(lru_.back().index);
    lru_.pop_back();
    ++cache_evictions_;
    if (obs_evictions_ != nullptr) obs_evictions_->Increment();
  }
  return &lru_.front().words;
}

Status DiskLinkDb::GetOutlinks(PageId id, std::vector<PageId>* out) {
  out->clear();
  if (id >= num_pages_) return Status::NotFound("page id range");
  uint64_t begin = offsets_[id];
  const uint64_t end = offsets_[id + 1];
  while (begin < end) {
    const uint64_t block = begin / options_.block_words;
    auto block_or = GetBlock(block);
    if (!block_or.ok()) return block_or.status();
    const std::vector<PageId>& words = **block_or;
    const uint64_t block_first = block * options_.block_words;
    const uint64_t from = begin - block_first;
    const uint64_t to = std::min<uint64_t>(end - block_first, words.size());
    out->insert(out->end(), words.begin() + static_cast<ptrdiff_t>(from),
                words.begin() + static_cast<ptrdiff_t>(to));
    begin = block_first + to;
  }
  return Status::OK();
}

}  // namespace lswc
