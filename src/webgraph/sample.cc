#include "webgraph/sample.h"

#include "url/url_table.h"

#include <algorithm>
#include <deque>
#include <unordered_map>
#include <vector>

namespace lswc {

StatusOr<WebGraph> SampleBfsSubgraph(const WebGraph& graph,
                                     const SampleOptions& options) {
  if (options.max_pages == 0) {
    return Status::InvalidArgument("max_pages must be > 0");
  }
  if (graph.seeds().empty()) {
    return Status::FailedPrecondition("graph has no seeds to sample from");
  }

  // Phase 1: BFS to select the page set, in discovery order.
  std::vector<bool> selected(graph.num_pages(), false);
  std::vector<PageId> order;
  order.reserve(options.max_pages);
  std::deque<PageId> queue;
  for (PageId seed : graph.seeds()) {
    if (selected[seed]) continue;
    selected[seed] = true;
    queue.push_back(seed);
  }
  while (!queue.empty() && order.size() < options.max_pages) {
    const PageId p = queue.front();
    queue.pop_front();
    order.push_back(p);
    if (!graph.page(p).ok()) continue;
    for (PageId c : graph.outlinks(p)) {
      if (selected[c]) continue;
      selected[c] = true;
      queue.push_back(c);
    }
  }
  // Pages left in the queue were discovered but not visited: drop them
  // (a truncated crawl never resolved them).
  for (PageId p : queue) selected[p] = false;

  // Phase 2: group the sample per original host (contiguity invariant)
  // and renumber.
  std::sort(order.begin(), order.end(), [&](PageId a, PageId b) {
    if (graph.page(a).host != graph.page(b).host) {
      return graph.page(a).host < graph.page(b).host;
    }
    return a < b;
  });
  std::vector<PageId> new_id(graph.num_pages(), kInvalidUrlId);
  WebGraphBuilder builder;
  builder.SetTargetLanguage(graph.target_language());
  builder.SetGeneratorSeed(graph.generator_seed());
  uint32_t current_host = UINT32_MAX;
  uint32_t new_host = UINT32_MAX;
  for (PageId p : order) {
    const PageRecord& rec = graph.page(p);
    if (rec.host != current_host) {
      current_host = rec.host;
      new_host = builder.AddHost(graph.host(rec.host).language);
    }
    new_id[p] = builder.AddPage(new_host, rec);
  }

  // Phase 3: links among selected pages, in new-id source order.
  std::vector<PageId> by_new_id(order);
  std::sort(by_new_id.begin(), by_new_id.end(),
            [&](PageId a, PageId b) { return new_id[a] < new_id[b]; });
  for (PageId p : by_new_id) {
    if (!graph.page(p).ok()) continue;
    for (PageId c : graph.outlinks(p)) {
      if (new_id[c] != kInvalidUrlId) {
        builder.AddLink(new_id[p], new_id[c]);
      }
    }
  }
  for (PageId seed : graph.seeds()) {
    if (new_id[seed] != kInvalidUrlId) builder.AddSeed(new_id[seed]);
  }
  return builder.Finish();
}

}  // namespace lswc
