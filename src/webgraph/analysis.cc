#include "webgraph/analysis.h"

#include <algorithm>

namespace lswc {

LocalityStats ComputeLocality(const WebGraph& graph) {
  LocalityStats stats;
  for (PageId p = 0; p < graph.num_pages(); ++p) {
    if (!graph.page(p).ok()) continue;
    const bool parent_rel = graph.IsRelevant(p);
    for (PageId c : graph.outlinks(p)) {
      const bool child_rel =
          graph.page(c).language == graph.target_language();
      if (parent_rel) {
        (child_rel ? stats.rel_to_rel : stats.rel_to_irr) += 1;
      } else {
        (child_rel ? stats.irr_to_rel : stats.irr_to_irr) += 1;
      }
    }
  }
  return stats;
}

InlinkStats ComputeInlinkStats(const WebGraph& graph) {
  const size_t n = graph.num_pages();
  InlinkStats stats;
  stats.in_degree_histogram.assign(17, 0);  // 0..15, 16 = "16+".
  std::vector<uint32_t> in_degree(n, 0);
  std::vector<bool> has_relevant_ref(n, false);
  for (PageId p = 0; p < n; ++p) {
    if (!graph.page(p).ok()) continue;
    const bool rel = graph.IsRelevant(p);
    for (PageId c : graph.outlinks(p)) {
      ++in_degree[c];
      if (rel) has_relevant_ref[c] = true;
    }
  }
  for (PageId p = 0; p < n; ++p) {
    const size_t bucket =
        std::min<size_t>(in_degree[p], stats.in_degree_histogram.size() - 1);
    ++stats.in_degree_histogram[bucket];
    if (!graph.IsRelevant(p)) continue;
    ++stats.relevant_pages;
    if (in_degree[p] == 0) {
      ++stats.no_referrers;
    } else if (has_relevant_ref[p]) {
      ++stats.with_relevant_referrer;
    } else {
      ++stats.only_irrelevant_referrers;
    }
  }
  return stats;
}

DeclarationStats ComputeDeclarationStats(const WebGraph& graph) {
  DeclarationStats stats;
  const Language target = graph.target_language();
  for (PageId p = 0; p < graph.num_pages(); ++p) {
    const PageRecord& rec = graph.page(p);
    if (!rec.ok() || rec.language != target) continue;
    ++stats.relevant_pages;
    if (LanguageOfEncoding(rec.true_encoding) != target) {
      ++stats.language_neutral_encoding;
    }
    if (rec.meta_charset == Encoding::kUnknown) {
      ++stats.undeclared;
    } else if (LanguageOfEncoding(rec.meta_charset) == target) {
      ++stats.correctly_declared;
    } else {
      ++stats.mislabeled;
    }
  }
  return stats;
}

DegreeStats ComputeDegreeStats(const WebGraph& graph) {
  DegreeStats stats;
  const size_t n = graph.num_pages();
  std::vector<uint32_t> in_degree(n, 0);
  uint64_t ok_pages = 0;
  uint64_t out_links = 0;
  for (PageId p = 0; p < n; ++p) {
    if (!graph.page(p).ok()) continue;
    ++ok_pages;
    const auto links = graph.outlinks(p);
    out_links += links.size();
    stats.max_out_degree =
        std::max(stats.max_out_degree, static_cast<uint32_t>(links.size()));
    for (PageId c : links) ++in_degree[c];
  }
  uint64_t in_one = 0;
  uint64_t in_total = 0;
  for (uint32_t d : in_degree) {
    in_total += d;
    stats.max_in_degree = std::max(stats.max_in_degree, d);
    in_one += (d == 1) ? 1 : 0;
  }
  stats.mean_out_degree =
      ok_pages == 0 ? 0.0 : static_cast<double>(out_links) / ok_pages;
  stats.mean_in_degree =
      n == 0 ? 0.0 : static_cast<double>(in_total) / static_cast<double>(n);
  stats.in_degree_one_fraction =
      n == 0 ? 0.0 : static_cast<double>(in_one) / static_cast<double>(n);
  return stats;
}

}  // namespace lswc
