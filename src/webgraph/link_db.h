#ifndef LSWC_WEBGRAPH_LINK_DB_H_
#define LSWC_WEBGRAPH_LINK_DB_H_

#include <cstdint>
#include <fstream>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "webgraph/graph.h"

namespace lswc {

namespace obs {
class Counter;
class MetricsRegistry;
}  // namespace obs

/// The simulator's link database (the "LinkDB" box in the paper's Fig 2):
/// answers "outlinks of URL u" during trace replay.
///
/// Two implementations:
///  - InMemoryLinkDb serves straight from a WebGraph;
///  - DiskLinkDb serves from a link file with an LRU block cache, the
///    shape a real 100M-URL link database needs (the paper's Japanese
///    dataset has ~10^9 links; holding them resident is not a given).
class LinkDb {
 public:
  virtual ~LinkDb() = default;

  /// Appends the outlinks of `id` to `out` (cleared first). Returns
  /// NotFound for out-of-range ids.
  virtual Status GetOutlinks(PageId id, std::vector<PageId>* out) = 0;

  virtual size_t num_pages() const = 0;

  /// Exports implementation counters (block-cache hits/misses/evictions
  /// for DiskLinkDb, read counts for MmapLinkDb) into the run's metrics
  /// registry. Default: nothing to export.
  virtual void AttachObs(obs::MetricsRegistry* /*registry*/) {}
};

/// Zero-copy adapter over an in-memory WebGraph.
class InMemoryLinkDb final : public LinkDb {
 public:
  /// The graph must outlive the LinkDb.
  explicit InMemoryLinkDb(const WebGraph* graph) : graph_(graph) {}

  Status GetOutlinks(PageId id, std::vector<PageId>* out) override;
  size_t num_pages() const override { return graph_->num_pages(); }

 private:
  const WebGraph* graph_;
};

/// Writes the link-file representation of a graph:
///   magic "LSWCLNK1" | num_pages u32 | num_links u64 |
///   offsets u64 x (num_pages+1) | targets u32 x num_links
Status WriteLinkFile(const WebGraph& graph, const std::string& path);

/// Disk-backed LinkDb with an LRU cache of fixed-size target blocks.
/// Cache geometry of DiskLinkDb.
struct DiskLinkDbOptions {
  /// Target words (u32 link entries) per cache block.
  size_t block_words = 16384;  // 64 KiB blocks.
  size_t max_cached_blocks = 256;
};

class DiskLinkDb final : public LinkDb {
 public:
  using Options = DiskLinkDbOptions;

  /// Accepts either a WriteLinkFile link file ("LSWCLNK1") or a full
  /// LSWCDS1 dataset file, whose CSR sections it then serves through
  /// the same block cache.
  static StatusOr<std::unique_ptr<DiskLinkDb>> Open(const std::string& path,
                                                    Options options = {});

  Status GetOutlinks(PageId id, std::vector<PageId>* out) override;
  size_t num_pages() const override { return num_pages_; }

  /// Cache observability for tests and benches.
  uint64_t cache_hits() const { return cache_hits_; }
  uint64_t cache_misses() const { return cache_misses_; }
  uint64_t cache_evictions() const { return cache_evictions_; }
  size_t cached_blocks() const { return cache_.size(); }

  /// Exports linkdb.cache_hits / linkdb.cache_misses /
  /// linkdb.cache_evictions. Misses double as the page-in proxy of the
  /// out-of-core read path (`store.*` docs in ARCHITECTURE.md).
  void AttachObs(obs::MetricsRegistry* registry) override;

 private:
  DiskLinkDb() = default;

  Status OpenLinkFileHeader();
  Status OpenDatasetHeader(const std::string& path);

  /// Returns the cached block `index`, loading (and possibly evicting)
  /// as needed.
  StatusOr<const std::vector<PageId>*> GetBlock(uint64_t index);

  Options options_;
  std::ifstream file_;
  uint64_t targets_base_ = 0;  // File offset where targets begin.
  size_t num_pages_ = 0;
  uint64_t num_links_ = 0;
  std::vector<uint64_t> offsets_;  // Resident (8 bytes/page).

  // LRU: most-recent at front.
  struct CacheEntry {
    uint64_t index;
    std::vector<PageId> words;
  };
  std::list<CacheEntry> lru_;
  std::unordered_map<uint64_t, std::list<CacheEntry>::iterator> cache_;
  uint64_t cache_hits_ = 0;
  uint64_t cache_misses_ = 0;
  uint64_t cache_evictions_ = 0;
  obs::Counter* obs_hits_ = nullptr;
  obs::Counter* obs_misses_ = nullptr;
  obs::Counter* obs_evictions_ = nullptr;
};

}  // namespace lswc

#endif  // LSWC_WEBGRAPH_LINK_DB_H_
