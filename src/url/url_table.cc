#include "url/url_table.h"

#include <cassert>
#include <cstring>

namespace lswc {

uint64_t HashBytes(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

UrlTable::UrlTable() : buckets_(1024, 0) {}

std::string_view UrlTable::EntryView(const Entry& e) const {
  return std::string_view(pages_[e.page].data() + e.offset, e.length);
}

size_t UrlTable::FindBucket(std::string_view url, uint64_t hash) const {
  const size_t mask = buckets_.size() - 1;
  size_t b = static_cast<size_t>(hash) & mask;
  while (true) {
    const uint32_t slot = buckets_[b];
    if (slot == 0) return b;
    const Entry& e = entries_[slot - 1];
    if (e.hash == hash && EntryView(e) == url) return b;
    b = (b + 1) & mask;
  }
}

void UrlTable::Rehash(size_t new_buckets) {
  std::vector<uint32_t> old = std::move(buckets_);
  buckets_.assign(new_buckets, 0);
  const size_t mask = buckets_.size() - 1;
  for (uint32_t slot : old) {
    if (slot == 0) continue;
    size_t b = static_cast<size_t>(entries_[slot - 1].hash) & mask;
    while (buckets_[b] != 0) b = (b + 1) & mask;
    buckets_[b] = slot;
  }
}

UrlId UrlTable::Intern(std::string_view url) {
  const uint64_t hash = HashBytes(url);
  size_t b = FindBucket(url, hash);
  if (buckets_[b] != 0) return buckets_[b] - 1;

  // Grow at 70% load before inserting.
  if ((entries_.size() + 1) * 10 >= buckets_.size() * 7) {
    Rehash(buckets_.size() * 2);
    b = FindBucket(url, hash);
  }

  // Copy the bytes into the arena.
  assert(url.size() <= kPageSize);
  if (pages_.empty() || pages_.back().size() + url.size() > kPageSize) {
    pages_.emplace_back();
    pages_.back().reserve(kPageSize);
  }
  auto& page = pages_.back();
  const Entry e{static_cast<uint32_t>(pages_.size() - 1),
                static_cast<uint32_t>(page.size()),
                static_cast<uint32_t>(url.size()), hash};
  page.insert(page.end(), url.begin(), url.end());
  entries_.push_back(e);
  buckets_[b] = static_cast<uint32_t>(entries_.size());  // index + 1.
  return static_cast<UrlId>(entries_.size() - 1);
}

UrlId UrlTable::Find(std::string_view url) const {
  const uint64_t hash = HashBytes(url);
  const size_t b = FindBucket(url, hash);
  return buckets_[b] == 0 ? kInvalidUrlId : buckets_[b] - 1;
}

std::string_view UrlTable::Get(UrlId id) const {
  assert(id < entries_.size());
  return EntryView(entries_[id]);
}

size_t UrlTable::arena_bytes() const {
  size_t total = 0;
  for (const auto& p : pages_) total += p.capacity();
  return total;
}

}  // namespace lswc
