#ifndef LSWC_URL_URL_TABLE_H_
#define LSWC_URL_URL_TABLE_H_

#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

namespace lswc {

/// Dense identifier of an interned URL. Ids are assigned 0,1,2,... in
/// insertion order, which lets every per-URL table in the simulator be a
/// flat vector.
using UrlId = uint32_t;

inline constexpr UrlId kInvalidUrlId = std::numeric_limits<UrlId>::max();

/// Interns URL strings into dense UrlIds.
///
/// Storage: all URL bytes live in one append-only arena; the hash index is
/// open-addressing with linear probing over (hash, offset) slots, so a
/// table of tens of millions of URLs costs ~arena bytes + 16B/URL — the
/// same design constraint the paper hits with its 8M-URL frontier.
/// Not thread-safe; the simulator is single-threaded by design (the trace
/// replay must be deterministic).
class UrlTable {
 public:
  UrlTable();

  UrlTable(const UrlTable&) = delete;
  UrlTable& operator=(const UrlTable&) = delete;

  /// Returns the id of `url`, interning it if new.
  UrlId Intern(std::string_view url);

  /// Returns the id of `url` or kInvalidUrlId when absent.
  UrlId Find(std::string_view url) const;

  /// Returns the string for an id. The view is valid until the table is
  /// destroyed (arena storage is append-only and never reallocates pages).
  std::string_view Get(UrlId id) const;

  /// Number of interned URLs.
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// Total bytes held by the string arena (diagnostics).
  size_t arena_bytes() const;

 private:
  struct Entry {
    uint32_t page;    // Arena page index.
    uint32_t offset;  // Byte offset within the page.
    uint32_t length;
    uint64_t hash;
  };

  static constexpr size_t kPageSize = 1 << 20;

  std::string_view EntryView(const Entry& e) const;
  void Rehash(size_t new_buckets);
  // Returns bucket holding `url` or the empty bucket where it would go.
  size_t FindBucket(std::string_view url, uint64_t hash) const;

  std::vector<std::vector<char>> pages_;
  std::vector<Entry> entries_;
  /// Index: bucket -> entry index + 1 (0 = empty). Power-of-two sized.
  std::vector<uint32_t> buckets_;
};

/// 64-bit FNV-1a over bytes; shared by UrlTable and tests.
uint64_t HashBytes(std::string_view s);

}  // namespace lswc

#endif  // LSWC_URL_URL_TABLE_H_
