#ifndef LSWC_URL_URL_H_
#define LSWC_URL_URL_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"

namespace lswc {

/// A parsed absolute or relative URL reference (RFC 3986 components).
/// Components hold their decoded-as-written text (percent-escapes are kept
/// verbatim; Normalize() canonicalizes them).
struct ParsedUrl {
  std::string scheme;  // Lowercased by Parse; empty for relative refs.
  std::string host;    // Lowercased by Parse; empty if no authority.
  /// Port number, or -1 when absent. Normalization drops scheme defaults.
  int port = -1;
  std::string path;      // As written, possibly empty.
  std::string query;     // Without '?'; empty when absent.
  std::string fragment;  // Without '#'; empty when absent.
  bool has_authority = false;
  bool has_query = false;
  bool has_fragment = false;

  /// True if the reference has a scheme (and is therefore absolute).
  bool IsAbsolute() const { return !scheme.empty(); }

  /// Reassembles the textual URL from components.
  std::string ToString() const;

  bool operator==(const ParsedUrl& o) const = default;
};

/// Parses a URL reference. Fails on empty input, embedded whitespace or
/// control bytes, an invalid port, or a scheme with illegal characters.
/// Both absolute URLs and relative references parse successfully.
StatusOr<ParsedUrl> ParseUrl(std::string_view text);

/// RFC 3986 §5 relative reference resolution: resolves `reference`
/// against absolute `base`. `base` must be absolute.
StatusOr<ParsedUrl> ResolveUrl(const ParsedUrl& base,
                               std::string_view reference);

/// RFC 3986 §5.2.4 dot-segment removal ("a/./b/../c" -> "a/c").
std::string RemoveDotSegments(std::string_view path);

/// Canonicalizes a parsed URL in place:
///  - lowercases scheme and host (Parse already does),
///  - drops the default port (http:80, https:443, ftp:21),
///  - removes dot segments from the path,
///  - uppercases retained percent-escapes and decodes escapes of
///    unreserved characters,
///  - replaces an empty path with "/" when an authority is present,
///  - drops the fragment (crawlers treat fragment variants as one page).
void NormalizeUrl(ParsedUrl* url);

/// Parse + resolve-against-nothing + normalize; the one-call form used by
/// the crawler for seed and extracted URLs. Requires an absolute URL.
StatusOr<std::string> CanonicalizeUrl(std::string_view text);

/// Parse `reference` relative to `base_text` (an absolute URL), normalize,
/// and return the canonical string. This is the link-extraction path.
StatusOr<std::string> CanonicalizeRelative(std::string_view base_text,
                                           std::string_view reference);

}  // namespace lswc

#endif  // LSWC_URL_URL_H_
