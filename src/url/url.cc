#include "url/url.h"

#include <cassert>

#include "util/string_util.h"

namespace lswc {

namespace {

bool IsSchemeStart(char c) { return IsAsciiAlpha(c); }
bool IsSchemeChar(char c) {
  return IsAsciiAlnum(c) || c == '+' || c == '-' || c == '.';
}

// Default ports dropped by normalization.
int DefaultPort(std::string_view scheme) {
  if (scheme == "http") return 80;
  if (scheme == "https") return 443;
  if (scheme == "ftp") return 21;
  return -1;
}

// Unreserved characters (RFC 3986 §2.3) whose escapes are decodable.
bool IsUnreserved(char c) {
  return IsAsciiAlnum(c) || c == '-' || c == '.' || c == '_' || c == '~';
}

// Parses the authority component "userinfo@host:port".
Status ParseAuthority(std::string_view auth, ParsedUrl* url) {
  url->has_authority = true;
  const size_t at = auth.rfind('@');
  if (at != std::string_view::npos) auth = auth.substr(at + 1);  // Skip userinfo.
  // IPv6 literal: [..]:port
  std::string_view host;
  std::string_view port_text;
  if (!auth.empty() && auth.front() == '[') {
    const size_t close = auth.find(']');
    if (close == std::string_view::npos) {
      return Status::InvalidArgument("unterminated IPv6 literal");
    }
    host = auth.substr(0, close + 1);
    std::string_view rest = auth.substr(close + 1);
    if (!rest.empty()) {
      if (rest.front() != ':') {
        return Status::InvalidArgument("garbage after IPv6 literal");
      }
      port_text = rest.substr(1);
    }
  } else {
    const size_t colon = auth.rfind(':');
    if (colon != std::string_view::npos) {
      host = auth.substr(0, colon);
      port_text = auth.substr(colon + 1);
    } else {
      host = auth;
    }
    // A reg-name host must not contain ':' (that is the port separator)
    // or brackets (IPv6 syntax); accepting them would make ToString()
    // ambiguous to re-parse.
    for (char c : host) {
      if (c == ':' || c == '[' || c == ']') {
        return Status::InvalidArgument("invalid character in host");
      }
    }
  }
  url->host = AsciiStrToLower(host);
  if (!port_text.empty()) {
    const auto port = ParseUint64(port_text);
    if (!port.has_value() || *port > 65535) {
      return Status::InvalidArgument("invalid port");
    }
    url->port = static_cast<int>(*port);
  }
  return Status::OK();
}

}  // namespace

std::string ParsedUrl::ToString() const {
  std::string out;
  if (!scheme.empty()) {
    out += scheme;
    out += ':';
  }
  if (has_authority) {
    out += "//";
    out += host;
    if (port >= 0) {
      out += ':';
      out += std::to_string(port);
    }
  }
  out += path;
  if (has_query) {
    out += '?';
    out += query;
  }
  if (has_fragment) {
    out += '#';
    out += fragment;
  }
  return out;
}

StatusOr<ParsedUrl> ParseUrl(std::string_view text) {
  if (text.empty()) return Status::InvalidArgument("empty URL");
  for (char c : text) {
    if (static_cast<unsigned char>(c) < 0x21 || c == 0x7f) {
      return Status::InvalidArgument("URL contains whitespace/control byte");
    }
  }

  ParsedUrl url;
  std::string_view rest = text;

  // Scheme: ALPHA *( ALPHA / DIGIT / "+" / "-" / "." ) ":".
  size_t i = 0;
  if (IsSchemeStart(rest[0])) {
    while (i < rest.size() && IsSchemeChar(rest[i])) ++i;
    if (i < rest.size() && rest[i] == ':') {
      url.scheme = AsciiStrToLower(rest.substr(0, i));
      rest = rest.substr(i + 1);
    }
  }

  // Authority.
  if (StartsWith(rest, "//")) {
    rest = rest.substr(2);
    size_t end = rest.size();
    for (size_t j = 0; j < rest.size(); ++j) {
      if (rest[j] == '/' || rest[j] == '?' || rest[j] == '#') {
        end = j;
        break;
      }
    }
    LSWC_RETURN_IF_ERROR(ParseAuthority(rest.substr(0, end), &url));
    rest = rest.substr(end);
  }

  // Path, query, fragment.
  const size_t frag = rest.find('#');
  if (frag != std::string_view::npos) {
    url.has_fragment = true;
    url.fragment = std::string(rest.substr(frag + 1));
    rest = rest.substr(0, frag);
  }
  const size_t q = rest.find('?');
  if (q != std::string_view::npos) {
    url.has_query = true;
    url.query = std::string(rest.substr(q + 1));
    rest = rest.substr(0, q);
  }
  url.path = std::string(rest);
  return url;
}

std::string RemoveDotSegments(std::string_view path) {
  std::string out;
  std::string_view in = path;
  while (!in.empty()) {
    if (StartsWith(in, "../")) {
      in = in.substr(3);
    } else if (StartsWith(in, "./")) {
      in = in.substr(2);
    } else if (StartsWith(in, "/./")) {
      in = in.substr(2);  // "/./x" -> "/x".
    } else if (in == "/.") {
      in = "/";
    } else if (StartsWith(in, "/../") || in == "/..") {
      in = (in == "/..") ? std::string_view("/") : in.substr(3);
      const size_t slash = out.rfind('/');
      out.erase(slash == std::string::npos ? 0 : slash);
    } else if (in == "." || in == "..") {
      in = {};
    } else {
      // Move the first segment (through the next '/') to the output.
      size_t next = in.find('/', in.front() == '/' ? 1 : 0);
      if (next == std::string_view::npos) next = in.size();
      out.append(in.substr(0, next));
      in = in.substr(next);
    }
  }
  return out;
}

StatusOr<ParsedUrl> ResolveUrl(const ParsedUrl& base,
                               std::string_view reference) {
  if (!base.IsAbsolute()) {
    return Status::InvalidArgument("base URL must be absolute");
  }
  if (reference.empty()) {
    // RFC 3986 §5.2.2: an empty reference targets the base itself
    // (without a fragment of its own).
    ParsedUrl out = base;
    out.has_fragment = false;
    out.fragment.clear();
    return out;
  }
  auto ref_or = ParseUrl(reference);
  if (!ref_or.ok()) return ref_or.status();
  const ParsedUrl& ref = *ref_or;

  ParsedUrl out;
  if (ref.IsAbsolute()) {
    out = ref;
    out.path = RemoveDotSegments(out.path);
    return out;
  }
  out.scheme = base.scheme;
  if (ref.has_authority) {
    out.has_authority = true;
    out.host = ref.host;
    out.port = ref.port;
    out.path = RemoveDotSegments(ref.path);
    out.has_query = ref.has_query;
    out.query = ref.query;
  } else {
    out.has_authority = base.has_authority;
    out.host = base.host;
    out.port = base.port;
    if (ref.path.empty()) {
      out.path = base.path;
      out.has_query = ref.has_query ? true : base.has_query;
      out.query = ref.has_query ? ref.query : base.query;
    } else {
      if (ref.path.front() == '/') {
        out.path = RemoveDotSegments(ref.path);
      } else {
        // Merge (RFC 3986 §5.2.3).
        std::string merged;
        if (base.has_authority && base.path.empty()) {
          merged = "/";
          merged += ref.path;
        } else {
          const size_t slash = base.path.rfind('/');
          if (slash != std::string::npos) {
            merged = base.path.substr(0, slash + 1);
          }
          merged += ref.path;
        }
        out.path = RemoveDotSegments(merged);
      }
      out.has_query = ref.has_query;
      out.query = ref.query;
    }
  }
  out.has_fragment = ref.has_fragment;
  out.fragment = ref.fragment;
  return out;
}

namespace {

// Normalizes percent-escapes in one component: decodes escapes of
// unreserved characters, uppercases the hex digits of retained escapes,
// and leaves malformed escapes untouched.
std::string NormalizeEscapes(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '%' && i + 2 < s.size() && IsAsciiHexDigit(s[i + 1]) &&
        IsAsciiHexDigit(s[i + 2])) {
      const int v = HexDigitValue(s[i + 1]) * 16 + HexDigitValue(s[i + 2]);
      const char decoded = static_cast<char>(v);
      if (IsUnreserved(decoded)) {
        out += decoded;
      } else {
        out += '%';
        out += AsciiToUpper(s[i + 1]);
        out += AsciiToUpper(s[i + 2]);
      }
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

}  // namespace

void NormalizeUrl(ParsedUrl* url) {
  assert(url != nullptr);
  if (url->port >= 0 && url->port == DefaultPort(url->scheme)) {
    url->port = -1;
  }
  url->path = NormalizeEscapes(RemoveDotSegments(url->path));
  if (url->has_authority && url->path.empty()) url->path = "/";
  if (url->has_query) url->query = NormalizeEscapes(url->query);
  url->has_fragment = false;
  url->fragment.clear();
}

StatusOr<std::string> CanonicalizeUrl(std::string_view text) {
  auto url_or = ParseUrl(text);
  if (!url_or.ok()) return url_or.status();
  if (!url_or->IsAbsolute()) {
    return Status::InvalidArgument("URL is not absolute: " +
                                   std::string(text));
  }
  NormalizeUrl(&url_or.value());
  return url_or->ToString();
}

StatusOr<std::string> CanonicalizeRelative(std::string_view base_text,
                                           std::string_view reference) {
  auto base_or = ParseUrl(base_text);
  if (!base_or.ok()) return base_or.status();
  auto resolved_or = ResolveUrl(*base_or, reference);
  if (!resolved_or.ok()) return resolved_or.status();
  NormalizeUrl(&resolved_or.value());
  return resolved_or->ToString();
}

}  // namespace lswc
