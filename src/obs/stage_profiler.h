#ifndef LSWC_OBS_STAGE_PROFILER_H_
#define LSWC_OBS_STAGE_PROFILER_H_

// Where does a crawl spend its time? The StageProfiler accumulates
// wall-time and call counts per crawl stage; ScopedStage is the RAII
// probe the instrumentation points construct on the stack. Overhead
// contract (docs/ARCHITECTURE.md "Observability"):
//
//  - compiled with -DLSWC_OBS_DISABLED, ScopedStage is an empty type
//    and the probes vanish entirely;
//  - runtime-disabled (profiler null or set_enabled(false), e.g. via
//    the LSWC_OBS_DISABLED environment variable), a probe costs one
//    branch in its constructor and nothing in its destructor;
//  - enabled, every probe counts its call, but only a deterministic
//    1-in-64 sample of calls per stage (always including the first)
//    pays the two steady_clock reads — at millions of sub-microsecond
//    crawl steps per second, timing every call costs ~50% of
//    throughput, far beyond the < 5% budget. total_ns() extrapolates
//    the sampled time to all calls. With a TraceSink attached every
//    call is timed (the trace needs complete spans; tracing is opt-in
//    and exempt from the budget).
//
// Call counts are deterministic (they mirror the crawl's control flow,
// and so does the call-indexed sampling pattern); the nanosecond totals
// are wall time and are therefore excluded from the determinism
// contract — ToJson(/*include_times=*/false) emits the deterministic
// subset.

#include <cstdint>
#include <string>

namespace lswc::obs {

class TraceSink;

/// Nanoseconds on the process-wide monotonic timeline shared by
/// StageProfiler and TraceSink (zero = first use in the process).
uint64_t MonotonicNowNs();

/// The phases of one crawl step, in loop order.
enum class Stage : uint8_t {
  kFetch = 0,      // VirtualWebSpace::Fetch.
  kClassify,       // Classifier::Judge.
  kExtract,        // Link extraction (trace replay or HTML parse).
  kStrategy,       // Per-link OnLink + better-referrer bookkeeping.
  kFrontierPush,   // Scheduler/frontier pushes.
  kSample,         // Observer bus sampling points.
  kCheckpoint,     // Snapshot writes.
  kRoute,          // Sharded engine: route a link to its owning shard.
  kMerge,          // Sharded engine: cross-shard deterministic merge-pop.
  kRescore,        // Batch regime: rescore pending set + top-K selection.
};
inline constexpr int kNumStages = 10;

const char* StageName(Stage stage);

/// Per-run accumulator of wall-time and call counts by stage. Not
/// thread-safe: one profiler per run, merged after workers join (same
/// single-writer discipline as MetricsRegistry).
class StageProfiler {
 public:
  /// Calls whose index (per stage) has these bits clear are timed; the
  /// rest are only counted. 63 = time 1 call in 64, starting with the
  /// first.
  static constexpr uint64_t kSampleMask = 63;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  /// Mirrors every recorded span into `sink` (not owned; may be null).
  /// While attached, every call is timed, not just the sample.
  void AttachTrace(TraceSink* sink) { trace_ = sink; }
  TraceSink* trace() const { return trace_; }

  /// Whether the next call to `stage` falls in the timing sample.
  bool ShouldTime(Stage stage) const {
    return trace_ != nullptr ||
           (calls_[static_cast<int>(stage)] & kSampleMask) == 0;
  }

  /// Count one untimed call.
  void Count(Stage stage) { ++calls_[static_cast<int>(stage)]; }

  /// Count one timed call and accumulate its duration.
  void Record(Stage stage, uint64_t start_ns, uint64_t end_ns);

  uint64_t calls(Stage stage) const {
    return calls_[static_cast<int>(stage)];
  }
  /// Number of calls that were actually timed (== calls() when every
  /// call went through Record, e.g. under tracing).
  uint64_t timed_calls(Stage stage) const {
    return timed_calls_[static_cast<int>(stage)];
  }
  /// Wall time attributed to `stage`: the sampled time extrapolated to
  /// all calls (exact when every call was timed).
  uint64_t total_ns(Stage stage) const;

  /// Sums counts and times stage-wise (order-independent).
  void Merge(const StageProfiler& other);

  /// `{"fetch": {"calls": N, "total_ns": M}, ...}` in Stage order.
  /// With `include_times` false the (non-deterministic) total_ns fields
  /// are omitted — the deterministic subset asserted by tests.
  std::string ToJson(bool include_times = true) const;

  /// "fetch 62% classify 21% strategy 9%" — the `n` largest stages by
  /// accumulated time, for the periodic progress line. Empty when no
  /// time has been recorded yet.
  std::string TopStagesLine(int n = 3) const;

 private:
  bool enabled_ = true;
  TraceSink* trace_ = nullptr;
  uint64_t timed_ns_[kNumStages] = {};
  uint64_t timed_calls_[kNumStages] = {};
  uint64_t calls_[kNumStages] = {};
};

/// RAII probe around one stage execution. Construct with the profiler
/// (null = disabled) at the top of the instrumented scope.
#ifdef LSWC_OBS_DISABLED
class ScopedStage {
 public:
  ScopedStage(StageProfiler* /*profiler*/, Stage /*stage*/) {}
};
#else
class ScopedStage {
 public:
  ScopedStage(StageProfiler* profiler, Stage stage)
      : profiler_(profiler != nullptr && profiler->enabled() ? profiler
                                                             : nullptr),
        stage_(stage) {
    if (profiler_ != nullptr && profiler_->ShouldTime(stage)) {
      timed_ = true;
      start_ns_ = MonotonicNowNs();
    }
  }
  ~ScopedStage() {
    if (profiler_ == nullptr) return;
    if (timed_) {
      profiler_->Record(stage_, start_ns_, MonotonicNowNs());
    } else {
      profiler_->Count(stage_);
    }
  }

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  StageProfiler* profiler_;
  Stage stage_;
  bool timed_ = false;
  uint64_t start_ns_ = 0;
};
#endif  // LSWC_OBS_DISABLED

}  // namespace lswc::obs

#endif  // LSWC_OBS_STAGE_PROFILER_H_
