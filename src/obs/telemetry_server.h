#ifndef LSWC_OBS_TELEMETRY_SERVER_H_
#define LSWC_OBS_TELEMETRY_SERVER_H_

// The attachable status endpoint: a single in-process thread serving
// minimal HTTP over a Unix-domain or loopback TCP socket.
//
//   GET /metrics   Prometheus text exposition over every snapshot
//   GET /progress  the JSON progress document (also served at /)
//
// Endpoint syntax (shared with the --telemetry= flag and the client):
//   unix:/path/to/socket
//   tcp:PORT            (binds 127.0.0.1; PORT 0 picks an ephemeral
//   tcp:HOST:PORT        port, reported back via endpoint())
//
// The server thread only ever reads TelemetryBoard snapshots through
// the injected source callback — it shares no mutable state with the
// crawl loop, which is what keeps telemetry-on runs bit-identical to
// telemetry-off runs. Requests are handled serially; this is an
// operator endpoint, not a serving path.

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "obs/telemetry.h"
#include "util/status.h"

namespace lswc::obs {

class TelemetryServer {
 public:
  /// Collects the latest snapshot from every live board; called on the
  /// server thread per request. Must be thread-safe.
  using SnapshotSource = std::function<std::vector<SnapshotPtr>()>;

  /// Binds, listens, and starts the serving thread.
  static StatusOr<std::unique_ptr<TelemetryServer>> Start(
      const std::string& endpoint, SnapshotSource source);

  ~TelemetryServer();  // Stops the thread, closes and unlinks the socket.
  TelemetryServer(const TelemetryServer&) = delete;
  TelemetryServer& operator=(const TelemetryServer&) = delete;

  void Stop();

  /// The resolved endpoint: for tcp:0 this carries the actual bound
  /// port, so tests and child tools can connect.
  const std::string& endpoint() const { return endpoint_; }

 private:
  TelemetryServer() = default;
  void Serve();

  std::string endpoint_;
  std::string unix_path_;  // Non-empty when a socket file needs unlinking.
  int listen_fd_ = -1;
  SnapshotSource source_;
  std::thread thread_;
};

/// One-shot client for the same endpoint syntax: connects, issues
/// `GET <path>`, and returns the response body (headers stripped).
/// This is what lswc_top and the CLI tests use to attach.
StatusOr<std::string> TelemetryGet(const std::string& endpoint,
                                   const std::string& path);

}  // namespace lswc::obs

#endif  // LSWC_OBS_TELEMETRY_SERVER_H_
