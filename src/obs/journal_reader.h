#ifndef LSWC_OBS_JOURNAL_READER_H_
#define LSWC_OBS_JOURNAL_READER_H_

// Read side of the LSWCJRNL decision journal (see journal.h for the
// format). Open() loads the file and validates its *structure* (magic,
// version, record size, section bounds) so a truncated or misframed
// file is rejected immediately; Verify() additionally recomputes every
// CRC and checks the seq invariant (record i has seq == i), the
// integrity pass `lswc_journal verify` runs.
//
// JournalIndex builds the per-URL provenance index used by
// `lswc_journal why`: for each URL the record that explains how it
// entered the crawl, its fetch record, and its batch-selection score
// breakdown, plus the referrer-chain walk back to a seed.

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/journal.h"
#include "util/status.h"

namespace lswc::obs {

inline constexpr uint64_t kJournalNoRecord = ~uint64_t{0};

class JournalReader {
 public:
  /// Reads and structurally validates `path`. Corruption on truncation,
  /// bad magic, or inconsistent section bounds.
  static StatusOr<std::unique_ptr<JournalReader>> Open(
      const std::string& path);

  uint64_t record_count() const { return record_count_; }
  JournalRecord record(uint64_t index) const {
    return UnpackJournalRecord(records_begin_ + index * kJournalRecordSize);
  }
  const JournalMeta& meta() const { return meta_; }

  /// The raw record array — fixed-width rows, so divergence hunting is
  /// a memcmp binary search over this view.
  std::string_view records_bytes() const {
    return std::string_view(records_begin_,
                            record_count_ * kJournalRecordSize);
  }

  /// Full integrity pass: header/records/meta/footer CRCs plus the
  /// monotone-seq invariant.
  Status Verify() const;

 private:
  JournalReader() = default;

  std::string data_;
  const char* records_begin_ = nullptr;
  uint64_t record_count_ = 0;
  uint64_t meta_offset_ = 0;
  uint64_t meta_size_ = 0;
  JournalMeta meta_;
};

/// Per-URL provenance over one journal.
class JournalIndex {
 public:
  explicit JournalIndex(const JournalReader* reader);

  struct UrlRefs {
    /// The last kSeed/kEnqueue/kRePush before the URL's fetch (or ever,
    /// when it was never fetched) — how the URL entered the frontier.
    uint64_t entered = kJournalNoRecord;
    uint64_t fetch = kJournalNoRecord;
    uint64_t select = kJournalNoRecord;          // Last kBatchSelect.
    std::vector<uint64_t> components;            // Its kScoreComponent rows.
  };

  /// Null when the URL never appears as a record subject.
  const UrlRefs* Find(uint32_t url) const;

  /// One hop of a referrer chain.
  struct Hop {
    uint32_t url = kJournalNoLink;
    const UrlRefs* refs = nullptr;
  };

  /// Walks url -> referrer -> ... -> seed (first hop is `url` itself).
  /// The referrer of a fetched URL is its fetch record's link field
  /// (the winning referrer at fetch time); for a never-fetched URL it
  /// is the last push's parent. NotFound when `url` is not in the
  /// journal; Corruption on a referrer cycle (impossible in a journal
  /// the writer produced, but tools must not loop on corrupt input).
  StatusOr<std::vector<Hop>> ReferrerChain(uint32_t url) const;

 private:
  const JournalReader* reader_;
  std::unordered_map<uint32_t, UrlRefs> urls_;
};

}  // namespace lswc::obs

#endif  // LSWC_OBS_JOURNAL_READER_H_
