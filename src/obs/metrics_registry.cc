#include "obs/metrics_registry.h"

#include <bit>

#include "util/logging.h"
#include "util/string_util.h"

namespace lswc::obs {

int Histogram::BucketIndex(uint64_t value) {
  return value == 0 ? 0 : std::bit_width(value);
}

uint64_t Histogram::BucketLowerBound(int index) {
  return index == 0 ? 0 : uint64_t{1} << (index - 1);
}

void Histogram::Record(uint64_t value) {
  ++buckets_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  if (value < min_) min_ = value;
  if (value > max_) max_ = value;
}

void Histogram::Merge(const Histogram& other) {
  for (int i = 0; i < kNumBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
  if (other.min_ < min_) min_ = other.min_;
  if (other.max_ > max_) max_ = other.max_;
}

namespace {

/// Registration path shared by the three kinds: find-or-create the
/// handle under the lock, checking the name is not already claimed by
/// another kind (`elsewhere1`/`elsewhere2` are the other two indexes).
template <typename T, typename Index, typename O1, typename O2>
T* FindOrCreate(std::string_view name, std::deque<T>* storage, Index* index,
                const O1& elsewhere1, const O2& elsewhere2) {
  const auto it = index->find(name);
  if (it != index->end()) return it->second;
  LSWC_CHECK(elsewhere1.find(name) == elsewhere1.end() &&
             elsewhere2.find(name) == elsewhere2.end())
      << "metric name '" << std::string(name)
      << "' already registered as a different kind";
  storage->emplace_back();
  T* handle = &storage->back();
  index->emplace(std::string(name), handle);
  return handle;
}

}  // namespace

Counter* MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(name, &counters_, &counter_index_, gauge_index_,
                      histogram_index_);
}

Gauge* MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(name, &gauges_, &gauge_index_, counter_index_,
                      histogram_index_);
}

Histogram* MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return FindOrCreate(name, &histograms_, &histogram_index_, counter_index_,
                      gauge_index_);
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  if (&other == this) return;
  // Snapshot the other registry's indexes under its lock, then fold in.
  // The handles themselves are single-writer and the writer has joined
  // by the time anyone merges, so reading the values is safe.
  std::lock_guard<std::mutex> other_lock(other.mu_);
  for (const auto& [name, handle] : other.counter_index_) {
    counter(name)->Add(handle->value());
  }
  for (const auto& [name, handle] : other.gauge_index_) {
    Gauge* mine = gauge(name);
    mine->Set(std::max(mine->value(), handle->value()));
    mine->Set(std::max(mine->max_seen(), handle->max_seen()));
  }
  for (const auto& [name, handle] : other.histogram_index_) {
    histogram(name)->Merge(*handle);
  }
}

bool MetricsRegistry::empty() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counter_index_.empty() && gauge_index_.empty() &&
         histogram_index_.empty();
}

void MetricsRegistry::SnapshotValues(std::vector<MetricValue>* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [name, handle] : counter_index_) {
    MetricValue m;
    m.kind = MetricValue::Kind::kCounter;
    m.name = name;
    m.value = handle->value();
    out->push_back(std::move(m));
  }
  for (const auto& [name, handle] : gauge_index_) {
    MetricValue m;
    m.kind = MetricValue::Kind::kGauge;
    m.name = name;
    m.value = handle->value();
    m.max_seen = handle->max_seen();
    out->push_back(std::move(m));
  }
  for (const auto& [name, handle] : histogram_index_) {
    MetricValue m;
    m.kind = MetricValue::Kind::kHistogram;
    m.name = name;
    m.count = handle->count();
    m.sum = handle->sum();
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (handle->bucket(i) == 0) continue;
      m.buckets.emplace_back(Histogram::BucketLowerBound(i),
                             handle->bucket(i));
    }
    out->push_back(std::move(m));
  }
}

void MetricsRegistry::AppendJsonBody(std::string* out,
                                     const std::string& indent) const {
  std::lock_guard<std::mutex> lock(mu_);
  *out += indent + "\"counters\": {";
  bool first = true;
  for (const auto& [name, handle] : counter_index_) {
    *out += first ? "\n" : ",\n";
    first = false;
    *out += StringPrintf("%s  \"%s\": %llu", indent.c_str(), name.c_str(),
                         static_cast<unsigned long long>(handle->value()));
  }
  *out += counter_index_.empty() ? "},\n" : "\n" + indent + "},\n";

  *out += indent + "\"gauges\": {";
  first = true;
  for (const auto& [name, handle] : gauge_index_) {
    *out += first ? "\n" : ",\n";
    first = false;
    *out += StringPrintf("%s  \"%s\": {\"value\": %llu, \"max\": %llu}",
                         indent.c_str(), name.c_str(),
                         static_cast<unsigned long long>(handle->value()),
                         static_cast<unsigned long long>(handle->max_seen()));
  }
  *out += gauge_index_.empty() ? "},\n" : "\n" + indent + "},\n";

  *out += indent + "\"histograms\": {";
  first = true;
  for (const auto& [name, handle] : histogram_index_) {
    *out += first ? "\n" : ",\n";
    first = false;
    *out += StringPrintf(
        "%s  \"%s\": {\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
        "\"max\": %llu, \"buckets\": [",
        indent.c_str(), name.c_str(),
        static_cast<unsigned long long>(handle->count()),
        static_cast<unsigned long long>(handle->sum()),
        static_cast<unsigned long long>(handle->min()),
        static_cast<unsigned long long>(handle->max()));
    bool first_bucket = true;
    for (int i = 0; i < Histogram::kNumBuckets; ++i) {
      if (handle->bucket(i) == 0) continue;
      if (!first_bucket) *out += ", ";
      first_bucket = false;
      *out += StringPrintf(
          "[%llu, %llu]",
          static_cast<unsigned long long>(Histogram::BucketLowerBound(i)),
          static_cast<unsigned long long>(handle->bucket(i)));
    }
    *out += "]}";
  }
  *out += histogram_index_.empty() ? "}\n" : "\n" + indent + "}\n";
}

std::string MetricsRegistry::ToJson() const {
  std::string out = "{\n";
  AppendJsonBody(&out, "  ");
  out += "}";
  return out;
}

}  // namespace lswc::obs
