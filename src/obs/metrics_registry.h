#ifndef LSWC_OBS_METRICS_REGISTRY_H_
#define LSWC_OBS_METRICS_REGISTRY_H_

// Named runtime metrics for the crawler: counters, gauges, and
// fixed-bucket log2 histograms. The design splits registration from
// mutation so the crawl loop stays lock-free:
//
//  - registration (`counter("x")` / `gauge("x")` / `histogram("x")`) is
//    mutex-guarded and returns a handle whose address is stable for the
//    registry's lifetime (deque-backed storage, never reallocated);
//  - mutation through a handle is a plain store/add — no locks, no
//    atomics. A registry therefore belongs to exactly one run (one
//    worker thread); cross-run aggregation goes through Merge, which
//    the ExperimentRunner calls after the workers have joined.
//
// Every quantity here is deterministic (counts, depths, simulated
// ticks — never wall time), so merged registry output is part of the
// jobs=N == jobs=1 bit-identity contract. Serialization sorts by name.

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace lswc::obs {

/// One registry metric copied out by value (SnapshotValues), so readers
/// on other threads never touch the live single-writer handles.
struct MetricValue {
  enum class Kind : uint8_t { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string name;
  uint64_t value = 0;     // Counter total / gauge last-set value.
  uint64_t max_seen = 0;  // Gauge high-water mark.
  uint64_t count = 0;     // Histogram sample count.
  uint64_t sum = 0;       // Histogram sample sum.
  /// Histogram buckets as (lower_bound, count) pairs, non-empty buckets
  /// only, ascending. Empty for counters/gauges.
  std::vector<std::pair<uint64_t, uint64_t>> buckets;
};

/// Monotonically increasing event count. Merge: sum.
class Counter {
 public:
  void Increment() { ++value_; }
  void Add(uint64_t delta) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

/// Last-set value plus its high-water mark. Merge: max of both (the
/// cross-run aggregate of a level is its peak, not a sum).
class Gauge {
 public:
  void Set(uint64_t value) {
    value_ = value;
    if (value > max_seen_) max_seen_ = value;
  }
  uint64_t value() const { return value_; }
  uint64_t max_seen() const { return max_seen_; }

 private:
  uint64_t value_ = 0;
  uint64_t max_seen_ = 0;
};

/// Fixed-bucket log2 histogram over uint64 samples. Bucket 0 holds
/// zeros; bucket i (i >= 1) holds values in [2^(i-1), 2^i). 65 buckets
/// cover the full uint64 range, so Record never clamps or drops.
/// Merge: bucket-wise sum (order-independent).
class Histogram {
 public:
  static constexpr int kNumBuckets = 65;

  /// 0 -> 0; otherwise 1 + floor(log2(value)).
  static int BucketIndex(uint64_t value);
  /// Smallest value landing in `index` (0, 1, 2, 4, 8, ...).
  static uint64_t BucketLowerBound(int index);

  void Record(uint64_t value);
  void Merge(const Histogram& other);

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  /// 0 when the histogram is empty.
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  uint64_t bucket(int index) const { return buckets_[index]; }

 private:
  uint64_t buckets_[kNumBuckets] = {};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

/// The per-run metric namespace. Handles returned by the lookup methods
/// stay valid (and at a stable address) for the registry's lifetime.
/// Looking up the same name twice returns the same handle; a name names
/// one kind only (re-requesting "x" as a different kind aborts —
/// that is a programming error, not a runtime condition).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* counter(std::string_view name);
  Gauge* gauge(std::string_view name);
  Histogram* histogram(std::string_view name);

  /// Folds `other` into this registry: counters sum, gauges max,
  /// histograms bucket-wise sum. Every operation is commutative and
  /// associative, so merging N per-run registries yields the same
  /// result in any order — the property the ExperimentRunner's
  /// jobs=N == jobs=1 bit-identity rests on.
  void Merge(const MetricsRegistry& other);

  bool empty() const;

  /// Appends every metric to `*out` as a by-value copy, name-sorted
  /// within each kind (counters, then gauges, then histograms). Must be
  /// called from the writer thread (or after it has joined): the lock
  /// protects only the indexes, not the handle values.
  void SnapshotValues(std::vector<MetricValue>* out) const;

  /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`, keys
  /// sorted by name; histograms list only their non-empty buckets as
  /// [lower_bound, count] pairs. Deterministic for deterministic input.
  std::string ToJson() const;
  /// The three maps without the enclosing braces, for embedding into a
  /// larger JSON object. `indent` prefixes every emitted line.
  void AppendJsonBody(std::string* out, const std::string& indent) const;

 private:
  mutable std::mutex mu_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<Histogram> histograms_;
  std::map<std::string, Counter*, std::less<>> counter_index_;
  std::map<std::string, Gauge*, std::less<>> gauge_index_;
  std::map<std::string, Histogram*, std::less<>> histogram_index_;
};

}  // namespace lswc::obs

#endif  // LSWC_OBS_METRICS_REGISTRY_H_
