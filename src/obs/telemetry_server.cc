#include "obs/telemetry_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <utility>

#include "obs/prometheus.h"
#include "util/string_util.h"

namespace lswc::obs {

namespace {

struct ParsedEndpoint {
  bool is_unix = false;
  std::string unix_path;
  std::string host;  // TCP only.
  uint16_t port = 0;
};

Status ParseEndpoint(const std::string& endpoint, ParsedEndpoint* out) {
  if (StartsWith(endpoint, "unix:")) {
    out->is_unix = true;
    out->unix_path = endpoint.substr(5);
    if (out->unix_path.empty()) {
      return Status::InvalidArgument("unix: endpoint needs a socket path");
    }
    sockaddr_un probe;
    if (out->unix_path.size() >= sizeof(probe.sun_path)) {
      return Status::InvalidArgument("unix socket path too long: " +
                                     out->unix_path);
    }
    return Status::OK();
  }
  if (StartsWith(endpoint, "tcp:")) {
    std::string rest = endpoint.substr(4);
    const size_t colon = rest.rfind(':');
    out->host = colon == std::string::npos ? "127.0.0.1"
                                           : rest.substr(0, colon);
    const std::string port_str =
        colon == std::string::npos ? rest : rest.substr(colon + 1);
    const std::optional<uint64_t> port = ParseUint64(port_str);
    if (!port.has_value() || *port > 65535) {
      return Status::InvalidArgument("bad tcp port in endpoint: " + endpoint);
    }
    out->port = static_cast<uint16_t>(*port);
    return Status::OK();
  }
  return Status::InvalidArgument(
      "telemetry endpoint must be unix:<path> or tcp:[host:]port, got: " +
      endpoint);
}

StatusOr<int> OpenListenSocket(const ParsedEndpoint& ep,
                               std::string* resolved) {
  if (ep.is_unix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::IoError("socket(AF_UNIX) failed");
    sockaddr_un addr;
    ::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    ::strncpy(addr.sun_path, ep.unix_path.c_str(),
              sizeof(addr.sun_path) - 1);
    ::unlink(ep.unix_path.c_str());  // Stale socket from a dead run.
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
      ::close(fd);
      return Status::IoError("bind/listen failed on " + ep.unix_path);
    }
    *resolved = "unix:" + ep.unix_path;
    return fd;
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Status::IoError("socket(AF_INET) failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  ::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad telemetry host: " + ep.host);
  }
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 8) != 0) {
    ::close(fd);
    return Status::IoError(
        StringPrintf("bind/listen failed on %s:%u", ep.host.c_str(),
                     static_cast<unsigned>(ep.port)));
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len);
  *resolved = StringPrintf("tcp:%s:%u", ep.host.c_str(),
                           static_cast<unsigned>(ntohs(bound.sin_port)));
  return fd;
}

void SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

void SendResponse(int fd, const char* status, const char* content_type,
                  const std::string& body) {
  std::string response = StringPrintf(
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      status, content_type, body.size());
  response += body;
  SendAll(fd, response);
}

}  // namespace

StatusOr<std::unique_ptr<TelemetryServer>> TelemetryServer::Start(
    const std::string& endpoint, SnapshotSource source) {
  ParsedEndpoint ep;
  LSWC_RETURN_IF_ERROR(ParseEndpoint(endpoint, &ep));
  std::unique_ptr<TelemetryServer> server(new TelemetryServer());
  StatusOr<int> fd = OpenListenSocket(ep, &server->endpoint_);
  if (!fd.ok()) return fd.status();
  server->listen_fd_ = *fd;
  if (ep.is_unix) server->unix_path_ = ep.unix_path;
  server->source_ = std::move(source);
  server->thread_ = std::thread([raw = server.get()] { raw->Serve(); });
  return server;
}

TelemetryServer::~TelemetryServer() { Stop(); }

void TelemetryServer::Stop() {
  if (listen_fd_ < 0) return;
  // shutdown() wakes the blocked accept(); close() alone does not on
  // all platforms.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  if (!unix_path_.empty()) ::unlink(unix_path_.c_str());
}

void TelemetryServer::Serve() {
  for (;;) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) return;  // Stop() shut the listener down.
    char buf[2048];
    const ssize_t n = ::recv(client, buf, sizeof(buf) - 1, 0);
    if (n <= 0) {
      ::close(client);
      continue;
    }
    buf[n] = '\0';
    // "GET <path> HTTP/1.x" — everything after the path is ignored.
    std::string path;
    if (::strncmp(buf, "GET ", 4) == 0) {
      const char* start = buf + 4;
      const char* end = ::strchr(start, ' ');
      if (end != nullptr) path.assign(start, end);
    }
    if (path == "/metrics") {
      SendResponse(client, "200 OK", "text/plain; version=0.0.4",
                   RenderPrometheus(source_()));
    } else if (path == "/progress" || path == "/") {
      SendResponse(client, "200 OK", "application/json",
                   RenderProgressJson(source_()));
    } else if (path == "/top") {
      SendResponse(client, "200 OK", "text/plain",
                   RenderTopText(source_()));
    } else if (path.empty()) {
      SendResponse(client, "400 Bad Request", "text/plain",
                   "only GET is supported\n");
    } else {
      SendResponse(client, "404 Not Found", "text/plain",
                   "try /metrics, /progress, or /top\n");
    }
    ::close(client);
  }
}

StatusOr<std::string> TelemetryGet(const std::string& endpoint,
                                   const std::string& path) {
  ParsedEndpoint ep;
  LSWC_RETURN_IF_ERROR(ParseEndpoint(endpoint, &ep));
  int fd = -1;
  if (ep.is_unix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::IoError("socket(AF_UNIX) failed");
    sockaddr_un addr;
    ::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    ::strncpy(addr.sun_path, ep.unix_path.c_str(),
              sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return Status::IoError("connect failed: " + endpoint);
    }
  } else {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) return Status::IoError("socket(AF_INET) failed");
    sockaddr_in addr;
    ::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_port = htons(ep.port);
    if (::inet_pton(AF_INET, ep.host.c_str(), &addr.sin_addr) != 1 ||
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
            0) {
      ::close(fd);
      return Status::IoError("connect failed: " + endpoint);
    }
  }
  const std::string request =
      StringPrintf("GET %s HTTP/1.0\r\n\r\n", path.c_str());
  SendAll(fd, request);
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  const size_t header_end = response.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IoError("malformed telemetry response from " + endpoint);
  }
  if (response.compare(0, 12, "HTTP/1.0 200") != 0 &&
      response.compare(0, 12, "HTTP/1.1 200") != 0) {
    return Status::IoError("telemetry endpoint returned: " +
                           response.substr(0, response.find("\r\n")));
  }
  return response.substr(header_end + 4);
}

}  // namespace lswc::obs
