#ifndef LSWC_OBS_RUN_OBS_H_
#define LSWC_OBS_RUN_OBS_H_

// The per-run observability bundle: one MetricsRegistry + one
// StageProfiler (+ optionally one TraceSink) owned together and handed
// to a run by pointer (SimulationOptions::obs, PolitenessOptions::obs,
// CrawlEngineOptions::obs). Null pointer = no instrumentation; a
// non-null bundle with `enabled` false (the LSWC_OBS_DISABLED
// environment variable, or a -DLSWC_OBS_DISABLED build) is treated as
// null by every instrumentation point — that is the "same binary,
// runtime-disabled" switch CI's overhead gate flips.

#include <memory>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/stage_profiler.h"
#include "obs/trace_sink.h"

namespace lswc::obs {

/// True when the LSWC_OBS_DISABLED environment variable is set to a
/// non-empty value other than "0" (read once per query — cheap enough,
/// and tests can flip it between runs).
bool ObsDisabledByEnv();

struct RunObs {
  RunObs();

  /// False when obs is compiled out or disabled by environment; every
  /// consumer treats the bundle as absent then.
  bool enabled = true;

  MetricsRegistry registry;
  StageProfiler profiler;
  /// Created by EnableTrace; null when this run is not traced.
  std::unique_ptr<TraceSink> trace;
  /// Per-shard trace sinks adopted from a sharded run's worker bundles
  /// (one trace track per shard). Empty for serial runs.
  std::vector<std::unique_ptr<TraceSink>> shard_traces;

  /// Creates the run's trace sink (track id `tid`, labeled
  /// `thread_name`) and attaches it to the profiler. No-op when the
  /// bundle is disabled.
  void EnableTrace(int tid, std::string thread_name);
  void EnableTrace(int tid, std::string thread_name,
                   TraceSink::Options options);

  /// Folds another run's registry and profiler into this one (trace
  /// sinks are written side by side, not merged). Order-independent.
  void MergeFrom(const RunObs& other);

  /// Appends every sink this bundle owns — the main trace first, then
  /// the per-shard tracks — for TraceSink::WriteFile.
  void CollectTraceSinks(std::vector<const TraceSink*>* out) const;

  /// The combined stats document:
  /// `{"stages": {...}, "counters": {...}, "gauges": {...},
  ///   "histograms": {...}}`.
  /// `include_times` false omits the wall-time fields (stage total_ns),
  /// leaving only deterministic quantities.
  std::string StatsJson(bool include_times = true) const;
};

}  // namespace lswc::obs

#endif  // LSWC_OBS_RUN_OBS_H_
