#include "obs/telemetry_plane.h"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "util/string_util.h"

namespace lswc::obs {

TelemetryPlane& TelemetryPlane::Instance() {
  static TelemetryPlane* plane = new TelemetryPlane();  // Never destroyed.
  return *plane;
}

Status TelemetryPlane::Configure(const TelemetryOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (configured_) {
    return Status::FailedPrecondition("telemetry plane already configured");
  }
  options_ = options;

  if (!options.dump_path.empty()) {
    SetFlightDumpPath(options.dump_path.c_str());
  }
  if (options.flight_recorder_events > 0) InstallCrashHandler();

  if (options.watchdog_secs > 0) {
    StallWatchdog::Options wd;
    wd.heartbeat = &heartbeat_;
    wd.deadline_ns = options.watchdog_secs * 1'000'000'000ull;
    wd.abort_on_fire = options.watchdog_abort;
    wd.dump_path = options.dump_path;
    wd.attribution = [this](int fd) { WriteAttribution(fd); };
    watchdog_ = std::make_unique<StallWatchdog>(std::move(wd));
    watchdog_->Start();
  }

  if (!options.endpoint.empty()) {
    StatusOr<std::unique_ptr<TelemetryServer>> server = TelemetryServer::Start(
        options.endpoint, [this] { return CollectSnapshots(); });
    if (!server.ok()) {
      if (watchdog_ != nullptr) {
        watchdog_->Stop();
        watchdog_.reset();
      }
      return server.status();
    }
    server_ = std::move(server).value();
    endpoint_ = server_->endpoint();
  }

  configured_ = true;
  return Status::OK();
}

TelemetryContext* TelemetryPlane::CreateContext(const std::string& run_label) {
  std::lock_guard<std::mutex> lock(mu_);
  contexts_.emplace_back();
  TelemetryContext* ctx = &contexts_.back();
  ctx->run = run_label;
  const uint64_t ring = configured_ ? options_.flight_recorder_events : 0;
  if (ring > 0) {
    ctx->recorder = std::make_unique<FlightRecorder>(ring);
    RegisterFlightRecorder(ctx->recorder.get());
  }
  ctx->heartbeat = &heartbeat_;
  return ctx;
}

std::vector<SnapshotPtr> TelemetryPlane::CollectSnapshots() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<SnapshotPtr> out;
  out.reserve(contexts_.size());
  for (TelemetryContext& ctx : contexts_) {
    SnapshotPtr snapshot = ctx.board.Read();
    if (snapshot != nullptr) out.push_back(std::move(snapshot));
  }
  return out;
}

bool TelemetryPlane::watchdog_fired() const {
  return watchdog_ != nullptr && watchdog_->fired();
}

void TelemetryPlane::WriteAttribution(int fd) {
  // Per-run / per-shard stage attribution for the stall dump. Snapshots
  // are immutable copies, so this only takes the plane's own lock
  // (never one a stalled crawl thread could hold).
  std::string out = "WATCHDOG-ATTRIBUTION\n";
  for (const SnapshotPtr& s : CollectSnapshots()) {
    out += FormatProgressLine(*s);
    out.push_back('\n');
    for (const ShardState& shard : s->shards) {
      out += StringPrintf(
          "  shard %u: pending=%llu pages=%llu\n", shard.shard,
          static_cast<unsigned long long>(shard.pending),
          static_cast<unsigned long long>(shard.pages_crawled));
    }
  }
  out += "WATCHDOG-ATTRIBUTION end\n";
  size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
    if (n <= 0) break;
    off += static_cast<size_t>(n);
  }
}

void TelemetryPlane::Shutdown() {
  // Move the threads out first: stopping them joins, and a firing
  // watchdog's attribution callback takes mu_ via CollectSnapshots —
  // joining while holding mu_ would deadlock.
  std::unique_ptr<TelemetryServer> server;
  std::unique_ptr<StallWatchdog> watchdog;
  {
    std::lock_guard<std::mutex> lock(mu_);
    server = std::move(server_);
    watchdog = std::move(watchdog_);
    endpoint_.clear();
    configured_ = false;
  }
  server.reset();
  if (watchdog != nullptr) watchdog->Stop();
}

void ConfigureTelemetryPlaneFromFlags(const TelemetryOptions& options,
                                      const char* argv0) {
  const bool wanted = !options.endpoint.empty() ||
                      options.watchdog_secs != 0 || !options.dump_path.empty();
  if (!wanted) return;
  const Status status = TelemetryPlane::Instance().Configure(options);
  if (!status.ok()) {
    std::fprintf(stderr, "%s: telemetry: %s\n", argv0,
                 status.ToString().c_str());
    std::exit(2);
  }
  const std::string& endpoint = TelemetryPlane::Instance().endpoint();
  if (!endpoint.empty()) {
    std::fprintf(stderr, "TELEMETRY %s\n", endpoint.c_str());
  }
}

}  // namespace lswc::obs
