#include "obs/stage_profiler.h"

#include <algorithm>
#include <array>
#include <chrono>

#include "obs/trace_sink.h"
#include "util/string_util.h"

namespace lswc::obs {

uint64_t MonotonicNowNs() {
  // One process-wide epoch so spans from every run / thread land on the
  // same trace timeline.
  static const auto base = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - base)
          .count());
}

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kFetch: return "fetch";
    case Stage::kClassify: return "classify";
    case Stage::kExtract: return "extract";
    case Stage::kStrategy: return "strategy";
    case Stage::kFrontierPush: return "frontier-push";
    case Stage::kSample: return "sample";
    case Stage::kCheckpoint: return "checkpoint";
    case Stage::kRoute: return "route";
    case Stage::kMerge: return "merge";
    case Stage::kRescore: return "rescore";
  }
  return "unknown";
}

void StageProfiler::Record(Stage stage, uint64_t start_ns, uint64_t end_ns) {
  const int i = static_cast<int>(stage);
  timed_ns_[i] += end_ns - start_ns;
  ++timed_calls_[i];
  ++calls_[i];
  if (trace_ != nullptr) trace_->Span(StageName(stage), start_ns, end_ns);
}

uint64_t StageProfiler::total_ns(Stage stage) const {
  const int i = static_cast<int>(stage);
  if (timed_calls_[i] == 0) return 0;
  if (timed_calls_[i] == calls_[i]) return timed_ns_[i];
  // Extrapolate the 1-in-64 sample to all calls, in floating point to
  // dodge uint64 overflow on the intermediate product.
  return static_cast<uint64_t>(static_cast<double>(timed_ns_[i]) *
                               static_cast<double>(calls_[i]) /
                               static_cast<double>(timed_calls_[i]));
}

void StageProfiler::Merge(const StageProfiler& other) {
  for (int i = 0; i < kNumStages; ++i) {
    timed_ns_[i] += other.timed_ns_[i];
    timed_calls_[i] += other.timed_calls_[i];
    calls_[i] += other.calls_[i];
  }
}

std::string StageProfiler::ToJson(bool include_times) const {
  std::string out = "{";
  bool first = true;
  for (int i = 0; i < kNumStages; ++i) {
    out += first ? "\n" : ",\n";
    first = false;
    out += StringPrintf("    \"%s\": {\"calls\": %llu",
                        StageName(static_cast<Stage>(i)),
                        static_cast<unsigned long long>(calls_[i]));
    if (include_times) {
      out += StringPrintf(
          ", \"total_ns\": %llu",
          static_cast<unsigned long long>(total_ns(static_cast<Stage>(i))));
    }
    out += "}";
  }
  out += "\n  }";
  return out;
}

std::string StageProfiler::TopStagesLine(int n) const {
  std::array<uint64_t, kNumStages> ns;
  uint64_t total = 0;
  for (int i = 0; i < kNumStages; ++i) {
    ns[static_cast<size_t>(i)] = total_ns(static_cast<Stage>(i));
    total += ns[static_cast<size_t>(i)];
  }
  if (total == 0) return "";

  std::array<int, kNumStages> order;
  for (int i = 0; i < kNumStages; ++i) order[static_cast<size_t>(i)] = i;
  std::sort(order.begin(), order.end(), [&ns](int a, int b) {
    const uint64_t na = ns[static_cast<size_t>(a)];
    const uint64_t nb = ns[static_cast<size_t>(b)];
    if (na != nb) return na > nb;
    return a < b;
  });

  std::string out;
  for (int k = 0; k < n && k < kNumStages; ++k) {
    const int i = order[static_cast<size_t>(k)];
    if (ns[static_cast<size_t>(i)] == 0) break;
    if (!out.empty()) out += " ";
    out += StringPrintf("%s %.0f%%", StageName(static_cast<Stage>(i)),
                        100.0 * static_cast<double>(ns[static_cast<size_t>(i)]) /
                            static_cast<double>(total));
  }
  return out;
}

}  // namespace lswc::obs
