#ifndef LSWC_OBS_FLIGHT_RECORDER_H_
#define LSWC_OBS_FLIGHT_RECORDER_H_

// A fixed-size in-memory ring of recent structured events (stage
// transitions, checkpoints, spills, rescore rounds, ...) that can be
// dumped to a file descriptor from a signal handler. The point is a
// diagnosable trail for crashed or stalled runs: the crash handler
// (SIGSEGV/SIGABRT) and the stall watchdog both dump every registered
// recorder before the process dies.
//
// Concurrency: Record is cheap (two relaxed atomics plus a bounded
// memcpy into a preallocated slot) and safe against concurrent dumps —
// each slot carries a commit word (seq+1, store-release after the
// fields) so a dumper can detect and mark slots it raced with. All
// memory is allocated at construction; DumpTo allocates nothing, calls
// only async-signal-safe functions (write), and formats integers by
// hand, so it is legal inside a signal handler.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace lswc::obs {

/// One recorded event. POD with fixed char arrays so slots can be
/// reused in place and read from a signal handler without touching the
/// allocator.
struct FlightEvent {
  static constexpr size_t kKindLen = 16;
  static constexpr size_t kDetailLen = 48;
  uint64_t seq = 0;  // Global record order, 0-based.
  uint64_t ns = 0;   // MonotonicNowNs at record time.
  char kind[kKindLen] = {};      // NUL-terminated, truncated to fit.
  char detail[kDetailLen] = {};  // NUL-terminated, truncated to fit.
  uint64_t a = 0;  // Numeric payloads; meaning depends on kind
  uint64_t b = 0;  // (pages at a checkpoint, bytes spilled, ...).
};

class FlightRecorder {
 public:
  /// `capacity` slots; older events are overwritten once the ring wraps.
  /// Capacity 0 disables recording entirely (Record is a no-op).
  explicit FlightRecorder(size_t capacity);
  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void Record(const char* kind, const char* detail, uint64_t a = 0,
              uint64_t b = 0);

  /// Writes every live slot to `fd`, oldest first, one line per event:
  ///   FLIGHT seq=<n> ns=<n> kind=<s> a=<n> b=<n> detail=<s>
  /// A slot that was being overwritten mid-dump is emitted as
  /// "FLIGHT torn". Async-signal-safe: no locks, no allocation.
  void DumpTo(int fd) const;

  size_t capacity() const { return slots_.size(); }
  /// Total events ever recorded (not clamped to capacity).
  uint64_t recorded() const { return next_.load(std::memory_order_relaxed); }

  /// Copies out the live window, oldest first — test/CLI convenience,
  /// not signal-safe (allocates).
  std::vector<FlightEvent> Events() const;

 private:
  struct Slot {
    std::atomic<uint64_t> commit{0};  // 0 = empty, else event seq + 1.
    FlightEvent event;
  };
  std::vector<Slot> slots_;
  std::atomic<uint64_t> next_{0};
};

/// Registers a recorder with the process-wide dump set (bounded; extra
/// registrations beyond the fixed table are silently dropped). Every
/// registered recorder is written out by DumpAllFlightRecorders.
void RegisterFlightRecorder(FlightRecorder* recorder);
void UnregisterFlightRecorder(FlightRecorder* recorder);

/// Dumps every registered recorder to `fd`, preceded by a
/// "FLIGHT-RECORDER-DUMP reason=<reason>" header line. Signal-safe.
/// `reason` must be a short NUL-terminated literal.
void DumpAllFlightRecorders(int fd, const char* reason);

/// Sets the file the crash handler dumps to (copied into a fixed
/// buffer, truncated if longer). Empty/null means stderr.
void SetFlightDumpPath(const char* path);

/// Installs SIGSEGV/SIGABRT handlers that dump all registered
/// recorders to the configured path (or stderr) and then re-raise with
/// the default disposition. Idempotent.
void InstallCrashHandler();

}  // namespace lswc::obs

#endif  // LSWC_OBS_FLIGHT_RECORDER_H_
