#ifndef LSWC_OBS_PROMETHEUS_H_
#define LSWC_OBS_PROMETHEUS_H_

// Prometheus text exposition (version 0.0.4) over telemetry snapshots.
// The renderer works purely on TelemetrySnapshot copies — never on live
// registry handles — so it is safe to call from the server thread while
// the crawl is running. Output is deterministic for deterministic
// input: families are emitted in sorted name order and samples within a
// family in sorted label order.

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/telemetry.h"

namespace lswc::obs {

/// Maps a registry metric name onto the exposition namespace: invalid
/// characters (anything outside [a-zA-Z0-9_:]) become '_', the result
/// is prefixed with "lswc_", and counters gain a "_total" suffix unless
/// they already end in one. E.g. counter "frontier.spills" ->
/// "lswc_frontier_spills_total".
std::string PromMetricName(std::string_view raw, MetricValue::Kind kind);

/// Escapes a label value per the exposition format: backslash, double
/// quote, and newline are backslash-escaped.
std::string PromEscapeLabelValue(std::string_view value);

/// Renders the full exposition document over every published snapshot.
/// Each sample carries a run="<label>" label (shard samples also
/// shard="<n>"); built-in crawl families (pages, harvest, frontier,
/// stage shares) come first alphabetically intermixed with the
/// registry-derived families. Histograms render as cumulative le
/// buckets with exact integer upper bounds plus _sum and _count.
std::string RenderPrometheus(const std::vector<SnapshotPtr>& snapshots);

}  // namespace lswc::obs

#endif  // LSWC_OBS_PROMETHEUS_H_
