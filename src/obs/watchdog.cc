#include "obs/watchdog.h"

#include <fcntl.h>
#include <string.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/flight_recorder.h"
#include "obs/stage_profiler.h"
#include "util/string_util.h"

namespace lswc::obs {

StallWatchdog::StallWatchdog(Options options)
    : options_(std::move(options)) {}

StallWatchdog::~StallWatchdog() { Stop(); }

void StallWatchdog::Start() {
  if (options_.deadline_ns == 0 || options_.heartbeat == nullptr ||
      thread_.joinable()) {
    return;
  }
  thread_ = std::thread([this] { Loop(); });
}

void StallWatchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void StallWatchdog::Loop() {
  // Poll often enough to fire within ~deadline*1.25, but never busier
  // than 4x per deadline and never slower than half a second.
  const uint64_t poll_ns =
      std::max<uint64_t>(options_.deadline_ns / 4, 1'000'000) < 500'000'000
          ? std::max<uint64_t>(options_.deadline_ns / 4, 1'000'000)
          : 500'000'000;
  uint64_t last_beat = options_.heartbeat->load(std::memory_order_relaxed);
  uint64_t last_change_ns = MonotonicNowNs();
  std::unique_lock<std::mutex> lock(mu_);
  while (!stopping_) {
    cv_.wait_for(lock, std::chrono::nanoseconds(poll_ns),
                 [this] { return stopping_; });
    if (stopping_) return;
    const uint64_t beat =
        options_.heartbeat->load(std::memory_order_relaxed);
    const uint64_t now = MonotonicNowNs();
    if (beat != last_beat) {
      last_beat = beat;
      last_change_ns = now;
      continue;
    }
    if (now - last_change_ns >= options_.deadline_ns &&
        !fired_.load(std::memory_order_relaxed)) {
      lock.unlock();
      Fire(now - last_change_ns);
      lock.lock();
      if (!options_.abort_on_fire) return;  // One-shot; nothing left to do.
    }
  }
}

void StallWatchdog::Fire(uint64_t stalled_ns) {
  fired_.store(true, std::memory_order_release);
  int fd = STDERR_FILENO;
  bool opened = false;
  if (!options_.dump_path.empty()) {
    // Append: the plane truncated the file at configure time, and with
    // abort_on_fire the SIGABRT crash dump appends right after this one.
    const int file_fd = ::open(options_.dump_path.c_str(),
                               O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (file_fd >= 0) {
      fd = file_fd;
      opened = true;
    }
  }
  const std::string header = StringPrintf(
      "WATCHDOG-STALL stalled_ms=%llu deadline_ms=%llu\n",
      static_cast<unsigned long long>(stalled_ns / 1'000'000),
      static_cast<unsigned long long>(options_.deadline_ns / 1'000'000));
  ssize_t ignored = ::write(fd, header.data(), header.size());
  (void)ignored;
  DumpAllFlightRecorders(fd, "watchdog");
  if (options_.attribution) options_.attribution(fd);
  if (opened) ::close(fd);
  if (options_.abort_on_fire) {
    // The crash handler's SIGABRT dump follows; this stall dump above
    // is the authoritative record.
    std::abort();
  }
}

}  // namespace lswc::obs
