#include "obs/trace_sink.h"

#include <cstdio>
#include <filesystem>

#include "obs/stage_profiler.h"
#include "util/string_util.h"

namespace lswc::obs {

namespace {
/// Minimal JSON string escape for run labels (event names are literals
/// and never need it).
std::string EscapeLabel(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      out += ' ';
      continue;
    }
    out += c;
  }
  return out;
}
}  // namespace

TraceSink::TraceSink(int tid) : TraceSink(tid, Options()) {}

TraceSink::TraceSink(int tid, Options options)
    : tid_(tid), options_(options) {
  events_.reserve(1024);
}

bool TraceSink::Admit() {
  if (events_.size() >= options_.max_events) {
    ++dropped_;
    return false;
  }
  return true;
}

void TraceSink::Span(const char* name, uint64_t start_ns, uint64_t end_ns) {
  if (!Admit()) return;
  events_.push_back(Event{name, start_ns, end_ns - start_ns, Phase::kSpan});
}

void TraceSink::Instant(const char* name) {
  if (!Admit()) return;
  events_.push_back(Event{name, MonotonicNowNs(), 0, Phase::kInstant});
}

void TraceSink::CounterValue(const char* name, uint64_t value) {
  if (!Admit()) return;
  events_.push_back(Event{name, MonotonicNowNs(), value, Phase::kCounter});
}

void TraceSink::AppendEventsJson(std::string* out, bool* first) const {
  // Timestamps are microseconds in the trace-event format; keep the
  // nanosecond precision as a fraction.
  const auto us = [](uint64_t ns) {
    return StringPrintf("%llu.%03u",
                        static_cast<unsigned long long>(ns / 1000),
                        static_cast<unsigned>(ns % 1000));
  };
  if (!thread_name_.empty()) {
    *out += *first ? "\n" : ",\n";
    *first = false;
    *out += StringPrintf(
        "{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
        "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
        tid_, EscapeLabel(thread_name_).c_str());
  }
  for (const Event& e : events_) {
    *out += *first ? "\n" : ",\n";
    *first = false;
    switch (e.phase) {
      case Phase::kSpan:
        *out += StringPrintf(
            "{\"name\": \"%s\", \"cat\": \"stage\", \"ph\": \"X\", "
            "\"ts\": %s, \"dur\": %s, \"pid\": 1, \"tid\": %d}",
            e.name, us(e.ts_ns).c_str(), us(e.dur_or_value).c_str(), tid_);
        break;
      case Phase::kInstant:
        *out += StringPrintf(
            "{\"name\": \"%s\", \"cat\": \"event\", \"ph\": \"i\", "
            "\"s\": \"t\", \"ts\": %s, \"pid\": 1, \"tid\": %d}",
            e.name, us(e.ts_ns).c_str(), tid_);
        break;
      case Phase::kCounter:
        *out += StringPrintf(
            "{\"name\": \"%s\", \"cat\": \"counter\", \"ph\": \"C\", "
            "\"ts\": %s, \"pid\": 1, \"tid\": %d, "
            "\"args\": {\"value\": %llu}}",
            e.name, us(e.ts_ns).c_str(), tid_,
            static_cast<unsigned long long>(e.dur_or_value));
        break;
    }
  }
  if (dropped_ != 0) {
    *out += *first ? "\n" : ",\n";
    *first = false;
    *out += StringPrintf(
        "{\"name\": \"trace-events-dropped\", \"cat\": \"event\", "
        "\"ph\": \"i\", \"s\": \"t\", \"ts\": %s, \"pid\": 1, "
        "\"tid\": %d, \"args\": {\"dropped\": %llu}}",
        us(MonotonicNowNs()).c_str(), tid_,
        static_cast<unsigned long long>(dropped_));
  }
}

Status TraceSink::WriteFile(const std::string& path,
                            const std::vector<const TraceSink*>& sinks) {
  std::string json = "{\"traceEvents\": [";
  bool first = true;
  for (const TraceSink* sink : sinks) {
    if (sink != nullptr) sink->AppendEventsJson(&json, &first);
  }
  json += first ? "]}\n" : "\n]}\n";

  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IoError("cannot open trace file: " + path);
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  if (written != json.size()) {
    return Status::IoError("short write to trace file: " + path);
  }
  return Status::OK();
}

Status TraceSink::WriteFile(const std::string& path) const {
  return WriteFile(path, {this});
}

}  // namespace lswc::obs
