#include "obs/journal_reader.h"

#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "snapshot/section.h"
#include "util/crc32.h"

namespace lswc::obs {

namespace {

inline uint32_t GetU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}
inline uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

Status ReadFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IoError("cannot open " + path);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  if (size < 0) {
    std::fclose(f);
    return Status::IoError("cannot stat " + path);
  }
  std::fseek(f, 0, SEEK_SET);
  out->resize(static_cast<size_t>(size));
  const size_t read = size == 0 ? 0 : std::fread(out->data(), 1, out->size(), f);
  std::fclose(f);
  if (read != out->size()) return Status::IoError("short read of " + path);
  return Status::OK();
}

}  // namespace

StatusOr<std::unique_ptr<JournalReader>> JournalReader::Open(
    const std::string& path) {
  auto reader = std::unique_ptr<JournalReader>(new JournalReader());
  LSWC_RETURN_IF_ERROR(ReadFile(path, &reader->data_));
  const std::string& d = reader->data_;
  if (d.size() < kJournalHeaderSize + kJournalFooterSize) {
    return Status::Corruption(path + ": truncated (smaller than header + footer)");
  }
  if (std::memcmp(d.data(), kJournalMagic, 8) != 0) {
    return Status::Corruption(path + ": bad magic (not an LSWCJRNL journal)");
  }
  const uint32_t version = GetU32(d.data() + 8);
  if (version != kJournalVersion) {
    return Status::Corruption(path + ": unsupported journal version " +
                              std::to_string(version));
  }
  const uint32_t record_size = GetU32(d.data() + 12);
  if (record_size != kJournalRecordSize) {
    return Status::Corruption(path + ": unexpected record size " +
                              std::to_string(record_size));
  }
  const char* footer = d.data() + d.size() - kJournalFooterSize;
  if (std::memcmp(footer, kJournalEndMagic, 8) != 0) {
    return Status::Corruption(
        path + ": missing end marker (truncated or unfinalized journal)");
  }
  const uint64_t record_count = GetU64(footer + 8);
  const uint64_t meta_size = GetU64(footer + 16);
  const uint64_t body = d.size() - kJournalHeaderSize - kJournalFooterSize;
  if (record_count > body / kJournalRecordSize ||
      meta_size != body - record_count * kJournalRecordSize) {
    return Status::Corruption(path + ": section bounds do not add up");
  }
  reader->records_begin_ = d.data() + kJournalHeaderSize;
  reader->record_count_ = record_count;
  reader->meta_offset_ =
      kJournalHeaderSize + record_count * kJournalRecordSize;
  reader->meta_size_ = meta_size;

  snapshot::SectionReader meta(d.data() + reader->meta_offset_,
                               static_cast<size_t>(meta_size));
  JournalMeta& m = reader->meta_;
  m.num_pages = meta.U64();
  m.num_hosts = meta.U64();
  m.num_links = meta.U64();
  m.generator_seed = meta.U64();
  m.target_language = meta.Str();
  m.strategy = meta.Str();
  m.classifier = meta.Str();
  m.regime = meta.Str();
  m.batch_k = meta.U32();
  m.scorer_spec = meta.Str();
  const uint64_t names = meta.U64();
  for (uint64_t i = 0; i < names && meta.status().ok(); ++i) {
    m.scorer_names.push_back(meta.Str());
  }
  LSWC_RETURN_IF_ERROR(meta.Finish());
  return reader;
}

Status JournalReader::Verify() const {
  const std::string& d = data_;
  const char* footer = d.data() + d.size() - kJournalFooterSize;
  const uint32_t footer_crc = Crc32(footer, 36);
  if (footer_crc != GetU32(footer + 36)) {
    return Status::Corruption("footer CRC mismatch");
  }
  const uint32_t header_crc = Crc32(d.data(), kJournalHeaderSize);
  if (header_crc != GetU32(footer + 32)) {
    return Status::Corruption("header CRC mismatch");
  }
  const uint32_t records_crc =
      Crc32(records_begin_, record_count_ * kJournalRecordSize);
  if (records_crc != GetU32(footer + 28)) {
    return Status::Corruption("record section CRC mismatch");
  }
  const uint32_t meta_crc =
      Crc32(d.data() + meta_offset_, static_cast<size_t>(meta_size_));
  if (meta_crc != GetU32(footer + 24)) {
    return Status::Corruption("meta section CRC mismatch");
  }
  for (uint64_t i = 0; i < record_count_; ++i) {
    if (GetU64(records_begin_ + i * kJournalRecordSize) != i) {
      return Status::Corruption("sequence break at record " +
                                std::to_string(i) + " (seq " +
                                std::to_string(GetU64(
                                    records_begin_ + i * kJournalRecordSize)) +
                                ")");
    }
  }
  return Status::OK();
}

JournalIndex::JournalIndex(const JournalReader* reader) : reader_(reader) {
  const uint64_t n = reader->record_count();
  for (uint64_t i = 0; i < n; ++i) {
    const JournalRecord r = reader->record(i);
    switch (static_cast<JournalKind>(r.kind)) {
      case JournalKind::kSeed:
      case JournalKind::kEnqueue:
      case JournalKind::kRePush: {
        UrlRefs& refs = urls_[r.url];
        // The push that decided the fetch is the last one before the
        // fetch record; later pushes for an already-fetched URL cannot
        // occur (the engines drop links to crawled URLs).
        if (refs.fetch == kJournalNoRecord) refs.entered = i;
        break;
      }
      case JournalKind::kFetch:
        urls_[r.url].fetch = i;
        break;
      case JournalKind::kBatchSelect:
        urls_[r.url].select = i;
        break;
      case JournalKind::kScoreComponent:
        urls_[r.url].components.push_back(i);
        break;
      default:
        break;
    }
  }
}

const JournalIndex::UrlRefs* JournalIndex::Find(uint32_t url) const {
  const auto it = urls_.find(url);
  return it == urls_.end() ? nullptr : &it->second;
}

StatusOr<std::vector<JournalIndex::Hop>> JournalIndex::ReferrerChain(
    uint32_t url) const {
  std::vector<Hop> chain;
  std::unordered_set<uint32_t> visited;
  uint32_t current = url;
  while (current != kJournalNoLink) {
    if (!visited.insert(current).second) {
      return Status::Corruption("referrer cycle at url " +
                                std::to_string(current));
    }
    const UrlRefs* refs = Find(current);
    if (refs == nullptr) {
      if (chain.empty()) {
        return Status::NotFound("url " + std::to_string(url) +
                                " does not appear in the journal");
      }
      return Status::Corruption("referrer url " + std::to_string(current) +
                                " has no journal record");
    }
    chain.push_back(Hop{current, refs});
    if (refs->fetch != kJournalNoRecord) {
      current = reader_->record(refs->fetch).link;
    } else if (refs->entered != kJournalNoRecord) {
      current = reader_->record(refs->entered).link;
    } else {
      break;
    }
  }
  return chain;
}

}  // namespace lswc::obs
