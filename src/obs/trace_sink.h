#ifndef LSWC_OBS_TRACE_SINK_H_
#define LSWC_OBS_TRACE_SINK_H_

// Chrome trace-event JSON export (the format chrome://tracing and
// Perfetto load: https://ui.perfetto.dev, "Open trace file"). A sink
// buffers one run's events in memory — stage spans ("X" complete
// events, mirrored from the StageProfiler), instant markers ("i":
// re-push / drop / spill / checkpoint), and counter tracks ("C":
// frontier size at each sampling point) — and serializes them to one
// {"traceEvents": [...]} file. Multi-run harnesses give each run its
// own sink (own tid) and write all sinks into a single file, so a grid
// shows up as parallel tracks on one timeline.
//
// Event names must be string literals (or otherwise outlive the sink):
// the sink stores the pointer, not a copy — tracing must not allocate
// per event beyond the vector slot.
//
// Tracing is opt-in (--trace-out) and explicitly outside the overhead
// contract: a run with a sink attached pays for the buffering. The
// event cap bounds memory on runs larger than the trace is useful for;
// events past the cap are counted, not stored, and the count is
// reported in the file's metadata.

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace lswc::obs {

class TraceSink {
 public:
  struct Options {
    /// Events buffered before further events are dropped (counted).
    size_t max_events = 1'000'000;
  };

  explicit TraceSink(int tid = 0);
  TraceSink(int tid, Options options);

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  int tid() const { return tid_; }
  /// Label for this sink's track in the trace viewer (run name).
  void set_thread_name(std::string name) { thread_name_ = std::move(name); }

  /// A completed stage span ("X"), timestamps from MonotonicNowNs.
  void Span(const char* name, uint64_t start_ns, uint64_t end_ns);
  /// An instant marker ("i") stamped now.
  void Instant(const char* name);
  /// A counter-track sample ("C") stamped now.
  void CounterValue(const char* name, uint64_t value);

  size_t num_events() const { return events_.size(); }
  uint64_t dropped_events() const { return dropped_; }

  /// Writes `{"traceEvents": [...]}` with the events of every sink (in
  /// the given order) plus one thread_name metadata record per sink.
  static Status WriteFile(const std::string& path,
                          const std::vector<const TraceSink*>& sinks);
  Status WriteFile(const std::string& path) const;

 private:
  enum class Phase : uint8_t { kSpan, kInstant, kCounter };
  struct Event {
    const char* name;
    uint64_t ts_ns;
    uint64_t dur_or_value;  // Span duration / counter value; 0 for "i".
    Phase phase;
  };

  bool Admit();
  void AppendEventsJson(std::string* out, bool* first) const;

  int tid_;
  Options options_;
  std::string thread_name_;
  std::vector<Event> events_;
  uint64_t dropped_ = 0;
};

}  // namespace lswc::obs

#endif  // LSWC_OBS_TRACE_SINK_H_
