#include "obs/journal.h"

#include <cstddef>
#include <cstring>

#include "snapshot/section.h"
#include "util/crc32.h"

namespace lswc::obs {

namespace {

/// Records are buffered in memory and flushed (CRC + fwrite) in large
/// chunks, so the per-record cost on the crawl thread is packing only.
constexpr size_t kBufferCapacity = size_t{1} << 20;

// Explicit little-endian stores: the journal is byte-identical across
// hosts regardless of native endianness (compilers reduce these to
// plain stores on little-endian targets).
inline void PutU16(char* p, uint16_t v) {
  p[0] = static_cast<char>(v);
  p[1] = static_cast<char>(v >> 8);
}
inline void PutU32(char* p, uint32_t v) {
  p[0] = static_cast<char>(v);
  p[1] = static_cast<char>(v >> 8);
  p[2] = static_cast<char>(v >> 16);
  p[3] = static_cast<char>(v >> 24);
}
inline void PutU64(char* p, uint64_t v) {
  PutU32(p, static_cast<uint32_t>(v));
  PutU32(p + 4, static_cast<uint32_t>(v >> 32));
}
inline uint16_t GetU16(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint16_t>(u[0] | (u[1] << 8));
}
inline uint32_t GetU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(u[0]) | (static_cast<uint32_t>(u[1]) << 8) |
         (static_cast<uint32_t>(u[2]) << 16) |
         (static_cast<uint32_t>(u[3]) << 24);
}
inline uint64_t GetU64(const char* p) {
  return static_cast<uint64_t>(GetU32(p)) |
         (static_cast<uint64_t>(GetU32(p + 4)) << 32);
}

inline uint64_t DoubleBits(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

}  // namespace

// JournalRecord's natural in-memory layout coincides with the on-disk
// layout (every field lands on its alignment, no padding), so on
// little-endian targets pack/unpack is a single 48-byte copy — the
// fast path for the per-decision hot emission. Big-endian targets take
// the explicit per-field path.
static_assert(sizeof(JournalRecord) == kJournalRecordSize);
static_assert(offsetof(JournalRecord, kind) == 8);
static_assert(offsetof(JournalRecord, flags) == 9);
static_assert(offsetof(JournalRecord, extra) == 10);
static_assert(offsetof(JournalRecord, url) == 12);
static_assert(offsetof(JournalRecord, link) == 16);
static_assert(offsetof(JournalRecord, host) == 20);
static_assert(offsetof(JournalRecord, priority) == 24);
static_assert(offsetof(JournalRecord, depth) == 28);
static_assert(offsetof(JournalRecord, a) == 32);
static_assert(offsetof(JournalRecord, b) == 40);

#if defined(__BYTE_ORDER__) && __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
#define LSWC_JOURNAL_LE_FASTPATH 1
#endif

void PackJournalRecord(const JournalRecord& record, char* out) {
#ifdef LSWC_JOURNAL_LE_FASTPATH
  std::memcpy(out, &record, kJournalRecordSize);
#else
  PutU64(out, record.seq);
  out[8] = static_cast<char>(record.kind);
  out[9] = static_cast<char>(record.flags);
  PutU16(out + 10, record.extra);
  PutU32(out + 12, record.url);
  PutU32(out + 16, record.link);
  PutU32(out + 20, record.host);
  PutU32(out + 24, static_cast<uint32_t>(record.priority));
  PutU32(out + 28, record.depth);
  PutU64(out + 32, record.a);
  PutU64(out + 40, record.b);
#endif
}

JournalRecord UnpackJournalRecord(const char* data) {
  JournalRecord r;
#ifdef LSWC_JOURNAL_LE_FASTPATH
  std::memcpy(&r, data, kJournalRecordSize);
#else
  r.seq = GetU64(data);
  r.kind = static_cast<uint8_t>(data[8]);
  r.flags = static_cast<uint8_t>(data[9]);
  r.extra = GetU16(data + 10);
  r.url = GetU32(data + 12);
  r.link = GetU32(data + 16);
  r.host = GetU32(data + 20);
  r.priority = static_cast<int32_t>(GetU32(data + 24));
  r.depth = GetU32(data + 28);
  r.a = GetU64(data + 32);
  r.b = GetU64(data + 40);
#endif
  return r;
}

const char* JournalKindName(uint8_t kind) {
  switch (static_cast<JournalKind>(kind)) {
    case JournalKind::kSeed: return "seed";
    case JournalKind::kFetch: return "fetch";
    case JournalKind::kEnqueue: return "enqueue";
    case JournalKind::kRePush: return "repush";
    case JournalKind::kDrop: return "drop";
    case JournalKind::kBatchRound: return "batch-round";
    case JournalKind::kBatchSelect: return "batch-select";
    case JournalKind::kScoreComponent: return "score-component";
    case JournalKind::kSample: return "sample";
  }
  return "unknown";
}

StatusOr<std::unique_ptr<JournalWriter>> JournalWriter::Open(
    const std::string& path, JournalMeta meta) {
  if (path.empty()) {
    return Status::InvalidArgument("journal path is empty");
  }
  const std::string tmp = path + ".tmp";
  // "w+b": Finalize() re-reads the record section through the same
  // stream to compute the records CRC off the emission path.
  std::FILE* file = std::fopen(tmp.c_str(), "w+b");
  if (file == nullptr) {
    return Status::IoError("cannot create journal file " + tmp);
  }
  auto writer = std::unique_ptr<JournalWriter>(
      new JournalWriter(path, std::move(meta), file));
  char header[kJournalHeaderSize];
  std::memcpy(header, kJournalMagic, 8);
  PutU32(header + 8, kJournalVersion);
  PutU32(header + 12, kJournalRecordSize);
  PutU64(header + 16, 0);  // reserved
  writer->header_crc_ = Crc32(header, sizeof(header));
  if (std::fwrite(header, 1, sizeof(header), file) != sizeof(header)) {
    return Status::IoError("cannot write journal header to " + tmp);
  }
  return writer;
}

JournalWriter::JournalWriter(std::string path, JournalMeta meta,
                             std::FILE* file)
    : path_(std::move(path)), meta_(std::move(meta)), file_(file) {
  buffer_ = std::make_unique<char[]>(kBufferCapacity);
  if (meta_.num_pages != 0 && meta_.num_pages < (uint64_t{1} << 32)) {
    urls_.resize(static_cast<size_t>(meta_.num_pages));
  }
}

JournalWriter::~JournalWriter() {
  if (file_ != nullptr) {
    std::fclose(file_);
    std::remove((path_ + ".tmp").c_str());
  }
}

JournalWriter::UrlState& JournalWriter::State(uint32_t url) {
  if (url >= urls_.size()) urls_.resize(static_cast<size_t>(url) + 1);
  return urls_[url];
}

uint32_t JournalWriter::InternScorerName(const std::string& name) {
  const auto it = scorer_name_ids_.find(name);
  if (it != scorer_name_ids_.end()) return it->second;
  const auto id = static_cast<uint32_t>(meta_.scorer_names.size());
  meta_.scorer_names.push_back(name);
  scorer_name_ids_.emplace(name, id);
  return id;
}

void JournalWriter::Append(JournalRecord record) {
  record.seq = next_seq_++;
  if (buffer_used_ + kJournalRecordSize > kBufferCapacity) FlushBuffer();
  // Pack straight into the buffer tail — no intermediate stack copy.
  PackJournalRecord(record, buffer_.get() + buffer_used_);
  buffer_used_ += kJournalRecordSize;
}

void JournalWriter::FlushBuffer() {
  if (buffer_used_ == 0 || file_ == nullptr) return;
  if (std::fwrite(buffer_.get(), 1, buffer_used_, file_) != buffer_used_) {
    write_error_ = true;
  }
  buffer_used_ = 0;
}

uint32_t JournalWriter::ComputeRecordsCrc() {
  // One sequential pass over the record section, re-read through the
  // stream (still in the page cache). Checksumming at close keeps the
  // CRC entirely off the per-decision emission path, which matters on
  // workloads whose whole crawl step costs tens of nanoseconds.
  uint64_t remaining = next_seq_ * kJournalRecordSize;
  uint32_t crc = 0;
  if (std::fseek(file_, static_cast<long>(kJournalHeaderSize), SEEK_SET) !=
      0) {
    write_error_ = true;
    return crc;
  }
  std::vector<char> chunk(kBufferCapacity);
  while (remaining > 0) {
    const size_t want = remaining < chunk.size()
                            ? static_cast<size_t>(remaining)
                            : chunk.size();
    if (std::fread(chunk.data(), 1, want, file_) != want) {
      write_error_ = true;
      return crc;
    }
    crc = Crc32Update(crc, chunk.data(), want);
    remaining -= want;
  }
  return crc;
}

void JournalWriter::Seed(uint32_t url, int32_t priority) {
  UrlState& state = State(url);
  state.referrer = kJournalNoLink;
  state.depth = 0;
  state.priority = priority;
  JournalRecord r;
  r.kind = static_cast<uint8_t>(JournalKind::kSeed);
  r.url = url;
  r.host = HostOf(url);
  r.priority = priority;
  Append(r);
}

void JournalWriter::Link(bool repush, uint32_t url, uint32_t parent,
                         int32_t priority, uint8_t annotation,
                         bool parent_relevant) {
  // The parent is mid-fetch, so its own depth/referrer are final.
  const uint32_t depth =
      parent < urls_.size() ? urls_[parent].depth + 1 : 1;
  UrlState& state = State(url);
  state.referrer = parent;
  state.depth = depth;
  state.priority = priority;
  JournalRecord r;
  r.kind = static_cast<uint8_t>(repush ? JournalKind::kRePush
                                       : JournalKind::kEnqueue);
  r.url = url;
  r.link = parent;
  r.host = HostOf(url);
  r.priority = priority;
  r.depth = depth;
  r.extra = annotation;
  r.a = HostOf(parent);
  if (parent_relevant) r.flags |= kJournalFlagParentRelevant;
  if (r.host != r.a) r.flags |= kJournalFlagCrossHost;
  Append(r);
}

void JournalWriter::Drop(uint32_t url, uint32_t parent, uint16_t reason,
                         bool parent_relevant) {
  JournalRecord r;
  r.kind = static_cast<uint8_t>(JournalKind::kDrop);
  r.url = url;
  r.link = parent;
  r.host = HostOf(url);
  r.depth = parent < urls_.size() ? urls_[parent].depth + 1 : 1;
  r.extra = reason;
  r.a = HostOf(parent);
  if (parent_relevant) r.flags |= kJournalFlagParentRelevant;
  if (r.host != r.a) r.flags |= kJournalFlagCrossHost;
  Append(r);
}

void JournalWriter::Fetch(uint32_t url, bool ok, bool truly_relevant,
                          bool judged_relevant, uint64_t frontier_size,
                          uint64_t pages_crawled) {
  const UrlState& state = State(url);
  JournalRecord r;
  r.kind = static_cast<uint8_t>(JournalKind::kFetch);
  r.url = url;
  r.link = state.referrer;
  r.host = HostOf(url);
  r.priority = state.priority;
  r.depth = state.depth;
  r.a = frontier_size;
  r.b = pages_crawled;
  if (ok) r.flags |= kJournalFlagOk;
  if (truly_relevant) r.flags |= kJournalFlagTrulyRelevant;
  if (judged_relevant) r.flags |= kJournalFlagJudgedRelevant;
  Append(r);
}

void JournalWriter::BatchRound(uint64_t pending_before, uint64_t selected) {
  JournalRecord r;
  r.kind = static_cast<uint8_t>(JournalKind::kBatchRound);
  r.a = ++batch_rounds_;
  r.b = selected;
  r.depth = pending_before > UINT32_MAX
                ? UINT32_MAX
                : static_cast<uint32_t>(pending_before);
  Append(r);
}

void JournalWriter::BatchSelect(uint32_t url, uint32_t rank, double score,
                                uint64_t entry_seq,
                                uint16_t component_count) {
  const UrlState& state = State(url);
  JournalRecord r;
  r.kind = static_cast<uint8_t>(JournalKind::kBatchSelect);
  r.url = url;
  r.link = state.referrer;
  r.host = HostOf(url);
  r.priority = static_cast<int32_t>(rank);
  r.depth = state.depth;
  r.a = DoubleBits(score);
  r.b = entry_seq;
  r.extra = component_count;
  Append(r);
}

void JournalWriter::ScoreComponent(uint32_t url, uint16_t index,
                                   const std::string& scorer_name,
                                   double weighted, double raw) {
  JournalRecord r;
  r.kind = static_cast<uint8_t>(JournalKind::kScoreComponent);
  r.url = url;
  r.link = InternScorerName(scorer_name);
  r.host = HostOf(url);
  r.extra = index;
  r.a = DoubleBits(weighted);
  r.b = DoubleBits(raw);
  Append(r);
}

void JournalWriter::Sample(uint64_t frontier_size, uint64_t pages_crawled,
                           bool final_sample) {
  JournalRecord r;
  r.kind = static_cast<uint8_t>(JournalKind::kSample);
  r.a = frontier_size;
  r.b = pages_crawled;
  if (final_sample) r.flags |= kJournalFlagFinalSample;
  Append(r);
}

Status JournalWriter::Finalize() {
  if (finalized_) {
    return Status::FailedPrecondition("journal already finalized");
  }
  FlushBuffer();
  records_crc_ = ComputeRecordsCrc();
  if (std::fseek(file_, 0, SEEK_END) != 0) write_error_ = true;

  snapshot::SectionWriter meta;
  meta.U64(meta_.num_pages);
  meta.U64(meta_.num_hosts);
  meta.U64(meta_.num_links);
  meta.U64(meta_.generator_seed);
  meta.Str(meta_.target_language);
  meta.Str(meta_.strategy);
  meta.Str(meta_.classifier);
  meta.Str(meta_.regime);
  meta.U32(meta_.batch_k);
  meta.Str(meta_.scorer_spec);
  meta.U64(meta_.scorer_names.size());
  for (const std::string& name : meta_.scorer_names) meta.Str(name);
  const uint32_t meta_crc = Crc32(meta.data().data(), meta.size());
  if (std::fwrite(meta.data().data(), 1, meta.size(), file_) != meta.size()) {
    write_error_ = true;
  }

  char footer[kJournalFooterSize];
  std::memcpy(footer, kJournalEndMagic, 8);
  PutU64(footer + 8, next_seq_);
  PutU64(footer + 16, meta.size());
  PutU32(footer + 24, meta_crc);
  PutU32(footer + 28, records_crc_);
  PutU32(footer + 32, header_crc_);
  PutU32(footer + 36, Crc32(footer, 36));
  PutU64(footer + 40, 0);  // reserved
  if (std::fwrite(footer, 1, sizeof(footer), file_) != sizeof(footer)) {
    write_error_ = true;
  }

  const bool close_ok = std::fclose(file_) == 0;
  file_ = nullptr;
  finalized_ = true;
  const std::string tmp = path_ + ".tmp";
  if (write_error_ || !close_ok) {
    std::remove(tmp.c_str());
    return Status::IoError("journal write to " + tmp + " failed");
  }
  if (std::rename(tmp.c_str(), path_.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("cannot rename " + tmp + " to " + path_);
  }
  return Status::OK();
}

}  // namespace lswc::obs
