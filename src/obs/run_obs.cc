#include "obs/run_obs.h"

#include <cstdlib>
#include <string_view>
#include <utility>

namespace lswc::obs {

bool ObsDisabledByEnv() {
  const char* value = std::getenv("LSWC_OBS_DISABLED");
  if (value == nullptr) return false;
  const std::string_view v = value;
  return !v.empty() && v != "0";
}

RunObs::RunObs() {
#ifdef LSWC_OBS_DISABLED
  enabled = false;
#else
  enabled = !ObsDisabledByEnv();
#endif
  profiler.set_enabled(enabled);
}

void RunObs::EnableTrace(int tid, std::string thread_name) {
  EnableTrace(tid, std::move(thread_name), TraceSink::Options());
}

void RunObs::EnableTrace(int tid, std::string thread_name,
                         TraceSink::Options options) {
  if (!enabled) return;
  trace = std::make_unique<TraceSink>(tid, options);
  trace->set_thread_name(std::move(thread_name));
  profiler.AttachTrace(trace.get());
}

void RunObs::MergeFrom(const RunObs& other) {
  registry.Merge(other.registry);
  profiler.Merge(other.profiler);
}

void RunObs::CollectTraceSinks(std::vector<const TraceSink*>* out) const {
  if (trace != nullptr) out->push_back(trace.get());
  for (const auto& sink : shard_traces) {
    if (sink != nullptr) out->push_back(sink.get());
  }
}

std::string RunObs::StatsJson(bool include_times) const {
  std::string out = "{\n";
  out += "  \"stages\": " + profiler.ToJson(include_times) + ",\n";
  registry.AppendJsonBody(&out, "  ");
  out += "}";
  return out;
}

}  // namespace lswc::obs
