#include "obs/telemetry.h"

#include <algorithm>
#include <utility>

#include "util/string_util.h"

namespace lswc::obs {

bool TelemetryBoard::TryPublish(SnapshotPtr snapshot) {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  front_ = std::move(snapshot);
  publishes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void TelemetryBoard::Publish(SnapshotPtr snapshot) {
  std::lock_guard<std::mutex> lock(mu_);
  front_ = std::move(snapshot);
  publishes_.fetch_add(1, std::memory_order_relaxed);
}

SnapshotPtr TelemetryBoard::Read() const {
  std::lock_guard<std::mutex> lock(mu_);
  return front_;
}

namespace {

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StringPrintf("\\u%04x", c);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void AppendU64Field(std::string* out, const char* key, uint64_t value,
                    bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += StringPrintf("\"%s\": %llu", key,
                       static_cast<unsigned long long>(value));
}

void AppendDoubleField(std::string* out, const char* key, double value,
                       bool* first) {
  if (!*first) *out += ", ";
  *first = false;
  *out += StringPrintf("\"%s\": %.6g", key, value);
}

}  // namespace

std::string RenderSnapshotJson(const TelemetrySnapshot& s) {
  std::string out = "{";
  out += "\"run\": ";
  AppendJsonString(&out, s.run);
  out += ", \"phase\": ";
  AppendJsonString(&out, s.phase);
  bool first = false;
  AppendU64Field(&out, "seq", s.seq, &first);
  AppendU64Field(&out, "now_ns", s.now_ns, &first);
  AppendU64Field(&out, "pages_crawled", s.pages_crawled, &first);
  AppendU64Field(&out, "relevant_crawled", s.relevant_crawled, &first);
  AppendU64Field(&out, "frontier_size", s.frontier_size, &first);
  AppendDoubleField(&out, "harvest_pct", s.harvest_pct, &first);
  AppendDoubleField(&out, "coverage_pct", s.coverage_pct, &first);
  AppendDoubleField(&out, "pages_per_sec", s.pages_per_sec, &first);
  AppendU64Field(&out, "peak_rss_bytes", s.peak_rss_bytes, &first);

  out += ", \"stages\": {";
  bool first_stage = true;
  for (const StageStat& stage : s.stages) {
    if (!first_stage) out += ", ";
    first_stage = false;
    out += StringPrintf("\"%s\": {\"calls\": %llu, \"total_ns\": %llu}",
                        stage.name,
                        static_cast<unsigned long long>(stage.calls),
                        static_cast<unsigned long long>(stage.total_ns));
  }
  out += "}";

  out += ", \"metrics\": {";
  bool first_metric = true;
  for (const MetricValue& m : s.metrics) {
    if (!first_metric) out += ", ";
    first_metric = false;
    AppendJsonString(&out, m.name);
    switch (m.kind) {
      case MetricValue::Kind::kCounter:
        out += StringPrintf(": %llu",
                            static_cast<unsigned long long>(m.value));
        break;
      case MetricValue::Kind::kGauge:
        out += StringPrintf(": {\"value\": %llu, \"max\": %llu}",
                            static_cast<unsigned long long>(m.value),
                            static_cast<unsigned long long>(m.max_seen));
        break;
      case MetricValue::Kind::kHistogram: {
        out += StringPrintf(": {\"count\": %llu, \"sum\": %llu, "
                            "\"buckets\": [",
                            static_cast<unsigned long long>(m.count),
                            static_cast<unsigned long long>(m.sum));
        bool first_bucket = true;
        for (const auto& [lower, count] : m.buckets) {
          if (!first_bucket) out += ", ";
          first_bucket = false;
          out += StringPrintf("[%llu, %llu]",
                              static_cast<unsigned long long>(lower),
                              static_cast<unsigned long long>(count));
        }
        out += "]}";
        break;
      }
    }
  }
  out += "}";

  out += ", \"shards\": [";
  bool first_shard = true;
  for (const ShardState& shard : s.shards) {
    if (!first_shard) out += ", ";
    first_shard = false;
    out += StringPrintf(
        "{\"shard\": %u, \"pending\": %llu, \"pages_crawled\": %llu}",
        shard.shard, static_cast<unsigned long long>(shard.pending),
        static_cast<unsigned long long>(shard.pages_crawled));
  }
  out += "]}";
  return out;
}

std::string RenderProgressJson(const std::vector<SnapshotPtr>& snapshots) {
  std::string out = "{\"process\": {";
  bool first = true;
  uint64_t peak_rss = 0;
  uint64_t now_ns = 0;
  for (const SnapshotPtr& s : snapshots) {
    if (s == nullptr) continue;
    peak_rss = std::max(peak_rss, s->peak_rss_bytes);
    now_ns = std::max(now_ns, s->now_ns);
  }
  AppendU64Field(&out, "peak_rss_bytes", peak_rss, &first);
  AppendU64Field(&out, "now_ns", now_ns, &first);
  out += "}, \"runs\": [";
  bool first_run = true;
  for (const SnapshotPtr& s : snapshots) {
    if (s == nullptr) continue;
    if (!first_run) out += ", ";
    first_run = false;
    out += RenderSnapshotJson(*s);
  }
  out += "]}\n";
  return out;
}

std::string FormatProgressLine(const TelemetrySnapshot& s) {
  std::string top;
  {
    // Largest stages by time share, matching StageProfiler::TopStagesLine.
    uint64_t total = 0;
    for (const StageStat& stage : s.stages) total += stage.total_ns;
    std::vector<StageStat> sorted(s.stages);
    std::sort(sorted.begin(), sorted.end(),
              [](const StageStat& a, const StageStat& b) {
                return a.total_ns > b.total_ns;
              });
    int emitted = 0;
    for (const StageStat& stage : sorted) {
      if (stage.total_ns == 0 || emitted == 3) break;
      if (!top.empty()) top += " ";
      top += StringPrintf(
          "%s %.0f%%", stage.name,
          100.0 * static_cast<double>(stage.total_ns) /
              static_cast<double>(total));
      ++emitted;
    }
  }
  std::string line = StringPrintf(
      "[%s] %llu pages | %.0f pages/sec | harvest %.1f%% | queue %llu",
      s.run.c_str(), static_cast<unsigned long long>(s.pages_crawled),
      s.pages_per_sec, s.harvest_pct,
      static_cast<unsigned long long>(s.frontier_size));
  if (!top.empty()) line += " | " + top;
  return line;
}

std::string RenderTopText(const std::vector<SnapshotPtr>& snapshots) {
  uint64_t peak_rss = 0;
  size_t runs = 0;
  for (const SnapshotPtr& s : snapshots) {
    if (s == nullptr) continue;
    ++runs;
    peak_rss = std::max(peak_rss, s->peak_rss_bytes);
  }
  std::string out = StringPrintf(
      "lswc telemetry | %zu run%s | peak rss %.1f MiB\n", runs,
      runs == 1 ? "" : "s",
      static_cast<double>(peak_rss) / (1024.0 * 1024.0));
  for (const SnapshotPtr& s : snapshots) {
    if (s == nullptr) continue;
    out += FormatProgressLine(*s);
    out += StringPrintf(" | %s #%llu\n", s->phase.c_str(),
                        static_cast<unsigned long long>(s->seq));
    for (const ShardState& shard : s->shards) {
      out += StringPrintf("  shard %u: pending %llu | crawled %llu\n",
                          shard.shard,
                          static_cast<unsigned long long>(shard.pending),
                          static_cast<unsigned long long>(shard.pages_crawled));
    }
  }
  return out;
}

}  // namespace lswc::obs
