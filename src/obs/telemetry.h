#ifndef LSWC_OBS_TELEMETRY_H_
#define LSWC_OBS_TELEMETRY_H_

// The live progress document and its publication channel. A running
// crawl (or dataset generation/verification) periodically captures a
// TelemetrySnapshot — everything an attached operator wants to see:
// pages/sec, harvest rate, frontier depth, per-shard pending sizes,
// stage time shares, registry metrics, peak RSS — and publishes it on a
// TelemetryBoard. The TelemetryServer thread reads boards and renders
// the snapshots as JSON (/progress) and Prometheus text (/metrics);
// the --progress-every stderr line is rendered from the very same
// snapshot (FormatProgressLine), so the two views can never disagree.
//
// Publication contract (the "double buffer"): the publisher builds each
// snapshot privately — the crawl loop never formats or allocates under
// any lock — then swaps it in with a *try*-lock, so the crawl thread
// never blocks on a reader; if the server happens to be mid-copy the
// publish is skipped and the next cadence tick retries. Readers take
// the mutex for the duration of one shared_ptr copy. Publishing costs
// the crawl loop nothing between cadence ticks (one branch per fetch).

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics_registry.h"
#include "obs/stage_profiler.h"

namespace lswc::obs {

// MetricValue (the by-value registry copy placed in each snapshot)
// lives in metrics_registry.h next to MetricsRegistry::SnapshotValues.

/// One crawl stage's accumulated calls and (extrapolated) wall time.
struct StageStat {
  const char* name = "";  // StageName literal; stable for process life.
  uint64_t calls = 0;
  uint64_t total_ns = 0;
};

/// One shard's live state in a sharded crawl.
struct ShardState {
  uint32_t shard = 0;
  uint64_t pending = 0;        // Frontier slice size.
  uint64_t pages_crawled = 0;  // Pages committed for this shard's hosts.
};

/// The progress document. Everything here is a copy: a snapshot stays
/// valid (and immutable) for as long as any reader holds the pointer.
struct TelemetrySnapshot {
  std::string run;          // Run label ("soft", "fig3 cell", ...).
  std::string phase;        // "crawl", "generate", or "verify".
  uint64_t seq = 0;         // Publish sequence, 1-based.
  uint64_t now_ns = 0;      // MonotonicNowNs at capture.
  uint64_t pages_crawled = 0;
  uint64_t relevant_crawled = 0;
  uint64_t frontier_size = 0;
  double harvest_pct = 0.0;
  double coverage_pct = 0.0;
  /// Throughput since the previous publish (0 on the first).
  double pages_per_sec = 0.0;
  uint64_t peak_rss_bytes = 0;
  std::vector<StageStat> stages;
  std::vector<MetricValue> metrics;
  std::vector<ShardState> shards;
};

using SnapshotPtr = std::shared_ptr<const TelemetrySnapshot>;

/// The publication point between one run's publisher and any number of
/// server-thread readers.
class TelemetryBoard {
 public:
  /// Installs `snapshot` as the latest document. Never blocks: when a
  /// reader holds the lock the publish is dropped and false is
  /// returned (the publisher's next cadence tick republishes).
  bool TryPublish(SnapshotPtr snapshot);

  /// Installs `snapshot` unconditionally, waiting for any reader to
  /// finish its shared_ptr copy (bounded by Read's critical section).
  /// For publishes with no retry behind them — the end-of-run tick —
  /// where a dropped TryPublish would leave the board stale forever.
  void Publish(SnapshotPtr snapshot);

  /// The latest published document; null before the first publish.
  SnapshotPtr Read() const;

  /// Publishes seen by Read (dropped publishes excluded).
  uint64_t publishes() const { return publishes_.load(std::memory_order_relaxed); }

 private:
  mutable std::mutex mu_;
  SnapshotPtr front_;
  std::atomic<uint64_t> publishes_{0};
};

/// Serializes one snapshot as a JSON object (sorted, deterministic for
/// deterministic inputs; wall-time fields are of course wall time).
std::string RenderSnapshotJson(const TelemetrySnapshot& snapshot);

/// The /progress document: `{"process": {...}, "runs": [...]}` over
/// every board that has published. Boards without a snapshot yet are
/// skipped.
std::string RenderProgressJson(const std::vector<SnapshotPtr>& snapshots);

/// The one-line stderr progress summary rendered *from* the snapshot —
/// the --progress-every line and lswc_top's headline share this view
/// of the document:
///
///   [soft] 40000 pages | 812345 pages/sec | harvest 23.1% | queue
///   51234 | fetch 62% classify 21% strategy 9%
std::string FormatProgressLine(const TelemetrySnapshot& snapshot);

/// The /top document: a plain-text one-screen summary (process header,
/// then one FormatProgressLine per run with its per-shard breakdown).
/// Rendered server-side so lswc_top is a dumb terminal: every attached
/// viewer shows exactly what the process itself would log.
std::string RenderTopText(const std::vector<SnapshotPtr>& snapshots);

}  // namespace lswc::obs

#endif  // LSWC_OBS_TELEMETRY_H_
