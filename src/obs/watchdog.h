#ifndef LSWC_OBS_WATCHDOG_H_
#define LSWC_OBS_WATCHDOG_H_

// Stall detection for long-running crawls. The crawl loop bumps a
// heartbeat counter (one relaxed atomic increment — no clock read) on
// its publish cadence; the watchdog thread polls it and fires when it
// has not moved within the configured deadline. Firing dumps every
// registered flight recorder plus a caller-supplied attribution
// section (per-shard stage state) to the dump path, and optionally
// aborts the process so CI catches hangs as failures instead of
// timeouts.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

namespace lswc::obs {

class StallWatchdog {
 public:
  struct Options {
    /// The counter the crawl loop bumps; any relaxed increment counts
    /// as a sign of life. Must outlive the watchdog. Null disables.
    const std::atomic<uint64_t>* heartbeat = nullptr;
    /// Fire when the heartbeat is unchanged for this long. 0 disables.
    uint64_t deadline_ns = 0;
    /// abort() after dumping (the crash handler then re-dumps under its
    /// SIGABRT path; the stall dump below is the authoritative one).
    bool abort_on_fire = false;
    /// Where to write the stall dump; empty means stderr.
    std::string dump_path;
    /// Called with the dump fd after the flight recorders are written —
    /// the hook for per-shard stage attribution. Runs on the watchdog
    /// thread (not signal context), so it may allocate, but it must not
    /// take locks a stalled crawl thread could be holding.
    std::function<void(int fd)> attribution;
  };

  explicit StallWatchdog(Options options);
  ~StallWatchdog();  // Stops the thread if still running.
  StallWatchdog(const StallWatchdog&) = delete;
  StallWatchdog& operator=(const StallWatchdog&) = delete;

  /// Starts the polling thread. No-op when deadline_ns is 0.
  void Start();
  /// Joins the polling thread. Safe to call twice or without Start.
  void Stop();

  bool fired() const { return fired_.load(std::memory_order_acquire); }

 private:
  void Loop();
  void Fire(uint64_t stalled_ns);

  const Options options_;
  std::atomic<bool> fired_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace lswc::obs

#endif  // LSWC_OBS_WATCHDOG_H_
