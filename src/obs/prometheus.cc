#include "obs/prometheus.h"

#include <algorithm>
#include <map>

#include "util/build_info.h"
#include "util/string_util.h"

namespace lswc::obs {

std::string PromMetricName(std::string_view raw, MetricValue::Kind kind) {
  std::string name = "lswc_";
  for (char c : raw) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    name.push_back(ok ? c : '_');
  }
  if (kind == MetricValue::Kind::kCounter &&
      !(name.size() >= 6 && name.compare(name.size() - 6, 6, "_total") == 0)) {
    name += "_total";
  }
  return name;
}

std::string PromEscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

/// One exposition family being assembled: its TYPE plus sample blocks.
/// Each block is (sort key, rendered text); blocks are sorted by key
/// before emission, which orders samples by label set and makes the
/// output independent of snapshot insertion order. A scalar sample is
/// one line per block; a histogram's le/_sum/_count lines form a single
/// block so sorting cannot interleave two runs' cumulative buckets.
struct Family {
  const char* type = "gauge";
  std::vector<std::pair<std::string, std::string>> blocks;
};

using FamilyMap = std::map<std::string, Family>;

Family* Fam(FamilyMap* fams, std::string name, const char* type) {
  Family* f = &(*fams)[std::move(name)];
  f->type = type;
  return f;
}

std::string RunLabel(const TelemetrySnapshot& s) {
  return StringPrintf("run=\"%s\"", PromEscapeLabelValue(s.run).c_str());
}

void AddU64(FamilyMap* fams, const std::string& name, const char* type,
            const std::string& labels, uint64_t value) {
  std::string line =
      StringPrintf("%s{%s} %llu\n", name.c_str(), labels.c_str(),
                   static_cast<unsigned long long>(value));
  Fam(fams, name, type)->blocks.emplace_back(line, line);
}

void AddDouble(FamilyMap* fams, const std::string& name, const char* type,
               const std::string& labels, double value) {
  std::string line = StringPrintf("%s{%s} %.17g\n", name.c_str(),
                                  labels.c_str(), value);
  Fam(fams, name, type)->blocks.emplace_back(line, line);
}

/// Emits a log2 histogram as cumulative le buckets. Bucket with lower
/// bound L holds integer samples in [L, 2L) (zeros for L == 0), so the
/// exact inclusive upper bound is 2L-1 (0 for the zero bucket) — le
/// values are exact, not approximations of the log2 edges.
void AddHistogram(FamilyMap* fams, const std::string& name,
                  const std::string& labels, const MetricValue& m) {
  std::string block;
  uint64_t cumulative = 0;
  for (const auto& [lower, count] : m.buckets) {
    cumulative += count;
    const uint64_t le = lower == 0 ? 0 : 2 * lower - 1;
    block += StringPrintf(
        "%s_bucket{%s,le=\"%llu\"} %llu\n", name.c_str(), labels.c_str(),
        static_cast<unsigned long long>(le),
        static_cast<unsigned long long>(cumulative));
  }
  block += StringPrintf(
      "%s_bucket{%s,le=\"+Inf\"} %llu\n", name.c_str(), labels.c_str(),
      static_cast<unsigned long long>(m.count));
  block += StringPrintf("%s_sum{%s} %llu\n", name.c_str(), labels.c_str(),
                        static_cast<unsigned long long>(m.sum));
  block += StringPrintf("%s_count{%s} %llu\n", name.c_str(), labels.c_str(),
                        static_cast<unsigned long long>(m.count));
  Fam(fams, name, "histogram")->blocks.emplace_back(labels, block);
}

void AddSnapshot(FamilyMap* fams, const TelemetrySnapshot& s) {
  const std::string run = RunLabel(s);

  AddU64(fams, "lswc_pages_crawled_total", "counter", run, s.pages_crawled);
  AddU64(fams, "lswc_relevant_crawled_total", "counter", run,
         s.relevant_crawled);
  AddU64(fams, "lswc_frontier_size", "gauge", run, s.frontier_size);
  AddDouble(fams, "lswc_harvest_ratio", "gauge", run, s.harvest_pct / 100.0);
  AddDouble(fams, "lswc_coverage_ratio", "gauge", run,
            s.coverage_pct / 100.0);
  AddDouble(fams, "lswc_pages_per_second", "gauge", run, s.pages_per_sec);
  AddU64(fams, "lswc_peak_rss_bytes", "gauge", run, s.peak_rss_bytes);
  AddU64(fams, "lswc_telemetry_snapshot_seq", "gauge", run, s.seq);

  for (const StageStat& stage : s.stages) {
    const std::string labels = StringPrintf(
        "%s,stage=\"%s\"", run.c_str(),
        PromEscapeLabelValue(stage.name).c_str());
    AddU64(fams, "lswc_stage_calls_total", "counter", labels, stage.calls);
    AddU64(fams, "lswc_stage_time_ns_total", "counter", labels,
           stage.total_ns);
  }

  for (const ShardState& shard : s.shards) {
    const std::string labels =
        StringPrintf("%s,shard=\"%u\"", run.c_str(), shard.shard);
    AddU64(fams, "lswc_shard_pending", "gauge", labels, shard.pending);
    AddU64(fams, "lswc_shard_pages_crawled_total", "counter", labels,
           shard.pages_crawled);
  }

  for (const MetricValue& m : s.metrics) {
    const std::string name = PromMetricName(m.name, m.kind);
    switch (m.kind) {
      case MetricValue::Kind::kCounter:
        AddU64(fams, name, "counter", run, m.value);
        break;
      case MetricValue::Kind::kGauge:
        AddU64(fams, name, "gauge", run, m.value);
        AddU64(fams, name + "_max", "gauge", run, m.max_seen);
        break;
      case MetricValue::Kind::kHistogram:
        AddHistogram(fams, name, run, m);
        break;
    }
  }
}

}  // namespace

std::string RenderPrometheus(const std::vector<SnapshotPtr>& snapshots) {
  FamilyMap fams;
  // Build provenance, the conventional info-gauge idiom: a constant 1
  // whose labels carry the identity of the serving binary.
  const util::BuildInfo& build = util::GetBuildInfo();
  AddU64(&fams, "lswc_build_info", "gauge",
         StringPrintf("version=\"%s\",git_sha=\"%s\",build_type=\"%s\"",
                      PromEscapeLabelValue(build.version).c_str(),
                      PromEscapeLabelValue(build.git_sha).c_str(),
                      PromEscapeLabelValue(build.build_type).c_str()),
         1);
  for (const SnapshotPtr& s : snapshots) {
    if (s != nullptr) AddSnapshot(&fams, *s);
  }
  std::string out;
  for (auto& [name, family] : fams) {
    out += StringPrintf("# TYPE %s %s\n", name.c_str(), family.type);
    std::sort(family.blocks.begin(), family.blocks.end());
    for (const auto& [key, block] : family.blocks) out += block;
  }
  return out;
}

}  // namespace lswc::obs
