#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <unistd.h>

#include <mutex>

#include "obs/stage_profiler.h"

namespace lswc::obs {

namespace {

void CopyTruncated(char* dst, size_t dst_len, const char* src) {
  if (src == nullptr) {
    dst[0] = '\0';
    return;
  }
  size_t i = 0;
  for (; i + 1 < dst_len && src[i] != '\0'; ++i) dst[i] = src[i];
  dst[i] = '\0';
}

/// write() the full buffer, retrying on short writes. Signal-safe.
void WriteAll(int fd, const char* buf, size_t len) {
  while (len > 0) {
    const ssize_t n = ::write(fd, buf, len);
    if (n <= 0) return;  // Nothing sensible to do from a dump path.
    buf += n;
    len -= static_cast<size_t>(n);
  }
}

void WriteStr(int fd, const char* s) { WriteAll(fd, s, ::strlen(s)); }

/// Hand-rolled uint64 -> decimal; returns chars written. Signal-safe.
size_t FormatU64(uint64_t value, char* out) {
  char tmp[20];
  size_t n = 0;
  do {
    tmp[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  for (size_t i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
  return n;
}

void WriteU64(int fd, uint64_t value) {
  char buf[20];
  WriteAll(fd, buf, FormatU64(value, buf));
}

}  // namespace

FlightRecorder::FlightRecorder(size_t capacity) : slots_(capacity) {}

void FlightRecorder::Record(const char* kind, const char* detail, uint64_t a,
                            uint64_t b) {
  if (slots_.empty()) return;
  const uint64_t seq = next_.fetch_add(1, std::memory_order_relaxed);
  Slot& slot = slots_[seq % slots_.size()];
  // Mark the slot in-flight (commit 0) so a concurrent dump skips it
  // rather than reading half-updated fields, then fill and commit.
  slot.commit.store(0, std::memory_order_release);
  slot.event.seq = seq;
  slot.event.ns = MonotonicNowNs();
  CopyTruncated(slot.event.kind, FlightEvent::kKindLen, kind);
  CopyTruncated(slot.event.detail, FlightEvent::kDetailLen, detail);
  slot.event.a = a;
  slot.event.b = b;
  slot.commit.store(seq + 1, std::memory_order_release);
}

void FlightRecorder::DumpTo(int fd) const {
  const uint64_t next = next_.load(std::memory_order_acquire);
  if (next == 0) return;
  const uint64_t window = slots_.size();
  const uint64_t first = next > window ? next - window : 0;
  for (uint64_t seq = first; seq < next; ++seq) {
    const Slot& slot = slots_[seq % window];
    const uint64_t commit = slot.commit.load(std::memory_order_acquire);
    if (commit != seq + 1) {
      // Raced with the writer (slot already holds a newer event or is
      // mid-write): note the gap instead of printing torn fields.
      WriteStr(fd, "FLIGHT torn seq=");
      WriteU64(fd, seq);
      WriteStr(fd, "\n");
      continue;
    }
    const FlightEvent& e = slot.event;
    WriteStr(fd, "FLIGHT seq=");
    WriteU64(fd, e.seq);
    WriteStr(fd, " ns=");
    WriteU64(fd, e.ns);
    WriteStr(fd, " kind=");
    WriteStr(fd, e.kind);
    WriteStr(fd, " a=");
    WriteU64(fd, e.a);
    WriteStr(fd, " b=");
    WriteU64(fd, e.b);
    WriteStr(fd, " detail=");
    WriteStr(fd, e.detail);
    WriteStr(fd, "\n");
    // Re-check the commit word: if the writer lapped us mid-read the
    // printed line may mix two events — flag it.
    if (slot.commit.load(std::memory_order_acquire) != seq + 1) {
      WriteStr(fd, "FLIGHT torn seq=");
      WriteU64(fd, seq);
      WriteStr(fd, "\n");
    }
  }
}

std::vector<FlightEvent> FlightRecorder::Events() const {
  std::vector<FlightEvent> out;
  const uint64_t next = next_.load(std::memory_order_acquire);
  const uint64_t window = slots_.size();
  if (next == 0 || window == 0) return out;
  const uint64_t first = next > window ? next - window : 0;
  for (uint64_t seq = first; seq < next; ++seq) {
    const Slot& slot = slots_[seq % window];
    if (slot.commit.load(std::memory_order_acquire) != seq + 1) continue;
    out.push_back(slot.event);
  }
  return out;
}

namespace {

// Process-wide recorder table. Fixed-size so the dump path never
// allocates; registration beyond the table is dropped (a dump missing
// one recorder beats a crash handler that cannot run).
constexpr size_t kMaxRecorders = 64;
std::mutex g_register_mu;
std::atomic<FlightRecorder*> g_recorders[kMaxRecorders];

char g_dump_path[512] = {};

void CrashDump(int sig) {
  int fd = STDERR_FILENO;
  bool opened = false;
  if (g_dump_path[0] != '\0') {
    // Append: SetFlightDumpPath truncated the file once, and the stall
    // watchdog may already have written its dump to the same file —
    // the crash dump must not clobber it.
    const int file_fd =
        ::open(g_dump_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (file_fd >= 0) {
      fd = file_fd;
      opened = true;
    }
  }
  const char* reason = sig == SIGSEGV  ? "SIGSEGV"
                       : sig == SIGABRT ? "SIGABRT"
                                        : "signal";
  DumpAllFlightRecorders(fd, reason);
  if (opened) ::close(fd);
}

void CrashHandler(int sig) {
  CrashDump(sig);
  // SA_RESETHAND restored the default disposition; re-raise so the
  // process still dies with the original signal (and core dumps).
  ::raise(sig);
}

}  // namespace

void RegisterFlightRecorder(FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(g_register_mu);
  for (auto& slot : g_recorders) {
    if (slot.load(std::memory_order_relaxed) == nullptr) {
      slot.store(recorder, std::memory_order_release);
      return;
    }
  }
}

void UnregisterFlightRecorder(FlightRecorder* recorder) {
  std::lock_guard<std::mutex> lock(g_register_mu);
  for (auto& slot : g_recorders) {
    if (slot.load(std::memory_order_relaxed) == recorder) {
      slot.store(nullptr, std::memory_order_release);
    }
  }
}

void DumpAllFlightRecorders(int fd, const char* reason) {
  WriteStr(fd, "FLIGHT-RECORDER-DUMP reason=");
  WriteStr(fd, reason == nullptr ? "unknown" : reason);
  WriteStr(fd, "\n");
  for (const auto& slot : g_recorders) {
    const FlightRecorder* recorder = slot.load(std::memory_order_acquire);
    if (recorder != nullptr) recorder->DumpTo(fd);
  }
  WriteStr(fd, "FLIGHT-RECORDER-DUMP end\n");
}

void SetFlightDumpPath(const char* path) {
  if (path == nullptr) {
    g_dump_path[0] = '\0';
    return;
  }
  CopyTruncated(g_dump_path, sizeof(g_dump_path), path);
  // Truncate once here, outside any signal context; the dump writers
  // (watchdog + crash handler) then append, so a stall dump followed by
  // an abort leaves both in the file.
  const int fd = ::open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd >= 0) ::close(fd);
}

void InstallCrashHandler() {
  static std::once_flag once;
  std::call_once(once, [] {
    struct sigaction sa;
    ::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = CrashHandler;
    sa.sa_flags = SA_RESETHAND;
    ::sigemptyset(&sa.sa_mask);
    ::sigaction(SIGSEGV, &sa, nullptr);
    ::sigaction(SIGABRT, &sa, nullptr);
  });
}

}  // namespace lswc::obs
