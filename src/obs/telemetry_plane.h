#ifndef LSWC_OBS_TELEMETRY_PLANE_H_
#define LSWC_OBS_TELEMETRY_PLANE_H_

// Process-wide assembly of the telemetry pieces: one TelemetryServer,
// one StallWatchdog, one crash handler, and a board + flight recorder
// per run. Harness code configures the plane once from flags
// (--telemetry=, --watchdog-secs=, --flight-recorder-events=), then
// each run acquires a TelemetryContext whose board its publisher
// writes to. The server's /progress and /metrics documents merge every
// context's latest snapshot, so a --jobs=N grid shows all in-flight
// runs at once.
//
// The plane is deliberately append-only: contexts live for the process
// lifetime (deque-backed, stable addresses), so a finished run's final
// snapshot stays visible to attached observers until exit.

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/flight_recorder.h"
#include "obs/telemetry.h"
#include "obs/telemetry_server.h"
#include "obs/watchdog.h"
#include "util/status.h"

namespace lswc::obs {

struct TelemetryOptions {
  /// Endpoint to serve on ("unix:<path>" / "tcp:[host:]port"); empty
  /// disables the server (the rest of the plane still works — the
  /// watchdog and flight recorder are useful without an endpoint).
  std::string endpoint;
  /// Stall deadline in seconds; 0 disables the watchdog.
  uint64_t watchdog_secs = 0;
  /// abort() when the watchdog fires (CI wants the hang to fail fast).
  bool watchdog_abort = false;
  /// Flight-recorder ring capacity per run; 0 disables recording.
  uint64_t flight_recorder_events = 1024;
  /// Watchdog/crash dump file; empty means stderr.
  std::string dump_path;
};

/// What one run's publisher needs: its board, its flight recorder, and
/// the shared watchdog heartbeat. Stable for the process lifetime.
struct TelemetryContext {
  std::string run;
  TelemetryBoard board;
  std::unique_ptr<FlightRecorder> recorder;
  std::atomic<uint64_t>* heartbeat = nullptr;  // Never null once created.

  void RecordEvent(const char* kind, const char* detail, uint64_t a = 0,
                   uint64_t b = 0) {
    if (recorder != nullptr) recorder->Record(kind, detail, a, b);
  }
};

class TelemetryPlane {
 public:
  static TelemetryPlane& Instance();

  /// Starts the configured pieces. Call once, before runs start; a
  /// second call is rejected (kFailedPrecondition) unless the plane
  /// was shut down in between.
  Status Configure(const TelemetryOptions& options);

  bool configured() const { return configured_; }
  /// Resolved server endpoint ("" when no server).
  const std::string& endpoint() const { return endpoint_; }

  /// Registers a run and returns its context. Safe from worker threads
  /// (the ExperimentRunner creates runs concurrently under --jobs=N).
  TelemetryContext* CreateContext(const std::string& run_label);

  /// Latest snapshot of every context that has published.
  std::vector<SnapshotPtr> CollectSnapshots();

  /// True once the watchdog has fired.
  bool watchdog_fired() const;

  /// Stops the server and watchdog (contexts stay). Tests use this;
  /// production exits through process teardown.
  void Shutdown();

 private:
  TelemetryPlane() = default;
  void WriteAttribution(int fd);

  std::mutex mu_;
  bool configured_ = false;
  std::string endpoint_;
  TelemetryOptions options_;
  std::deque<TelemetryContext> contexts_;
  /// Plane-owned so context heartbeat pointers outlive the watchdog.
  std::atomic<uint64_t> heartbeat_{0};
  std::unique_ptr<StallWatchdog> watchdog_;
  std::unique_ptr<TelemetryServer> server_;
};

/// CLI glue shared by the bench harnesses and the standalone tools:
/// configures Instance() from parsed flag values and prints
/// "TELEMETRY <endpoint>" to stderr when a server was bound (scripts
/// attach to tcp:0 through that line). A no-op unless an endpoint, a
/// watchdog deadline, or a dump path was given — the flight-recorder
/// capacity alone does not activate the plane. Configuration failures
/// are fatal (exit 2), like any other bad flag; `argv0` prefixes the
/// error message.
void ConfigureTelemetryPlaneFromFlags(const TelemetryOptions& options,
                                      const char* argv0);

}  // namespace lswc::obs

#endif  // LSWC_OBS_TELEMETRY_PLANE_H_
