#ifndef LSWC_OBS_OBS_FWD_H_
#define LSWC_OBS_OBS_FWD_H_

// Forward declarations for headers that only carry obs pointers (the
// options structs and cached handles in core). Implementation files
// include the real obs headers.

namespace lswc::obs {
class Counter;
class Gauge;
class Histogram;
class JournalWriter;
class MetricsRegistry;
class StageProfiler;
class TraceSink;
struct RunObs;
struct ShardState;
struct TelemetryContext;
}  // namespace lswc::obs

#endif  // LSWC_OBS_OBS_FWD_H_
