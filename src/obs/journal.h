#ifndef LSWC_OBS_JOURNAL_H_
#define LSWC_OBS_JOURNAL_H_

// The crawl decision journal: an opt-in (--journal=FILE) append-only
// binary record of *every* decision a crawl makes — seed pushes, link
// enqueues/re-pushes/drops, fetches with their relevance verdicts,
// batch rescore selections with per-scorer score components, and
// metric sample boundaries. One fixed-width 48-byte record per
// decision, so a journal is a flat array that tools can binary-search,
// diff byte-for-byte, and walk backwards through referrer links.
//
// Format (LSWCJRNL, version 1; see docs/ARCHITECTURE.md "Decision
// journal" for the full contract):
//
//   header   24 B   magic "LSWCJRNL" | u32 version | u32 record_size
//                   | u64 reserved
//   records  N*48 B fixed-width little-endian records (layout below)
//   meta     var    snapshot::SectionWriter payload (dataset identity,
//                   run configuration, scorer-name string table)
//   footer   48 B   magic "LSWCJEND" | u64 record_count | u64 meta_size
//                   | u32 meta_crc | u32 records_crc | u32 header_crc
//                   | u32 footer_crc | u64 reserved
//
// The file is written to `path + ".tmp"` and atomically renamed into
// place by Finalize() — the snapshot/store discipline — so a journal
// that exists under its real name is structurally complete; CRC32
// verification (lswc_journal verify) then catches bit rot.
//
// Partition invariance: records carry the URL's *host id*, never an
// engine shard number, and the meta block records no shard count —
// every decision-bearing event in both engines fires from serial code
// (the commit loop is the single serialization point), so the same
// crawl journaled serially, with --shards=1, or with --shards=4 is
// byte-identical. Tools derive "which shard owned this" at display
// time from the host id (core/shard.h ShardOfHostName) when asked.
//
// The writer is deliberately engine-independent: it maintains its own
// per-URL referrer/depth/priority table from the event stream it is
// fed, so the fetch record's referrer chain and depth need no support
// from engine state. It is not thread-safe — all emission happens on
// the serial commit path.

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace lswc::obs {

inline constexpr char kJournalMagic[9] = "LSWCJRNL";
inline constexpr char kJournalEndMagic[9] = "LSWCJEND";
inline constexpr uint32_t kJournalVersion = 1;
inline constexpr uint32_t kJournalRecordSize = 48;
inline constexpr size_t kJournalHeaderSize = 24;
inline constexpr size_t kJournalFooterSize = 48;

/// The `link`/`url`/`host` sentinel: "no such id" (seeds have no
/// referrer; sample records no URL).
inline constexpr uint32_t kJournalNoLink = 0xFFFFFFFFu;

/// Record kinds. The numeric values are part of the on-disk format.
enum class JournalKind : uint8_t {
  kSeed = 1,            // Seed URL pushed at crawl start.
  kFetch = 2,           // A URL was fetched (the crawl decision itself).
  kEnqueue = 3,         // First push of a URL into the frontier.
  kRePush = 4,          // Better-referrer re-push of a pending URL.
  kDrop = 5,            // Link rejected (reason in `extra`).
  kBatchRound = 6,      // Batch regime: one rescore-and-select pass.
  kBatchSelect = 7,     // Batch regime: one URL selected into a batch.
  kScoreComponent = 8,  // Per-scorer contribution of a selection.
  kSample = 9,          // Metric series sample boundary.
};

// Flag bits (`flags` field).
inline constexpr uint8_t kJournalFlagOk = 1u << 0;
inline constexpr uint8_t kJournalFlagTrulyRelevant = 1u << 1;
inline constexpr uint8_t kJournalFlagJudgedRelevant = 1u << 2;
inline constexpr uint8_t kJournalFlagCrossHost = 1u << 3;
inline constexpr uint8_t kJournalFlagParentRelevant = 1u << 4;
inline constexpr uint8_t kJournalFlagFinalSample = 1u << 5;

// Drop reasons (`extra` of kDrop); mirrors core LinkDropReason.
inline constexpr uint16_t kJournalDropAlreadyCrawled = 0;
inline constexpr uint16_t kJournalDropStrategyDiscard = 1;
inline constexpr uint16_t kJournalDropNotBetter = 2;

/// One decoded decision record. On disk each field is little-endian at
/// a fixed offset: seq(8) kind(1) flags(1) extra(2) url(4) link(4)
/// host(4) priority(4) depth(4) a(8) b(8) = 48 bytes.
///
/// Field use by kind:
///   kSeed          url, host, priority=seed priority, depth=0,
///                  link=kJournalNoLink
///   kFetch         url, link=referrer at fetch, host, priority=priority
///                  at fetch, depth, flags ok|truly|judged,
///                  a=frontier size, b=pages crawled (post-fetch)
///   kEnqueue/      url=child, link=parent, host=host(child),
///   kRePush        priority=strategy priority, depth=depth(parent)+1,
///                  extra=strategy annotation, flags parent_relevant|
///                  cross_host, a=host(parent)
///   kDrop          like kEnqueue with extra=drop reason
///   kBatchRound    a=round number (1-based), b=selected count,
///                  extra unused, url/link/host=kJournalNoLink,
///                  priority=0, depth=pending size before selection
///   kBatchSelect   url, link=referrer, host, priority=rank in batch
///                  (0-based), depth, a=f64 bits of composite score,
///                  b=frontier entry seq (the tiebreaker),
///                  extra=component count
///   kScoreComponent url, link=scorer-name id (meta string table),
///                  host, extra=component index, a=f64 bits of the
///                  weighted contribution, b=f64 bits of the raw score
///   kSample        a=frontier size, b=pages crawled, flags final bit,
///                  url/link/host=kJournalNoLink
struct JournalRecord {
  uint64_t seq = 0;
  uint8_t kind = 0;
  uint8_t flags = 0;
  uint16_t extra = 0;
  uint32_t url = kJournalNoLink;
  uint32_t link = kJournalNoLink;
  uint32_t host = kJournalNoLink;
  int32_t priority = 0;
  uint32_t depth = 0;
  uint64_t a = 0;
  uint64_t b = 0;
};

/// Packs `record` at `out[0..48)` / decodes 48 bytes at `data`.
void PackJournalRecord(const JournalRecord& record, char* out);
JournalRecord UnpackJournalRecord(const char* data);

/// Human-readable kind name ("fetch", "enqueue", ...).
const char* JournalKindName(uint8_t kind);

/// Run identity recorded in the journal's meta block. Deliberately
/// partition-invariant: everything here is a property of the workload,
/// not of how the crawl was parallelized.
struct JournalMeta {
  uint64_t num_pages = 0;
  uint64_t num_hosts = 0;
  uint64_t num_links = 0;
  uint64_t generator_seed = 0;
  std::string target_language;
  std::string strategy;
  std::string classifier;
  /// "pop", "batch", or "politeness".
  std::string regime;
  /// Batch regime identity (canonical defaults resolved); 0 / empty
  /// for the pop regime.
  uint32_t batch_k = 0;
  std::string scorer_spec;
  /// String table for kScoreComponent.link ids, in first-use order.
  std::vector<std::string> scorer_names;
};

/// Append-only journal writer. Emission calls pack records straight
/// into a large in-memory buffer that is flushed in chunks; the
/// records CRC is computed in one sequential re-read pass at
/// Finalize(), entirely off the emission path, so journaling stays a
/// small fraction of even sub-microsecond crawl steps.
class JournalWriter {
 public:
  /// Creates `path + ".tmp"` and writes the header. The journal only
  /// appears under `path` itself once Finalize() succeeds.
  static StatusOr<std::unique_ptr<JournalWriter>> Open(
      const std::string& path, JournalMeta meta);

  /// Abandoning an unfinalized writer deletes the temp file.
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Resolves a URL id to its host id for record stamping (typically
  /// `[&graph](uint32_t url) { return graph.page(url).host; }`).
  /// Records carry kJournalNoLink as the host until this is set.
  void set_host_lookup(std::function<uint32_t(uint32_t)> lookup) {
    host_lookup_ = std::move(lookup);
  }

  // --- Emission API (called from the engines' serial commit path) ---

  void Seed(uint32_t url, int32_t priority);
  /// One accepted link: first push (`repush` false) or better-referrer
  /// re-push (`repush` true).
  void Link(bool repush, uint32_t url, uint32_t parent, int32_t priority,
            uint8_t annotation, bool parent_relevant);
  void Drop(uint32_t url, uint32_t parent, uint16_t reason,
            bool parent_relevant);
  void Fetch(uint32_t url, bool ok, bool truly_relevant,
             bool judged_relevant, uint64_t frontier_size,
             uint64_t pages_crawled);
  void BatchRound(uint64_t pending_before, uint64_t selected);
  void BatchSelect(uint32_t url, uint32_t rank, double score,
                   uint64_t entry_seq, uint16_t component_count);
  void ScoreComponent(uint32_t url, uint16_t index,
                      const std::string& scorer_name, double weighted,
                      double raw);
  void Sample(uint64_t frontier_size, uint64_t pages_crawled,
              bool final_sample);

  /// Flushes, writes meta + footer, fsync-free-closes, and atomically
  /// renames the temp file into place.
  Status Finalize();

  uint64_t records_written() const { return next_seq_; }

 private:
  /// Referrer provenance maintained from the event stream itself. The
  /// host id is memoized here on first touch: resolving it through the
  /// lookup costs a random access into the graph's page table (a cache
  /// miss per record, twice for link records), and URLs recur many
  /// times — every re-drop, re-push and fetch of an already-seen URL
  /// hits this struct anyway.
  struct UrlState {
    uint32_t referrer = kJournalNoLink;
    uint32_t depth = 0;
    int32_t priority = 0;
    uint32_t host = kJournalNoLink;
  };

  JournalWriter(std::string path, JournalMeta meta, std::FILE* file);

  void Append(JournalRecord record);
  void FlushBuffer();
  /// One sequential pass over the already-written record section
  /// (re-read through the stream) — the checksum-at-close step.
  uint32_t ComputeRecordsCrc();
  uint32_t HostOf(uint32_t url) {
    UrlState& state = State(url);
    if (state.host == kJournalNoLink && host_lookup_) {
      state.host = host_lookup_(url);
    }
    return state.host;
  }
  UrlState& State(uint32_t url);
  uint32_t InternScorerName(const std::string& name);

  std::string path_;
  JournalMeta meta_;
  std::FILE* file_ = nullptr;
  bool finalized_ = false;
  bool write_error_ = false;
  std::function<uint32_t(uint32_t)> host_lookup_;
  std::unique_ptr<char[]> buffer_;
  size_t buffer_used_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t batch_rounds_ = 0;
  uint32_t records_crc_ = 0;
  uint32_t header_crc_ = 0;
  std::vector<UrlState> urls_;
  std::unordered_map<std::string, uint32_t> scorer_name_ids_;
};

}  // namespace lswc::obs

#endif  // LSWC_OBS_JOURNAL_H_
