#include "webgraph/graph.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"
#include "url/url_table.h"

namespace lswc {
namespace {

using ::lswc::testing::MakeGraph;
using ::lswc::testing::PageSpec;

TEST(WebGraphBuilderTest, BuildsSmallGraph) {
  WebGraph g = MakeGraph(
      {
          PageSpec{0, Language::kThai},
          PageSpec{0, Language::kThai},
          PageSpec{1, Language::kOther},
      },
      {{0, 1}, {0, 2}, {1, 2}}, {0});
  EXPECT_EQ(g.num_pages(), 3u);
  EXPECT_EQ(g.num_hosts(), 2u);
  EXPECT_EQ(g.num_links(), 3u);
  ASSERT_EQ(g.outlinks(0).size(), 2u);
  EXPECT_EQ(g.outlinks(0)[0], 1u);
  EXPECT_EQ(g.outlinks(1).size(), 1u);
  EXPECT_EQ(g.outlinks(2).size(), 0u);
  EXPECT_EQ(g.seeds().size(), 1u);
}

TEST(WebGraphBuilderTest, EmptyGraphRejected) {
  WebGraphBuilder b;
  EXPECT_FALSE(b.Finish().ok());
}

TEST(WebGraphBuilderTest, OutOfRangeSeedRejected) {
  WebGraphBuilder b;
  b.AddHost(Language::kThai);
  PageRecord rec;
  b.AddPage(0, rec);
  b.AddSeed(5);
  EXPECT_FALSE(b.Finish().ok());
}

TEST(WebGraphBuilderTest, FinishTwiceRejected) {
  WebGraphBuilder b;
  b.AddHost(Language::kThai);
  b.AddPage(0, PageRecord{});
  ASSERT_TRUE(b.Finish().ok());
  EXPECT_FALSE(b.Finish().ok());
}

TEST(WebGraphTest, HostNamesEncodeLanguage) {
  WebGraph g = MakeGraph(
      {PageSpec{0, Language::kThai}, PageSpec{1, Language::kJapanese},
       PageSpec{2, Language::kOther}},
      {}, {0});
  EXPECT_EQ(g.HostName(0), "www0.example-th.test");
  EXPECT_EQ(g.HostName(1), "www1.example-jp.test");
  EXPECT_EQ(g.HostName(2), "www2.example.test");
}

TEST(WebGraphTest, UrlOfRootAndInterior) {
  WebGraph g = MakeGraph(
      {PageSpec{0, Language::kThai}, PageSpec{0, Language::kThai},
       PageSpec{0, Language::kThai}},
      {}, {0});
  EXPECT_EQ(g.UrlOf(0), "http://www0.example-th.test/");
  EXPECT_EQ(g.UrlOf(2), "http://www0.example-th.test/p2.html");
}

TEST(WebGraphTest, ResolveUrlRoundTrip) {
  WebGraph g = MakeGraph(
      {PageSpec{0, Language::kThai}, PageSpec{0, Language::kThai},
       PageSpec{1, Language::kOther}},
      {}, {0});
  for (PageId p = 0; p < g.num_pages(); ++p) {
    PageId back = kInvalidUrlId;
    ASSERT_TRUE(g.ResolveUrl(g.UrlOf(p), &back)) << g.UrlOf(p);
    EXPECT_EQ(back, p);
  }
}

TEST(WebGraphTest, ResolveUrlRejectsForeignUrls) {
  WebGraph g = MakeGraph({PageSpec{0, Language::kThai}}, {}, {0});
  PageId out;
  EXPECT_FALSE(g.ResolveUrl("http://elsewhere.test/", &out));
  EXPECT_FALSE(g.ResolveUrl("http://www9.example-th.test/", &out));   // No host 9.
  EXPECT_FALSE(g.ResolveUrl("http://www0.example-th.test/p7.html", &out));
  EXPECT_FALSE(g.ResolveUrl("http://www0.example-jp.test/", &out));  // Wrong suffix.
  EXPECT_FALSE(g.ResolveUrl("http://www0.example-th.test/x", &out));
  EXPECT_FALSE(g.ResolveUrl("ftp://www0.example-th.test/", &out));
}

TEST(WebGraphTest, IsRelevantNeedsOkAndLanguage) {
  WebGraph g = MakeGraph(
      {
          PageSpec{0, Language::kThai},                     // Relevant.
          PageSpec{0, Language::kThai, /*status=*/404},     // Dead.
          PageSpec{0, Language::kOther},                    // Wrong language.
      },
      {}, {0});
  EXPECT_TRUE(g.IsRelevant(0));
  EXPECT_FALSE(g.IsRelevant(1));
  EXPECT_FALSE(g.IsRelevant(2));
}

TEST(WebGraphTest, ComputeStatsMatchesTable3Semantics) {
  WebGraph g = MakeGraph(
      {
          PageSpec{0, Language::kThai},
          PageSpec{0, Language::kThai, 404},
          PageSpec{0, Language::kOther},
          PageSpec{0, Language::kOther, 302},
          PageSpec{0, Language::kThai},
      },
      {}, {0});
  const DatasetStats stats = g.ComputeStats();
  EXPECT_EQ(stats.total_urls, 5u);
  EXPECT_EQ(stats.ok_html_pages, 3u);
  EXPECT_EQ(stats.relevant_ok_pages, 2u);
  EXPECT_EQ(stats.irrelevant_ok_pages, 1u);
  EXPECT_NEAR(stats.relevance_ratio(), 2.0 / 3.0, 1e-12);
}

TEST(WebGraphTest, PageIndexInHost) {
  WebGraph g = MakeGraph(
      {PageSpec{0, Language::kThai}, PageSpec{0, Language::kThai},
       PageSpec{1, Language::kOther}, PageSpec{1, Language::kOther}},
      {}, {0});
  EXPECT_EQ(g.PageIndexInHost(0), 0u);
  EXPECT_EQ(g.PageIndexInHost(1), 1u);
  EXPECT_EQ(g.PageIndexInHost(2), 0u);
  EXPECT_EQ(g.PageIndexInHost(3), 1u);
}

}  // namespace
}  // namespace lswc
