#include "core/classifier.h"

#include <gtest/gtest.h>

#include "charset/codec.h"
#include "charset/text_gen.h"
#include "util/random.h"

namespace lswc {
namespace {

FetchResponse OkResponse(Encoding meta, Language true_lang = Language::kThai,
                         Encoding true_enc = Encoding::kTis620) {
  FetchResponse r;
  r.http_status = 200;
  r.meta_charset = meta;
  r.true_language = true_lang;
  r.true_encoding = true_enc;
  return r;
}

TEST(MetaTagClassifierTest, RelevantWhenDeclaredCharsetMatchesLanguage) {
  MetaTagClassifier c(Language::kThai);
  EXPECT_TRUE(c.Judge(OkResponse(Encoding::kTis620)).relevant);
  EXPECT_TRUE(c.Judge(OkResponse(Encoding::kWindows874)).relevant);
  EXPECT_FALSE(c.Judge(OkResponse(Encoding::kEucJp)).relevant);
  EXPECT_FALSE(c.Judge(OkResponse(Encoding::kLatin1)).relevant);
}

TEST(MetaTagClassifierTest, MissingDeclarationIsIrrelevant) {
  MetaTagClassifier c(Language::kThai);
  const RelevanceJudgment j = c.Judge(OkResponse(Encoding::kUnknown));
  EXPECT_FALSE(j.relevant);
  EXPECT_EQ(j.encoding, Encoding::kUnknown);
}

TEST(MetaTagClassifierTest, TrustsWrongDeclaration) {
  // A mislabeled page (Thai content declaring Latin-1) is judged by the
  // declaration — the paper's observation 3 failure mode.
  MetaTagClassifier c(Language::kThai);
  FetchResponse r = OkResponse(Encoding::kLatin1, Language::kThai);
  EXPECT_FALSE(c.Judge(r).relevant);
}

TEST(MetaTagClassifierTest, NonOkPagesIrrelevant) {
  MetaTagClassifier c(Language::kThai);
  FetchResponse r = OkResponse(Encoding::kTis620);
  r.http_status = 404;
  EXPECT_FALSE(c.Judge(r).relevant);
}

TEST(MetaTagClassifierTest, ParsesDeclarationOutOfBodyBytes) {
  MetaTagClassifier c(Language::kThai);
  FetchResponse r = OkResponse(Encoding::kUnknown);
  r.body =
      "<html><head><meta http-equiv=\"Content-Type\" "
      "content=\"text/html; charset=TIS-620\"></head><body></body></html>";
  EXPECT_TRUE(c.Judge(r).relevant);
}

TEST(MetaTagClassifierTest, BodyWithoutDeclarationIrrelevant) {
  MetaTagClassifier c(Language::kThai);
  FetchResponse r = OkResponse(Encoding::kTis620);  // Record says Thai...
  r.body = "<html><head></head><body>x</body></html>";  // ...bytes do not.
  EXPECT_FALSE(c.Judge(r).relevant);
}

TEST(DetectorClassifierTest, DetectsFromBodyBytes) {
  DetectorClassifier c(Language::kJapanese);
  Rng rng(1);
  FetchResponse r = OkResponse(Encoding::kUnknown, Language::kJapanese,
                               Encoding::kEucJp);
  r.body = EncodeText(Encoding::kEucJp,
                      GenerateText(Language::kJapanese, 300, &rng))
               .value();
  const RelevanceJudgment j = c.Judge(r);
  EXPECT_TRUE(j.relevant);
  EXPECT_EQ(j.encoding, Encoding::kEucJp);
  EXPECT_GT(j.confidence, 0.2);
}

TEST(DetectorClassifierTest, EmptyBodyIrrelevant) {
  DetectorClassifier c(Language::kJapanese);
  EXPECT_FALSE(c.Judge(OkResponse(Encoding::kEucJp)).relevant);
}

TEST(DetectorClassifierTest, IgnoresMetaDeclaration) {
  // The detector judges bytes, not declarations: English body declaring
  // EUC-JP stays irrelevant.
  DetectorClassifier c(Language::kJapanese);
  FetchResponse r = OkResponse(Encoding::kEucJp, Language::kOther,
                               Encoding::kAscii);
  r.body = "<html><body>plain english text here</body></html>";
  EXPECT_FALSE(c.Judge(r).relevant);
}

TEST(CompositeClassifierTest, MetaWinsWhenPresent) {
  CompositeClassifier c(Language::kThai);
  FetchResponse r = OkResponse(Encoding::kTis620);
  EXPECT_TRUE(c.Judge(r).relevant);
}

TEST(CompositeClassifierTest, FallsBackToDetector) {
  CompositeClassifier c(Language::kThai);
  Rng rng(2);
  FetchResponse r = OkResponse(Encoding::kUnknown, Language::kThai,
                               Encoding::kTis620);
  r.body = EncodeText(Encoding::kTis620,
                      GenerateText(Language::kThai, 300, &rng))
               .value();
  EXPECT_TRUE(c.Judge(r).relevant);
}

TEST(OracleClassifierTest, ReadsGroundTruth) {
  OracleClassifier c(Language::kThai);
  // Even a mislabeled, undeclared page is judged correctly.
  FetchResponse r = OkResponse(Encoding::kUnknown, Language::kThai);
  EXPECT_TRUE(c.Judge(r).relevant);
  r.true_language = Language::kOther;
  EXPECT_FALSE(c.Judge(r).relevant);
}

TEST(ClassifierNamesTest, Names) {
  EXPECT_EQ(MetaTagClassifier(Language::kThai).name(), "meta-tag(Thai)");
  EXPECT_EQ(DetectorClassifier(Language::kJapanese).name(),
            "charset-detector(Japanese)");
  EXPECT_EQ(CompositeClassifier(Language::kThai).name(),
            "meta+detector(Thai)");
  EXPECT_EQ(OracleClassifier(Language::kThai).name(), "oracle");
}

}  // namespace
}  // namespace lswc
