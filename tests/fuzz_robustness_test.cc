// Deterministic fuzz-style robustness properties: the byte-facing layers
// (tokenizer, link extractor, META prescan, charset detector, codecs,
// URL parser) must never crash, hang, or emit out-of-contract values on
// arbitrary input. Inputs are pseudo-random from fixed seeds, so any
// failure is exactly reproducible.

#include <string>

#include <gtest/gtest.h>

#include "charset/codec.h"
#include "charset/detector.h"
#include "html/entity.h"
#include "html/link_extractor.h"
#include "html/meta_charset.h"
#include "html/tokenizer.h"
#include "url/url.h"
#include "util/random.h"
#include "util/string_util.h"

namespace lswc {
namespace {

std::string RandomBytes(Rng* rng, size_t max_len) {
  std::string out;
  const size_t len = rng->UniformUint64(max_len + 1);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(static_cast<char>(rng->UniformUint64(256)));
  }
  return out;
}

// Random soup biased toward markup-looking bytes to reach deeper
// tokenizer states.
std::string RandomMarkupish(Rng* rng, size_t max_len) {
  static constexpr char kAlphabet[] =
      "<>=\"'/ abcdefghij-!&#;\xA1\xC3\x82\xE0\x1B$B";
  std::string out;
  const size_t len = rng->UniformUint64(max_len + 1);
  out.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    out.push_back(kAlphabet[rng->UniformUint64(sizeof(kAlphabet) - 1)]);
  }
  return out;
}

TEST(FuzzTokenizerTest, NeverHangsOrCrashesOnRandomBytes) {
  Rng rng(0xF0221);
  for (int doc = 0; doc < 300; ++doc) {
    const std::string html =
        doc % 2 == 0 ? RandomBytes(&rng, 2048) : RandomMarkupish(&rng, 2048);
    HtmlTokenizer tok(html);
    size_t last_pos = 0;
    size_t stuck = 0;
    while (true) {
      const HtmlToken& t = tok.Next();
      if (t.type == HtmlTokenType::kEndOfFile) break;
      // Progress guarantee: position must advance (a few zero-width
      // states are fine, but never unboundedly many).
      if (tok.position() == last_pos) {
        ASSERT_LT(++stuck, 4u) << "tokenizer stuck at " << last_pos
                               << " in doc " << doc;
      } else {
        stuck = 0;
      }
      last_pos = tok.position();
      ASSERT_LE(last_pos, html.size());
    }
    // EOF is stable.
    EXPECT_EQ(tok.Next().type, HtmlTokenType::kEndOfFile);
  }
}

TEST(FuzzLinkExtractorTest, OutputsAreAlwaysCanonicalHttpUrls) {
  Rng rng(0xF0222);
  for (int doc = 0; doc < 200; ++doc) {
    const std::string html = RandomMarkupish(&rng, 4096);
    const auto links = ExtractLinks("http://base.test/dir/x.html", html);
    for (const ExtractedLink& link : links) {
      auto parsed = ParseUrl(link.url);
      ASSERT_TRUE(parsed.ok()) << link.url;
      EXPECT_TRUE(parsed->IsAbsolute()) << link.url;
      EXPECT_TRUE(parsed->scheme == "http" || parsed->scheme == "https")
          << link.url;
      EXPECT_FALSE(parsed->has_fragment) << link.url;
    }
  }
}

TEST(FuzzMetaCharsetTest, NeverCrashes) {
  Rng rng(0xF0223);
  for (int doc = 0; doc < 200; ++doc) {
    const auto charset = ExtractMetaCharset(RandomMarkupish(&rng, 2048));
    if (charset.has_value()) {
      EXPECT_FALSE(charset->empty());
    }
  }
}

TEST(FuzzEntityTest, DecodeNeverGrowsUnboundedly) {
  Rng rng(0xF0224);
  for (int doc = 0; doc < 200; ++doc) {
    const std::string text = RandomMarkupish(&rng, 1024);
    const std::string decoded = DecodeHtmlEntities(text);
    // Numeric references shrink or stay put; nothing can explode.
    EXPECT_LE(decoded.size(), text.size() + 4);
  }
}

TEST(FuzzDetectorTest, ConfidenceAlwaysInRange) {
  Rng rng(0xF0225);
  CharsetDetector detector;
  for (int doc = 0; doc < 400; ++doc) {
    const DetectionResult r = detector.Detect(RandomBytes(&rng, 4096));
    EXPECT_GE(r.confidence, 0.0);
    EXPECT_LE(r.confidence, 1.0);
    if (r.confidence > 0) {
      EXPECT_NE(r.encoding, Encoding::kUnknown);
    }
  }
}

TEST(FuzzCodecTest, DecodeEitherFailsOrYieldsEncodableRepertoire) {
  Rng rng(0xF0226);
  const Encoding encodings[] = {
      Encoding::kEucJp,  Encoding::kShiftJis,   Encoding::kIso2022Jp,
      Encoding::kTis620, Encoding::kWindows874, Encoding::kUtf8,
      Encoding::kAscii,  Encoding::kLatin1,
  };
  for (int doc = 0; doc < 200; ++doc) {
    const std::string bytes = RandomBytes(&rng, 512);
    for (Encoding e : encodings) {
      auto text = DecodeText(e, bytes);
      if (!text.ok()) continue;  // Rejection is a fine outcome.
      // Whatever decoded must be encodable in UTF-8 (i.e. valid scalar
      // values) — the invariant the decode contract promises.
      for (char32_t cp : *text) {
        EXPECT_TRUE(CanEncode(Encoding::kUtf8, cp))
            << "encoding " << EncodingName(e) << " produced invalid cp "
            << static_cast<uint32_t>(cp);
      }
    }
  }
}

TEST(FuzzUrlTest, CanonicalizationIsIdempotent) {
  Rng rng(0xF0227);
  static constexpr char kUrlAlphabet[] =
      "abcXYZ019:/?#[]@!$&'()*+,;=-._~% {}\\^|\"<>";
  int successes = 0;
  for (int i = 0; i < 2000; ++i) {
    std::string text = "http://";
    const size_t len = rng.UniformUint64(64);
    for (size_t k = 0; k < len; ++k) {
      text.push_back(
          kUrlAlphabet[rng.UniformUint64(sizeof(kUrlAlphabet) - 1)]);
    }
    auto once = CanonicalizeUrl(text);
    if (!once.ok()) continue;
    ++successes;
    auto twice = CanonicalizeUrl(*once);
    ASSERT_TRUE(twice.ok()) << *once;
    EXPECT_EQ(*twice, *once) << "not idempotent for input: " << text;
  }
  EXPECT_GT(successes, 100);  // The generator must exercise the success path.
}

TEST(FuzzUrlTest, ResolveNeverCrashesOnRandomReferences) {
  Rng rng(0xF0228);
  const auto base = ParseUrl("http://host.test/a/b/c?q").value();
  for (int i = 0; i < 2000; ++i) {
    const std::string ref = RandomMarkupish(&rng, 64);
    auto resolved = ResolveUrl(base, ref);
    if (resolved.ok()) {
      EXPECT_TRUE(resolved->IsAbsolute());
    }
  }
}

}  // namespace
}  // namespace lswc
