#include "core/simulator.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace lswc {
namespace {

using ::lswc::testing::MakeChain;
using ::lswc::testing::MakeGraph;
using ::lswc::testing::PageSpec;

constexpr Language kThai = Language::kThai;
constexpr Language kOther = Language::kOther;

SimulationResult RunSim(const WebGraph& g, const CrawlStrategy& strategy,
                     SimulationOptions options = {}) {
  MetaTagClassifier classifier(kThai);
  auto r = RunSimulation(g, &classifier, strategy, RenderMode::kNone,
                         options);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(SimulatorTest, BreadthFirstCrawlsEverythingReachable) {
  const WebGraph g = MakeChain({kThai, kOther, kOther, kThai, kOther});
  const SimulationResult r = RunSim(g, BreadthFirstStrategy());
  EXPECT_EQ(r.summary.pages_crawled, 5u);
  EXPECT_EQ(r.summary.relevant_crawled, 2u);
  EXPECT_DOUBLE_EQ(r.summary.final_coverage_pct, 100.0);
  EXPECT_DOUBLE_EQ(r.summary.final_harvest_pct, 40.0);
}

TEST(SimulatorTest, HardFocusedCannotTunnel) {
  // Thai -> Other -> Thai: hard-focused crawls the first Other page (its
  // referrer is relevant) but discards its links, losing the Thai page
  // behind it.
  const WebGraph g = MakeChain({kThai, kOther, kThai});
  const SimulationResult r = RunSim(g, HardFocusedStrategy());
  EXPECT_EQ(r.summary.pages_crawled, 2u);
  EXPECT_EQ(r.summary.relevant_crawled, 1u);
  EXPECT_DOUBLE_EQ(r.summary.final_coverage_pct, 50.0);
}

TEST(SimulatorTest, SoftFocusedReachesFullCoverage) {
  const WebGraph g = MakeChain({kThai, kOther, kOther, kOther, kThai});
  const SimulationResult r = RunSim(g, SoftFocusedStrategy());
  EXPECT_DOUBLE_EQ(r.summary.final_coverage_pct, 100.0);
  EXPECT_EQ(r.summary.pages_crawled, 5u);
}

// The paper's Fig 1 semantics: a relevant page behind k consecutive
// irrelevant pages is reached iff k <= N.
class TunnelDepthTest : public ::testing::TestWithParam<int> {};

TEST_P(TunnelDepthTest, LimitedDistanceReachesExactlyDepthN) {
  const int n = GetParam();
  for (int depth = 0; depth <= 5; ++depth) {
    std::vector<Language> chain{kThai};
    for (int i = 0; i < depth; ++i) chain.push_back(kOther);
    chain.push_back(kThai);
    const WebGraph g = MakeChain(chain);
    for (bool prioritized : {false, true}) {
      const SimulationResult r =
          RunSim(g, LimitedDistanceStrategy(n, prioritized));
      const bool should_reach = depth <= n;
      EXPECT_EQ(r.summary.relevant_crawled, should_reach ? 2u : 1u)
          << "N=" << n << " depth=" << depth
          << " prioritized=" << prioritized;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, TunnelDepthTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(SimulatorTest, LimitedDistanceNZeroMatchesHardFocused) {
  const WebGraph g = MakeChain({kThai, kOther, kThai, kOther, kOther, kThai});
  const SimulationResult hard = RunSim(g, HardFocusedStrategy());
  const SimulationResult n0 = RunSim(g, LimitedDistanceStrategy(0, false));
  EXPECT_EQ(hard.summary.pages_crawled, n0.summary.pages_crawled);
  EXPECT_EQ(hard.summary.relevant_crawled, n0.summary.relevant_crawled);
}

TEST(SimulatorTest, EachUrlCrawledOnce) {
  // Diamond with a cycle: 0 -> {1, 2} -> 3 -> 0.
  const WebGraph g = MakeGraph(
      {PageSpec{0, kThai}, PageSpec{0, kThai}, PageSpec{0, kThai},
       PageSpec{0, kThai}},
      {{0, 1}, {0, 2}, {1, 3}, {2, 3}, {3, 0}}, {0});
  const SimulationResult r = RunSim(g, BreadthFirstStrategy());
  EXPECT_EQ(r.summary.pages_crawled, 4u);  // No revisits despite cycle.
}

TEST(SimulatorTest, SoftFocusedPopsRelevantReferrersFirst) {
  // Seed links to an irrelevant and (via a relevant page) more relevant
  // pages; soft-focused must front-load the relevant-referrer links.
  // 0(T) -> 1(O), 0 -> 2(T); 2 -> 3(T); 1 -> 4(T).
  const WebGraph g = MakeGraph(
      {PageSpec{0, kThai}, PageSpec{0, kOther}, PageSpec{0, kThai},
       PageSpec{0, kThai}, PageSpec{0, kThai}},
      {{0, 1}, {0, 2}, {1, 4}, {2, 3}}, {0});
  SimulationOptions options;
  options.max_pages = 4;  // Stop before the low-priority tail.
  options.sample_interval = 1;
  const SimulationResult r = RunSim(g, SoftFocusedStrategy(), options);
  // Crawled: 0, then 1 and 2 (both priority-high from relevant referrer,
  // FIFO), then 3 (high, from relevant 2); 4 (low, from irrelevant 1)
  // waits beyond the budget.
  EXPECT_EQ(r.summary.pages_crawled, 4u);
  EXPECT_EQ(r.summary.relevant_crawled, 3u);  // 0, 2, 3 — not 4.
}

TEST(SimulatorTest, MaxPagesStopsEarly) {
  const WebGraph g = MakeChain({kThai, kThai, kThai, kThai, kThai});
  SimulationOptions options;
  options.max_pages = 2;
  const SimulationResult r = RunSim(g, BreadthFirstStrategy(), options);
  EXPECT_EQ(r.summary.pages_crawled, 2u);
  EXPECT_LT(r.summary.final_coverage_pct, 100.0);
}

TEST(SimulatorTest, NonOkSeedsDoNotExpand) {
  const WebGraph g = MakeGraph(
      {PageSpec{0, kThai, /*status=*/404}, PageSpec{0, kThai}},
      {{0, 1}}, {0});
  const SimulationResult r = RunSim(g, BreadthFirstStrategy());
  // Links of non-OK pages never enter the virtual web's response, so
  // only the dead seed is fetched.
  EXPECT_EQ(r.summary.pages_crawled, 1u);
  EXPECT_EQ(r.summary.relevant_crawled, 0u);
}

TEST(SimulatorTest, MisjudgedParentBlocksHardFocus) {
  // The relevant seed's child is relevant but carries no META charset:
  // the classifier judges it irrelevant and hard-focus drops its links.
  const WebGraph g = MakeGraph(
      {
          PageSpec{0, kThai},
          PageSpec{0, kThai, 200, Encoding::kUnknown,
                   /*meta_matches_truth=*/false},
          PageSpec{0, kThai},
      },
      {{0, 1}, {1, 2}}, {0});
  const SimulationResult r = RunSim(g, HardFocusedStrategy());
  EXPECT_EQ(r.summary.pages_crawled, 2u);
  EXPECT_EQ(r.summary.relevant_crawled, 2u);  // Ground truth counts it.
  // Classifier confusion shows the false negative.
  EXPECT_EQ(r.summary.classifier_confusion.false_negative, 1u);
}

TEST(SimulatorTest, PrioritizedModePropagatesBestAnnotation) {
  // Two paths to page 4(O): a short irrelevant one (via 1) and a longer
  // all-relevant one (0 -> 2 -> 3 -> 4). FIFO order discovers 4 through
  // the irrelevant path first and freezes the bad run-length, so 5 dies
  // at N=1; prioritized order re-pushes 4 with the better annotation
  // before it is crawled, so 5 survives — the Fig 7 mechanism in
  // miniature.
  //
  //   0(T) -> 1(O) -> 4(O) -> 5(T)
  //   0(T) -> 2(T) -> 3(T) -> 4
  const WebGraph g = MakeGraph(
      {PageSpec{0, kThai}, PageSpec{0, kOther}, PageSpec{0, kThai},
       PageSpec{0, kThai}, PageSpec{0, kOther}, PageSpec{0, kThai}},
      {{0, 1}, {0, 2}, {1, 4}, {2, 3}, {3, 4}, {4, 5}}, {0});
  const SimulationResult fifo = RunSim(g, LimitedDistanceStrategy(1, false));
  const SimulationResult prio = RunSim(g, LimitedDistanceStrategy(1, true));
  EXPECT_EQ(fifo.summary.relevant_crawled, 3u);  // 0, 2, 3 — not 5.
  EXPECT_EQ(prio.summary.relevant_crawled, 4u);  // 0, 2, 3 and 5.
}

TEST(SimulatorTest, SeriesEndsAtFinalState) {
  const WebGraph g = MakeChain({kThai, kOther, kThai});
  const SimulationResult r = RunSim(g, SoftFocusedStrategy());
  ASSERT_GT(r.series.num_rows(), 0u);
  EXPECT_EQ(r.series.x(r.series.num_rows() - 1),
            static_cast<double>(r.summary.pages_crawled));
  EXPECT_DOUBLE_EQ(r.series.LastY(1), r.summary.final_coverage_pct);
}

TEST(SimulatorTest, NoSeedsFails) {
  WebGraphBuilder b;
  b.AddHost(kThai);
  b.AddPage(0, PageRecord{});
  auto g = b.Finish();
  ASSERT_TRUE(g.ok());
  MetaTagClassifier classifier(kThai);
  EXPECT_FALSE(
      RunSimulation(*g, &classifier, BreadthFirstStrategy()).ok());
}

TEST(SimulatorTest, DuplicateSeedsCollapse) {
  WebGraph g = MakeGraph({PageSpec{0, kThai}}, {}, {0, 0, 0});
  const SimulationResult r = RunSim(g, BreadthFirstStrategy());
  EXPECT_EQ(r.summary.pages_crawled, 1u);
}

}  // namespace
}  // namespace lswc
