// Cross-module integration tests: the full production pipeline
// (generate -> persist -> replay -> render bytes -> detect charset ->
// parse links -> canonicalize -> crawl) must agree with the fast trace
// path everywhere they overlap.

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "webgraph/crawl_log.h"
#include "webgraph/generator.h"

namespace lswc {
namespace {

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = GenerateWebGraph(ThaiLikeOptions(4000));
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
  }
  WebGraph graph_;
};

TEST_F(IntegrationTest, ParseHtmlModeMatchesTraceMode) {
  // The visitor's parse mode decodes rendered bytes, extracts anchors,
  // canonicalizes and resolves them back to log entries; the resulting
  // crawl must be identical to replaying the link database.
  MetaTagClassifier classifier(Language::kThai);
  const SoftFocusedStrategy strategy;

  auto trace = RunSimulation(graph_, &classifier, strategy);
  ASSERT_TRUE(trace.ok());

  SimulationOptions parse_options;
  parse_options.parse_html = true;
  auto parsed = RunSimulation(graph_, &classifier, strategy,
                              RenderMode::kFull, parse_options);
  ASSERT_TRUE(parsed.ok()) << parsed.status();

  EXPECT_EQ(parsed->summary.pages_crawled, trace->summary.pages_crawled);
  EXPECT_EQ(parsed->summary.relevant_crawled,
            trace->summary.relevant_crawled);
  EXPECT_EQ(parsed->summary.max_queue_size, trace->summary.max_queue_size);
  EXPECT_DOUBLE_EQ(parsed->summary.final_coverage_pct,
                   trace->summary.final_coverage_pct);
}

TEST_F(IntegrationTest, ParseHtmlRequiresFullRender) {
  MetaTagClassifier classifier(Language::kThai);
  const BreadthFirstStrategy strategy;
  SimulationOptions options;
  options.parse_html = true;
  auto r = RunSimulation(graph_, &classifier, strategy, RenderMode::kNone,
                         options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(IntegrationTest, PersistedLogReplaysIdentically) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "lswc_integration.log")
          .string();
  ASSERT_TRUE(WriteCrawlLog(graph_, path).ok());
  auto loaded = ReadCrawlLog(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  MetaTagClassifier classifier(Language::kThai);
  const LimitedDistanceStrategy strategy(2, true);
  auto a = RunSimulation(graph_, &classifier, strategy);
  auto b = RunSimulation(*loaded, &classifier, strategy);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->summary.pages_crawled, b->summary.pages_crawled);
  EXPECT_EQ(a->summary.relevant_crawled, b->summary.relevant_crawled);
  EXPECT_EQ(a->summary.max_queue_size, b->summary.max_queue_size);
}

TEST_F(IntegrationTest, DiskLinkDbDrivesSameCrawl) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "lswc_integration.lnk")
          .string();
  ASSERT_TRUE(WriteLinkFile(graph_, path).ok());
  auto disk = DiskLinkDb::Open(path);
  ASSERT_TRUE(disk.ok());

  MetaTagClassifier classifier(Language::kThai);
  const HardFocusedStrategy strategy;

  auto in_memory = RunSimulation(graph_, &classifier, strategy);
  ASSERT_TRUE(in_memory.ok());

  VirtualWebSpace web(&graph_, disk->get(), RenderMode::kNone);
  Simulator sim(&web, &classifier, &strategy, SimulationOptions{});
  auto from_disk = sim.Run();
  ASSERT_TRUE(from_disk.ok());
  std::remove(path.c_str());

  EXPECT_EQ(from_disk->summary.pages_crawled,
            in_memory->summary.pages_crawled);
  EXPECT_EQ(from_disk->summary.relevant_crawled,
            in_memory->summary.relevant_crawled);
}

TEST_F(IntegrationTest, DetectorClassifierRunsOnRenderedHeads) {
  // The Japanese-experiment configuration end to end: detector judging
  // freshly rendered head bytes. Its crawl-time confusion must show
  // high precision (detector essentially never claims Japanese for a
  // non-Japanese page).
  auto g = GenerateWebGraph(JapaneseLikeOptions(4000));
  ASSERT_TRUE(g.ok());
  DetectorClassifier classifier(Language::kJapanese);
  const SoftFocusedStrategy strategy;
  auto r = RunSimulation(*g, &classifier, strategy, RenderMode::kHead);
  ASSERT_TRUE(r.ok());
  const ConfusionCounts& c = r->summary.classifier_confusion;
  EXPECT_GT(c.precision(), 0.97);
  EXPECT_GT(c.recall(), 0.80);
  EXPECT_DOUBLE_EQ(r->summary.final_coverage_pct, 100.0);
}

TEST_F(IntegrationTest, OracleBeatsRealClassifiersOnHardFocus) {
  // Classifier noise can only hurt hard-focused coverage; the oracle is
  // the upper bound.
  OracleClassifier oracle(Language::kThai);
  MetaTagClassifier meta(Language::kThai);
  const HardFocusedStrategy strategy;
  auto with_oracle = RunSimulation(graph_, &oracle, strategy);
  auto with_meta = RunSimulation(graph_, &meta, strategy);
  ASSERT_TRUE(with_oracle.ok());
  ASSERT_TRUE(with_meta.ok());
  EXPECT_GE(with_oracle->summary.final_coverage_pct,
            with_meta->summary.final_coverage_pct);
}

TEST_F(IntegrationTest, DeterministicEndToEnd) {
  MetaTagClassifier classifier(Language::kThai);
  const SoftFocusedStrategy strategy;
  auto a = RunSimulation(graph_, &classifier, strategy);
  auto b = RunSimulation(graph_, &classifier, strategy);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->series.num_rows(), b->series.num_rows());
  for (size_t i = 0; i < a->series.num_rows(); ++i) {
    EXPECT_EQ(a->series.y(i, 0), b->series.y(i, 0));
    EXPECT_EQ(a->series.y(i, 2), b->series.y(i, 2));
  }
}

}  // namespace
}  // namespace lswc
