// Regression tests for the paper's headline *shapes* on a mid-size
// synthetic dataset. These are the properties the bench harnesses
// regenerate at full scale; here they are pinned at test scale so a
// refactor cannot silently lose a result.

#include <gtest/gtest.h>

#include "core/simulator.h"
#include "webgraph/generator.h"

namespace lswc {
namespace {

class PaperPropertiesTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    auto g = GenerateWebGraph(ThaiLikeOptions(60000));
    ASSERT_TRUE(g.ok());
    thai_ = new WebGraph(std::move(g).value());
  }
  static void TearDownTestSuite() {
    delete thai_;
    thai_ = nullptr;
  }

  static SimulationResult Run(const CrawlStrategy& strategy,
                              uint64_t max_pages = 0) {
    MetaTagClassifier classifier(Language::kThai);
    SimulationOptions options;
    options.max_pages = max_pages;
    auto r = RunSimulation(*thai_, &classifier, strategy, RenderMode::kNone,
                           options);
    EXPECT_TRUE(r.ok());
    return std::move(r).value();
  }

  static WebGraph* thai_;
};

WebGraph* PaperPropertiesTest::thai_ = nullptr;

// Table 3: dataset characteristics.
TEST_F(PaperPropertiesTest, ThaiRelevanceRatioNear35Pct) {
  const DatasetStats stats = thai_->ComputeStats();
  EXPECT_NEAR(100.0 * stats.relevance_ratio(), 35.0, 3.5);
}

// Fig 3(a): focused strategies beat breadth-first on early harvest.
TEST_F(PaperPropertiesTest, Fig3FocusedBeatsBreadthFirstEarly) {
  const uint64_t budget = thai_->num_pages() / 10;
  const SimulationResult bfs = Run(BreadthFirstStrategy(), budget);
  const SimulationResult hard = Run(HardFocusedStrategy(), budget);
  const SimulationResult soft = Run(SoftFocusedStrategy(), budget);
  EXPECT_GT(hard.summary.final_harvest_pct,
            bfs.summary.final_harvest_pct + 20.0);
  EXPECT_GT(soft.summary.final_harvest_pct,
            bfs.summary.final_harvest_pct + 20.0);
}

// Fig 3(b): soft reaches 100% coverage; hard stalls well short.
TEST_F(PaperPropertiesTest, Fig3SoftFullCoverageHardStalls) {
  const SimulationResult hard = Run(HardFocusedStrategy());
  const SimulationResult soft = Run(SoftFocusedStrategy());
  EXPECT_DOUBLE_EQ(soft.summary.final_coverage_pct, 100.0);
  EXPECT_LT(hard.summary.final_coverage_pct, 80.0);
  EXPECT_GT(hard.summary.final_coverage_pct, 40.0);
}

// Fig 5: the soft-focused queue dwarfs the hard-focused queue.
TEST_F(PaperPropertiesTest, Fig5QueueSizeSoftFarExceedsHard) {
  const SimulationResult hard = Run(HardFocusedStrategy());
  const SimulationResult soft = Run(SoftFocusedStrategy());
  EXPECT_GT(soft.summary.max_queue_size,
            hard.summary.max_queue_size * 2);
}

// Fig 6: non-prioritized limited distance — queue and coverage grow
// with N while final harvest falls.
TEST_F(PaperPropertiesTest, Fig6NonPrioritizedMonotonicInN) {
  SimulationResult prev = Run(LimitedDistanceStrategy(1, false));
  for (int n = 2; n <= 4; ++n) {
    const SimulationResult cur = Run(LimitedDistanceStrategy(n, false));
    EXPECT_GT(cur.summary.final_coverage_pct,
              prev.summary.final_coverage_pct)
        << "N=" << n;
    EXPECT_LT(cur.summary.final_harvest_pct, prev.summary.final_harvest_pct)
        << "N=" << n;
    EXPECT_GT(cur.summary.max_queue_size, prev.summary.max_queue_size)
        << "N=" << n;
    prev = cur;
  }
}

// Fig 7: prioritized limited distance — the harvest/coverage trajectory
// is invariant in N over a common crawl budget (the paper's "do not
// vary by the value of N"), while the queue stays controlled by N.
TEST_F(PaperPropertiesTest, Fig7PrioritizedTrajectoryInvariantInN) {
  const uint64_t budget = thai_->num_pages() / 5;
  const SimulationResult n1 = Run(LimitedDistanceStrategy(1, true), budget);
  for (int n = 2; n <= 4; ++n) {
    const SimulationResult cur =
        Run(LimitedDistanceStrategy(n, true), budget);
    EXPECT_NEAR(cur.summary.final_harvest_pct,
                n1.summary.final_harvest_pct, 1.0)
        << "N=" << n;
    EXPECT_NEAR(cur.summary.final_coverage_pct,
                n1.summary.final_coverage_pct, 1.0)
        << "N=" << n;
  }
}

// Limited distance closes most of the gap to soft-focused coverage with
// a fraction of its queue (the paper's concluding claim).
TEST_F(PaperPropertiesTest, LimitedDistanceCompromise) {
  const SimulationResult soft = Run(SoftFocusedStrategy());
  const SimulationResult hard = Run(HardFocusedStrategy());
  const SimulationResult limited = Run(LimitedDistanceStrategy(3, true));
  EXPECT_GT(limited.summary.final_coverage_pct,
            hard.summary.final_coverage_pct + 15.0);
  EXPECT_LT(limited.summary.max_queue_size, soft.summary.max_queue_size);
}

// The Japanese dataset (Fig 4): high language specificity pushes even
// breadth-first harvest above 60%, which is why the paper moves on to
// Thai-only experiments.
TEST(PaperPropertiesJapaneseTest, Fig4EvenBfsHarvestIsHigh) {
  auto g = GenerateWebGraph(JapaneseLikeOptions(60000));
  ASSERT_TRUE(g.ok());
  const DatasetStats stats = g->ComputeStats();
  EXPECT_NEAR(100.0 * stats.relevance_ratio(), 71.0, 3.5);
  DetectorClassifier classifier(Language::kJapanese);
  auto bfs = RunSimulation(*g, &classifier, BreadthFirstStrategy(),
                           RenderMode::kHead);
  ASSERT_TRUE(bfs.ok());
  EXPECT_GT(bfs->summary.final_harvest_pct, 60.0);
  auto soft = RunSimulation(*g, &classifier, SoftFocusedStrategy(),
                            RenderMode::kHead);
  ASSERT_TRUE(soft.ok());
  EXPECT_DOUBLE_EQ(soft->summary.final_coverage_pct, 100.0);
}

}  // namespace
}  // namespace lswc
