#include "util/stats.h"

#include <gtest/gtest.h>

namespace lswc {
namespace {

TEST(RunningStatTest, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(RunningStatTest, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(RunningStatTest, KnownMoments) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: sum sq dev = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_EQ(s.sum(), 40.0);
}

TEST(RunningStatTest, NumericallyStableForLargeOffsets) {
  RunningStat s;
  for (int i = 0; i < 1000; ++i) s.Add(1e9 + (i % 2));
  EXPECT_NEAR(s.variance(), 0.2503, 0.01);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 10);
  h.Add(0.5);
  h.Add(9.99);
  h.Add(-5.0);   // Clamps into bucket 0.
  h.Add(100.0);  // Clamps into last bucket.
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(9), 2u);
  EXPECT_EQ(h.bucket_count(5), 0u);
}

TEST(HistogramTest, QuantileInterpolation) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) h.Add(i + 0.5);
  EXPECT_NEAR(h.Quantile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.Quantile(0.0), 0.0, 1.5);
}

TEST(HistogramTest, QuantileOfEmpty) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_EQ(h.Quantile(0.5), 0.0);
}

TEST(HistogramTest, ToStringShowsNonEmptyBuckets) {
  Histogram h(0.0, 2.0, 2);
  h.Add(0.5);
  const std::string s = h.ToString();
  EXPECT_NE(s.find('*'), std::string::npos);
  // The empty bucket prints nothing.
  EXPECT_EQ(s.find("1.000,"), s.rfind("1.000,"));
}

}  // namespace
}  // namespace lswc
