#include "webgraph/link_db.h"

#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "obs/metrics_registry.h"
#include "webgraph/generator.h"

namespace lswc {
namespace {

class LinkDbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto g = GenerateWebGraph(ThaiLikeOptions(5000));
    ASSERT_TRUE(g.ok());
    graph_ = std::move(g).value();
    // Each case runs as its own concurrent ctest process
    // (gtest_discover_tests), so the scratch file must be per-test: a
    // shared path lets one process's SetUp rewrite or TearDown unlink
    // race another's reads.
    path_ =
        (std::filesystem::temp_directory_path() /
         (std::string("lswc_links_") +
          ::testing::UnitTest::GetInstance()->current_test_info()->name() +
          ".lnk"))
            .string();
    ASSERT_TRUE(WriteLinkFile(graph_, path_).ok());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  WebGraph graph_;
  std::string path_;
};

TEST_F(LinkDbTest, InMemoryServesGraphLinks) {
  InMemoryLinkDb db(&graph_);
  EXPECT_EQ(db.num_pages(), graph_.num_pages());
  std::vector<PageId> out;
  for (PageId p = 0; p < 200; ++p) {
    ASSERT_TRUE(db.GetOutlinks(p, &out).ok());
    const auto expected = graph_.outlinks(p);
    ASSERT_EQ(out.size(), expected.size()) << p;
    for (size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], expected[i]);
  }
}

TEST_F(LinkDbTest, InMemoryRejectsOutOfRange) {
  InMemoryLinkDb db(&graph_);
  std::vector<PageId> out;
  EXPECT_EQ(db.GetOutlinks(static_cast<PageId>(graph_.num_pages()), &out)
                .code(),
            StatusCode::kNotFound);
}

TEST_F(LinkDbTest, DiskMatchesInMemoryEverywhere) {
  auto db_or = DiskLinkDb::Open(path_);
  ASSERT_TRUE(db_or.ok()) << db_or.status();
  auto& disk = **db_or;
  std::vector<PageId> out;
  for (PageId p = 0; p < graph_.num_pages(); ++p) {
    ASSERT_TRUE(disk.GetOutlinks(p, &out).ok()) << p;
    const auto expected = graph_.outlinks(p);
    ASSERT_EQ(out.size(), expected.size()) << p;
    for (size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], expected[i]);
  }
}

TEST_F(LinkDbTest, TinyBlocksSpanBoundaries) {
  DiskLinkDbOptions options;
  options.block_words = 7;  // Force every lookup across block seams.
  options.max_cached_blocks = 3;
  auto db_or = DiskLinkDb::Open(path_, options);
  ASSERT_TRUE(db_or.ok());
  auto& disk = **db_or;
  std::vector<PageId> out;
  for (PageId p = 0; p < 500; ++p) {
    ASSERT_TRUE(disk.GetOutlinks(p, &out).ok());
    const auto expected = graph_.outlinks(p);
    ASSERT_EQ(out.size(), expected.size()) << p;
    for (size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], expected[i]);
  }
  EXPECT_LE(disk.cached_blocks(), options.max_cached_blocks);
}

TEST_F(LinkDbTest, LruCachesHotBlocks) {
  DiskLinkDbOptions options;
  options.block_words = 1024;
  options.max_cached_blocks = 4;
  auto db_or = DiskLinkDb::Open(path_, options);
  ASSERT_TRUE(db_or.ok());
  auto& disk = **db_or;
  std::vector<PageId> out;
  // Repeated access to one page must hit the cache after the first miss.
  ASSERT_TRUE(disk.GetOutlinks(1, &out).ok());
  const uint64_t misses_after_first = disk.cache_misses();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(disk.GetOutlinks(1, &out).ok());
  }
  EXPECT_EQ(disk.cache_misses(), misses_after_first);
  EXPECT_GE(disk.cache_hits(), 100u);
}

TEST_F(LinkDbTest, DiskRejectsOutOfRange) {
  auto db_or = DiskLinkDb::Open(path_);
  ASSERT_TRUE(db_or.ok());
  std::vector<PageId> out;
  EXPECT_EQ((*db_or)
                ->GetOutlinks(static_cast<PageId>(graph_.num_pages()), &out)
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ((*db_or)->GetOutlinks(UINT32_MAX, &out).code(),
            StatusCode::kNotFound);
}

TEST_F(LinkDbTest, SingleEntryCacheStaysCorrect) {
  DiskLinkDbOptions options;
  options.block_words = 16;  // Long lists straddle many blocks.
  options.max_cached_blocks = 1;
  auto db_or = DiskLinkDb::Open(path_, options);
  ASSERT_TRUE(db_or.ok());
  auto& disk = **db_or;
  std::vector<PageId> out;
  // Ping-pong between distant pages: every lookup evicts the previous
  // block, yet answers must stay exact.
  const PageId far_page = static_cast<PageId>(graph_.num_pages() - 1);
  for (int round = 0; round < 5; ++round) {
    for (PageId p : {PageId{0}, far_page, PageId{1}, PageId{0}}) {
      ASSERT_TRUE(disk.GetOutlinks(p, &out).ok()) << p;
      const auto expected = graph_.outlinks(p);
      ASSERT_EQ(out.size(), expected.size()) << p;
      for (size_t i = 0; i < out.size(); ++i) ASSERT_EQ(out[i], expected[i]);
    }
  }
  EXPECT_LE(disk.cached_blocks(), 1u);
  EXPECT_GT(disk.cache_evictions(), 0u);
  // Invariant of any bounded cache walk: every miss either filled a
  // free slot or evicted.
  EXPECT_EQ(disk.cache_misses(), disk.cache_evictions() + disk.cached_blocks());
}

TEST_F(LinkDbTest, EvictionIsLeastRecentlyUsed) {
  DiskLinkDbOptions options;
  options.block_words = 1024;
  options.max_cached_blocks = 2;
  auto db_or = DiskLinkDb::Open(path_, options);
  ASSERT_TRUE(db_or.ok());
  auto& disk = **db_or;
  std::vector<PageId> out;
  // Find three pages in three distinct blocks.
  PageId in_block[3];
  uint64_t block_of[3];
  size_t found = 0;
  uint64_t links_before = 0;
  for (PageId p = 0; p < graph_.num_pages() && found < 3; ++p) {
    const uint64_t block = links_before / options.block_words;
    const size_t n = graph_.outlinks(p).size();
    if (n != 0 &&
        (links_before + n - 1) / options.block_words == block &&
        (found == 0 || block != block_of[found - 1])) {
      in_block[found] = p;
      block_of[found] = block;
      ++found;
    }
    links_before += n;
  }
  ASSERT_EQ(found, 3u);

  // Touch A, B (cache = {A, B}), re-touch A, then load C: B — the least
  // recently used — must be the eviction victim, so A stays a hit.
  ASSERT_TRUE(disk.GetOutlinks(in_block[0], &out).ok());
  ASSERT_TRUE(disk.GetOutlinks(in_block[1], &out).ok());
  ASSERT_TRUE(disk.GetOutlinks(in_block[0], &out).ok());
  ASSERT_TRUE(disk.GetOutlinks(in_block[2], &out).ok());
  EXPECT_EQ(disk.cache_evictions(), 1u);
  const uint64_t misses = disk.cache_misses();
  ASSERT_TRUE(disk.GetOutlinks(in_block[0], &out).ok());
  EXPECT_EQ(disk.cache_misses(), misses);  // A survived the eviction.
  ASSERT_TRUE(disk.GetOutlinks(in_block[1], &out).ok());
  EXPECT_EQ(disk.cache_misses(), misses + 1);  // B did not.
}

TEST_F(LinkDbTest, AttachObsExportsCacheCounters) {
  DiskLinkDbOptions options;
  options.block_words = 64;
  options.max_cached_blocks = 2;
  auto db_or = DiskLinkDb::Open(path_, options);
  ASSERT_TRUE(db_or.ok());
  auto& disk = **db_or;
  obs::MetricsRegistry registry;
  disk.AttachObs(&registry);
  std::vector<PageId> out;
  for (PageId p = 0; p < 200; ++p) {
    ASSERT_TRUE(disk.GetOutlinks(p, &out).ok());
  }
  EXPECT_EQ(registry.counter("linkdb.cache_hits")->value(),
            disk.cache_hits());
  EXPECT_EQ(registry.counter("linkdb.cache_misses")->value(),
            disk.cache_misses());
  EXPECT_EQ(registry.counter("linkdb.cache_evictions")->value(),
            disk.cache_evictions());
  EXPECT_GT(disk.cache_misses(), 0u);
}

TEST_F(LinkDbTest, OpenRejectsGarbage) {
  const std::string bad =
      (std::filesystem::temp_directory_path() / "lswc_bad.lnk").string();
  std::ofstream(bad, std::ios::binary) << "JUNKJUNKJUNK";
  EXPECT_FALSE(DiskLinkDb::Open(bad).ok());
  std::remove(bad.c_str());
}

TEST_F(LinkDbTest, OpenRejectsBadOptions) {
  DiskLinkDbOptions options;
  options.block_words = 0;
  EXPECT_FALSE(DiskLinkDb::Open(path_, options).ok());
}

}  // namespace
}  // namespace lswc
